// Ablation: candidate-plan breadth K. K = 1 degenerates the integrated
// optimizer into the classical two-step pipeline; larger K trades optimizer
// work (placements evaluated) for circuit quality. Measures where the
// quality curve flattens.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/summary.h"
#include "common/table.h"
#include "engine/stream_engine.h"
#include "overlay/metrics.h"
#include "query/workload.h"

namespace sbon {
namespace {

void Run() {
  // Shared instances across K values for paired comparison.
  struct Instance {
    std::unique_ptr<engine::StreamEngine> engine;
    std::vector<query::QuerySpec> specs;
  };
  std::vector<Instance> instances;
  for (uint64_t seed = 1; seed <= bench::Sweep(10); ++seed) {
    Instance inst;
    inst.engine = bench::MakeTransitStubEngine(bench::Nodes(200), seed * 37);
    query::WorkloadParams wp;
    wp.num_streams = 5;
    wp.min_streams_per_query = 5;
    wp.max_streams_per_query = 5;
    // Near-uniform selectivities: the regime where integration matters.
    wp.join_sel_log10_min = -3.2;
    wp.join_sel_log10_max = -2.8;
    wp.filter_prob = 0.0;
    wp.aggregate_prob = 0.0;
    overlay::Sbon& sbon = inst.engine->sbon();
    inst.engine->SetCatalog(
        query::RandomCatalog(wp, sbon.overlay_nodes(), &sbon.rng()));
    for (int i = 0; i < 4; ++i) {
      inst.specs.push_back(query::RandomQuery(wp, inst.engine->catalog(),
                                              sbon.overlay_nodes(),
                                              &sbon.rng()));
    }
    instances.push_back(std::move(inst));
  }

  double k1_usage = -1.0;
  TableWriter t({"K", "placements/query", "usage (KB*ms/s)", "vs K=1",
                 "est cost", "DHT probes/query"});
  for (size_t k : {1, 2, 4, 8, 16, 32}) {
    Summary usage, est, placements, probes;
    for (Instance& inst : instances) {
      engine::StrategySpec strategy;
      core::OptimizerConfig cfg;
      cfg.enumeration.top_k = k;
      strategy.config = cfg;
      for (const query::QuerySpec& q : inst.specs) {
        auto r = inst.engine->Optimize(q, strategy);
        if (!r.ok()) continue;
        auto cost = overlay::ComputeCircuitCost(
            r->circuit, inst.engine->sbon().latency(), nullptr);
        if (!cost.ok()) continue;
        usage.Add(cost->network_usage / 1000.0);
        est.Add(r->estimated_cost / 1000.0);
        placements.Add(static_cast<double>(r->placements_evaluated));
        probes.Add(static_cast<double>(r->mapping.dht_cost.ring_probes));
      }
    }
    if (k1_usage < 0.0) k1_usage = usage.Mean();
    t.AddRow({std::to_string(k), TableWriter::Fixed(placements.Mean(), 1),
              TableWriter::Num(usage.Mean()),
              TableWriter::Fixed(100.0 * (1.0 - usage.Mean() / k1_usage), 1) +
                  "%",
              TableWriter::Num(est.Mean()),
              TableWriter::Fixed(probes.Mean(), 0)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\n(improvement over K=1 — the two-step pipeline — should rise "
      "steeply for small K and\n flatten: a handful of virtually placed "
      "candidates buys most of the integration win)\n");
}

}  // namespace
}  // namespace sbon

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);
  std::printf("Ablation: candidate-plan breadth K in the integrated "
              "optimizer\n");
  sbon::Run();
  return 0;
}

// Ablation: coordinate quality. How much circuit quality does Vivaldi's
// embedding error cost, compared against the centralized classical-MDS
// oracle embedding, and how much does the DHT probe cost on top of an exact
// (linear-scan) physical mapping? Also sweeps the latency-plane dimension.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/summary.h"
#include "common/table.h"
#include "coords/mds.h"
#include "engine/stream_engine.h"
#include "overlay/metrics.h"
#include "query/workload.h"

namespace sbon {
namespace {

Summary RunConfig(overlay::Sbon::CoordMode mode, size_t dims,
                  Summary* embed_err) {
  Summary usage;
  for (uint64_t seed = 1; seed <= bench::Sweep(10); ++seed) {
    engine::EngineOptions eo;
    eo.sbon.coord_mode = mode;
    eo.sbon.space_spec = coords::CostSpaceSpec::LatencyAndLoad(dims, 100.0);
    auto engine = bench::MakeTransitStubEngine(bench::Nodes(200), seed * 61,
                                               std::move(eo));
    overlay::Sbon& sbon = engine->sbon();
    if (embed_err != nullptr) {
      std::vector<Vec> coords;
      for (NodeId n = 0; n < sbon.topology().NumNodes(); ++n) {
        coords.push_back(sbon.cost_space().VectorCoord(n));
      }
      embed_err->Add(coords::EvaluateEmbedding(sbon.latency(), coords)
                         .median_relative_error);
    }
    query::WorkloadParams wp;
    wp.num_streams = 12;
    engine->SetCatalog(
        query::RandomCatalog(wp, sbon.overlay_nodes(), &sbon.rng()));
    for (int i = 0; i < 5; ++i) {
      query::QuerySpec q = query::RandomQuery(wp, engine->catalog(),
                                              sbon.overlay_nodes(),
                                              &sbon.rng());
      auto r = engine->Optimize(q);
      if (!r.ok()) continue;
      auto cost = overlay::ComputeCircuitCost(r->circuit, sbon.latency(),
                                              nullptr);
      if (cost.ok()) usage.Add(cost->network_usage / 1000.0);
    }
  }
  return usage;
}

void Run() {
  bench::Section("embedding source (2-D latency plane + load dim)");
  {
    TableWriter t({"coords", "median embed err", "usage (KB*ms/s)",
                   "vs MDS oracle"});
    Summary viv_err, mds_err;
    Summary viv = RunConfig(overlay::Sbon::CoordMode::kVivaldi, 2, &viv_err);
    Summary mds = RunConfig(overlay::Sbon::CoordMode::kMds, 2, &mds_err);
    t.AddRow({"vivaldi (deployable)", TableWriter::Fixed(viv_err.Mean(), 3),
              TableWriter::Num(viv.Mean()),
              TableWriter::Fixed(100.0 * (viv.Mean() / mds.Mean() - 1.0), 1) +
                  "%"});
    t.AddRow({"classical MDS (oracle)", TableWriter::Fixed(mds_err.Mean(), 3),
              TableWriter::Num(mds.Mean()), "0.0%"});
    std::printf("%s", t.Render().c_str());
  }

  bench::Section("latency-plane dimensionality (Vivaldi)");
  {
    TableWriter t({"dims", "median embed err", "usage (KB*ms/s)"});
    for (size_t dims : {2, 3, 4, 5}) {
      Summary err;
      Summary usage = RunConfig(overlay::Sbon::CoordMode::kVivaldi, dims,
                                &err);
      t.AddRow({std::to_string(dims), TableWriter::Fixed(err.Mean(), 3),
                TableWriter::Num(usage.Mean())});
    }
    std::printf("%s", t.Render().c_str());
    std::printf(
        "(more dimensions shrink embedding error with diminishing returns "
        "[16]; the curve here\n quantifies what that buys the optimizer "
        "end-to-end)\n");
  }
}

}  // namespace
}  // namespace sbon

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);
  std::printf("Ablation: network-coordinate quality vs optimizer output "
              "quality\n");
  sbon::Run();
  return 0;
}

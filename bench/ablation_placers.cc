// Ablation: virtual placement algorithm. Relaxation (the paper's choice,
// spring system / quadratic proxy), centroid (structure-blind one-shot),
// gradient (Weiszfeld on the true linear objective), plus the physical
// baselines (consumer-side, producer-side, random) and the exhaustive
// oracle lower bound on small circuits.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/summary.h"
#include "common/table.h"
#include "engine/registry.h"
#include "overlay/metrics.h"
#include "placement/baselines.h"
#include "placement/mapping.h"
#include "query/enumerate.h"

namespace sbon {
namespace {

using overlay::Circuit;

void Run() {
  // Per-placer network usage accumulated over shared instances.
  const std::vector<std::string> names = {
      "relaxation", "gradient", "centroid",
      "consumer",   "producer", "random",   "oracle"};
  std::map<std::string, Summary> usage;
  size_t trials = 0;

  for (uint64_t seed = 1; seed <= bench::Sweep(15); ++seed) {
    auto sbon = bench::MakeTransitStubSbon(bench::Nodes(200), seed * 89);
    Rng& rng = sbon->rng();
    query::Catalog cat;
    std::vector<StreamId> ids;
    for (int i = 0; i < 3; ++i) {
      ids.push_back(cat.AddStream(
          query::IndexedStreamName(i), rng.Uniform(20.0, 300.0), 128.0,
          sbon->overlay_nodes()[rng.UniformInt(
              sbon->overlay_nodes().size())]));
    }
    const query::QuerySpec spec = query::QuerySpec::SimpleJoin(
        ids,
        sbon->overlay_nodes()[rng.UniformInt(sbon->overlay_nodes().size())],
        0.001);
    auto plans =
        query::EnumeratePlans(spec, cat, query::EnumerationOptions{});
    if (!plans.ok()) continue;
    auto base = Circuit::FromPlan((*plans)[0], cat);
    if (!base.ok()) continue;
    ++trials;

    auto measure = [&](const std::string& name, Circuit c) {
      auto cost = overlay::ComputeCircuitCost(c, sbon->latency(), nullptr);
      if (cost.ok()) usage[name].Add(cost->network_usage / 1000.0);
    };

    // Virtual placers + mapping, instantiated by registry name.
    for (const std::string name : {"relaxation", "gradient", "centroid"}) {
      auto placer = engine::PlacerRegistry::Global().Create(name);
      if (!placer.ok()) continue;
      Circuit c = base.value();
      if (!(*placer)->Place(&c, sbon->cost_space()).ok()) continue;
      if (!placement::MapCircuit(&c, *sbon, placement::MappingOptions{},
                                 nullptr)
               .ok()) {
        continue;
      }
      measure(name, std::move(c));
    }
    // Physical baselines.
    {
      Circuit c = base.value();
      if (placement::ConsumerPlacer().Place(&c, *sbon).ok()) {
        measure("consumer", std::move(c));
      }
    }
    {
      Circuit c = base.value();
      if (placement::ProducerPlacer().Place(&c, *sbon).ok()) {
        measure("producer", std::move(c));
      }
    }
    {
      Circuit c = base.value();
      placement::RandomPlacer rp(seed);
      if (rp.Place(&c, *sbon).ok()) measure("random", std::move(c));
    }
    {
      Circuit c = base.value();
      placement::ExhaustiveOraclePlacer::Params op;
      op.node_sample = 120;
      placement::ExhaustiveOraclePlacer oracle(op);
      if (oracle.Place(&c, *sbon).ok()) measure("oracle", std::move(c));
    }
  }

  TableWriter t({"placer", "usage (KB*ms/s)", "p90", "vs oracle"});
  const double oracle_mean = usage["oracle"].Mean();
  for (const std::string& name : names) {
    Summary& s = usage[name];
    t.AddRow({name, TableWriter::Num(s.Mean()),
              TableWriter::Num(s.Percentile(90)),
              TableWriter::Fixed(s.Mean() / oracle_mean, 2) + "x"});
  }
  std::printf("%s", t.Render().c_str());
  std::printf("(%zu shared 3-way-join instances, 200-node transit-stub "
              "overlays)\n", trials);
}

}  // namespace
}  // namespace sbon

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);
  std::printf("Ablation: virtual placers and physical baselines vs the "
              "exhaustive oracle\n");
  sbon::Run();
  return 0;
}

// Ablation: scalar weighting function (paper Sec. 3.1 leaves the choice to
// the deployer; Figure 2 uses the squared function). We deploy the same
// workload under identity / squared / exponential / threshold weightings
// and measure the load of chosen hosts vs. the latency cost paid to avoid
// hot nodes. Sharper weightings should push placements off loaded nodes at
// a (small) network-usage premium.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/summary.h"
#include "common/table.h"
#include "engine/stream_engine.h"
#include "overlay/metrics.h"
#include "query/workload.h"

namespace sbon {
namespace {

void Run() {
  TableWriter t({"weighting", "chosen-host load", "p95 chosen load",
                 "hot hosts used", "usage (KB*ms/s)", "mapping err (ms)"});
  for (const char* name :
       {"identity", "squared", "exponential", "threshold"}) {
    Summary chosen_load, usage, map_err;
    size_t hot_used = 0, placements = 0;
    for (uint64_t seed = 1; seed <= bench::Sweep(12); ++seed) {
      engine::EngineOptions eo;
      std::vector<coords::ScalarDimSpec> dims;
      std::shared_ptr<coords::WeightingFn> w =
          coords::MakeWeighting(name, 100.0);
      dims.push_back(coords::ScalarDimSpec{"cpu_load", w});
      eo.sbon.space_spec = coords::CostSpaceSpec(2, dims);
      eo.sbon.load_params.mean = 0.3;
      eo.sbon.load_params.sigma = 0.2;
      eo.sbon.load_params.hotspot_frac = 0.15;
      eo.sbon.load_params.hotspot_mean = 0.95;
      auto engine = bench::MakeTransitStubEngine(bench::Nodes(200), seed * 53,
                                                 std::move(eo));
      overlay::Sbon& sbon = engine->sbon();

      query::WorkloadParams wp;
      wp.num_streams = 12;
      engine->SetCatalog(
          query::RandomCatalog(wp, sbon.overlay_nodes(), &sbon.rng()));
      for (int i = 0; i < 8; ++i) {
        query::QuerySpec q = query::RandomQuery(wp, engine->catalog(),
                                                sbon.overlay_nodes(),
                                                &sbon.rng());
        auto r = engine->Optimize(q);
        if (!r.ok()) continue;
        for (int v : r->circuit.PlaceableVertices()) {
          const double load = sbon.TotalLoad(r->circuit.vertex(v).host);
          chosen_load.Add(load);
          if (load > 0.7) ++hot_used;
          ++placements;
        }
        map_err.Add(r->mapping.MeanMappingError());
        auto cost = overlay::ComputeCircuitCost(r->circuit, sbon.latency(),
                                                nullptr);
        if (cost.ok()) usage.Add(cost->network_usage / 1000.0);
        auto id = sbon.InstallCircuit(std::move(r->circuit));
        if (id.ok()) sbon.RefreshIndex();
      }
    }
    t.AddRow({name, TableWriter::Fixed(chosen_load.Mean(), 3),
              TableWriter::Fixed(chosen_load.Percentile(95), 3),
              TableWriter::Fixed(
                  100.0 * hot_used / std::max<size_t>(1, placements), 1) +
                  "%",
              TableWriter::Num(usage.Mean()),
              TableWriter::Fixed(map_err.Mean(), 2)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\n(each weighting trades load avoidance against latency: threshold "
      "ignores load below its\n knee — cheapest usage, hottest hosts — "
      "while exponential avoids load hardest and pays\n the largest "
      "usage/mapping premium; squared, the paper's choice, sits between)\n");
}

}  // namespace
}  // namespace sbon

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);
  std::printf("Ablation: scalar weighting functions under a hotspot-heavy "
              "load distribution\n");
  sbon::Run();
  return 0;
}

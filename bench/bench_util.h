#ifndef SBON_BENCH_BENCH_UTIL_H_
#define SBON_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/stream_engine.h"
#include "net/generators.h"
#include "overlay/sbon.h"

namespace sbon::bench {

inline bool& SmokeModeFlag() {
  static bool smoke = false;
  return smoke;
}

/// True when the harness runs in smoke mode: every code path, tiny sweeps.
inline bool SmokeMode() { return SmokeModeFlag(); }

/// Default strategy names used by MakeTransitStubEngine, overridable with
/// --optimizer= / --placer= (engine registry names), so every harness can
/// be ablated from the command line without a rebuild.
inline std::string& OptimizerFlag() {
  static std::string name = "integrated";
  return name;
}
inline std::string& PlacerFlag() {
  static std::string name = "relaxation";
  return name;
}

/// Path for machine-readable results (`--json=PATH`); empty = no JSON
/// output. Harnesses that record baselines (perf_epoch) write their
/// measurements here in addition to the human-readable tables.
inline std::string& JsonFlag() {
  static std::string path;
  return path;
}

/// Latency-substrate backend override (`--fabric=auto|dense|sparse`).
/// "auto" keeps Sbon::Options defaults: dense up to the sparse auto
/// threshold, the generative sparse backend above it.
inline std::string& FabricFlag() {
  static std::string name = "auto";
  return name;
}

/// The Sbon fabric mode the --fabric= flag selects.
inline overlay::Sbon::FabricMode FabricMode() {
  if (FabricFlag() == "dense") return overlay::Sbon::FabricMode::kDense;
  if (FabricFlag() == "sparse") return overlay::Sbon::FabricMode::kSparse;
  return overlay::Sbon::FabricMode::kAuto;
}

/// Coordinate/ring maintenance execution (`--exec=oracle|message`):
/// "oracle" keeps the engine's global-knowledge maintenance stages,
/// "message" re-expresses them as explicit control traffic through
/// msg::MessageBus (README "Execution modes").
inline std::string& ExecFlag() {
  static std::string name = "oracle";
  return name;
}

/// The engine execution mode the --exec= flag selects.
inline engine::ExecMode ExecMode() {
  return ExecFlag() == "message" ? engine::ExecMode::kMessage
                                 : engine::ExecMode::kOracle;
}

/// Chaos fault rates for the message-mode chaos section
/// (`--faults=LOSS,DUP[,JITTER_MS]`): per-message loss and duplication
/// probabilities applied to every protocol, plus an optional mean
/// exponential extra delivery delay in ms. Defaults are the acceptance
/// plan: 10% loss, 5% duplication, no extra delay.
struct FaultRatesFlag {
  double loss = 0.10;
  double duplicate = 0.05;
  double delay_jitter_ms = 0.0;
};
inline FaultRatesFlag& FaultsFlag() {
  static FaultRatesFlag f;
  return f;
}

/// Call first in main(): enables smoke mode on `--smoke` or
/// `SBON_BENCH_SMOKE=1` (ctest smoke-runs every figure harness this way so
/// benchmarks cannot silently bit-rot), and parses `--optimizer=NAME` /
/// `--placer=NAME` strategy overrides against the engine registries.
inline void ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      SmokeModeFlag() = true;
    } else if (arg.rfind("--optimizer=", 0) == 0) {
      OptimizerFlag() = std::string(arg.substr(std::strlen("--optimizer=")));
    } else if (arg.rfind("--placer=", 0) == 0) {
      PlacerFlag() = std::string(arg.substr(std::strlen("--placer=")));
    } else if (arg.rfind("--json=", 0) == 0) {
      JsonFlag() = std::string(arg.substr(std::strlen("--json=")));
    } else if (arg.rfind("--fabric=", 0) == 0) {
      FabricFlag() = std::string(arg.substr(std::strlen("--fabric=")));
      if (FabricFlag() != "auto" && FabricFlag() != "dense" &&
          FabricFlag() != "sparse") {
        std::fprintf(stderr,
                     "unknown fabric '%s'; expected auto, dense or sparse\n",
                     FabricFlag().c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--exec=", 0) == 0) {
      ExecFlag() = std::string(arg.substr(std::strlen("--exec=")));
      if (ExecFlag() != "oracle" && ExecFlag() != "message") {
        std::fprintf(stderr,
                     "unknown exec mode '%s'; expected oracle or message\n",
                     ExecFlag().c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--faults=", 0) == 0) {
      FaultRatesFlag& f = FaultsFlag();
      const char* s = argv[i] + std::strlen("--faults=");
      char* end = nullptr;
      f.loss = std::strtod(s, &end);
      f.duplicate = 0.0;
      f.delay_jitter_ms = 0.0;
      if (end != nullptr && *end == ',') {
        f.duplicate = std::strtod(end + 1, &end);
        if (end != nullptr && *end == ',') {
          f.delay_jitter_ms = std::strtod(end + 1, nullptr);
        }
      }
      if (f.loss < 0.0 || f.loss > 1.0 || f.duplicate < 0.0 ||
          f.duplicate > 1.0 || f.delay_jitter_ms < 0.0) {
        std::fprintf(stderr,
                     "--faults=LOSS,DUP[,JITTER_MS] wants probabilities in "
                     "[0, 1] and a non-negative jitter\n");
        std::exit(2);
      }
    }
  }
  const char* env = std::getenv("SBON_BENCH_SMOKE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    SmokeModeFlag() = true;
  }
  auto check = [](const char* what, const std::string& name, bool known,
                  const std::vector<std::string>& names) {
    if (known) return;
    std::fprintf(stderr, "unknown %s '%s'; registered:", what, name.c_str());
    for (const std::string& n : names) std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  };
  check("optimizer", OptimizerFlag(),
        engine::OptimizerRegistry::Global().Has(OptimizerFlag()),
        engine::OptimizerRegistry::Global().Names());
  check("placer", PlacerFlag(),
        engine::PlacerRegistry::Global().Has(PlacerFlag()),
        engine::PlacerRegistry::Global().Names());
  if (SmokeMode()) {
    std::printf("[smoke mode: reduced sweeps; figures NOT representative]\n");
  }
}

/// Value of a `--name=<integer>` flag, or `fallback` when absent.
inline size_t FlagOr(int argc, char** argv, const char* name,
                     size_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return static_cast<size_t>(
          std::strtoull(argv[i] + prefix.size(), nullptr, 10));
    }
  }
  return fallback;
}

/// Value of a `--name=<double>` flag, or `fallback` when absent.
inline double DoubleFlagOr(int argc, char** argv, const char* name,
                           double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return fallback;
}

/// Sweep breadth: `full` seeds/trials in figure runs, `smoke` under --smoke.
inline size_t Sweep(size_t full, size_t smoke = 2) {
  return SmokeMode() ? std::min(full, smoke) : full;
}

/// Topology size: capped at ~120 nodes under --smoke.
inline size_t Nodes(size_t full) {
  return SmokeMode() ? std::min<size_t>(full, 120) : full;
}

/// Applies Nodes() to a sweep of sizes and drops the duplicates the smoke
/// cap introduces; full runs pass through unchanged.
inline std::vector<size_t> DedupedSizes(std::initializer_list<size_t> sizes) {
  std::vector<size_t> out;
  for (size_t s : sizes) {
    const size_t n = Nodes(s);
    if (out.empty() || out.back() != n) out.push_back(n);
  }
  return out;
}

/// Transit-stub topology of roughly `target_nodes` nodes (>= 100). All
/// harnesses share this so figures are comparable.
inline net::Topology MakeTransitStubTopology(size_t target_nodes,
                                             uint64_t seed) {
  net::TransitStubParams p;
  // Scale stub domains to approximate the target size:
  // nodes = td*tn + td*tn*sd*ns with td*tn transit routers. Above ~10k the
  // transit core widens (8x8) and stub-domain count grows with the target so
  // domains stay O(10) nodes — keeping the graph sparse (links linear in
  // nodes) instead of fattening each domain's quadratic chord pool.
  p.transit_domains = target_nodes >= 10000 ? 8 : (target_nodes >= 400 ? 4 : 2);
  p.transit_nodes_per_domain =
      target_nodes >= 10000 ? 8 : (target_nodes >= 200 ? 4 : 2);
  const size_t transit_est = p.transit_domains * p.transit_nodes_per_domain;
  p.stub_domains_per_transit_node =
      target_nodes >= 10000
          ? std::max<size_t>(3, target_nodes / (transit_est * 24))
          : 3;
  const size_t transit = transit_est;
  p.nodes_per_stub_domain =
      std::max<size_t>(2, (target_nodes - transit) /
                              (transit * p.stub_domains_per_transit_node));
  Rng rng(seed);
  auto topo = net::GenerateTransitStub(p, &rng);
  if (!topo.ok()) {
    std::fprintf(stderr, "topology generation failed: %s\n",
                 topo.status().ToString().c_str());
    std::abort();
  }
  return std::move(topo.value());
}

/// Builds a transit-stub SBON of roughly `target_nodes` nodes.
inline std::unique_ptr<overlay::Sbon> MakeTransitStubSbon(
    size_t target_nodes, uint64_t seed,
    overlay::Sbon::Options opts = overlay::Sbon::Options()) {
  opts.seed = seed;
  // "auto" defers to the caller's (or Sbon's) default so harnesses that pin
  // a mode programmatically are not clobbered by the flag's default value.
  if (FabricFlag() != "auto") opts.fabric_mode = FabricMode();
  auto s = overlay::Sbon::Create(MakeTransitStubTopology(target_nodes, seed),
                                 opts);
  if (!s.ok()) {
    std::fprintf(stderr, "sbon creation failed: %s\n",
                 s.status().ToString().c_str());
    std::abort();
  }
  return std::move(s.value());
}

/// Builds a StreamEngine over a transit-stub overlay of roughly
/// `target_nodes` nodes. Engine defaults come from the --optimizer= /
/// --placer= flags; harnesses override per call via engine::StrategySpec
/// where the figure compares fixed strategies.
inline std::unique_ptr<engine::StreamEngine> MakeTransitStubEngine(
    size_t target_nodes, uint64_t seed,
    engine::EngineOptions opts = engine::EngineOptions()) {
  opts.topology = MakeTransitStubTopology(target_nodes, seed);
  opts.sbon.seed = seed;
  if (FabricFlag() != "auto") opts.sbon.fabric_mode = FabricMode();
  opts.optimizer = OptimizerFlag();
  opts.placer = PlacerFlag();
  auto e = engine::StreamEngine::Create(std::move(opts));
  if (!e.ok()) {
    std::fprintf(stderr, "engine creation failed: %s\n",
                 e.status().ToString().c_str());
    std::abort();
  }
  return std::move(e.value());
}

/// Prints a section header in the harness output.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace sbon::bench

#endif  // SBON_BENCH_BENCH_UTIL_H_

#ifndef SBON_BENCH_BENCH_UTIL_H_
#define SBON_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/rng.h"
#include "net/generators.h"
#include "overlay/sbon.h"

namespace sbon::bench {

/// Builds a transit-stub SBON of roughly `target_nodes` nodes (>= 100).
/// All harnesses share this so figures are comparable.
inline std::unique_ptr<overlay::Sbon> MakeTransitStubSbon(
    size_t target_nodes, uint64_t seed,
    overlay::Sbon::Options opts = overlay::Sbon::Options()) {
  net::TransitStubParams p;
  // Scale stub domains to approximate the target size:
  // nodes = td*tn + td*tn*sd*ns with td*tn transit routers.
  p.transit_domains = target_nodes >= 400 ? 4 : 2;
  p.transit_nodes_per_domain = target_nodes >= 200 ? 4 : 2;
  p.stub_domains_per_transit_node = 3;
  const size_t transit = p.transit_domains * p.transit_nodes_per_domain;
  p.nodes_per_stub_domain =
      std::max<size_t>(2, (target_nodes - transit) /
                              (transit * p.stub_domains_per_transit_node));
  Rng rng(seed);
  auto topo = net::GenerateTransitStub(p, &rng);
  if (!topo.ok()) {
    std::fprintf(stderr, "topology generation failed: %s\n",
                 topo.status().ToString().c_str());
    std::abort();
  }
  opts.seed = seed;
  auto s = overlay::Sbon::Create(std::move(topo.value()), opts);
  if (!s.ok()) {
    std::fprintf(stderr, "sbon creation failed: %s\n",
                 s.status().ToString().c_str());
    std::abort();
  }
  return std::move(s.value());
}

/// Prints a section header in the harness output.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace sbon::bench

#endif  // SBON_BENCH_BENCH_UTIL_H_

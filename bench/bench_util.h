#ifndef SBON_BENCH_BENCH_UTIL_H_
#define SBON_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "net/generators.h"
#include "overlay/sbon.h"

namespace sbon::bench {

inline bool& SmokeModeFlag() {
  static bool smoke = false;
  return smoke;
}

/// True when the harness runs in smoke mode: every code path, tiny sweeps.
inline bool SmokeMode() { return SmokeModeFlag(); }

/// Call first in main(): enables smoke mode on `--smoke` or
/// `SBON_BENCH_SMOKE=1`. ctest smoke-runs every figure harness this way so
/// benchmarks cannot silently bit-rot.
inline void ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") SmokeModeFlag() = true;
  }
  const char* env = std::getenv("SBON_BENCH_SMOKE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    SmokeModeFlag() = true;
  }
  if (SmokeMode()) {
    std::printf("[smoke mode: reduced sweeps; figures NOT representative]\n");
  }
}

/// Sweep breadth: `full` seeds/trials in figure runs, `smoke` under --smoke.
inline size_t Sweep(size_t full, size_t smoke = 2) {
  return SmokeMode() ? std::min(full, smoke) : full;
}

/// Topology size: capped at ~120 nodes under --smoke.
inline size_t Nodes(size_t full) {
  return SmokeMode() ? std::min<size_t>(full, 120) : full;
}

/// Applies Nodes() to a sweep of sizes and drops the duplicates the smoke
/// cap introduces; full runs pass through unchanged.
inline std::vector<size_t> DedupedSizes(std::initializer_list<size_t> sizes) {
  std::vector<size_t> out;
  for (size_t s : sizes) {
    const size_t n = Nodes(s);
    if (out.empty() || out.back() != n) out.push_back(n);
  }
  return out;
}

/// Builds a transit-stub SBON of roughly `target_nodes` nodes (>= 100).
/// All harnesses share this so figures are comparable.
inline std::unique_ptr<overlay::Sbon> MakeTransitStubSbon(
    size_t target_nodes, uint64_t seed,
    overlay::Sbon::Options opts = overlay::Sbon::Options()) {
  net::TransitStubParams p;
  // Scale stub domains to approximate the target size:
  // nodes = td*tn + td*tn*sd*ns with td*tn transit routers.
  p.transit_domains = target_nodes >= 400 ? 4 : 2;
  p.transit_nodes_per_domain = target_nodes >= 200 ? 4 : 2;
  p.stub_domains_per_transit_node = 3;
  const size_t transit = p.transit_domains * p.transit_nodes_per_domain;
  p.nodes_per_stub_domain =
      std::max<size_t>(2, (target_nodes - transit) /
                              (transit * p.stub_domains_per_transit_node));
  Rng rng(seed);
  auto topo = net::GenerateTransitStub(p, &rng);
  if (!topo.ok()) {
    std::fprintf(stderr, "topology generation failed: %s\n",
                 topo.status().ToString().c_str());
    std::abort();
  }
  opts.seed = seed;
  auto s = overlay::Sbon::Create(std::move(topo.value()), opts);
  if (!s.ok()) {
    std::fprintf(stderr, "sbon creation failed: %s\n",
                 s.status().ToString().c_str());
    std::abort();
  }
  return std::move(s.value());
}

/// Prints a section header in the harness output.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace sbon::bench

#endif  // SBON_BENCH_BENCH_UTIL_H_

// Reproduces Figure 1 of the paper: the inefficiency of two-step
// optimization. Plan generation that is blind to the network can pick a
// join decomposition (Query Plan 1) that places badly; an integrated
// optimizer that virtually places *every* candidate plan picks the
// decomposition that is cheap after placement (Query Plan 2).
//
// The paper's figure is a schematic; this harness quantifies it: over many
// random transit-stub SBONs and join queries, it compares the two-step
// baseline against the integrated cost-space optimizer on true (latency-
// matrix) network usage and consumer latency. Expected shape: integrated
// never loses by construction of its candidate set, wins a substantial
// fraction of instances, and wins by a meaningful factor when it wins.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/summary.h"
#include "common/table.h"
#include "engine/stream_engine.h"
#include "overlay/metrics.h"
#include "query/workload.h"

namespace sbon {
namespace {

using bench::MakeTransitStubEngine;
using bench::Section;

engine::StrategySpec Strategy(const char* optimizer, size_t top_k) {
  engine::StrategySpec s;
  s.optimizer = optimizer;
  core::OptimizerConfig cfg;
  cfg.enumeration.top_k = top_k;
  s.config = cfg;
  return s;
}

struct CellResult {
  Summary two_step_usage;
  Summary integrated_usage;
  Summary ratio;           // two-step / integrated (>1 = integrated wins)
  Summary two_step_lat;
  Summary integrated_lat;
  size_t integrated_wins = 0;
  size_t ties = 0;
  size_t trials = 0;
};

CellResult RunCell(size_t nodes, size_t producers, size_t seeds,
                   size_t top_k) {
  CellResult out;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    auto engine = MakeTransitStubEngine(nodes, seed * 7919);
    overlay::Sbon& sbon = engine->sbon();
    query::WorkloadParams wp;
    wp.num_streams = producers;
    wp.min_streams_per_query = producers;
    wp.max_streams_per_query = producers;
    engine->SetCatalog(
        query::RandomCatalog(wp, sbon.overlay_nodes(), &sbon.rng()));
    query::QuerySpec spec = query::RandomQuery(wp, engine->catalog(),
                                               sbon.overlay_nodes(),
                                               &sbon.rng());

    auto rt = engine->Optimize(spec, Strategy("two-step", top_k));
    auto ri = engine->Optimize(spec, Strategy("integrated", top_k));
    if (!rt.ok() || !ri.ok()) continue;

    auto ct = overlay::ComputeCircuitCost(rt->circuit, sbon.latency(),
                                          &sbon.cost_space());
    auto ci = overlay::ComputeCircuitCost(ri->circuit, sbon.latency(),
                                          &sbon.cost_space());
    if (!ct.ok() || !ci.ok()) continue;

    out.trials++;
    out.two_step_usage.Add(ct->network_usage / 1000.0);   // KB*ms/s
    out.integrated_usage.Add(ci->network_usage / 1000.0);
    out.two_step_lat.Add(ct->critical_path_latency_ms);
    out.integrated_lat.Add(ci->critical_path_latency_ms);
    if (ci->network_usage < ct->network_usage * 0.999) {
      out.integrated_wins++;
    } else if (ci->network_usage <= ct->network_usage * 1.001) {
      out.ties++;
    }
    if (ci->network_usage > 0.0) {
      out.ratio.Add(ct->network_usage / ci->network_usage);
    }
  }
  return out;
}

// The paper's exact premise: "assuming the selectivities of the two plans
// were roughly the same" — identical rates and pairwise selectivities make
// every join decomposition equal in data volume, so the *only* thing that
// separates plans is where their services can be placed. Two-step then
// picks an arbitrary decomposition; integrated picks the best-placed one.
CellResult RunUniformCell(size_t nodes, size_t producers, size_t seeds,
                          size_t top_k) {
  CellResult out;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    auto engine = MakeTransitStubEngine(nodes, seed * 104729);
    overlay::Sbon& sbon = engine->sbon();
    std::vector<StreamId> ids;
    for (size_t i = 0; i < producers; ++i) {
      const NodeId producer = sbon.overlay_nodes()[sbon.rng().UniformInt(
          sbon.overlay_nodes().size())];
      ids.push_back(engine->AddStream(query::IndexedStreamName(i), 50.0, 128.0,
                                      producer));
    }
    const NodeId consumer = sbon.overlay_nodes()[sbon.rng().UniformInt(
        sbon.overlay_nodes().size())];
    query::QuerySpec spec =
        query::QuerySpec::SimpleJoin(ids, consumer, 0.0005);

    auto rt = engine->Optimize(spec, Strategy("two-step", top_k));
    auto ri = engine->Optimize(spec, Strategy("integrated", top_k));
    if (!rt.ok() || !ri.ok()) continue;
    auto ct = overlay::ComputeCircuitCost(rt->circuit, sbon.latency(),
                                          &sbon.cost_space());
    auto ci = overlay::ComputeCircuitCost(ri->circuit, sbon.latency(),
                                          &sbon.cost_space());
    if (!ct.ok() || !ci.ok()) continue;
    out.trials++;
    out.two_step_usage.Add(ct->network_usage / 1000.0);
    out.integrated_usage.Add(ci->network_usage / 1000.0);
    out.two_step_lat.Add(ct->critical_path_latency_ms);
    out.integrated_lat.Add(ci->critical_path_latency_ms);
    if (ci->network_usage < ct->network_usage * 0.999) out.integrated_wins++;
    else if (ci->network_usage <= ct->network_usage * 1.001) out.ties++;
    if (ci->network_usage > 0.0) {
      out.ratio.Add(ct->network_usage / ci->network_usage);
    }
  }
  return out;
}

}  // namespace
}  // namespace sbon

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);
  using sbon::TableWriter;
  std::printf("Figure 1 reproduction: two-step vs integrated optimization\n");
  std::printf("(network usage in KB*ms/s; ratio = two-step / integrated)\n");

  sbon::bench::Section(
      "Paper-exact premise: equal selectivities, plan choice decided by "
      "placement alone");
  {
    TableWriter t({"producers", "trials", "2step usage", "integr usage",
                   "mean ratio", "p90 ratio", "integr wins"});
    for (size_t producers : {3, 4, 5}) {
      auto r = sbon::RunUniformCell(sbon::bench::Nodes(200), producers,
                                    sbon::bench::Sweep(25), /*top_k=*/8);
      t.AddRow({std::to_string(producers), std::to_string(r.trials),
                TableWriter::Num(r.two_step_usage.Mean()),
                TableWriter::Num(r.integrated_usage.Mean()),
                TableWriter::Fixed(r.ratio.Mean(), 3),
                TableWriter::Fixed(r.ratio.Percentile(90), 3),
                TableWriter::Fixed(
                    100.0 * r.integrated_wins / std::max<size_t>(1, r.trials),
                    1) +
                    "%"});
    }
    std::printf("%s", t.Render().c_str());
  }

  sbon::bench::Section(
      "Paper scenario: 4 producers, 4-way join, transit-stub overlays");
  {
    TableWriter t({"nodes", "trials", "2step usage", "integr usage",
                   "mean ratio", "p90 ratio", "integr wins", "tied"});
    for (size_t nodes : sbon::bench::DedupedSizes({100, 200, 400, 600})) {
      const size_t seeds = sbon::bench::Sweep(nodes >= 400 ? 15 : 25);
      auto r = sbon::RunCell(nodes, /*producers=*/4, seeds, /*top_k=*/8);
      t.AddRow({std::to_string(nodes),
                std::to_string(r.trials),
                TableWriter::Num(r.two_step_usage.Mean()),
                TableWriter::Num(r.integrated_usage.Mean()),
                TableWriter::Fixed(r.ratio.Mean(), 3),
                TableWriter::Fixed(r.ratio.Percentile(90), 3),
                TableWriter::Fixed(
                    100.0 * r.integrated_wins / std::max<size_t>(1, r.trials),
                    1) +
                    "%",
                TableWriter::Fixed(
                    100.0 * r.ties / std::max<size_t>(1, r.trials), 1) +
                    "%"});
    }
    std::printf("%s", t.Render().c_str());
  }

  sbon::bench::Section("Sweep: producers per query (200-node overlay)");
  {
    TableWriter t({"producers", "trials", "2step usage", "integr usage",
                   "mean ratio", "integr wins", "2step lat ms",
                   "integr lat ms"});
    for (size_t producers : {3, 4, 5, 6}) {
      auto r = sbon::RunCell(sbon::bench::Nodes(200), producers, sbon::bench::Sweep(25), /*top_k=*/8);
      t.AddRow({std::to_string(producers), std::to_string(r.trials),
                TableWriter::Num(r.two_step_usage.Mean()),
                TableWriter::Num(r.integrated_usage.Mean()),
                TableWriter::Fixed(r.ratio.Mean(), 3),
                TableWriter::Fixed(
                    100.0 * r.integrated_wins / std::max<size_t>(1, r.trials),
                    1) +
                    "%",
                TableWriter::Fixed(r.two_step_lat.Mean(), 1),
                TableWriter::Fixed(r.integrated_lat.Mean(), 1)});
    }
    std::printf("%s", t.Render().c_str());
  }

  std::printf(
      "\nShape check (paper claim): the integrated optimizer should never "
      "lose on estimate,\nwin a visible fraction of instances on true usage, "
      "and the win should grow with\nplan-space size (more producers => more "
      "decompositions to get wrong).\n");
  return 0;
}

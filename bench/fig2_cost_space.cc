// Reproduces Figure 2 of the paper: 600 nodes in a 3-dimensional cost
// space over a simulated transit-stub topology. Communication cost is
// measured along the x/y axes (a 2-D latency embedding) and CPU load along
// the z axis with a *squared* weighting function that discourages the use
// of overloaded nodes such as the paper's "node a".
//
// The harness prints: the embedding quality of the latency plane (the part
// the paper takes from [14-17]), the z-axis distribution under the squared
// weighting, the identity of the overloaded exemplar node, and a scatter
// sample of the 3-D points (the data behind the figure).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/summary.h"
#include "common/table.h"
#include "coords/mds.h"

namespace sbon {
namespace {

void Run() {
  overlay::Sbon::Options opts;
  opts.space_spec = coords::CostSpaceSpec::LatencyAndLoad(2, 100.0);
  opts.load_params.mean = 0.3;
  opts.load_params.sigma = 0.25;
  opts.load_params.hotspot_frac = 0.02;
  opts.load_params.hotspot_mean = 0.95;
  auto sbon = bench::MakeTransitStubSbon(bench::Nodes(600), /*seed=*/42, opts);

  std::printf("topology: %s\n", sbon->topology().Summary().c_str());

  bench::Section("Latency-plane embedding quality (Vivaldi, 2-D)");
  {
    std::vector<Vec> coords;
    for (NodeId n = 0; n < sbon->topology().NumNodes(); ++n) {
      coords.push_back(sbon->cost_space().VectorCoord(n));
    }
    const coords::EmbeddingError err =
        coords::EvaluateEmbedding(sbon->latency(), coords);
    TableWriter t({"metric", "value"});
    t.AddRow({"median relative error",
              TableWriter::Fixed(err.median_relative_error, 4)});
    t.AddRow({"mean relative error",
              TableWriter::Fixed(err.mean_relative_error, 4)});
    t.AddRow({"p95 relative error",
              TableWriter::Fixed(err.p95_relative_error, 4)});
    t.AddRow({"stress", TableWriter::Fixed(err.stress, 4)});
    t.AddRow({"network mean latency (ms)",
              TableWriter::Fixed(sbon->latency().MeanLatency(), 2)});
    t.AddRow({"network diameter (ms)",
              TableWriter::Fixed(sbon->latency().MaxLatency(), 2)});
    std::printf("%s", t.Render().c_str());
  }

  bench::Section("z-axis: squared CPU-load weighting");
  {
    Summary raw, weighted;
    NodeId node_a = 0;
    double worst = -1.0;
    for (NodeId n : sbon->overlay_nodes()) {
      const double load = sbon->TotalLoad(n);
      raw.Add(load);
      weighted.Add(sbon->cost_space().WeightedScalar(n, 0));
      if (load > worst) {
        worst = load;
        node_a = n;
      }
    }
    TableWriter t({"metric", "raw load", "z = 100*load^2"});
    t.AddRow({"median", TableWriter::Fixed(raw.Median(), 3),
              TableWriter::Fixed(weighted.Median(), 2)});
    t.AddRow({"p95", TableWriter::Fixed(raw.Percentile(95), 3),
              TableWriter::Fixed(weighted.Percentile(95), 2)});
    t.AddRow({"max (node a)", TableWriter::Fixed(raw.Max(), 3),
              TableWriter::Fixed(weighted.Max(), 2)});
    std::printf("%s", t.Render().c_str());
    std::printf(
        "overloaded exemplar 'node a' = node %u: load=%.3f -> z=%.1f "
        "(%.1fx the median z),\nso mapping sees it %.1f cost-space ms "
        "farther from ideal than an idle twin.\n",
        node_a, worst, sbon->cost_space().WeightedScalar(node_a, 0),
        sbon->cost_space().WeightedScalar(node_a, 0) /
            std::max(1e-9, weighted.Median()),
        sbon->cost_space().WeightedScalar(node_a, 0));
  }

  bench::Section("scatter sample (x, y = latency plane; z = weighted load)");
  {
    TableWriter t({"node", "kind", "x", "y", "raw load", "z"});
    const auto& nodes = sbon->overlay_nodes();
    for (size_t i = 0; i < nodes.size(); i += nodes.size() / 20) {
      const NodeId n = nodes[i];
      const Vec& c = sbon->cost_space().VectorCoord(n);
      t.AddRow({std::to_string(n), "stub", TableWriter::Fixed(c[0], 1),
                TableWriter::Fixed(c[1], 1),
                TableWriter::Fixed(sbon->TotalLoad(n), 3),
                TableWriter::Fixed(
                    sbon->cost_space().WeightedScalar(n, 0), 2)});
    }
    std::printf("%s", t.Render().c_str());
    std::printf("(%zu overlay nodes total; every %zu-th shown)\n",
                nodes.size(), nodes.size() / 20);
  }

  bench::Section("weighting-function shapes at z-scale 100");
  {
    TableWriter t({"load", "identity", "squared (paper)", "exponential",
                   "threshold(0.7)"});
    coords::IdentityWeighting ident(100.0);
    coords::SquaredWeighting sq(100.0);
    coords::ExponentialWeighting ex(4.0, 100.0 / 53.598);  // normalized to 100 at 1
    coords::ThresholdWeighting th(0.7, 100.0 / 0.3);
    for (double load : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      t.AddRow({TableWriter::Fixed(load, 2),
                TableWriter::Fixed(ident.Apply(load), 1),
                TableWriter::Fixed(sq.Apply(load), 1),
                TableWriter::Fixed(ex.Apply(load), 1),
                TableWriter::Fixed(th.Apply(load), 1)});
    }
    std::printf("%s", t.Render().c_str());
  }
}

}  // namespace
}  // namespace sbon

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);
  std::printf(
      "Figure 2 reproduction: 600-node transit-stub SBON in a 3-D cost "
      "space\n(2 latency dims + squared CPU load dim)\n");
  sbon::Run();
  return 0;
}

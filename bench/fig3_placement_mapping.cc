// Reproduces Figure 3 of the paper: virtual placement of an unpinned
// service in the vector dimensions of the cost space, then physical mapping
// back to a node. Three claims are quantified:
//
//  1. Mapping error (distance between the virtually chosen coordinate and
//     the node the Hilbert/Chord catalog returns) "remains small for
//     realistic topologies" and shrinks as node density / probe width grow.
//  2. Load-aware mapping picks a lightly loaded node (N2) over a
//     latency-closer but overloaded one (N1) — the full-space distance
//     makes overloaded nodes "seem far away".
//  3. End-to-end: relaxation + mapping lands within a modest factor of the
//     exhaustive placement oracle.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/summary.h"
#include "common/table.h"
#include "overlay/metrics.h"
#include "placement/baselines.h"
#include "placement/mapping.h"
#include "placement/relaxation.h"
#include "query/enumerate.h"
#include "query/workload.h"

namespace sbon {
namespace {

using bench::MakeTransitStubSbon;
using bench::Section;
using overlay::Circuit;

query::QuerySpec RandomJoinSpec(overlay::Sbon* sbon, query::Catalog* cat,
                                size_t producers, Rng* rng) {
  query::WorkloadParams wp;
  wp.num_streams = producers;
  wp.min_streams_per_query = producers;
  wp.max_streams_per_query = producers;
  *cat = query::RandomCatalog(wp, sbon->overlay_nodes(), rng);
  return query::RandomQuery(wp, *cat, sbon->overlay_nodes(), rng);
}

void MappingErrorSweep() {
  Section("1. mapping error vs overlay size and probe width");
  TableWriter t({"nodes", "probe", "mean err (ms)", "p95 err (ms)",
                 "exact-oracle err", "mean net latency", "DHT hops/query"});
  for (size_t nodes : bench::DedupedSizes({100, 200, 400, 600})) {
    for (size_t probe : {4, 16, 48}) {
      Summary err, exact_err, hops;
      double mean_lat = 0.0;
      for (uint64_t seed = 1; seed <= bench::Sweep(10); ++seed) {
        auto sbon = MakeTransitStubSbon(nodes, seed * 131);
        mean_lat = sbon->latency().MeanLatency();
        query::Catalog cat;
        query::QuerySpec spec =
            RandomJoinSpec(sbon.get(), &cat, 3, &sbon->rng());
        auto plans =
            query::EnumeratePlans(spec, cat, query::EnumerationOptions{});
        if (!plans.ok()) continue;
        auto circuit = Circuit::FromPlan((*plans)[0], cat);
        if (!circuit.ok()) continue;
        placement::RelaxationPlacer placer;
        if (!placer.Place(&circuit.value(), sbon->cost_space()).ok()) {
          continue;
        }
        Circuit exact_circuit = circuit.value();
        placement::MappingOptions mo;
        mo.probe_width = probe;
        placement::MappingReport rep, erep;
        if (!placement::MapCircuit(&circuit.value(), *sbon, mo, &rep).ok()) {
          continue;
        }
        if (!placement::MapCircuitExact(&exact_circuit, *sbon, mo, &erep)
                 .ok()) {
          continue;
        }
        err.Add(rep.MeanMappingError());
        exact_err.Add(erep.MeanMappingError());
        hops.Add(static_cast<double>(rep.dht_cost.routing_hops) /
                 std::max<size_t>(1, rep.dht_cost.lookups));
      }
      t.AddRow({std::to_string(nodes), std::to_string(probe),
                TableWriter::Fixed(err.Mean(), 2),
                TableWriter::Fixed(err.Percentile(95), 2),
                TableWriter::Fixed(exact_err.Mean(), 2),
                TableWriter::Fixed(mean_lat, 1),
                TableWriter::Fixed(hops.Mean(), 1)});
    }
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "(mapping error is small relative to mean pairwise latency and "
      "shrinks with density/probe width;\n the exact-oracle column isolates "
      "Hilbert-walk error from plain quantization)\n");
}

void LoadAwareScenario() {
  Section("2. N1-vs-N2: load-aware mapping avoids overloaded nearest node");
  TableWriter t({"overload level", "trials", "avoided N1", "chosen load",
                 "blind-chosen load", "extra latency err (ms)"});
  for (double overload : {0.5, 0.75, 0.95}) {
    size_t avoided = 0, trials = 0;
    Summary aware_load, blind_load, extra_err;
    for (uint64_t seed = 1; seed <= bench::Sweep(20); ++seed) {
      auto sbon = MakeTransitStubSbon(bench::Nodes(200), seed * 977);
      query::Catalog cat;
      query::QuerySpec spec =
          RandomJoinSpec(sbon.get(), &cat, 2, &sbon->rng());
      auto plans =
          query::EnumeratePlans(spec, cat, query::EnumerationOptions{});
      if (!plans.ok()) continue;
      auto base = Circuit::FromPlan((*plans)[0], cat);
      if (!base.ok()) continue;
      placement::RelaxationPlacer placer;
      if (!placer.Place(&base.value(), sbon->cost_space()).ok()) continue;

      // Find the load-blind choice (N1) and overload it.
      Circuit blind = base.value();
      placement::MappingOptions blind_opts;
      blind_opts.load_aware = false;
      if (!placement::MapCircuit(&blind, *sbon, blind_opts, nullptr).ok()) {
        continue;
      }
      const int v = blind.PlaceableVertices().empty()
                        ? -1
                        : blind.PlaceableVertices()[0];
      if (v < 0) continue;
      const NodeId n1 = blind.vertex(v).host;
      sbon->SetBaseLoad(n1, overload);
      sbon->RefreshIndex();

      Circuit aware = base.value();
      placement::MappingReport rep;
      if (!placement::MapCircuit(&aware, *sbon, placement::MappingOptions{},
                                 &rep)
               .ok()) {
        continue;
      }
      Circuit blind2 = base.value();
      if (!placement::MapCircuit(&blind2, *sbon, blind_opts, nullptr).ok()) {
        continue;
      }
      ++trials;
      if (aware.vertex(v).host != n1) ++avoided;
      aware_load.Add(sbon->TotalLoad(aware.vertex(v).host));
      blind_load.Add(sbon->TotalLoad(blind2.vertex(v).host));
      extra_err.Add(rep.MeanMappingError());
    }
    t.AddRow({TableWriter::Fixed(overload, 2), std::to_string(trials),
              TableWriter::Fixed(100.0 * avoided / std::max<size_t>(1, trials),
                                 1) +
                  "%",
              TableWriter::Fixed(aware_load.Mean(), 3),
              TableWriter::Fixed(blind_load.Mean(), 3),
              TableWriter::Fixed(extra_err.Mean(), 2)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "(as N1's load grows, the full cost-space distance pushes it away: "
      "the mapper detours to\n lightly loaded N2 at a small latency-space "
      "cost — exactly the Figure 3 narrative)\n");
}

void OracleGap() {
  Section("3. relaxation + mapping vs exhaustive placement oracle");
  TableWriter t({"nodes", "trials", "relax usage", "oracle usage",
                 "mean gap", "p90 gap"});
  for (size_t nodes : bench::DedupedSizes({100, 200})) {
    Summary gap;
    Summary relax_usage, oracle_usage;
    size_t trials = 0;
    for (uint64_t seed = 1; seed <= bench::Sweep(12); ++seed) {
      auto sbon = MakeTransitStubSbon(nodes, seed * 271);
      // Pure 3-way join (2 services) so the exhaustive oracle is tractable:
      // no filter/aggregate ops.
      query::Catalog cat;
      std::vector<StreamId> ids;
      for (int i = 0; i < 3; ++i) {
        ids.push_back(cat.AddStream(
            query::IndexedStreamName(i), sbon->rng().Uniform(20.0, 200.0), 128.0,
            sbon->overlay_nodes()[sbon->rng().UniformInt(
                sbon->overlay_nodes().size())]));
      }
      query::QuerySpec spec = query::QuerySpec::SimpleJoin(
          ids,
          sbon->overlay_nodes()[sbon->rng().UniformInt(
              sbon->overlay_nodes().size())],
          0.001);
      auto plans =
          query::EnumeratePlans(spec, cat, query::EnumerationOptions{});
      if (!plans.ok()) continue;
      auto circuit = Circuit::FromPlan((*plans)[0], cat);
      if (!circuit.ok()) continue;
      Circuit relax_c = circuit.value();
      placement::RelaxationPlacer placer;
      if (!placer.Place(&relax_c, sbon->cost_space()).ok()) continue;
      if (!placement::MapCircuit(&relax_c, *sbon,
                                 placement::MappingOptions{}, nullptr)
               .ok()) {
        continue;
      }
      Circuit oracle_c = circuit.value();
      placement::ExhaustiveOraclePlacer::Params op;
      op.max_services = 2;
      op.node_sample = 120;  // keep n^2 tractable
      placement::ExhaustiveOraclePlacer oracle(op);
      if (!oracle.Place(&oracle_c, *sbon).ok()) continue;
      auto rc =
          overlay::ComputeCircuitCost(relax_c, sbon->latency(), nullptr);
      auto oc =
          overlay::ComputeCircuitCost(oracle_c, sbon->latency(), nullptr);
      if (!rc.ok() || !oc.ok() || oc->network_usage <= 0.0) continue;
      ++trials;
      relax_usage.Add(rc->network_usage / 1000.0);
      oracle_usage.Add(oc->network_usage / 1000.0);
      gap.Add(rc->network_usage / oc->network_usage);
    }
    t.AddRow({std::to_string(nodes), std::to_string(trials),
              TableWriter::Num(relax_usage.Mean()),
              TableWriter::Num(oracle_usage.Mean()),
              TableWriter::Fixed(gap.Mean(), 3),
              TableWriter::Fixed(gap.Percentile(90), 3)});
  }
  std::printf("%s", t.Render().c_str());
}

}  // namespace
}  // namespace sbon

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);
  std::printf(
      "Figure 3 reproduction: virtual placement + physical mapping in the "
      "cost space\n");
  sbon::MappingErrorSweep();
  sbon::LoadAwareScenario();
  sbon::OracleGap();
  return 0;
}

// Reproduces Figure 4 of the paper: multi-query optimization pruned by a
// radius-r hyper-sphere in the cost space. Only circuits whose reusable
// services sit within radius r of the new service's virtual coordinate are
// considered for reuse; faraway circuits (the paper's C1, C2) are ignored,
// bounding optimizer work, while nearby compatible services (the paper's
// S3) still get merged, reducing the marginal cost of the new circuit.
//
// Sweep: radius r from 0 (no reuse / pure integrated) to unbounded (no
// pruning). Expected shape: optimizer work (reuse candidates examined, DHT
// probes) grows with r; marginal circuit cost drops steeply at small r and
// then flattens — most of the benefit of unbounded search at a fraction of
// its cost, which is the pruning argument of Sec. 3.4.

#include <cstdio>
#include <limits>
#include <memory>

#include "bench/bench_util.h"
#include "common/summary.h"
#include "common/table.h"
#include "engine/stream_engine.h"
#include "overlay/metrics.h"
#include "query/workload.h"

namespace sbon {
namespace {

using bench::MakeTransitStubEngine;
using bench::Section;

engine::StrategySpec MultiQueryStrategy(double radius) {
  engine::StrategySpec s;
  s.optimizer = "multi-query";
  core::OptimizerConfig cfg;
  cfg.enumeration.top_k = 4;
  s.config = cfg;
  core::MultiQueryOptimizer::Params params;
  params.reuse_radius = radius;
  s.multi_query = params;
  return s;
}

void Run() {
  // A workload with heavy stream sharing: few streams, many queries.
  query::WorkloadParams wp;
  wp.num_streams = 12;
  wp.min_streams_per_query = 2;
  wp.max_streams_per_query = 4;
  // Coarse selectivity grid so identical (stream set, selectivity) ops
  // recur across queries and reuse signatures collide meaningfully.
  wp.join_sel_log10_min = -3.0;
  wp.join_sel_log10_max = -3.0;
  wp.filter_prob = 0.0;
  wp.aggregate_prob = 0.0;

  auto engine = MakeTransitStubEngine(bench::Nodes(300), /*seed=*/2025);
  overlay::Sbon& sbon = engine->sbon();
  engine->SetCatalog(
      query::RandomCatalog(wp, sbon.overlay_nodes(), &sbon.rng()));

  // Populate the SBON with a base of running circuits (reuse enabled so
  // the base itself shares services, as a mature SBON would).
  std::vector<query::QuerySpec> base;
  for (size_t i = 0; i < bench::Sweep(40, 8); ++i) {
    base.push_back(query::RandomQuery(wp, engine->catalog(),
                                      sbon.overlay_nodes(), &sbon.rng()));
  }
  (void)engine->SubmitAll(base, MultiQueryStrategy(/*radius=*/60.0));
  std::printf("base workload: %zu circuits, %zu service instances, "
              "total usage %.4g KB*ms/s\n",
              sbon.circuits().size(), sbon.NumServices(),
              sbon.TotalNetworkUsage() / 1000.0);

  // Fresh queries evaluated (not installed) under every radius.
  std::vector<query::QuerySpec> probes;
  for (size_t i = 0; i < bench::Sweep(25, 5); ++i) {
    probes.push_back(query::RandomQuery(wp, engine->catalog(),
                                        sbon.overlay_nodes(), &sbon.rng()));
  }

  Section("radius sweep (per new query, averaged over " +
          std::to_string(probes.size()) + " queries)");
  TableWriter t({"radius r", "reuse cands", "ring probes", "reused svcs",
                 "est marginal cost", "true marginal usage",
                 "vs no-reuse"});
  double no_reuse_usage = -1.0;
  for (double radius : {0.0, 5.0, 15.0, 30.0, 60.0, 120.0, 240.0, -1.0}) {
    Summary cands, probes_s, reused, est_cost, usage;
    for (const query::QuerySpec& q : probes) {
      auto r = engine->Optimize(q, MultiQueryStrategy(radius));
      if (!r.ok()) continue;
      cands.Add(static_cast<double>(r->reuse_candidates_considered));
      probes_s.Add(static_cast<double>(r->mapping.dht_cost.ring_probes));
      reused.Add(static_cast<double>(r->services_reused));
      est_cost.Add(r->estimated_cost / 1000.0);
      auto cost = overlay::ComputeCircuitCost(r->circuit, sbon.latency(),
                                              &sbon.cost_space());
      if (cost.ok()) usage.Add(cost->network_usage / 1000.0);
    }
    if (no_reuse_usage < 0.0) no_reuse_usage = usage.Mean();
    const std::string rlabel =
        radius < 0.0 ? "unbounded" : TableWriter::Fixed(radius, 0);
    t.AddRow({rlabel, TableWriter::Fixed(cands.Mean(), 1),
              TableWriter::Fixed(probes_s.Mean(), 1),
              TableWriter::Fixed(reused.Mean(), 2),
              TableWriter::Num(est_cost.Mean()),
              TableWriter::Num(usage.Mean()),
              TableWriter::Fixed(
                  100.0 * (1.0 - usage.Mean() /
                                     std::max(1e-9, no_reuse_usage)),
                  1) +
                  "%"});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\nShape check (paper claim): work (candidates, probes) grows with "
      "r; marginal cost\nfalls quickly then flattens — a small radius "
      "captures most of unbounded reuse's benefit\nwhile ignoring faraway "
      "circuits like C1/C2 in the figure.\n");
}

}  // namespace
}  // namespace sbon

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);
  std::printf(
      "Figure 4 reproduction: multi-query optimization with cost-space "
      "radius pruning\n");
  sbon::Run();
  return 0;
}

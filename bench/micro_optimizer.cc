// Kernel throughput of the optimizer path: plan enumeration, relaxation
// placement, physical mapping, and the full optimizers end to end.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "engine/registry.h"
#include "placement/relaxation.h"
#include "query/enumerate.h"
#include "query/workload.h"

namespace sbon {
namespace {

query::Catalog UniformCatalog(size_t n, Rng* rng) {
  query::Catalog cat;
  for (size_t i = 0; i < n; ++i) {
    cat.AddStream(query::IndexedStreamName(i), rng->Uniform(10, 500), 128.0,
                  static_cast<NodeId>(i));
  }
  return cat;
}

void BM_EnumeratePlans(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t top_k = static_cast<size_t>(state.range(1));
  Rng rng(1);
  query::Catalog cat = UniformCatalog(n, &rng);
  std::vector<StreamId> ids;
  for (size_t i = 0; i < n; ++i) ids.push_back(static_cast<StreamId>(i));
  const query::QuerySpec spec =
      query::QuerySpec::SimpleJoin(ids, 0, 0.001);
  query::EnumerationOptions opts;
  opts.top_k = top_k;
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::EnumeratePlans(spec, cat, opts));
  }
}
BENCHMARK(BM_EnumeratePlans)
    ->Args({4, 1})
    ->Args({4, 8})
    ->Args({6, 1})
    ->Args({6, 8})
    ->Args({8, 8})
    ->Args({10, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_RelaxationPlace(benchmark::State& state) {
  const size_t producers = static_cast<size_t>(state.range(0));
  auto sbon = bench::MakeTransitStubSbon(200, 11);
  Rng rng(2);
  query::Catalog cat;
  std::vector<StreamId> ids;
  for (size_t i = 0; i < producers; ++i) {
    ids.push_back(cat.AddStream(
        query::IndexedStreamName(i), rng.Uniform(10, 500), 128.0,
        sbon->overlay_nodes()[rng.UniformInt(sbon->overlay_nodes().size())]));
  }
  const query::QuerySpec spec = query::QuerySpec::SimpleJoin(
      ids, sbon->overlay_nodes()[0], 0.001);
  auto plans = query::EnumeratePlans(spec, cat, query::EnumerationOptions{});
  auto circuit = overlay::Circuit::FromPlan((*plans)[0], cat);
  placement::RelaxationPlacer placer;
  for (auto _ : state) {
    overlay::Circuit c = circuit.value();
    benchmark::DoNotOptimize(placer.Place(&c, sbon->cost_space()));
  }
}
BENCHMARK(BM_RelaxationPlace)->Arg(3)->Arg(5)->Arg(8)->Unit(
    benchmark::kMicrosecond);

void BM_MapCircuit(benchmark::State& state) {
  auto sbon = bench::MakeTransitStubSbon(
      static_cast<size_t>(state.range(0)), 12);
  Rng rng(3);
  query::Catalog cat;
  std::vector<StreamId> ids;
  for (size_t i = 0; i < 4; ++i) {
    ids.push_back(cat.AddStream(
        query::IndexedStreamName(i), rng.Uniform(10, 500), 128.0,
        sbon->overlay_nodes()[rng.UniformInt(sbon->overlay_nodes().size())]));
  }
  const query::QuerySpec spec = query::QuerySpec::SimpleJoin(
      ids, sbon->overlay_nodes()[0], 0.001);
  auto plans = query::EnumeratePlans(spec, cat, query::EnumerationOptions{});
  auto circuit = overlay::Circuit::FromPlan((*plans)[0], cat);
  placement::RelaxationPlacer placer;
  (void)placer.Place(&circuit.value(), sbon->cost_space());
  for (auto _ : state) {
    overlay::Circuit c = circuit.value();
    benchmark::DoNotOptimize(
        placement::MapCircuit(&c, *sbon, placement::MappingOptions{},
                              nullptr));
  }
}
BENCHMARK(BM_MapCircuit)->Arg(100)->Arg(600)->Unit(benchmark::kMicrosecond);

void RunOptimizerBench(benchmark::State& state, int which) {
  auto sbon = bench::MakeTransitStubSbon(200, 13);
  query::WorkloadParams wp;
  wp.num_streams = 16;
  wp.min_streams_per_query = 4;
  wp.max_streams_per_query = 4;
  query::Catalog cat =
      query::RandomCatalog(wp, sbon->overlay_nodes(), &sbon->rng());
  engine::OptimizerSpec spec;
  spec.config.enumeration.top_k = 8;
  spec.multi_query.reuse_radius = 60.0;
  spec.placer = std::make_shared<placement::RelaxationPlacer>();
  auto& registry = engine::OptimizerRegistry::Global();
  auto two = std::move(registry.Create("two-step", spec).value());
  auto integrated = std::move(registry.Create("integrated", spec).value());
  auto multi = std::move(registry.Create("multi-query", spec).value());
  // Base circuits so multi-query has something to reuse.
  for (int i = 0; i < 10; ++i) {
    query::QuerySpec q =
        query::RandomQuery(wp, cat, sbon->overlay_nodes(), &sbon->rng());
    auto r = integrated->Optimize(q, cat, sbon.get());
    if (r.ok()) (void)sbon->InstallCircuit(std::move(r->circuit));
  }
  std::vector<query::QuerySpec> specs;
  for (int i = 0; i < 32; ++i) {
    specs.push_back(
        query::RandomQuery(wp, cat, sbon->overlay_nodes(), &sbon->rng()));
  }
  size_t i = 0;
  for (auto _ : state) {
    const query::QuerySpec& q = specs[i & 31];
    switch (which) {
      case 0:
        benchmark::DoNotOptimize(two->Optimize(q, cat, sbon.get()));
        break;
      case 1:
        benchmark::DoNotOptimize(integrated->Optimize(q, cat, sbon.get()));
        break;
      case 2:
        benchmark::DoNotOptimize(multi->Optimize(q, cat, sbon.get()));
        break;
    }
    ++i;
  }
}

void BM_OptimizeTwoStep(benchmark::State& state) {
  RunOptimizerBench(state, 0);
}
void BM_OptimizeIntegrated(benchmark::State& state) {
  RunOptimizerBench(state, 1);
}
void BM_OptimizeMultiQuery(benchmark::State& state) {
  RunOptimizerBench(state, 2);
}
BENCHMARK(BM_OptimizeTwoStep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OptimizeIntegrated)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OptimizeMultiQuery)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sbon

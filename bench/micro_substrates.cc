// Kernel throughput of the substrate pieces: Hilbert curve, Chord routing,
// coordinate-index queries, Vivaldi updates, shortest paths.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "coords/vivaldi.h"
#include "dht/chord.h"
#include "dht/coord_index.h"
#include "dht/hilbert.h"
#include "net/generators.h"
#include "net/shortest_path.h"

namespace sbon {
namespace {

void BM_HilbertEncode(benchmark::State& state) {
  const unsigned dims = static_cast<unsigned>(state.range(0));
  const unsigned bits = 10;
  Rng rng(1);
  std::vector<std::vector<uint32_t>> inputs;
  for (int i = 0; i < 256; ++i) {
    std::vector<uint32_t> axes(dims);
    for (auto& a : axes) {
      a = static_cast<uint32_t>(rng.UniformInt(uint64_t{1} << bits));
    }
    inputs.push_back(std::move(axes));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dht::HilbertEncode(inputs[i & 255], bits));
    ++i;
  }
}
BENCHMARK(BM_HilbertEncode)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

void BM_HilbertDecode(benchmark::State& state) {
  const unsigned dims = static_cast<unsigned>(state.range(0));
  const unsigned bits = 10;
  Rng rng(2);
  std::vector<dht::U128> keys;
  for (int i = 0; i < 256; ++i) {
    keys.push_back(dht::U128(0, rng.Next() &
                                    ((1ULL << (dims * bits)) - 1)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dht::HilbertDecode(keys[i & 255], dims, bits));
    ++i;
  }
}
BENCHMARK(BM_HilbertDecode)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

void BM_ChordLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  dht::ChordRing ring;
  for (size_t i = 0; i < n; ++i) {
    ring.Join(dht::HashU64(rng.Next()), static_cast<NodeId>(i));
  }
  ring.Stabilize();
  size_t hops = 0, lookups = 0;
  for (auto _ : state) {
    auto r = ring.Lookup(dht::HashU64(rng.Next()),
                         dht::HashU64(rng.Next()));
    benchmark::DoNotOptimize(r);
    hops += r.ok() ? r->hops : 0;
    ++lookups;
  }
  state.counters["hops"] =
      benchmark::Counter(static_cast<double>(hops) / lookups);
}
BENCHMARK(BM_ChordLookup)->Arg(64)->Arg(256)->Arg(1024);

void BM_ChordStabilize(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  dht::ChordRing ring;
  for (size_t i = 0; i < n; ++i) {
    ring.Join(dht::HashU64(rng.Next()), static_cast<NodeId>(i));
  }
  for (auto _ : state) {
    ring.Stabilize();
  }
}
BENCHMARK(BM_ChordStabilize)->Arg(64)->Arg(256);

dht::CoordinateIndex MakeIndex(size_t n, Rng* rng) {
  std::vector<Vec> coords;
  for (size_t i = 0; i < n; ++i) {
    coords.push_back(Vec{rng->Uniform(0, 200), rng->Uniform(0, 200),
                         rng->Uniform(0, 100)});
  }
  dht::CoordinateIndex idx(dht::HilbertQuantizer::FitTo(coords, 10));
  for (size_t i = 0; i < n; ++i) {
    idx.Publish(static_cast<NodeId>(i), coords[i]);
  }
  idx.Stabilize();
  return idx;
}

void BM_IndexKNearest(benchmark::State& state) {
  Rng rng(5);
  auto idx = MakeIndex(static_cast<size_t>(state.range(0)), &rng);
  for (auto _ : state) {
    const Vec target{rng.Uniform(0, 200), rng.Uniform(0, 200), 0.0};
    benchmark::DoNotOptimize(idx.KNearest(target, 8, 16));
  }
}
BENCHMARK(BM_IndexKNearest)->Arg(100)->Arg(600)->Arg(2000);

void BM_IndexWithinRadius(benchmark::State& state) {
  Rng rng(6);
  auto idx = MakeIndex(600, &rng);
  const double radius = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const Vec target{rng.Uniform(0, 200), rng.Uniform(0, 200), 0.0};
    benchmark::DoNotOptimize(idx.WithinRadius(target, radius));
  }
}
BENCHMARK(BM_IndexWithinRadius)->Arg(10)->Arg(40)->Arg(160);

void BM_VivaldiUpdate(benchmark::State& state) {
  Rng rng(7);
  coords::VivaldiSystem sys(512, coords::VivaldiSystem::Params{}, &rng);
  for (auto _ : state) {
    const NodeId a = static_cast<NodeId>(rng.UniformInt(uint64_t{512}));
    const NodeId b = static_cast<NodeId>(rng.UniformInt(uint64_t{512}));
    if (a == b) continue;
    sys.Update(a, b, rng.Uniform(1.0, 200.0));
  }
}
BENCHMARK(BM_VivaldiUpdate);

void BM_VivaldiFullRun(benchmark::State& state) {
  Rng trng(8);
  net::TransitStubParams p;
  p.transit_domains = 2;
  p.stub_domains_per_transit_node = 2;
  p.nodes_per_stub_domain = static_cast<size_t>(state.range(0));
  auto topo = net::GenerateTransitStub(p, &trng);
  const net::LatencyMatrix lat(*topo);
  for (auto _ : state) {
    Rng rng(9);
    coords::VivaldiRunOptions run;
    run.rounds = 30;
    benchmark::DoNotOptimize(coords::RunVivaldi(
        lat, coords::VivaldiSystem::Params{}, run, &rng));
  }
  state.counters["nodes"] =
      benchmark::Counter(static_cast<double>(lat.NumNodes()));
}
BENCHMARK(BM_VivaldiFullRun)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_LatencyMatrix(benchmark::State& state) {
  Rng trng(10);
  net::TransitStubParams p;
  p.nodes_per_stub_domain = static_cast<size_t>(state.range(0));
  auto topo = net::GenerateTransitStub(p, &trng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::LatencyMatrix(*topo));
  }
  state.counters["nodes"] =
      benchmark::Counter(static_cast<double>(topo->NumNodes()));
}
BENCHMARK(BM_LatencyMatrix)->Arg(4)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sbon

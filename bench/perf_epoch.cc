// End-to-end throughput benchmark of the epoch/submit hot path: one engine,
// N nodes, Q continuous queries, E epochs of AdvanceEpoch (latency jitter,
// ambient load, online Vivaldi, dirty-driven index refresh) interleaved with
// steady-state Submit/Remove churn and local re-optimization — the loop the
// paper claims stays cheap enough to run continuously.
//
// Emits machine-readable JSON via --json=PATH (schema documented in the
// README "Performance" section); BENCH_epoch.json at the repo root is the
// recorded baseline from a full run at N=512 / Q=64. The harness also
// verifies, via a global allocation counter, that the Vivaldi update and
// KNearest inner loops are heap-free per call in steady state.
//
// Flags: --smoke (tiny sweep), --json=PATH, --nodes=N, --queries=Q,
// --epochs=E, --epsilon=X (refresh displacement threshold, cost-space
// units), --churn-rate=R (expected node crashes per epoch in the churn
// section; crashed hosts evict their services and the engine re-places
// orphaned queries under their original handles), --threads=T (worker
// threads for the epoch pipeline's parallel stages; T=0 defers to the
// SBON_EPOCH_THREADS environment variable exactly like the engine API;
// results are bit-identical at any T), --fabric=auto|dense|sparse (latency
// substrate backend; see README "Architecture"), --exec=oracle|message
// (coordinate/ring maintenance execution for the engine-loop sections; see
// README "Execution modes"), --faults=LOSS,DUP[,JITTER_MS] (fault rates of
// the chaos section's injection plan; defaults 0.10,0.05,0), --kernels
// (print the per-epoch hot-kernel attribution table; the `kernels` JSON
// section is always emitted), --baseline=PATH + --baseline-tolerance=FRAC
// (regression gate: fail if churn-free ns_per_epoch exceeds the baseline
// JSON's figure by more than FRAC, default 0.5).
//
// The `parallel` section measures the pure AdvanceEpoch pipeline (no
// submit/remove churn in the loop) at threads=1 vs threads=4 and verifies
// the two runs end bit-identical. `hw_threads` records the hardware
// concurrency the numbers were taken on — on a box with fewer cores than
// the parallel run's thread count a speedup is unmeasurable, so the JSON
// reports it as null ("skipped-single-core") instead of recording the ~1x
// a time-sliced run produces; the CI release-perf lane regenerates the
// JSON on multi-core runners.
//
// The `sparse` section measures the generative sparse fabric backend at two
// sizes (N/5 and N): overlay bring-up, a TickNetwork-only epoch (O(1) on
// this backend), a full maintenance epoch (tick + load + 1 Vivaldi sample
// per node + dirty refresh), and the largest single heap allocation, which
// must stay far below an N x N matrix — that flat-memory guarantee is the
// whole point of the backend. Above 4096 nodes the engine-loop sections are
// skipped (they exist to track the dense-scale baseline) and the binary
// runs the sparse scaling section only, which is what lets
// `--fabric=sparse --nodes=100000 --smoke` complete in minutes.
//
// The `decentralized` section always runs on a pinned small workload
// (independent of --nodes): a message-mode engine with a scripted crash
// burst and partition window, reporting control-traffic volume
// (bytes/node/epoch, per-protocol messages), ring convergence after the
// last churn event, placement-staleness percentiles, and a threads=1 vs
// threads=4 replay check (message stages are serial by contract, so the
// full run must be bit-identical at any thread count).
//
// The `chaos` section reruns that workload with seeded fault injection
// (--faults rates on every protocol), ack/retry/backoff reliability and
// the decentralized failure detector enabled, reporting delivery rate,
// retry byte overhead, detection-latency percentiles, false suspicions,
// and the same threads=1 vs threads=4 replay gate — faulty runs replay
// bit-identically too, because all fault draws come from a dedicated
// seeded stream.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/kernel_stats.h"
#include "common/rng.h"
#include "coords/vivaldi.h"
#include "engine/stream_engine.h"
#include "msg/agents.h"
#include "msg/message.h"
#include "net/churn.h"
#include "net/shortest_path.h"
#include "net/sparse_fabric.h"
#include "query/workload.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new bumps it, so a delta across
// a code region counts that region's heap allocations exactly. The max-size
// watermark catches any O(n^2) buffer the sparse sections must never make.
namespace {
uint64_t g_alloc_count = 0;  // also registered with KernelStats, so the
                             // hot-kernel timers attribute their alloc share
size_t g_max_alloc_size = 0;
}  // namespace

// gcc pairs the malloc/free inside these replacements with the inlined
// callers' new/delete and reports a spurious mismatch once container
// construction inlines far enough; the replacement set is complete and
// consistent, so the warning is suppressed for these definitions.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (size > g_max_alloc_size) g_max_alloc_size = size;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace sbon {
namespace {

using Clock = std::chrono::steady_clock;

double NsSince(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

struct EpochLoopResult {
  double ns_per_epoch = 0.0;
  double ns_per_submit = 0.0;  // initial submission, per query
  double allocs_per_epoch = 0.0;
  size_t queries_running = 0;
  overlay::IndexRefreshStats refresh;  // cumulative over the loop
  engine::RepairStats repair;          // cumulative (churn_rate > 0 only)
  KernelStatsSnapshot kernels;         // hot-kernel delta across the loop
  size_t epochs = 0;                   // divisor for per-epoch attribution
};

// Builds an engine, submits Q queries, then runs E churn epochs. One
// function so the epsilon/churn sweeps measure identical work per
// configuration. `churn_rate > 0` attaches a seeded ChurnModel: every
// epoch additionally pays for node crashes/rejoins and the engine's
// handle-stable repair of orphaned queries. `threads = 0` defers to
// SBON_EPOCH_THREADS via the engine's own resolution.
EpochLoopResult RunEpochLoop(size_t nodes, size_t queries, size_t epochs,
                             double epsilon, uint64_t seed,
                             double churn_rate = 0.0, size_t threads = 1,
                             engine::ExecMode exec = engine::ExecMode::kOracle) {
  engine::EngineOptions opts;
  opts.sbon.latency_jitter_sigma = 0.1;
  auto eng = bench::MakeTransitStubEngine(nodes, seed, std::move(opts));
  overlay::Sbon& sbon = eng->sbon();

  query::WorkloadParams wp;
  wp.num_streams = 48;
  eng->SetCatalog(query::RandomCatalog(wp, sbon.overlay_nodes(), &sbon.rng()));
  std::vector<query::QuerySpec> specs;
  specs.reserve(queries);
  for (size_t q = 0; q < queries; ++q) {
    specs.push_back(query::RandomQuery(wp, eng->catalog(),
                                       sbon.overlay_nodes(), &sbon.rng()));
  }

  EpochLoopResult out;
  std::vector<engine::QueryHandle> handles;
  const Clock::time_point submit_start = Clock::now();
  for (const query::QuerySpec& spec : specs) {
    auto h = eng->Submit(spec);
    if (h.ok()) handles.push_back(*h);
  }
  out.ns_per_submit =
      NsSince(submit_start) / static_cast<double>(std::max<size_t>(
                                  1, handles.size()));
  out.queries_running = handles.size();
  if (handles.empty()) return out;

  engine::EpochOptions epoch;
  epoch.dt = 1.0;
  epoch.tick_network = true;
  epoch.vivaldi_samples = 1;
  epoch.refresh_index = true;
  epoch.refresh_epsilon = epsilon;
  epoch.threads = threads;
  epoch.exec_mode = exec;
  // Stack-constructed (a heap ChurnModel here trips gcc's
  // -Wmismatched-new-delete against this file's counting operator new);
  // only attached when the churn section is measured.
  net::ChurnModel::Params cp;
  cp.crash_rate = churn_rate;
  cp.mean_downtime_epochs = 4.0;
  cp.seed = seed * 9176 + 1;
  net::ChurnModel churn_model(sbon.overlay_nodes(), cp);
  if (churn_rate > 0.0) epoch.churn = &churn_model;
  engine::ReoptPolicy local_reopt;  // defaults: kLocal

  const overlay::IndexRefreshStats before = sbon.index_refresh_stats();
  const KernelStatsSnapshot kernels_before = KernelStats::Instance().Snapshot();
  const uint64_t allocs_before = g_alloc_count;
  const Clock::time_point loop_start = Clock::now();
  for (size_t e = 0; e < epochs; ++e) {
    eng->AdvanceEpoch(epoch);
    // Steady-state churn: re-optimize one running query locally and replace
    // another (Remove + Submit), rotating through the set.
    (void)eng->Reoptimize(handles[e % handles.size()], local_reopt);
    const size_t victim = (e * 7 + 3) % handles.size();
    // NotFound = the query was dropped by churn repair; either way the
    // slot is free and the steady-state replacement resubmits it (which
    // can itself fail while the spec's producer is down — retried the
    // next time the slot comes around).
    const Status removed = eng->Remove(handles[victim]);
    if (removed.ok() || removed.code() == StatusCode::kNotFound) {
      auto h = eng->Submit(specs[victim % specs.size()]);
      if (h.ok()) handles[victim] = *h;
    }
  }
  out.ns_per_epoch = NsSince(loop_start) / static_cast<double>(epochs);
  out.allocs_per_epoch =
      static_cast<double>(g_alloc_count - allocs_before) /
      static_cast<double>(epochs);
  out.kernels = KernelStats::Instance().Snapshot().Since(kernels_before);
  out.epochs = epochs;
  const overlay::IndexRefreshStats after = sbon.index_refresh_stats();
  out.refresh.refreshes = after.refreshes - before.refreshes;
  out.refresh.republished = after.republished - before.republished;
  out.refresh.skipped = after.skipped - before.skipped;
  out.refresh.quiet_refreshes =
      after.quiet_refreshes - before.quiet_refreshes;
  out.repair = eng->repair_stats();
  return out;
}

struct PipelineRunResult {
  double ns_per_epoch = 0.0;
  uint64_t fingerprint = 0;  ///< bit-pattern hash of coords + live latency
};

// FNV-1a over the bit patterns of the parallel stages' outputs: every
// vector coordinate, every scalar penalty, and a strided sample of the live
// latency view (full coverage up to ~64k pairs; the same deterministic
// stride either side of a comparison, so runs that are bit-identical hash
// identically and a single differing ulp in a sampled pair does not).
// Virtual per-pair reads instead of raw matrix access: works on any fabric
// backend, dense or sparse.
uint64_t StateFingerprint(const overlay::Sbon& sbon) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  const auto& space = sbon.cost_space();
  for (NodeId n = 0; n < space.NumNodes(); ++n) {
    const Vec& v = space.VectorCoord(n);
    for (size_t d = 0; d < v.dims(); ++d) mix(v[d]);
    mix(space.ScalarPenalty(n));
  }
  const size_t nn = sbon.topology().NumNodes();
  const net::LatencyView& lat = sbon.latency();
  const size_t pairs = nn * nn;
  const size_t stride = std::max<size_t>(1, pairs / 65536);
  for (size_t i = 0; i < pairs; i += stride) {
    mix(lat.Latency(static_cast<NodeId>(i / nn),
                    static_cast<NodeId>(i % nn)));
  }
  return h;
}

// The pure epoch pipeline (AdvanceEpoch only, no submit/remove churn in
// the loop) under a realistic maintenance epoch: jitter resample, ambient
// load, 4 online Vivaldi samples per node, dirty refresh. This is the
// workload the `parallel` JSON section compares across thread counts —
// identical seeds must end in bit-identical state at any thread count.
PipelineRunResult RunPipelineOnly(size_t nodes, size_t queries,
                                  size_t epochs, size_t threads,
                                  uint64_t seed,
                                  engine::ExecMode exec =
                                      engine::ExecMode::kOracle) {
  engine::EngineOptions opts;
  opts.sbon.latency_jitter_sigma = 0.1;
  auto eng = bench::MakeTransitStubEngine(nodes, seed, std::move(opts));
  overlay::Sbon& sbon = eng->sbon();

  query::WorkloadParams wp;
  wp.num_streams = 48;
  eng->SetCatalog(query::RandomCatalog(wp, sbon.overlay_nodes(), &sbon.rng()));
  for (size_t q = 0; q < queries; ++q) {
    (void)eng->Submit(query::RandomQuery(wp, eng->catalog(),
                                         sbon.overlay_nodes(), &sbon.rng()));
  }

  engine::EpochOptions epoch;
  epoch.dt = 1.0;
  epoch.tick_network = true;
  epoch.vivaldi_samples = 4;
  epoch.refresh_index = true;
  epoch.refresh_epsilon = 1.0;
  epoch.threads = threads;
  epoch.exec_mode = exec;
  eng->AdvanceEpoch(epoch);  // warm-up (pool spawn, cold caches)

  PipelineRunResult out;
  const Clock::time_point start = Clock::now();
  for (size_t e = 0; e < epochs; ++e) eng->AdvanceEpoch(epoch);
  out.ns_per_epoch = NsSince(start) / static_cast<double>(epochs);
  out.fingerprint = StateFingerprint(sbon);
  return out;
}

struct MessageModeResult {
  size_t nodes = 0;
  size_t queries = 0;
  size_t epochs = 0;         // active epochs measured (drain excluded)
  double ns_per_epoch = 0.0;
  msg::TrafficSummary summary;
  uint64_t fingerprint = 0;  ///< overlay state + traffic counters
};

// The decentralized-execution workload: pinned size (this section tracks
// per-protocol traffic constants and convergence behavior, not scale), a
// scripted crash burst at epoch 2 and a partition window through the
// middle of the run, steady-state query replacement so placements keep
// sampling publish staleness — including under the partition — and a
// sampling-free drain at the end. The drain is what makes convergence
// observable: ring publishes are displacement-gated, so they never go
// quiet while Vivaldi keeps sampling; once sampling stops, the epochs
// until the publish stream dries up after the last churn event are the
// reported convergence figure.
//
// The chaos section reruns the same workload with `mp` carrying a fault
// plan plus reliability/detector hardening, and a longer drain so capped
// retry backoff chains finish inside the convergence window.
MessageModeResult RunMessageSection(
    size_t threads, uint64_t seed,
    const msg::RuntimeParams& mp = msg::RuntimeParams(),
    size_t drain_epochs = 8) {
  const size_t nodes = 256;
  const size_t queries = 16;
  const size_t active_epochs = sbon::bench::SmokeMode() ? 8 : 20;

  engine::EngineOptions opts;
  opts.sbon.latency_jitter_sigma = 0.1;
  auto eng = bench::MakeTransitStubEngine(nodes, seed, std::move(opts));
  overlay::Sbon& sbon = eng->sbon();

  engine::EpochOptions epoch;
  epoch.dt = 1.0;
  epoch.tick_network = true;
  epoch.vivaldi_samples = 1;
  epoch.refresh_index = true;
  epoch.refresh_epsilon = 1.0;
  epoch.threads = threads;
  epoch.exec_mode = engine::ExecMode::kMessage;
  epoch.msg = mp;
  // Creates the msg runtime before any placement; params are validated here.
  const Status warm = eng->AdvanceEpoch(epoch);
  if (!warm.ok()) {
    std::fprintf(stderr, "message warm-up epoch failed: %s\n",
                 warm.ToString().c_str());
    std::abort();
  }

  query::WorkloadParams wp;
  wp.num_streams = 48;
  eng->SetCatalog(query::RandomCatalog(wp, sbon.overlay_nodes(), &sbon.rng()));
  std::vector<query::QuerySpec> specs;
  std::vector<engine::QueryHandle> handles;
  for (size_t q = 0; q < queries; ++q) {
    specs.push_back(query::RandomQuery(wp, eng->catalog(),
                                       sbon.overlay_nodes(), &sbon.rng()));
    auto h = eng->Submit(specs.back());
    if (h.ok()) handles.push_back(*h);
  }

  net::ChurnModel::Params cp;
  cp.seed = seed * 7919 + 3;
  net::ChurnModel churn(sbon.overlay_nodes(), cp);
  const std::vector<NodeId>& eligible = churn.eligible();
  for (size_t i = 0; i < 3; ++i) {
    net::ChurnEvent crash;
    crash.type = net::ChurnEventType::kCrash;
    crash.node = eligible[(i * 5 + 3) % eligible.size()];
    churn.ScheduleAt(2, crash);
  }
  net::ChurnEvent cut;
  cut.type = net::ChurnEventType::kPartitionStart;
  cut.group.assign(eligible.begin(), eligible.begin() + eligible.size() / 4);
  cut.severity = 8.0;
  churn.ScheduleAt(active_epochs / 2, cut);
  net::ChurnEvent heal;
  heal.type = net::ChurnEventType::kPartitionHeal;
  churn.ScheduleAt(active_epochs / 2 + 3, heal);
  epoch.churn = &churn;

  MessageModeResult out;
  out.nodes = nodes;
  out.queries = handles.size();
  out.epochs = active_epochs;
  const Clock::time_point start = Clock::now();
  for (size_t e = 0; e < active_epochs; ++e) {
    eng->AdvanceEpoch(epoch);
    // Steady-state replacement keeps placement probes flowing (each Submit
    // pays DHT traffic and samples the staleness of the publishes it read).
    const size_t victim = (e * 7 + 3) % handles.size();
    const Status removed = eng->Remove(handles[victim]);
    if (removed.ok() || removed.code() == StatusCode::kNotFound) {
      auto h = eng->Submit(specs[victim % specs.size()]);
      if (h.ok()) handles[victim] = *h;
    }
  }
  out.ns_per_epoch = NsSince(start) / static_cast<double>(active_epochs);

  // Quiescent drain: no churn, no Vivaldi sampling, no load drift or
  // jitter ticks. Publishes are displacement-gated, so once nothing moves
  // the publish stream dries up and the runtime stamps convergence.
  epoch.churn = nullptr;
  epoch.vivaldi_samples = 0;
  epoch.dt = 0.0;
  epoch.tick_network = false;
  for (size_t e = 0; e < drain_epochs; ++e) eng->AdvanceEpoch(epoch);

  const engine::EngineSnapshot snapshot = eng->Snapshot();
  if (snapshot.decentralized.has_value()) out.summary = *snapshot.decentralized;
  uint64_t h = StateFingerprint(sbon);
  auto mix = [&h](size_t v) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  };
  const msg::TrafficSummary& t = out.summary;
  mix(t.msgs_sent);
  mix(t.msgs_delivered);
  mix(t.msgs_dropped_dead);
  mix(t.msgs_dropped_partition);
  mix(t.bytes_total);
  for (size_t p = 0; p < msg::kNumProtocols; ++p) {
    mix(t.protocol_msgs[p]);
    mix(t.protocol_bytes[p]);
  }
  mix(t.convergence_epochs);
  mix(t.staleness_samples);
  mix(t.msgs_dropped_fault);
  mix(t.msgs_duplicated);
  mix(t.retries);
  mix(t.retry_bytes);
  mix(t.acks);
  mix(t.dup_suppressed);
  mix(t.retry_exhausted);
  mix(t.retransmit_overflow);
  mix(t.retry_pending);
  mix(t.suspicions);
  mix(t.false_suspicions);
  mix(t.crash_confirmations);
  mix(t.detection_samples);
  out.fingerprint = h;
  return out;
}

// One measured size of the sparse-backend scaling section: a query-free
// overlay (the substrates are what scale; the engine loop is the dense-
// scale benchmark above) driven through tick-only and full maintenance
// epochs by direct substrate calls.
struct SparseScalePoint {
  size_t nodes = 0;           // actual node count of the built topology
  double bringup_ms = 0.0;    // Sbon::Create (fabric + Vivaldi + index)
  double tick_ns = 0.0;       // TickNetwork-only epoch (O(1) on sparse)
  double maint_ns = 0.0;      // tick + load + 1 Vivaldi sample + refresh
  size_t max_alloc = 0;       // largest single heap allocation in the run
  const char* base_mode = ""; // "exact" / "sketch"
  size_t landmarks = 0;
  size_t row_builds = 0;      // on-demand Dijkstra rows computed
  double neighbor_hit_rate = 0.0;
};

SparseScalePoint RunSparsePoint(size_t target_nodes, uint64_t seed,
                                size_t epochs) {
  // The topology build is shared scaffolding, not backend cost; allocate it
  // before the watermark reset so only overlay behavior is audited.
  net::Topology topo = bench::MakeTransitStubTopology(target_nodes, seed);
  g_max_alloc_size = 0;

  overlay::Sbon::Options opts;
  opts.seed = seed;
  opts.latency_jitter_sigma = 0.1;
  // Forced sparse regardless of --fabric: this section measures the sparse
  // backend by definition (the flag selects the engine sections' substrate).
  opts.fabric_mode = overlay::Sbon::FabricMode::kSparse;
  SparseScalePoint out;
  out.nodes = topo.NumNodes();

  const Clock::time_point create_start = Clock::now();
  auto s = overlay::Sbon::Create(std::move(topo), opts);
  if (!s.ok()) {
    std::fprintf(stderr, "sparse sbon creation failed: %s\n",
                 s.status().ToString().c_str());
    std::abort();
  }
  out.bringup_ms = NsSince(create_start) * 1e-6;
  overlay::Sbon& sbon = **s;

  const Clock::time_point tick_start = Clock::now();
  for (size_t e = 0; e < epochs; ++e) sbon.TickNetwork();
  out.tick_ns = NsSince(tick_start) / static_cast<double>(epochs);

  const Clock::time_point maint_start = Clock::now();
  for (size_t e = 0; e < epochs; ++e) {
    sbon.TickNetwork();
    sbon.Tick(1.0);
    sbon.UpdateCoordinatesOnline(1);
    sbon.RefreshIndex(1.0);
  }
  out.maint_ns = NsSince(maint_start) / static_cast<double>(epochs);
  out.max_alloc = g_max_alloc_size;

  const auto* fabric =
      dynamic_cast<const net::SparseFabric*>(&sbon.fabric());
  if (fabric != nullptr) {
    out.base_mode = fabric->exact_base() ? "exact" : "sketch";
    out.landmarks = fabric->num_landmarks();
    const auto& stats = fabric->cache_stats();
    out.row_builds = stats.row_builds;
    out.neighbor_hit_rate =
        stats.base_reads > 0
            ? static_cast<double>(stats.neighbor_hits) /
                  static_cast<double>(stats.base_reads)
            : 0.0;
  }
  return out;
}

// Allocations per VivaldiSystem::Update in steady state (must be 0).
double MeasureVivaldiAllocs() {
  Rng rng(7);
  coords::VivaldiSystem::Params params;
  params.dims = 2;
  coords::VivaldiSystem sys(64, params, &rng);
  auto update = [&](size_t rounds) {
    for (size_t i = 0; i < rounds; ++i) {
      const NodeId self = static_cast<NodeId>(i % 64);
      const NodeId peer = static_cast<NodeId>((i * 13 + 1) % 64);
      if (self == peer) continue;
      sys.Update(self, peer, 10.0 + static_cast<double>(i % 17));
    }
  };
  update(256);  // warm-up
  const size_t before = g_alloc_count;
  constexpr size_t kRounds = 20000;
  update(kRounds);
  return static_cast<double>(g_alloc_count - before) /
         static_cast<double>(kRounds);
}

// Allocations per CoordinateIndex::KNearestInto with a reused output buffer
// in steady state (must be 0).
double MeasureKNearestAllocs(const overlay::Sbon& sbon) {
  const dht::CoordinateIndex& index = sbon.index();
  std::vector<dht::IndexMatch> matches;
  dht::IndexQueryCost cost;
  auto query = [&](size_t rounds) {
    for (size_t i = 0; i < rounds; ++i) {
      const NodeId n =
          sbon.overlay_nodes()[i % sbon.overlay_nodes().size()];
      const Vec target = sbon.cost_space().FullCoord(n);
      (void)index.KNearestInto(target, 8, 16, &cost, {}, &matches);
    }
  };
  query(64);  // warm-up
  const size_t before = g_alloc_count;
  constexpr size_t kRounds = 2000;
  query(kRounds);
  return static_cast<double>(g_alloc_count - before) /
         static_cast<double>(kRounds);
}

// ---------------------------------------------------------------------------
// Hot-kernel microbenchmarks: each production kernel against a bench-local
// reference replicating the pre-SoA per-Vec implementation verbatim. The
// reference is the exact algorithm the SoA + SIMD pass replaced, so the
// measured ratio is the pass's per-op win — and the outputs must stay
// bit-identical (the FP-order contract the fixed-seed goldens rely on),
// asserted on every run.

struct KernelBenchResult {
  double ns_per_op = 0.0;      // production kernel
  double ref_ns_per_op = 0.0;  // pre-SoA reference implementation
  double allocs_per_op = 0.0;  // production, steady state (must be 0)
  bool outputs_equal = false;  // production == reference, bit for bit
  double speedup() const {
    return ns_per_op > 0.0 ? ref_ns_per_op / ns_per_op : 0.0;
  }
};

// vivaldi_update: SoA lane kernel vs the per-Vec spring update
// (diff/Norm/Unit/AddScaled on value Vecs), identical update schedule.
KernelBenchResult BenchVivaldiKernel() {
  constexpr size_t kNodes = 256;
  const size_t rounds = sbon::bench::SmokeMode() ? 20000 : 400000;
  coords::VivaldiSystem::Params params;
  params.dims = 3;

  Rng prod_rng(7);
  coords::VivaldiSystem prod(kNodes, params, &prod_rng);

  Rng ref_rng(7);  // same seed: identical initial coordinates
  std::vector<Vec> rcoords(kNodes, Vec(params.dims));
  std::vector<double> rerror(kNodes, params.initial_error);
  for (auto& c : rcoords) {
    for (size_t d = 0; d < c.dims(); ++d) c[d] = ref_rng.Uniform(-0.1, 0.1);
  }
  auto ref_update = [&](NodeId self, NodeId peer, double measured_rtt_ms) {
    const double rtt = std::max(measured_rtt_ms, params.min_rtt_ms);
    Vec diff = rcoords[self];
    diff -= rcoords[peer];
    const double dist = diff.Norm();
    const double w_self = rerror[self];
    const double w_peer = rerror[peer];
    const double w =
        (w_self + w_peer) > 0.0 ? w_self / (w_self + w_peer) : 0.5;
    const double es = std::abs(dist - rtt) / rtt;
    rerror[self] = es * params.ce * w + rerror[self] * (1.0 - params.ce * w);
    rerror[self] = std::clamp(rerror[self], 0.0, 10.0);
    const double delta = params.cc * w;
    const Vec dir = diff.Unit(static_cast<uint64_t>(self) * 1000003u + peer);
    rcoords[self].AddScaled(dir, delta * (rtt - dist));
  };
  auto schedule = [&](auto&& apply) {
    for (size_t i = 0; i < rounds; ++i) {
      const NodeId self = static_cast<NodeId>(i % kNodes);
      const NodeId peer = static_cast<NodeId>((i * 13 + 1) % kNodes);
      apply(self, peer, 10.0 + static_cast<double>(i % 17));
    }
  };

  KernelBenchResult out;
  const uint64_t allocs_before = g_alloc_count;
  const Clock::time_point prod_start = Clock::now();
  schedule([&](NodeId s, NodeId p, double rtt) { prod.Update(s, p, rtt); });
  out.ns_per_op = NsSince(prod_start) / static_cast<double>(rounds);
  out.allocs_per_op = static_cast<double>(g_alloc_count - allocs_before) /
                      static_cast<double>(rounds);
  const Clock::time_point ref_start = Clock::now();
  schedule(ref_update);
  out.ref_ns_per_op = NsSince(ref_start) / static_cast<double>(rounds);

  out.outputs_equal = true;
  for (NodeId n = 0; n < kNodes; ++n) {
    if (prod.LocalError(n) != rerror[n]) out.outputs_equal = false;
    const Vec c = prod.Coord(n);
    for (size_t d = 0; d < c.dims(); ++d) {
      if (c[d] != rcoords[n][d]) out.outputs_equal = false;
    }
  }
  return out;
}

// knearest_scan: batched SoA exact sweep vs the per-Vec scan that pushed an
// IndexMatch per published node and selected with nth_element.
KernelBenchResult BenchKNearestKernel(const overlay::Sbon& sbon) {
  const dht::CoordinateIndex& index = sbon.index();
  const std::vector<NodeId>& overlay = sbon.overlay_nodes();
  // Published-coordinate mirror (AoS), reconstructed through the public
  // exact query so the reference scans exactly what the index stores.
  const auto all = index.KNearestExact(
      sbon.cost_space().FullCoord(overlay[0]), overlay.size());
  NodeId max_node = 0;
  for (const auto& m : all) max_node = std::max(max_node, m.node);
  std::vector<Vec> mirror(static_cast<size_t>(max_node) + 1);
  std::vector<uint8_t> published(static_cast<size_t>(max_node) + 1, 0);
  for (const auto& m : all) {
    mirror[m.node] = m.coord;
    published[m.node] = 1;
  }

  auto match_less = [](const dht::IndexMatch& a, const dht::IndexMatch& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.node < b.node;
  };
  auto ref_scan = [&](const Vec& target, size_t k,
                      std::vector<dht::IndexMatch>* out) {
    out->clear();
    for (NodeId n = 0; n < published.size(); ++n) {
      if (!published[n]) continue;
      out->push_back(
          dht::IndexMatch{n, mirror[n].DistanceTo(target), mirror[n]});
    }
    if (out->size() > k) {
      std::nth_element(out->begin(), out->begin() + k, out->end(),
                       match_less);
      out->resize(k);
    }
    std::sort(out->begin(), out->end(), match_less);
  };

  const size_t queries = sbon::bench::SmokeMode() ? 200 : 2000;
  constexpr size_t kK = 8;
  std::vector<dht::IndexMatch> prod_out, ref_out;
  auto target_of = [&](size_t i) {
    return sbon.cost_space().FullCoord(overlay[i % overlay.size()]);
  };

  KernelBenchResult out;
  out.outputs_equal = true;
  for (size_t i = 0; i < 64; ++i) {
    const Vec target = target_of(i * 7 + 1);
    index.KNearestExactInto(target, kK, &prod_out);
    ref_scan(target, kK, &ref_out);
    if (prod_out.size() != ref_out.size()) {
      out.outputs_equal = false;
      break;
    }
    for (size_t j = 0; j < prod_out.size(); ++j) {
      if (prod_out[j].node != ref_out[j].node ||
          prod_out[j].distance != ref_out[j].distance) {
        out.outputs_equal = false;
      }
    }
  }

  const double ops = static_cast<double>(queries * all.size());
  index.KNearestExactInto(target_of(0), kK, &prod_out);  // warm scratch
  const uint64_t allocs_before = g_alloc_count;
  const Clock::time_point prod_start = Clock::now();
  for (size_t i = 0; i < queries; ++i) {
    index.KNearestExactInto(target_of(i), kK, &prod_out);
  }
  out.ns_per_op = NsSince(prod_start) / ops;
  out.allocs_per_op =
      static_cast<double>(g_alloc_count - allocs_before) / ops;
  ref_scan(target_of(0), kK, &ref_out);  // warm capacity
  const Clock::time_point ref_start = Clock::now();
  for (size_t i = 0; i < queries; ++i) ref_scan(target_of(i), kK, &ref_out);
  out.ref_ns_per_op = NsSince(ref_start) / ops;
  return out;
}

// cost_eval: batched full-distance-to-ideal sweep vs the per-node Vec
// evaluation (DistanceSquaredTo + weighted-scalar terms + sqrt per node).
KernelBenchResult BenchCostEvalKernel(const overlay::Sbon& sbon) {
  const coords::CostSpace& space = sbon.cost_space();
  const std::vector<NodeId>& overlay = sbon.overlay_nodes();
  const size_t count = overlay.size();
  const size_t rounds = sbon::bench::SmokeMode() ? 500 : 5000;

  std::vector<Vec> vmirror;
  vmirror.reserve(space.NumNodes());
  for (NodeId n = 0; n < space.NumNodes(); ++n) {
    vmirror.push_back(space.VectorCoord(n));
  }
  const size_t scalar_dims = space.spec().num_scalar_dims();
  std::vector<std::vector<double>> wmirror(
      scalar_dims, std::vector<double>(space.NumNodes()));
  for (size_t i = 0; i < scalar_dims; ++i) {
    for (NodeId n = 0; n < space.NumNodes(); ++n) {
      wmirror[i][n] = space.WeightedScalar(n, i);
    }
  }
  auto ref_eval = [&](const Vec& point, double* out_dists) {
    for (size_t j = 0; j < count; ++j) {
      const NodeId n = overlay[j];
      double s = vmirror[n].DistanceSquaredTo(point);
      for (size_t i = 0; i < scalar_dims; ++i) {
        const double w = wmirror[i][n];
        s += w * w;
      }
      out_dists[j] = std::sqrt(s);
    }
  };

  std::vector<double> prod_d(count), ref_d(count);
  auto point_of = [&](size_t i) {
    return space.VectorCoord(overlay[(i * 11 + 3) % count]);
  };

  KernelBenchResult out;
  out.outputs_equal = true;
  for (size_t i = 0; i < 16; ++i) {
    const Vec point = point_of(i);
    space.FullDistancesToIdealMany(point, overlay.data(), count,
                                   prod_d.data());
    ref_eval(point, ref_d.data());
    for (size_t j = 0; j < count; ++j) {
      if (prod_d[j] != ref_d[j]) out.outputs_equal = false;
    }
  }

  const double ops = static_cast<double>(rounds * count);
  const uint64_t allocs_before = g_alloc_count;
  const Clock::time_point prod_start = Clock::now();
  for (size_t i = 0; i < rounds; ++i) {
    space.FullDistancesToIdealMany(point_of(i), overlay.data(), count,
                                   prod_d.data());
  }
  out.ns_per_op = NsSince(prod_start) / ops;
  out.allocs_per_op =
      static_cast<double>(g_alloc_count - allocs_before) / ops;
  const Clock::time_point ref_start = Clock::now();
  for (size_t i = 0; i < rounds; ++i) ref_eval(point_of(i), ref_d.data());
  out.ref_ns_per_op = NsSince(ref_start) / ops;
  return out;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Value of a `--name=<string>` flag, or empty when absent.
std::string StringFlagOr(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::string();
}

// First `"ns_per_epoch": <number>` in a baseline JSON (the top-level key is
// emitted before the nested sections, so the first hit is the churn-free
// engine-loop figure this binary writes).
double BaselineNsPerEpoch(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return -1.0;
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  const size_t pos = text.find("\"ns_per_epoch\":");
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + std::strlen("\"ns_per_epoch\":"),
                     nullptr);
}

}  // namespace
}  // namespace sbon

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);
  // Attribute this harness's counting operator new to the hot-kernel
  // timers, so the kernels section reports allocs per kernel.
  sbon::KernelStats::Instance().set_alloc_counter(&g_alloc_count);
  const bool smoke = sbon::bench::SmokeMode();
  const size_t nodes =
      sbon::bench::FlagOr(argc, argv, "nodes", sbon::bench::Nodes(512));
  const size_t queries = std::max<size_t>(
      1, sbon::bench::FlagOr(argc, argv, "queries", smoke ? 8 : 64));
  const size_t epochs = std::max<size_t>(
      1, sbon::bench::FlagOr(argc, argv, "epochs", smoke ? 4 : 32));
  const double epsilon = sbon::bench::DoubleFlagOr(argc, argv, "epsilon", 1.0);
  // 0 = resolve from SBON_EPOCH_THREADS inside the engine (the documented
  // env path); any positive value pins the pipeline's worker count.
  const size_t threads = sbon::bench::FlagOr(argc, argv, "threads", 0);

  const bool dense_requested = sbon::bench::FabricFlag() == "dense";
  if (dense_requested && nodes > 20000) {
    std::fprintf(stderr,
                 "--fabric=dense above 20000 nodes would materialize two "
                 "N^2 latency matrices (%zu GB); use --fabric=sparse\n",
                 2 * nodes * nodes * sizeof(double) >> 30);
    return 2;
  }
  // The engine-loop sections track the dense-scale baseline; above the
  // sparse auto threshold they would spend minutes measuring a regime the
  // dense backend cannot reach anyway, so the binary runs the sparse
  // scaling section only.
  const bool scaling_only = nodes > 4096 && !dense_requested;

  const sbon::engine::ExecMode exec = sbon::bench::ExecMode();
  std::printf("perf_epoch: N=%zu nodes, Q=%zu queries, E=%zu epochs, "
              "T=%zu threads%s, fabric=%s, exec=%s\n",
              nodes, queries, epochs, threads,
              threads == 0 ? " (0: SBON_EPOCH_THREADS)" : "",
              sbon::bench::FabricFlag().c_str(),
              sbon::bench::ExecFlag().c_str());

  sbon::EpochLoopResult primary, eps0, churned;
  sbon::PipelineRunResult pipe1, pipeN;
  bool bit_identical = true;
  double vivaldi_allocs = 0.0, knearest_allocs = 0.0;
  sbon::KernelBenchResult kb_vivaldi, kb_knearest, kb_costeval;
  const bool kernels_detail = sbon::HasFlag(argc, argv, "--kernels");
  const size_t hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const size_t par_threads = std::max<size_t>(4, threads);
  // A parallel speedup is only measurable with at least as many cores as
  // worker threads; a time-sliced run produces a meaningless ~1x that must
  // not be recorded as if it were the parallelization's value.
  const bool speedup_measurable = hw_threads >= par_threads;
  double speedup = 0.0;
  const double churn_rate =
      sbon::bench::DoubleFlagOr(argc, argv, "churn-rate", 0.5);

  if (!scaling_only) {
    sbon::bench::Section("Epoch+Submit throughput (dirty refresh, epsilon)");
    primary = sbon::RunEpochLoop(nodes, queries, epochs, epsilon,
                                 /*seed=*/42, /*churn_rate=*/0.0, threads,
                                 exec);
    std::printf(
        "epsilon=%-4g  %10.0f ns/epoch  %10.0f ns/submit  %zu queries\n"
        "              republished=%zu skipped=%zu quiet_refreshes=%zu/%zu\n",
        epsilon, primary.ns_per_epoch, primary.ns_per_submit,
        primary.queries_running, primary.refresh.republished,
        primary.refresh.skipped, primary.refresh.quiet_refreshes,
        primary.refresh.refreshes);

    sbon::bench::Section("Epoch+Submit throughput (epsilon=0: every change)");
    eps0 = sbon::RunEpochLoop(nodes, queries, epochs, 0.0,
                              /*seed=*/42, /*churn_rate=*/0.0, threads, exec);
    std::printf("epsilon=0     %10.0f ns/epoch  %10.0f ns/submit\n",
                eps0.ns_per_epoch, eps0.ns_per_submit);

    sbon::bench::Section("Epoch throughput under churn (crashes + repair)");
    churned = sbon::RunEpochLoop(nodes, queries, epochs, epsilon,
                                 /*seed=*/42, churn_rate, threads, exec);
    std::printf(
        "churn=%-5g  %10.0f ns/epoch  (%+0.0f%% vs churn-free)\n"
        "              crashes=%zu rejoins=%zu evicted=%zu orphaned=%zu "
        "repaired=%zu dropped=%zu\n",
        churn_rate, churned.ns_per_epoch,
        primary.ns_per_epoch > 0.0
            ? 100.0 * (churned.ns_per_epoch / primary.ns_per_epoch - 1.0)
            : 0.0,
        churned.repair.crashes, churned.repair.rejoins,
        churned.repair.services_evicted, churned.repair.circuits_orphaned,
        churned.repair.queries_repaired, churned.repair.queries_dropped);

    sbon::bench::Section("Parallel epoch pipeline (AdvanceEpoch only)");
    pipe1 = sbon::RunPipelineOnly(nodes, queries, epochs, /*threads=*/1, 42,
                                  exec);
    pipeN = sbon::RunPipelineOnly(nodes, queries, epochs, par_threads, 42,
                                  exec);
    bit_identical = pipe1.fingerprint == pipeN.fingerprint;
    speedup = pipeN.ns_per_epoch > 0.0
                  ? pipe1.ns_per_epoch / pipeN.ns_per_epoch
                  : 0.0;
    std::printf("threads=1     %10.0f ns/epoch\n", pipe1.ns_per_epoch);
    if (speedup_measurable) {
      std::printf("threads=%-4zu  %10.0f ns/epoch   speedup %.2fx  "
                  "(hw threads: %zu)\n",
                  par_threads, pipeN.ns_per_epoch, speedup, hw_threads);
    } else {
      std::printf("threads=%-4zu  %10.0f ns/epoch   speedup n/a: only %zu "
                  "hw thread(s) for %zu workers\n",
                  par_threads, pipeN.ns_per_epoch, hw_threads, par_threads);
    }
    std::printf("state fingerprints %s\n",
                bit_identical ? "bit-identical across thread counts"
                              : "DIVERGED ACROSS THREAD COUNTS");
    if (!bit_identical) {
      std::fprintf(
          stderr,
          "FAIL: thread count changed results (t1=%016llx tN=%016llx)\n",
          static_cast<unsigned long long>(pipe1.fingerprint),
          static_cast<unsigned long long>(pipeN.fingerprint));
      return 1;
    }

    sbon::bench::Section("Hot-loop allocation audit");
    vivaldi_allocs = sbon::MeasureVivaldiAllocs();
    // A small dedicated overlay keeps the audit cheap under --smoke.
    auto audit_sbon = sbon::bench::MakeTransitStubSbon(
        sbon::bench::Nodes(200), /*seed=*/7);
    knearest_allocs = sbon::MeasureKNearestAllocs(*audit_sbon);
    std::printf("allocs/VivaldiSystem::Update = %g (want 0)\n",
                vivaldi_allocs);
    std::printf("allocs/KNearestInto          = %g (want 0)\n",
                knearest_allocs);
    if (vivaldi_allocs != 0.0 || knearest_allocs != 0.0) {
      std::fprintf(stderr,
                   "FAIL: hot loops allocate (vivaldi=%g knearest=%g)\n",
                   vivaldi_allocs, knearest_allocs);
      return 1;
    }

    sbon::bench::Section(
        "Hot-kernel microbenchmarks (SoA/SIMD vs pre-SoA reference)");
    kb_vivaldi = sbon::BenchVivaldiKernel();
    kb_knearest = sbon::BenchKNearestKernel(*audit_sbon);
    kb_costeval = sbon::BenchCostEvalKernel(*audit_sbon);
    struct NamedKb {
      const char* name;
      const sbon::KernelBenchResult* kb;
      sbon::Kernel kernel;
    };
    const NamedKb named_kbs[] = {
        {"vivaldi_update", &kb_vivaldi, sbon::Kernel::kVivaldiUpdate},
        {"knearest_scan", &kb_knearest, sbon::Kernel::kKNearestScan},
        {"cost_eval", &kb_costeval, sbon::Kernel::kCostEval},
    };
    bool kernels_ok = true;
    for (const NamedKb& nk : named_kbs) {
      std::printf("%-14s  %7.2f ns/op  (pre-SoA ref %7.2f ns/op, %0.2fx)  "
                  "allocs/op=%g  outputs %s\n",
                  nk.name, nk.kb->ns_per_op, nk.kb->ref_ns_per_op,
                  nk.kb->speedup(), nk.kb->allocs_per_op,
                  nk.kb->outputs_equal ? "bit-identical" : "DIVERGED");
      if (!nk.kb->outputs_equal) {
        std::fprintf(stderr,
                     "FAIL: %s kernel output diverged from the pre-SoA "
                     "reference\n",
                     nk.name);
        kernels_ok = false;
      }
      if (nk.kb->allocs_per_op != 0.0) {
        std::fprintf(stderr, "FAIL: %s kernel allocates (%g allocs/op)\n",
                     nk.name, nk.kb->allocs_per_op);
        kernels_ok = false;
      }
    }
    if (!kernels_ok) return 1;
    if (kernels_detail) {
      std::printf("\nper-epoch kernel attribution (primary engine loop, "
                  "E=%zu):\n", primary.epochs);
      std::printf("%-14s %10s %12s %14s %10s\n", "kernel", "calls/ep",
                  "ops/ep", "ns/ep", "allocs/ep");
      for (const NamedKb& nk : named_kbs) {
        const sbon::KernelCounters& c = primary.kernels[nk.kernel];
        const double e = static_cast<double>(std::max<size_t>(1,
                                                              primary.epochs));
        std::printf("%-14s %10.1f %12.1f %14.1f %10.1f\n", nk.name,
                    static_cast<double>(c.calls) / e,
                    static_cast<double>(c.ops) / e,
                    static_cast<double>(c.ns) / e,
                    static_cast<double>(c.allocs) / e);
      }
    }

    const std::string baseline_path =
        sbon::StringFlagOr(argc, argv, "baseline");
    if (!baseline_path.empty()) {
      const double tolerance = sbon::bench::DoubleFlagOr(
          argc, argv, "baseline-tolerance", 0.5);
      const double base_ns = sbon::BaselineNsPerEpoch(baseline_path);
      sbon::bench::Section("Baseline regression gate");
      if (base_ns <= 0.0) {
        std::fprintf(stderr,
                     "FAIL: cannot read ns_per_epoch from baseline %s\n",
                     baseline_path.c_str());
        return 1;
      }
      const double limit = base_ns * (1.0 + tolerance);
      std::printf("churn-free ns_per_epoch %.0f vs baseline %.0f "
                  "(limit %.0f at %.0f%% tolerance): %s\n",
                  primary.ns_per_epoch, base_ns, limit, 100.0 * tolerance,
                  primary.ns_per_epoch <= limit ? "ok" : "REGRESSED");
      if (primary.ns_per_epoch > limit) {
        std::fprintf(stderr,
                     "FAIL: ns_per_epoch regressed past the tolerance gate "
                     "(%.0f > %.0f)\n",
                     primary.ns_per_epoch, limit);
        return 1;
      }
    }
  }

  sbon::bench::Section("Decentralized execution (message mode, pinned size)");
  const auto msg1 = sbon::RunMessageSection(/*threads=*/1, /*seed=*/42);
  const auto msgN = sbon::RunMessageSection(/*threads=*/4, /*seed=*/42);
  const bool msg_replay_identical = msg1.fingerprint == msgN.fingerprint;
  {
    const sbon::msg::TrafficSummary& t = msg1.summary;
    std::printf(
        "N=%zu Q=%zu E=%zu  %10.0f ns/epoch  %.1f bytes/node/epoch\n"
        "  sent=%zu delivered=%zu dropped_dead=%zu dropped_partition=%zu\n"
        "  vivaldi=%zu msgs ring=%zu msgs placement=%zu msgs\n"
        "  convergence=%zu epochs after last churn (%s)  "
        "staleness p50=%.1f p95=%.1f (%zu samples)\n"
        "  replay %s\n",
        msg1.nodes, msg1.queries, msg1.epochs, msg1.ns_per_epoch,
        t.bytes_per_node_per_epoch, t.msgs_sent, t.msgs_delivered,
        t.msgs_dropped_dead, t.msgs_dropped_partition,
        t.protocol_msgs[static_cast<size_t>(sbon::msg::Protocol::kVivaldi)],
        t.protocol_msgs[static_cast<size_t>(sbon::msg::Protocol::kRing)],
        t.protocol_msgs[static_cast<size_t>(sbon::msg::Protocol::kPlacement)],
        t.convergence_epochs, t.converged ? "converged" : "NOT CONVERGED",
        t.staleness_p50, t.staleness_p95, t.staleness_samples,
        msg_replay_identical ? "bit-identical across thread counts"
                             : "DIVERGED ACROSS THREAD COUNTS");
  }
  if (!msg_replay_identical) {
    std::fprintf(
        stderr,
        "FAIL: message-mode replay diverged (t1=%016llx t4=%016llx)\n",
        static_cast<unsigned long long>(msg1.fingerprint),
        static_cast<unsigned long long>(msgN.fingerprint));
    return 1;
  }

  sbon::bench::Section("Chaos message mode (faults + reliability + detector)");
  sbon::msg::RuntimeParams chaos_mp;
  const sbon::bench::FaultRatesFlag& fault_rates = sbon::bench::FaultsFlag();
  for (sbon::msg::FaultRates& r : chaos_mp.bus.faults.protocol) {
    r.loss = fault_rates.loss;
    r.duplicate = fault_rates.duplicate;
    r.delay_jitter_ms = fault_rates.delay_jitter_ms;
  }
  chaos_mp.reliability.enabled = true;
  // Tight retry schedule: the worst capped backoff chain (1 + 2 + 2 epochs)
  // must drain inside the quiescent window so convergence stays observable.
  chaos_mp.reliability.retry_after_epochs = 1;
  chaos_mp.reliability.max_backoff_epochs = 2;
  chaos_mp.reliability.max_retries = 3;
  chaos_mp.detector.enabled = true;
  const auto chaos1 = sbon::RunMessageSection(/*threads=*/1, /*seed=*/42,
                                              chaos_mp, /*drain_epochs=*/12);
  const auto chaosN = sbon::RunMessageSection(/*threads=*/4, /*seed=*/42,
                                              chaos_mp, /*drain_epochs=*/12);
  const bool chaos_replay_identical = chaos1.fingerprint == chaosN.fingerprint;
  const sbon::msg::TrafficSummary& ct = chaos1.summary;
  const double chaos_delivery_rate =
      ct.msgs_delivered + ct.msgs_dropped_fault > 0
          ? static_cast<double>(ct.msgs_delivered) /
                static_cast<double>(ct.msgs_delivered + ct.msgs_dropped_fault)
          : 1.0;
  const double chaos_retry_overhead =
      ct.bytes_total > ct.retry_bytes
          ? static_cast<double>(ct.retry_bytes) /
                static_cast<double>(ct.bytes_total - ct.retry_bytes)
          : 0.0;
  std::printf(
      "loss=%.0f%% dup=%.0f%% jitter=%.1fms  %10.0f ns/epoch\n"
      "  sent=%zu delivered=%zu dropped_fault=%zu duplicated=%zu  "
      "delivery_rate=%.3f\n"
      "  retries=%zu (%.1f%% byte overhead) acks=%zu dup_suppressed=%zu "
      "exhausted=%zu overflow=%zu pending=%zu\n"
      "  detector: suspicions=%zu false=%zu confirmations=%zu  "
      "detection p50=%.1f p95=%.1f epochs (%zu samples)\n"
      "  convergence=%zu epochs after last churn (%s)  replay %s\n",
      100.0 * fault_rates.loss, 100.0 * fault_rates.duplicate,
      fault_rates.delay_jitter_ms, chaos1.ns_per_epoch, ct.msgs_sent,
      ct.msgs_delivered, ct.msgs_dropped_fault, ct.msgs_duplicated,
      chaos_delivery_rate, ct.retries, 100.0 * chaos_retry_overhead, ct.acks,
      ct.dup_suppressed, ct.retry_exhausted, ct.retransmit_overflow,
      ct.retry_pending, ct.suspicions, ct.false_suspicions,
      ct.crash_confirmations, ct.detection_p50, ct.detection_p95,
      ct.detection_samples, ct.convergence_epochs,
      ct.converged ? "converged" : "NOT CONVERGED",
      chaos_replay_identical ? "bit-identical across thread counts"
                             : "DIVERGED ACROSS THREAD COUNTS");
  if (!chaos_replay_identical) {
    std::fprintf(
        stderr,
        "FAIL: chaos message-mode replay diverged (t1=%016llx t4=%016llx)\n",
        static_cast<unsigned long long>(chaos1.fingerprint),
        static_cast<unsigned long long>(chaosN.fingerprint));
    return 1;
  }

  sbon::bench::Section("Sparse fabric scaling (generative substrate)");
  const size_t sparse_epochs = smoke ? 4 : 8;
  const size_t small_target = std::max<size_t>(100, nodes / 5);
  const auto sp_small = sbon::RunSparsePoint(small_target, 42, sparse_epochs);
  const auto sp_full = nodes > small_target
                           ? sbon::RunSparsePoint(nodes, 42, sparse_epochs)
                           : sp_small;
  for (const auto* p : {&sp_small, &sp_full}) {
    std::printf(
        "N=%-7zu  bringup %8.1f ms  tick %10.0f ns  maint %12.0f ns\n"
        "           base=%s landmarks=%zu row_builds=%zu nbr_hit=%.0f%% "
        "max_alloc=%zu B\n",
        p->nodes, p->bringup_ms, p->tick_ns, p->maint_ns, p->base_mode,
        p->landmarks, p->row_builds, 100.0 * p->neighbor_hit_rate,
        p->max_alloc);
    if (p == &sp_full && nodes <= small_target) break;
  }
  // The scaling exponent is only meaningful when both points exercise the
  // sketch-mode sparse backend at large N (the regime whose asymptote it
  // claims to measure). Small-N points run the exact-mode base — fitting an
  // exponent across those is numerology, so it is reported as null instead.
  const bool maint_exponent_valid =
      scaling_only && sp_full.nodes > sp_small.nodes &&
      sp_small.maint_ns > 0.0 &&
      std::strcmp(sp_small.base_mode, "sketch") == 0 &&
      std::strcmp(sp_full.base_mode, "sketch") == 0;
  const double maint_exponent =
      maint_exponent_valid
          ? std::log(sp_full.maint_ns / sp_small.maint_ns) /
                std::log(static_cast<double>(sp_full.nodes) /
                         static_cast<double>(sp_small.nodes))
          : 0.0;
  // The flat-memory acceptance gate: no single allocation anywhere near an
  // N x N double matrix (or the N(N+1)/2 jitter triangle) may happen while
  // the sparse backend runs. Only meaningful once quadratic buffers dwarf
  // the backend's legitimate O(N) arrays (a few hundred bytes per node);
  // below ~512 nodes the two regimes overlap and the dense-vs-sparse
  // equivalence test owns the precise assertion.
  bool sparse_mem_flat = true;
  for (const auto* p : {&sp_small, &sp_full}) {
    if (p->nodes < 512) continue;
    if (p->max_alloc * 2 >= p->nodes * (p->nodes + 1) * sizeof(double)) {
      sparse_mem_flat = false;
      std::fprintf(stderr,
                   "FAIL: sparse run allocated an O(N^2)-sized buffer "
                   "(%zu bytes at N=%zu)\n",
                   p->max_alloc, p->nodes);
    }
  }
  if (maint_exponent_valid) {
    std::printf("maintenance-epoch scaling exponent: %.2f  (dense is 2.0)\n",
                maint_exponent);
  } else {
    std::printf(
        "maintenance-epoch scaling exponent: n/a — only measured across a "
        "large-N sketch-mode sweep (--fabric=sparse --nodes>4096)\n");
  }
  if (!sparse_mem_flat) return 1;

  if (!sbon::bench::JsonFlag().empty()) {
    std::FILE* f = std::fopen(sbon::bench::JsonFlag().c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n",
                   sbon::bench::JsonFlag().c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"perf_epoch\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"fabric\": \"%s\",\n"
                 "  \"exec\": \"%s\",\n"
                 "  \"nodes\": %zu,\n"
                 "  \"queries\": %zu,\n"
                 "  \"epochs\": %zu,\n",
                 smoke ? "true" : "false",
                 scaling_only ? "sparse-scaling" : "standard",
                 sbon::bench::FabricFlag().c_str(),
                 sbon::bench::ExecFlag().c_str(), nodes, queries, epochs);
    if (!scaling_only) {
      char speedup_buf[64];
      if (speedup_measurable) {
        std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2f", speedup);
      } else {
        std::snprintf(speedup_buf, sizeof(speedup_buf), "null");
      }
      std::fprintf(
          f,
          "  \"refresh_epsilon\": %g,\n"
          "  \"ns_per_epoch\": %.1f,\n"
          "  \"ns_per_submit\": %.1f,\n"
          "  \"ns_per_epoch_eps0\": %.1f,\n"
          "  \"allocs_per_epoch\": %.1f,\n"
          "  \"republished\": %zu,\n"
          "  \"republish_skipped\": %zu,\n"
          "  \"quiet_refreshes\": %zu,\n"
          "  \"refreshes\": %zu,\n"
          "  \"allocs_per_vivaldi_update\": %g,\n"
          "  \"allocs_per_knearest\": %g,\n"
          "  \"parallel\": {\n"
          "    \"hw_threads\": %zu,\n"
          "    \"threads\": %zu,\n"
          "    \"vivaldi_samples\": 4,\n"
          "    \"ns_per_epoch_threads1\": %.1f,\n"
          "    \"ns_per_epoch_threadsN\": %.1f,\n"
          "    \"speedup\": %s,\n"
          "    \"speedup_note\": \"%s\",\n"
          "    \"bit_identical\": %s\n"
          "  },\n"
          "  \"churn\": {\n"
          "    \"crash_rate\": %g,\n"
          "    \"ns_per_epoch\": %.1f,\n"
          "    \"crashes\": %zu,\n"
          "    \"rejoins\": %zu,\n"
          "    \"services_evicted\": %zu,\n"
          "    \"circuits_orphaned\": %zu,\n"
          "    \"queries_repaired\": %zu,\n"
          "    \"queries_dropped\": %zu\n"
          "  },\n",
          epsilon, primary.ns_per_epoch, primary.ns_per_submit,
          eps0.ns_per_epoch, primary.allocs_per_epoch,
          primary.refresh.republished, primary.refresh.skipped,
          primary.refresh.quiet_refreshes, primary.refresh.refreshes,
          vivaldi_allocs, knearest_allocs, hw_threads, par_threads,
          pipe1.ns_per_epoch, pipeN.ns_per_epoch, speedup_buf,
          speedup_measurable ? "ok" : "skipped-single-core",
          bit_identical ? "true" : "false", churn_rate, churned.ns_per_epoch,
          churned.repair.crashes, churned.repair.rejoins,
          churned.repair.services_evicted, churned.repair.circuits_orphaned,
          churned.repair.queries_repaired, churned.repair.queries_dropped);
      // Per-kernel microbenchmarks (production vs pre-SoA reference, with
      // a bit-identity gate) plus per-epoch attribution from the primary
      // engine loop's KernelStats delta.
      struct KernelJson {
        const char* name;
        const sbon::KernelBenchResult* kb;
        sbon::Kernel kernel;
      };
      const KernelJson kjs[] = {
          {"vivaldi_update", &kb_vivaldi, sbon::Kernel::kVivaldiUpdate},
          {"knearest_scan", &kb_knearest, sbon::Kernel::kKNearestScan},
          {"cost_eval", &kb_costeval, sbon::Kernel::kCostEval},
      };
#if defined(SBON_SIMD_ENABLED)
      const char* simd_mode = "on";
#else
      const char* simd_mode = "off";
#endif
      std::fprintf(f, "  \"kernels\": {\n    \"simd\": \"%s\"", simd_mode);
      const double ep = static_cast<double>(std::max<size_t>(1,
                                                             primary.epochs));
      for (const KernelJson& kj : kjs) {
        const sbon::KernelCounters& c = primary.kernels[kj.kernel];
        std::fprintf(
            f,
            ",\n"
            "    \"%s\": {\n"
            "      \"ns_per_op\": %.2f,\n"
            "      \"ref_ns_per_op\": %.2f,\n"
            "      \"speedup\": %.2f,\n"
            "      \"microbench_allocs_per_op\": %g,\n"
            "      \"outputs_bit_identical\": %s,\n"
            "      \"calls_per_epoch\": %.1f,\n"
            "      \"ops_per_epoch\": %.1f,\n"
            "      \"ns_per_epoch\": %.1f,\n"
            "      \"allocs_per_epoch\": %.1f\n"
            "    }",
            kj.name, kj.kb->ns_per_op, kj.kb->ref_ns_per_op,
            kj.kb->speedup(), kj.kb->allocs_per_op,
            kj.kb->outputs_equal ? "true" : "false",
            static_cast<double>(c.calls) / ep,
            static_cast<double>(c.ops) / ep, static_cast<double>(c.ns) / ep,
            static_cast<double>(c.allocs) / ep);
      }
      std::fprintf(f, "\n  },\n");
    }
    auto write_point = [f](const char* key,
                           const sbon::SparseScalePoint& p) {
      std::fprintf(f,
                   "    \"%s\": {\n"
                   "      \"nodes\": %zu,\n"
                   "      \"bringup_ms\": %.1f,\n"
                   "      \"tick_ns\": %.1f,\n"
                   "      \"maint_ns\": %.1f,\n"
                   "      \"max_single_alloc_bytes\": %zu,\n"
                   "      \"base_mode\": \"%s\",\n"
                   "      \"landmarks\": %zu,\n"
                   "      \"row_builds\": %zu,\n"
                   "      \"neighbor_hit_rate\": %.3f\n"
                   "    }",
                   key, p.nodes, p.bringup_ms, p.tick_ns, p.maint_ns,
                   p.max_alloc, p.base_mode, p.landmarks, p.row_builds,
                   p.neighbor_hit_rate);
    };
    {
      const sbon::msg::TrafficSummary& t = msg1.summary;
      std::fprintf(
          f,
          "  \"decentralized\": {\n"
          "    \"nodes\": %zu,\n"
          "    \"queries\": %zu,\n"
          "    \"epochs\": %zu,\n"
          "    \"ns_per_epoch\": %.1f,\n"
          "    \"bytes_per_node_per_epoch\": %.1f,\n"
          "    \"msgs_sent\": %zu,\n"
          "    \"msgs_delivered\": %zu,\n"
          "    \"msgs_dropped_dead\": %zu,\n"
          "    \"msgs_dropped_partition\": %zu,\n"
          "    \"vivaldi_msgs\": %zu,\n"
          "    \"vivaldi_bytes\": %zu,\n"
          "    \"ring_msgs\": %zu,\n"
          "    \"ring_bytes\": %zu,\n"
          "    \"placement_msgs\": %zu,\n"
          "    \"placement_bytes\": %zu,\n"
          "    \"convergence_epochs_after_churn\": %zu,\n"
          "    \"converged\": %s,\n"
          "    \"staleness_p50\": %.1f,\n"
          "    \"staleness_p95\": %.1f,\n"
          "    \"staleness_samples\": %zu,\n"
          "    \"replay_bit_identical\": %s\n"
          "  },\n",
          msg1.nodes, msg1.queries, msg1.epochs, msg1.ns_per_epoch,
          t.bytes_per_node_per_epoch, t.msgs_sent, t.msgs_delivered,
          t.msgs_dropped_dead, t.msgs_dropped_partition,
          t.protocol_msgs[static_cast<size_t>(sbon::msg::Protocol::kVivaldi)],
          t.protocol_bytes[static_cast<size_t>(sbon::msg::Protocol::kVivaldi)],
          t.protocol_msgs[static_cast<size_t>(sbon::msg::Protocol::kRing)],
          t.protocol_bytes[static_cast<size_t>(sbon::msg::Protocol::kRing)],
          t.protocol_msgs[static_cast<size_t>(
              sbon::msg::Protocol::kPlacement)],
          t.protocol_bytes[static_cast<size_t>(
              sbon::msg::Protocol::kPlacement)],
          t.convergence_epochs, t.converged ? "true" : "false",
          t.staleness_p50, t.staleness_p95, t.staleness_samples,
          msg_replay_identical ? "true" : "false");
    }
    std::fprintf(
        f,
        "  \"chaos\": {\n"
        "    \"faults\": {\"loss\": %g, \"duplicate\": %g, "
        "\"delay_jitter_ms\": %g},\n"
        "    \"nodes\": %zu,\n"
        "    \"queries\": %zu,\n"
        "    \"epochs\": %zu,\n"
        "    \"ns_per_epoch\": %.1f,\n"
        "    \"msgs_sent\": %zu,\n"
        "    \"msgs_delivered\": %zu,\n"
        "    \"msgs_dropped_fault\": %zu,\n"
        "    \"msgs_duplicated\": %zu,\n"
        "    \"delivery_rate\": %.4f,\n"
        "    \"retries\": %zu,\n"
        "    \"retry_bytes\": %zu,\n"
        "    \"retry_byte_overhead\": %.4f,\n"
        "    \"acks\": %zu,\n"
        "    \"dup_suppressed\": %zu,\n"
        "    \"retry_exhausted\": %zu,\n"
        "    \"retransmit_overflow\": %zu,\n"
        "    \"retry_pending\": %zu,\n"
        "    \"suspicions\": %zu,\n"
        "    \"false_suspicions\": %zu,\n"
        "    \"crash_confirmations\": %zu,\n"
        "    \"detection_p50\": %.1f,\n"
        "    \"detection_p95\": %.1f,\n"
        "    \"detection_samples\": %zu,\n"
        "    \"convergence_epochs_after_churn\": %zu,\n"
        "    \"converged\": %s,\n"
        "    \"replay_bit_identical\": %s\n"
        "  },\n",
        fault_rates.loss, fault_rates.duplicate, fault_rates.delay_jitter_ms,
        chaos1.nodes, chaos1.queries, chaos1.epochs, chaos1.ns_per_epoch,
        ct.msgs_sent, ct.msgs_delivered, ct.msgs_dropped_fault,
        ct.msgs_duplicated, chaos_delivery_rate, ct.retries, ct.retry_bytes,
        chaos_retry_overhead, ct.acks, ct.dup_suppressed, ct.retry_exhausted,
        ct.retransmit_overflow, ct.retry_pending, ct.suspicions,
        ct.false_suspicions, ct.crash_confirmations, ct.detection_p50,
        ct.detection_p95, ct.detection_samples, ct.convergence_epochs,
        ct.converged ? "true" : "false",
        chaos_replay_identical ? "true" : "false");
    std::fprintf(f, "  \"sparse\": {\n");
    write_point("small", sp_small);
    std::fprintf(f, ",\n");
    write_point("full", sp_full);
    if (maint_exponent_valid) {
      std::fprintf(f,
                   ",\n"
                   "    \"maint_scaling_exponent\": %.2f,\n",
                   maint_exponent);
    } else {
      std::fprintf(f, ",\n    \"maint_scaling_exponent\": null,\n");
    }
    std::fprintf(f,
                 "    \"maint_scaling_note\": \"%s\",\n"
                 "    \"mem_flat\": %s\n"
                 "  }\n"
                 "}\n",
                 maint_exponent_valid
                     ? "fit across the sketch-mode sparse sweep"
                     : "null: only meaningful across a large-N sketch-mode "
                       "sparse sweep (--fabric=sparse --nodes>4096); "
                       "small-N points run the exact-mode base",
                 sparse_mem_flat ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", sbon::bench::JsonFlag().c_str());
  }
  return 0;
}

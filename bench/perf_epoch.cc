// End-to-end throughput benchmark of the epoch/submit hot path: one engine,
// N nodes, Q continuous queries, E epochs of AdvanceEpoch (latency jitter,
// ambient load, online Vivaldi, dirty-driven index refresh) interleaved with
// steady-state Submit/Remove churn and local re-optimization — the loop the
// paper claims stays cheap enough to run continuously.
//
// Emits machine-readable JSON via --json=PATH (schema documented in the
// README "Performance" section); BENCH_epoch.json at the repo root is the
// recorded baseline from a full run at N=512 / Q=64. The harness also
// verifies, via a global allocation counter, that the Vivaldi update and
// KNearest inner loops are heap-free per call in steady state.
//
// Flags: --smoke (tiny sweep), --json=PATH, --nodes=N, --queries=Q,
// --epochs=E, --epsilon=X (refresh displacement threshold, cost-space
// units), --churn-rate=R (expected node crashes per epoch in the churn
// section; crashed hosts evict their services and the engine re-places
// orphaned queries under their original handles), --threads=T (worker
// threads for the epoch pipeline's parallel stages; results are
// bit-identical at any T).
//
// The `parallel` section measures the pure AdvanceEpoch pipeline (no
// submit/remove churn in the loop) at threads=1 vs threads=4 and verifies
// the two runs end bit-identical. `hw_threads` records the hardware
// concurrency the numbers were taken on — on a single-core box the
// speedup is necessarily ~1x; the CI release-perf lane regenerates the
// JSON on multi-core runners.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "coords/vivaldi.h"
#include "engine/stream_engine.h"
#include "net/churn.h"
#include "net/shortest_path.h"
#include "query/workload.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new bumps it, so a delta across
// a code region counts that region's heap allocations exactly.
namespace {
size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sbon {
namespace {

using Clock = std::chrono::steady_clock;

double NsSince(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

struct EpochLoopResult {
  double ns_per_epoch = 0.0;
  double ns_per_submit = 0.0;  // initial submission, per query
  double allocs_per_epoch = 0.0;
  size_t queries_running = 0;
  overlay::IndexRefreshStats refresh;  // cumulative over the loop
  engine::RepairStats repair;          // cumulative (churn_rate > 0 only)
};

// Builds an engine, submits Q queries, then runs E churn epochs. One
// function so the epsilon/churn sweeps measure identical work per
// configuration. `churn_rate > 0` attaches a seeded ChurnModel: every
// epoch additionally pays for node crashes/rejoins and the engine's
// handle-stable repair of orphaned queries.
EpochLoopResult RunEpochLoop(size_t nodes, size_t queries, size_t epochs,
                             double epsilon, uint64_t seed,
                             double churn_rate = 0.0, size_t threads = 1) {
  engine::EngineOptions opts;
  opts.sbon.latency_jitter_sigma = 0.1;
  auto eng = bench::MakeTransitStubEngine(nodes, seed, std::move(opts));
  overlay::Sbon& sbon = eng->sbon();

  query::WorkloadParams wp;
  wp.num_streams = 48;
  eng->SetCatalog(query::RandomCatalog(wp, sbon.overlay_nodes(), &sbon.rng()));
  std::vector<query::QuerySpec> specs;
  specs.reserve(queries);
  for (size_t q = 0; q < queries; ++q) {
    specs.push_back(query::RandomQuery(wp, eng->catalog(),
                                       sbon.overlay_nodes(), &sbon.rng()));
  }

  EpochLoopResult out;
  std::vector<engine::QueryHandle> handles;
  const Clock::time_point submit_start = Clock::now();
  for (const query::QuerySpec& spec : specs) {
    auto h = eng->Submit(spec);
    if (h.ok()) handles.push_back(*h);
  }
  out.ns_per_submit =
      NsSince(submit_start) / static_cast<double>(std::max<size_t>(
                                  1, handles.size()));
  out.queries_running = handles.size();
  if (handles.empty()) return out;

  engine::EpochOptions epoch;
  epoch.dt = 1.0;
  epoch.tick_network = true;
  epoch.vivaldi_samples = 1;
  epoch.refresh_index = true;
  epoch.refresh_epsilon = epsilon;
  epoch.threads = threads;
  // Stack-constructed (a heap ChurnModel here trips gcc's
  // -Wmismatched-new-delete against this file's counting operator new);
  // only attached when the churn section is measured.
  net::ChurnModel::Params cp;
  cp.crash_rate = churn_rate;
  cp.mean_downtime_epochs = 4.0;
  cp.seed = seed * 9176 + 1;
  net::ChurnModel churn_model(sbon.overlay_nodes(), cp);
  if (churn_rate > 0.0) epoch.churn = &churn_model;
  engine::ReoptPolicy local_reopt;  // defaults: kLocal

  const overlay::IndexRefreshStats before = sbon.index_refresh_stats();
  const size_t allocs_before = g_alloc_count;
  const Clock::time_point loop_start = Clock::now();
  for (size_t e = 0; e < epochs; ++e) {
    eng->AdvanceEpoch(epoch);
    // Steady-state churn: re-optimize one running query locally and replace
    // another (Remove + Submit), rotating through the set.
    (void)eng->Reoptimize(handles[e % handles.size()], local_reopt);
    const size_t victim = (e * 7 + 3) % handles.size();
    // NotFound = the query was dropped by churn repair; either way the
    // slot is free and the steady-state replacement resubmits it (which
    // can itself fail while the spec's producer is down — retried the
    // next time the slot comes around).
    const Status removed = eng->Remove(handles[victim]);
    if (removed.ok() || removed.code() == StatusCode::kNotFound) {
      auto h = eng->Submit(specs[victim % specs.size()]);
      if (h.ok()) handles[victim] = *h;
    }
  }
  out.ns_per_epoch = NsSince(loop_start) / static_cast<double>(epochs);
  out.allocs_per_epoch =
      static_cast<double>(g_alloc_count - allocs_before) /
      static_cast<double>(epochs);
  const overlay::IndexRefreshStats after = sbon.index_refresh_stats();
  out.refresh.refreshes = after.refreshes - before.refreshes;
  out.refresh.republished = after.republished - before.republished;
  out.refresh.skipped = after.skipped - before.skipped;
  out.refresh.quiet_refreshes =
      after.quiet_refreshes - before.quiet_refreshes;
  out.repair = eng->repair_stats();
  return out;
}

struct PipelineRunResult {
  double ns_per_epoch = 0.0;
  uint64_t fingerprint = 0;  ///< bit-pattern hash of coords + live latency
};

// FNV-1a over the bit patterns of the parallel stages' outputs: every
// vector coordinate, every scalar penalty, and the live latency matrix.
// Two runs that are bit-identical hash identically; a single differing ulp
// anywhere does not.
uint64_t StateFingerprint(const overlay::Sbon& sbon) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  const auto& space = sbon.cost_space();
  for (NodeId n = 0; n < space.NumNodes(); ++n) {
    const Vec& v = space.VectorCoord(n);
    for (size_t d = 0; d < v.dims(); ++d) mix(v[d]);
    mix(space.ScalarPenalty(n));
  }
  const size_t nn = sbon.topology().NumNodes();
  const double* lat = sbon.latency().data();
  for (size_t i = 0; i < nn * nn; ++i) mix(lat[i]);
  return h;
}

// The pure epoch pipeline (AdvanceEpoch only, no submit/remove churn in
// the loop) under a realistic maintenance epoch: jitter resample, ambient
// load, 4 online Vivaldi samples per node, dirty refresh. This is the
// workload the `parallel` JSON section compares across thread counts —
// identical seeds must end in bit-identical state at any thread count.
PipelineRunResult RunPipelineOnly(size_t nodes, size_t queries,
                                  size_t epochs, size_t threads,
                                  uint64_t seed) {
  engine::EngineOptions opts;
  opts.sbon.latency_jitter_sigma = 0.1;
  auto eng = bench::MakeTransitStubEngine(nodes, seed, std::move(opts));
  overlay::Sbon& sbon = eng->sbon();

  query::WorkloadParams wp;
  wp.num_streams = 48;
  eng->SetCatalog(query::RandomCatalog(wp, sbon.overlay_nodes(), &sbon.rng()));
  for (size_t q = 0; q < queries; ++q) {
    (void)eng->Submit(query::RandomQuery(wp, eng->catalog(),
                                         sbon.overlay_nodes(), &sbon.rng()));
  }

  engine::EpochOptions epoch;
  epoch.dt = 1.0;
  epoch.tick_network = true;
  epoch.vivaldi_samples = 4;
  epoch.refresh_index = true;
  epoch.refresh_epsilon = 1.0;
  epoch.threads = threads;
  eng->AdvanceEpoch(epoch);  // warm-up (pool spawn, cold caches)

  PipelineRunResult out;
  const Clock::time_point start = Clock::now();
  for (size_t e = 0; e < epochs; ++e) eng->AdvanceEpoch(epoch);
  out.ns_per_epoch = NsSince(start) / static_cast<double>(epochs);
  out.fingerprint = StateFingerprint(sbon);
  return out;
}

// Allocations per VivaldiSystem::Update in steady state (must be 0).
double MeasureVivaldiAllocs() {
  Rng rng(7);
  coords::VivaldiSystem::Params params;
  params.dims = 2;
  coords::VivaldiSystem sys(64, params, &rng);
  auto update = [&](size_t rounds) {
    for (size_t i = 0; i < rounds; ++i) {
      const NodeId self = static_cast<NodeId>(i % 64);
      const NodeId peer = static_cast<NodeId>((i * 13 + 1) % 64);
      if (self == peer) continue;
      sys.Update(self, peer, 10.0 + static_cast<double>(i % 17));
    }
  };
  update(256);  // warm-up
  const size_t before = g_alloc_count;
  constexpr size_t kRounds = 20000;
  update(kRounds);
  return static_cast<double>(g_alloc_count - before) /
         static_cast<double>(kRounds);
}

// Allocations per CoordinateIndex::KNearestInto with a reused output buffer
// in steady state (must be 0).
double MeasureKNearestAllocs(const overlay::Sbon& sbon) {
  const dht::CoordinateIndex& index = sbon.index();
  std::vector<dht::IndexMatch> matches;
  dht::IndexQueryCost cost;
  auto query = [&](size_t rounds) {
    for (size_t i = 0; i < rounds; ++i) {
      const NodeId n =
          sbon.overlay_nodes()[i % sbon.overlay_nodes().size()];
      const Vec target = sbon.cost_space().FullCoord(n);
      (void)index.KNearestInto(target, 8, 16, &cost, {}, &matches);
    }
  };
  query(64);  // warm-up
  const size_t before = g_alloc_count;
  constexpr size_t kRounds = 2000;
  query(kRounds);
  return static_cast<double>(g_alloc_count - before) /
         static_cast<double>(kRounds);
}

}  // namespace
}  // namespace sbon

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);
  const bool smoke = sbon::bench::SmokeMode();
  const size_t nodes =
      sbon::bench::FlagOr(argc, argv, "nodes", sbon::bench::Nodes(512));
  const size_t queries = std::max<size_t>(
      1, sbon::bench::FlagOr(argc, argv, "queries", smoke ? 8 : 64));
  const size_t epochs = std::max<size_t>(
      1, sbon::bench::FlagOr(argc, argv, "epochs", smoke ? 4 : 32));
  const double epsilon = sbon::bench::DoubleFlagOr(argc, argv, "epsilon", 1.0);
  const size_t threads =
      std::max<size_t>(1, sbon::bench::FlagOr(argc, argv, "threads", 1));

  std::printf("perf_epoch: N=%zu nodes, Q=%zu queries, E=%zu epochs, "
              "T=%zu threads\n",
              nodes, queries, epochs, threads);

  sbon::bench::Section("Epoch+Submit throughput (dirty refresh, epsilon)");
  const auto primary = sbon::RunEpochLoop(nodes, queries, epochs, epsilon,
                                          /*seed=*/42, /*churn_rate=*/0.0,
                                          threads);
  std::printf(
      "epsilon=%-4g  %10.0f ns/epoch  %10.0f ns/submit  %zu queries\n"
      "              republished=%zu skipped=%zu quiet_refreshes=%zu/%zu\n",
      epsilon, primary.ns_per_epoch, primary.ns_per_submit,
      primary.queries_running, primary.refresh.republished,
      primary.refresh.skipped, primary.refresh.quiet_refreshes,
      primary.refresh.refreshes);

  sbon::bench::Section("Epoch+Submit throughput (epsilon=0: every change)");
  const auto eps0 = sbon::RunEpochLoop(nodes, queries, epochs, 0.0,
                                       /*seed=*/42, /*churn_rate=*/0.0,
                                       threads);
  std::printf("epsilon=0     %10.0f ns/epoch  %10.0f ns/submit\n",
              eps0.ns_per_epoch, eps0.ns_per_submit);

  sbon::bench::Section("Epoch throughput under churn (crashes + repair)");
  const double churn_rate =
      sbon::bench::DoubleFlagOr(argc, argv, "churn-rate", 0.5);
  const auto churned = sbon::RunEpochLoop(nodes, queries, epochs, epsilon,
                                          /*seed=*/42, churn_rate, threads);
  std::printf(
      "churn=%-5g  %10.0f ns/epoch  (%+0.0f%% vs churn-free)\n"
      "              crashes=%zu rejoins=%zu evicted=%zu orphaned=%zu "
      "repaired=%zu dropped=%zu\n",
      churn_rate, churned.ns_per_epoch,
      primary.ns_per_epoch > 0.0
          ? 100.0 * (churned.ns_per_epoch / primary.ns_per_epoch - 1.0)
          : 0.0,
      churned.repair.crashes, churned.repair.rejoins,
      churned.repair.services_evicted, churned.repair.circuits_orphaned,
      churned.repair.queries_repaired, churned.repair.queries_dropped);

  sbon::bench::Section("Parallel epoch pipeline (AdvanceEpoch only)");
  const size_t hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const size_t par_threads = std::max<size_t>(4, threads);
  const auto pipe1 =
      sbon::RunPipelineOnly(nodes, queries, epochs, /*threads=*/1, 42);
  const auto pipeN =
      sbon::RunPipelineOnly(nodes, queries, epochs, par_threads, 42);
  const bool bit_identical = pipe1.fingerprint == pipeN.fingerprint;
  const double speedup =
      pipeN.ns_per_epoch > 0.0 ? pipe1.ns_per_epoch / pipeN.ns_per_epoch
                               : 0.0;
  std::printf(
      "threads=1     %10.0f ns/epoch\n"
      "threads=%-4zu  %10.0f ns/epoch   speedup %.2fx  (hw threads: %zu)\n"
      "state fingerprints %s\n",
      pipe1.ns_per_epoch, par_threads, pipeN.ns_per_epoch, speedup,
      hw_threads, bit_identical ? "bit-identical across thread counts"
                                : "DIVERGED ACROSS THREAD COUNTS");
  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: thread count changed results (t1=%016llx tN=%016llx)\n",
                 static_cast<unsigned long long>(pipe1.fingerprint),
                 static_cast<unsigned long long>(pipeN.fingerprint));
    return 1;
  }

  sbon::bench::Section("Hot-loop allocation audit");
  const double vivaldi_allocs = sbon::MeasureVivaldiAllocs();
  // A small dedicated overlay keeps the audit cheap under --smoke.
  auto audit_sbon = sbon::bench::MakeTransitStubSbon(
      sbon::bench::Nodes(200), /*seed=*/7);
  const double knearest_allocs = sbon::MeasureKNearestAllocs(*audit_sbon);
  std::printf("allocs/VivaldiSystem::Update = %g (want 0)\n", vivaldi_allocs);
  std::printf("allocs/KNearestInto          = %g (want 0)\n",
              knearest_allocs);
  if (vivaldi_allocs != 0.0 || knearest_allocs != 0.0) {
    std::fprintf(stderr,
                 "FAIL: hot loops allocate (vivaldi=%g knearest=%g)\n",
                 vivaldi_allocs, knearest_allocs);
    return 1;
  }

  if (!sbon::bench::JsonFlag().empty()) {
    std::FILE* f = std::fopen(sbon::bench::JsonFlag().c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n",
                   sbon::bench::JsonFlag().c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"perf_epoch\",\n"
        "  \"smoke\": %s,\n"
        "  \"nodes\": %zu,\n"
        "  \"queries\": %zu,\n"
        "  \"epochs\": %zu,\n"
        "  \"refresh_epsilon\": %g,\n"
        "  \"ns_per_epoch\": %.1f,\n"
        "  \"ns_per_submit\": %.1f,\n"
        "  \"ns_per_epoch_eps0\": %.1f,\n"
        "  \"allocs_per_epoch\": %.1f,\n"
        "  \"republished\": %zu,\n"
        "  \"republish_skipped\": %zu,\n"
        "  \"quiet_refreshes\": %zu,\n"
        "  \"refreshes\": %zu,\n"
        "  \"allocs_per_vivaldi_update\": %g,\n"
        "  \"allocs_per_knearest\": %g,\n"
        "  \"parallel\": {\n"
        "    \"hw_threads\": %zu,\n"
        "    \"threads\": %zu,\n"
        "    \"vivaldi_samples\": 4,\n"
        "    \"ns_per_epoch_threads1\": %.1f,\n"
        "    \"ns_per_epoch_threadsN\": %.1f,\n"
        "    \"speedup\": %.2f,\n"
        "    \"bit_identical\": %s\n"
        "  },\n"
        "  \"churn\": {\n"
        "    \"crash_rate\": %g,\n"
        "    \"ns_per_epoch\": %.1f,\n"
        "    \"crashes\": %zu,\n"
        "    \"rejoins\": %zu,\n"
        "    \"services_evicted\": %zu,\n"
        "    \"circuits_orphaned\": %zu,\n"
        "    \"queries_repaired\": %zu,\n"
        "    \"queries_dropped\": %zu\n"
        "  }\n"
        "}\n",
        smoke ? "true" : "false", nodes, queries, epochs, epsilon,
        primary.ns_per_epoch, primary.ns_per_submit, eps0.ns_per_epoch,
        primary.allocs_per_epoch, primary.refresh.republished,
        primary.refresh.skipped, primary.refresh.quiet_refreshes,
        primary.refresh.refreshes, vivaldi_allocs, knearest_allocs,
        hw_threads, par_threads, pipe1.ns_per_epoch, pipeN.ns_per_epoch,
        speedup, bit_identical ? "true" : "false",
        churn_rate, churned.ns_per_epoch, churned.repair.crashes,
        churned.repair.rejoins, churned.repair.services_evicted,
        churned.repair.circuits_orphaned, churned.repair.queries_repaired,
        churned.repair.queries_dropped);
    std::fclose(f);
    std::printf("\nwrote %s\n", sbon::bench::JsonFlag().c_str());
  }
  return 0;
}

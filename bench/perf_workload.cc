// perf_workload: the open-loop workload soak (README "Workload engine").
//
// Drives query::WorkloadEngine over a transit-stub StreamEngine through a
// multi-thousand-epoch soak — a Poisson arrival process with diurnal
// modulation and a scripted flash-crowd overload window, exponential query
// lifetimes, light membership churn — and reports SLO percentiles
// (p50/p95/p99 placement and repair latency via O(1)-memory P² digests),
// shed rates, and reuse-catalog hit rates per phase (steady / flash-crowd /
// recovery) into BENCH_workload.json.
//
// The run self-gates (nonzero exit) when:
//  - the flash-crowd phase sheds nothing (admission control regression:
//    overload must be a *measured* scenario, not an accident), or
//  - the cumulative offered-query count misses the configured floor, or
//  - the fixed-seed replay diverges between threads=1 and threads=4.
//
// Full run (~minutes, Release): ≥ 1M cumulative offered queries.
//   ./perf_workload --json=BENCH_workload.json
// CI smoke run (seconds, same code paths, scaled down):
//   ./perf_workload --smoke --json=BENCH_workload.json

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/churn.h"
#include "query/workload_engine.h"

namespace {

using sbon::NodeId;
using sbon::Vec;

double NsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// FNV-1a over the overlay's coordinate/penalty state plus a strided
/// latency sample (same scheme as perf_epoch): the replay gate's equality
/// check.
uint64_t StateFingerprint(const sbon::overlay::Sbon& sbon) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  const auto& space = sbon.cost_space();
  for (NodeId n = 0; n < space.NumNodes(); ++n) {
    const Vec& v = space.VectorCoord(n);
    for (size_t d = 0; d < v.dims(); ++d) mix(v[d]);
    mix(space.ScalarPenalty(n));
  }
  mix(static_cast<double>(sbon.NumServices()));
  mix(sbon.TotalNetworkUsage());
  return h;
}

/// Everything one soak run produces (the JSON body, and the replay gate's
/// comparison record).
struct SoakConfig {
  size_t nodes = 256;
  size_t epochs = 4000;
  double base_rate = 260.0;
  double mean_lifetime = 4.0;
  double diurnal_amplitude = 0.35;
  size_t diurnal_period = 1000;
  size_t flash_start = 1800;
  size_t flash_duration = 400;
  double flash_multiplier = 6.0;
  double hotspot_site_frac = 0.05;
  size_t max_running = 1600;
  double churn_crash_rate = 0.02;
  size_t threads = 1;
  uint64_t seed = 42;
};

struct TimelinePoint {
  size_t epoch = 0;
  size_t running = 0;
  double reuse_hit_rate = 0.0;  // cumulative
  double shed_rate = 0.0;       // cumulative
};

struct SoakResult {
  sbon::query::WorkloadPhaseStats totals;
  std::vector<sbon::query::WorkloadPhaseStats> phases;
  std::vector<TimelinePoint> timeline;
  uint64_t fingerprint = 0;
  double wall_ns = 0.0;
  size_t final_running = 0;
  sbon::engine::RepairStats repair;
};

SoakResult RunSoak(const SoakConfig& cfg) {
  sbon::engine::EngineOptions eng_opts;
  // The soak runs with install-time refreshes on: every arrival batch and
  // departure burst republishes the index once (the SubmitAll/DeferRefresh
  // batching this PR pinned) so placements always see current load.
  eng_opts.refresh_index_on_install = true;
  auto engine = sbon::bench::MakeTransitStubEngine(cfg.nodes, cfg.seed,
                                                   std::move(eng_opts));

  sbon::net::ChurnModel::Params churn_params;
  churn_params.crash_rate = cfg.churn_crash_rate;
  churn_params.mean_downtime_epochs = 6.0;
  churn_params.seed = cfg.seed * 1000003 + 17;
  sbon::net::ChurnModel churn(engine->sbon().overlay_nodes(), churn_params);

  sbon::query::WorkloadEngineOptions wl_opts;
  wl_opts.seed = cfg.seed * 131 + 7;
  // A shareable mix (popular streams, coarse selectivity grid, no
  // per-query filter noise — fig4's "heavy stream sharing" shape) so the
  // reuse-catalog hit rate measures something: fully heterogeneous random
  // queries never collide on a reuse signature.
  wl_opts.workload.num_streams = 16;
  wl_opts.workload.min_streams_per_query = 2;
  wl_opts.workload.max_streams_per_query = 4;
  wl_opts.workload.join_sel_log10_min = -3.0;
  wl_opts.workload.join_sel_log10_max = -3.0;
  wl_opts.workload.filter_prob = 0.0;
  wl_opts.workload.aggregate_prob = 0.0;
  wl_opts.arrivals.base_rate_per_epoch = cfg.base_rate;
  wl_opts.arrivals.mean_lifetime_epochs = cfg.mean_lifetime;
  wl_opts.arrivals.diurnal_amplitude = cfg.diurnal_amplitude;
  wl_opts.arrivals.diurnal_period_epochs = cfg.diurnal_period;
  sbon::query::FlashCrowd flash;
  flash.start_epoch = cfg.flash_start;
  flash.duration_epochs = cfg.flash_duration;
  flash.rate_multiplier = cfg.flash_multiplier;
  flash.hotspot_site_frac = cfg.hotspot_site_frac;
  wl_opts.arrivals.flash_crowds.push_back(flash);
  wl_opts.admission.max_running_queries = cfg.max_running;
  wl_opts.epoch.dt = 0.25;
  wl_opts.epoch.vivaldi_samples = 1;
  wl_opts.epoch.refresh_epsilon = 0.05;
  wl_opts.epoch.threads = cfg.threads;
  wl_opts.epoch.churn = cfg.churn_crash_rate > 0.0 ? &churn : nullptr;
  wl_opts.epoch.exec_mode = sbon::bench::ExecMode();
  // Reuse-capable optimization is the point of tracking catalog hit rates;
  // --optimizer= still overrides for ablations.
  wl_opts.strategy.optimizer = sbon::bench::OptimizerFlag() == "integrated"
                                   ? "multi-query"
                                   : sbon::bench::OptimizerFlag();

  auto wl = sbon::query::WorkloadEngine::Create(engine.get(), wl_opts);
  if (!wl.ok()) {
    std::fprintf(stderr, "WorkloadEngine creation failed: %s\n",
                 wl.status().ToString().c_str());
    std::exit(1);
  }
  sbon::query::WorkloadEngine& w = **wl;

  SoakResult out;
  const size_t flash_end = cfg.flash_start + cfg.flash_duration;
  const size_t sample_every = std::max<size_t>(1, cfg.epochs / 16);
  const auto start = std::chrono::steady_clock::now();
  w.BeginPhase("steady");
  for (size_t t = 0; t < cfg.epochs; ++t) {
    if (t == cfg.flash_start) w.BeginPhase("flash-crowd");
    if (t == flash_end) w.BeginPhase("recovery");
    const sbon::Status st = w.Step();
    if (!st.ok()) {
      std::fprintf(stderr, "Step failed at epoch %zu: %s\n", t,
                   st.ToString().c_str());
      std::exit(1);
    }
    if ((t + 1) % sample_every == 0 || t + 1 == cfg.epochs) {
      TimelinePoint p;
      p.epoch = t + 1;
      p.running = w.running();
      p.reuse_hit_rate = w.totals().reuse_hit_rate();
      p.shed_rate = w.totals().shed_rate();
      out.timeline.push_back(p);
    }
  }
  out.wall_ns = NsSince(start);
  out.totals = w.totals();
  out.phases = w.phases();
  out.final_running = w.running();
  out.fingerprint = StateFingerprint(engine->sbon());
  out.repair = engine->repair_stats();
  return out;
}

void PrintPhase(const sbon::query::WorkloadPhaseStats& p) {
  std::printf(
      "  %-11s epochs=%-5zu arrivals=%-8zu shed=%-7zu (%.1f%%) "
      "submitted=%-8zu reuse=%.1f%%\n",
      p.name.c_str(), p.epochs, p.arrivals, p.shed, 100.0 * p.shed_rate(),
      p.submitted, 100.0 * p.reuse_hit_rate());
  std::printf(
      "              placement p50=%.0f p95=%.0f p99=%.0f ns  "
      "repair p50=%.0f p95=%.0f p99=%.0f ns (%zu repairs)\n",
      p.placement_ns.p50(), p.placement_ns.p95(), p.placement_ns.p99(),
      p.repair_ns.p50(), p.repair_ns.p95(), p.repair_ns.p99(),
      p.repair_ns.count());
}

void JsonPhase(std::FILE* f, const sbon::query::WorkloadPhaseStats& p,
               bool last) {
  std::fprintf(
      f,
      "    {\"name\": \"%s\", \"epochs\": %zu, \"arrivals\": %zu, "
      "\"shed\": %zu, \"shed_rate\": %.6f, \"admitted\": %zu, "
      "\"submitted\": %zu, \"submit_failures\": %zu, \"departures\": %zu, "
      "\"reuse_hit_rate\": %.6f, \"services_reused\": %zu,\n"
      "     \"placement_ns\": {\"count\": %zu, \"mean\": %.1f, "
      "\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"max\": %.1f},\n"
      "     \"repair_ns\": {\"count\": %zu, \"mean\": %.1f, "
      "\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"max\": %.1f}}%s\n",
      p.name.c_str(), p.epochs, p.arrivals, p.shed, p.shed_rate(),
      p.admitted, p.submitted, p.submit_failures, p.departures,
      p.reuse_hit_rate(), p.services_reused, p.placement_ns.count(),
      p.placement_ns.mean(), p.placement_ns.p50(), p.placement_ns.p95(),
      p.placement_ns.p99(), p.placement_ns.max(), p.repair_ns.count(),
      p.repair_ns.mean(), p.repair_ns.p50(), p.repair_ns.p95(),
      p.repair_ns.p99(), p.repair_ns.max(), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  sbon::bench::ParseBenchArgs(argc, argv);

  SoakConfig cfg;
  if (sbon::bench::SmokeMode()) {
    // Same code paths and phase structure, seconds instead of minutes.
    cfg.nodes = 120;
    cfg.epochs = 60;
    cfg.base_rate = 8.0;
    cfg.mean_lifetime = 6.0;
    cfg.diurnal_period = 30;
    cfg.flash_start = 24;
    cfg.flash_duration = 14;
    cfg.flash_multiplier = 10.0;
    cfg.max_running = 64;
    cfg.churn_crash_rate = 0.15;
  }
  cfg.nodes = sbon::bench::FlagOr(argc, argv, "nodes", cfg.nodes);
  cfg.epochs = sbon::bench::FlagOr(argc, argv, "epochs", cfg.epochs);
  cfg.base_rate = sbon::bench::DoubleFlagOr(argc, argv, "rate", cfg.base_rate);
  cfg.threads = sbon::bench::FlagOr(argc, argv, "threads", cfg.threads);
  cfg.seed = sbon::bench::FlagOr(argc, argv, "seed", cfg.seed);
  const size_t min_cumulative = sbon::bench::FlagOr(
      argc, argv, "min-cumulative", sbon::bench::SmokeMode() ? 0 : 1000000);

  sbon::bench::Section("open-loop workload soak");
  std::printf(
      "nodes=%zu epochs=%zu base_rate=%.1f lifetime=%.1f flash=[%zu,%zu)x%.1f "
      "cap=%zu crash_rate=%.2f threads=%zu seed=%llu\n",
      cfg.nodes, cfg.epochs, cfg.base_rate, cfg.mean_lifetime,
      cfg.flash_start, cfg.flash_start + cfg.flash_duration,
      cfg.flash_multiplier, cfg.max_running, cfg.churn_crash_rate,
      cfg.threads, static_cast<unsigned long long>(cfg.seed));

  const SoakResult run = RunSoak(cfg);
  std::printf(
      "soak: %.1fs wall, %zu offered / %zu submitted / %zu shed (%.1f%%), "
      "%zu departures, %zu running at end\n",
      run.wall_ns / 1e9, run.totals.arrivals, run.totals.submitted,
      run.totals.shed, 100.0 * run.totals.shed_rate(),
      run.totals.departures, run.final_running);
  std::printf("repair: %zu crashes, %zu repaired, %zu dropped\n",
              run.repair.crashes, run.repair.queries_repaired,
              run.repair.queries_dropped);
  for (const auto& p : run.phases) PrintPhase(p);

  // Replay gate: a pinned small soak must be bit-identical at threads=1 vs
  // threads=4 — the pool schedules epochs, it never changes what they
  // compute, and the workload driver's draws all come from its own Rng.
  sbon::bench::Section("replay gate (threads=1 vs threads=4)");
  SoakConfig replay_cfg;
  replay_cfg.nodes = 96;
  replay_cfg.epochs = 30;
  replay_cfg.base_rate = 6.0;
  replay_cfg.mean_lifetime = 5.0;
  replay_cfg.diurnal_period = 15;
  replay_cfg.flash_start = 12;
  replay_cfg.flash_duration = 8;
  replay_cfg.flash_multiplier = 8.0;
  replay_cfg.max_running = 40;
  replay_cfg.churn_crash_rate = 0.3;
  replay_cfg.seed = cfg.seed;
  replay_cfg.threads = 1;
  const SoakResult r1 = RunSoak(replay_cfg);
  replay_cfg.threads = 4;
  const SoakResult r4 = RunSoak(replay_cfg);
  const bool replay_ok = r1.fingerprint == r4.fingerprint &&
                         r1.totals.arrivals == r4.totals.arrivals &&
                         r1.totals.shed == r4.totals.shed &&
                         r1.totals.submitted == r4.totals.submitted &&
                         r1.totals.departures == r4.totals.departures;
  std::printf("fingerprint t1=%016llx t4=%016llx -> %s\n",
              static_cast<unsigned long long>(r1.fingerprint),
              static_cast<unsigned long long>(r4.fingerprint),
              replay_ok ? "identical" : "DIVERGED");

  // Gates.
  const sbon::query::WorkloadPhaseStats* flash_phase = nullptr;
  for (const auto& p : run.phases) {
    if (p.name == "flash-crowd") flash_phase = &p;
  }
  bool failed = false;
  if (!replay_ok) {
    std::fprintf(stderr, "GATE: threads=1 vs threads=4 replay diverged\n");
    failed = true;
  }
  if (flash_phase == nullptr || flash_phase->shed == 0) {
    std::fprintf(stderr,
                 "GATE: flash-crowd phase shed nothing — admission control "
                 "never engaged under overload\n");
    failed = true;
  }
  if (run.totals.arrivals < min_cumulative) {
    std::fprintf(stderr,
                 "GATE: cumulative offered queries %zu below the %zu floor\n",
                 run.totals.arrivals, min_cumulative);
    failed = true;
  }

  if (!sbon::bench::JsonFlag().empty()) {
    std::FILE* f = std::fopen(sbon::bench::JsonFlag().c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n",
                   sbon::bench::JsonFlag().c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"perf_workload\",\n"
        "  \"smoke\": %s,\n"
        "  \"config\": {\"nodes\": %zu, \"epochs\": %zu, "
        "\"base_rate_per_epoch\": %.1f, \"mean_lifetime_epochs\": %.1f, "
        "\"diurnal_amplitude\": %.2f, \"diurnal_period_epochs\": %zu, "
        "\"flash_start\": %zu, \"flash_duration\": %zu, "
        "\"flash_multiplier\": %.1f, \"hotspot_site_frac\": %.2f, "
        "\"max_running_queries\": %zu, \"churn_crash_rate\": %.2f, "
        "\"threads\": %zu, \"seed\": %llu},\n",
        sbon::bench::SmokeMode() ? "true" : "false", cfg.nodes, cfg.epochs,
        cfg.base_rate, cfg.mean_lifetime, cfg.diurnal_amplitude,
        cfg.diurnal_period, cfg.flash_start, cfg.flash_duration,
        cfg.flash_multiplier, cfg.hotspot_site_frac, cfg.max_running,
        cfg.churn_crash_rate, cfg.threads,
        static_cast<unsigned long long>(cfg.seed));
    std::fprintf(
        f,
        "  \"totals\": {\"arrivals\": %zu, \"shed\": %zu, "
        "\"shed_rate\": %.6f, \"admitted\": %zu, \"submitted\": %zu, "
        "\"submit_failures\": %zu, \"departures\": %zu, "
        "\"reuse_hit_rate\": %.6f, \"final_running\": %zu, "
        "\"wall_seconds\": %.1f},\n",
        run.totals.arrivals, run.totals.shed, run.totals.shed_rate(),
        run.totals.admitted, run.totals.submitted,
        run.totals.submit_failures, run.totals.departures,
        run.totals.reuse_hit_rate(), run.final_running, run.wall_ns / 1e9);
    std::fprintf(
        f,
        "  \"repair\": {\"crashes\": %zu, \"rejoins\": %zu, "
        "\"queries_repaired\": %zu, \"queries_dropped\": %zu},\n",
        run.repair.crashes, run.repair.rejoins, run.repair.queries_repaired,
        run.repair.queries_dropped);
    std::fprintf(f, "  \"phases\": [\n");
    for (size_t i = 0; i < run.phases.size(); ++i) {
      JsonPhase(f, run.phases[i], i + 1 == run.phases.size());
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"timeline\": [\n");
    for (size_t i = 0; i < run.timeline.size(); ++i) {
      const TimelinePoint& p = run.timeline[i];
      std::fprintf(f,
                   "    {\"epoch\": %zu, \"running\": %zu, "
                   "\"reuse_hit_rate\": %.6f, \"shed_rate\": %.6f}%s\n",
                   p.epoch, p.running, p.reuse_hit_rate, p.shed_rate,
                   i + 1 == run.timeline.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"replay\": {\"fingerprint_t1\": \"%016llx\", "
        "\"fingerprint_t4\": \"%016llx\", \"identical\": %s}\n}\n",
        static_cast<unsigned long long>(r1.fingerprint),
        static_cast<unsigned long long>(r4.fingerprint),
        replay_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", sbon::bench::JsonFlag().c_str());
  }

  return failed ? 1 : 0;
}

// Adaptive re-optimization under network dynamics (paper Sec. 2 & 3.3):
// long-running circuits outlive the conditions they were optimized for.
// This example drives the engine's epoch pipeline over 120 simulated time
// units, where node loads evolve as stochastic processes and congestion
// epochs periodically reshuffle latencies, and compares a static deployment
// against one that periodically runs local re-optimization (service
// migration) with an occasional full re-plan.
//
// Everything goes through the StreamEngine lifecycle: each simulated time
// unit is one AdvanceEpoch (the explicit jitter -> load -> coords ->
// churn -> refresh pipeline), and Reoptimize keeps query handles valid
// across full re-plans — no manual circuit-id juggling when a re-plan
// swaps the circuit.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "engine/stream_engine.h"
#include "net/generators.h"
#include "query/workload.h"

namespace {

struct RunResult {
  double mean_cost = 0.0;  // time-averaged estimated circuit cost
  size_t migrations = 0;
  size_t replans = 0;
};

RunResult Simulate(bool adaptive, uint64_t seed) {
  sbon::Rng rng(seed);
  sbon::net::TransitStubParams tp;
  tp.transit_domains = 2;
  tp.nodes_per_stub_domain = 8;
  auto topo = sbon::net::GenerateTransitStub(tp, &rng);

  sbon::engine::EngineOptions options;
  options.topology = std::move(topo.value());
  options.sbon.seed = seed;
  options.sbon.load_params.sigma = 0.35;  // volatile loads
  options.sbon.load_params.theta = 0.4;
  options.sbon.load_params.hotspot_frac = 0.05;
  options.sbon.latency_jitter_sigma = 0.2;  // transient congestion epochs
  options.optimizer = "integrated";
  auto created = sbon::engine::StreamEngine::Create(std::move(options));
  if (!created.ok()) {
    std::fprintf(stderr, "engine: %s\n", created.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<sbon::engine::StreamEngine> engine =
      std::move(created.value());

  sbon::query::WorkloadParams wp;
  wp.num_streams = 12;
  engine->SetCatalog(sbon::query::RandomCatalog(
      wp, engine->sbon().overlay_nodes(), &engine->sbon().rng()));

  // Deploy 6 long-running queries.
  std::vector<sbon::engine::QueryHandle> deployed;
  for (int i = 0; i < 6; ++i) {
    auto handle = engine->Submit(sbon::query::RandomQuery(
        wp, engine->catalog(), engine->sbon().overlay_nodes(),
        &engine->sbon().rng()));
    if (handle.ok()) deployed.push_back(*handle);
  }

  RunResult result;
  size_t samples = 0;

  constexpr int kHorizon = 120;
  for (int t = 1; t <= kHorizon; ++t) {
    // Load dynamics every time unit; the index refresh publishes the fresh
    // scalars. A congestion epoch every 15 units resamples latency jitter
    // and lets coordinates track the new latencies online.
    sbon::engine::EpochOptions epoch;
    epoch.dt = 1.0;
    const bool congestion = t % 15 == 0;
    epoch.tick_network = congestion;
    epoch.vivaldi_samples = congestion ? 8 : 0;
    engine->AdvanceEpoch(epoch);

    // Cost sampling every 5 units.
    if (t % 5 == 0) {
      for (sbon::engine::QueryHandle handle : deployed) {
        auto cost = engine->CurrentEstimatedCost(handle);
        if (cost.ok()) {
          result.mean_cost += *cost;
          ++samples;
        }
      }
    }

    if (adaptive) {
      // Local re-optimization every 10 units; full re-plan every 40.
      if (t % 10 == 0) {
        for (sbon::engine::QueryHandle handle : deployed) {
          sbon::engine::ReoptPolicy policy;  // defaults to Mode::kLocal
          auto outcome = engine->Reoptimize(handle, policy);
          if (outcome.ok()) result.migrations += outcome->local.migrations;
        }
      }
      if (t % 40 == 0) {
        for (sbon::engine::QueryHandle handle : deployed) {
          sbon::engine::ReoptPolicy policy;
          policy.mode = sbon::engine::ReoptPolicy::Mode::kFull;
          auto outcome = engine->Reoptimize(handle, policy);
          if (outcome.ok() && outcome->full.redeployed) ++result.replans;
        }
      }
    }
  }

  if (samples > 0) result.mean_cost /= static_cast<double>(samples);
  return result;
}

}  // namespace

int main() {
  std::printf("adaptive re-optimization under volatile node load "
              "(120 time units, 6 circuits)\n\n");
  std::printf("%-10s %-22s %-12s %-9s\n", "mode", "time-avg est cost",
              "migrations", "replans");
  double static_cost = 0.0, adaptive_cost = 0.0;
  for (uint64_t seed : {3, 4, 5}) {
    const RunResult st = Simulate(/*adaptive=*/false, seed);
    const RunResult ad = Simulate(/*adaptive=*/true, seed);
    static_cost += st.mean_cost;
    adaptive_cost += ad.mean_cost;
    std::printf("seed %llu:\n", static_cast<unsigned long long>(seed));
    std::printf("%-10s %-22.1f %-12zu %-9zu\n", "  static", st.mean_cost,
                st.migrations, st.replans);
    std::printf("%-10s %-22.1f %-12zu %-9zu\n", "  adaptive", ad.mean_cost,
                ad.migrations, ad.replans);
  }
  std::printf("\nadaptive deployment averages %.1f%% lower estimated cost "
              "than leaving initial placements to rot\n",
              100.0 * (1.0 - adaptive_cost / std::max(1.0, static_cost)));
  return 0;
}

// Adaptive re-optimization under network dynamics (paper Sec. 2 & 3.3):
// long-running circuits outlive the conditions they were optimized for.
// This example drives a discrete-event simulation where node loads evolve
// as stochastic processes, and compares a static deployment against one
// that periodically runs local re-optimization (service migration) with an
// occasional full re-plan.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/integrated.h"
#include "core/reopt.h"
#include "net/generators.h"
#include "overlay/event_sim.h"
#include "overlay/sbon.h"
#include "query/workload.h"

using namespace sbon;

namespace {

struct RunResult {
  double mean_cost = 0.0;   // time-averaged estimated circuit cost
  size_t migrations = 0;
  size_t replans = 0;
};

RunResult Simulate(bool adaptive, uint64_t seed) {
  Rng rng(seed);
  net::TransitStubParams tp;
  tp.transit_domains = 2;
  tp.nodes_per_stub_domain = 8;
  auto topo = net::GenerateTransitStub(tp, &rng);
  overlay::Sbon::Options options;
  options.seed = seed;
  options.load_params.sigma = 0.35;  // volatile loads
  options.load_params.theta = 0.4;
  options.load_params.hotspot_frac = 0.05;
  options.latency_jitter_sigma = 0.2;  // transient congestion epochs
  auto sbon = std::move(
      overlay::Sbon::Create(std::move(topo.value()), options).value());

  query::WorkloadParams wp;
  wp.num_streams = 12;
  query::Catalog catalog =
      query::RandomCatalog(wp, sbon->overlay_nodes(), &sbon->rng());

  core::OptimizerConfig config;
  core::IntegratedOptimizer optimizer(
      config, std::make_shared<placement::RelaxationPlacer>());

  // Deploy 6 long-running queries.
  std::vector<std::pair<CircuitId, query::QuerySpec>> deployed;
  for (int i = 0; i < 6; ++i) {
    query::QuerySpec q = query::RandomQuery(wp, catalog,
                                            sbon->overlay_nodes(),
                                            &sbon->rng());
    auto r = optimizer.Optimize(q, catalog, sbon.get());
    if (!r.ok()) continue;
    auto id = sbon->InstallCircuit(std::move(r->circuit));
    if (id.ok()) deployed.emplace_back(*id, q);
  }

  overlay::EventSim sim;
  RunResult result;
  size_t samples = 0;

  // Load dynamics every 1 time unit; index refresh follows.
  sim.SchedulePeriodic(1.0, [&] {
    sbon->Tick(1.0);
    sbon->RefreshIndex();
  }, /*until=*/120.0);

  // Congestion epochs every 15 units; coordinates track them online.
  sim.SchedulePeriodic(15.0, [&] {
    sbon->TickNetwork();
    sbon->UpdateCoordinatesOnline(8);
  }, 120.0);

  // Cost sampling every 5 units.
  sim.SchedulePeriodic(5.0, [&] {
    for (auto& [id, spec] : deployed) {
      const overlay::Circuit* c = sbon->FindCircuit(id);
      if (c == nullptr) continue;
      auto cost = core::EstimateCost(*c, *sbon, config.lambda);
      if (cost.ok()) {
        result.mean_cost += *cost;
        ++samples;
      }
    }
  }, 120.0);

  if (adaptive) {
    placement::RelaxationPlacer placer;
    // Local re-optimization every 10 units; full re-plan every 40.
    sim.SchedulePeriodic(10.0, [&] {
      for (auto& [id, spec] : deployed) {
        if (sbon->FindCircuit(id) == nullptr) continue;
        auto rep = core::LocalReoptimize(sbon.get(), id, placer,
                                         core::ReoptConfig{});
        if (rep.ok()) result.migrations += rep->migrations;
      }
    }, 120.0);
    sim.SchedulePeriodic(40.0, [&] {
      for (auto& [id, spec] : deployed) {
        if (sbon->FindCircuit(id) == nullptr) continue;
        auto rep = core::FullReoptimize(sbon.get(), id, spec, catalog,
                                        &optimizer, core::ReoptConfig{});
        if (rep.ok() && rep->redeployed) {
          ++result.replans;
          id = rep->new_circuit;  // track the replacement circuit
        }
      }
    }, 120.0);
  }

  sim.RunUntil(120.0);
  if (samples > 0) result.mean_cost /= static_cast<double>(samples);
  return result;
}

}  // namespace

int main() {
  std::printf("adaptive re-optimization under volatile node load "
              "(120 time units, 6 circuits)\n\n");
  std::printf("%-10s %-22s %-12s %-9s\n", "mode", "time-avg est cost",
              "migrations", "replans");
  double static_cost = 0.0, adaptive_cost = 0.0;
  for (uint64_t seed : {3, 4, 5}) {
    const RunResult st = Simulate(/*adaptive=*/false, seed);
    const RunResult ad = Simulate(/*adaptive=*/true, seed);
    static_cost += st.mean_cost;
    adaptive_cost += ad.mean_cost;
    std::printf("seed %llu:\n", static_cast<unsigned long long>(seed));
    std::printf("%-10s %-22.1f %-12zu %-9zu\n", "  static", st.mean_cost,
                st.migrations, st.replans);
    std::printf("%-10s %-22.1f %-12zu %-9zu\n", "  adaptive", ad.mean_cost,
                ad.migrations, ad.replans);
  }
  std::printf("\nadaptive deployment averages %.1f%% lower estimated cost "
              "than leaving initial placements to rot\n",
              100.0 * (1.0 - adaptive_cost / std::max(1.0, static_cost)));
  return 0;
}

// Multi-tenant dashboards: many users pose overlapping continuous queries
// over a shared pool of feeds. The multi-query optimizer (paper Sec. 3.4)
// merges identical services across tenants, but only searches for reuse
// inside a cost-space sphere of radius r around each new service.
//
// The example deploys 30 dashboard queries three times — reuse disabled,
// radius pruning, unbounded reuse — by submitting the same workload to a
// StreamEngine whose "multi-query" strategy gets a different reuse radius
// per run, and compares deployed services, network usage, and optimizer
// work (all read off engine Snapshot / per-query stats).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "engine/stream_engine.h"
#include "net/generators.h"
#include "query/workload.h"

namespace {

struct DeployStats {
  size_t circuits = 0;
  size_t services = 0;
  size_t reused = 0;
  size_t reuse_candidates = 0;
  double usage = 0.0;
};

DeployStats DeployAll(double radius, uint64_t seed) {
  sbon::Rng rng(seed);
  sbon::net::TransitStubParams tp;
  tp.transit_domains = 2;
  tp.nodes_per_stub_domain = 8;
  auto topo = sbon::net::GenerateTransitStub(tp, &rng);

  sbon::engine::EngineOptions options;
  options.topology = std::move(topo.value());
  options.sbon.seed = seed;
  options.optimizer = "multi-query";
  options.config.enumeration.top_k = 4;
  options.multi_query.reuse_radius = radius;
  options.refresh_index_on_install = true;
  auto created = sbon::engine::StreamEngine::Create(std::move(options));
  if (!created.ok()) {
    std::fprintf(stderr, "engine: %s\n", created.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<sbon::engine::StreamEngine> engine =
      std::move(created.value());

  // A small pool of popular feeds shared by all tenants.
  sbon::query::WorkloadParams wp;
  wp.num_streams = 10;
  wp.min_streams_per_query = 2;
  wp.max_streams_per_query = 3;
  wp.join_sel_log10_min = -3.0;
  wp.join_sel_log10_max = -3.0;  // fixed predicate grid => shareable ops
  wp.filter_prob = 0.0;
  wp.aggregate_prob = 0.0;
  engine->SetCatalog(sbon::query::RandomCatalog(
      wp, engine->sbon().overlay_nodes(), &engine->sbon().rng()));

  std::vector<sbon::query::QuerySpec> tenants;
  for (int tenant = 0; tenant < 30; ++tenant) {
    tenants.push_back(sbon::query::RandomQuery(
        wp, engine->catalog(), engine->sbon().overlay_nodes(),
        &engine->sbon().rng()));
  }
  (void)engine->SubmitAll(tenants);  // failed tenants simply stay undeployed

  DeployStats stats;
  const sbon::engine::EngineSnapshot snap = engine->Snapshot();
  stats.circuits = snap.num_queries;
  stats.services = snap.num_services;
  stats.usage = snap.total_network_usage / 1000.0;
  for (const sbon::engine::QueryStats& q : snap.queries) {
    stats.reused += q.services_reused;
    stats.reuse_candidates += q.reuse_candidates_considered;
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("30 dashboard tenants over 10 shared feeds\n\n");
  std::printf("%-22s %-9s %-9s %-13s %-12s %s\n", "mode", "circuits",
              "services", "reused binds", "cands seen", "usage KB*ms/s");
  const DeployStats isolated = DeployAll(/*radius=*/0.0, /*seed=*/5);
  std::printf("%-22s %-9zu %-9zu %-13zu %-12zu %.1f\n",
              "no reuse (r = 0)", isolated.circuits, isolated.services,
              isolated.reused, isolated.reuse_candidates, isolated.usage);
  const DeployStats pruned = DeployAll(/*radius=*/25.0, /*seed=*/5);
  std::printf("%-22s %-9zu %-9zu %-13zu %-12zu %.1f\n",
              "radius pruning (r=25)", pruned.circuits, pruned.services,
              pruned.reused, pruned.reuse_candidates, pruned.usage);
  const DeployStats unbounded = DeployAll(/*radius=*/-1.0, /*seed=*/5);
  std::printf("%-22s %-9zu %-9zu %-13zu %-12zu %.1f\n",
              "unbounded reuse", unbounded.circuits, unbounded.services,
              unbounded.reused, unbounded.reuse_candidates, unbounded.usage);

  std::printf("\nradius pruning keeps %.0f%% of unbounded reuse's usage "
              "saving while examining %.0f%% of its candidates\n",
              100.0 * (isolated.usage - pruned.usage) /
                  std::max(1.0, isolated.usage - unbounded.usage),
              100.0 * pruned.reuse_candidates /
                  std::max<size_t>(1, unbounded.reuse_candidates));
  return 0;
}

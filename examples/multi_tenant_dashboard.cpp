// Multi-tenant dashboards: many users pose overlapping continuous queries
// over a shared pool of feeds. The multi-query optimizer (paper Sec. 3.4)
// merges identical services across tenants, but only searches for reuse
// inside a cost-space sphere of radius r around each new service.
//
// The example deploys 30 dashboard queries twice — once with reuse disabled
// and once with radius pruning — and compares deployed services, total
// network usage, and optimizer work.

#include <cstdio>
#include <memory>

#include "core/multi_query.h"
#include "net/generators.h"
#include "overlay/sbon.h"
#include "query/workload.h"

using namespace sbon;

namespace {

struct DeployStats {
  size_t circuits = 0;
  size_t services = 0;
  size_t reused = 0;
  size_t reuse_candidates = 0;
  double usage = 0.0;
};

DeployStats DeployAll(double radius, uint64_t seed) {
  Rng rng(seed);
  net::TransitStubParams tp;
  tp.transit_domains = 2;
  tp.nodes_per_stub_domain = 8;
  auto topo = net::GenerateTransitStub(tp, &rng);
  overlay::Sbon::Options options;
  options.seed = seed;
  auto sbon = std::move(
      overlay::Sbon::Create(std::move(topo.value()), options).value());

  // A small pool of popular feeds shared by all tenants.
  query::WorkloadParams wp;
  wp.num_streams = 10;
  wp.min_streams_per_query = 2;
  wp.max_streams_per_query = 3;
  wp.join_sel_log10_min = -3.0;
  wp.join_sel_log10_max = -3.0;  // fixed predicate grid => shareable ops
  wp.filter_prob = 0.0;
  wp.aggregate_prob = 0.0;
  query::Catalog catalog =
      query::RandomCatalog(wp, sbon->overlay_nodes(), &sbon->rng());

  core::OptimizerConfig config;
  config.enumeration.top_k = 4;
  core::MultiQueryOptimizer::Params params;
  params.reuse_radius = radius;
  core::MultiQueryOptimizer optimizer(
      config, std::make_shared<placement::RelaxationPlacer>(), params);

  DeployStats stats;
  for (int tenant = 0; tenant < 30; ++tenant) {
    query::QuerySpec q = query::RandomQuery(wp, catalog,
                                            sbon->overlay_nodes(),
                                            &sbon->rng());
    auto r = optimizer.Optimize(q, catalog, sbon.get());
    if (!r.ok()) continue;
    stats.reused += r->services_reused;
    stats.reuse_candidates += r->reuse_candidates_considered;
    auto id = sbon->InstallCircuit(std::move(r->circuit));
    if (id.ok()) {
      ++stats.circuits;
      sbon->RefreshIndex();
    }
  }
  stats.services = sbon->NumServices();
  stats.usage = sbon->TotalNetworkUsage() / 1000.0;
  return stats;
}

}  // namespace

int main() {
  std::printf("30 dashboard tenants over 10 shared feeds\n\n");
  std::printf("%-22s %-9s %-9s %-13s %-12s %s\n", "mode", "circuits",
              "services", "reused binds", "cands seen", "usage KB*ms/s");
  const DeployStats isolated = DeployAll(/*radius=*/0.0, /*seed=*/5);
  std::printf("%-22s %-9zu %-9zu %-13zu %-12zu %.1f\n",
              "no reuse (r = 0)", isolated.circuits, isolated.services,
              isolated.reused, isolated.reuse_candidates, isolated.usage);
  const DeployStats pruned = DeployAll(/*radius=*/25.0, /*seed=*/5);
  std::printf("%-22s %-9zu %-9zu %-13zu %-12zu %.1f\n",
              "radius pruning (r=25)", pruned.circuits, pruned.services,
              pruned.reused, pruned.reuse_candidates, pruned.usage);
  const DeployStats unbounded = DeployAll(/*radius=*/-1.0, /*seed=*/5);
  std::printf("%-22s %-9zu %-9zu %-13zu %-12zu %.1f\n",
              "unbounded reuse", unbounded.circuits, unbounded.services,
              unbounded.reused, unbounded.reuse_candidates, unbounded.usage);

  std::printf("\nradius pruning keeps %.0f%% of unbounded reuse's usage "
              "saving while examining %.0f%% of its candidates\n",
              100.0 * (isolated.usage - pruned.usage) /
                  std::max(1.0, isolated.usage - unbounded.usage),
              100.0 * pruned.reuse_candidates /
                  std::max<size_t>(1, unbounded.reuse_candidates));
  return 0;
}

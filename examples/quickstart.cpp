// Quickstart: build an overlay, register streams, optimize one continuous
// query with the integrated cost-space optimizer, deploy it, and inspect
// the resulting circuit.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <memory>

#include "core/integrated.h"
#include "net/generators.h"
#include "overlay/metrics.h"
#include "overlay/sbon.h"
#include "query/enumerate.h"

using namespace sbon;  // examples favour brevity over namespace hygiene

int main() {
  // 1. A simulated transit-stub network (the paper's evaluation substrate).
  Rng rng(7);
  net::TransitStubParams topo_params;  // defaults: ~600 nodes
  auto topo = net::GenerateTransitStub(topo_params, &rng);
  if (!topo.ok()) {
    std::fprintf(stderr, "topology: %s\n", topo.status().ToString().c_str());
    return 1;
  }
  std::printf("topology: %s\n", topo->Summary().c_str());

  // 2. The SBON runtime: latency matrix, Vivaldi coordinates, a
  //    latency+load cost space, and the Hilbert/Chord coordinate index.
  overlay::Sbon::Options options;
  options.seed = 7;
  auto sbon_or = overlay::Sbon::Create(std::move(topo.value()), options);
  if (!sbon_or.ok()) {
    std::fprintf(stderr, "sbon: %s\n", sbon_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<overlay::Sbon> sbon = std::move(sbon_or.value());

  // 3. Streams are pinned at their producers; a query joins three of them.
  const auto& nodes = sbon->overlay_nodes();
  query::Catalog catalog;
  const StreamId temps =
      catalog.AddStream("temperatures", /*tuples_per_s=*/50,
                        /*bytes_per_tuple=*/64, nodes[10]);
  const StreamId quakes =
      catalog.AddStream("seismic", 200, 128, nodes[200]);
  const StreamId alerts =
      catalog.AddStream("alert_config", 1, 256, nodes[400]);
  query::QuerySpec query = query::QuerySpec::SimpleJoin(
      {temps, quakes, alerts}, /*consumer=*/nodes[500],
      /*selectivity=*/0.002);

  // 4. Integrated optimization: every candidate plan is virtually placed
  //    and physically mapped in the cost space; cheapest circuit wins.
  core::OptimizerConfig config;
  config.enumeration.top_k = 8;
  core::IntegratedOptimizer optimizer(
      config, std::make_shared<placement::RelaxationPlacer>());
  auto result = optimizer.Optimize(query, catalog, sbon.get());
  if (!result.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("chosen plan: %s\n", result->circuit.plan().Canonical().c_str());
  std::printf("candidates considered: %zu plans, %zu placements\n",
              result->plans_considered, result->placements_evaluated);

  // 5. Deploy and measure against true network latencies.
  auto cost = overlay::ComputeCircuitCost(result->circuit, sbon->latency(),
                                          &sbon->cost_space());
  auto id = sbon->InstallCircuit(std::move(result->circuit));
  if (!id.ok() || !cost.ok()) {
    std::fprintf(stderr, "install failed\n");
    return 1;
  }
  std::printf("deployed circuit %llu:\n",
              static_cast<unsigned long long>(*id));
  std::printf("  network usage        : %.1f KB*ms/s\n",
              cost->network_usage / 1000.0);
  std::printf("  consumer latency     : %.1f ms\n",
              cost->critical_path_latency_ms);
  std::printf("  services deployed    : %zu\n", sbon->NumServices());
  for (const auto& [cid, circuit] : sbon->circuits()) {
    for (int v : circuit.UnpinnedVertices()) {
      std::printf("  service %-9s at node %u (load %.2f)\n",
                  query::OpKindName(circuit.plan().op(v).kind),
                  circuit.vertex(v).host,
                  sbon->TotalLoad(circuit.vertex(v).host));
    }
  }
  return 0;
}

// Quickstart: bring up a StreamEngine over a simulated transit-stub
// network, register streams, submit one continuous query, and inspect the
// deployed circuit. The engine owns the whole pipeline — coordinates, cost
// space, plan enumeration, placement, DHT mapping, installation — behind
// Submit().
//
//   $ ./examples/quickstart

#include <cstdio>
#include <memory>
#include <utility>

#include "engine/stream_engine.h"
#include "net/generators.h"

int main() {
  // A simulated transit-stub network (the paper's evaluation substrate),
  // and an engine whose optimization strategy is chosen by registry name
  // ("two-step" / "integrated" / "multi-query").
  sbon::Rng rng(7);
  auto topo = sbon::net::GenerateTransitStub({}, &rng);  // ~600 nodes
  if (!topo.ok()) return 1;
  sbon::engine::EngineOptions options;
  options.topology = std::move(topo.value());
  options.sbon.seed = 7;
  options.optimizer = "integrated";
  options.config.enumeration.top_k = 8;
  auto created = sbon::engine::StreamEngine::Create(std::move(options));
  if (!created.ok()) return 1;
  std::unique_ptr<sbon::engine::StreamEngine> engine =
      std::move(created.value());
  std::printf("topology: %s\n", engine->sbon().topology().Summary().c_str());

  // Streams are pinned at their producers; a query joins three of them.
  // Submit() optimizes and deploys as one atomic step.
  const auto& nodes = engine->sbon().overlay_nodes();
  const sbon::StreamId temps =
      engine->AddStream("temperatures", /*tuple_rate=*/50, /*bytes=*/64,
                        nodes[10]);
  const sbon::StreamId quakes = engine->AddStream("seismic", 200, 128,
                                                  nodes[200]);
  const sbon::StreamId alerts = engine->AddStream("alert_config", 1, 256,
                                                  nodes[400]);
  auto handle = engine->Submit(sbon::query::QuerySpec::SimpleJoin(
      {temps, quakes, alerts}, /*consumer=*/nodes[500], /*sel=*/0.002));
  if (!handle.ok()) {
    std::fprintf(stderr, "submit: %s\n", handle.status().ToString().c_str());
    return 1;
  }

  // Inspect the deployment.
  auto stats = engine->StatsOf(*handle);
  const auto* circuit = engine->sbon().FindCircuit(stats->circuit);
  std::printf("chosen plan: %s\n", circuit->plan().Canonical().c_str());
  std::printf("candidates considered: %zu plans, %zu placements\n",
              stats->plans_considered, stats->placements_evaluated);
  std::printf("deployed circuit %llu:\n",
              static_cast<unsigned long long>(stats->circuit));
  std::printf("  network usage    : %.1f KB*ms/s\n",
              stats->true_cost.network_usage / 1000.0);
  std::printf("  consumer latency : %.1f ms\n",
              stats->true_cost.critical_path_latency_ms);
  for (int v : circuit->UnpinnedVertices()) {
    std::printf("  service %-9s at node %u (load %.2f)\n",
                sbon::query::OpKindName(circuit->plan().op(v).kind),
                circuit->vertex(v).host,
                engine->sbon().TotalLoad(circuit->vertex(v).host));
  }
  return 0;
}

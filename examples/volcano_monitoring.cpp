// Volcano monitoring: the paper's motivating pinned-producer scenario
// ("live sensor readings from a volcano originate at a particular volcano;
// one cannot move mountains", Sec. 2).
//
// A stub domain at the edge of the overlay hosts seismic, infrasound and
// GPS-deformation sensor streams. Observatories on the other side of the
// network run continuous fusion queries (join + aggregate). The example
// compares the engine's "integrated" and "two-step" strategies per query —
// selected by registry name, never by constructing optimizers — showing how
// integrated optimization pushes fusion services toward the volcano when
// sensor rates dominate, and how the two-step baseline pays for planning
// blind.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "engine/stream_engine.h"
#include "net/generators.h"
#include "overlay/metrics.h"

int main() {
  sbon::Rng rng(13);
  auto topo = sbon::net::GenerateTransitStub({}, &rng);
  if (!topo.ok()) return 1;

  sbon::engine::EngineOptions options;
  options.topology = std::move(topo.value());
  options.sbon.seed = 13;
  options.optimizer = "integrated";
  options.config.enumeration.top_k = 8;
  options.refresh_index_on_install = true;
  auto created = sbon::engine::StreamEngine::Create(std::move(options));
  if (!created.ok()) return 1;
  std::unique_ptr<sbon::engine::StreamEngine> engine =
      std::move(created.value());
  sbon::overlay::Sbon& sbon = engine->sbon();

  // The "volcano" is one stub domain: pick the domain of the first overlay
  // node and pin all sensors inside it.
  const auto& nodes = sbon.overlay_nodes();
  const int volcano_domain = sbon.topology().domain(nodes[0]);
  std::vector<sbon::NodeId> volcano_nodes;
  for (sbon::NodeId n : nodes) {
    if (sbon.topology().domain(n) == volcano_domain) {
      volcano_nodes.push_back(n);
    }
  }
  // Observatories: nodes maximally far (in latency) from the volcano.
  std::vector<sbon::NodeId> observatories = nodes;
  std::sort(observatories.begin(), observatories.end(),
            [&](sbon::NodeId a, sbon::NodeId b) {
              return sbon.latency().Latency(volcano_nodes[0], a) >
                     sbon.latency().Latency(volcano_nodes[0], b);
            });
  observatories.resize(4);

  std::printf("volcano domain %d: %zu sensor hosts; farthest observatory "
              "%.0f ms away\n",
              volcano_domain, volcano_nodes.size(),
              sbon.latency().Latency(volcano_nodes[0], observatories[0]));

  const sbon::StreamId seismic = engine->AddStream(
      "seismic_waveform", /*tuple_rate=*/400, /*bytes=*/256,
      volcano_nodes[0 % volcano_nodes.size()]);
  const sbon::StreamId infrasound = engine->AddStream(
      "infrasound", 150, 128, volcano_nodes[1 % volcano_nodes.size()]);
  const sbon::StreamId gps = engine->AddStream(
      "gps_deformation", 10, 64, volcano_nodes[2 % volcano_nodes.size()]);

  // Fusion query per observatory: correlate the three streams inside a
  // short window, filter to anomalous readings, aggregate to event scores.
  auto make_query = [&](sbon::NodeId observatory) {
    sbon::query::QuerySpec q = sbon::query::QuerySpec::SimpleJoin(
        {seismic, infrasound, gps}, observatory,
        /*sel=*/5e-4, /*window_s=*/0.5);
    q.filter_sel = {0.2, 0.3, 1.0};  // onsite anomaly filters
    q.aggregate_factor = 0.05;       // event scoring shrinks the output
    return q;
  };

  std::printf("\n%-12s %-14s %-14s %-10s %s\n", "observatory",
              "2step KB*ms/s", "integr KB*ms/s", "ratio",
              "fusion services near volcano?");
  for (sbon::NodeId obs : observatories) {
    const sbon::query::QuerySpec q = make_query(obs);
    // Compare the baseline without deploying, then submit the integrated
    // circuit (Submit = optimize + install, atomically).
    sbon::engine::StrategySpec two_step;
    two_step.optimizer = "two-step";
    auto rt = engine->Optimize(q, two_step);
    if (!rt.ok()) continue;
    auto ct = sbon::overlay::ComputeCircuitCost(rt->circuit, sbon.latency(),
                                                nullptr);
    if (!ct.ok()) continue;  // only deploy queries the table will show
    auto handle = engine->Submit(q);
    if (!handle.ok()) continue;
    auto stats = engine->StatsOf(*handle);
    const sbon::overlay::Circuit* ri = sbon.FindCircuit(stats->circuit);

    // How close to the volcano did the fusion land? (mean latency of the
    // join services to the nearest sensor host)
    double near = 0.0;
    size_t joins = 0;
    for (int v : ri->UnpinnedVertices()) {
      if (ri->plan().op(v).kind != sbon::query::OpKind::kJoin) continue;
      double best = 1e300;
      for (sbon::NodeId vn : volcano_nodes) {
        best = std::min(best, sbon.latency().Latency(ri->vertex(v).host, vn));
      }
      near += best;
      ++joins;
    }
    std::printf("node %-7u %-14.1f %-14.1f %-10.2f joins avg %.0f ms from "
                "sensors\n",
                obs, ct->network_usage / 1000.0,
                stats->true_cost.network_usage / 1000.0,
                ct->network_usage /
                    std::max(1.0, stats->true_cost.network_usage),
                joins ? near / joins : 0.0);
  }

  const sbon::engine::EngineSnapshot snap = engine->Snapshot();
  std::printf("\ndeployed %zu observatory circuits over %zu service "
              "instances; total usage %.1f KB*ms/s\n",
              snap.num_queries, snap.num_services,
              snap.total_network_usage / 1000.0);
  std::printf("(heavy sensor rates + selective fusion pull the join tree "
              "into the volcano's stub domain,\n so only the thin event "
              "stream crosses the wide-area links)\n");
  return 0;
}

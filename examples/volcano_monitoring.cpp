// Volcano monitoring: the paper's motivating pinned-producer scenario
// ("live sensor readings from a volcano originate at a particular volcano;
// one cannot move mountains", Sec. 2).
//
// A stub domain at the edge of the overlay hosts seismic, infrasound and
// GPS-deformation sensor streams. Observatories on the other side of the
// network run continuous fusion queries (join + aggregate). The example
// shows how the integrated optimizer pushes fusion services toward the
// volcano when sensor rates dominate, and how the two-step baseline pays
// for planning blind.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/integrated.h"
#include "core/two_step.h"
#include "net/generators.h"
#include "overlay/metrics.h"
#include "overlay/sbon.h"

using namespace sbon;

int main() {
  Rng rng(13);
  auto topo = net::GenerateTransitStub(net::TransitStubParams{}, &rng);
  if (!topo.ok()) return 1;

  overlay::Sbon::Options options;
  options.seed = 13;
  auto sbon_or = overlay::Sbon::Create(std::move(topo.value()), options);
  if (!sbon_or.ok()) return 1;
  auto sbon = std::move(sbon_or.value());

  // The "volcano" is one stub domain: pick the domain of the first overlay
  // node and pin all sensors inside it.
  const auto& nodes = sbon->overlay_nodes();
  const int volcano_domain = sbon->topology().domain(nodes[0]);
  std::vector<NodeId> volcano_nodes;
  for (NodeId n : nodes) {
    if (sbon->topology().domain(n) == volcano_domain) {
      volcano_nodes.push_back(n);
    }
  }
  // Observatories: nodes maximally far (in latency) from the volcano.
  std::vector<NodeId> observatories = nodes;
  std::sort(observatories.begin(), observatories.end(),
            [&](NodeId a, NodeId b) {
              return sbon->latency().Latency(volcano_nodes[0], a) >
                     sbon->latency().Latency(volcano_nodes[0], b);
            });
  observatories.resize(4);

  std::printf("volcano domain %d: %zu sensor hosts; farthest observatory "
              "%.0f ms away\n",
              volcano_domain, volcano_nodes.size(),
              sbon->latency().Latency(volcano_nodes[0], observatories[0]));

  query::Catalog catalog;
  const StreamId seismic = catalog.AddStream(
      "seismic_waveform", /*tuples_per_s=*/400, /*bytes=*/256,
      volcano_nodes[0 % volcano_nodes.size()]);
  const StreamId infrasound = catalog.AddStream(
      "infrasound", 150, 128, volcano_nodes[1 % volcano_nodes.size()]);
  const StreamId gps = catalog.AddStream(
      "gps_deformation", 10, 64, volcano_nodes[2 % volcano_nodes.size()]);

  // Fusion query per observatory: correlate the three streams inside a
  // short window, filter to anomalous readings, aggregate to event scores.
  auto make_query = [&](NodeId observatory) {
    query::QuerySpec q =
        query::QuerySpec::SimpleJoin({seismic, infrasound, gps}, observatory,
                                     /*selectivity=*/5e-4,
                                     /*window_s=*/0.5);
    q.filter_sel = {0.2, 0.3, 1.0};  // onsite anomaly filters
    q.aggregate_factor = 0.05;       // event scoring shrinks the output
    return q;
  };

  core::OptimizerConfig config;
  config.enumeration.top_k = 8;
  auto placer = std::make_shared<placement::RelaxationPlacer>();
  core::IntegratedOptimizer integrated(config, placer);
  core::TwoStepOptimizer two_step(config, placer);

  std::printf("\n%-12s %-14s %-14s %-10s %s\n", "observatory",
              "2step KB*ms/s", "integr KB*ms/s", "ratio",
              "fusion services near volcano?");
  for (NodeId obs : observatories) {
    const query::QuerySpec q = make_query(obs);
    auto rt = two_step.Optimize(q, catalog, sbon.get());
    auto ri = integrated.Optimize(q, catalog, sbon.get());
    if (!rt.ok() || !ri.ok()) continue;
    auto ct = overlay::ComputeCircuitCost(rt->circuit, sbon->latency(),
                                          nullptr);
    auto ci = overlay::ComputeCircuitCost(ri->circuit, sbon->latency(),
                                          nullptr);
    if (!ct.ok() || !ci.ok()) continue;

    // How close to the volcano did the fusion land? (mean latency of the
    // join services to the nearest sensor host)
    double near = 0.0;
    size_t joins = 0;
    for (int v : ri->circuit.UnpinnedVertices()) {
      if (ri->circuit.plan().op(v).kind != query::OpKind::kJoin) continue;
      double best = 1e300;
      for (NodeId vn : volcano_nodes) {
        best = std::min(best,
                        sbon->latency().Latency(ri->circuit.vertex(v).host,
                                                vn));
      }
      near += best;
      ++joins;
    }
    std::printf("node %-7u %-14.1f %-14.1f %-10.2f joins avg %.0f ms from "
                "sensors\n",
                obs, ct->network_usage / 1000.0, ci->network_usage / 1000.0,
                ct->network_usage / std::max(1.0, ci->network_usage),
                joins ? near / joins : 0.0);

    auto id = sbon->InstallCircuit(std::move(ri->circuit));
    if (id.ok()) sbon->RefreshIndex();
  }

  std::printf("\ndeployed %zu observatory circuits over %zu service "
              "instances; total usage %.1f KB*ms/s\n",
              sbon->circuits().size(), sbon->NumServices(),
              sbon->TotalNetworkUsage() / 1000.0);
  std::printf("(heavy sensor rates + selective fusion pull the join tree "
              "into the volcano's stub domain,\n so only the thin event "
              "stream crosses the wide-area links)\n");
  return 0;
}

#include "common/coord_block.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"

namespace sbon {

void CoordBlock::Reset(size_t dims, size_t nodes) {
  dims_ = dims;
  nodes_ = nodes;
  if (stride_ < nodes || data_.size() < dims * stride_) {
    stride_ = std::max(nodes, stride_);
    data_.assign(dims_ * stride_, 0.0);
  } else {
    std::fill(data_.begin(), data_.begin() + dims_ * stride_, 0.0);
  }
}

void CoordBlock::EnsureNodes(size_t nodes) {
  if (nodes <= nodes_) return;
  if (nodes <= stride_) {
    nodes_ = nodes;
    return;  // new slots already zero: Reset/growth zero-fill the lanes
  }
  const size_t new_stride = std::max(nodes, stride_ * 2);
  std::vector<double> grown(dims_ * new_stride, 0.0);
  for (size_t d = 0; d < dims_; ++d) {
    std::copy(data_.begin() + d * stride_,
              data_.begin() + d * stride_ + nodes_,
              grown.begin() + d * new_stride);
  }
  data_ = std::move(grown);
  stride_ = new_stride;
  nodes_ = nodes;
}

namespace kernels {

void DistanceSquaredToMany(const CoordBlock& b, const double* target,
                           double* out) {
  const size_t n = b.nodes();
  const size_t dims = b.dims();
  if (n == 0) return;
  assert(dims >= 1);
  {
    const double t = target[0];
    const double* l = b.lane(0);
    SBON_SIMD_LOOP
    for (size_t j = 0; j < n; ++j) {
      const double diff = l[j] - t;
      out[j] = diff * diff;
    }
  }
  for (size_t d = 1; d < dims; ++d) {
    const double t = target[d];
    const double* l = b.lane(d);
    SBON_SIMD_LOOP
    for (size_t j = 0; j < n; ++j) {
      const double diff = l[j] - t;
      out[j] += diff * diff;
    }
  }
}

void DistanceSquaredToMany(const CoordBlock& b, const double* target,
                           const NodeId* ids, size_t count, double* out) {
  const size_t dims = b.dims();
  if (count == 0) return;
  assert(dims >= 1);
  {
    const double t = target[0];
    const double* l = b.lane(0);
    SBON_SIMD_LOOP
    for (size_t j = 0; j < count; ++j) {
      const double diff = l[ids[j]] - t;
      out[j] = diff * diff;
    }
  }
  for (size_t d = 1; d < dims; ++d) {
    const double t = target[d];
    const double* l = b.lane(d);
    SBON_SIMD_LOOP
    for (size_t j = 0; j < count; ++j) {
      const double diff = l[ids[j]] - t;
      out[j] += diff * diff;
    }
  }
}

void DisplacementSquared(const CoordBlock& a, size_t a_begin,
                         const CoordBlock& b, const NodeId* ids, size_t count,
                         double* out) {
  const size_t dims = a.dims();
  assert(dims == b.dims());
  if (count == 0) return;
  assert(dims >= 1);
  {
    const double* la = a.lane(0) + a_begin;
    const double* lb = b.lane(0);
    SBON_SIMD_LOOP
    for (size_t j = 0; j < count; ++j) {
      const double diff = la[j] - lb[ids[j]];
      out[j] = diff * diff;
    }
  }
  for (size_t d = 1; d < dims; ++d) {
    const double* la = a.lane(d) + a_begin;
    const double* lb = b.lane(d);
    SBON_SIMD_LOOP
    for (size_t j = 0; j < count; ++j) {
      const double diff = la[j] - lb[ids[j]];
      out[j] += diff * diff;
    }
  }
}

void SqrtMany(double* v, size_t count) {
  SBON_SIMD_LOOP
  for (size_t j = 0; j < count; ++j) v[j] = std::sqrt(v[j]);
}

double DistanceSquaredAt(const CoordBlock& b, size_t node,
                         const double* target) {
  const double* base = b.lane(0) + node;
  const size_t stride = b.stride();
  const size_t dims = b.dims();
  double s = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    const double diff = base[d * stride] - target[d];
    s += diff * diff;
  }
  return s;
}

}  // namespace kernels

}  // namespace sbon

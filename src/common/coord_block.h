#ifndef SBON_COMMON_COORD_BLOCK_H_
#define SBON_COMMON_COORD_BLOCK_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/vec.h"

namespace sbon {

/// Structure-of-arrays coordinate store: one contiguous row-major `double`
/// block of `dims` per-dimension lanes, each lane holding one value per
/// node. Lane `d` is unit-stride over node index, so batched sweeps
/// (distance to a target over every candidate, displacement scans between
/// two blocks) vectorize across candidates while keeping each candidate's
/// accumulation order identical to the scalar per-`Vec` code — which is
/// what keeps fixed-seed results bit-identical across the layout change.
///
/// `Vec` remains the value type at API edges: `NodeVec`/`SetNode` convert
/// between the lane layout and a dense per-node vector.
class CoordBlock {
 public:
  CoordBlock() = default;
  CoordBlock(size_t dims, size_t nodes) { Reset(dims, nodes); }

  /// Re-shapes to `dims x nodes`, zero-filling every value. Keeps the
  /// existing heap allocation when it is large enough.
  void Reset(size_t dims, size_t nodes);

  /// Grows the node count (zero-filling new slots, preserving existing
  /// ones). Capacity grows geometrically, so incremental one-node growth —
  /// the index publish path — stays amortized O(dims) per call.
  void EnsureNodes(size_t nodes);

  size_t dims() const { return dims_; }
  size_t nodes() const { return nodes_; }
  /// Distance (in doubles) between consecutive lanes; >= nodes().
  size_t stride() const { return stride_; }

  double* lane(size_t d) {
    assert(d < dims_);
    return data_.data() + d * stride_;
  }
  const double* lane(size_t d) const {
    assert(d < dims_);
    return data_.data() + d * stride_;
  }

  double At(size_t d, size_t node) const {
    assert(d < dims_ && node < nodes_);
    return data_[d * stride_ + node];
  }
  double& At(size_t d, size_t node) {
    assert(d < dims_ && node < nodes_);
    return data_[d * stride_ + node];
  }

  /// Writes one node's coordinate from a dense vector (dims must match).
  void SetNode(size_t node, const Vec& v) {
    assert(v.dims() == dims_);
    SetNode(node, v.data());
  }
  /// Writes one node's coordinate from `dims()` contiguous doubles.
  void SetNode(size_t node, const double* v) {
    assert(node < nodes_);
    for (size_t d = 0; d < dims_; ++d) data_[d * stride_ + node] = v[d];
  }
  void ZeroNode(size_t node) {
    assert(node < nodes_);
    for (size_t d = 0; d < dims_; ++d) data_[d * stride_ + node] = 0.0;
  }

  /// Materializes one node's coordinate as a dense `Vec` (a copy).
  Vec NodeVec(size_t node) const {
    assert(node < nodes_);
    Vec v(dims_);
    double* out = v.data();
    for (size_t d = 0; d < dims_; ++d) out[d] = data_[d * stride_ + node];
    return v;
  }
  /// Copies one node's coordinate into `dims()` contiguous doubles.
  void NodeTo(size_t node, double* out) const {
    assert(node < nodes_);
    for (size_t d = 0; d < dims_; ++d) out[d] = data_[d * stride_ + node];
  }

 private:
  size_t dims_ = 0;
  size_t nodes_ = 0;
  size_t stride_ = 0;
  std::vector<double> data_;  // dims_ lanes of stride_ doubles each
};

namespace kernels {

/// out[j] = squared distance from node j's coordinate in `b` to `target`
/// (`target` has b.dims() contiguous doubles), for every j in [0, b.nodes()).
/// Per element the accumulation runs dims-ascending, exactly like
/// `Vec::DistanceSquaredTo`.
void DistanceSquaredToMany(const CoordBlock& b, const double* target,
                           double* out);

/// Gather form: out[j] = squared distance from node ids[j] to `target`.
void DistanceSquaredToMany(const CoordBlock& b, const double* target,
                           const NodeId* ids, size_t count, double* out);

/// out[j] = squared distance between node (a_begin + j) of `a` and node
/// ids[j] of `b` — the refresh displacement scan (`a` is positional scratch,
/// `b` is addressed by node id). Blocks must have equal dims.
void DisplacementSquared(const CoordBlock& a, size_t a_begin,
                         const CoordBlock& b, const NodeId* ids, size_t count,
                         double* out);

/// v[j] = sqrt(v[j]) for j in [0, count).
void SqrtMany(double* v, size_t count);

/// Squared distance from one node of `b` to `target` — the single-pair form
/// with the same dims-ascending accumulation order as the batched sweeps.
double DistanceSquaredAt(const CoordBlock& b, size_t node,
                         const double* target);

}  // namespace kernels

}  // namespace sbon

#endif  // SBON_COMMON_COORD_BLOCK_H_

#ifndef SBON_COMMON_IDS_H_
#define SBON_COMMON_IDS_H_

#include <cstdint>
#include <limits>

namespace sbon {

/// Index of a physical node in a `Topology` / `Sbon`.
using NodeId = uint32_t;
/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Identifier of a deployed service instance in an `Sbon`.
using ServiceInstanceId = uint64_t;
/// Identifier of a deployed circuit (instantiated query) in an `Sbon`.
using CircuitId = uint64_t;
/// Identifier of a stream in the catalog.
using StreamId = uint32_t;

inline constexpr ServiceInstanceId kInvalidService =
    std::numeric_limits<ServiceInstanceId>::max();
inline constexpr CircuitId kInvalidCircuit =
    std::numeric_limits<CircuitId>::max();

}  // namespace sbon

#endif  // SBON_COMMON_IDS_H_

#include "common/kernel_stats.h"

namespace sbon {

const char* KernelName(Kernel k) {
  switch (k) {
    case Kernel::kVivaldiUpdate:
      return "vivaldi_update";
    case Kernel::kKNearestScan:
      return "knearest_scan";
    case Kernel::kCostEval:
      return "cost_eval";
  }
  return "unknown";
}

KernelStatsSnapshot KernelStatsSnapshot::Since(
    const KernelStatsSnapshot& base) const {
  KernelStatsSnapshot out;
  for (size_t i = 0; i < kNumKernels; ++i) {
    out.kernel[i].calls = kernel[i].calls - base.kernel[i].calls;
    out.kernel[i].ops = kernel[i].ops - base.kernel[i].ops;
    out.kernel[i].ns = kernel[i].ns - base.kernel[i].ns;
    out.kernel[i].allocs = kernel[i].allocs - base.kernel[i].allocs;
  }
  return out;
}

KernelStats& KernelStats::Instance() {
  static KernelStats stats;
  return stats;
}

KernelStatsSnapshot KernelStats::Snapshot() const {
  KernelStatsSnapshot out;
  for (size_t i = 0; i < kNumKernels; ++i) {
    out.kernel[i].calls = counters_[i].calls.load(std::memory_order_relaxed);
    out.kernel[i].ops = counters_[i].ops.load(std::memory_order_relaxed);
    out.kernel[i].ns = counters_[i].ns.load(std::memory_order_relaxed);
    out.kernel[i].allocs = counters_[i].allocs.load(std::memory_order_relaxed);
  }
  return out;
}

void KernelStats::Reset() {
  for (size_t i = 0; i < kNumKernels; ++i) {
    counters_[i].calls.store(0, std::memory_order_relaxed);
    counters_[i].ops.store(0, std::memory_order_relaxed);
    counters_[i].ns.store(0, std::memory_order_relaxed);
    counters_[i].allocs.store(0, std::memory_order_relaxed);
  }
}

}  // namespace sbon

#ifndef SBON_COMMON_KERNEL_STATS_H_
#define SBON_COMMON_KERNEL_STATS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace sbon {

/// The three hot coordinate kernels with dedicated ns/op + calls counters.
enum class Kernel : int {
  kVivaldiUpdate = 0,  ///< spring updates applied by the coords stage
  kKNearestScan = 1,   ///< index distance scans (probed, exact, radius)
  kCostEval = 2,       ///< batched cost-space evaluations (refresh
                       ///< displacement scan, candidate-set distances)
};
inline constexpr size_t kNumKernels = 3;

const char* KernelName(Kernel k);

/// One kernel's cumulative counters at a point in time.
struct KernelCounters {
  uint64_t calls = 0;   ///< batched kernel invocations
  uint64_t ops = 0;     ///< elements processed (updates, candidates, nodes)
  uint64_t ns = 0;      ///< wall nanoseconds inside the kernel
  uint64_t allocs = 0;  ///< heap allocations observed inside the kernel
                        ///< (only meaningful when an alloc counter is
                        ///< registered; see set_alloc_counter)
};

struct KernelStatsSnapshot {
  std::array<KernelCounters, kNumKernels> kernel;

  const KernelCounters& operator[](Kernel k) const {
    return kernel[static_cast<size_t>(k)];
  }
  /// this - base, per counter — the usual way to attribute a measured loop.
  KernelStatsSnapshot Since(const KernelStatsSnapshot& base) const;
};

/// Process-wide cumulative counters for the hot coordinate kernels. The
/// kernels record at *batch* granularity (one Record per batched call, not
/// per element), so the bookkeeping cost is two clock reads per batch and
/// a handful of relaxed atomic adds — negligible against the batches they
/// measure. Consumers (the epoch pipeline's stage trace, `perf_epoch`'s
/// `kernels` JSON section) read snapshots and diff them around the work
/// they want to attribute.
class KernelStats {
 public:
  static KernelStats& Instance();

  void Record(Kernel k, uint64_t ops, uint64_t ns, uint64_t allocs = 0) {
    auto& c = counters_[static_cast<size_t>(k)];
    c.calls.fetch_add(1, std::memory_order_relaxed);
    c.ops.fetch_add(ops, std::memory_order_relaxed);
    c.ns.fetch_add(ns, std::memory_order_relaxed);
    if (allocs != 0) c.allocs.fetch_add(allocs, std::memory_order_relaxed);
  }

  KernelStatsSnapshot Snapshot() const;
  void Reset();

  /// Registers a heap-allocation counter (e.g. a bench harness's counting
  /// `operator new` tally). When set, `KernelTimer` attributes the counter's
  /// delta across each timed kernel call — how `perf_epoch` proves the hot
  /// kernels allocation-free. Pass nullptr to detach. The counter must
  /// outlive its registration and is read without synchronization, so only
  /// single-threaded harness sections should register one.
  void set_alloc_counter(const uint64_t* counter) {
    alloc_counter_.store(counter, std::memory_order_relaxed);
  }
  const uint64_t* alloc_counter() const {
    return alloc_counter_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> ns{0};
    std::atomic<uint64_t> allocs{0};
  };
  std::array<Cell, kNumKernels> counters_;
  std::atomic<const uint64_t*> alloc_counter_{nullptr};
};

/// RAII batch recorder: times its scope and records (1 call, `ops`
/// elements, elapsed ns, alloc delta) into the global stats on destruction.
class KernelTimer {
 public:
  KernelTimer(Kernel k, uint64_t ops)
      : kernel_(k), ops_(ops), start_(std::chrono::steady_clock::now()) {
    const uint64_t* ac = KernelStats::Instance().alloc_counter();
    alloc_start_ = ac != nullptr ? *ac : 0;
  }
  ~KernelTimer() {
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    const uint64_t* ac = KernelStats::Instance().alloc_counter();
    const uint64_t allocs = ac != nullptr ? *ac - alloc_start_ : 0;
    KernelStats::Instance().Record(kernel_, ops_, ns, allocs);
  }

  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

  /// For kernels whose element count is only known at the end of the scope
  /// (adaptive walks).
  void set_ops(uint64_t ops) { ops_ = ops; }

 private:
  Kernel kernel_;
  uint64_t ops_;
  std::chrono::steady_clock::time_point start_;
  uint64_t alloc_start_ = 0;
};

}  // namespace sbon

#endif  // SBON_COMMON_KERNEL_STATS_H_

#include "common/parallel.h"

namespace sbon {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::DrainShards() {
  // Shards are claimed under the lock; the (caller-supplied) work runs
  // outside it. Claim order is first-come, but shard *results* may not
  // depend on claim order (ThreadPool contract), so this dynamic schedule
  // stays deterministic in outcome while balancing uneven shard costs.
  std::size_t done = 0;
  for (;;) {
    std::size_t shard;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_shard_ >= job_shards_) return done;
      shard = next_shard_++;
    }
    (*job_)(shard);
    ++done;
  }
}

void ThreadPool::WorkerLoop() {
  std::size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation &&
                         next_shard_ < job_shards_);
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    const std::size_t done = DrainShards();
    if (done > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      remaining_ -= done;
      if (remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::Run(std::size_t shards,
                     const std::function<void(std::size_t)>& fn) {
  if (shards == 0) return;
  if (workers_.empty() || shards == 1) {
    for (std::size_t s = 0; s < shards; ++s) fn(s);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_shards_ = shards;
    next_shard_ = 0;
    remaining_ = shards;
    ++generation_;
  }
  work_cv_.notify_all();
  const std::size_t done = DrainShards();
  {
    std::unique_lock<std::mutex> lock(mu_);
    remaining_ -= done;
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
    job_shards_ = 0;
  }
}

}  // namespace sbon

#ifndef SBON_COMMON_PARALLEL_H_
#define SBON_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sbon {

/// A small persistent worker pool for the epoch pipeline's embarrassingly
/// parallel stages (latency-jitter rows, per-node Vivaldi updates, the
/// refresh dirty scan).
///
/// Determinism contract: the pool only *schedules* work — callers must
/// partition it so that the value computed for each shard depends solely on
/// the shard index (never on which thread ran it or in which order shards
/// finished). Under that contract, results are bit-identical at any thread
/// count, including 1. `ParallelSlices` below produces such a partition.
///
/// Workers persist across Run calls (a per-epoch pool spawn would cost more
/// than the stages it accelerates), parked on a condition variable between
/// jobs. The calling thread always participates, so `ThreadPool(1)` spawns
/// no workers and degenerates to a plain serial loop.
class ThreadPool {
 public:
  /// `threads` is the total degree of parallelism including the caller;
  /// `threads - 1` workers are spawned (0 for threads <= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const { return workers_.size() + 1; }

  /// Runs `fn(shard)` for every shard in [0, shards), blocking until all
  /// complete. Shards are claimed dynamically (which thread runs which shard
  /// is unspecified); `fn` must not throw and must write only shard-local
  /// state. Reentrant Run from inside `fn` is not supported.
  void Run(std::size_t shards, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims and runs shards of the current job until none remain; returns
  /// the number of shards this thread completed.
  std::size_t DrainShards();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for a new job
  std::condition_variable done_cv_;  ///< caller waits for completion
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_shards_ = 0;
  std::size_t next_shard_ = 0;  ///< next unclaimed shard of the job
  std::size_t remaining_ = 0;   ///< shards not yet finished
  std::size_t generation_ = 0;  ///< bumps per job so workers cannot re-enter
  bool stop_ = false;
};

/// Partitions [0, n) into `pool->threads()` contiguous slices and runs
/// `fn(begin, end)` for each — the deterministic static sharding used by
/// every parallel pipeline stage. Slice boundaries depend only on `n` and
/// the thread count; since per-element results must not depend on the
/// slicing (see the ThreadPool contract), output is bit-identical whether
/// `pool` is null (one serial slice), has one thread, or has many.
///
/// Templated on the callable so the serial path (null/single-thread pool —
/// every default epoch) invokes `fn` directly with zero heap allocations;
/// only a genuinely multi-threaded dispatch pays the std::function wrap.
template <typename Fn>
void ParallelSlices(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const std::size_t slices =
      pool == nullptr ? 1 : (pool->threads() < n ? pool->threads() : n);
  if (slices <= 1) {
    fn(std::size_t{0}, n);
    return;
  }
  pool->Run(slices, [&](std::size_t s) {
    // Same boundaries for every thread count query: slice s covers
    // [n*s/slices, n*(s+1)/slices).
    fn(n * s / slices, n * (s + 1) / slices);
  });
}

}  // namespace sbon

#endif  // SBON_COMMON_PARALLEL_H_

#include "common/quantile.h"

#include <algorithm>
#include <cmath>

namespace sbon {

P2Quantile::P2Quantile(double q) : q_(q) {
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
    }
    return;
  }
  ++count_;

  // Cell k: markers strictly above x shift up one rank.
  size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Nudge the three interior markers toward their desired ranks: parabolic
  // (piecewise-quadratic) interpolation when it keeps the heights ordered,
  // linear otherwise — straight from the paper's Box 1.
  for (size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double dp = positions_[i + 1] - positions_[i];
    const double dm = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && dp > 1.0) || (d <= -1.0 && dm < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      const double hp = (heights_[i + 1] - heights_[i]) / dp;
      const double hm = (heights_[i - 1] - heights_[i]) / dm;
      const double parabolic =
          heights_[i] +
          sign / (dp - dm) * ((sign - dm) * hp + (dp - sign) * hm);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        heights_[i] += sign * (sign > 0.0 ? hp : -hm);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ >= 5) return heights_[2];
  // Exact small-sample order statistic (nearest-rank over the sorted
  // prefix), so early estimates are never garbage.
  std::array<double, 5> sorted = heights_;
  std::sort(sorted.begin(), sorted.begin() + count_);
  const double rank = q_ * static_cast<double>(count_ - 1);
  const size_t idx = static_cast<size_t>(std::llround(rank));
  return sorted[std::min(idx, count_ - 1)];
}

void LatencyDigest::Add(double x) {
  ++count_;
  sum_ += x;
  max_ = std::max(max_, x);
  p50_.Add(x);
  p95_.Add(x);
  p99_.Add(x);
}

void LatencyDigest::AddRepeated(double x, size_t n) {
  for (size_t i = 0; i < n; ++i) Add(x);
}

}  // namespace sbon

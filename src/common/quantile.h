#ifndef SBON_COMMON_QUANTILE_H_
#define SBON_COMMON_QUANTILE_H_

#include <array>
#include <cstddef>

namespace sbon {

/// Streaming quantile estimate via the P² algorithm (Jain & Chlamtac,
/// CACM 1985): five markers tracking {min, q/2, q, (1+q)/2, max} positions,
/// nudged toward their desired ranks with parabolic interpolation after
/// every observation. O(1) memory whatever the stream length — the
/// open-loop workload soak feeds millions of latencies through these
/// without a sample buffer (unlike Summary, which stores every sample).
///
/// Exact for the first five observations; afterwards an estimate whose
/// error shrinks with the stream (a few percent at thousands of samples
/// for smooth distributions). Deterministic: the estimate is a pure
/// function of the observation sequence.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.5 / 0.95 / 0.99.
  explicit P2Quantile(double q);

  void Add(double x);
  /// Current estimate (exact order statistic until five observations;
  /// 0 when empty).
  double Value() const;
  size_t count() const { return count_; }

 private:
  double q_;
  size_t count_ = 0;
  std::array<double, 5> heights_{};     // marker values, ascending
  std::array<double, 5> positions_{};   // actual marker ranks (1-based)
  std::array<double, 5> desired_{};     // target ranks
  std::array<double, 5> increments_{};  // target-rank growth per sample
};

/// Fixed p50/p95/p99 digest plus the cheap exact aggregates, bundled the
/// way every latency column in BENCH_workload.json wants them.
class LatencyDigest {
 public:
  LatencyDigest() : p50_(0.50), p95_(0.95), p99_(0.99) {}

  void Add(double x);
  /// Folds `n` observations of the same value in (a batch's amortized
  /// per-item latency).
  void AddRepeated(double x, size_t n);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double max() const { return max_; }
  double p50() const { return p50_.Value(); }
  double p95() const { return p95_.Value(); }
  double p99() const { return p99_.Value(); }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_, p95_, p99_;
};

}  // namespace sbon

#endif  // SBON_COMMON_QUANTILE_H_

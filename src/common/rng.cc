#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace sbon {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm would avoid the O(n) init, but n is small everywhere
  // this is used; keep the simple reservoir-free version.
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  Shuffle(&all);
  all.resize(k);
  return all;
}

}  // namespace sbon

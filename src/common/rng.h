#ifndef SBON_COMMON_RNG_H_
#define SBON_COMMON_RNG_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace sbon {

/// Deterministic pseudo-random number generator (xoshiro256** core seeded via
/// SplitMix64). All stochastic components of the library draw from an `Rng`
/// so that every simulation is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5bd1e995u) { Seed(seed); }

  /// Re-seeds the generator. Identical seeds give identical streams.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box-Muller with caching).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential variate with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Pareto variate with scale xm > 0 and shape alpha > 0 (heavy tail used
  /// for skewed stream rates).
  double Pareto(double xm, double alpha);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sbon

#endif  // SBON_COMMON_RNG_H_

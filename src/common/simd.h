#ifndef SBON_COMMON_SIMD_H_
#define SBON_COMMON_SIMD_H_

/// Portable vectorization gate for the coordinate kernels.
///
/// When the build enables SIMD (CMake option `SBON_SIMD`, on by default),
/// `SBON_SIMD_LOOP` expands to `#pragma omp simd` and the compiler is given
/// `-fopenmp-simd`, which honors the pragma without pulling in any OpenMP
/// runtime. With `SBON_SIMD=OFF` the macro expands to nothing and every
/// kernel runs as the plain scalar loop.
///
/// The kernels only ever apply the pragma to loops whose iterations are
/// independent per output element (vectorize *across candidates*, never
/// across the dims of one accumulation), so both paths execute the exact
/// same IEEE operation sequence per element and results are bit-identical
/// — `tests/simd_equivalence_test.cc` and the CI scalar-fallback lane pin
/// that property.
#if defined(SBON_SIMD_ENABLED)
#define SBON_SIMD_LOOP _Pragma("omp simd")
#else
#define SBON_SIMD_LOOP
#endif

#endif  // SBON_COMMON_SIMD_H_

#ifndef SBON_COMMON_STATUS_H_
#define SBON_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sbon {

/// Error categories used throughout the library. Follows the RocksDB/Arrow
/// convention of status-based error handling; the library never throws.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
};

/// A lightweight status object carrying an error code and a message.
///
/// Functions that can fail return `Status` (or `StatusOr<T>` when they also
/// produce a value). The `kOk` singleton is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad radius".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value of a
/// non-OK result is a programming error (checked by assert in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value; mirrors absl::StatusOr ergonomics.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status (must not be OK).
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sbon

#endif  // SBON_COMMON_STATUS_H_

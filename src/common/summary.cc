#include "common/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sbon {

void Summary::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Summary::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double Summary::Sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double Summary::Mean() const {
  if (samples_.empty()) return 0.0;
  return Sum() / static_cast<double>(samples_.size());
}

double Summary::Min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = Mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double Summary::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::string Summary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4g p50=%.4g p95=%.4g max=%.4g", count(), Mean(),
                Percentile(50), Percentile(95), Max());
  return buf;
}

}  // namespace sbon

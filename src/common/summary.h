#ifndef SBON_COMMON_SUMMARY_H_
#define SBON_COMMON_SUMMARY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace sbon {

/// Accumulates samples and reports order statistics. Used by every benchmark
/// harness to summarize per-seed measurements.
class Summary {
 public:
  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Sample standard deviation (n-1 denominator); 0 for < 2 samples.
  double Stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// "mean=… p50=… p95=… max=…" rendering for log lines.
  std::string ToString() const;

 private:
  // Sorted lazily by Percentile.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace sbon

#endif  // SBON_COMMON_SUMMARY_H_

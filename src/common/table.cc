#include "common/table.h"

#include <cassert>
#include <cstdio>

namespace sbon {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::Num(double x) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", x);
  return buf;
}

std::string TableWriter::Fixed(double x, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, x);
  return buf;
}

std::string TableWriter::Render() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += (c == 0) ? "| " : " | ";
      line += row[c];
      line.append(width[c] - row[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    rule.append(width[c] + 2, '-');
    rule += "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace sbon

#ifndef SBON_COMMON_TABLE_H_
#define SBON_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace sbon {

/// Minimal ASCII table writer used by the benchmark harnesses to print
/// paper-style result rows.
///
/// Usage:
///   TableWriter t({"nodes", "two-step", "integrated", "ratio"});
///   t.AddRow({"100", "12.3", "9.1", "1.35x"});
///   std::cout << t.Render();
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with %.4g.
  static std::string Num(double x);
  /// Formats with fixed decimals.
  static std::string Fixed(double x, int decimals);

  /// Renders the table with column alignment and a separator rule.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sbon

#endif  // SBON_COMMON_TABLE_H_

#include "common/vec.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace sbon {

Vec& Vec::operator+=(const Vec& o) {
  assert(dims() == o.dims());
  for (size_t i = 0; i < v_.size(); ++i) v_[i] += o.v_[i];
  return *this;
}

Vec& Vec::operator-=(const Vec& o) {
  assert(dims() == o.dims());
  for (size_t i = 0; i < v_.size(); ++i) v_[i] -= o.v_[i];
  return *this;
}

Vec& Vec::operator*=(double s) {
  for (double& x : v_) x *= s;
  return *this;
}

Vec& Vec::operator/=(double s) {
  assert(s != 0.0);
  for (double& x : v_) x /= s;
  return *this;
}

double Vec::Norm() const { return std::sqrt(NormSquared()); }

double Vec::NormSquared() const {
  double s = 0.0;
  for (double x : v_) s += x * x;
  return s;
}

double Vec::Dot(const Vec& o) const {
  assert(dims() == o.dims());
  double s = 0.0;
  for (size_t i = 0; i < v_.size(); ++i) s += v_[i] * o.v_[i];
  return s;
}

double Vec::DistanceTo(const Vec& o) const {
  assert(dims() == o.dims());
  double s = 0.0;
  for (size_t i = 0; i < v_.size(); ++i) {
    const double d = v_[i] - o.v_[i];
    s += d * d;
  }
  return std::sqrt(s);
}

Vec Vec::Unit(uint64_t tiebreak) const {
  const double n = Norm();
  if (n > 1e-12) {
    Vec out = *this;
    out /= n;
    return out;
  }
  // Deterministic pseudo-random direction for coincident points.
  Vec out(dims());
  uint64_t h = tiebreak * 0x9e3779b97f4a7c15ULL + 0x1234567ULL;
  double norm2 = 0.0;
  for (size_t i = 0; i < out.dims(); ++i) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    const double x =
        static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5;  // [-0.5, 0.5)
    out[i] = x;
    norm2 += x * x;
  }
  if (norm2 < 1e-24 && out.dims() > 0) out[0] = 1.0;
  const double n2 = out.Norm();
  if (n2 > 0.0) out /= n2;
  return out;
}

std::string Vec::ToString() const {
  std::string s = "(";
  char buf[32];
  for (size_t i = 0; i < v_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.4g", v_[i]);
    if (i) s += ", ";
    s += buf;
  }
  s += ")";
  return s;
}

}  // namespace sbon

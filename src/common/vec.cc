#include "common/vec.h"

#include <algorithm>
#include <cstdio>

namespace sbon {

void Vec::Grow(size_t min_capacity) {
  const size_t cap = std::max(min_capacity, Capacity() * 2);
  auto grown = std::make_unique<double[]>(cap);
  const double* src = data();
  for (size_t i = 0; i < size_; ++i) grown[i] = src[i];
  heap_ = std::move(grown);
  heap_cap_ = cap;
}

Vec Vec::Unit(uint64_t tiebreak) const {
  const double n = Norm();
  if (n > 1e-12) {
    Vec out = *this;
    out /= n;
    return out;
  }
  // Deterministic pseudo-random direction for coincident points.
  Vec out(dims());
  uint64_t h = tiebreak * 0x9e3779b97f4a7c15ULL + 0x1234567ULL;
  double norm2 = 0.0;
  for (size_t i = 0; i < out.dims(); ++i) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    const double x =
        static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5;  // [-0.5, 0.5)
    out[i] = x;
    norm2 += x * x;
  }
  if (norm2 < 1e-24 && out.dims() > 0) out[0] = 1.0;
  const double n2 = out.Norm();
  if (n2 > 0.0) out /= n2;
  return out;
}

std::string Vec::ToString() const {
  std::string s = "(";
  char buf[32];
  const double* a = data();
  for (size_t i = 0; i < size_; ++i) {
    std::snprintf(buf, sizeof(buf), "%.4g", a[i]);
    if (i) s += ", ";
    s += buf;
  }
  s += ")";
  return s;
}

}  // namespace sbon

#ifndef SBON_COMMON_VEC_H_
#define SBON_COMMON_VEC_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>

namespace sbon {

/// A small dense vector of doubles used for cost-space coordinates.
///
/// Coordinates in this library are low-dimensional (2-8 dims: a handful of
/// vector dims plus a few weighted scalars), and Vec arithmetic sits in the
/// innermost loops of Vivaldi spring updates, relaxation sweeps, and index
/// queries. Storage is therefore inline up to `kInlineDims` components —
/// construction, copies, and every arithmetic operator are heap-free for
/// all coordinates this library produces. Larger vectors (exotic cost-space
/// configurations) transparently spill to a heap buffer.
///
/// Arithmetic preserves the exact per-component operation order of the
/// original out-of-line implementation, so fixed-seed results are
/// bit-identical across the refactor.
class Vec {
 public:
  /// Components stored inline; covers every cost space the library builds.
  static constexpr size_t kInlineDims = 8;

  Vec() = default;
  explicit Vec(size_t dims, double fill = 0.0) {
    Resize(dims);
    double* p = data();
    for (size_t i = 0; i < dims; ++i) p[i] = fill;
  }
  Vec(std::initializer_list<double> init) {
    Resize(init.size());
    double* p = data();
    size_t i = 0;
    for (double x : init) p[i++] = x;
  }
  /// Builds from `dims` contiguous doubles — the API-edge conversion from a
  /// structure-of-arrays lane copy (`CoordBlock::NodeTo`) back to a value.
  Vec(const double* src, size_t dims) { AssignFrom(src, dims); }

  /// Replaces contents with `dims` contiguous doubles.
  void AssignFrom(const double* src, size_t dims) {
    Resize(dims);
    double* p = data();
    for (size_t i = 0; i < dims; ++i) p[i] = src[i];
  }

  Vec(const Vec& o) { CopyFrom(o); }
  Vec& operator=(const Vec& o) {
    if (this != &o) CopyFrom(o);
    return *this;
  }
  Vec(Vec&& o) noexcept { MoveFrom(std::move(o)); }
  Vec& operator=(Vec&& o) noexcept {
    if (this != &o) MoveFrom(std::move(o));
    return *this;
  }

  size_t dims() const { return size_; }
  bool empty() const { return size_ == 0; }

  double& operator[](size_t i) { return data()[i]; }
  double operator[](size_t i) const { return data()[i]; }

  double* data() { return heap_ ? heap_.get() : inline_; }
  const double* data() const { return heap_ ? heap_.get() : inline_; }

  Vec& operator+=(const Vec& o) {
    assert(dims() == o.dims());
    double* a = data();
    const double* b = o.data();
    for (size_t i = 0; i < size_; ++i) a[i] += b[i];
    return *this;
  }
  Vec& operator-=(const Vec& o) {
    assert(dims() == o.dims());
    double* a = data();
    const double* b = o.data();
    for (size_t i = 0; i < size_; ++i) a[i] -= b[i];
    return *this;
  }
  Vec& operator*=(double s) {
    double* a = data();
    for (size_t i = 0; i < size_; ++i) a[i] *= s;
    return *this;
  }
  Vec& operator/=(double s) {
    assert(s != 0.0);
    double* a = data();
    for (size_t i = 0; i < size_; ++i) a[i] /= s;
    return *this;
  }

  /// Fused `*this += o * s` without materializing the scaled temporary.
  /// Each product is rounded before the add, matching `v += o * s` built
  /// from the binary operators.
  Vec& AddScaled(const Vec& o, double s) {
    assert(dims() == o.dims());
    double* a = data();
    const double* b = o.data();
    for (size_t i = 0; i < size_; ++i) a[i] += b[i] * s;
    return *this;
  }

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(Vec a, double s) { return a *= s; }
  friend Vec operator*(double s, Vec a) { return a *= s; }
  friend Vec operator/(Vec a, double s) { return a /= s; }

  friend bool operator==(const Vec& a, const Vec& b) {
    if (a.size_ != b.size_) return false;
    const double* pa = a.data();
    const double* pb = b.data();
    for (size_t i = 0; i < a.size_; ++i) {
      if (pa[i] != pb[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Vec& a, const Vec& b) { return !(a == b); }

  /// Euclidean norm.
  double Norm() const { return std::sqrt(NormSquared()); }
  /// Squared Euclidean norm.
  double NormSquared() const {
    const double* a = data();
    double s = 0.0;
    for (size_t i = 0; i < size_; ++i) s += a[i] * a[i];
    return s;
  }
  /// Dot product; both vectors must have equal dims.
  double Dot(const Vec& o) const {
    assert(dims() == o.dims());
    const double* a = data();
    const double* b = o.data();
    double s = 0.0;
    for (size_t i = 0; i < size_; ++i) s += a[i] * b[i];
    return s;
  }
  /// Squared Euclidean distance to `o` — the comparison form; skips the
  /// sqrt that DistanceTo pays.
  double DistanceSquaredTo(const Vec& o) const {
    assert(dims() == o.dims());
    const double* a = data();
    const double* b = o.data();
    double s = 0.0;
    for (size_t i = 0; i < size_; ++i) {
      const double d = a[i] - b[i];
      s += d * d;
    }
    return s;
  }
  /// Euclidean distance to `o`.
  double DistanceTo(const Vec& o) const {
    return std::sqrt(DistanceSquaredTo(o));
  }

  /// Returns this vector scaled to unit length; the zero vector maps to a
  /// deterministic pseudo-random unit direction derived from `tiebreak` so
  /// that force computations never stall at coincident points.
  Vec Unit(uint64_t tiebreak = 0) const;

  /// Appends a component.
  void Append(double x) {
    if (size_ == Capacity()) Grow(size_ + 1);
    data()[size_++] = x;
  }

  /// "(x, y, z)" rendering with 4 significant digits.
  std::string ToString() const;

 private:
  size_t Capacity() const { return heap_ ? heap_cap_ : kInlineDims; }
  void Resize(size_t dims) {
    if (dims > Capacity()) Grow(dims);
    size_ = dims;
  }
  void CopyFrom(const Vec& o) {
    Resize(o.size_);
    double* d = data();
    const double* s = o.data();
    for (size_t i = 0; i < size_; ++i) d[i] = s[i];
  }
  void MoveFrom(Vec&& o) {
    if (o.heap_) {
      heap_ = std::move(o.heap_);
      heap_cap_ = o.heap_cap_;
      size_ = o.size_;
      o.heap_cap_ = 0;
      o.size_ = 0;
    } else {
      CopyFrom(o);
    }
  }
  // Cold path: reallocates onto the heap preserving current contents.
  void Grow(size_t min_capacity);

  size_t size_ = 0;
  size_t heap_cap_ = 0;  // meaningful only when heap_ is set
  double inline_[kInlineDims];
  std::unique_ptr<double[]> heap_;
};

}  // namespace sbon

#endif  // SBON_COMMON_VEC_H_

#ifndef SBON_COMMON_VEC_H_
#define SBON_COMMON_VEC_H_

#include <cstddef>
#include <string>
#include <vector>

namespace sbon {

/// A small dense vector of doubles used for cost-space coordinates.
///
/// Coordinates in this library are low-dimensional (2-6 dims), so a
/// std::vector-backed value type with out-of-line arithmetic is plenty fast
/// and keeps call sites readable.
class Vec {
 public:
  Vec() = default;
  explicit Vec(size_t dims, double fill = 0.0) : v_(dims, fill) {}
  Vec(std::initializer_list<double> init) : v_(init) {}

  size_t dims() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  double& operator[](size_t i) { return v_[i]; }
  double operator[](size_t i) const { return v_[i]; }

  const std::vector<double>& data() const { return v_; }

  Vec& operator+=(const Vec& o);
  Vec& operator-=(const Vec& o);
  Vec& operator*=(double s);
  Vec& operator/=(double s);

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(Vec a, double s) { return a *= s; }
  friend Vec operator*(double s, Vec a) { return a *= s; }
  friend Vec operator/(Vec a, double s) { return a /= s; }

  friend bool operator==(const Vec& a, const Vec& b) { return a.v_ == b.v_; }

  /// Euclidean norm.
  double Norm() const;
  /// Squared Euclidean norm.
  double NormSquared() const;
  /// Dot product; both vectors must have equal dims.
  double Dot(const Vec& o) const;
  /// Euclidean distance to `o`.
  double DistanceTo(const Vec& o) const;

  /// Returns this vector scaled to unit length; the zero vector maps to a
  /// deterministic pseudo-random unit direction derived from `tiebreak` so
  /// that force computations never stall at coincident points.
  Vec Unit(uint64_t tiebreak = 0) const;

  /// Appends a component.
  void Append(double x) { v_.push_back(x); }

  /// "(x, y, z)" rendering with 4 significant digits.
  std::string ToString() const;

 private:
  std::vector<double> v_;
};

}  // namespace sbon

#endif  // SBON_COMMON_VEC_H_

#include "coords/cost_space.h"

#include <cassert>
#include <cmath>

namespace sbon::coords {

CostSpaceSpec CostSpaceSpec::LatencyOnly(size_t vector_dims) {
  return CostSpaceSpec(vector_dims, {});
}

CostSpaceSpec CostSpaceSpec::LatencyAndLoad(size_t vector_dims,
                                            double load_scale) {
  std::vector<ScalarDimSpec> scalars;
  scalars.push_back(ScalarDimSpec{
      "cpu_load", std::make_shared<SquaredWeighting>(load_scale)});
  return CostSpaceSpec(vector_dims, std::move(scalars));
}

CostSpace::CostSpace(CostSpaceSpec spec, size_t num_nodes)
    : spec_(std::move(spec)),
      vector_coords_(num_nodes, Vec(spec_.vector_dims())),
      raw_scalars_(num_nodes,
                   std::vector<double>(spec_.num_scalar_dims(), 0.0)) {}

Status CostSpace::SetVectorCoord(NodeId n, const Vec& coord) {
  if (n >= NumNodes()) return Status::OutOfRange("node id");
  if (coord.dims() != spec_.vector_dims()) {
    return Status::InvalidArgument("vector coord dims mismatch");
  }
  vector_coords_[n] = coord;
  return Status::OK();
}

Status CostSpace::SetScalarMetric(NodeId n, size_t i, double raw) {
  if (n >= NumNodes()) return Status::OutOfRange("node id");
  if (i >= spec_.num_scalar_dims()) {
    return Status::OutOfRange("scalar dim index");
  }
  raw_scalars_[n][i] = raw;
  return Status::OK();
}

double CostSpace::WeightedScalar(NodeId n, size_t i) const {
  return spec_.scalar_dim(i).weighting->Apply(raw_scalars_[n][i]);
}

double CostSpace::ScalarPenalty(NodeId n) const {
  double s = 0.0;
  for (size_t i = 0; i < spec_.num_scalar_dims(); ++i) {
    s += WeightedScalar(n, i);
  }
  return s;
}

Vec CostSpace::FullCoord(NodeId n) const {
  Vec out = vector_coords_[n];
  for (size_t i = 0; i < spec_.num_scalar_dims(); ++i) {
    out.Append(WeightedScalar(n, i));
  }
  return out;
}

double CostSpace::VectorDistance(NodeId a, NodeId b) const {
  return vector_coords_[a].DistanceTo(vector_coords_[b]);
}

double CostSpace::VectorDistanceTo(NodeId a, const Vec& vector_point) const {
  return vector_coords_[a].DistanceTo(vector_point);
}

double CostSpace::FullDistanceToIdeal(NodeId n,
                                      const Vec& vector_point) const {
  assert(vector_point.dims() == spec_.vector_dims());
  double s = vector_coords_[n].DistanceSquaredTo(vector_point);
  for (size_t i = 0; i < spec_.num_scalar_dims(); ++i) {
    const double w = WeightedScalar(n, i);  // target scalar coordinate is 0
    s += w * w;
  }
  return std::sqrt(s);
}

}  // namespace sbon::coords

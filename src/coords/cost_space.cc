#include "coords/cost_space.h"

#include <cassert>
#include <cmath>

#include "common/kernel_stats.h"
#include "common/simd.h"

namespace sbon::coords {

CostSpaceSpec CostSpaceSpec::LatencyOnly(size_t vector_dims) {
  return CostSpaceSpec(vector_dims, {});
}

CostSpaceSpec CostSpaceSpec::LatencyAndLoad(size_t vector_dims,
                                            double load_scale) {
  std::vector<ScalarDimSpec> scalars;
  scalars.push_back(ScalarDimSpec{
      "cpu_load", std::make_shared<SquaredWeighting>(load_scale)});
  return CostSpaceSpec(vector_dims, std::move(scalars));
}

CostSpace::CostSpace(CostSpaceSpec spec, size_t num_nodes)
    : spec_(std::move(spec)),
      vector_coords_(spec_.vector_dims(), num_nodes),
      raw_scalars_(spec_.num_scalar_dims(), num_nodes),
      weighted_scalars_(spec_.num_scalar_dims(), num_nodes) {
  // The weighted cache must hold w_i(0) for the all-zero initial metrics —
  // not necessarily zero (weightings are only required to be >= 0).
  for (size_t i = 0; i < spec_.num_scalar_dims(); ++i) {
    const double w0 = spec_.scalar_dim(i).weighting->Apply(0.0);
    double* lane = weighted_scalars_.lane(i);
    for (size_t n = 0; n < num_nodes; ++n) lane[n] = w0;
  }
}

Status CostSpace::SetVectorCoord(NodeId n, const Vec& coord) {
  if (n >= NumNodes()) return Status::OutOfRange("node id");
  if (coord.dims() != spec_.vector_dims()) {
    return Status::InvalidArgument("vector coord dims mismatch");
  }
  vector_coords_.SetNode(n, coord);
  return Status::OK();
}

Status CostSpace::SetScalarMetric(NodeId n, size_t i, double raw) {
  if (n >= NumNodes()) return Status::OutOfRange("node id");
  if (i >= spec_.num_scalar_dims()) {
    return Status::OutOfRange("scalar dim index");
  }
  raw_scalars_.At(i, n) = raw;
  // Weightings are pure functions, so caching at write time returns exactly
  // what compute-on-read returned.
  weighted_scalars_.At(i, n) = spec_.scalar_dim(i).weighting->Apply(raw);
  return Status::OK();
}

double CostSpace::ScalarPenalty(NodeId n) const {
  double s = 0.0;
  for (size_t i = 0; i < spec_.num_scalar_dims(); ++i) {
    s += weighted_scalars_.At(i, n);
  }
  return s;
}

Vec CostSpace::FullCoord(NodeId n) const {
  Vec out = vector_coords_.NodeVec(n);
  for (size_t i = 0; i < spec_.num_scalar_dims(); ++i) {
    out.Append(weighted_scalars_.At(i, n));
  }
  return out;
}

double CostSpace::VectorDistance(NodeId a, NodeId b) const {
  const double* pa = vector_coords_.lane(0) + a;
  const double* pb = vector_coords_.lane(0) + b;
  const size_t stride = vector_coords_.stride();
  double s = 0.0;
  for (size_t d = 0; d < spec_.vector_dims(); ++d) {
    const double diff = pa[d * stride] - pb[d * stride];
    s += diff * diff;
  }
  return std::sqrt(s);
}

double CostSpace::VectorDistanceTo(NodeId a, const Vec& vector_point) const {
  return std::sqrt(
      kernels::DistanceSquaredAt(vector_coords_, a, vector_point.data()));
}

double CostSpace::FullDistanceToIdeal(NodeId n,
                                      const Vec& vector_point) const {
  assert(vector_point.dims() == spec_.vector_dims());
  double s = kernels::DistanceSquaredAt(vector_coords_, n, vector_point.data());
  for (size_t i = 0; i < spec_.num_scalar_dims(); ++i) {
    const double w = weighted_scalars_.At(i, n);  // target scalar coord is 0
    s += w * w;
  }
  return std::sqrt(s);
}

void CostSpace::SyncVectorFrom(const CoordBlock& coords) {
  assert(coords.dims() == spec_.vector_dims());
  assert(coords.nodes() == NumNodes());
  const size_t n = NumNodes();
  for (size_t d = 0; d < spec_.vector_dims(); ++d) {
    const double* src = coords.lane(d);
    double* dst = vector_coords_.lane(d);
    for (size_t i = 0; i < n; ++i) dst[i] = src[i];
  }
}

void CostSpace::FullCoordsInto(const NodeId* nodes, size_t count,
                               size_t out_begin, CoordBlock* out) const {
  assert(out->dims() == spec_.total_dims());
  assert(out->nodes() >= out_begin + count);
  const size_t vdims = spec_.vector_dims();
  for (size_t d = 0; d < vdims; ++d) {
    const double* src = vector_coords_.lane(d);
    double* dst = out->lane(d) + out_begin;
    SBON_SIMD_LOOP
    for (size_t j = 0; j < count; ++j) dst[j] = src[nodes[j]];
  }
  for (size_t i = 0; i < spec_.num_scalar_dims(); ++i) {
    const double* src = weighted_scalars_.lane(i);
    double* dst = out->lane(vdims + i) + out_begin;
    SBON_SIMD_LOOP
    for (size_t j = 0; j < count; ++j) dst[j] = src[nodes[j]];
  }
}

void CostSpace::VectorDistancesToMany(const Vec& vector_point,
                                      const NodeId* nodes, size_t count,
                                      double* out) const {
  assert(vector_point.dims() == spec_.vector_dims());
  KernelTimer timer(Kernel::kCostEval, count);
  kernels::DistanceSquaredToMany(vector_coords_, vector_point.data(), nodes,
                                 count, out);
  kernels::SqrtMany(out, count);
}

void CostSpace::FullDistancesToIdealMany(const Vec& vector_point,
                                         const NodeId* nodes, size_t count,
                                         double* out) const {
  assert(vector_point.dims() == spec_.vector_dims());
  KernelTimer timer(Kernel::kCostEval, count);
  kernels::DistanceSquaredToMany(vector_coords_, vector_point.data(), nodes,
                                 count, out);
  for (size_t i = 0; i < spec_.num_scalar_dims(); ++i) {
    const double* lane = weighted_scalars_.lane(i);
    SBON_SIMD_LOOP
    for (size_t j = 0; j < count; ++j) {
      const double w = lane[nodes[j]];
      out[j] += w * w;
    }
  }
  kernels::SqrtMany(out, count);
}

}  // namespace sbon::coords

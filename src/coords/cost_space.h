#ifndef SBON_COORDS_COST_SPACE_H_
#define SBON_COORDS_COST_SPACE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/coord_block.h"
#include "common/ids.h"
#include "common/status.h"
#include "common/vec.h"
#include "coords/weighting.h"

namespace sbon::coords {

/// Specification of one scalar dimension (paper Sec. 3.1): a single-node
/// property (CPU load, memory, ...) mapped into the space through a
/// deployer-supplied weighting function.
struct ScalarDimSpec {
  std::string name;
  std::shared_ptr<const WeightingFn> weighting;
};

/// The semantics of a cost space: how many vector (relational) dimensions it
/// has and which scalar dimensions with which weighting functions. Per the
/// paper, "the semantics of a particular cost space must be known by all
/// nodes in the SBON"; in this library a single `CostSpaceSpec` instance is
/// shared by everything operating in the same space.
class CostSpaceSpec {
 public:
  CostSpaceSpec(size_t vector_dims, std::vector<ScalarDimSpec> scalar_dims)
      : vector_dims_(vector_dims), scalar_dims_(std::move(scalar_dims)) {}

  /// Convenience: a latency-only space ("pure latency space", Sec. 3.1).
  static CostSpaceSpec LatencyOnly(size_t vector_dims = 2);

  /// Convenience: the paper's Figure 2 space — 2 latency dimensions plus a
  /// squared-CPU-load scalar dimension, scaled so a fully loaded node sits
  /// `load_scale` ms "away" from an idle one.
  static CostSpaceSpec LatencyAndLoad(size_t vector_dims = 2,
                                      double load_scale = 100.0);

  size_t vector_dims() const { return vector_dims_; }
  size_t num_scalar_dims() const { return scalar_dims_.size(); }
  size_t total_dims() const { return vector_dims_ + scalar_dims_.size(); }
  const ScalarDimSpec& scalar_dim(size_t i) const { return scalar_dims_[i]; }

 private:
  size_t vector_dims_;
  std::vector<ScalarDimSpec> scalar_dims_;
};

/// The live cost space: per-node vector coordinates (maintained by a network
/// coordinate system such as Vivaldi) plus per-node raw scalar metrics
/// (maintained by monitoring). A point in this space corresponds to a
/// physical node (paper Sec. 3.1).
///
/// Storage is structure-of-arrays (`CoordBlock` lanes): batched evaluations
/// — candidate-set distances, the refresh displacement scan — sweep
/// unit-stride lanes, and `Vec` access materializes copies at the API edge.
/// Weighted scalar coordinates are cached at metric-write time (weighting
/// functions are pure), so every read path sees the same values the
/// compute-on-read implementation produced.
class CostSpace {
 public:
  CostSpace(CostSpaceSpec spec, size_t num_nodes);

  const CostSpaceSpec& spec() const { return spec_; }
  size_t NumNodes() const { return vector_coords_.nodes(); }

  /// Installs the vector-part coordinate of a node (dims must match spec).
  Status SetVectorCoord(NodeId n, const Vec& coord);
  /// Installs the raw (unweighted) scalar metric of a node for dim `i`.
  Status SetScalarMetric(NodeId n, size_t i, double raw);

  /// Vector part of the node's coordinate, materialized as a value.
  Vec VectorCoord(NodeId n) const { return vector_coords_.NodeVec(n); }
  /// Raw scalar metric before weighting.
  double RawScalar(NodeId n, size_t i) const { return raw_scalars_.At(i, n); }
  /// Weighted scalar coordinate w_i(raw).
  double WeightedScalar(NodeId n, size_t i) const {
    return weighted_scalars_.At(i, n);
  }
  /// Sum of weighted scalar coordinates — the node's total penalty; used as
  /// the load term of circuit cost.
  double ScalarPenalty(NodeId n) const;

  /// Full coordinate: vector dims followed by weighted scalar dims.
  Vec FullCoord(NodeId n) const;

  /// Distance in the vector subspace only (what virtual placement uses —
  /// "the virtual placement algorithm operates only over the vector cost
  /// dimensions", Sec. 3.2).
  double VectorDistance(NodeId a, NodeId b) const;
  double VectorDistanceTo(NodeId a, const Vec& vector_point) const;

  /// Distance between the node's full coordinate and an ideal target whose
  /// vector part is `vector_point` and whose scalar coordinates are all zero
  /// ("the ideal scalar components will all be zero", Sec. 3.2). This is the
  /// metric physical mapping minimizes.
  double FullDistanceToIdeal(NodeId n, const Vec& vector_point) const;

  // --- structure-of-arrays access and batched kernels ---------------------

  /// The vector-part lanes (vector_dims x NumNodes), read-only.
  const CoordBlock& vector_block() const { return vector_coords_; }
  /// The cached weighted-scalar lanes (num_scalar_dims x NumNodes).
  const CoordBlock& weighted_scalar_block() const { return weighted_scalars_; }

  /// Bulk-copies the vector part from a lane-major block of the same shape
  /// (the per-epoch Vivaldi -> cost-space sync).
  void SyncVectorFrom(const CoordBlock& coords);

  /// Writes the full coordinates of nodes[0..count) into `out` node slots
  /// [out_begin, out_begin + count): vector lanes first, then the cached
  /// weighted scalar lanes. `out` must be shaped total_dims x (>= out_begin
  /// + count). Shard-safe: writes only the given slot range.
  void FullCoordsInto(const NodeId* nodes, size_t count, size_t out_begin,
                      CoordBlock* out) const;

  /// Batched VectorDistanceTo over a candidate set: out[j] is the vector
  /// subspace distance from nodes[j] to `vector_point`. Counted under the
  /// cost_eval kernel.
  void VectorDistancesToMany(const Vec& vector_point, const NodeId* nodes,
                             size_t count, double* out) const;

  /// Batched FullDistanceToIdeal over a candidate set: out[j] is the full
  /// cost-space distance from nodes[j] to the ideal target over
  /// `vector_point`. Counted under the cost_eval kernel.
  void FullDistancesToIdealMany(const Vec& vector_point, const NodeId* nodes,
                                size_t count, double* out) const;

 private:
  CostSpaceSpec spec_;
  CoordBlock vector_coords_;     // vector_dims x N lanes
  CoordBlock raw_scalars_;       // num_scalar_dims x N lanes
  CoordBlock weighted_scalars_;  // num_scalar_dims x N lanes, w_i(raw) cache
};

}  // namespace sbon::coords

#endif  // SBON_COORDS_COST_SPACE_H_

#include "coords/manager.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/kernel_stats.h"

namespace sbon::coords {

namespace {
// Mass-publish batches at or above this size go through the ring's bulk
// window (O(log m) per publish instead of O(m) vector splices). Below it
// the window's map build would cost more allocations than it saves; the
// final ring is bit-identical either way, so this is purely a perf knob.
constexpr size_t kBulkPublishThreshold = 2048;
}  // namespace

StatusOr<std::unique_ptr<CoordinateManager>> CoordinateManager::Build(
    Params params, const net::LatencyView& lat, Rng* rng) {
  const size_t n = lat.NumNodes();
  std::unique_ptr<CoordinateManager> mgr(new CoordinateManager());
  mgr->params_ = params;

  std::vector<Vec> coords;
  switch (params.mode) {
    case CoordMode::kVivaldi: {
      VivaldiSystem::Params vp = params.vivaldi;
      vp.dims = params.spec.vector_dims();
      mgr->vivaldi_ = std::make_unique<VivaldiSystem>(
          RunVivaldi(lat, vp, params.vivaldi_run, rng));
      coords.reserve(n);
      for (NodeId i = 0; i < n; ++i) coords.push_back(mgr->vivaldi_->Coord(i));
      break;
    }
    case CoordMode::kMds:
    case CoordMode::kTrue: {
      coords = ClassicalMds(lat, params.spec.vector_dims(), rng);
      break;
    }
  }

  mgr->space_ = std::make_unique<CostSpace>(params.spec, n);
  for (NodeId i = 0; i < n; ++i) {
    Status st = mgr->space_->SetVectorCoord(i, coords[i]);
    if (!st.ok()) return st;
  }
  mgr->last_published_.Reset(params.spec.total_dims(), n);
  return mgr;
}

void CoordinateManager::SetScalarMetrics(const std::vector<double>& raw) {
  const size_t scalar_dims = params_.spec.num_scalar_dims();
  if (scalar_dims == 0) return;
  for (NodeId n = 0; n < space_->NumNodes(); ++n) {
    // Dimension 0 is CPU load by convention of LatencyAndLoad; additional
    // scalar dims (if any) default to the same metric.
    for (size_t i = 0; i < scalar_dims; ++i) {
      space_->SetScalarMetric(n, i, raw[n]);
    }
  }
}

void CoordinateManager::BuildIndex(const std::vector<NodeId>& overlay_nodes) {
  std::vector<Vec> full_coords;
  full_coords.reserve(overlay_nodes.size());
  for (NodeId i : overlay_nodes) full_coords.push_back(space_->FullCoord(i));
  // The quantizer box spans the vector part of all nodes plus the maximum
  // scalar penalty range observed at full load, so republished coordinates
  // under any load stay inside the box.
  std::vector<Vec> box_points = full_coords;
  {
    // Add synthetic corner points with worst-case scalar penalty.
    Vec worst = full_coords[0];
    for (size_t d = params_.spec.vector_dims(); d < worst.dims(); ++d) {
      const size_t scalar_i = d - params_.spec.vector_dims();
      worst[d] = params_.spec.scalar_dim(scalar_i).weighting->Apply(1.0);
    }
    box_points.push_back(worst);
  }
  index_ = std::make_unique<dht::CoordinateIndex>(
      dht::HilbertQuantizer::FitTo(box_points, params_.hilbert_bits));
  const bool bulk = overlay_nodes.size() >= kBulkPublishThreshold;
  if (bulk) index_->BeginBulkUpdate();
  for (size_t k = 0; k < overlay_nodes.size(); ++k) {
    index_->Publish(overlay_nodes[k], full_coords[k]);
    last_published_.SetNode(overlay_nodes[k], full_coords[k]);
  }
  if (bulk) index_->EndBulkUpdate();
  index_->Stabilize();
}

void CoordinateManager::UpdateCoordinatesOnline(
    const net::LatencyView& live, size_t samples_per_node,
    const std::vector<bool>& alive, double rtt_noise_sigma, Rng* rng,
    ThreadPool* pool) {
  if (vivaldi_ == nullptr) return;
  const size_t n = space_->NumNodes();
  if (n < 2) return;
  // Fewer than two alive nodes means no measurable pair (and the peer
  // rejection loop below would never terminate).
  if (static_cast<size_t>(std::count(alive.begin(), alive.end(), true)) < 2) {
    return;
  }

  // Phase 1 — serial sample pre-draw, in exactly the order the legacy
  // in-place sweep consumed the shared Rng (crashed nodes neither measure
  // nor answer probes), so the overlay-wide RNG stream never shifts.
  samples_.clear();
  sample_end_.assign(n, 0);
  for (NodeId self = 0; self < n; ++self) {
    if (alive[self]) {
      for (size_t s = 0; s < samples_per_node; ++s) {
        NodeId peer;
        do {
          peer = static_cast<NodeId>(rng->UniformInt(n));
        } while (peer == self || !alive[peer]);
        double rtt = live.Latency(self, peer);
        if (rtt_noise_sigma > 0.0) {
          rtt *= std::exp(rng->Normal(0.0, rtt_noise_sigma));
        }
        samples_.push_back(Sample{peer, rtt});
      }
    }
    sample_end_[self] = samples_.size();
  }

  // Phase 2 — spring updates, counted as the vivaldi_update kernel. Serial
  // semantics (the contract both paths implement): nodes update in index
  // order, so a sample against a lower peer sees that peer's fully-updated
  // epoch state and a sample against a higher peer sees its epoch-start
  // state.
  {
  KernelTimer timer(Kernel::kVivaldiUpdate, samples_.size());
  if (pool == nullptr || pool->threads() <= 1) {
    for (NodeId self = 0; self < n; ++self) {
      const size_t begin = self == 0 ? 0 : sample_end_[self - 1];
      for (size_t k = begin; k < sample_end_[self]; ++k) {
        vivaldi_->Update(self, samples_[k].peer, samples_[k].rtt);
      }
    }
  } else {
    // Wavefront execution. A node's updates may run as soon as every lower
    // peer it samples has finished (flow dependency); reads of higher peers
    // go to the epoch-start snapshot, which removes the anti-dependency
    // serial order would otherwise impose. Generation numbers depend only
    // on the pre-drawn samples, and nodes within a generation write
    // disjoint state, so any thread count produces the serial result.
    snap_block_ = vivaldi_->coords();
    snap_error_.resize(n);
    for (NodeId i = 0; i < n; ++i) {
      snap_error_[i] = vivaldi_->LocalError(i);
    }
    generation_.assign(n, 0);
    size_t max_gen = 0;
    for (NodeId self = 0; self < n; ++self) {
      const size_t begin = self == 0 ? 0 : sample_end_[self - 1];
      size_t g = 0;
      for (size_t k = begin; k < sample_end_[self]; ++k) {
        const NodeId peer = samples_[k].peer;
        if (peer < self) g = std::max(g, generation_[peer] + 1);
      }
      generation_[self] = g;
      max_gen = std::max(max_gen, g);
    }
    // Bucket nodes by generation, ascending node id within each bucket
    // (counting sort; order inside a bucket is irrelevant for correctness
    // but kept deterministic anyway).
    wave_begin_.assign(max_gen + 2, 0);
    for (NodeId self = 0; self < n; ++self) {
      const size_t begin = self == 0 ? 0 : sample_end_[self - 1];
      if (begin < sample_end_[self]) ++wave_begin_[generation_[self] + 1];
    }
    for (size_t g = 1; g < wave_begin_.size(); ++g) {
      wave_begin_[g] += wave_begin_[g - 1];
    }
    wave_order_.resize(wave_begin_.back());
    {
      std::vector<size_t> cursor(wave_begin_.begin(),
                                 wave_begin_.end() - 1);
      for (NodeId self = 0; self < n; ++self) {
        const size_t begin = self == 0 ? 0 : sample_end_[self - 1];
        if (begin < sample_end_[self]) {
          wave_order_[cursor[generation_[self]]++] = self;
        }
      }
    }
    for (size_t g = 0; g <= max_gen; ++g) {
      const size_t bucket_begin = wave_begin_[g];
      const size_t bucket_size = wave_begin_[g + 1] - bucket_begin;
      ParallelSlices(pool, bucket_size, [&](size_t lo, size_t hi) {
        for (size_t w = lo; w < hi; ++w) {
          const NodeId self = wave_order_[bucket_begin + w];
          const size_t begin = self == 0 ? 0 : sample_end_[self - 1];
          for (size_t k = begin; k < sample_end_[self]; ++k) {
            const NodeId peer = samples_[k].peer;
            if (peer < self) {
              // Lower peer: finished in an earlier generation; live state.
              vivaldi_->Update(self, peer, samples_[k].rtt);
            } else {
              vivaldi_->UpdateAgainstBlock(self, peer, snap_block_,
                                           snap_error_[peer], samples_[k].rtt);
            }
          }
        }
      });
    }
  }
  }  // KernelTimer(vivaldi_update) scope: phase 2 only

  space_->SyncVectorFrom(vivaldi_->coords());
}

void CoordinateManager::RefreshIndex(const std::vector<NodeId>& overlay_nodes,
                                     double epsilon, ThreadPool* pool) {
  refresh_stats_.refreshes += 1;
  const double eps2 = epsilon * epsilon;
  const size_t m = overlay_nodes.size();
  // Phase 1 — displacement scan (sharded), counted as the cost_eval kernel:
  // gather every overlay node's full coordinate into positional SoA lanes,
  // then diff lane-wise against the last-published block and flag the slots
  // displaced beyond epsilon. Each slot is written by exactly one shard;
  // dirty_ is byte-wide because vector<bool> packs bits and adjacent writes
  // would race. Per slot the squared displacement accumulates dims-ascending
  // — bitwise the order the per-Vec DistanceSquaredTo scan used.
  dirty_.assign(m, 0);
  full_block_.Reset(params_.spec.total_dims(), m);
  disp_scratch_.resize(m);
  {
    KernelTimer timer(Kernel::kCostEval, m);
    ParallelSlices(pool, m, [&](size_t lo, size_t hi) {
      space_->FullCoordsInto(overlay_nodes.data() + lo, hi - lo, lo,
                             &full_block_);
      kernels::DisplacementSquared(full_block_, lo, last_published_,
                                   overlay_nodes.data() + lo, hi - lo,
                                   disp_scratch_.data() + lo);
      for (size_t k = lo; k < hi; ++k) {
        // Strictly-greater: epsilon 0 republishes any changed coordinate and
        // skips bit-identical ones (the ring state is the same either way).
        dirty_[k] = disp_scratch_[k] > eps2;
      }
    });
  }
  // Phase 2 — serial re-publish in node order (ring mutation), identical to
  // the order the legacy single-pass refresh issued. Bulk window: a busy
  // epoch republishes most of the overlay, and per-publish vector splices
  // would make the refresh O(m^2) at large N.
  size_t republished = 0;
  const bool bulk = m >= kBulkPublishThreshold;
  if (bulk) index_->BeginBulkUpdate();
  for (size_t k = 0; k < m; ++k) {
    if (dirty_[k]) {
      const NodeId n = overlay_nodes[k];
      const Vec full = full_block_.NodeVec(k);
      index_->Publish(n, full);
      last_published_.SetNode(n, full);
      ++republished;
    } else {
      refresh_stats_.skipped += 1;
    }
  }
  if (bulk) index_->EndBulkUpdate();
  refresh_stats_.republished += republished;
  if (republished > 0) {
    index_->Stabilize();
  } else {
    refresh_stats_.quiet_refreshes += 1;
  }
}

void CoordinateManager::ApplyRemoteSample(NodeId self, NodeId peer,
                                          const Vec& peer_coord,
                                          double peer_error, double rtt_ms) {
  if (vivaldi_ == nullptr) return;
  vivaldi_->UpdateAgainst(self, peer, peer_coord, peer_error, rtt_ms);
}

void CoordinateManager::SyncVectorCoords() {
  if (vivaldi_ == nullptr) return;
  space_->SyncVectorFrom(vivaldi_->coords());
}

void CoordinateManager::CollectDisplaced(
    const std::vector<NodeId>& overlay_nodes, double epsilon,
    std::vector<NodeId>* out) const {
  const double eps2 = epsilon * epsilon;
  for (NodeId n : overlay_nodes) {
    const Vec full = space_->FullCoord(n);
    // Strictly-greater, matching RefreshIndex: epsilon 0 flags any changed
    // coordinate and skips bit-identical ones.
    if (kernels::DistanceSquaredAt(last_published_, n, full.data()) > eps2) {
      out->push_back(n);
    }
  }
}

void CoordinateManager::PublishWithoutStabilize(NodeId n) {
  const Vec full = space_->FullCoord(n);
  index_->Publish(n, full);
  last_published_.SetNode(n, full);
}

void CoordinateManager::Withdraw(NodeId n) {
  // Ring Leave: the index must stop returning the dead node immediately so
  // repair placement cannot land replacements on it.
  index_->Withdraw(n);
  index_->Stabilize();
  last_published_.ZeroNode(n);
}

void CoordinateManager::Publish(NodeId n) {
  const Vec full = space_->FullCoord(n);
  index_->Publish(n, full);
  last_published_.SetNode(n, full);
  index_->Stabilize();
}

}  // namespace sbon::coords

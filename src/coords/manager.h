#ifndef SBON_COORDS_MANAGER_H_
#define SBON_COORDS_MANAGER_H_

#include <memory>
#include <vector>

#include "common/coord_block.h"
#include "common/ids.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "coords/cost_space.h"
#include "coords/mds.h"
#include "coords/vivaldi.h"
#include "dht/coord_index.h"
#include "net/shortest_path.h"

namespace sbon::coords {

/// How vector coordinates are obtained.
enum class CoordMode {
  kVivaldi,  ///< decentralized Vivaldi embedding (deployable; default)
  kMds,      ///< centralized classical-MDS oracle (ablation)
  kTrue,     ///< no embedding: mapping/cost-space queries use MDS coords,
             ///< but this mode is reserved for ablation harnesses
};

/// Cumulative counters of the dirty-driven index refresh (ring traffic a
/// real deployment would pay to keep the coordinate catalog fresh).
struct IndexRefreshStats {
  size_t refreshes = 0;        ///< RefreshIndex calls
  size_t republished = 0;      ///< ring re-publishes actually issued
  size_t skipped = 0;          ///< node refreshes elided (moved <= epsilon)
  size_t quiet_refreshes = 0;  ///< refreshes with zero re-publishes (no
                               ///< ring Leave/Join and no restabilization)
};

/// The coordinate substrate of the overlay: the Vivaldi (or MDS) embedding,
/// the cost space it feeds, the decentralized coordinate index over the
/// overlay nodes' full coordinates, and the dirty-coordinate tracking that
/// gates index re-publishes on displacement.
///
/// One of the three substrates `overlay::Sbon` composes (alongside
/// net::NetworkFabric and overlay::ServiceLedger).
///
/// Two stages shard across an optional ThreadPool: the online Vivaldi epoch
/// (dependency-wavefront execution of pre-drawn samples) and the refresh's
/// dirty scan. Both replicate the serial index-order sweep exactly, so
/// fixed-seed results are bit-identical at any thread count.
class CoordinateManager {
 public:
  struct Params {
    CostSpaceSpec spec = CostSpaceSpec::LatencyAndLoad();
    CoordMode mode = CoordMode::kVivaldi;
    VivaldiSystem::Params vivaldi;
    VivaldiRunOptions vivaldi_run;
    unsigned hilbert_bits = 10;
  };

  /// Embeds coordinates against `lat` — a full Vivaldi gossip run or a
  /// classical-MDS solve, drawing from `rng` in exactly the order the
  /// monolithic Sbon::Initialize always did — and fills the cost space's
  /// vector part. Scalar metrics start at zero; call SetScalarMetrics then
  /// BuildIndex to finish bring-up.
  static StatusOr<std::unique_ptr<CoordinateManager>> Build(
      Params params, const net::LatencyView& lat, Rng* rng);

  CoordinateManager(const CoordinateManager&) = delete;
  CoordinateManager& operator=(const CoordinateManager&) = delete;

  const CostSpace& space() const { return *space_; }
  const dht::CoordinateIndex& index() const { return *index_; }
  dht::IndexQueryCost& index_cost() { return index_cost_; }
  const IndexRefreshStats& refresh_stats() const { return refresh_stats_; }
  /// False for MDS/true-coordinate ablations (online epochs are a no-op).
  bool online_updates_supported() const { return vivaldi_ != nullptr; }

  /// Writes each node's raw scalar metric (by convention: total CPU load)
  /// into every scalar dimension of the cost space. `raw` is indexed by
  /// node id and must cover all nodes.
  void SetScalarMetrics(const std::vector<double>& raw);

  /// Builds the coordinate index over the overlay nodes' full coordinates:
  /// fits the Hilbert quantizer box (vector span plus worst-case scalar
  /// penalty corner), publishes every node, and stabilizes the ring.
  void BuildIndex(const std::vector<NodeId>& overlay_nodes);

  /// Online coordinate maintenance: every alive node takes
  /// `samples_per_node` RTT measurements against `live` latencies and runs
  /// Vivaldi updates, then the cost space's vector part is refreshed.
  /// Sample draws come from `rng` in the legacy serial order; the updates
  /// execute either in index order (serial) or as a dependency wavefront
  /// over `pool` — bit-identical either way. No-op without Vivaldi.
  void UpdateCoordinatesOnline(const net::LatencyView& live,
                               size_t samples_per_node,
                               const std::vector<bool>& alive,
                               double rtt_noise_sigma, Rng* rng,
                               ThreadPool* pool = nullptr);

  /// Dirty-driven index refresh: republishes the full coordinate of every
  /// overlay node displaced more than `epsilon` (cost-space units) since
  /// its last publish, then restabilizes the ring — unless nothing moved,
  /// in which case the ring is left entirely untouched. The displacement
  /// scan shards over `pool`; publishes stay serial in node order.
  void RefreshIndex(const std::vector<NodeId>& overlay_nodes, double epsilon,
                    ThreadPool* pool = nullptr);

  /// Ring Leave on a crash: the index stops returning the node immediately
  /// and its publish record is cleared.
  void Withdraw(NodeId n);
  /// Ring Join on a rejoin: republishes the node's current full coordinate
  /// (stale vector part + fresh scalars) and restabilizes.
  void Publish(NodeId n);

  // --- message-mode hooks (msg::Runtime) -----------------------------------
  // The message-passing execution mode re-expresses the two substrate
  // sweeps above (UpdateCoordinatesOnline, RefreshIndex) as explicit
  // request/response traffic; these are the primitive steps its agents
  // compose, each one a fragment of the corresponding oracle sweep.

  /// Vivaldi read access for agents answering coordinate pings (nullptr
  /// for MDS/true-coordinate ablations).
  const VivaldiSystem* vivaldi() const { return vivaldi_.get(); }
  /// Applies one remotely measured RTT sample: `self` runs its spring
  /// update against the peer state a pong carried. No-op without Vivaldi.
  void ApplyRemoteSample(NodeId self, NodeId peer, const Vec& peer_coord,
                         double peer_error, double rtt_ms);
  /// Copies the Vivaldi coordinates into the cost space's vector part —
  /// what UpdateCoordinatesOnline does after its sweep. Call once per epoch
  /// after the message drain. No-op without Vivaldi.
  void SyncVectorCoords();
  /// Appends to `out` every node of `overlay_nodes` whose full coordinate
  /// moved more than `epsilon` since its last publish — RefreshIndex's
  /// displacement scan without the publishes (the RingAgent turns each hit
  /// into a routed publish message instead).
  void CollectDisplaced(const std::vector<NodeId>& overlay_nodes,
                        double epsilon, std::vector<NodeId>* out) const;
  /// Publishes `n`'s current full coordinate without restabilizing; the
  /// message-mode refresh batches one StabilizeIndex per epoch over however
  /// many publish messages were delivered.
  void PublishWithoutStabilize(NodeId n);
  void StabilizeIndex() { index_->Stabilize(); }

 private:
  CoordinateManager() = default;

  /// One pre-drawn RTT measurement of the node it is bucketed under.
  struct Sample {
    NodeId peer;
    double rtt;
  };

  Params params_;
  std::unique_ptr<VivaldiSystem> vivaldi_;  // null for MDS/true modes
  std::unique_ptr<CostSpace> space_;
  std::unique_ptr<dht::CoordinateIndex> index_;
  dht::IndexQueryCost index_cost_;
  /// Full coordinate each node last published into the index, as lane-major
  /// SoA addressed by node id (total_dims x N); RefreshIndex's displacement
  /// scan diffs it lane-wise against the recomputed full coordinates and
  /// republishes only nodes displaced beyond its epsilon.
  CoordBlock last_published_;
  IndexRefreshStats refresh_stats_;

  // Reused scratch for the online-update and refresh stages (allocation-free
  // in steady state).
  std::vector<Sample> samples_;
  std::vector<size_t> sample_end_;   ///< per node: end offset into samples_
  std::vector<size_t> generation_;   ///< wavefront generation per node
  std::vector<NodeId> wave_order_;   ///< nodes bucketed by generation
  std::vector<size_t> wave_begin_;   ///< bucket boundaries into wave_order_
  CoordBlock snap_block_;            ///< epoch-start coordinate snapshot
  std::vector<double> snap_error_;   ///< epoch-start error snapshot
  CoordBlock full_block_;            ///< recomputed full coords (refresh),
                                     ///< positional (slot k = overlay_nodes[k])
  std::vector<double> disp_scratch_; ///< squared displacement per slot
  std::vector<uint8_t> dirty_;       ///< per overlay node: moved > epsilon
};

}  // namespace sbon::coords

#endif  // SBON_COORDS_MANAGER_H_

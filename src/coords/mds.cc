#include "coords/mds.h"

#include <algorithm>
#include <cmath>

#include "common/summary.h"

namespace sbon::coords {

std::vector<Vec> ClassicalMds(const net::LatencyView& lat, size_t dims,
                              Rng* rng, size_t power_iters) {
  const size_t n = lat.NumNodes();
  std::vector<Vec> out(n, Vec(dims));
  if (n == 0 || dims == 0) return out;

  // B = -1/2 * J * D^2 * J with J = I - 11^T/n (double centering).
  std::vector<double> d2(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double l = lat.Latency(static_cast<NodeId>(i),
                                   static_cast<NodeId>(j));
      d2[i * n + j] = std::isfinite(l) ? l * l : 0.0;
    }
  }
  std::vector<double> row_mean(n, 0.0), col_mean(n, 0.0);
  double total_mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) row_mean[i] += d2[i * n + j];
    row_mean[i] /= static_cast<double>(n);
    total_mean += row_mean[i];
  }
  total_mean /= static_cast<double>(n);
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < n; ++i) col_mean[j] += d2[i * n + j];
    col_mean[j] /= static_cast<double>(n);
  }
  std::vector<double> b(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      b[i * n + j] =
          -0.5 * (d2[i * n + j] - row_mean[i] - col_mean[j] + total_mean);
    }
  }

  // Power iteration with deflation for the top `dims` eigenpairs.
  std::vector<std::vector<double>> eigvecs;
  std::vector<double> eigvals;
  std::vector<double> v(n), bv(n);
  for (size_t d = 0; d < dims; ++d) {
    for (size_t i = 0; i < n; ++i) v[i] = rng->Uniform(-1.0, 1.0);
    double lambda = 0.0;
    for (size_t it = 0; it < power_iters; ++it) {
      // bv = B v
      for (size_t i = 0; i < n; ++i) {
        double s = 0.0;
        const double* row = &b[i * n];
        for (size_t j = 0; j < n; ++j) s += row[j] * v[j];
        bv[i] = s;
      }
      // Deflate previously found components.
      for (size_t k = 0; k < eigvecs.size(); ++k) {
        double proj = 0.0;
        for (size_t i = 0; i < n; ++i) proj += eigvecs[k][i] * bv[i];
        for (size_t i = 0; i < n; ++i) bv[i] -= proj * eigvecs[k][i];
      }
      double norm = 0.0;
      for (double x : bv) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;
      for (size_t i = 0; i < n; ++i) v[i] = bv[i] / norm;
      lambda = norm;
    }
    eigvecs.push_back(v);
    eigvals.push_back(std::max(lambda, 0.0));
  }

  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) {
      out[i][d] = eigvecs[d][i] * std::sqrt(eigvals[d]);
    }
  }
  return out;
}

EmbeddingError EvaluateEmbedding(const net::LatencyView& lat,
                                 const std::vector<Vec>& coords,
                                 size_t max_pairs) {
  EmbeddingError err;
  const size_t n = coords.size();
  if (n < 2) return err;
  const size_t total_pairs = n * (n - 1) / 2;
  const size_t stride =
      std::max<size_t>(1, total_pairs / std::max<size_t>(1, max_pairs));

  Summary rel;
  double num = 0.0, den = 0.0;
  size_t pair_idx = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j, ++pair_idx) {
      if (pair_idx % stride != 0) continue;
      const double l = lat.Latency(static_cast<NodeId>(i),
                                   static_cast<NodeId>(j));
      if (!std::isfinite(l) || l <= 0.0) continue;
      const double d = coords[i].DistanceTo(coords[j]);
      rel.Add(std::abs(d - l) / l);
      num += (d - l) * (d - l);
      den += l * l;
    }
  }
  err.median_relative_error = rel.Median();
  err.mean_relative_error = rel.Mean();
  err.p95_relative_error = rel.Percentile(95);
  err.stress = den > 0.0 ? std::sqrt(num / den) : 0.0;
  return err;
}

}  // namespace sbon::coords

#ifndef SBON_COORDS_MDS_H_
#define SBON_COORDS_MDS_H_

#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "net/shortest_path.h"

namespace sbon::coords {

/// Classical multidimensional scaling over the full latency matrix: the
/// "oracle" embedding used in ablations to separate optimizer quality from
/// Vivaldi embedding error. Centralized and O(n^2 * dims * iters) — fine for
/// simulated topologies, impossible in a live SBON (which is exactly why the
/// paper uses decentralized coordinates).
///
/// Implementation: double-center the squared-latency matrix and extract the
/// top `dims` eigenvectors by power iteration with deflation.
std::vector<Vec> ClassicalMds(const net::LatencyView& lat, size_t dims,
                              Rng* rng, size_t power_iters = 200);

/// Embedding quality metrics comparing coordinate distances against true
/// latencies.
struct EmbeddingError {
  double median_relative_error = 0.0;  ///< med |dist - lat| / lat
  double mean_relative_error = 0.0;
  double p95_relative_error = 0.0;
  double stress = 0.0;  ///< sqrt(sum (dist-lat)^2 / sum lat^2)
};

/// Evaluates `coords` against the true latency matrix over all pairs (or a
/// sample of `max_pairs` pairs for large n).
EmbeddingError EvaluateEmbedding(const net::LatencyView& lat,
                                 const std::vector<Vec>& coords,
                                 size_t max_pairs = 200000);

}  // namespace sbon::coords

#endif  // SBON_COORDS_MDS_H_

#include "coords/vivaldi.h"

#include <algorithm>
#include <cmath>

namespace sbon::coords {

VivaldiSystem::VivaldiSystem(size_t num_nodes, const Params& params, Rng* rng)
    : params_(params),
      coords_(params.dims, num_nodes),
      error_(num_nodes, params.initial_error),
      rng_(rng) {
  // Start at tiny random offsets so initial forces have direction. Draws
  // are node-major (all dims of node 0, then node 1, ...), the order the
  // per-node Vec layout always consumed the stream in.
  for (size_t n = 0; n < num_nodes; ++n) {
    for (size_t d = 0; d < params_.dims; ++d) {
      coords_.At(d, n) = rng->Uniform(-0.1, 0.1);
    }
  }
}

void VivaldiSystem::Update(NodeId self, NodeId peer, double measured_rtt_ms) {
  UpdateKernel(self, peer, coords_.lane(0) + peer, coords_.stride(),
               error_[peer], measured_rtt_ms);
}

void VivaldiSystem::UpdateAgainst(NodeId self, NodeId peer,
                                  const Vec& peer_coord, double peer_error,
                                  double measured_rtt_ms) {
  UpdateKernel(self, peer, peer_coord.data(), 1, peer_error, measured_rtt_ms);
}

void VivaldiSystem::UpdateAgainstBlock(NodeId self, NodeId peer,
                                       const CoordBlock& peers,
                                       double peer_error,
                                       double measured_rtt_ms) {
  UpdateKernel(self, peer, peers.lane(0) + peer, peers.stride(), peer_error,
               measured_rtt_ms);
}

void VivaldiSystem::UpdateKernel(NodeId self, NodeId peer,
                                 const double* peer_base, size_t peer_stride,
                                 double peer_error, double measured_rtt_ms) {
  const double rtt = std::max(measured_rtt_ms, params_.min_rtt_ms);
  const size_t dims = params_.dims;
  const size_t stride = coords_.stride();
  double* base = coords_.lane(0) + self;  // self's dim d at base[d * stride]

  // diff = self - peer, in a stack buffer; cost spaces beyond kInlineDims
  // spill to the heap exactly as the Vec-based implementation did.
  double inline_buf[Vec::kInlineDims];
  Vec spill;
  double* diff = inline_buf;
  if (dims > Vec::kInlineDims) {
    spill = Vec(dims);
    diff = spill.data();
  }
  for (size_t d = 0; d < dims; ++d) {
    diff[d] = base[d * stride] - peer_base[d * peer_stride];
  }
  double norm2 = 0.0;
  for (size_t d = 0; d < dims; ++d) norm2 += diff[d] * diff[d];
  const double dist = std::sqrt(norm2);

  // Sample weight balances local vs remote confidence.
  const double w_self = error_[self];
  const double w_peer = peer_error;
  const double w = (w_self + w_peer) > 0.0 ? w_self / (w_self + w_peer) : 0.5;
  // Relative error of this sample.
  const double es = std::abs(dist - rtt) / rtt;
  // Update the local error with an EWMA weighted by confidence.
  error_[self] =
      es * params_.ce * w + error_[self] * (1.0 - params_.ce * w);
  error_[self] = std::clamp(error_[self], 0.0, 10.0);
  // Move along the spring force direction. `dist` is bitwise the norm the
  // historical `diff.Unit(tiebreak)` recomputed internally.
  const double delta = params_.cc * w;
  const double step = delta * (rtt - dist);
  if (dist > 1e-12) {
    // dir[d] = diff[d] / dist, applied as self[d] += dir[d] * step: the
    // divide-then-multiply rounding of the Vec path, element-independent.
    for (size_t d = 0; d < dims; ++d) {
      base[d * stride] += (diff[d] / dist) * step;
    }
  } else {
    // Deterministic pseudo-random direction for coincident points —
    // Vec::Unit's tiebreak, replicated on the stack buffer.
    const uint64_t tiebreak = static_cast<uint64_t>(self) * 1000003u + peer;
    uint64_t h = tiebreak * 0x9e3779b97f4a7c15ULL + 0x1234567ULL;
    double dir_norm2 = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      const double x =
          static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5;  // [-0.5, 0.5)
      diff[d] = x;
      dir_norm2 += x * x;
    }
    if (dir_norm2 < 1e-24 && dims > 0) diff[0] = 1.0;
    double renorm2 = 0.0;
    for (size_t d = 0; d < dims; ++d) renorm2 += diff[d] * diff[d];
    const double n2 = std::sqrt(renorm2);
    if (n2 > 0.0) {
      for (size_t d = 0; d < dims; ++d) diff[d] /= n2;
    }
    for (size_t d = 0; d < dims; ++d) {
      base[d * stride] += diff[d] * step;
    }
  }
}

double VivaldiSystem::Predict(NodeId a, NodeId b) const {
  const double* pa = coords_.lane(0) + a;
  const double* pb = coords_.lane(0) + b;
  const size_t stride = coords_.stride();
  double s = 0.0;
  for (size_t d = 0; d < params_.dims; ++d) {
    const double diff = pa[d * stride] - pb[d * stride];
    s += diff * diff;
  }
  return std::sqrt(s);
}

VivaldiSystem RunVivaldi(const net::LatencyView& lat,
                         const VivaldiSystem::Params& params,
                         const VivaldiRunOptions& options, Rng* rng) {
  const size_t n = lat.NumNodes();
  VivaldiSystem sys(n, params, rng);
  if (n < 2) return sys;

  // Fixed neighbor sets (half the samples), per Vivaldi's recommendation to
  // mix long-lived and random neighbors.
  std::vector<std::vector<NodeId>> fixed(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t k = std::min(options.fixed_neighbors, n - 1);
    for (size_t j = 0; j < k; ++j) {
      NodeId peer;
      do {
        peer = static_cast<NodeId>(rng->UniformInt(n));
      } while (peer == i);
      fixed[i].push_back(peer);
    }
  }

  std::vector<NodeId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);

  for (size_t round = 0; round < options.rounds; ++round) {
    rng->Shuffle(&order);
    for (NodeId self : order) {
      for (size_t s = 0; s < options.neighbors_per_round; ++s) {
        NodeId peer;
        if (!fixed[self].empty() && s % 2 == 0) {
          peer = fixed[self][rng->UniformInt(fixed[self].size())];
        } else {
          do {
            peer = static_cast<NodeId>(rng->UniformInt(n));
          } while (peer == self);
        }
        double rtt = lat.Latency(self, peer);
        if (!std::isfinite(rtt)) continue;
        if (options.rtt_noise_sigma > 0.0) {
          rtt *= std::exp(rng->Normal(0.0, options.rtt_noise_sigma));
        }
        sys.Update(self, peer, rtt);
      }
    }
  }
  return sys;
}

}  // namespace sbon::coords

#include "coords/vivaldi.h"

#include <algorithm>
#include <cmath>

namespace sbon::coords {

VivaldiSystem::VivaldiSystem(size_t num_nodes, const Params& params, Rng* rng)
    : params_(params),
      coords_(num_nodes, Vec(params.dims)),
      error_(num_nodes, params.initial_error),
      rng_(rng) {
  // Start at tiny random offsets so initial forces have direction.
  for (auto& c : coords_) {
    for (size_t d = 0; d < c.dims(); ++d) c[d] = rng->Uniform(-0.1, 0.1);
  }
}

void VivaldiSystem::Update(NodeId self, NodeId peer, double measured_rtt_ms) {
  UpdateAgainst(self, peer, coords_[peer], error_[peer], measured_rtt_ms);
}

void VivaldiSystem::UpdateAgainst(NodeId self, NodeId peer,
                                  const Vec& peer_coord, double peer_error,
                                  double measured_rtt_ms) {
  const double rtt = std::max(measured_rtt_ms, params_.min_rtt_ms);
  Vec diff = coords_[self];
  diff -= peer_coord;
  const double dist = diff.Norm();
  // Sample weight balances local vs remote confidence.
  const double w_self = error_[self];
  const double w_peer = peer_error;
  const double w = (w_self + w_peer) > 0.0 ? w_self / (w_self + w_peer) : 0.5;
  // Relative error of this sample.
  const double es = std::abs(dist - rtt) / rtt;
  // Update the local error with an EWMA weighted by confidence.
  error_[self] =
      es * params_.ce * w + error_[self] * (1.0 - params_.ce * w);
  error_[self] = std::clamp(error_[self], 0.0, 10.0);
  // Move along the spring force direction.
  const double delta = params_.cc * w;
  const Vec dir = diff.Unit(static_cast<uint64_t>(self) * 1000003u + peer);
  coords_[self].AddScaled(dir, delta * (rtt - dist));
}

VivaldiSystem RunVivaldi(const net::LatencyView& lat,
                         const VivaldiSystem::Params& params,
                         const VivaldiRunOptions& options, Rng* rng) {
  const size_t n = lat.NumNodes();
  VivaldiSystem sys(n, params, rng);
  if (n < 2) return sys;

  // Fixed neighbor sets (half the samples), per Vivaldi's recommendation to
  // mix long-lived and random neighbors.
  std::vector<std::vector<NodeId>> fixed(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t k = std::min(options.fixed_neighbors, n - 1);
    for (size_t j = 0; j < k; ++j) {
      NodeId peer;
      do {
        peer = static_cast<NodeId>(rng->UniformInt(n));
      } while (peer == i);
      fixed[i].push_back(peer);
    }
  }

  std::vector<NodeId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);

  for (size_t round = 0; round < options.rounds; ++round) {
    rng->Shuffle(&order);
    for (NodeId self : order) {
      for (size_t s = 0; s < options.neighbors_per_round; ++s) {
        NodeId peer;
        if (!fixed[self].empty() && s % 2 == 0) {
          peer = fixed[self][rng->UniformInt(fixed[self].size())];
        } else {
          do {
            peer = static_cast<NodeId>(rng->UniformInt(n));
          } while (peer == self);
        }
        double rtt = lat.Latency(self, peer);
        if (!std::isfinite(rtt)) continue;
        if (options.rtt_noise_sigma > 0.0) {
          rtt *= std::exp(rng->Normal(0.0, options.rtt_noise_sigma));
        }
        sys.Update(self, peer, rtt);
      }
    }
  }
  return sys;
}

}  // namespace sbon::coords

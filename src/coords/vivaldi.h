#ifndef SBON_COORDS_VIVALDI_H_
#define SBON_COORDS_VIVALDI_H_

#include <vector>

#include "common/coord_block.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/vec.h"
#include "net/shortest_path.h"

namespace sbon::coords {

/// Vivaldi decentralized network coordinates (Dabek et al., SIGCOMM'04),
/// the coordinate system the paper cites for constructing latency cost
/// spaces [17]. Each node keeps a coordinate and a confidence-weighted local
/// error; pairwise RTT samples pull/push coordinates like springs.
///
/// Coordinates live in a structure-of-arrays `CoordBlock` (one contiguous
/// lane per dimension) so the epoch's update sweep runs over unit-stride
/// lanes; `Coord()` materializes a `Vec` copy at the API edge. The update
/// kernel executes the exact scalar operation sequence of the historical
/// `Vec` implementation (diff, norm, EWMA error, unit direction with the
/// deterministic zero-norm tiebreak, scaled step), so fixed-seed results
/// are bit-identical across the layout change.
class VivaldiSystem {
 public:
  struct Params {
    size_t dims = 2;
    double ce = 0.25;           ///< Error damping constant.
    double cc = 0.25;           ///< Coordinate step constant.
    double initial_error = 1.0; ///< Starting local error estimate.
    double min_rtt_ms = 0.01;   ///< Samples below this are clamped.
  };

  VivaldiSystem(size_t num_nodes, const Params& params, Rng* rng);

  size_t NumNodes() const { return coords_.nodes(); }
  size_t dims() const { return params_.dims; }

  /// The node's coordinate, materialized as a value.
  Vec Coord(NodeId n) const { return coords_.NodeVec(n); }
  /// The structure-of-arrays coordinate store (lane-major, read-only).
  const CoordBlock& coords() const { return coords_; }
  double LocalError(NodeId n) const { return error_[n]; }

  /// Processes one RTT sample between `self` and `peer`, moving only `self`
  /// (each node runs the update for its own measurements, as in Vivaldi).
  void Update(NodeId self, NodeId peer, double measured_rtt_ms);

  /// Update reading the peer's state from explicit values instead of the
  /// live arrays — the building block of the deterministic parallel online
  /// update (coords::CoordinateManager feeds peers above `self` their
  /// epoch-start snapshot and peers below their fully-updated state,
  /// replicating the serial index-order sweep bit for bit). `peer` is still
  /// needed for the deterministic tiebreak direction.
  void UpdateAgainst(NodeId self, NodeId peer, const Vec& peer_coord,
                     double peer_error, double measured_rtt_ms);

  /// UpdateAgainst reading the peer coordinate out of a snapshot block
  /// (same lane-major shape as `coords()`) without materializing a `Vec`.
  void UpdateAgainstBlock(NodeId self, NodeId peer, const CoordBlock& peers,
                          double peer_error, double measured_rtt_ms);

  /// Predicted latency between two nodes: coordinate distance.
  double Predict(NodeId a, NodeId b) const;

 private:
  /// The one spring-update implementation behind the three entry points;
  /// reads the peer coordinate as `peer_base[d * peer_stride]`.
  void UpdateKernel(NodeId self, NodeId peer, const double* peer_base,
                    size_t peer_stride, double peer_error,
                    double measured_rtt_ms);

  Params params_;
  CoordBlock coords_;
  std::vector<double> error_;
  Rng* rng_;  // not owned; used for tiebreak directions
};

/// Options for driving Vivaldi to convergence against a latency oracle.
struct VivaldiRunOptions {
  size_t rounds = 60;               ///< Gossip rounds.
  size_t neighbors_per_round = 8;   ///< RTT samples per node per round.
  double rtt_noise_sigma = 0.05;    ///< Multiplicative LogNormal noise on
                                    ///< each sample (measurement error).
  /// Fraction of samples drawn from a fixed long-lived neighbor set (the
  /// rest are random nodes; mixing near and far neighbors is what makes
  /// Vivaldi embeddings globally accurate).
  size_t fixed_neighbors = 8;
};

/// Runs Vivaldi over simulated RTTs from `lat` (shortest-path latencies with
/// multiplicative noise) and leaves converged coordinates in the returned
/// system. Deterministic given `rng`'s state.
VivaldiSystem RunVivaldi(const net::LatencyView& lat,
                         const VivaldiSystem::Params& params,
                         const VivaldiRunOptions& options, Rng* rng);

}  // namespace sbon::coords

#endif  // SBON_COORDS_VIVALDI_H_

#include "coords/weighting.h"

#include <algorithm>
#include <cmath>

namespace sbon::coords {

double IdentityWeighting::Apply(double raw) const {
  return scale_ * std::max(0.0, raw);
}

double SquaredWeighting::Apply(double raw) const {
  const double x = std::max(0.0, raw);
  return scale_ * x * x;
}

double ExponentialWeighting::Apply(double raw) const {
  const double x = std::max(0.0, raw);
  return scale_ * (std::exp(alpha_ * x) - 1.0);
}

double ThresholdWeighting::Apply(double raw) const {
  const double x = std::max(0.0, raw);
  return x <= knee_ ? 0.0 : slope_ * (x - knee_);
}

std::unique_ptr<WeightingFn> MakeWeighting(const std::string& name,
                                           double scale) {
  if (name == "identity") return std::make_unique<IdentityWeighting>(scale);
  if (name == "squared") return std::make_unique<SquaredWeighting>(scale);
  if (name == "exponential") {
    return std::make_unique<ExponentialWeighting>(4.0, scale);
  }
  if (name == "threshold") return std::make_unique<ThresholdWeighting>();
  return nullptr;
}

}  // namespace sbon::coords

#ifndef SBON_COORDS_WEIGHTING_H_
#define SBON_COORDS_WEIGHTING_H_

#include <memory>
#include <string>

namespace sbon::coords {

/// A deployer-supplied weighting function for a scalar cost-space dimension
/// (paper Sec. 3.1): non-negative, with zero at the ideal value. The input is
/// the raw node metric (e.g. CPU load in [0,1]); the output is the node's
/// coordinate in that dimension.
class WeightingFn {
 public:
  virtual ~WeightingFn() = default;
  /// Maps raw metric value -> coordinate. Must be >= 0 and monotone
  /// non-decreasing in the metric for load-like metrics.
  virtual double Apply(double raw) const = 0;
  /// Short identifier used in bench output ("squared", "identity", ...).
  virtual std::string Name() const = 0;
};

/// w(x) = scale * x. The mildest penalty.
class IdentityWeighting : public WeightingFn {
 public:
  explicit IdentityWeighting(double scale = 1.0) : scale_(scale) {}
  double Apply(double raw) const override;
  std::string Name() const override { return "identity"; }

 private:
  double scale_;
};

/// w(x) = scale * x^2 — the paper's running example (Figure 2): discourages
/// the use of overloaded nodes super-linearly.
class SquaredWeighting : public WeightingFn {
 public:
  explicit SquaredWeighting(double scale = 1.0) : scale_(scale) {}
  double Apply(double raw) const override;
  std::string Name() const override { return "squared"; }

 private:
  double scale_;
};

/// w(x) = scale * (exp(alpha*x) - 1) — very sharp penalty near saturation.
class ExponentialWeighting : public WeightingFn {
 public:
  explicit ExponentialWeighting(double alpha = 4.0, double scale = 1.0)
      : alpha_(alpha), scale_(scale) {}
  double Apply(double raw) const override;
  std::string Name() const override { return "exponential"; }

 private:
  double alpha_;
  double scale_;
};

/// w(x) = 0 below the knee, then linear with a steep slope: admits any node
/// under the threshold equally, then penalizes hard.
class ThresholdWeighting : public WeightingFn {
 public:
  explicit ThresholdWeighting(double knee = 0.7, double slope = 10.0)
      : knee_(knee), slope_(slope) {}
  double Apply(double raw) const override;
  std::string Name() const override { return "threshold"; }

 private:
  double knee_;
  double slope_;
};

/// Factory by name; returns nullptr for unknown names.
std::unique_ptr<WeightingFn> MakeWeighting(const std::string& name,
                                           double scale = 1.0);

}  // namespace sbon::coords

#endif  // SBON_COORDS_WEIGHTING_H_

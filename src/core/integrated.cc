#include "core/integrated.h"

#include <utility>

#include "core/two_step.h"

namespace sbon::core {

IntegratedOptimizer::IntegratedOptimizer(
    OptimizerConfig config,
    std::shared_ptr<const placement::VirtualPlacer> placer)
    : config_(std::move(config)), placer_(std::move(placer)) {}

StatusOr<OptimizeResult> IntegratedOptimizer::Optimize(
    const query::QuerySpec& spec, const query::Catalog& catalog,
    overlay::Sbon* sbon) {
  auto plans = query::EnumeratePlans(spec, catalog, config_.enumeration);
  if (!plans.ok()) return plans.status();

  OptimizeResult best;
  bool have_best = false;
  size_t placements = 0;
  placement::MappingReport mapping_total;

  for (const query::LogicalPlan& plan : *plans) {
    auto circuit = overlay::Circuit::FromPlan(plan, catalog);
    if (!circuit.ok()) return circuit.status();
    placement::MappingReport report;
    Status st = PlaceAndMap(&circuit.value(), sbon, *placer_,
                            config_.mapping, &report);
    if (!st.ok()) return st;
    ++placements;
    mapping_total.dht_cost.lookups += report.dht_cost.lookups;
    mapping_total.dht_cost.routing_hops += report.dht_cost.routing_hops;
    mapping_total.dht_cost.ring_probes += report.dht_cost.ring_probes;
    mapping_total.services_mapped += report.services_mapped;
    mapping_total.total_mapping_error += report.total_mapping_error;
    mapping_total.load_overrides += report.load_overrides;

    auto cost = EstimateCost(*circuit, *sbon, config_.lambda);
    if (!cost.ok()) return cost.status();
    if (!have_best || *cost < best.estimated_cost) {
      best.circuit = std::move(circuit.value());
      best.estimated_cost = *cost;
      have_best = true;
    }
  }
  if (!have_best) return Status::Internal("no candidate circuit produced");
  best.plans_considered = plans->size();
  best.placements_evaluated = placements;
  best.mapping = mapping_total;
  return best;
}

}  // namespace sbon::core

#ifndef SBON_CORE_INTEGRATED_H_
#define SBON_CORE_INTEGRATED_H_

#include <memory>

#include "core/optimizer.h"

namespace sbon::core {

/// The paper's integrated cost-space optimizer (Sec. 3.3): enumerate a set
/// of candidate plans, *virtually place and physically map every one of
/// them* in the cost space — "this yields exactly one candidate circuit per
/// plan, with the cost of the circuit representing the current node and
/// network state" — and select the cheapest candidate circuit.
///
/// Virtual placement is computationally inexpensive (no services are
/// instantiated), which is what makes considering placement for every
/// candidate plan tractable at overlay scale.
class IntegratedOptimizer : public Optimizer {
 public:
  IntegratedOptimizer(OptimizerConfig config,
                      std::shared_ptr<const placement::VirtualPlacer> placer);

  StatusOr<OptimizeResult> Optimize(const query::QuerySpec& spec,
                                    const query::Catalog& catalog,
                                    overlay::Sbon* sbon) override;
  std::string Name() const override { return "integrated"; }

  const OptimizerConfig& config() const { return config_; }
  const placement::VirtualPlacer& placer() const { return *placer_; }

 private:
  OptimizerConfig config_;
  std::shared_ptr<const placement::VirtualPlacer> placer_;
};

}  // namespace sbon::core

#endif  // SBON_CORE_INTEGRATED_H_

#include "core/multi_query.h"

#include <algorithm>
#include <set>
#include <utility>

#include "core/two_step.h"
#include "overlay/metrics.h"

namespace sbon::core {
namespace {

// A compatible, in-radius instance for one placeable vertex.
struct ReuseCandidate {
  int vertex = -1;
  const overlay::ServiceInstance* instance = nullptr;
  double distance = 0.0;
};

// Ideal full-space target for a virtual coordinate (zero scalars).
Vec IdealTarget(const Vec& virtual_coord, size_t scalar_dims) {
  Vec t = virtual_coord;
  for (size_t i = 0; i < scalar_dims; ++i) t.Append(0.0);
  return t;
}

double UpstreamLatencyOf(const overlay::ServiceInstance& inst,
                         const overlay::Sbon& sbon) {
  for (CircuitId cid : inst.circuits) {
    const overlay::Circuit* src = sbon.FindCircuit(cid);
    if (src == nullptr) continue;
    auto lat = overlay::UpstreamLatencyToService(*src, inst.id,
                                                 sbon.latency());
    if (lat.ok()) return *lat;
  }
  return 0.0;
}

}  // namespace

MultiQueryOptimizer::MultiQueryOptimizer(
    OptimizerConfig config,
    std::shared_ptr<const placement::VirtualPlacer> placer, Params params)
    : config_(std::move(config)), placer_(std::move(placer)),
      params_(params) {}

StatusOr<OptimizeResult> MultiQueryOptimizer::Optimize(
    const query::QuerySpec& spec, const query::Catalog& catalog,
    overlay::Sbon* sbon) {
  auto plans = query::EnumeratePlans(spec, catalog, config_.enumeration);
  if (!plans.ok()) return plans.status();

  const size_t scalar_dims = sbon->cost_space().spec().num_scalar_dims();
  OptimizeResult best;
  bool have_best = false;

  // Reused across reuse passes: surviving instances and their hosts, so the
  // cost-space pruning distance runs as one batched kernel call per service
  // instead of a per-instance strided probe.
  std::vector<const overlay::ServiceInstance*> inst_scratch;
  std::vector<NodeId> host_scratch;
  std::vector<double> dist_scratch;

  for (const query::LogicalPlan& plan : *plans) {
    auto base = overlay::Circuit::FromPlan(plan, catalog);
    if (!base.ok()) return base.status();
    placement::MappingReport report;
    Status st = PlaceAndMap(&base.value(), sbon, *placer_, config_.mapping,
                            &report);
    if (!st.ok()) return st;
    best.placements_evaluated += 1;

    auto base_cost = EstimateCost(*base, *sbon, config_.lambda);
    if (!base_cost.ok()) return base_cost.status();
    overlay::Circuit current = std::move(base.value());
    double current_cost = *base_cost;
    size_t current_reused = 0;

    // Greedy reuse passes.
    for (size_t pass = 0;
         pass < params_.max_reuse_bindings && params_.reuse_radius != 0.0;
         ++pass) {
      // Consider larger subtrees first (bigger savings when reused).
      std::vector<int> order = current.PlaceableVertices();
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return plan.op(a).stream_set.size() > plan.op(b).stream_set.size();
      });

      bool improved = false;
      overlay::Circuit pass_best;
      double pass_best_cost = current_cost;
      size_t pass_best_extra_reused = 0;

      for (int v : order) {
        const uint64_t sig = plan.OpSignature(v);
        const auto instances = sbon->ServicesWithSignature(sig);
        if (instances.empty()) continue;

        // Cost-space pruning: keep instances whose hosts fall inside the
        // radius-r hyper-sphere around the service's virtual coordinate.
        std::vector<ReuseCandidate> cands;
        if (params_.reuse_radius < 0.0) {
          inst_scratch.assign(instances.begin(), instances.end());
        } else {
          // Hyper-sphere search via the Hilbert/Chord index, charged as
          // DHT traffic; only nodes the sphere search returns are eligible.
          dht::IndexQueryCost qcost;
          auto nearby = sbon->index().WithinRadius(
              IdealTarget(current.vertex(v).virtual_coord, scalar_dims),
              params_.reuse_radius, &qcost);
          report.dht_cost.lookups += qcost.lookups;
          report.dht_cost.routing_hops += qcost.routing_hops;
          report.dht_cost.ring_probes += qcost.ring_probes;
          if (!nearby.ok()) return nearby.status();
          std::set<NodeId> in_sphere;
          for (const dht::IndexMatch& m : *nearby) in_sphere.insert(m.node);
          inst_scratch.clear();
          for (const overlay::ServiceInstance* inst : instances) {
            if (in_sphere.count(inst->host) != 0) inst_scratch.push_back(inst);
          }
        }
        // One batched distance sweep over the surviving instances' hosts.
        host_scratch.clear();
        for (const overlay::ServiceInstance* inst : inst_scratch) {
          host_scratch.push_back(inst->host);
        }
        dist_scratch.resize(host_scratch.size());
        sbon->cost_space().VectorDistancesToMany(
            current.vertex(v).virtual_coord, host_scratch.data(),
            host_scratch.size(), dist_scratch.data());
        for (size_t i = 0; i < inst_scratch.size(); ++i) {
          cands.push_back(ReuseCandidate{v, inst_scratch[i], dist_scratch[i]});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const ReuseCandidate& a, const ReuseCandidate& b) {
                    return a.distance < b.distance;
                  });
        if (cands.size() > params_.max_candidates_per_service) {
          cands.resize(params_.max_candidates_per_service);
        }
        best.reuse_candidates_considered += cands.size();

        for (const ReuseCandidate& rc : cands) {
          overlay::Circuit variant = current;  // deep copy
          variant.BindReusedSubtree(
              rc.vertex, rc.instance->id, rc.instance->host,
              UpstreamLatencyOf(*rc.instance, *sbon));
          Status pst = PlaceAndMap(&variant, sbon, *placer_, config_.mapping,
                                   nullptr);
          if (!pst.ok()) return pst;
          best.placements_evaluated += 1;
          auto vcost = EstimateCost(variant, *sbon, config_.lambda);
          if (!vcost.ok()) return vcost.status();
          if (*vcost < pass_best_cost) {
            pass_best = std::move(variant);
            pass_best_cost = *vcost;
            pass_best_extra_reused = 1;
            improved = true;
          }
        }
      }
      if (!improved) break;
      current = std::move(pass_best);
      current_cost = pass_best_cost;
      current_reused += pass_best_extra_reused;
    }

    if (!have_best || current_cost < best.estimated_cost) {
      best.circuit = std::move(current);
      best.estimated_cost = current_cost;
      best.services_reused = current_reused;
      have_best = true;
    }
    best.mapping.dht_cost.lookups += report.dht_cost.lookups;
    best.mapping.dht_cost.routing_hops += report.dht_cost.routing_hops;
    best.mapping.dht_cost.ring_probes += report.dht_cost.ring_probes;
    best.mapping.services_mapped += report.services_mapped;
    best.mapping.total_mapping_error += report.total_mapping_error;
    best.mapping.load_overrides += report.load_overrides;
  }
  if (!have_best) return Status::Internal("no candidate circuit produced");
  best.plans_considered = plans->size();
  return best;
}

}  // namespace sbon::core

#ifndef SBON_CORE_MULTI_QUERY_H_
#define SBON_CORE_MULTI_QUERY_H_

#include <memory>

#include "core/optimizer.h"

namespace sbon::core {

/// Multi-query optimization with cost-space pruning (paper Sec. 3.4).
///
/// When a new circuit is optimized, existing service instances can be
/// reused — but only instances whose hosts fall within a hyper-sphere of
/// radius `reuse_radius` around the new service's virtual coordinate are
/// considered ("query plans that involve operators hosted on physical nodes
/// that are far away in the cost space are less likely to be useful and
/// thus can be ignored"). The sphere search runs over the Hilbert/Chord
/// coordinate index, so pruning also bounds DHT traffic.
///
/// radius = 0 disables reuse (degenerates to the integrated optimizer);
/// radius < 0 means unbounded (every compatible instance is considered —
/// the "no pruning" upper baseline whose optimizer work Figure 4 argues is
/// unnecessary).
class MultiQueryOptimizer : public Optimizer {
 public:
  struct Params {
    double reuse_radius = 50.0;
    /// Greedy reuse passes per candidate circuit (each pass may bind one
    /// more existing instance).
    size_t max_reuse_bindings = 4;
    /// Cap on instances evaluated per service (closest first).
    size_t max_candidates_per_service = 8;
  };

  MultiQueryOptimizer(OptimizerConfig config,
                      std::shared_ptr<const placement::VirtualPlacer> placer,
                      Params params);

  StatusOr<OptimizeResult> Optimize(const query::QuerySpec& spec,
                                    const query::Catalog& catalog,
                                    overlay::Sbon* sbon) override;
  std::string Name() const override { return "multi-query"; }

  const Params& params() const { return params_; }

 private:
  OptimizerConfig config_;
  std::shared_ptr<const placement::VirtualPlacer> placer_;
  Params params_;
};

}  // namespace sbon::core

#endif  // SBON_CORE_MULTI_QUERY_H_

#include "core/optimizer.h"

#include "overlay/metrics.h"

namespace sbon::core {

StatusOr<double> EstimateCost(const overlay::Circuit& circuit,
                              const overlay::Sbon& sbon, double lambda) {
  auto cost = overlay::EstimateCircuitCostInSpace(circuit, sbon.cost_space());
  if (!cost.ok()) return cost.status();
  return cost->Total(lambda);
}

}  // namespace sbon::core

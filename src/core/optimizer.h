#ifndef SBON_CORE_OPTIMIZER_H_
#define SBON_CORE_OPTIMIZER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "dht/coord_index.h"
#include "overlay/sbon.h"
#include "placement/mapping.h"
#include "placement/relaxation.h"
#include "placement/virtual_placement.h"
#include "query/enumerate.h"
#include "query/query_spec.h"

namespace sbon::core {

/// Shared optimizer configuration.
struct OptimizerConfig {
  /// Weight of the node-load penalty relative to network usage when ranking
  /// candidate circuits.
  double lambda = 1.0;
  /// Plan enumeration (the integrated optimizer places every one of the
  /// top-K candidates; the two-step baseline uses K=1 internally).
  query::EnumerationOptions enumeration;
  /// Physical mapping behaviour.
  placement::MappingOptions mapping;
};

/// Everything an optimization run produced: the winning placed circuit plus
/// accounting of the work performed.
struct OptimizeResult {
  overlay::Circuit circuit;  ///< fully placed; not yet installed
  /// Cost-space estimate the optimizer ranked this circuit by (a deployed
  /// optimizer cannot see true latencies; benches measure those separately).
  double estimated_cost = 0.0;
  size_t plans_considered = 0;
  size_t placements_evaluated = 0;  ///< candidate circuits placed + mapped
  size_t reuse_candidates_considered = 0;
  size_t services_reused = 0;
  placement::MappingReport mapping;
};

/// Interface of a query optimizer operating against a live SBON.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Produces a placed (not installed) circuit answering `spec`.
  virtual StatusOr<OptimizeResult> Optimize(const query::QuerySpec& spec,
                                            const query::Catalog& catalog,
                                            overlay::Sbon* sbon) = 0;

  virtual std::string Name() const = 0;
};

/// Ranking metric shared by all optimizers: cost-space estimate of network
/// usage plus lambda times the scalar (load) penalty of newly used hosts.
StatusOr<double> EstimateCost(const overlay::Circuit& circuit,
                              const overlay::Sbon& sbon, double lambda);

}  // namespace sbon::core

#endif  // SBON_CORE_OPTIMIZER_H_

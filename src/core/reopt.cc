#include "core/reopt.h"

#include <utility>

#include "core/two_step.h"
#include "overlay/metrics.h"

namespace sbon::core {

StatusOr<LocalReoptReport> LocalReoptimize(
    overlay::Sbon* sbon, CircuitId circuit_id,
    const placement::VirtualPlacer& placer, const ReoptConfig& config) {
  const overlay::Circuit* live = sbon->FindCircuit(circuit_id);
  if (live == nullptr) return Status::NotFound("no such circuit");

  LocalReoptReport report;
  auto before = EstimateCost(*live, *sbon, config.lambda);
  if (!before.ok()) return before.status();
  report.estimated_cost_before = *before;
  report.estimated_cost_after = *before;

  // Re-place a scratch copy against the current cost space.
  overlay::Circuit scratch = *live;
  Status st = PlaceAndMap(&scratch, sbon, placer, config.mapping, nullptr);
  if (!st.ok()) return st;
  auto after = EstimateCost(scratch, *sbon, config.lambda);
  if (!after.ok()) return after.status();

  report.services_considered = scratch.PlaceableVertices().size();
  if (*after >=
      *before * (1.0 - config.migration_hysteresis)) {
    return report;  // not worth moving anything
  }

  // Adopt the improved placement by migrating the services that moved,
  // remembering the old hosts so the move can be verified and rolled back:
  // the scratch estimate was computed against pre-migration loads, and a
  // migration shifts the service's own load onto its new host.
  std::vector<std::pair<ServiceInstanceId, NodeId>> undo;
  for (int v : scratch.PlaceableVertices()) {
    const overlay::CircuitVertex& new_v = scratch.vertex(v);
    const overlay::CircuitVertex& old_v = live->vertex(v);
    if (old_v.service == kInvalidService) continue;
    if (new_v.host == old_v.host) continue;
    const overlay::ServiceInstance* inst = sbon->FindService(old_v.service);
    if (inst == nullptr) continue;
    if (inst->Shared() && !config.migrate_shared_services) continue;
    Status mig = sbon->MigrateService(old_v.service, new_v.host);
    if (!mig.ok()) return mig;
    undo.emplace_back(old_v.service, old_v.host);
    ++report.migrations;
  }
  auto final_cost = EstimateCost(*sbon->FindCircuit(circuit_id), *sbon,
                                 config.lambda);
  if (!final_cost.ok()) return final_cost.status();
  if (*final_cost >= *before && !undo.empty()) {
    // Verification failed (load displacement ate the predicted gain):
    // roll every service back to its original host.
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      Status back = sbon->MigrateService(it->first, it->second);
      if (!back.ok()) return back;
    }
    report.migrations = 0;
    report.estimated_cost_after = *before;
    return report;
  }
  report.estimated_cost_after = *final_cost;
  return report;
}

StatusOr<FullReoptReport> FullReoptimize(overlay::Sbon* sbon,
                                         CircuitId circuit_id,
                                         const query::QuerySpec& spec,
                                         const query::Catalog& catalog,
                                         Optimizer* optimizer,
                                         const ReoptConfig& config) {
  const overlay::Circuit* live = sbon->FindCircuit(circuit_id);
  if (live == nullptr) return Status::NotFound("no such circuit");

  FullReoptReport report;
  auto before = EstimateCost(*live, *sbon, config.lambda);
  if (!before.ok()) return before.status();
  report.estimated_cost_before = *before;

  auto candidate = optimizer->Optimize(spec, catalog, sbon);
  if (!candidate.ok()) return candidate.status();
  report.estimated_cost_candidate = candidate->estimated_cost;
  overlay::Circuit circuit = std::move(candidate->circuit);
  report.candidate = std::move(*candidate);
  report.candidate.circuit = overlay::Circuit();

  if (report.estimated_cost_candidate <
      *before * (1.0 - config.replan_threshold)) {
    // Deploy the parallel circuit first, then cancel the original.
    auto new_id = sbon->InstallCircuit(std::move(circuit));
    if (!new_id.ok()) return new_id.status();
    Status rm = sbon->RemoveCircuit(circuit_id);
    if (!rm.ok()) return rm;
    report.redeployed = true;
    report.new_circuit = *new_id;
  }
  return report;
}

}  // namespace sbon::core

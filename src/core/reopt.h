#ifndef SBON_CORE_REOPT_H_
#define SBON_CORE_REOPT_H_

#include "core/optimizer.h"

namespace sbon::core {

/// Configuration of circuit re-optimization (paper Sec. 3.3): as network and
/// node dynamics change, hosting nodes can locally re-run placement and
/// migrate services; stronger drifts trigger a full re-optimization that
/// deploys a parallel circuit and cancels the original.
struct ReoptConfig {
  /// Minimum fractional estimated-cost improvement before any migration is
  /// performed (hysteresis against oscillation).
  double migration_hysteresis = 0.05;
  /// Minimum fractional improvement before a full re-plan replaces the
  /// running circuit.
  double replan_threshold = 0.15;
  double lambda = 1.0;
  placement::MappingOptions mapping;
  /// Shared service instances serve several circuits; migrating them for
  /// one circuit's benefit can hurt the others, so local re-optimization
  /// skips them unless this is set.
  bool migrate_shared_services = false;
};

/// Outcome of one local re-optimization pass.
struct LocalReoptReport {
  size_t services_considered = 0;
  size_t migrations = 0;
  double estimated_cost_before = 0.0;
  double estimated_cost_after = 0.0;
};

/// Re-runs virtual placement + mapping for `circuit_id` against the current
/// cost space and migrates services whose new hosts improve the estimated
/// cost by at least the hysteresis fraction. Local: no plan rewriting.
StatusOr<LocalReoptReport> LocalReoptimize(
    overlay::Sbon* sbon, CircuitId circuit_id,
    const placement::VirtualPlacer& placer, const ReoptConfig& config);

/// Outcome of a full re-optimization attempt.
struct FullReoptReport {
  bool redeployed = false;
  CircuitId new_circuit = kInvalidCircuit;
  double estimated_cost_before = 0.0;
  double estimated_cost_candidate = 0.0;
  /// Accounting of the candidate optimization run (plans/placements/reuse/
  /// mapping work). Its `circuit` member is left empty: on redeploy the
  /// installed circuit is the authoritative copy, otherwise the candidate
  /// was discarded.
  OptimizeResult candidate;
};

/// Runs `optimizer` afresh for the circuit's original spec; if the candidate
/// circuit is cheaper than the running one by more than `replan_threshold`,
/// deploys it in parallel and cancels the original (the paper's stronger
/// re-optimization). Returns the report either way.
StatusOr<FullReoptReport> FullReoptimize(overlay::Sbon* sbon,
                                         CircuitId circuit_id,
                                         const query::QuerySpec& spec,
                                         const query::Catalog& catalog,
                                         Optimizer* optimizer,
                                         const ReoptConfig& config);

}  // namespace sbon::core

#endif  // SBON_CORE_REOPT_H_

#include "core/two_step.h"

#include <utility>

namespace sbon::core {

Status PlaceAndMap(overlay::Circuit* circuit, overlay::Sbon* sbon,
                   const placement::VirtualPlacer& placer,
                   const placement::MappingOptions& mapping,
                   placement::MappingReport* report) {
  Status st = placer.Place(circuit, sbon->cost_space());
  if (!st.ok()) return st;
  return placement::MapCircuit(circuit, *sbon, mapping, report);
}

TwoStepOptimizer::TwoStepOptimizer(
    OptimizerConfig config,
    std::shared_ptr<const placement::VirtualPlacer> placer)
    : config_(std::move(config)), placer_(std::move(placer)) {}

StatusOr<OptimizeResult> TwoStepOptimizer::Optimize(
    const query::QuerySpec& spec, const query::Catalog& catalog,
    overlay::Sbon* sbon) {
  // Step 1: network-blind plan generation — classical DP, one winner.
  query::EnumerationOptions enum_opts = config_.enumeration;
  enum_opts.top_k = 1;
  auto plans = query::EnumeratePlans(spec, catalog, enum_opts);
  if (!plans.ok()) return plans.status();

  // Step 2: place that plan.
  auto circuit = overlay::Circuit::FromPlan((*plans)[0], catalog);
  if (!circuit.ok()) return circuit.status();
  OptimizeResult result;
  Status st = PlaceAndMap(&circuit.value(), sbon, *placer_, config_.mapping,
                          &result.mapping);
  if (!st.ok()) return st;

  auto cost = EstimateCost(*circuit, *sbon, config_.lambda);
  if (!cost.ok()) return cost.status();
  result.circuit = std::move(circuit.value());
  result.estimated_cost = *cost;
  result.plans_considered = 1;
  result.placements_evaluated = 1;
  return result;
}

}  // namespace sbon::core

#ifndef SBON_CORE_TWO_STEP_H_
#define SBON_CORE_TWO_STEP_H_

#include <memory>

#include "core/optimizer.h"

namespace sbon::core {

/// The classical two-step baseline (paper Sec. 2.3): plan generation runs
/// network-blind — dynamic programming picks the single plan minimizing
/// intermediate data volume — and only then is that one plan placed
/// (virtual placement + physical mapping). Everything after plan selection
/// is identical to the integrated optimizer, so measured differences are
/// attributable to integration, not placement machinery.
class TwoStepOptimizer : public Optimizer {
 public:
  TwoStepOptimizer(OptimizerConfig config,
                   std::shared_ptr<const placement::VirtualPlacer> placer);

  StatusOr<OptimizeResult> Optimize(const query::QuerySpec& spec,
                                    const query::Catalog& catalog,
                                    overlay::Sbon* sbon) override;
  std::string Name() const override { return "two-step"; }

 private:
  OptimizerConfig config_;
  std::shared_ptr<const placement::VirtualPlacer> placer_;
};

/// Places and maps an unplaced circuit in one go (virtual placement with
/// `placer`, then DHT mapping); shared by all optimizers.
Status PlaceAndMap(overlay::Circuit* circuit, overlay::Sbon* sbon,
                   const placement::VirtualPlacer& placer,
                   const placement::MappingOptions& mapping,
                   placement::MappingReport* report);

}  // namespace sbon::core

#endif  // SBON_CORE_TWO_STEP_H_

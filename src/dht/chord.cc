#include "dht/chord.h"

#include <algorithm>
#include <cassert>

namespace sbon::dht {
namespace {

// True if `x` lies in the half-open clockwise interval (a, b].
bool InIntervalOpenClosed(const U128& x, const U128& a, const U128& b) {
  // Ring distance trick: x in (a, b] iff (x - a) <= (b - a) and x != a.
  if (x == a) return false;
  return (x - a) <= (b - a);
}

}  // namespace

void ChordRing::Join(U128 key, NodeId node) {
  // Perturb exact duplicates so every member has a unique ring key.
  U128 k = key;
  auto exists = [&](const U128& candidate) {
    return std::any_of(members_.begin(), members_.end(),
                       [&](const Member& m) { return m.key == candidate; });
  };
  while (exists(k)) k = k + U128::FromU64((static_cast<uint64_t>(node) << 1) | 1);
  members_.push_back(Member{k, node});
  std::sort(members_.begin(), members_.end(),
            [](const Member& a, const Member& b) { return a.key < b.key; });
  stale_ = true;
}

void ChordRing::Leave(NodeId node) {
  members_.erase(std::remove_if(members_.begin(), members_.end(),
                                [&](const Member& m) {
                                  return m.node == node;
                                }),
                 members_.end());
  stale_ = true;
}

size_t ChordRing::SuccessorIndex(U128 key) const {
  assert(!members_.empty());
  // First member with key >= `key`, wrapping to 0.
  const auto it = std::lower_bound(
      members_.begin(), members_.end(), key,
      [](const Member& m, const U128& k) { return m.key < k; });
  if (it == members_.end()) return 0;
  return static_cast<size_t>(it - members_.begin());
}

void ChordRing::Stabilize() {
  const size_t n = members_.size();
  fingers_.assign(n, {});
  for (size_t m = 0; m < n; ++m) {
    fingers_[m].reserve(128);
    for (unsigned i = 0; i < 128; ++i) {
      const U128 target = members_[m].key + PowerOfTwo(i);
      fingers_[m].push_back(static_cast<uint32_t>(SuccessorIndex(target)));
    }
  }
  stale_ = false;
}

StatusOr<ChordRing::LookupResult> ChordRing::Lookup(U128 key,
                                                    U128 origin_key) const {
  if (members_.empty()) return Status::FailedPrecondition("empty ring");
  if (stale_) return Status::FailedPrecondition("ring not stabilized");

  // Start at the member owning origin_key (its successor).
  size_t cur = SuccessorIndex(origin_key);
  size_t hops = 0;
  const size_t n = members_.size();
  const size_t target_idx = SuccessorIndex(key);

  // Greedy Chord routing: while the key is not between cur and its
  // immediate successor, forward to the closest preceding finger.
  while (cur != target_idx) {
    const U128& cur_key = members_[cur].key;
    const size_t succ = (cur + 1) % n;
    if (InIntervalOpenClosed(key, cur_key, members_[succ].key)) {
      cur = succ;
      ++hops;
      break;
    }
    // Closest preceding finger: the largest finger strictly between
    // cur_key and key.
    size_t next = succ;
    for (unsigned i = 128; i-- > 0;) {
      const size_t f = fingers_[cur][i];
      const U128& fkey = members_[f].key;
      if (f != cur && InIntervalOpenClosed(fkey, cur_key, key) &&
          fkey != key) {
        next = f;
        break;
      }
    }
    if (next == cur) {
      next = succ;  // fallback: always make progress
    }
    cur = next;
    ++hops;
    if (hops > n + 130) {
      return Status::Internal("chord routing failed to converge");
    }
  }
  LookupResult r;
  r.node = members_[cur].node;
  r.key = members_[cur].key;
  r.hops = hops;
  r.member_index = cur;
  return r;
}

StatusOr<ChordRing::LookupResult> ChordRing::Lookup(U128 key) const {
  if (members_.empty()) return Status::FailedPrecondition("empty ring");
  return Lookup(key, members_[0].key);
}

const ChordRing::Member& ChordRing::SuccessorAt(size_t member_index,
                                                size_t i) const {
  return members_[(member_index + i) % members_.size()];
}

const ChordRing::Member& ChordRing::PredecessorAt(size_t member_index,
                                                  size_t i) const {
  const size_t n = members_.size();
  return members_[(member_index + n - (i % n)) % n];
}

}  // namespace sbon::dht

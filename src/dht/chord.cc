#include "dht/chord.h"

#include <algorithm>
#include <cassert>

namespace sbon::dht {
namespace {

// True if `x` lies in the half-open clockwise interval (a, b].
bool InIntervalOpenClosed(const U128& x, const U128& a, const U128& b) {
  // Ring distance trick: x in (a, b] iff (x - a) <= (b - a) and x != a.
  if (x == a) return false;
  return (x - a) <= (b - a);
}

}  // namespace

void ChordRing::Join(U128 key, NodeId node) {
  if (in_bulk_) {
    // Same perturbation rule against the map: "does this exact key exist?"
    // is what the vector's lower_bound equality probe asks, so the final
    // key assignment is identical to the sequential vector path.
    U128 k = key;
    while (bulk_members_.count(k) != 0) {
      k = k + U128::FromU64((static_cast<uint64_t>(node) << 1) | 1);
    }
    bulk_members_.emplace(k, node);
    bulk_key_of_[node] = k;
    stale_ = true;
    return;
  }
  // Perturb exact duplicates so every member has a unique ring key.
  // `members_` stays sorted by key, so existence is a binary search and the
  // new member is spliced in at its lower bound instead of re-sorting the
  // whole ring on every join.
  const auto key_less = [](const Member& m, const U128& k) {
    return m.key < k;
  };
  U128 k = key;
  auto pos = std::lower_bound(members_.begin(), members_.end(), k, key_less);
  while (pos != members_.end() && pos->key == k) {
    k = k + U128::FromU64((static_cast<uint64_t>(node) << 1) | 1);
    pos = std::lower_bound(members_.begin(), members_.end(), k, key_less);
  }
  members_.insert(pos, Member{k, node});
  stale_ = true;
}

void ChordRing::Leave(NodeId node) {
  if (in_bulk_) {
    auto it = bulk_key_of_.find(node);
    if (it != bulk_key_of_.end()) {
      bulk_members_.erase(it->second);
      bulk_key_of_.erase(it);
      stale_ = true;
    }
    return;
  }
  members_.erase(std::remove_if(members_.begin(), members_.end(),
                                [&](const Member& m) {
                                  return m.node == node;
                                }),
                 members_.end());
  stale_ = true;
}

void ChordRing::BeginBulk() {
  if (in_bulk_) return;
  in_bulk_ = true;
  bulk_members_.clear();
  bulk_key_of_.clear();
  bulk_key_of_.reserve(members_.size());
  for (const Member& m : members_) {
    bulk_members_.emplace(m.key, m.node);
    bulk_key_of_.emplace(m.node, m.key);
  }
}

void ChordRing::EndBulk() {
  if (!in_bulk_) return;
  in_bulk_ = false;
  members_.clear();
  members_.reserve(bulk_members_.size());
  for (const auto& [k, node] : bulk_members_) {
    members_.push_back(Member{k, node});
  }
  bulk_members_.clear();
  bulk_key_of_.clear();
}

size_t ChordRing::SuccessorIndex(U128 key) const {
  assert(!members_.empty());
  // First member with key >= `key`, wrapping to 0.
  const auto it = std::lower_bound(
      members_.begin(), members_.end(), key,
      [](const Member& m, const U128& k) { return m.key < k; });
  if (it == members_.end()) return 0;
  return static_cast<size_t>(it - members_.begin());
}

void ChordRing::Stabilize() {
  const size_t n = members_.size();
  fingers_.resize(n * kFingerBits);
  uint32_t* row = fingers_.data();
  for (size_t m = 0; m < n; ++m, row += kFingerBits) {
    for (unsigned i = 0; i < kFingerBits; ++i) {
      const U128 target = members_[m].key + PowerOfTwo(i);
      row[i] = static_cast<uint32_t>(SuccessorIndex(target));
    }
  }
  stale_ = false;
}

StatusOr<ChordRing::LookupResult> ChordRing::Lookup(U128 key,
                                                    U128 origin_key) const {
  if (members_.empty()) return Status::FailedPrecondition("empty ring");
  if (stale_) return Status::FailedPrecondition("ring not stabilized");

  // Start at the member owning origin_key (its successor).
  size_t cur = SuccessorIndex(origin_key);
  size_t hops = 0;
  const size_t n = members_.size();
  const size_t target_idx = SuccessorIndex(key);

  // Greedy Chord routing: while the key is not between cur and its
  // immediate successor, forward to the closest preceding finger.
  while (cur != target_idx) {
    const U128& cur_key = members_[cur].key;
    const size_t succ = (cur + 1) % n;
    if (InIntervalOpenClosed(key, cur_key, members_[succ].key)) {
      cur = succ;
      ++hops;
      break;
    }
    // Closest preceding finger: the largest finger strictly between
    // cur_key and key.
    size_t next = succ;
    const uint32_t* cur_fingers = fingers_.data() + cur * kFingerBits;
    for (unsigned i = kFingerBits; i-- > 0;) {
      const size_t f = cur_fingers[i];
      const U128& fkey = members_[f].key;
      if (f != cur && InIntervalOpenClosed(fkey, cur_key, key) &&
          fkey != key) {
        next = f;
        break;
      }
    }
    if (next == cur) {
      next = succ;  // fallback: always make progress
    }
    cur = next;
    ++hops;
    if (hops > n + 130) {
      return Status::Internal("chord routing failed to converge");
    }
  }
  LookupResult r;
  r.node = members_[cur].node;
  r.key = members_[cur].key;
  r.hops = hops;
  r.member_index = cur;
  return r;
}

StatusOr<ChordRing::LookupResult> ChordRing::Lookup(U128 key) const {
  if (members_.empty()) return Status::FailedPrecondition("empty ring");
  return Lookup(key, members_[0].key);
}

const ChordRing::Member& ChordRing::SuccessorAt(size_t member_index,
                                                size_t i) const {
  return members_[(member_index + i) % members_.size()];
}

const ChordRing::Member& ChordRing::PredecessorAt(size_t member_index,
                                                  size_t i) const {
  const size_t n = members_.size();
  return members_[(member_index + n - (i % n)) % n];
}

}  // namespace sbon::dht

#ifndef SBON_DHT_CHORD_H_
#define SBON_DHT_CHORD_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "dht/u128.h"

namespace sbon::dht {

/// A simulated Chord ring [19]: the decentralized catalog the paper proposes
/// for mapping cost-space coordinates back to physical nodes (Sec. 3.2).
///
/// This is a functional simulation, not a networked implementation: the ring
/// membership is held centrally, but *lookups are routed* exactly as Chord
/// routes them — greedy closest-preceding-finger hops — so the library can
/// account for lookup cost (hop counts) the way a deployment would pay it.
class ChordRing {
 public:
  struct Member {
    U128 key;
    NodeId node = kInvalidNode;
  };

  struct LookupResult {
    NodeId node = kInvalidNode;  ///< successor(key) owner
    U128 key;                    ///< its ring key
    size_t hops = 0;             ///< routing hops taken
    size_t member_index = 0;     ///< index into sorted membership
  };

  /// Adds a member with the given ring key. Duplicate exact keys are
  /// perturbed by the node id (low bits) to keep keys unique.
  void Join(U128 key, NodeId node);
  /// Removes all entries owned by `node`.
  void Leave(NodeId node);

  /// Bulk-update window for mass re-publish (index refresh, bring-up): the
  /// sorted membership vector makes each Leave/Join O(members) — quadratic
  /// when every node re-publishes in one refresh. Between BeginBulk and
  /// EndBulk the membership lives in an ordered map instead, so the same
  /// Join/Leave sequence (including duplicate-key perturbation, which only
  /// asks "does this exact key exist?") costs O(log members) per call and
  /// produces a bit-identical final membership. Lookups and successor walks
  /// are invalid inside the window — the ring is stale until the Stabilize
  /// that follows EndBulk, exactly as after any Join/Leave.
  void BeginBulk();
  void EndBulk();

  size_t NumMembers() const {
    return in_bulk_ ? bulk_members_.size() : members_.size();
  }
  const std::vector<Member>& members() const { return members_; }

  /// (Re)builds finger tables. Must be called after membership changes and
  /// before Lookup; Join/Leave mark the tables stale.
  void Stabilize();

  /// Chord-routes from the member owning `origin_key` toward `key`;
  /// returns successor(key). Requires a stabilized, non-empty ring.
  StatusOr<LookupResult> Lookup(U128 key, U128 origin_key) const;

  /// Lookup starting from the first member (deterministic origin).
  StatusOr<LookupResult> Lookup(U128 key) const;

  /// The i-th member clockwise from `member_index` (wraps).
  const Member& SuccessorAt(size_t member_index, size_t i) const;
  /// The i-th member counter-clockwise from `member_index` (wraps).
  const Member& PredecessorAt(size_t member_index, size_t i) const;

 private:
  /// Finger-table entries per member (one per key bit).
  static constexpr unsigned kFingerBits = 128;

  // Sorted by key.
  std::vector<Member> members_;
  // Bulk-window state: key-sorted membership plus the reverse index Leave
  // needs (each node holds at most one ring entry — Publish always Leaves
  // before re-Joining).
  bool in_bulk_ = false;
  std::map<U128, NodeId> bulk_members_;
  std::unordered_map<NodeId, U128> bulk_key_of_;
  // Flat row-major finger table: fingers_[m * kFingerBits + i] = index of
  // successor(members_[m].key + 2^i). Kept flat so Stabilize rewrites it in
  // place without per-member allocations and lookups walk one cache-friendly
  // row.
  std::vector<uint32_t> fingers_;
  bool stale_ = false;

  size_t SuccessorIndex(U128 key) const;
};

}  // namespace sbon::dht

#endif  // SBON_DHT_CHORD_H_

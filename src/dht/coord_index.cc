#include "dht/coord_index.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace sbon::dht {

CoordinateIndex::CoordinateIndex(HilbertQuantizer quantizer)
    : quantizer_(std::move(quantizer)) {}

void CoordinateIndex::Publish(NodeId node, const Vec& coord) {
  assert(coord.dims() == quantizer_.dims());
  if (coords_.size() <= node) {
    coords_.resize(node + 1);
    published_.resize(node + 1, false);
  }
  if (published_[node]) ring_.Leave(node);
  coords_[node] = coord;
  published_[node] = true;
  ring_.Join(quantizer_.Key(coord), node);
}

void CoordinateIndex::Withdraw(NodeId node) {
  if (node < published_.size() && published_[node]) {
    ring_.Leave(node);
    published_[node] = false;
  }
}

void CoordinateIndex::Stabilize() { ring_.Stabilize(); }

double CoordinateIndex::DistanceTo(NodeId n, const Vec& target) const {
  return coords_[n].DistanceTo(target);
}

StatusOr<std::vector<IndexMatch>> CoordinateIndex::KNearest(
    const Vec& target, size_t k, size_t probe_width, IndexQueryCost* cost,
    const std::vector<NodeId>& exclude) const {
  if (ring_.NumMembers() == 0) {
    return Status::FailedPrecondition("coordinate index is empty");
  }
  const U128 key = quantizer_.Key(target);
  auto lookup = ring_.Lookup(key);
  if (!lookup.ok()) return lookup.status();
  if (cost != nullptr) {
    cost->lookups += 1;
    cost->routing_hops += lookup->hops;
  }

  const std::set<NodeId> excluded(exclude.begin(), exclude.end());
  std::vector<IndexMatch> candidates;
  std::set<NodeId> seen;
  const size_t n = ring_.NumMembers();
  const size_t width = std::min(probe_width, n);
  auto consider = [&](const ChordRing::Member& m) {
    if (cost != nullptr) cost->ring_probes += 1;
    if (seen.count(m.node) != 0 || excluded.count(m.node) != 0) return;
    seen.insert(m.node);
    candidates.push_back(
        IndexMatch{m.node, DistanceTo(m.node, target), coords_[m.node]});
  };
  consider(ring_.SuccessorAt(lookup->member_index, 0));
  for (size_t i = 1; i <= width; ++i) {
    consider(ring_.SuccessorAt(lookup->member_index, i));
    consider(ring_.PredecessorAt(lookup->member_index, i));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const IndexMatch& a, const IndexMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.node < b.node;
            });
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

StatusOr<IndexMatch> CoordinateIndex::Nearest(const Vec& target,
                                              size_t probe_width,
                                              IndexQueryCost* cost) const {
  auto matches = KNearest(target, 1, probe_width, cost);
  if (!matches.ok()) return matches.status();
  if (matches->empty()) return Status::NotFound("no nodes in index");
  return (*matches)[0];
}

StatusOr<std::vector<IndexMatch>> CoordinateIndex::WithinRadius(
    const Vec& target, double radius, IndexQueryCost* cost) const {
  if (ring_.NumMembers() == 0) {
    return Status::FailedPrecondition("coordinate index is empty");
  }
  const U128 key = quantizer_.Key(target);
  auto lookup = ring_.Lookup(key);
  if (!lookup.ok()) return lookup.status();
  if (cost != nullptr) {
    cost->lookups += 1;
    cost->routing_hops += lookup->hops;
  }

  std::vector<IndexMatch> out;
  std::set<NodeId> seen;
  const size_t n = ring_.NumMembers();
  auto consider = [&](const ChordRing::Member& m) {
    if (cost != nullptr) cost->ring_probes += 1;
    if (seen.count(m.node) != 0) return false;
    seen.insert(m.node);
    const double d = DistanceTo(m.node, target);
    if (d <= radius) {
      out.push_back(IndexMatch{m.node, d, coords_[m.node]});
    }
    return d <= radius;
  };

  consider(ring_.SuccessorAt(lookup->member_index, 0));
  // Walk both directions; stop a direction after `kMissesToStop` consecutive
  // members outside the radius (the curve has carried us away from the
  // sphere), or when the whole ring was seen.
  constexpr size_t kMissesToStop = 8;
  size_t succ_misses = 0, pred_misses = 0;
  bool succ_done = false, pred_done = false;
  for (size_t i = 1; i < n && (!succ_done || !pred_done); ++i) {
    if (!succ_done) {
      if (consider(ring_.SuccessorAt(lookup->member_index, i))) {
        succ_misses = 0;
      } else if (++succ_misses >= kMissesToStop) {
        succ_done = true;
      }
    }
    if (!pred_done) {
      if (consider(ring_.PredecessorAt(lookup->member_index, i))) {
        pred_misses = 0;
      } else if (++pred_misses >= kMissesToStop) {
        pred_done = true;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const IndexMatch& a, const IndexMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.node < b.node;
            });
  return out;
}

std::vector<IndexMatch> CoordinateIndex::KNearestExact(const Vec& target,
                                                       size_t k) const {
  std::vector<IndexMatch> all;
  for (NodeId n = 0; n < published_.size(); ++n) {
    if (!published_[n]) continue;
    all.push_back(IndexMatch{n, DistanceTo(n, target), coords_[n]});
  }
  std::sort(all.begin(), all.end(),
            [](const IndexMatch& a, const IndexMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.node < b.node;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace sbon::dht

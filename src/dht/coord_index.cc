#include "dht/coord_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/kernel_stats.h"

namespace sbon::dht {
namespace {

// Total order: by distance, node id breaking ties, so every query path
// (probed, exact, nth_element-selected) ranks candidates identically.
bool MatchLess(const IndexMatch& a, const IndexMatch& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.node < b.node;
}

}  // namespace

CoordinateIndex::CoordinateIndex(HilbertQuantizer quantizer)
    : quantizer_(std::move(quantizer)), coords_(quantizer_.dims(), 0) {}

void CoordinateIndex::Publish(NodeId node, const Vec& coord) {
  assert(coord.dims() == quantizer_.dims());
  if (coords_.nodes() <= node) {
    coords_.EnsureNodes(node + 1);
    published_.resize(node + 1, false);
  }
  if (published_[node]) ring_.Leave(node);
  coords_.SetNode(node, coord);
  published_[node] = true;
  ring_.Join(quantizer_.Key(coord), node);
}

void CoordinateIndex::Withdraw(NodeId node) {
  if (node < published_.size() && published_[node]) {
    ring_.Leave(node);
    published_[node] = false;
  }
}

void CoordinateIndex::Stabilize() { ring_.Stabilize(); }

double CoordinateIndex::DistanceTo(NodeId n, const Vec& target) const {
  return std::sqrt(kernels::DistanceSquaredAt(coords_, n, target.data()));
}

void CoordinateIndex::BeginSeenEpoch() const {
  if (seen_stamp_.size() < coords_.nodes()) {
    seen_stamp_.resize(coords_.nodes(), 0);
  }
  if (++query_epoch_ == 0) {  // stamp wrap-around: invalidate all marks
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    query_epoch_ = 1;
  }
}

Status CoordinateIndex::KNearestInto(const Vec& target, size_t k,
                                     size_t probe_width, IndexQueryCost* cost,
                                     const std::vector<NodeId>& exclude,
                                     std::vector<IndexMatch>* out) const {
  out->clear();
  if (ring_.NumMembers() == 0) {
    return Status::FailedPrecondition("coordinate index is empty");
  }
  const U128 key = quantizer_.Key(target);
  auto lookup = ring_.Lookup(key);
  if (!lookup.ok()) return lookup.status();
  if (cost != nullptr) {
    cost->lookups += 1;
    cost->routing_hops += lookup->hops;
  }

  exclude_scratch_.assign(exclude.begin(), exclude.end());
  std::sort(exclude_scratch_.begin(), exclude_scratch_.end());

  const size_t n = ring_.NumMembers();
  const size_t width = std::min(probe_width, n);
  // The interleaved walk 0, +1, -1, +2, -2, ... visits pairwise-distinct
  // ring members as long as at most n are taken (positions +i and -j first
  // coincide at i + j = n), so capping the walk at `total` members needs no
  // per-query seen-set. Each distinct member costs exactly one ring probe,
  // excluded or not — a member is never billed twice.
  const size_t total = std::min(2 * width + 1, n);
  KernelTimer timer(Kernel::kKNearestScan, total);
  size_t considered = 0;
  walk_scratch_.clear();
  auto consider = [&](const ChordRing::Member& m) {
    ++considered;
    if (cost != nullptr) cost->ring_probes += 1;
    if (std::binary_search(exclude_scratch_.begin(), exclude_scratch_.end(),
                           m.node)) {
      return;
    }
    walk_scratch_.push_back(m.node);
  };
  consider(ring_.SuccessorAt(lookup->member_index, 0));
  for (size_t i = 1; considered < total; ++i) {
    consider(ring_.SuccessorAt(lookup->member_index, i));
    if (considered >= total) break;
    consider(ring_.PredecessorAt(lookup->member_index, i));
  }

  // Batched distance sweep over the walked candidates, then rank 16-byte
  // (distance, node) pairs; the coordinate payload is copied only for the
  // final k matches.
  const size_t count = walk_scratch_.size();
  dist_scratch_.resize(count);
  kernels::DistanceSquaredToMany(coords_, target.data(), walk_scratch_.data(),
                                 count, dist_scratch_.data());
  kernels::SqrtMany(dist_scratch_.data(), count);
  pair_scratch_.clear();
  for (size_t j = 0; j < count; ++j) {
    pair_scratch_.push_back(DistNode{dist_scratch_[j], walk_scratch_[j]});
  }
  std::sort(pair_scratch_.begin(), pair_scratch_.end(),
            [](const DistNode& a, const DistNode& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.node < b.node;
            });
  if (pair_scratch_.size() > k) pair_scratch_.resize(k);
  out->reserve(pair_scratch_.size());
  for (const DistNode& p : pair_scratch_) {
    out->push_back(IndexMatch{p.node, p.distance, coords_.NodeVec(p.node)});
  }
  return Status::OK();
}

StatusOr<std::vector<IndexMatch>> CoordinateIndex::KNearest(
    const Vec& target, size_t k, size_t probe_width, IndexQueryCost* cost,
    const std::vector<NodeId>& exclude) const {
  std::vector<IndexMatch> out;
  Status st = KNearestInto(target, k, probe_width, cost, exclude, &out);
  if (!st.ok()) return st;
  return out;
}

StatusOr<IndexMatch> CoordinateIndex::Nearest(const Vec& target,
                                              size_t probe_width,
                                              IndexQueryCost* cost) const {
  Status st = KNearestInto(target, 1, probe_width, cost, {}, &nearest_scratch_);
  if (!st.ok()) return st;
  if (nearest_scratch_.empty()) return Status::NotFound("no nodes in index");
  return nearest_scratch_[0];
}

StatusOr<std::vector<IndexMatch>> CoordinateIndex::WithinRadius(
    const Vec& target, double radius, IndexQueryCost* cost) const {
  if (ring_.NumMembers() == 0) {
    return Status::FailedPrecondition("coordinate index is empty");
  }
  const U128 key = quantizer_.Key(target);
  auto lookup = ring_.Lookup(key);
  if (!lookup.ok()) return lookup.status();
  if (cost != nullptr) {
    cost->lookups += 1;
    cost->routing_hops += lookup->hops;
  }

  std::vector<IndexMatch> out;
  BeginSeenEpoch();
  KernelTimer timer(Kernel::kKNearestScan, 0);
  size_t probes = 0;
  const size_t n = ring_.NumMembers();
  auto consider = [&](const ChordRing::Member& m) {
    if (seen_stamp_[m.node] == query_epoch_) return false;
    seen_stamp_[m.node] = query_epoch_;
    ++probes;
    if (cost != nullptr) cost->ring_probes += 1;
    const double d = DistanceTo(m.node, target);
    if (d <= radius) {
      out.push_back(IndexMatch{m.node, d, coords_.NodeVec(m.node)});
    }
    return d <= radius;
  };

  consider(ring_.SuccessorAt(lookup->member_index, 0));
  // Walk both directions; stop a direction after `kMissesToStop` consecutive
  // members outside the radius (the curve has carried us away from the
  // sphere), or when the whole ring was seen.
  constexpr size_t kMissesToStop = 8;
  size_t succ_misses = 0, pred_misses = 0;
  bool succ_done = false, pred_done = false;
  for (size_t i = 1; i < n && (!succ_done || !pred_done); ++i) {
    if (!succ_done) {
      if (consider(ring_.SuccessorAt(lookup->member_index, i))) {
        succ_misses = 0;
      } else if (++succ_misses >= kMissesToStop) {
        succ_done = true;
      }
    }
    if (!pred_done) {
      if (consider(ring_.PredecessorAt(lookup->member_index, i))) {
        pred_misses = 0;
      } else if (++pred_misses >= kMissesToStop) {
        pred_done = true;
      }
    }
  }
  timer.set_ops(probes);
  std::sort(out.begin(), out.end(), MatchLess);
  return out;
}

void CoordinateIndex::KNearestExactInto(const Vec& target, size_t k,
                                        std::vector<IndexMatch>* out) const {
  out->clear();
  const size_t slots = coords_.nodes();
  if (slots == 0) return;
  KernelTimer timer(Kernel::kKNearestScan, slots);
  // Unit-stride distance sweep over every slot. Withdrawn slots keep their
  // stale published coordinate (exactly as the per-Vec store did); their
  // distances are computed and filtered below — cheaper than branching
  // inside the vector loop.
  dist_scratch_.resize(slots);
  kernels::DistanceSquaredToMany(coords_, target.data(), dist_scratch_.data());
  kernels::SqrtMany(dist_scratch_.data(), slots);
  pair_scratch_.clear();
  for (NodeId n = 0; n < slots; ++n) {
    if (!published_[n]) continue;
    pair_scratch_.push_back(DistNode{dist_scratch_[n], n});
  }
  auto pair_less = [](const DistNode& a, const DistNode& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.node < b.node;
  };
  if (pair_scratch_.size() > k) {
    // The (distance, node) order is total, so selecting k then sorting the
    // prefix yields exactly the full-sort prefix, in O(N + k log k) instead
    // of O(N log N).
    std::nth_element(pair_scratch_.begin(), pair_scratch_.begin() + k,
                     pair_scratch_.end(), pair_less);
    pair_scratch_.resize(k);
  }
  std::sort(pair_scratch_.begin(), pair_scratch_.end(), pair_less);
  out->reserve(pair_scratch_.size());
  for (const DistNode& p : pair_scratch_) {
    out->push_back(IndexMatch{p.node, p.distance, coords_.NodeVec(p.node)});
  }
}

std::vector<IndexMatch> CoordinateIndex::KNearestExact(const Vec& target,
                                                       size_t k) const {
  std::vector<IndexMatch> out;
  KNearestExactInto(target, k, &out);
  return out;
}

}  // namespace sbon::dht

#ifndef SBON_DHT_COORD_INDEX_H_
#define SBON_DHT_COORD_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/coord_block.h"
#include "common/ids.h"
#include "common/status.h"
#include "common/vec.h"
#include "dht/chord.h"
#include "dht/hilbert.h"

namespace sbon::dht {

/// Statistics of the DHT traffic an index query would generate in a real
/// deployment.
struct IndexQueryCost {
  size_t lookups = 0;     ///< Chord lookups issued.
  size_t routing_hops = 0;///< total Chord routing hops.
  size_t ring_probes = 0; ///< distinct neighborhood members examined on the
                          ///< ring (each member is billed at most once per
                          ///< query, excluded or not).
};

/// A node returned by a coordinate query, with its distance to the target.
struct IndexMatch {
  NodeId node = kInvalidNode;
  double distance = 0.0;  ///< distance in the indexed (full) coordinate space
  Vec coord;              ///< the coordinate the node published
};

/// Decentralized coordinate catalog (paper Sec. 3.2): every node publishes
/// its cost-space coordinate under a Hilbert-curve key into a Chord ring;
/// queries find nodes close to a target coordinate by looking up the
/// target's key and walking the curve neighborhood in both ring directions.
///
/// Because the Hilbert curve preserves locality only approximately, the
/// walk examines `probe_width` members on each side and re-ranks them by
/// true coordinate distance; widening the walk trades DHT traffic for
/// mapping accuracy (measured by `bench/fig3_placement_mapping`).
///
/// Published coordinates live in a structure-of-arrays `CoordBlock`, so the
/// distance scans (`KNearestExactInto`'s full sweep, the probed walk's
/// candidate ranking) run as unit-stride batched kernels over (distance,
/// node) pairs, materializing `IndexMatch` coordinates only for the final
/// k results. Results are bit-identical to the per-`Vec` scan: the batched
/// kernels keep each candidate's accumulation order, and selection uses the
/// same (distance, node) total order.
///
/// Queries reuse per-index scratch buffers instead of allocating per call
/// (they sit on the Submit hot path), so concurrent queries against the
/// same index are not safe; the library is single-threaded throughout.
class CoordinateIndex {
 public:
  /// `quantizer` fixes the indexed box/dimensionality.
  explicit CoordinateIndex(HilbertQuantizer quantizer);

  const HilbertQuantizer& quantizer() const { return quantizer_; }

  /// Publishes (or republishes) a node's coordinate.
  void Publish(NodeId node, const Vec& coord);
  /// Removes a node from the index.
  void Withdraw(NodeId node);
  /// Rebuilds routing state; must be called after a batch of
  /// Publish/Withdraw calls and before queries.
  void Stabilize();

  /// Bulk-update window around mass Publish batches (bring-up, index
  /// refresh): inside it each Publish costs O(log published) instead of
  /// O(published), with a bit-identical final ring. Queries are invalid
  /// until the Stabilize that follows EndBulkUpdate.
  void BeginBulkUpdate() { ring_.BeginBulk(); }
  void EndBulkUpdate() { ring_.EndBulk(); }

  size_t NumPublished() const { return ring_.NumMembers(); }

  /// The underlying Chord ring, read-only — message-mode agents route
  /// publish/join traffic through `ring().Lookup` to bill real hop counts
  /// and walk `ring().members()` for successor heartbeats.
  const ChordRing& ring() const { return ring_; }

  /// Returns up to `k` published nodes closest to `target` (by true
  /// distance in the indexed space), examining `probe_width` ring members
  /// on each side of the target key. `cost` (optional) accumulates DHT
  /// traffic. Nodes listed in `exclude` are skipped.
  StatusOr<std::vector<IndexMatch>> KNearest(
      const Vec& target, size_t k, size_t probe_width = 16,
      IndexQueryCost* cost = nullptr,
      const std::vector<NodeId>& exclude = {}) const;

  /// KNearest into a caller-owned buffer (`out` is cleared first). Reusing
  /// `out` across queries makes the whole call heap-free in steady state —
  /// the form the mapping loop uses.
  Status KNearestInto(const Vec& target, size_t k, size_t probe_width,
                      IndexQueryCost* cost,
                      const std::vector<NodeId>& exclude,
                      std::vector<IndexMatch>* out) const;

  /// Single nearest node (convenience wrapper over KNearest).
  StatusOr<IndexMatch> Nearest(const Vec& target, size_t probe_width = 16,
                               IndexQueryCost* cost = nullptr) const;

  /// All probed nodes within `radius` of `target` — the hyper-sphere search
  /// the paper's multi-query pruning uses (Sec. 3.4). The probe widens
  /// adaptively until the curve walk has moved past the radius on both
  /// sides or the whole ring was examined.
  StatusOr<std::vector<IndexMatch>> WithinRadius(
      const Vec& target, double radius, IndexQueryCost* cost = nullptr) const;

  /// Exact linear-scan answer (the oracle a centralized index would give);
  /// used by tests and by accuracy measurements.
  std::vector<IndexMatch> KNearestExact(const Vec& target, size_t k) const;

  /// KNearestExact into a caller-owned buffer (`out` is cleared first);
  /// sweeps all published coordinates with the batched distance kernel and
  /// selects the top k with nth_element instead of sorting all N members.
  void KNearestExactInto(const Vec& target, size_t k,
                         std::vector<IndexMatch>* out) const;

 private:
  /// A (distance, node) pair — the 16-byte selection currency of the scan
  /// kernels; `IndexMatch` (with its coordinate payload) is materialized
  /// only for final results.
  struct DistNode {
    double distance;
    NodeId node;
  };

  HilbertQuantizer quantizer_;
  ChordRing ring_;
  // Published coordinates as per-dimension lanes, addressed by node id.
  CoordBlock coords_;
  std::vector<bool> published_;

  // Reusable query scratch (see class comment). `seen_stamp_[node] ==
  // query_epoch_` marks a node examined by the current WithinRadius walk —
  // bumping the epoch clears all marks without touching memory.
  mutable std::vector<NodeId> exclude_scratch_;
  mutable std::vector<IndexMatch> nearest_scratch_;
  mutable std::vector<uint32_t> seen_stamp_;
  mutable uint32_t query_epoch_ = 0;
  // Batched-scan scratch: distances and (distance, node) pairs.
  mutable std::vector<double> dist_scratch_;
  mutable std::vector<DistNode> pair_scratch_;
  mutable std::vector<NodeId> walk_scratch_;

  double DistanceTo(NodeId n, const Vec& target) const;
  /// Starts a WithinRadius walk: bumps the epoch and sizes the stamps.
  void BeginSeenEpoch() const;
};

}  // namespace sbon::dht

#endif  // SBON_DHT_COORD_INDEX_H_

#include "dht/hilbert.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sbon::dht {
namespace {

// Skilling's in-place conversion from axes to the "transpose" form, in which
// the Hilbert index bits are distributed across the words of X.
void AxesToTranspose(uint32_t* x, unsigned n, unsigned bits) {
  uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (uint32_t q = m; q > 1; q >>= 1) {
    const uint32_t p = q - 1;
    for (unsigned i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        const uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (unsigned i = 1; i < n; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (unsigned i = 0; i < n; ++i) x[i] ^= t;
}

// Inverse of AxesToTranspose.
void TransposeToAxes(std::vector<uint32_t>* x_ptr, unsigned bits) {
  std::vector<uint32_t>& x = *x_ptr;
  const unsigned n = static_cast<unsigned>(x.size());
  const uint32_t top = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[n - 1] >> 1;
  for (unsigned i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != top; q <<= 1) {
    const uint32_t p = q - 1;
    for (unsigned ii = n; ii-- > 0;) {
      if (x[ii] & q) {
        x[0] ^= p;
      } else {
        const uint32_t tt = (x[0] ^ x[ii]) & p;
        x[0] ^= tt;
        x[ii] ^= tt;
      }
    }
  }
}

}  // namespace

U128 HilbertEncodeInPlace(uint32_t* x, unsigned n, unsigned bits) {
  assert(n >= 1 && bits >= 1 && n * bits <= 128);
  AxesToTranspose(x, n, bits);
  // Interleave transpose words MSB-first: index bit (bits*n - 1) comes from
  // x[0]'s bit (bits-1), then x[1]'s bit (bits-1), ...
  U128 out;
  unsigned out_bit = n * bits;
  for (unsigned b = bits; b-- > 0;) {
    for (unsigned d = 0; d < n; ++d) {
      --out_bit;
      if ((x[d] >> b) & 1u) out.SetBit(out_bit);
    }
  }
  return out;
}

U128 HilbertEncode(const std::vector<uint32_t>& axes, unsigned bits) {
  const unsigned n = static_cast<unsigned>(axes.size());
  assert(n >= 1 && n <= 128);
  if (n > 128) {
    // Out of contract (dims * bits <= 128 bounds n at 128); stay
    // memory-safe under NDEBUG instead of overrunning the stack buffer.
    std::vector<uint32_t> x = axes;
    return HilbertEncodeInPlace(x.data(), n, bits);
  }
  uint32_t x[128];
  std::copy(axes.begin(), axes.end(), x);
  return HilbertEncodeInPlace(x, n, bits);
}

std::vector<uint32_t> HilbertDecode(U128 index, unsigned dims,
                                    unsigned bits) {
  assert(dims >= 1 && bits >= 1 && dims * bits <= 128);
  std::vector<uint32_t> x(dims, 0);
  unsigned in_bit = dims * bits;
  for (unsigned b = bits; b-- > 0;) {
    for (unsigned d = 0; d < dims; ++d) {
      --in_bit;
      if (index.Bit(in_bit)) x[d] |= (1u << b);
    }
  }
  TransposeToAxes(&x, bits);
  return x;
}

HilbertQuantizer::HilbertQuantizer(std::vector<double> lo,
                                   std::vector<double> hi, unsigned bits)
    : lo_(std::move(lo)), hi_(std::move(hi)), bits_(bits) {
  assert(lo_.size() == hi_.size());
  assert(!lo_.empty() && bits_ >= 1 && lo_.size() * bits_ <= 128);
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (hi_[i] <= lo_[i]) hi_[i] = lo_[i] + 1.0;  // degenerate dim guard
  }
}

HilbertQuantizer HilbertQuantizer::FitTo(const std::vector<Vec>& points,
                                         unsigned bits, double margin) {
  assert(!points.empty());
  const size_t dims = points[0].dims();
  std::vector<double> lo(dims, 1e300), hi(dims, -1e300);
  for (const Vec& p : points) {
    for (size_t d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  for (size_t d = 0; d < dims; ++d) {
    const double span = std::max(hi[d] - lo[d], 1e-9);
    lo[d] -= margin * span;
    hi[d] += margin * span;
  }
  return HilbertQuantizer(std::move(lo), std::move(hi), bits);
}

void HilbertQuantizer::QuantizeTo(const Vec& p, uint32_t* out) const {
  assert(p.dims() == lo_.size());
  const double cells = static_cast<double>(1u << bits_);
  for (size_t d = 0; d < lo_.size(); ++d) {
    const double t = (p[d] - lo_[d]) / (hi_[d] - lo_[d]);
    const double cell = std::floor(t * cells);
    out[d] = static_cast<uint32_t>(
        std::clamp(cell, 0.0, cells - 1.0));
  }
}

std::vector<uint32_t> HilbertQuantizer::Quantize(const Vec& p) const {
  std::vector<uint32_t> out(lo_.size());
  QuantizeTo(p, out.data());
  return out;
}

Vec HilbertQuantizer::Dequantize(const std::vector<uint32_t>& cell) const {
  assert(cell.size() == lo_.size());
  const double cells = static_cast<double>(1u << bits_);
  Vec out(lo_.size());
  for (size_t d = 0; d < lo_.size(); ++d) {
    out[d] = lo_[d] + (static_cast<double>(cell[d]) + 0.5) / cells *
                          (hi_[d] - lo_[d]);
  }
  return out;
}

U128 HilbertQuantizer::Key(const Vec& p) const {
  // dims * bits <= 128 and bits >= 1 bound dims at 128 for any quantizer
  // the constructor accepts; the guard keeps an out-of-contract quantizer
  // memory-safe under NDEBUG (heap form instead of a stack overrun).
  if (dims() > 128) return HilbertEncode(Quantize(p), bits_);
  uint32_t cell[128];
  QuantizeTo(p, cell);
  return HilbertEncodeInPlace(cell, dims(), bits_);
}

}  // namespace sbon::dht

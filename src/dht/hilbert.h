#ifndef SBON_DHT_HILBERT_H_
#define SBON_DHT_HILBERT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/vec.h"
#include "dht/u128.h"

namespace sbon::dht {

/// Hilbert space-filling curve encode/decode (Skilling's transpose
/// algorithm, "Programming the Hilbert curve", 2004). The curve linearizes a
/// `dims`-dimensional grid of side 2^bits while preserving locality; the
/// paper [20, 21] uses it to turn multi-dimensional cost-space coordinates
/// into one-dimensional DHT keys.
///
/// Constraints: dims >= 1, bits >= 1, dims * bits <= 128.

/// Maps grid coordinates (each < 2^bits) to the Hilbert index.
U128 HilbertEncode(const std::vector<uint32_t>& axes, unsigned bits);

/// Allocation-free form of HilbertEncode: reads the `n` axes from `axes`
/// and clobbers them in place as working storage (key derivation sits on
/// the per-query hot path, where a heap round-trip per key would dominate).
U128 HilbertEncodeInPlace(uint32_t* axes, unsigned n, unsigned bits);

/// Maps a Hilbert index back to grid coordinates.
std::vector<uint32_t> HilbertDecode(U128 index, unsigned dims, unsigned bits);

/// Quantizes continuous cost-space coordinates into the Hilbert grid.
/// The box is fixed at construction; out-of-box values are clamped (cost
/// spaces are unbounded in principle, but placement targets always fall
/// within the box spanned by the nodes that defined it).
class HilbertQuantizer {
 public:
  /// Builds a quantizer for `dims` dimensions over [lo[i], hi[i]] per dim,
  /// with 2^bits cells per dimension.
  HilbertQuantizer(std::vector<double> lo, std::vector<double> hi,
                   unsigned bits);

  /// Derives a bounding box from a point cloud with `margin` fractional
  /// padding (so later targets near the hull still quantize distinctly).
  static HilbertQuantizer FitTo(const std::vector<Vec>& points, unsigned bits,
                                double margin = 0.10);

  unsigned dims() const { return static_cast<unsigned>(lo_.size()); }
  unsigned bits() const { return bits_; }

  /// Continuous point -> grid cell per dimension (clamped).
  std::vector<uint32_t> Quantize(const Vec& p) const;
  /// Quantize into caller storage of at least dims() entries (heap-free).
  void QuantizeTo(const Vec& p, uint32_t* out) const;
  /// Grid cell -> cell-center continuous point.
  Vec Dequantize(const std::vector<uint32_t>& cell) const;

  /// Continuous point -> Hilbert key. Heap-free.
  U128 Key(const Vec& p) const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
  unsigned bits_;
};

}  // namespace sbon::dht

#endif  // SBON_DHT_HILBERT_H_

#include "dht/pastry.h"

#include <algorithm>
#include <cassert>

namespace sbon::dht {

PastryRing::PastryRing(unsigned digit_bits) : digit_bits_(digit_bits) {
  assert(digit_bits_ >= 1 && digit_bits_ <= 8);
  assert(kKeyBits % digit_bits_ == 0);
  num_digits_ = kKeyBits / digit_bits_;
}

void PastryRing::Join(U128 key, NodeId node) {
  U128 k = key;
  auto exists = [&](const U128& candidate) {
    return std::any_of(members_.begin(), members_.end(),
                       [&](const Member& m) { return m.key == candidate; });
  };
  while (exists(k)) {
    k = k + U128::FromU64((static_cast<uint64_t>(node) << 1) | 1);
  }
  members_.push_back(Member{k, node});
  std::sort(members_.begin(), members_.end(),
            [](const Member& a, const Member& b) { return a.key < b.key; });
  stale_ = true;
}

void PastryRing::Leave(NodeId node) {
  members_.erase(std::remove_if(members_.begin(), members_.end(),
                                [&](const Member& m) {
                                  return m.node == node;
                                }),
                 members_.end());
  stale_ = true;
}

unsigned PastryRing::DigitAt(const U128& key, unsigned row) const {
  // Row 0 is the most significant digit.
  const unsigned shift = kKeyBits - (row + 1) * digit_bits_;
  const U128 shifted = key >> shift;
  return static_cast<unsigned>(shifted.lo & ((1u << digit_bits_) - 1u));
}

unsigned PastryRing::SharedPrefixDigits(const U128& a, const U128& b) const {
  for (unsigned row = 0; row < num_digits_; ++row) {
    if (DigitAt(a, row) != DigitAt(b, row)) return row;
  }
  return num_digits_;
}

U128 PastryRing::RingDistance(const U128& a, const U128& b) {
  const U128 d1 = a - b;
  const U128 d2 = b - a;
  return d1 < d2 ? d1 : d2;
}

size_t PastryRing::NumericallyClosest(U128 key) const {
  assert(!members_.empty());
  const auto it = std::lower_bound(
      members_.begin(), members_.end(), key,
      [](const Member& m, const U128& k) { return m.key < k; });
  // Candidates: successor (with wrap) and predecessor (with wrap).
  const size_t n = members_.size();
  const size_t succ = (it == members_.end())
                          ? 0
                          : static_cast<size_t>(it - members_.begin());
  const size_t pred = (succ + n - 1) % n;
  return RingDistance(members_[succ].key, key) <
                 RingDistance(members_[pred].key, key)
             ? succ
             : pred;
}

void PastryRing::Stabilize() {
  const size_t n = members_.size();
  const unsigned cols = 1u << digit_bits_;
  // Rows are only needed up to the longest shared prefix in the system;
  // computing all 32 rows for hex digits is cheap enough at sim scale.
  routing_.assign(n, std::vector<std::vector<size_t>>(
                         num_digits_, std::vector<size_t>(cols, SIZE_MAX)));
  for (size_t m = 0; m < n; ++m) {
    const U128& self = members_[m].key;
    for (size_t o = 0; o < n; ++o) {
      if (o == m) continue;
      const unsigned row = SharedPrefixDigits(self, members_[o].key);
      if (row >= num_digits_) continue;
      const unsigned col = DigitAt(members_[o].key, row);
      // Keep the entry numerically closest to the target column slot (any
      // member with the right prefix works; prefer stability via min key).
      size_t& slot = routing_[m][row][col];
      if (slot == SIZE_MAX || members_[o].key < members_[slot].key) {
        slot = o;
      }
    }
  }
  stale_ = false;
}

Status PastryRing::CheckRoutingInvariants() const {
  if (stale_) return Status::FailedPrecondition("ring not stabilized");
  const size_t n = members_.size();
  if (routing_.size() != n) {
    return Status::Internal("routing table count != membership");
  }
  const unsigned cols = 1u << digit_bits_;
  for (size_t m = 0; m < n; ++m) {
    const U128& self = members_[m].key;
    for (unsigned row = 0; row < num_digits_; ++row) {
      for (unsigned col = 0; col < cols; ++col) {
        const size_t e = routing_[m][row][col];
        if (e == SIZE_MAX) continue;
        if (e >= n || e == m) {
          return Status::Internal("routing entry out of range or self");
        }
        const U128& entry = members_[e].key;
        if (SharedPrefixDigits(self, entry) != row) {
          return Status::Internal("routing entry at wrong prefix row");
        }
        if (DigitAt(entry, row) != col || DigitAt(self, row) == col) {
          return Status::Internal("routing entry at wrong column");
        }
      }
    }
    // Completeness + deterministic tie-break: every other member must be
    // reachable through its (shared-prefix, digit) slot, and the occupant
    // must be the minimum-key member qualifying for that slot.
    for (size_t o = 0; o < n; ++o) {
      if (o == m) continue;
      const unsigned row = SharedPrefixDigits(self, members_[o].key);
      if (row >= num_digits_) continue;  // perturbed duplicate digit-twin
      const size_t e = routing_[m][row][DigitAt(members_[o].key, row)];
      if (e == SIZE_MAX) {
        return Status::Internal("empty slot with a qualifying member");
      }
      if (members_[e].key > members_[o].key) {
        return Status::Internal("slot occupant is not the minimum key");
      }
    }
  }
  return Status::OK();
}

StatusOr<PastryRing::LookupResult> PastryRing::Lookup(
    U128 key, U128 origin_key) const {
  if (members_.empty()) return Status::FailedPrecondition("empty ring");
  if (stale_) return Status::FailedPrecondition("ring not stabilized");
  const size_t n = members_.size();
  const size_t target = NumericallyClosest(key);
  size_t cur = NumericallyClosest(origin_key);
  size_t hops = 0;

  while (cur != target) {
    const U128& cur_key = members_[cur].key;
    const unsigned row = SharedPrefixDigits(cur_key, key);
    size_t next = SIZE_MAX;
    if (row < num_digits_) {
      next = routing_[cur][row][DigitAt(key, row)];
    }
    if (next == SIZE_MAX) {
      // Leaf-set / rare-case fallback: scan the leaf set (and, failing
      // that, the routing row) for a member strictly closer to the key.
      const U128 cur_dist = RingDistance(cur_key, key);
      size_t best = cur;
      U128 best_dist = cur_dist;
      for (size_t i = 1; i <= kLeafSetHalf; ++i) {
        for (size_t cand : {(cur + i) % n, (cur + n - i) % n}) {
          const U128 d = RingDistance(members_[cand].key, key);
          if (d < best_dist) {
            best = cand;
            best_dist = d;
          }
        }
      }
      if (best == cur) {
        return Status::Internal("pastry routing stalled");
      }
      next = best;
    }
    cur = next;
    ++hops;
    if (hops > n + num_digits_) {
      return Status::Internal("pastry routing failed to converge");
    }
  }
  LookupResult r;
  r.node = members_[cur].node;
  r.key = members_[cur].key;
  r.hops = hops;
  return r;
}

StatusOr<PastryRing::LookupResult> PastryRing::Lookup(U128 key) const {
  if (members_.empty()) return Status::FailedPrecondition("empty ring");
  return Lookup(key, members_[0].key);
}

}  // namespace sbon::dht

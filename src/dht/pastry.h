#ifndef SBON_DHT_PASTRY_H_
#define SBON_DHT_PASTRY_H_

#include <array>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "dht/u128.h"

namespace sbon::dht {

/// A simulated Pastry ring (Rowstron & Druschel [22]) — the other overlay
/// the paper cites for its decentralized catalog. Like `ChordRing`, the
/// membership is held centrally but *routing is faithful*: each hop either
/// extends the shared key prefix by at least one base-2^b digit via the
/// routing table, or falls back to the leaf set / numerically closer
/// neighbor, so hop counts match what a deployment would see
/// (O(log_{2^b} N) with the default b = 4).
class PastryRing {
 public:
  struct Member {
    U128 key;
    NodeId node = kInvalidNode;
  };

  struct LookupResult {
    NodeId node = kInvalidNode;
    U128 key;
    size_t hops = 0;
  };

  /// Digit width in bits (Pastry's `b`); 4 gives hexadecimal digits.
  explicit PastryRing(unsigned digit_bits = 4);

  void Join(U128 key, NodeId node);
  void Leave(NodeId node);
  size_t NumMembers() const { return members_.size(); }
  /// Current membership, sorted by key (valid independent of Stabilize).
  const std::vector<Member>& members() const { return members_; }

  /// Validates the stabilized routing state against the Pastry invariants:
  /// every table entry at (row, col) names a live member whose key shares
  /// exactly `row` digits with the owner and has digit `col` at that row
  /// (never the owner's own digit); every slot some member qualifies for is
  /// filled; and each filled slot holds the minimum-key qualifying member
  /// (the deterministic tie-break Stabilize promises). Returns the first
  /// violation as FailedPrecondition/Internal, OK otherwise.
  Status CheckRoutingInvariants() const;

  /// Rebuilds routing tables and leaf sets; required before Lookup after
  /// membership changes.
  void Stabilize();

  /// Routes from the member numerically closest to `origin_key` toward the
  /// member whose key is numerically closest to `key` (Pastry delivers to
  /// the numerically closest node, unlike Chord's successor semantics).
  StatusOr<LookupResult> Lookup(U128 key, U128 origin_key) const;
  StatusOr<LookupResult> Lookup(U128 key) const;

 private:
  static constexpr unsigned kKeyBits = 128;

  unsigned digit_bits_;
  unsigned num_digits_;
  std::vector<Member> members_;  // sorted by key
  // routing_[m][row][col] = member index owning a key that shares `row`
  // digits with members_[m].key and has digit `col` at position `row`
  // (SIZE_MAX = empty). Leaf sets are the +/- kLeafSetHalf ring neighbors.
  std::vector<std::vector<std::vector<size_t>>> routing_;
  static constexpr size_t kLeafSetHalf = 8;
  bool stale_ = false;

  unsigned DigitAt(const U128& key, unsigned row) const;
  unsigned SharedPrefixDigits(const U128& a, const U128& b) const;
  size_t NumericallyClosest(U128 key) const;
  // |a - b| on the ring (minimum of the two directions).
  static U128 RingDistance(const U128& a, const U128& b);
};

}  // namespace sbon::dht

#endif  // SBON_DHT_PASTRY_H_

#include "dht/u128.h"

#include <cstdio>

namespace sbon::dht {

std::string U128::ToString() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "0x%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

U128 HashU64(uint64_t x) {
  auto mix = [](uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  const uint64_t a = mix(x + 0x9e3779b97f4a7c15ULL);
  const uint64_t b = mix(a + 0x9e3779b97f4a7c15ULL);
  return U128(a, b);
}

}  // namespace sbon::dht

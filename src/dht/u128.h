#ifndef SBON_DHT_U128_H_
#define SBON_DHT_U128_H_

#include <cstdint>
#include <string>

namespace sbon::dht {

/// Minimal unsigned 128-bit integer for DHT keys and Hilbert indices (up to
/// ~8 dims x 14 bits). Implemented portably (no compiler extensions) with
/// just the operations ring arithmetic needs.
struct U128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  constexpr U128() = default;
  constexpr U128(uint64_t hi_, uint64_t lo_) : hi(hi_), lo(lo_) {}
  static constexpr U128 FromU64(uint64_t x) { return U128(0, x); }
  static constexpr U128 Max() { return U128(~0ULL, ~0ULL); }

  friend constexpr bool operator==(const U128& a, const U128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend constexpr bool operator!=(const U128& a, const U128& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const U128& a, const U128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
  friend constexpr bool operator<=(const U128& a, const U128& b) {
    return !(b < a);
  }
  friend constexpr bool operator>(const U128& a, const U128& b) {
    return b < a;
  }
  friend constexpr bool operator>=(const U128& a, const U128& b) {
    return !(a < b);
  }

  /// Wrapping addition (mod 2^128), the ring group operation.
  friend constexpr U128 operator+(const U128& a, const U128& b) {
    U128 r;
    r.lo = a.lo + b.lo;
    r.hi = a.hi + b.hi + (r.lo < a.lo ? 1 : 0);
    return r;
  }
  /// Wrapping subtraction (mod 2^128); `a - b` is the clockwise ring
  /// distance from b to a.
  friend constexpr U128 operator-(const U128& a, const U128& b) {
    U128 r;
    r.lo = a.lo - b.lo;
    r.hi = a.hi - b.hi - (a.lo < b.lo ? 1 : 0);
    return r;
  }
  friend constexpr U128 operator^(const U128& a, const U128& b) {
    return U128(a.hi ^ b.hi, a.lo ^ b.lo);
  }
  friend constexpr U128 operator|(const U128& a, const U128& b) {
    return U128(a.hi | b.hi, a.lo | b.lo);
  }
  friend constexpr U128 operator&(const U128& a, const U128& b) {
    return U128(a.hi & b.hi, a.lo & b.lo);
  }

  constexpr U128 operator<<(unsigned s) const {
    if (s == 0) return *this;
    if (s >= 128) return U128();
    if (s >= 64) return U128(lo << (s - 64), 0);
    return U128((hi << s) | (lo >> (64 - s)), lo << s);
  }
  constexpr U128 operator>>(unsigned s) const {
    if (s == 0) return *this;
    if (s >= 128) return U128();
    if (s >= 64) return U128(0, hi >> (s - 64));
    return U128(hi >> s, (lo >> s) | (hi << (64 - s)));
  }

  constexpr bool Bit(unsigned i) const {
    return i < 64 ? ((lo >> i) & 1) != 0 : ((hi >> (i - 64)) & 1) != 0;
  }
  constexpr void SetBit(unsigned i) {
    if (i < 64) {
      lo |= (1ULL << i);
    } else {
      hi |= (1ULL << (i - 64));
    }
  }

  /// Hex rendering, e.g. "0x0000..0042".
  std::string ToString() const;
};

/// 2^k as a U128 (k < 128).
constexpr U128 PowerOfTwo(unsigned k) {
  U128 r;
  r.SetBit(k);
  return r;
}

/// SplitMix-style 128-bit hash of a 64-bit value; used for uniform DHT node
/// ids when key balance (not coordinate locality) is wanted.
U128 HashU64(uint64_t x);

}  // namespace sbon::dht

#endif  // SBON_DHT_U128_H_

#include "engine/epoch_pipeline.h"

#include <chrono>

namespace sbon::engine {

void EpochPipeline::Run(const char* name, bool enabled, bool parallelizable,
                        const std::function<void(ThreadPool*)>& fn) {
  EpochStageTrace entry;
  entry.name = name;
  if (enabled) {
    ThreadPool* stage_pool =
        parallelizable && pool_ != nullptr && pool_->threads() > 1 ? pool_
                                                                   : nullptr;
    const KernelStatsSnapshot before = KernelStats::Instance().Snapshot();
    const auto start = std::chrono::steady_clock::now();
    fn(stage_pool);
    entry.ran = true;
    entry.sharded = stage_pool != nullptr;
    entry.ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    entry.kernels = KernelStats::Instance().Snapshot().Since(before);
  }
  trace_.push_back(entry);
}

}  // namespace sbon::engine

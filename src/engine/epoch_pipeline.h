#ifndef SBON_ENGINE_EPOCH_PIPELINE_H_
#define SBON_ENGINE_EPOCH_PIPELINE_H_

#include <functional>
#include <vector>

#include "common/kernel_stats.h"
#include "common/parallel.h"

namespace sbon::engine {

/// One stage of an AdvanceEpoch run, as executed.
struct EpochStageTrace {
  const char* name = "";  ///< stage name (stable across epochs)
  bool ran = false;       ///< stage was enabled this epoch
  bool sharded = false;   ///< executed across the thread pool
  double ns = 0.0;        ///< wall time spent in the stage
  /// Hot-kernel activity attributed to this stage (KernelStats delta across
  /// the stage body): per kernel, the calls/ops/ns/allocs it recorded.
  KernelStatsSnapshot kernels;
};

/// The explicit staged runner behind StreamEngine::AdvanceEpoch. An epoch
/// is a fixed sequence of named stages over the overlay substrates
/// (jitter -> load -> coords -> churn+repair -> refresh); the pipeline runs
/// each enabled stage in order, hands the thread pool only to stages whose
/// work is deterministically shardable, and records a per-stage trace
/// (what ran, whether it sharded, how long it took) for introspection.
///
/// Stage *order* is the determinism backbone: every stage observes exactly
/// the state the previous stages produced, and the shardable stages
/// guarantee bit-identical results at any thread count (see the substrate
/// contracts), so a fixed seed yields one answer no matter how the epoch
/// was scheduled.
class EpochPipeline {
 public:
  /// `pool` may be null (fully serial epoch). Not owned.
  explicit EpochPipeline(ThreadPool* pool) : pool_(pool) {}

  /// Runs `fn` as the next stage when `enabled`; always records the trace
  /// entry (disabled stages record ran=false with zero time). `fn` receives
  /// the pool when `parallelizable` and a multi-thread pool is attached,
  /// null otherwise — serial-only stages never see the pool at all.
  void Run(const char* name, bool enabled, bool parallelizable,
           const std::function<void(ThreadPool*)>& fn);

  const std::vector<EpochStageTrace>& trace() const { return trace_; }

 private:
  ThreadPool* pool_;
  std::vector<EpochStageTrace> trace_;
};

}  // namespace sbon::engine

#endif  // SBON_ENGINE_EPOCH_PIPELINE_H_

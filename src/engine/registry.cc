#include "engine/registry.h"

namespace sbon::engine {
namespace {

std::string UnknownNameMessage(const char* what, const std::string& name,
                               const std::vector<std::string>& known) {
  std::string msg = "unknown ";
  msg += what;
  msg += " '" + name + "'; registered: ";
  for (size_t i = 0; i < known.size(); ++i) {
    if (i > 0) msg += ", ";
    msg += known[i];
  }
  return msg;
}

}  // namespace

OptimizerRegistry& OptimizerRegistry::Global() {
  internal::EnsureBuiltinStrategiesLinked();
  static OptimizerRegistry* registry = new OptimizerRegistry();
  return *registry;
}

bool OptimizerRegistry::Register(const std::string& name, Factory factory) {
  return factories_.emplace(name, std::move(factory)).second;
}

StatusOr<std::unique_ptr<core::Optimizer>> OptimizerRegistry::Create(
    const std::string& name, const OptimizerSpec& spec) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound(UnknownNameMessage("optimizer", name, Names()));
  }
  if (spec.placer == nullptr) {
    return Status::InvalidArgument("optimizer spec has no placer");
  }
  return it->second(spec);
}

bool OptimizerRegistry::Has(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> OptimizerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

PlacerRegistry& PlacerRegistry::Global() {
  internal::EnsureBuiltinStrategiesLinked();
  static PlacerRegistry* registry = new PlacerRegistry();
  return *registry;
}

bool PlacerRegistry::Register(const std::string& name, Factory factory) {
  return factories_.emplace(name, std::move(factory)).second;
}

StatusOr<std::shared_ptr<const placement::VirtualPlacer>>
PlacerRegistry::Create(const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound(UnknownNameMessage("placer", name, Names()));
  }
  return it->second();
}

bool PlacerRegistry::Has(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> PlacerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

}  // namespace sbon::engine

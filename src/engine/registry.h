#ifndef SBON_ENGINE_REGISTRY_H_
#define SBON_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/multi_query.h"
#include "core/optimizer.h"
#include "placement/virtual_placement.h"

namespace sbon::engine {

/// Everything an optimizer factory may consume. Strategies ignore the
/// fields they have no use for (e.g. only "multi-query" reads
/// `multi_query`), so one spec type serves every registered optimizer and
/// new strategies can grow knobs without touching call sites.
struct OptimizerSpec {
  core::OptimizerConfig config;
  core::MultiQueryOptimizer::Params multi_query;
  std::shared_ptr<const placement::VirtualPlacer> placer;
};

/// String-keyed registry of query-optimizer strategies. Benches, examples
/// and config files select optimizers by name ("two-step", "integrated",
/// "multi-query", ...) instead of including concrete headers; new
/// strategies self-register via SBON_REGISTER_OPTIMIZER from any linked
/// translation unit.
class OptimizerRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<core::Optimizer>(const OptimizerSpec&)>;

  /// The process-wide registry (initialized on first use; the built-in
  /// strategies are guaranteed to be present).
  static OptimizerRegistry& Global();

  /// Registers `factory` under `name`; returns false (keeping the first
  /// registration) if the name is already taken.
  bool Register(const std::string& name, Factory factory);

  StatusOr<std::unique_ptr<core::Optimizer>> Create(
      const std::string& name, const OptimizerSpec& spec) const;

  bool Has(const std::string& name) const;
  /// Registered names, sorted — for --help output and error messages.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// String-keyed registry of virtual-placement strategies ("relaxation",
/// "centroid", "gradient", ...). Each Create() invokes the factory for a
/// fresh instance; placers are stateless and const, so callers that create
/// many optimizers may cache and share one instance per name.
class PlacerRegistry {
 public:
  using Factory =
      std::function<std::shared_ptr<const placement::VirtualPlacer>()>;

  static PlacerRegistry& Global();

  bool Register(const std::string& name, Factory factory);

  StatusOr<std::shared_ptr<const placement::VirtualPlacer>> Create(
      const std::string& name) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

namespace internal {
/// Defined in strategies.cc. Referenced by the Global() accessors so the
/// static-library linker always pulls in the translation unit holding the
/// built-in strategy registrars (self-registration alone is dead-stripped
/// from archives).
void EnsureBuiltinStrategiesLinked();
}  // namespace internal

#define SBON_REGISTRY_CONCAT_INNER(a, b) a##b
#define SBON_REGISTRY_CONCAT(a, b) SBON_REGISTRY_CONCAT_INNER(a, b)

/// Self-registration of an optimizer strategy:
///   SBON_REGISTER_OPTIMIZER("mine", [](const engine::OptimizerSpec& s) {
///     return std::make_unique<MyOptimizer>(s.config, s.placer);
///   });
#define SBON_REGISTER_OPTIMIZER(name, ...)                       \
  [[maybe_unused]] static const bool SBON_REGISTRY_CONCAT(       \
      sbon_optimizer_registrar_, __COUNTER__) =                  \
      ::sbon::engine::OptimizerRegistry::Global().Register(name, \
                                                           __VA_ARGS__)

/// Self-registration of a virtual-placement strategy:
///   SBON_REGISTER_PLACER("mine", [] {
///     return std::make_shared<const MyPlacer>();
///   });
#define SBON_REGISTER_PLACER(name, ...)                                      \
  [[maybe_unused]] static const bool SBON_REGISTRY_CONCAT(                   \
      sbon_placer_registrar_, __COUNTER__) =                                 \
      ::sbon::engine::PlacerRegistry::Global().Register(name, __VA_ARGS__)

}  // namespace sbon::engine

#endif  // SBON_ENGINE_REGISTRY_H_

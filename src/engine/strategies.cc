// Self-registration of the built-in optimization and placement strategies.
// This is the only translation unit in the engine layer that includes the
// concrete strategy headers; everything else selects them by name through
// the registries.

#include <memory>

#include "core/integrated.h"
#include "core/multi_query.h"
#include "core/two_step.h"
#include "engine/registry.h"
#include "placement/relaxation.h"

namespace sbon::engine {

SBON_REGISTER_OPTIMIZER("two-step", [](const OptimizerSpec& spec) {
  return std::make_unique<core::TwoStepOptimizer>(spec.config, spec.placer);
});

SBON_REGISTER_OPTIMIZER("integrated", [](const OptimizerSpec& spec) {
  return std::make_unique<core::IntegratedOptimizer>(spec.config, spec.placer);
});

SBON_REGISTER_OPTIMIZER("multi-query", [](const OptimizerSpec& spec) {
  return std::make_unique<core::MultiQueryOptimizer>(spec.config, spec.placer,
                                                     spec.multi_query);
});

SBON_REGISTER_PLACER("relaxation", [] {
  return std::make_shared<const placement::RelaxationPlacer>();
});

SBON_REGISTER_PLACER("centroid", [] {
  return std::make_shared<const placement::CentroidPlacer>();
});

SBON_REGISTER_PLACER("gradient", [] {
  return std::make_shared<const placement::GradientPlacer>();
});

namespace internal {
void EnsureBuiltinStrategiesLinked() {}
}  // namespace internal

}  // namespace sbon::engine

#include "engine/stream_engine.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace sbon::engine {

namespace {

/// Thread count an EpochOptions::threads of 0 resolves to: the
/// SBON_EPOCH_THREADS environment variable when set to a positive integer
/// (read once — how CI lanes run every suite multi-threaded), else 1.
size_t DefaultEpochThreads() {
  static const size_t threads = [] {
    const char* env = std::getenv("SBON_EPOCH_THREADS");
    if (env != nullptr) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<size_t>(parsed);
    }
    return size_t{1};
  }();
  return threads;
}

}  // namespace

StreamEngine::StreamEngine(EngineOptions options)
    : default_optimizer_(std::move(options.optimizer)),
      default_placer_(std::move(options.placer)),
      default_config_(options.config),
      default_multi_query_(options.multi_query),
      refresh_index_on_install_(options.refresh_index_on_install) {}

StatusOr<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    EngineOptions options) {
  // Validate the default strategy names by resolving them once, so a typo
  // fails engine creation instead of the first Submit.
  auto placer = PlacerRegistry::Global().Create(options.placer);
  if (!placer.ok()) return placer.status();
  OptimizerSpec spec;
  spec.config = options.config;
  spec.multi_query = options.multi_query;
  spec.placer = std::move(placer.value());
  auto optimizer = OptimizerRegistry::Global().Create(options.optimizer, spec);
  if (!optimizer.ok()) return optimizer.status();

  auto sbon = overlay::Sbon::Create(std::move(options.topology), options.sbon);
  if (!sbon.ok()) return sbon.status();
  std::unique_ptr<StreamEngine> engine(new StreamEngine(std::move(options)));
  engine->sbon_ = std::move(sbon.value());
  return engine;
}

StreamId StreamEngine::AddStream(std::string name, double tuple_rate_per_s,
                                 double tuple_size_bytes, NodeId producer) {
  return catalog_.AddStream(std::move(name), tuple_rate_per_s,
                            tuple_size_bytes, producer);
}

StatusOr<std::unique_ptr<core::Optimizer>> StreamEngine::MakeOptimizer(
    const StrategySpec& strategy, std::string* optimizer_name,
    std::string* placer_name, OptimizerSpec* resolved) const {
  const std::string& opt_name =
      strategy.optimizer.empty() ? default_optimizer_ : strategy.optimizer;
  const std::string& pl_name =
      strategy.placer.empty() ? default_placer_ : strategy.placer;
  auto placer = PlacerRegistry::Global().Create(pl_name);
  if (!placer.ok()) return placer.status();
  OptimizerSpec spec;
  spec.config = strategy.config.value_or(default_config_);
  spec.multi_query = strategy.multi_query.value_or(default_multi_query_);
  spec.placer = std::move(placer.value());
  auto optimizer = OptimizerRegistry::Global().Create(opt_name, spec);
  if (!optimizer.ok()) return optimizer.status();
  if (optimizer_name != nullptr) *optimizer_name = opt_name;
  if (placer_name != nullptr) *placer_name = pl_name;
  if (resolved != nullptr) *resolved = std::move(spec);
  return optimizer;
}

StatusOr<core::OptimizeResult> StreamEngine::Optimize(
    const query::QuerySpec& spec, const StrategySpec& strategy) {
  auto optimizer = MakeOptimizer(strategy, nullptr, nullptr);
  if (!optimizer.ok()) return optimizer.status();
  return (*optimizer)->Optimize(spec, catalog_, sbon_.get());
}

Status StreamEngine::OptimizeAndInstall(const StrategySpec& strategy,
                                        QueryRecord* record) {
  std::string optimizer_name, placer_name;
  OptimizerSpec resolved;
  auto optimizer =
      MakeOptimizer(strategy, &optimizer_name, &placer_name, &resolved);
  if (!optimizer.ok()) return optimizer.status();
  auto result = (*optimizer)->Optimize(record->spec, catalog_, sbon_.get());
  if (!result.ok()) return result.status();
  overlay::Circuit circuit = std::move(result->circuit);
  // InstallCircuit is failure-atomic, so a failure here leaves the overlay
  // exactly as it was before the call.
  auto circuit_id = sbon_->InstallCircuit(std::move(circuit));
  if (!circuit_id.ok()) return circuit_id.status();
  if (msg_runtime_ != nullptr) {
    // Message mode bills the run's DHT traffic (the mapping stage's index
    // lookups/hops/probes) as kPlacement messages and stamps each placed
    // vertex with its host's coordinate staleness.
    msg_runtime_->BillPlacement(result->mapping.dht_cost,
                                sbon_->FindCircuit(*circuit_id));
  }
  record->optimizer = std::move(optimizer_name);
  record->placer = std::move(placer_name);
  record->config = resolved.config;
  record->multi_query = resolved.multi_query;
  record->result = std::move(*result);
  // The record keeps only the run's accounting; the installed circuit is
  // the authoritative copy (the one here would go stale on reopt anyway).
  record->result.circuit = overlay::Circuit();
  record->circuit = *circuit_id;
  return Status::OK();
}

StrategySpec StreamEngine::StrategyFromRecord(const QueryRecord& record,
                                              const std::string& optimizer) {
  StrategySpec strategy;
  strategy.optimizer = optimizer.empty() ? record.optimizer : optimizer;
  strategy.placer = record.placer;
  strategy.config = record.config;
  strategy.multi_query = record.multi_query;
  return strategy;
}

StatusOr<QueryHandle> StreamEngine::Submit(const query::QuerySpec& spec,
                                           const StrategySpec& strategy) {
  QueryRecord record;
  record.spec = spec;
  Status st = OptimizeAndInstall(strategy, &record);
  if (!st.ok()) return st;

  const QueryHandle handle{next_handle_++};
  by_circuit_.emplace(record.circuit, handle);
  queries_.emplace(handle, std::move(record));
  MaybeRefreshIndex();
  return handle;
}

std::vector<StatusOr<QueryHandle>> StreamEngine::SubmitAll(
    const std::vector<query::QuerySpec>& specs, const StrategySpec& strategy) {
  // One deferred refresh for the whole batch: each Submit stays atomic and
  // failure-isolated (a bad spec costs only its own slot), but the index
  // republish that refresh_index_on_install engines pay per deployment is
  // coalesced into a single pass when the scope closes.
  DeferRefresh defer(this);
  std::vector<StatusOr<QueryHandle>> handles;
  handles.reserve(specs.size());
  for (const query::QuerySpec& spec : specs) {
    handles.push_back(Submit(spec, strategy));
  }
  return handles;
}

Status StreamEngine::Remove(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::NotFound("no such query");
  Status st = sbon_->RemoveCircuit(it->second.circuit);
  // A circuit torn down out-of-band (directly on the Sbon) counts as
  // already removed; the query record must still be releasable.
  if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
  by_circuit_.erase(it->second.circuit);
  queries_.erase(it);
  MaybeRefreshIndex();
  return Status::OK();
}

StatusOr<ReoptOutcome> StreamEngine::Reoptimize(QueryHandle handle,
                                                const ReoptPolicy& policy) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::NotFound("no such query");
  QueryRecord& record = it->second;

  ReoptOutcome outcome;
  outcome.mode = policy.mode;
  if (policy.trigger == ReoptPolicy::Trigger::kHostDied) {
    // Nothing valid is running: the thresholds (and kLocal migration, which
    // needs an intact circuit) do not apply. Repair redeploys under the
    // same handle unconditionally.
    Status st = Repair(handle, policy.optimizer);
    if (!st.ok()) return st;
    outcome.mode = ReoptPolicy::Mode::kFull;
    outcome.full.redeployed = true;
    outcome.full.new_circuit = record.circuit;
    outcome.full.estimated_cost_candidate = record.result.estimated_cost;
    outcome.full.candidate = record.result;
    return outcome;
  }
  if (policy.mode == ReoptPolicy::Mode::kLocal) {
    auto placer = PlacerRegistry::Global().Create(record.placer);
    if (!placer.ok()) return placer.status();
    auto report = core::LocalReoptimize(sbon_.get(), record.circuit,
                                        **placer, policy.config);
    if (!report.ok()) return report.status();
    outcome.local = *report;
    return outcome;
  }

  const StrategySpec strategy = StrategyFromRecord(record, policy.optimizer);
  std::string optimizer_name;
  auto optimizer = MakeOptimizer(strategy, &optimizer_name, nullptr);
  if (!optimizer.ok()) return optimizer.status();
  auto report =
      core::FullReoptimize(sbon_.get(), record.circuit, record.spec, catalog_,
                           optimizer->get(), policy.config);
  if (!report.ok()) return report.status();
  outcome.full = *report;
  if (report->redeployed) {
    if (msg_runtime_ != nullptr) {
      msg_runtime_->BillPlacement(report->candidate.mapping.dht_cost,
                                  sbon_->FindCircuit(report->new_circuit));
    }
    // The handle now refers to the replacement circuit; the record's
    // accounting must describe the run that produced it, not the cancelled
    // original's.
    by_circuit_.erase(record.circuit);
    record.circuit = report->new_circuit;
    by_circuit_.emplace(record.circuit, handle);
    record.optimizer = optimizer_name;
    record.result = report->candidate;
    MaybeRefreshIndex();
  }
  return outcome;
}

Status StreamEngine::DetachForRepair(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::NotFound("no such query");
  QueryRecord& record = it->second;

  // A dead pinned endpoint (producer or consumer) is unrepairable by
  // re-placement: the spec demands that exact node.
  const overlay::Circuit* old_circuit = sbon_->FindCircuit(record.circuit);
  if (old_circuit != nullptr) {
    for (const overlay::CircuitVertex& v : old_circuit->vertices()) {
      if (v.pinned && !sbon_->IsAlive(v.host)) {
        return Status::FailedPrecondition("pinned endpoint is down");
      }
    }
    // Tear down the remnant: its surviving instances (and any shared ones)
    // are released via the usual detach bookkeeping, and the re-plan gets
    // a clean view of load and reuse candidates.
    Status st = sbon_->RemoveCircuit(record.circuit);
    if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
  }
  by_circuit_.erase(record.circuit);
  record.circuit = kInvalidCircuit;
  return Status::OK();
}

Status StreamEngine::ReplanQuery(QueryHandle handle,
                                 const std::string& optimizer) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::NotFound("no such query");
  QueryRecord& record = it->second;
  const Status st =
      OptimizeAndInstall(StrategyFromRecord(record, optimizer), &record);
  if (!st.ok()) return st;
  by_circuit_.emplace(record.circuit, handle);
  MaybeRefreshIndex();
  return Status::OK();
}

Status StreamEngine::Repair(QueryHandle handle, const std::string& optimizer) {
  Status st = DetachForRepair(handle);
  if (!st.ok()) return st;
  return ReplanQuery(handle, optimizer);
}

bool StreamEngine::FailAndRepair(NodeId n, bool notify_msg_runtime) {
  auto report = sbon_->FailNode(n);
  // The overlay may refuse (e.g. last alive node): no repair needed.
  if (!report.ok()) return false;
  ++repair_stats_.crashes;
  // In message mode the crash produces detector traffic (leaf-set kLeave
  // fan-out) and restarts the convergence clock. Notify before the repairs
  // so their placement probes land after the churn stamp.
  if (notify_msg_runtime && msg_runtime_ != nullptr) {
    net::ChurnEvent ev;
    ev.type = net::ChurnEventType::kCrash;
    ev.node = n;
    msg_runtime_->NotifyChurn(ev);
  }
  repair_stats_.services_evicted += report->services_evicted;
  repair_stats_.circuits_orphaned += report->orphaned.size();
  // Phase 1: tear down every orphaned remnant (dropping unrepairable
  // queries) before re-planning anything. Every circuit that depends
  // on a broken reuse chain is in the orphan set (AttachDependencyChain
  // guarantees it), so after this loop no instance missing its feeder
  // is left in the signature index for a re-plan to pick up.
  std::vector<QueryHandle> replan;
  for (CircuitId cid : report->orphaned) {
    const QueryHandle handle = HandleOf(cid);
    if (!handle) {
      // Not engine-managed (installed directly on the Sbon): release
      // the broken remnant so no orphaned instances linger.
      (void)sbon_->RemoveCircuit(cid);
      continue;
    }
    if (DetachForRepair(handle).ok()) {
      replan.push_back(handle);
    } else {
      // Unrepairable (a pinned endpoint died with the node): drop the
      // query; its handle is released.
      (void)Remove(handle);
      ++repair_stats_.queries_dropped;
    }
  }
  // Phase 2: re-plan the survivors in orphan (circuit-id) order.
  for (QueryHandle handle : replan) {
    if (ReplanQuery(handle, /*optimizer=*/{}).ok()) {
      ++repair_stats_.queries_repaired;
    } else {
      (void)Remove(handle);
      ++repair_stats_.queries_dropped;
    }
  }
  return true;
}

void StreamEngine::ApplyChurn(const std::vector<net::ChurnEvent>& events) {
  for (const net::ChurnEvent& ev : events) {
    switch (ev.type) {
      case net::ChurnEventType::kCrash: {
        if (DetectorMode()) {
          // Deferred crash: the endpoint goes dark now, silently — the
          // membership transition (FailNode + repair) waits for the
          // failure detector's confirmation. Refuse crashes that could
          // leave no alive node once every pending crash confirms.
          if (pending_crashes_.size() + 1 >= sbon_->overlay_nodes().size()) {
            break;
          }
          if (sbon_->CrashEndpoint(ev.node).ok()) {
            pending_crashes_.emplace(ev.node, msg_runtime_->bus_epoch());
          }
          break;
        }
        FailAndRepair(ev.node, /*notify_msg_runtime=*/true);
        break;
      }
      case net::ChurnEventType::kRejoin: {
        auto pc = pending_crashes_.find(ev.node);
        if (pc != pending_crashes_.end()) {
          // Back before anyone noticed: the overlay never saw the crash,
          // so restoring the endpoint is the whole rejoin.
          if (sbon_->RestoreEndpoint(ev.node).ok()) pending_crashes_.erase(pc);
          break;
        }
        if (sbon_->RejoinNode(ev.node).ok()) {
          ++repair_stats_.rejoins;
          if (msg_runtime_ != nullptr) msg_runtime_->NotifyChurn(ev);
        }
        break;
      }
      case net::ChurnEventType::kPartitionStart:
        if (sbon_->BeginPartition(ev.group, ev.severity).ok()) {
          ++repair_stats_.partitions;
          if (msg_runtime_ != nullptr) msg_runtime_->NotifyChurn(ev);
        }
        break;
      case net::ChurnEventType::kPartitionHeal:
        if (sbon_->EndPartition().ok()) {
          ++repair_stats_.heals;
          if (msg_runtime_ != nullptr) msg_runtime_->NotifyChurn(ev);
        }
        break;
    }
  }
}

void StreamEngine::MaybeRefreshIndex() {
  if (!refresh_index_on_install_) return;
  if (defer_refresh_depth_ > 0) {
    deferred_refresh_pending_ = true;
    return;
  }
  sbon_->RefreshIndex();
}

ThreadPool* StreamEngine::PoolFor(size_t threads) {
  if (threads <= 1) return nullptr;
  if (pool_ == nullptr || pool_->threads() != threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return pool_.get();
}

Status StreamEngine::AdvanceEpoch(const EpochOptions& epoch) {
  const size_t threads =
      epoch.threads > 0 ? epoch.threads : DefaultEpochThreads();
  EpochPipeline pipeline(PoolFor(threads));

  const bool message = epoch.exec_mode == ExecMode::kMessage;
  if (message && msg_runtime_ == nullptr) {
    // Validate once, at the construction that pins them (mirrors
    // Sbon::Options validation at Create). Later epochs keep the runtime,
    // so their (ignored) msg params aren't re-checked.
    Status st = msg::ValidateRuntimeParams(epoch.msg);
    if (!st.ok()) return st;
    msg_runtime_ = std::make_unique<msg::Runtime>(sbon_.get(), epoch.msg);
  }

  // Stage order is the epoch's semantics: each stage sees exactly what the
  // previous stages produced.
  // The jitter stage is only worth scheduling on workers when the fabric
  // backend actually does O(n^2) work there (dense matrix rewrite); the
  // sparse backend's tick is an O(1) seed bump.
  pipeline.Run("jitter", epoch.tick_network,
               /*parallelizable=*/sbon_->fabric().sharded_tick(),
               [&](ThreadPool* pool) { sbon_->TickNetwork(pool); });
  // Ambient load is one serial O(n) sweep over the shared Rng stream.
  pipeline.Run("load", epoch.dt > 0.0, /*parallelizable=*/false,
               [&](ThreadPool*) { sbon_->Tick(epoch.dt); });
  if (message) {
    // Message-mode coordinate maintenance: advance the bus clock and fan
    // out this epoch's pings. Pongs (and their spring updates) land in the
    // msg-refresh stage's drain. Serial by contract — single-threaded
    // discrete-event execution is what makes replay trivially thread-count
    // independent.
    pipeline.Run("msg-coords", /*enabled=*/true, /*parallelizable=*/false,
                 [&](ThreadPool*) {
                   msg_runtime_->BeginEpoch();
                   if (epoch.vivaldi_samples > 0) {
                     msg_runtime_->StepVivaldi(epoch.vivaldi_samples);
                   }
                 });
  } else {
    pipeline.Run("coords", epoch.vivaldi_samples > 0, /*parallelizable=*/true,
                 [&](ThreadPool* pool) {
                   sbon_->UpdateCoordinatesOnline(epoch.vivaldi_samples, pool);
                 });
  }
  // Churn lands after the network/load/coordinate updates (repairs place
  // against this epoch's state) and before the refresh (so the refresh
  // publishes post-repair load for every surviving node). Repairs stay
  // ordered: each re-plan may legitimately reuse instances the previous
  // repair just deployed, so the stage is sequential by design.
  pipeline.Run("churn+repair", epoch.churn != nullptr,
               /*parallelizable=*/false,
               [&](ThreadPool*) { ApplyChurn(epoch.churn->Step()); });
  if (message) {
    // Message-mode refresh: displacement publishes + ring heartbeats, the
    // epoch drain (delivering pongs and publishes in latency order), one
    // stabilization if any publish landed, and the coordinate sync.
    pipeline.Run("msg-refresh", /*enabled=*/true, /*parallelizable=*/false,
                 [&](ThreadPool*) {
                   msg_runtime_->FinishEpoch(epoch.refresh_index,
                                             epoch.refresh_epsilon);
                 });
  } else {
    pipeline.Run("refresh", epoch.refresh_index, /*parallelizable=*/true,
                 [&](ThreadPool* pool) {
                   sbon_->RefreshIndex(epoch.refresh_epsilon, pool);
                 });
  }
  if (message && msg_runtime_->detector_enabled()) {
    // Detector verdicts from this epoch's heartbeat sweep turn into the
    // membership transitions oracle mode applied instantly at the crash:
    // FailNode + the two-phase repair plan, with detection latency now a
    // measured quantity instead of zero by construction.
    pipeline.Run(
        "detect+repair", /*enabled=*/true, /*parallelizable=*/false,
        [&](ThreadPool*) {
          const size_t completed = msg_runtime_->bus_epoch() - 1;
          for (NodeId n : msg_runtime_->TakeConfirmedCrashes()) {
            auto pc = pending_crashes_.find(n);
            if (pc == pending_crashes_.end()) {
              // The node never physically crashed — the detector was
              // starved of its heartbeats (e.g. by a partition cut).
              msg_runtime_->NoteSpuriousConfirm(n);
              continue;
            }
            const size_t crash_epoch = pc->second;
            if (FailAndRepair(n, /*notify_msg_runtime=*/false)) {
              pending_crashes_.erase(pc);
              msg_runtime_->NotifyCrashConfirmed(n, completed - crash_epoch);
            }
            // FailNode refused (e.g. last alive node): keep the pending
            // record; suspicion rebuilds from silence and re-confirms.
          }
        });
  }
  last_epoch_trace_ = pipeline.trace();
  return Status::OK();
}

void StreamEngine::FillCurrentCost(QueryStats* stats) const {
  auto cost = sbon_->CircuitCostOf(stats->circuit);
  if (cost.ok()) stats->true_cost = *cost;
}

StatusOr<QueryStats> StreamEngine::StatsOf(QueryHandle handle) const {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::NotFound("no such query");
  const QueryRecord& record = it->second;
  QueryStats stats;
  stats.handle = handle;
  stats.circuit = record.circuit;
  stats.optimizer = record.optimizer;
  stats.estimated_cost = record.result.estimated_cost;
  stats.plans_considered = record.result.plans_considered;
  stats.placements_evaluated = record.result.placements_evaluated;
  stats.reuse_candidates_considered =
      record.result.reuse_candidates_considered;
  stats.services_reused = record.result.services_reused;
  stats.mapping = record.result.mapping;
  FillCurrentCost(&stats);
  return stats;
}

EngineSnapshot StreamEngine::Snapshot() const {
  EngineSnapshot snapshot;
  snapshot.num_queries = queries_.size();
  snapshot.num_services = sbon_->NumServices();
  for (const auto& [id, inst] : sbon_->services()) {
    if (inst.Shared()) ++snapshot.shared_services;
  }
  snapshot.total_network_usage = sbon_->TotalNetworkUsage();
  snapshot.max_load = sbon_->MaxLoad();
  snapshot.repair = repair_stats_;
  if (msg_runtime_ != nullptr) snapshot.decentralized = msg_runtime_->Summary();
  snapshot.kernels = KernelStats::Instance().Snapshot();
  snapshot.queries.reserve(queries_.size());
  for (const auto& [handle, record] : queries_) {
    auto stats = StatsOf(handle);
    if (stats.ok()) snapshot.queries.push_back(std::move(stats.value()));
  }
  return snapshot;
}

CircuitId StreamEngine::CircuitOf(QueryHandle handle) const {
  auto it = queries_.find(handle);
  return it == queries_.end() ? kInvalidCircuit : it->second.circuit;
}

QueryHandle StreamEngine::HandleOf(CircuitId circuit) const {
  auto it = by_circuit_.find(circuit);
  return it == by_circuit_.end() ? QueryHandle{} : it->second;
}

const query::QuerySpec* StreamEngine::SpecOf(QueryHandle handle) const {
  auto it = queries_.find(handle);
  return it == queries_.end() ? nullptr : &it->second.spec;
}

const core::OptimizeResult* StreamEngine::ResultOf(QueryHandle handle) const {
  auto it = queries_.find(handle);
  return it == queries_.end() ? nullptr : &it->second.result;
}

StatusOr<double> StreamEngine::CurrentEstimatedCost(QueryHandle handle) const {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::NotFound("no such query");
  const overlay::Circuit* circuit = sbon_->FindCircuit(it->second.circuit);
  if (circuit == nullptr) return Status::NotFound("circuit not deployed");
  return core::EstimateCost(*circuit, *sbon_, it->second.config.lambda);
}

}  // namespace sbon::engine

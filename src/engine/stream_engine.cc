#include "engine/stream_engine.h"

#include <algorithm>
#include <utility>

namespace sbon::engine {

StreamEngine::StreamEngine(EngineOptions options)
    : default_optimizer_(std::move(options.optimizer)),
      default_placer_(std::move(options.placer)),
      default_config_(options.config),
      default_multi_query_(options.multi_query),
      refresh_index_on_install_(options.refresh_index_on_install) {}

StatusOr<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    EngineOptions options) {
  // Validate the default strategy names by resolving them once, so a typo
  // fails engine creation instead of the first Submit.
  auto placer = PlacerRegistry::Global().Create(options.placer);
  if (!placer.ok()) return placer.status();
  OptimizerSpec spec;
  spec.config = options.config;
  spec.multi_query = options.multi_query;
  spec.placer = std::move(placer.value());
  auto optimizer = OptimizerRegistry::Global().Create(options.optimizer, spec);
  if (!optimizer.ok()) return optimizer.status();

  auto sbon = overlay::Sbon::Create(std::move(options.topology), options.sbon);
  if (!sbon.ok()) return sbon.status();
  std::unique_ptr<StreamEngine> engine(new StreamEngine(std::move(options)));
  engine->sbon_ = std::move(sbon.value());
  return engine;
}

StreamId StreamEngine::AddStream(std::string name, double tuple_rate_per_s,
                                 double tuple_size_bytes, NodeId producer) {
  return catalog_.AddStream(std::move(name), tuple_rate_per_s,
                            tuple_size_bytes, producer);
}

StatusOr<std::unique_ptr<core::Optimizer>> StreamEngine::MakeOptimizer(
    const StrategySpec& strategy, std::string* optimizer_name,
    std::string* placer_name, OptimizerSpec* resolved) const {
  const std::string& opt_name =
      strategy.optimizer.empty() ? default_optimizer_ : strategy.optimizer;
  const std::string& pl_name =
      strategy.placer.empty() ? default_placer_ : strategy.placer;
  auto placer = PlacerRegistry::Global().Create(pl_name);
  if (!placer.ok()) return placer.status();
  OptimizerSpec spec;
  spec.config = strategy.config.value_or(default_config_);
  spec.multi_query = strategy.multi_query.value_or(default_multi_query_);
  spec.placer = std::move(placer.value());
  auto optimizer = OptimizerRegistry::Global().Create(opt_name, spec);
  if (!optimizer.ok()) return optimizer.status();
  if (optimizer_name != nullptr) *optimizer_name = opt_name;
  if (placer_name != nullptr) *placer_name = pl_name;
  if (resolved != nullptr) *resolved = std::move(spec);
  return optimizer;
}

StatusOr<core::OptimizeResult> StreamEngine::Optimize(
    const query::QuerySpec& spec, const StrategySpec& strategy) {
  auto optimizer = MakeOptimizer(strategy, nullptr, nullptr);
  if (!optimizer.ok()) return optimizer.status();
  return (*optimizer)->Optimize(spec, catalog_, sbon_.get());
}

StatusOr<QueryHandle> StreamEngine::Submit(const query::QuerySpec& spec,
                                           const StrategySpec& strategy) {
  QueryRecord record;
  record.spec = spec;
  OptimizerSpec resolved;
  auto optimizer =
      MakeOptimizer(strategy, &record.optimizer, &record.placer, &resolved);
  if (!optimizer.ok()) return optimizer.status();
  record.config = resolved.config;
  record.multi_query = resolved.multi_query;

  auto result = (*optimizer)->Optimize(spec, catalog_, sbon_.get());
  if (!result.ok()) return result.status();
  overlay::Circuit circuit = std::move(result->circuit);
  record.result = std::move(*result);
  // The record keeps only the run's accounting; the installed circuit is
  // the authoritative copy (the one here would go stale on reopt anyway).
  record.result.circuit = overlay::Circuit();

  // InstallCircuit is failure-atomic, so a failure here leaves the overlay
  // exactly as it was before Submit.
  auto circuit_id = sbon_->InstallCircuit(std::move(circuit));
  if (!circuit_id.ok()) return circuit_id.status();
  record.circuit = *circuit_id;

  const QueryHandle handle{next_handle_++};
  by_circuit_.emplace(record.circuit, handle);
  queries_.emplace(handle, std::move(record));
  if (refresh_index_on_install_) sbon_->RefreshIndex();
  return handle;
}

std::vector<StatusOr<QueryHandle>> StreamEngine::SubmitAll(
    const std::vector<query::QuerySpec>& specs, const StrategySpec& strategy) {
  std::vector<StatusOr<QueryHandle>> handles;
  handles.reserve(specs.size());
  for (const query::QuerySpec& spec : specs) {
    handles.push_back(Submit(spec, strategy));
  }
  return handles;
}

Status StreamEngine::Remove(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::NotFound("no such query");
  Status st = sbon_->RemoveCircuit(it->second.circuit);
  // A circuit torn down out-of-band (directly on the Sbon) counts as
  // already removed; the query record must still be releasable.
  if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
  by_circuit_.erase(it->second.circuit);
  queries_.erase(it);
  if (refresh_index_on_install_) sbon_->RefreshIndex();
  return Status::OK();
}

StatusOr<ReoptOutcome> StreamEngine::Reoptimize(QueryHandle handle,
                                                const ReoptPolicy& policy) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::NotFound("no such query");
  QueryRecord& record = it->second;

  ReoptOutcome outcome;
  outcome.mode = policy.mode;
  if (policy.mode == ReoptPolicy::Mode::kLocal) {
    auto placer = PlacerRegistry::Global().Create(record.placer);
    if (!placer.ok()) return placer.status();
    auto report = core::LocalReoptimize(sbon_.get(), record.circuit,
                                        **placer, policy.config);
    if (!report.ok()) return report.status();
    outcome.local = *report;
    return outcome;
  }

  StrategySpec strategy;
  strategy.optimizer =
      policy.optimizer.empty() ? record.optimizer : policy.optimizer;
  strategy.placer = record.placer;
  strategy.config = record.config;
  strategy.multi_query = record.multi_query;
  std::string optimizer_name;
  auto optimizer = MakeOptimizer(strategy, &optimizer_name, nullptr);
  if (!optimizer.ok()) return optimizer.status();
  auto report =
      core::FullReoptimize(sbon_.get(), record.circuit, record.spec, catalog_,
                           optimizer->get(), policy.config);
  if (!report.ok()) return report.status();
  outcome.full = *report;
  if (report->redeployed) {
    // The handle now refers to the replacement circuit; the record's
    // accounting must describe the run that produced it, not the cancelled
    // original's.
    by_circuit_.erase(record.circuit);
    record.circuit = report->new_circuit;
    by_circuit_.emplace(record.circuit, handle);
    record.optimizer = optimizer_name;
    record.result = report->candidate;
    if (refresh_index_on_install_) sbon_->RefreshIndex();
  }
  return outcome;
}

void StreamEngine::AdvanceEpoch(const EpochOptions& epoch) {
  if (epoch.tick_network) sbon_->TickNetwork();
  if (epoch.dt > 0.0) sbon_->Tick(epoch.dt);
  if (epoch.vivaldi_samples > 0) {
    sbon_->UpdateCoordinatesOnline(epoch.vivaldi_samples);
  }
  if (epoch.refresh_index) sbon_->RefreshIndex(epoch.refresh_epsilon);
}

void StreamEngine::FillCurrentCost(QueryStats* stats) const {
  auto cost = sbon_->CircuitCostOf(stats->circuit);
  if (cost.ok()) stats->true_cost = *cost;
}

StatusOr<QueryStats> StreamEngine::StatsOf(QueryHandle handle) const {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::NotFound("no such query");
  const QueryRecord& record = it->second;
  QueryStats stats;
  stats.handle = handle;
  stats.circuit = record.circuit;
  stats.optimizer = record.optimizer;
  stats.estimated_cost = record.result.estimated_cost;
  stats.plans_considered = record.result.plans_considered;
  stats.placements_evaluated = record.result.placements_evaluated;
  stats.reuse_candidates_considered =
      record.result.reuse_candidates_considered;
  stats.services_reused = record.result.services_reused;
  stats.mapping = record.result.mapping;
  FillCurrentCost(&stats);
  return stats;
}

EngineSnapshot StreamEngine::Snapshot() const {
  EngineSnapshot snapshot;
  snapshot.num_queries = queries_.size();
  snapshot.num_services = sbon_->NumServices();
  for (const auto& [id, inst] : sbon_->services()) {
    if (inst.Shared()) ++snapshot.shared_services;
  }
  snapshot.total_network_usage = sbon_->TotalNetworkUsage();
  snapshot.max_load = sbon_->MaxLoad();
  snapshot.queries.reserve(queries_.size());
  for (const auto& [handle, record] : queries_) {
    auto stats = StatsOf(handle);
    if (stats.ok()) snapshot.queries.push_back(std::move(stats.value()));
  }
  return snapshot;
}

CircuitId StreamEngine::CircuitOf(QueryHandle handle) const {
  auto it = queries_.find(handle);
  return it == queries_.end() ? kInvalidCircuit : it->second.circuit;
}

QueryHandle StreamEngine::HandleOf(CircuitId circuit) const {
  auto it = by_circuit_.find(circuit);
  return it == by_circuit_.end() ? QueryHandle{} : it->second;
}

const query::QuerySpec* StreamEngine::SpecOf(QueryHandle handle) const {
  auto it = queries_.find(handle);
  return it == queries_.end() ? nullptr : &it->second.spec;
}

StatusOr<double> StreamEngine::CurrentEstimatedCost(QueryHandle handle) const {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::NotFound("no such query");
  const overlay::Circuit* circuit = sbon_->FindCircuit(it->second.circuit);
  if (circuit == nullptr) return Status::NotFound("circuit not deployed");
  return core::EstimateCost(*circuit, *sbon_, it->second.config.lambda);
}

}  // namespace sbon::engine

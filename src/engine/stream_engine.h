#ifndef SBON_ENGINE_STREAM_ENGINE_H_
#define SBON_ENGINE_STREAM_ENGINE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/multi_query.h"
#include "core/optimizer.h"
#include "core/reopt.h"
#include "engine/epoch_pipeline.h"
#include "engine/registry.h"
#include "msg/agents.h"
#include "net/churn.h"
#include "net/topology.h"
#include "overlay/metrics.h"
#include "overlay/sbon.h"
#include "query/catalog.h"
#include "query/query_spec.h"

namespace sbon::engine {

/// Opaque reference to a query submitted to a StreamEngine. Handles stay
/// valid across re-optimization: a full re-plan swaps the underlying
/// circuit, not the handle.
struct QueryHandle {
  uint64_t id = 0;

  explicit operator bool() const { return id != 0; }
  friend bool operator==(QueryHandle a, QueryHandle b) { return a.id == b.id; }
  friend bool operator!=(QueryHandle a, QueryHandle b) { return a.id != b.id; }
  friend bool operator<(QueryHandle a, QueryHandle b) { return a.id < b.id; }
};

/// Per-call strategy override. Empty/absent fields fall back to the
/// engine-wide defaults from EngineOptions, so the common case is
/// `Submit(spec)` and an ablation is `Submit(spec, {.optimizer = "two-step"})`.
struct StrategySpec {
  std::string optimizer;  ///< registry name; empty = engine default
  std::string placer;     ///< registry name; empty = engine default
  std::optional<core::OptimizerConfig> config;
  std::optional<core::MultiQueryOptimizer::Params> multi_query;
};

/// Everything needed to bring up a StreamEngine: the physical topology, the
/// overlay substrate options, and the default optimization strategy.
struct EngineOptions {
  net::Topology topology;
  overlay::Sbon::Options sbon;
  /// Default strategies, resolved through the global registries.
  std::string optimizer = "integrated";
  std::string placer = "relaxation";
  core::OptimizerConfig config;
  core::MultiQueryOptimizer::Params multi_query;
  /// Republish every node's coordinate (with fresh load scalars) into the
  /// index after each successful Submit/Remove. Costs one index refresh per
  /// deployment; without it, mapping queries see load as of the last
  /// AdvanceEpoch.
  bool refresh_index_on_install = false;
};

/// How AdvanceEpoch executes the coordinate/ring maintenance stages.
enum class ExecMode {
  /// God's-eye maintenance: global Vivaldi sweep against the live latency
  /// oracle, direct index refresh. Zero control traffic; bit-identical to
  /// the engine before message mode existed.
  kOracle,
  /// Decentralized message passing: node-local agents exchange explicit
  /// ping/pong, publish/stabilize, and placement-probe traffic over a
  /// deterministic discrete-event bus (msg::MessageBus) whose deliveries
  /// pay live fabric latency and drop across partitions / to dead nodes.
  /// Surfaces per-epoch TrafficStats through EngineSnapshot::decentralized.
  kMessage,
};

/// One engine epoch: what AdvanceEpoch should advance. Replaces the manual
/// `TickNetwork` / `Tick` / `UpdateCoordinatesOnline` / `RefreshIndex`
/// sequence every client used to hand-wire.
struct EpochOptions {
  /// Ambient-load time step (0 = leave node load untouched).
  double dt = 1.0;
  /// Start a new latency epoch (resamples pairwise jitter when the overlay
  /// was built with `latency_jitter_sigma > 0`).
  bool tick_network = true;
  /// Online Vivaldi measurements per node against the new latencies.
  size_t vivaldi_samples = 0;
  /// Republished coordinates + index restabilization at the end.
  bool refresh_index = true;
  /// Displacement threshold (cost-space units) for the refresh: only nodes
  /// whose full coordinate moved more than this since their last publish
  /// are re-published. 0 republishes anything that changed at all; a quiet
  /// epoch (nothing beyond epsilon) performs zero ring re-publishes and
  /// skips restabilization entirely.
  double refresh_epsilon = 0.0;
  /// Membership churn driver: each AdvanceEpoch consumes one
  /// `churn->Step()` worth of events — crashes evict services and trigger
  /// the handle-stable repair plan, rejoins re-publish the node, partition
  /// events inflate cross-cut latency — after network/load/coordinate
  /// updates and before the index refresh. nullptr (the default) runs
  /// a bit-identical epoch to the pre-churn engine. Not owned.
  net::ChurnModel* churn = nullptr;
  /// Worker threads for the parallelizable pipeline stages (jitter rows,
  /// per-node Vivaldi updates, the refresh dirty scan). 1 = fully serial.
  /// 0 (the default) resolves from the SBON_EPOCH_THREADS environment
  /// variable when set (how the CI ThreadSanitizer lane runs the whole
  /// suite multi-threaded without touching each test), else 1. Fixed-seed
  /// results are bit-identical at any thread count — the pool changes only
  /// how epochs are scheduled, never what they compute.
  size_t threads = 0;
  /// Coordinate/ring maintenance execution (see ExecMode). The first
  /// kMessage epoch creates the engine's msg::Runtime from `msg`; later
  /// epochs keep that runtime (its params are pinned at creation, so agents
  /// and counters stay continuous across epochs). The message stages run
  /// serially whatever `threads` says — replay is bit-identical per seed at
  /// any thread count by construction.
  ExecMode exec_mode = ExecMode::kOracle;
  msg::RuntimeParams msg;
};

/// How Reoptimize should treat a query.
struct ReoptPolicy {
  enum class Mode {
    kLocal,  ///< migrate services of the existing circuit (cheap)
    kFull,   ///< re-run the optimizer; redeploy if the gain clears the bar
  };
  /// Why re-optimization is running — decides whether the improvement bars
  /// apply at all.
  enum class Trigger {
    kDrift,     ///< periodic / cost-drift pass: hysteresis thresholds apply
    kHostDied,  ///< the circuit lost a host to churn: nothing valid is
                ///< running, so a full re-plan deploys unconditionally
                ///< (Mode is ignored; the handle stays valid)
  };
  Mode mode = Mode::kLocal;
  Trigger trigger = Trigger::kDrift;
  core::ReoptConfig config;
  /// Full-reopt optimizer override (registry name). Empty = the optimizer
  /// the query was submitted with.
  std::string optimizer;
};

/// What one Reoptimize call did. `local` is meaningful in kLocal mode,
/// `full` in kFull mode.
struct ReoptOutcome {
  ReoptPolicy::Mode mode = ReoptPolicy::Mode::kLocal;
  core::LocalReoptReport local;
  core::FullReoptReport full;
};

/// Per-query statistics, combining submit-time optimizer accounting with
/// the current deployed state.
struct QueryStats {
  QueryHandle handle;
  CircuitId circuit = kInvalidCircuit;
  std::string optimizer;  ///< registry name the query was optimized with
  double estimated_cost = 0.0;  ///< optimizer estimate at (re)deployment
  size_t plans_considered = 0;
  size_t placements_evaluated = 0;
  size_t reuse_candidates_considered = 0;
  size_t services_reused = 0;
  placement::MappingReport mapping;
  /// Current cost against true latencies (filled by Snapshot/StatsOf).
  overlay::CircuitCost true_cost;
};

/// Cumulative failure/repair accounting since engine creation (surfaced in
/// EngineSnapshot; what a deployment's churn dashboard would plot).
struct RepairStats {
  size_t crashes = 0;            ///< nodes failed via churn events
  size_t rejoins = 0;            ///< nodes brought back
  size_t partitions = 0;         ///< partition starts applied
  size_t heals = 0;              ///< partitions healed
  size_t services_evicted = 0;   ///< instances lost to dead hosts
  size_t circuits_orphaned = 0;  ///< circuits broken by failures
  size_t queries_repaired = 0;   ///< re-placed under their original handle
  size_t queries_dropped = 0;    ///< unrepairable (pinned endpoint down or
                                 ///< re-placement failed); handle released
};

/// Engine-wide view of the deployment.
struct EngineSnapshot {
  size_t num_queries = 0;
  size_t num_services = 0;
  size_t shared_services = 0;  ///< instances serving more than one circuit
  double total_network_usage = 0.0;
  double max_load = 0.0;
  RepairStats repair;               ///< cumulative churn/repair accounting
  std::vector<QueryStats> queries;  ///< in submission (handle) order
  /// Control-traffic summary of message-mode execution (absent until the
  /// engine has run a kMessage epoch): msgs/bytes by protocol, bytes per
  /// node per epoch, convergence epochs after churn, placement staleness.
  std::optional<msg::TrafficSummary> decentralized;
  /// Cumulative hot-kernel counters (vivaldi_update / knearest_scan /
  /// cost_eval) since process start — calls, ops, ns, attributed allocs.
  /// Process-wide (KernelStats singleton), so with several engines alive it
  /// aggregates across them; diff two snapshots to scope a window.
  KernelStatsSnapshot kernels;
};

/// The SBON as a service (paper Sec. 4): clients submit continuous queries
/// and the engine optimizes, deploys, measures, and re-optimizes them —
/// no client ever touches placers, optimizers, or the DHT index directly.
///
/// Owns the overlay runtime (`overlay::Sbon`) and the stream catalog, and
/// resolves optimization strategies by name through the global registries.
///
/// `Submit` is atomic: optimization plus installation either fully succeed
/// (returning a live QueryHandle) or leave the overlay untouched.
class StreamEngine {
 public:
  static StatusOr<std::unique_ptr<StreamEngine>> Create(EngineOptions options);

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// RAII scope that coalesces install-triggered index refreshes
  /// (`EngineOptions::refresh_index_on_install`): while at least one scope
  /// is open, Submit/Remove/Reoptimize/Repair skip their per-call
  /// `RefreshIndex()` and the outermost scope's destructor performs one
  /// refresh iff any deployment changed underneath it. SubmitAll opens one
  /// internally (a Q-query batch pays one refresh, not Q); WorkloadEngine
  /// wraps each departure burst the same way. A no-op on engines built
  /// without refresh_index_on_install — there the AdvanceEpoch refresh
  /// stage is the only publisher. Scopes nest.
  class DeferRefresh {
   public:
    explicit DeferRefresh(StreamEngine* engine) : engine_(engine) {
      ++engine_->defer_refresh_depth_;
    }
    ~DeferRefresh() {
      if (--engine_->defer_refresh_depth_ == 0 &&
          engine_->deferred_refresh_pending_) {
        engine_->deferred_refresh_pending_ = false;
        engine_->sbon_->RefreshIndex();
      }
    }
    DeferRefresh(const DeferRefresh&) = delete;
    DeferRefresh& operator=(const DeferRefresh&) = delete;

   private:
    StreamEngine* engine_;
  };

  // --- stream catalog ---
  const query::Catalog& catalog() const { return catalog_; }
  /// Replaces the catalog wholesale (e.g. a pre-built workload). Running
  /// queries keep their circuits; re-optimization uses the new catalog.
  void SetCatalog(query::Catalog catalog) { catalog_ = std::move(catalog); }
  /// Registers a stream pinned at `producer` and returns its id.
  StreamId AddStream(std::string name, double tuple_rate_per_s,
                     double tuple_size_bytes, NodeId producer);

  // --- query lifecycle ---
  /// Optimizes `spec` and deploys the winning circuit as one atomic step:
  /// if installation fails, no service instance or load delta survives.
  StatusOr<QueryHandle> Submit(const query::QuerySpec& spec,
                               const StrategySpec& strategy = {});
  /// Submits a batch; element i of the result corresponds to specs[i].
  /// Queries are deployed in order, so later ones can reuse the services of
  /// earlier ones (under a reuse-capable optimizer).
  std::vector<StatusOr<QueryHandle>> SubmitAll(
      const std::vector<query::QuerySpec>& specs,
      const StrategySpec& strategy = {});
  /// Tears the query down, releasing service instances (and their load)
  /// that no other circuit uses.
  Status Remove(QueryHandle handle);
  /// Local (service-migration) or full (re-plan + parallel redeploy)
  /// re-optimization. The handle remains valid either way.
  StatusOr<ReoptOutcome> Reoptimize(QueryHandle handle,
                                    const ReoptPolicy& policy);
  /// Handle-stable repair for a query whose circuit lost a host: tears down
  /// whatever remnant is still installed (shared instances survive if other
  /// circuits use them) and re-optimizes the original spec with the query's
  /// recorded strategy — no improvement bar, because nothing valid is
  /// running. On failure the query record survives unchanged (minus the
  /// already-removed remnant), so the caller may retry or Remove it.
  /// `optimizer` optionally overrides the recorded optimizer by registry
  /// name. Also reachable via Reoptimize with Trigger::kHostDied.
  ///
  /// When one failure orphans *several* queries, repair them through the
  /// churn pipeline (AdvanceEpoch) rather than one Repair call at a time:
  /// the pipeline tears every orphaned remnant down before re-planning any
  /// of them, so a re-plan can never reuse a surviving mid-chain instance
  /// whose feeder was just evicted.
  Status Repair(QueryHandle handle, const std::string& optimizer = {});
  /// Advances simulated time one epoch through the explicit staged
  /// pipeline: jitter -> load -> coords -> churn+repair -> refresh (see
  /// EpochPipeline; message mode appends a detect+repair stage that
  /// consumes failure-detector verdicts). Stages whose work is
  /// deterministically shardable run across `EpochOptions::threads`
  /// workers; results are bit-identical at any thread count. Returns
  /// InvalidArgument (without running any stage) when the first kMessage
  /// epoch carries out-of-range msg::RuntimeParams.
  Status AdvanceEpoch(const EpochOptions& epoch = EpochOptions());
  /// Per-stage trace of the most recent AdvanceEpoch (empty before the
  /// first call): which stages ran, which sharded, and their wall time.
  const std::vector<EpochStageTrace>& last_epoch_trace() const {
    return last_epoch_trace_;
  }

  /// Optimizes without deploying (compare-only flows, ablations).
  StatusOr<core::OptimizeResult> Optimize(const query::QuerySpec& spec,
                                          const StrategySpec& strategy = {});

  // --- introspection ---
  EngineSnapshot Snapshot() const;
  StatusOr<QueryStats> StatsOf(QueryHandle handle) const;
  /// Circuit currently serving the query (kInvalidCircuit if unknown).
  CircuitId CircuitOf(QueryHandle handle) const;
  /// Handle of the query a circuit serves ({} if unknown).
  QueryHandle HandleOf(CircuitId circuit) const;
  /// Spec the query was submitted with (nullptr if unknown).
  const query::QuerySpec* SpecOf(QueryHandle handle) const;
  /// Submit-time optimizer accounting of the query's last (re)deployment —
  /// reuse counters, plans considered — without the cost-space evaluation
  /// StatsOf pays per call. nullptr if unknown. The embedded circuit is
  /// empty by contract (the installed copy is authoritative).
  const core::OptimizeResult* ResultOf(QueryHandle handle) const;
  /// The optimizer's cost metric for the query's circuit against the
  /// *current* cost space (drifts as the network churns).
  StatusOr<double> CurrentEstimatedCost(QueryHandle handle) const;
  size_t NumQueries() const { return queries_.size(); }
  /// Cumulative churn/repair accounting (also embedded in Snapshot()).
  const RepairStats& repair_stats() const { return repair_stats_; }

  /// The overlay runtime. Mutating its load/coordinate state directly
  /// (e.g. SetBaseLoad in tests) is fine, but circuits deployed through the
  /// engine are tracked by id — prefer Remove()/Reoptimize() over direct
  /// RemoveCircuit calls. Remove() tolerates a circuit that already
  /// disappeared out-of-band (it just releases the query record).
  overlay::Sbon& sbon() { return *sbon_; }
  const overlay::Sbon& sbon() const { return *sbon_; }

  /// The message-mode runtime (nullptr until the first kMessage epoch).
  /// Once created, every subsequent placement (Submit/Repair/full reopt) is
  /// billed as kPlacement traffic and staleness-stamped, whichever exec
  /// mode later epochs use.
  const msg::Runtime* msg_runtime() const { return msg_runtime_.get(); }

 private:
  /// Everything the engine remembers about a submitted query.
  struct QueryRecord {
    query::QuerySpec spec;
    CircuitId circuit = kInvalidCircuit;
    std::string optimizer;  ///< resolved registry name
    std::string placer;     ///< resolved registry name
    core::OptimizerConfig config;
    core::MultiQueryOptimizer::Params multi_query;
    core::OptimizeResult result;  ///< accounting of the winning run
  };

  explicit StreamEngine(EngineOptions options);

  /// Resolves a StrategySpec against the engine defaults into concrete
  /// (optimizer name, placer name, spec) and instantiates the optimizer.
  /// All out-params are optional; `resolved` receives the exact spec the
  /// optimizer was built with (single point of defaults resolution).
  StatusOr<std::unique_ptr<core::Optimizer>> MakeOptimizer(
      const StrategySpec& strategy, std::string* optimizer_name,
      std::string* placer_name, OptimizerSpec* resolved = nullptr) const;

  /// The deploy protocol shared by Submit and Repair: resolves `strategy`,
  /// optimizes `record->spec`, installs the winning circuit, and rewrites
  /// the record's accounting (strategy names, config, result with its
  /// circuit cleared — the installed copy is authoritative — and the new
  /// circuit id). On failure the overlay is untouched and the record keeps
  /// whatever it held before.
  Status OptimizeAndInstall(const StrategySpec& strategy,
                            QueryRecord* record);

  /// The strategy a query was last deployed with, with an optional
  /// optimizer override by registry name.
  static StrategySpec StrategyFromRecord(const QueryRecord& record,
                                         const std::string& optimizer);

  void FillCurrentCost(QueryStats* stats) const;

  /// Applies one epoch's churn events: crashes run FailNode plus the repair
  /// plan over every orphaned circuit, rejoins run RejoinNode, partition
  /// events start/heal the latency cut. Events the overlay rejects (e.g. a
  /// crash that would take down the last alive node) are skipped.
  ///
  /// Repair is two-phase per crash: every orphaned remnant is torn down
  /// (unrepairable queries dropped) before any re-plan runs, so instances
  /// of a broken reuse chain are fully released — never left in the
  /// signature index for a re-plan to reuse without their feeders.
  void ApplyChurn(const std::vector<net::ChurnEvent>& events);
  /// The oracle crash path: FailNode + the two-phase repair plan over the
  /// orphaned circuits. `notify_msg_runtime` reports the crash to message
  /// mode's convergence clock / leaf-set fanout (false on the detector
  /// path, which does its own post-confirmation notification). Returns
  /// false when the overlay refused the failure (e.g. last alive node).
  bool FailAndRepair(NodeId n, bool notify_msg_runtime);
  /// True when message mode runs with the decentralized failure detector:
  /// crashes defer membership transitions until the detector confirms.
  bool DetectorMode() const {
    return msg_runtime_ != nullptr && msg_runtime_->detector_enabled();
  }
  /// Repair phase 1: validates the query is repairable (no dead pinned
  /// endpoint) and tears down its circuit remnant, leaving the record with
  /// kInvalidCircuit. Fails without side effects on a dead endpoint.
  Status DetachForRepair(QueryHandle handle);
  /// Repair phase 2: re-optimizes and redeploys under the same handle.
  Status ReplanQuery(QueryHandle handle, const std::string& optimizer);

  /// The epoch pipeline's worker pool, created lazily at the first
  /// multi-threaded AdvanceEpoch and resized when the requested thread
  /// count changes. Returns nullptr for threads <= 1 (serial epochs pay
  /// zero threading overhead).
  ThreadPool* PoolFor(size_t threads);

  /// The install-time refresh gate shared by every deployment mutation:
  /// refreshes immediately when the engine was built with
  /// refresh_index_on_install and no DeferRefresh scope is open, otherwise
  /// leaves the refresh pending for the outermost scope to flush.
  void MaybeRefreshIndex();

  std::string default_optimizer_;
  std::string default_placer_;
  core::OptimizerConfig default_config_;
  core::MultiQueryOptimizer::Params default_multi_query_;
  bool refresh_index_on_install_ = false;
  /// Open DeferRefresh scopes; > 0 redirects install-time refreshes into
  /// deferred_refresh_pending_ for the outermost scope to flush.
  size_t defer_refresh_depth_ = 0;
  bool deferred_refresh_pending_ = false;

  std::unique_ptr<overlay::Sbon> sbon_;
  query::Catalog catalog_;
  std::map<QueryHandle, QueryRecord> queries_;
  /// Inverse of QueryRecord::circuit, kept in sync by Submit / Remove /
  /// Reoptimize so HandleOf stays cheap at many-query scale.
  std::map<CircuitId, QueryHandle> by_circuit_;
  uint64_t next_handle_ = 1;
  RepairStats repair_stats_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<EpochStageTrace> last_epoch_trace_;
  /// Created lazily by the first kMessage AdvanceEpoch; never torn down
  /// (traffic accounting is cumulative, like repair_stats_).
  std::unique_ptr<msg::Runtime> msg_runtime_;
  /// Detector mode: physically crashed nodes (endpoint dark) whose
  /// membership transition awaits detector confirmation, with the bus
  /// epoch the crash happened at (detection latency = confirmation epoch
  /// minus this).
  std::map<NodeId, size_t> pending_crashes_;
};

}  // namespace sbon::engine

#endif  // SBON_ENGINE_STREAM_ENGINE_H_

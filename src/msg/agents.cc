#include "msg/agents.h"

#include <algorithm>
#include <utility>

namespace sbon::msg {

// --- VivaldiAgent ----------------------------------------------------------

VivaldiAgent::VivaldiAgent(MessageBus* bus, overlay::Sbon* sbon,
                           const VivaldiAgentParams& params,
                           const ReliabilityParams& reliability)
    : bus_(bus),
      sbon_(sbon),
      params_(params),
      reliability_(reliability),
      dedup_(sbon->topology().NumNodes(),
             reliability.enabled ? reliability.dedup_window : 1) {
  peers_.assign(sbon_->topology().NumNodes() * params_.peer_set_size,
                kInvalidNode);
  bus_->SetHandler(Protocol::kVivaldi,
                   [this](const Envelope& e) { HandleMessage(e); });
}

NodeId VivaldiAgent::PeerFor(NodeId self, size_t slot) {
  NodeId& peer = peers_[static_cast<size_t>(self) * params_.peer_set_size +
                        slot % params_.peer_set_size];
  if (peer == kInvalidNode || !sbon_->IsAlive(peer)) {
    // Re-sample a dead/empty slot from the currently alive overlay nodes
    // (the caller guarantees at least two, so the self-rejection loop
    // terminates).
    const std::vector<NodeId>& alive = sbon_->overlay_nodes();
    do {
      peer = alive[bus_->rng().UniformInt(
          static_cast<uint64_t>(alive.size()))];
    } while (peer == self);
  }
  return peer;
}

void VivaldiAgent::StepEpoch(size_t samples_per_node) {
  if (sbon_->overlay_nodes().size() < 2) return;
  if (sbon_->coords().vivaldi() == nullptr) return;
  for (NodeId self : sbon_->overlay_nodes()) {
    for (size_t s = 0; s < samples_per_node; ++s) {
      Envelope ping;
      ping.proto = Protocol::kVivaldi;
      ping.kind = MsgKind::kPing;
      ping.from = self;
      ping.to = PeerFor(self, round_ + s);
      ping.bytes = params_.ping_bytes;
      bus_->Send(std::move(ping));
    }
  }
  // Next epoch pings the following round-robin slice of each peer set, so a
  // node cycles its whole bounded view instead of hammering one slot.
  round_ += samples_per_node;
}

void VivaldiAgent::HandleMessage(const Envelope& e) {
  if (reliability_.enabled && !dedup_.FirstSighting(e.to, e.tid)) {
    // Duplicated ping or pong: suppress before any side effect (a repeated
    // pong would apply the spring update twice; a repeated ping would send
    // a second pong).
    ++bus_->stats().reliability.dup_suppressed;
    return;
  }
  const coords::VivaldiSystem* vivaldi = sbon_->coords().vivaldi();
  if (vivaldi == nullptr) return;
  switch (e.kind) {
    case MsgKind::kPing: {
      Envelope pong;
      pong.proto = Protocol::kVivaldi;
      pong.kind = MsgKind::kPong;
      pong.from = e.to;
      pong.to = e.from;
      pong.subject = e.to;
      pong.coord = vivaldi->Coord(e.to);
      pong.aux0 = e.send_ms;  // echo: the sampler recovers the round trip
      pong.aux1 = vivaldi->LocalError(e.to);
      pong.bytes = params_.pong_base_bytes + 8 * vivaldi->dims();
      bus_->Send(std::move(pong));
      break;
    }
    case MsgKind::kPong: {
      // One-way latency estimate: half the measured round trip (the oracle
      // sweep samples the one-way live latency directly).
      const double rtt = (bus_->now_ms() - e.aux0) * 0.5;
      sbon_->mutable_coords().ApplyRemoteSample(e.to, e.from, e.coord, e.aux1,
                                                rtt);
      break;
    }
    default:
      break;
  }
}

// --- RingAgent -------------------------------------------------------------

RingAgent::RingAgent(MessageBus* bus, overlay::Sbon* sbon,
                     const RingAgentParams& params,
                     const ReliabilityParams& reliability)
    : bus_(bus),
      sbon_(sbon),
      params_(params),
      reliability_(reliability),
      dedup_(sbon->topology().NumNodes(),
             reliability.enabled ? reliability.dedup_window : 1) {
  publish_epoch_.assign(sbon_->topology().NumNodes(), 0);
  bus_->SetHandler(Protocol::kRing,
                   [this](const Envelope& e) { HandleMessage(e); });
}

dht::ChordRing::LookupResult RingAgent::Route(const dht::U128& key,
                                              const dht::U128& origin,
                                              NodeId self) {
  auto result = sbon_->index().ring().Lookup(key, origin);
  if (result.ok()) return *result;
  // Degenerate ring (e.g. a single member): apply locally, zero hops.
  dht::ChordRing::LookupResult local;
  local.node = self;
  local.key = key;
  return local;
}

void RingAgent::BillHops(NodeId via, size_t hops) {
  if (hops == 0) return;
  // Intermediate hops relay the message; they are billed as sent ring
  // traffic (attributed to the originator's account — per-relay attribution
  // would need the route's member list, which Lookup doesn't expose) but
  // not enqueued: only the final delivery is simulated.
  TrafficStats& stats = bus_->stats();
  TrafficCounters& c = stats.protocol[static_cast<size_t>(Protocol::kRing)];
  c.sent += hops;
  c.bytes += hops * params_.per_hop_bytes;
  stats.node_msgs[via] += hops;
  stats.node_bytes[via] += hops * params_.per_hop_bytes;
}

NodeId RingAgent::NextAliveAfter(NodeId n) const {
  const std::vector<NodeId>& alive = sbon_->overlay_nodes();
  if (alive.empty()) return kInvalidNode;
  auto it = std::upper_bound(alive.begin(), alive.end(), n);
  return it == alive.end() ? alive.front() : *it;
}

void RingAgent::StepEpoch(double epsilon) {
  publishes_sent_epoch_ = 0;
  // Retries first, outside the epsilon guard: pending transfers keep
  // draining even in epochs where refresh is disabled.
  RetryPending();
  const dht::CoordinateIndex& index = sbon_->index();
  if (epsilon >= 0.0) {
    displaced_.clear();
    sbon_->coords().CollectDisplaced(sbon_->overlay_nodes(), epsilon,
                                     &displaced_);
    for (NodeId n : displaced_) {
      const Vec full = sbon_->cost_space().FullCoord(n);
      const dht::U128 key = index.quantizer().Key(full);
      // Route from the node's own key region toward the new key: a
      // displacement republish travels from where the node sits to where
      // it belongs, which is short for small drifts and longer the further
      // the coordinate moved.
      const dht::ChordRing::LookupResult route = Route(key, key, n);
      BillHops(n, route.hops);
      Envelope publish;
      publish.proto = Protocol::kRing;
      publish.kind = MsgKind::kPublish;
      publish.from = n;
      publish.to = route.node;
      publish.subject = n;
      publish.coord = full;
      publish.bytes = params_.publish_base_bytes + 8 * full.dims();
      if (reliability_.enabled) {
        publish.tid = bus_->IssueTid();
        TrackReliable(publish);
      }
      bus_->Send(std::move(publish));
      ++publishes_sent_epoch_;
    }
  }
  // Successor heartbeats: the steady-state ring maintenance every member
  // pays every epoch whether or not anything moved.
  const std::vector<dht::ChordRing::Member>& members = index.ring().members();
  if (members.size() >= 2) {
    for (size_t i = 0; i < members.size(); ++i) {
      Envelope beat;
      beat.proto = Protocol::kRing;
      beat.kind = MsgKind::kStabilize;
      beat.from = members[i].node;
      beat.to = members[(i + 1) % members.size()].node;
      beat.bytes = params_.stabilize_bytes;
      bus_->Send(std::move(beat));
    }
  }
}

void RingAgent::HandleMessage(const Envelope& e) {
  if (reliability_.enabled) {
    if (e.kind == MsgKind::kAck) {
      // The ack carries its transfer's tid; erase is idempotent, so a
      // duplicated ack needs no dedup of its own.
      pending_.erase(e.tid);
      return;
    }
    if (!dedup_.FirstSighting(e.to, e.tid)) {
      ++bus_->stats().reliability.dup_suppressed;
      // A duplicate of a reliable kind still re-acks: the copy that
      // produced the first sighting may have had its ack lost, and the
      // sender is retransmitting because of it.
      if (e.kind == MsgKind::kPublish || e.kind == MsgKind::kJoin) {
        SendAck(e);
      }
      return;
    }
  }
  switch (e.kind) {
    case MsgKind::kPublish:
      // The owner records the (re)published coordinate. Reads the node's
      // *current* full coordinate — deliveries later in the drain see any
      // Vivaldi movement that landed before them, exactly like a datagram
      // serialized at transmission time would have been re-read on retry.
      if (sbon_->IsAlive(e.subject)) {
        sbon_->mutable_coords().PublishWithoutStabilize(e.subject);
        publish_epoch_[e.subject] = static_cast<uint32_t>(bus_->epoch());
        ++publishes_applied_;
      }
      if (reliability_.enabled) SendAck(e);
      break;
    case MsgKind::kJoin:
      // Ring membership already transitioned at RejoinNode (instant
      // idealized detection); the join message landing is when the node's
      // published view stops being stale.
      publish_epoch_[e.subject] = static_cast<uint32_t>(bus_->epoch());
      if (reliability_.enabled) SendAck(e);
      break;
    case MsgKind::kStabilize:
      if (detector_ != nullptr) detector_->NoteHeartbeat(e.from);
      break;
    case MsgKind::kLeave:
      break;  // notification traffic: cost only
    default:
      break;
  }
}

void RingAgent::TrackReliable(const Envelope& e) {
  ReliabilityCounters& r = bus_->stats().reliability;
  if (pending_.size() >= reliability_.max_pending) {
    // Bounded retransmit queue: the transfer goes out once, untracked.
    ++r.retransmit_overflow;
    return;
  }
  PendingTransfer p;
  p.env = e;
  p.backoff_epochs = reliability_.retry_after_epochs;
  p.retry_epoch = bus_->epoch() + p.backoff_epochs;
  pending_.emplace(e.tid, std::move(p));
}

void RingAgent::RetryPending() {
  if (!reliability_.enabled || pending_.empty()) return;
  const size_t epoch = bus_->epoch();
  ReliabilityCounters& r = bus_->stats().reliability;
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingTransfer& p = it->second;
    if (p.retry_epoch > epoch) {
      ++it;
      continue;
    }
    if (p.attempts >= reliability_.max_retries ||
        !sbon_->IsAlive(p.env.subject)) {
      // Give up: retries are spent, or the subject left the overlay (its
      // publish/join could no longer be applied anyway).
      ++r.retry_exhausted;
      it = pending_.erase(it);
      continue;
    }
    // Retransmit with a fresh route and the subject's *current* full
    // coordinate — the same re-serialization semantics a real datagram
    // retry has (the ring may have repaired and the node drifted since).
    Envelope again = p.env;
    const Vec full = sbon_->cost_space().FullCoord(again.subject);
    const dht::U128 key = sbon_->index().quantizer().Key(full);
    const dht::ChordRing::LookupResult route = Route(key, key, again.subject);
    BillHops(again.subject, route.hops);
    again.to = route.node;
    again.coord = full;
    p.env.to = route.node;  // remember the refreshed destination
    ++p.attempts;
    p.backoff_epochs = std::min(p.backoff_epochs * reliability_.backoff_factor,
                                reliability_.max_backoff_epochs);
    p.retry_epoch = epoch + p.backoff_epochs;
    ++r.retries;
    r.retry_bytes += again.bytes;
    if (again.kind == MsgKind::kPublish) ++publishes_sent_epoch_;
    bus_->Send(std::move(again));
    ++it;
  }
}

void RingAgent::SendAck(const Envelope& e) {
  Envelope ack;
  ack.proto = Protocol::kRing;
  ack.kind = MsgKind::kAck;
  ack.from = e.to;
  ack.to = e.from;
  ack.subject = e.subject;
  ack.tid = e.tid;  // identifies the acked transfer; acks aren't tracked
  ack.bytes = reliability_.ack_bytes;
  ++bus_->stats().reliability.acks;
  bus_->Send(std::move(ack));
}

void RingAgent::OnCrash(NodeId n) {
  // Idealized fast failure detection: the dead node's ring neighborhood
  // learns of the crash within the epoch. The detector (its successor in
  // node-id order) notifies `leaf_fanout` leaf-set members.
  const NodeId detector = NextAliveAfter(n);
  if (detector == kInvalidNode) return;
  const std::vector<NodeId>& alive = sbon_->overlay_nodes();
  auto it = std::upper_bound(alive.begin(), alive.end(), detector);
  size_t idx = static_cast<size_t>(it - alive.begin()) % alive.size();
  for (size_t k = 0; k < params_.leaf_fanout && k + 1 < alive.size();
       ++k, idx = (idx + 1) % alive.size()) {
    if (alive[idx] == detector) break;  // wrapped the whole membership
    Envelope leave;
    leave.proto = Protocol::kRing;
    leave.kind = MsgKind::kLeave;
    leave.from = detector;
    leave.to = alive[idx];
    leave.subject = n;
    leave.bytes = params_.leave_bytes;
    bus_->Send(std::move(leave));
  }
}

void RingAgent::OnRejoin(NodeId n) {
  // The rejoining node routes a join toward its key's owner from the
  // deterministic bootstrap origin (the ring's first member).
  const Vec full = sbon_->cost_space().FullCoord(n);
  const dht::U128 key = sbon_->index().quantizer().Key(full);
  auto result = sbon_->index().ring().Lookup(key);
  dht::ChordRing::LookupResult route;
  if (result.ok()) {
    route = *result;
  } else {
    route.node = n;
    route.key = key;
  }
  BillHops(n, route.hops);
  Envelope join;
  join.proto = Protocol::kRing;
  join.kind = MsgKind::kJoin;
  join.from = n;
  join.to = route.node;
  join.subject = n;
  join.bytes = params_.join_base_bytes + 8 * full.dims();
  if (reliability_.enabled) {
    join.tid = bus_->IssueTid();
    TrackReliable(join);
  }
  bus_->Send(std::move(join));
}

// --- FailureDetector -------------------------------------------------------

FailureDetector::FailureDetector(size_t num_nodes,
                                 const DetectorParams& params)
    : params_(params),
      heard_(num_nodes, 0),
      missed_(num_nodes, 0),
      suspect_(num_nodes, 0),
      suspect_for_(num_nodes, 0) {}

void FailureDetector::Reset(NodeId n) {
  heard_[n] = 0;
  missed_[n] = 0;
  suspect_[n] = 0;
  suspect_for_[n] = 0;
}

void FailureDetector::Step(const std::vector<NodeId>& members,
                           DetectorCounters* counters,
                           std::vector<NodeId>* confirmed) {
  for (NodeId n : members) {
    if (heard_[n]) {
      // Alive by evidence. A heartbeat from a suspect is the detector
      // catching its own mistake before the confirmation timeout fired.
      if (suspect_[n]) ++counters->false_suspicions;
      Reset(n);
      continue;
    }
    ++missed_[n];
    if (!suspect_[n]) {
      if (missed_[n] >= params_.suspect_after_missed) {
        suspect_[n] = 1;
        suspect_for_[n] = 0;
        ++counters->suspicions;
      }
      continue;
    }
    if (++suspect_for_[n] >= params_.confirm_after_suspect) {
      confirmed->push_back(n);
      Reset(n);  // the verdict is out; state rebuilds if the engine rejects
    }
  }
  std::fill(heard_.begin(), heard_.end(), 0);
}

// --- Runtime ---------------------------------------------------------------

Status ValidateRuntimeParams(const RuntimeParams& p) {
  if (!(p.bus.epoch_ms > 0.0)) {
    return Status::InvalidArgument("RuntimeParams: bus.epoch_ms must be > 0");
  }
  if (p.vivaldi.peer_set_size == 0) {
    return Status::InvalidArgument(
        "RuntimeParams: vivaldi.peer_set_size must be > 0");
  }
  if (p.vivaldi.ping_bytes == 0 || p.vivaldi.pong_base_bytes == 0 ||
      p.ring.publish_base_bytes == 0 || p.ring.per_hop_bytes == 0 ||
      p.ring.stabilize_bytes == 0 || p.ring.join_base_bytes == 0 ||
      p.ring.leave_bytes == 0 || p.placement.lookup_bytes == 0 ||
      p.placement.per_hop_bytes == 0 || p.placement.probe_bytes == 0) {
    return Status::InvalidArgument(
        "RuntimeParams: every wire-size model byte count must be > 0");
  }
  for (const FaultRates& r : p.bus.faults.protocol) {
    if (r.loss < 0.0 || r.loss > 1.0 || r.duplicate < 0.0 ||
        r.duplicate > 1.0 || r.delay_jitter_ms < 0.0) {
      return Status::InvalidArgument(
          "RuntimeParams: fault rates must be probabilities in [0, 1] and "
          "delay jitter must be >= 0");
    }
  }
  for (const LossBurst& b : p.bus.faults.bursts) {
    if (b.loss < 0.0 || b.loss > 1.0) {
      return Status::InvalidArgument(
          "RuntimeParams: burst loss must be a probability in [0, 1]");
    }
  }
  if (p.reliability.enabled) {
    if (p.reliability.ack_bytes == 0 || p.reliability.retry_after_epochs == 0 ||
        p.reliability.backoff_factor == 0 ||
        p.reliability.max_backoff_epochs == 0 ||
        p.reliability.max_pending == 0 || p.reliability.dedup_window == 0) {
      return Status::InvalidArgument(
          "RuntimeParams: enabled reliability needs nonzero ack_bytes, "
          "retry_after_epochs, backoff_factor, max_backoff_epochs, "
          "max_pending and dedup_window");
    }
  }
  if (p.detector.enabled) {
    if (p.detector.suspect_after_missed == 0 ||
        p.detector.confirm_after_suspect == 0) {
      return Status::InvalidArgument(
          "RuntimeParams: enabled detector needs nonzero "
          "suspect_after_missed and confirm_after_suspect");
    }
  }
  return Status::OK();
}

Runtime::Runtime(overlay::Sbon* sbon, const RuntimeParams& params)
    : sbon_(sbon),
      bus_(&sbon->fabric(), params.bus),
      vivaldi_(&bus_, sbon, params.vivaldi, params.reliability),
      ring_(&bus_, sbon, params.ring, params.reliability),
      placement_(params.placement),
      detector_(sbon->topology().NumNodes(), params.detector),
      detector_enabled_(params.detector.enabled) {
  if (detector_enabled_) ring_.set_detector(&detector_);
}

void Runtime::NotifyChurn(const net::ChurnEvent& ev) {
  TrafficStats& stats = bus_.stats();
  stats.last_churn_epoch = bus_.epoch();
  stats.churn_pending = true;
  switch (ev.type) {
    case net::ChurnEventType::kCrash:
      // Detector mode: a crash is silent — nobody is told. The leaf-set
      // fanout waits for the detector's confirmation.
      if (!detector_enabled_) ring_.OnCrash(ev.node);
      break;
    case net::ChurnEventType::kRejoin:
      ring_.OnRejoin(ev.node);
      break;
    case net::ChurnEventType::kPartitionStart:
    case net::ChurnEventType::kPartitionHeal:
      break;  // connectivity-only: no membership traffic, clock still marked
  }
}

void Runtime::FinishEpoch(bool refresh, double epsilon) {
  ring_.StepEpoch(refresh ? epsilon : -1.0);
  bus_.EndEpoch();
  // One stabilization over however many publish messages landed this epoch
  // (the oracle refresh restabilizes once per batch the same way).
  if (ring_.TakeAppliedPublishes() > 0) {
    sbon_->mutable_coords().StabilizeIndex();
  }
  sbon_->mutable_coords().SyncVectorCoords();

  TrafficStats& stats = bus_.stats();
  const size_t completed = bus_.epoch() - 1;  // EndEpoch advanced the count
  if (stats.churn_pending && completed > stats.last_churn_epoch &&
      ring_.publishes_sent_epoch() == 0) {
    // First fully quiet ring epoch after churn: membership and coordinates
    // have re-converged.
    stats.convergence_epochs = completed - stats.last_churn_epoch;
    stats.churn_pending = false;
  }

  if (detector_enabled_) {
    // Detector sweep over the current ring membership, after the drain so
    // every heartbeat that could land this epoch has been heard. A ring
    // below two members sends no heartbeats — monitor nothing.
    members_scratch_.clear();
    const std::vector<dht::ChordRing::Member>& members =
        sbon_->index().ring().members();
    if (members.size() >= 2) {
      for (const dht::ChordRing::Member& m : members) {
        members_scratch_.push_back(m.node);
      }
    }
    detector_.Step(members_scratch_, &stats.detector, &confirmed_crashes_);
  }
}

void Runtime::NotifyCrashConfirmed(NodeId n, size_t latency_epochs) {
  TrafficStats& stats = bus_.stats();
  ++stats.detector.crash_confirmations;
  stats.detector.detection_latency_samples.push_back(
      static_cast<uint32_t>(latency_epochs));
  // The membership transition happens now, not at the physical crash: the
  // convergence clock restarts from the confirmation.
  stats.last_churn_epoch = bus_.epoch();
  stats.churn_pending = true;
  ring_.OnCrash(n);
}

void Runtime::NoteSpuriousConfirm(NodeId n) {
  ++bus_.stats().detector.false_suspicions;
  detector_.Reset(n);
}

void Runtime::BillPlacement(const dht::IndexQueryCost& delta,
                            const overlay::Circuit* circuit) {
  const size_t msgs = delta.lookups + delta.routing_hops + delta.ring_probes;
  TrafficStats& stats = bus_.stats();
  if (msgs > 0) {
    const size_t bytes = delta.lookups * placement_.lookup_bytes +
                         delta.routing_hops * placement_.per_hop_bytes +
                         delta.ring_probes * placement_.probe_bytes;
    TrafficCounters& c =
        stats.protocol[static_cast<size_t>(Protocol::kPlacement)];
    // Placement probes are synchronous RPCs resolved within the placement
    // run; request and response are collapsed into one accounted message.
    c.sent += msgs;
    c.delivered += msgs;
    c.bytes += bytes;
    if (circuit != nullptr) {
      for (const overlay::CircuitVertex& v : circuit->vertices()) {
        if (v.host != kInvalidNode) {
          stats.node_msgs[v.host] += msgs;
          stats.node_bytes[v.host] += bytes;
          break;  // billed to the circuit's root host
        }
      }
    }
  }
  if (circuit != nullptr) {
    // Staleness stamp: how old (in epochs) the published coordinate view of
    // each chosen host was when this placement committed. Pinned endpoints
    // are spec constraints, not index decisions.
    const uint32_t now = static_cast<uint32_t>(bus_.epoch());
    for (const overlay::CircuitVertex& v : circuit->vertices()) {
      if (v.pinned || v.host == kInvalidNode) continue;
      const uint32_t published = ring_.publish_epoch()[v.host];
      stats.staleness_samples.push_back(now >= published ? now - published
                                                         : 0);
    }
  }
}

}  // namespace sbon::msg

#ifndef SBON_MSG_AGENTS_H_
#define SBON_MSG_AGENTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "dht/coord_index.h"
#include "msg/message.h"
#include "msg/message_bus.h"
#include "net/churn.h"
#include "overlay/circuit.h"
#include "overlay/sbon.h"

namespace sbon::msg {

/// Wire-size model of the Vivaldi protocol (bytes per message; coordinate
/// payloads add 8 bytes per dimension on top of the base).
struct VivaldiAgentParams {
  /// Long-lived sampled peers per node. Bounds each node's view: message
  /// mode samples this set round-robin instead of the oracle's any-alive
  /// global draw, re-sampling a slot only when its peer is found dead.
  size_t peer_set_size = 8;
  size_t ping_bytes = 24;
  size_t pong_base_bytes = 32;
};

/// Wire-size model of the ring-maintenance protocol.
struct RingAgentParams {
  size_t publish_base_bytes = 40;
  size_t per_hop_bytes = 32;  ///< each Chord routing hop forwards this much
  size_t stabilize_bytes = 16;
  size_t join_base_bytes = 48;
  size_t leave_bytes = 24;
  /// kLeave notifications fanned out by a crash detector (leaf-set size a
  /// real ring would inform).
  size_t leaf_fanout = 4;
};

/// Wire-size model of placement probing.
struct PlacementAgentParams {
  size_t lookup_bytes = 40;
  size_t per_hop_bytes = 32;
  size_t probe_bytes = 48;
};

struct RuntimeParams {
  MessageBus::Options bus;
  VivaldiAgentParams vivaldi;
  RingAgentParams ring;
  PlacementAgentParams placement;
};

/// Node-local Vivaldi sampling as explicit traffic: each epoch every alive
/// overlay node pings a round-robin slice of its bounded peer set; peers
/// answer with their coordinate + error; the pong applies the spring update
/// at the sampler. RTT is half the measured round trip — the same one-way
/// live latency the oracle sweep samples, plus whatever extra delay an
/// active partition or queued epoch boundary added.
class VivaldiAgent {
 public:
  VivaldiAgent(MessageBus* bus, overlay::Sbon* sbon,
               const VivaldiAgentParams& params);

  /// Sends this epoch's pings (`samples_per_node` per alive overlay node).
  void StepEpoch(size_t samples_per_node);
  void HandleMessage(const Envelope& e);

 private:
  /// The peer in `slot` for `self`, (re)sampled from the currently alive
  /// overlay nodes when empty or dead. Draws come from the bus Rng in
  /// deterministic (node, slot) order.
  NodeId PeerFor(NodeId self, size_t slot);

  MessageBus* bus_;
  overlay::Sbon* sbon_;
  VivaldiAgentParams params_;
  std::vector<NodeId> peers_;  ///< n * peer_set_size, kInvalidNode = empty
  size_t round_ = 0;           ///< round-robin cursor over peer slots
};

/// Ring maintenance as explicit traffic: displacement-gated coordinate
/// publishes routed to the key's owner (hop counts billed from the real
/// Chord route), per-member successor heartbeats, join routing for rejoins
/// and leaf-set leave notifications for crashes. State transitions
/// themselves ride the oracle path (Sbon::FailNode / RejoinNode keep the
/// ring correct for repair placement — idealized instant failure
/// detection); the agent carries the *cost* and the staleness clock.
class RingAgent {
 public:
  RingAgent(MessageBus* bus, overlay::Sbon* sbon,
            const RingAgentParams& params);

  /// The message-mode refresh: collects nodes displaced beyond `epsilon`
  /// and sends each a routed kPublish (`epsilon < 0` skips the scan —
  /// refresh disabled this epoch), then one kStabilize heartbeat from every
  /// ring member to its successor.
  void StepEpoch(double epsilon);
  void HandleMessage(const Envelope& e);

  void OnCrash(NodeId n);
  void OnRejoin(NodeId n);

  /// kPublish sends this epoch (the ring-quiescence signal convergence
  /// tracking watches).
  size_t publishes_sent_epoch() const { return publishes_sent_epoch_; }
  /// Publishes applied since the last Take (resets the counter): when
  /// nonzero the runtime owes the index one StabilizeIndex.
  size_t TakeAppliedPublishes() {
    const size_t n = publishes_applied_;
    publishes_applied_ = 0;
    return n;
  }
  /// Engine epoch each node's coordinate was last published at (the
  /// staleness clock placement decisions are stamped against).
  const std::vector<uint32_t>& publish_epoch() const { return publish_epoch_; }

 private:
  /// Routes toward `key` on the stabilized ring; falls back to (self, 0
  /// hops) when the lookup is unavailable.
  dht::ChordRing::LookupResult Route(const dht::U128& key,
                                     const dht::U128& origin, NodeId self);
  /// Bills `hops` forwarding messages to `via` without enqueueing them
  /// (intermediate hops relay; only the final delivery is simulated).
  void BillHops(NodeId via, size_t hops);
  /// First alive overlay node strictly after `n` in node-id order (wraps);
  /// kInvalidNode when none.
  NodeId NextAliveAfter(NodeId n) const;

  MessageBus* bus_;
  overlay::Sbon* sbon_;
  RingAgentParams params_;
  std::vector<uint32_t> publish_epoch_;  ///< by node id
  size_t publishes_sent_epoch_ = 0;
  size_t publishes_applied_ = 0;
  std::vector<NodeId> displaced_;  ///< scratch for the displacement scan
};

/// The message-mode execution runtime the engine drives: owns the bus and
/// agents, exposes the per-epoch steps AdvanceEpoch schedules in message
/// mode, and folds placement billing + churn notifications into the
/// TrafficStats the snapshot/bench surface.
class Runtime {
 public:
  Runtime(overlay::Sbon* sbon, const RuntimeParams& params);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Advances the bus clock to this engine epoch (the msg-coords stage).
  void BeginEpoch() { bus_.BeginEpoch(); }
  /// Fans out this epoch's Vivaldi pings.
  void StepVivaldi(size_t samples_per_node) {
    vivaldi_.StepEpoch(samples_per_node);
  }
  /// Records a churn event the engine just applied (convergence clock +
  /// ring join/leave traffic).
  void NotifyChurn(const net::ChurnEvent& ev);
  /// The msg-refresh stage: displacement publishes + heartbeats, the epoch
  /// drain, one index stabilization if any publish landed, the Vivaldi ->
  /// cost-space sync, and the convergence bookkeeping. `refresh` mirrors
  /// EpochOptions::refresh_index.
  void FinishEpoch(bool refresh, double epsilon);

  /// Bills the DHT traffic of one placement run (`delta` of the index's
  /// cumulative query cost) as kPlacement messages, attributed to the
  /// deployed circuit's root host, and stamps each placed (non-pinned)
  /// vertex with the staleness of its host's published coordinate.
  void BillPlacement(const dht::IndexQueryCost& delta,
                     const overlay::Circuit* circuit);

  MessageBus& bus() { return bus_; }
  TrafficStats& stats() { return bus_.stats(); }
  const TrafficStats& stats() const { return bus_.stats(); }
  TrafficSummary Summary() const {
    return Summarize(bus_.stats(), sbon_->topology().NumNodes());
  }

 private:
  overlay::Sbon* sbon_;
  MessageBus bus_;
  VivaldiAgent vivaldi_;
  RingAgent ring_;
  PlacementAgentParams placement_;
};

}  // namespace sbon::msg

#endif  // SBON_MSG_AGENTS_H_

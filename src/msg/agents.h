#ifndef SBON_MSG_AGENTS_H_
#define SBON_MSG_AGENTS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "dht/coord_index.h"
#include "msg/message.h"
#include "msg/message_bus.h"
#include "net/churn.h"
#include "overlay/circuit.h"
#include "overlay/sbon.h"

namespace sbon::msg {

/// Wire-size model of the Vivaldi protocol (bytes per message; coordinate
/// payloads add 8 bytes per dimension on top of the base).
struct VivaldiAgentParams {
  /// Long-lived sampled peers per node. Bounds each node's view: message
  /// mode samples this set round-robin instead of the oracle's any-alive
  /// global draw, re-sampling a slot only when its peer is found dead.
  size_t peer_set_size = 8;
  size_t ping_bytes = 24;
  size_t pong_base_bytes = 32;
};

/// Wire-size model of the ring-maintenance protocol.
struct RingAgentParams {
  size_t publish_base_bytes = 40;
  size_t per_hop_bytes = 32;  ///< each Chord routing hop forwards this much
  size_t stabilize_bytes = 16;
  size_t join_base_bytes = 48;
  size_t leave_bytes = 24;
  /// kLeave notifications fanned out by a crash detector (leaf-set size a
  /// real ring would inform).
  size_t leaf_fanout = 4;
};

/// Wire-size model of placement probing.
struct PlacementAgentParams {
  size_t lookup_bytes = 40;
  size_t per_hop_bytes = 32;
  size_t probe_bytes = 48;
};

/// Ack/timeout/retransmission hardening for the reliable ring kinds
/// (kPublish, kJoin) plus the dedup windows that make every handler
/// idempotent under network duplication. Off by default: with
/// `enabled == false` no tid is pre-assigned, no dedup scan runs and no
/// ack is ever sent, so fault-free runs stay bit-identical.
struct ReliabilityParams {
  bool enabled = false;
  size_t ack_bytes = 16;
  /// Epochs to wait for an ack before the first retransmission.
  size_t retry_after_epochs = 2;
  /// The wait multiplies by this per retry (capped), giving capped
  /// exponential backoff.
  size_t backoff_factor = 2;
  size_t max_backoff_epochs = 8;
  /// Retransmissions per transfer before giving up (counted as exhausted).
  size_t max_retries = 4;
  /// Bound on simultaneously tracked transfers; overflow transfers are
  /// sent once, never tracked, and counted (graceful degradation, never
  /// unbounded memory).
  size_t max_pending = 1024;
  /// Recent transfer ids remembered per node for duplicate suppression.
  size_t dedup_window = 64;
};

/// Decentralized failure detection from kStabilize heartbeat silence.
/// Off by default: message mode then keeps the instant-oracle crash
/// notification (Sbon::FailNode at the churn event).
struct DetectorParams {
  bool enabled = false;
  /// Consecutive silent epochs before a member becomes suspect.
  size_t suspect_after_missed = 2;
  /// Epochs a suspect must stay silent before the crash is confirmed.
  size_t confirm_after_suspect = 2;
};

struct RuntimeParams {
  MessageBus::Options bus;
  VivaldiAgentParams vivaldi;
  RingAgentParams ring;
  PlacementAgentParams placement;
  ReliabilityParams reliability;
  DetectorParams detector;
};

/// InvalidArgument when any knob is out of range (non-positive epoch_ms,
/// zero peer set, zero wire sizes, probabilities outside [0, 1], zeroed
/// reliability/detector windows while enabled). The engine validates at
/// construction, mirroring Sbon::Options validation.
Status ValidateRuntimeParams(const RuntimeParams& params);

/// Per-node bounded ring buffer of recently seen transfer ids: the dedup
/// window that makes delivery handlers idempotent under duplication.
/// Lookup is a linear scan of one node's window (windows are tens of
/// entries); insertion overwrites the oldest slot, so memory is fixed at
/// num_nodes * window ids.
class DedupWindow {
 public:
  DedupWindow(size_t num_nodes, size_t window)
      : window_(window),
        slots_(num_nodes * window, 0),
        cursor_(num_nodes, 0) {}

  /// True the first time `tid` is seen at `node` (recording it); false for
  /// a repeat still inside the window — the caller suppresses the delivery.
  bool FirstSighting(NodeId node, uint64_t tid) {
    uint64_t* base = &slots_[static_cast<size_t>(node) * window_];
    for (size_t i = 0; i < window_; ++i) {
      if (base[i] == tid) return false;
    }
    base[cursor_[node]] = tid;
    cursor_[node] = (cursor_[node] + 1) % window_;
    return true;
  }

 private:
  size_t window_;
  std::vector<uint64_t> slots_;  ///< 0 = empty slot (tids start at 1)
  std::vector<size_t> cursor_;
};

/// Decentralized crash detection from heartbeat silence. Every epoch the
/// runtime sweeps the ring membership: a member whose kStabilize heartbeat
/// was not heard for `suspect_after_missed` consecutive epochs becomes
/// suspect; a suspect silent for another `confirm_after_suspect` epochs is
/// confirmed crashed — the verdict the engine's repair path consumes. A
/// heartbeat from a suspect clears it and counts a false suspicion (the
/// detector can be fooled by partitions; the engine rejects confirmations
/// of nodes that are actually alive via Runtime::NoteSpuriousConfirm).
class FailureDetector {
 public:
  FailureDetector(size_t num_nodes, const DetectorParams& params);

  /// A kStabilize heartbeat from `from` was delivered this epoch.
  void NoteHeartbeat(NodeId from) { heard_[from] = 1; }
  /// End-of-epoch sweep over the current ring membership: updates
  /// suspicion state, bumps `counters`, appends newly confirmed crashes to
  /// `confirmed`. Pass an empty member list when the ring is too small to
  /// heartbeat (< 2 members) — nothing is monitored then.
  void Step(const std::vector<NodeId>& members, DetectorCounters* counters,
            std::vector<NodeId>* confirmed);
  /// Forgets all state about `n` (its verdict was consumed or rejected).
  void Reset(NodeId n);

 private:
  DetectorParams params_;
  std::vector<uint8_t> heard_;        ///< heartbeat seen this epoch
  std::vector<uint32_t> missed_;      ///< consecutive silent epochs
  std::vector<uint8_t> suspect_;
  std::vector<uint32_t> suspect_for_; ///< epochs spent in suspect state
};

/// Node-local Vivaldi sampling as explicit traffic: each epoch every alive
/// overlay node pings a round-robin slice of its bounded peer set; peers
/// answer with their coordinate + error; the pong applies the spring update
/// at the sampler. RTT is half the measured round trip — the same one-way
/// live latency the oracle sweep samples, plus whatever extra delay an
/// active partition or queued epoch boundary added.
class VivaldiAgent {
 public:
  VivaldiAgent(MessageBus* bus, overlay::Sbon* sbon,
               const VivaldiAgentParams& params,
               const ReliabilityParams& reliability);

  /// Sends this epoch's pings (`samples_per_node` per alive overlay node).
  void StepEpoch(size_t samples_per_node);
  void HandleMessage(const Envelope& e);

 private:
  /// The peer in `slot` for `self`, (re)sampled from the currently alive
  /// overlay nodes when empty or dead. Draws come from the bus Rng in
  /// deterministic (node, slot) order.
  NodeId PeerFor(NodeId self, size_t slot);

  MessageBus* bus_;
  overlay::Sbon* sbon_;
  VivaldiAgentParams params_;
  ReliabilityParams reliability_;
  DedupWindow dedup_;          ///< suppresses duplicated pings and pongs
  std::vector<NodeId> peers_;  ///< n * peer_set_size, kInvalidNode = empty
  size_t round_ = 0;           ///< round-robin cursor over peer slots
};

/// Ring maintenance as explicit traffic: displacement-gated coordinate
/// publishes routed to the key's owner (hop counts billed from the real
/// Chord route), per-member successor heartbeats, join routing for rejoins
/// and leaf-set leave notifications for crashes. State transitions
/// themselves ride the oracle path (Sbon::FailNode / RejoinNode keep the
/// ring correct for repair placement — idealized instant failure
/// detection); the agent carries the *cost* and the staleness clock.
class RingAgent {
 public:
  RingAgent(MessageBus* bus, overlay::Sbon* sbon,
            const RingAgentParams& params,
            const ReliabilityParams& reliability);

  /// The message-mode refresh: collects nodes displaced beyond `epsilon`
  /// and sends each a routed kPublish (`epsilon < 0` skips the scan —
  /// refresh disabled this epoch), then one kStabilize heartbeat from every
  /// ring member to its successor.
  void StepEpoch(double epsilon);
  void HandleMessage(const Envelope& e);

  void OnCrash(NodeId n);
  void OnRejoin(NodeId n);

  /// kPublish sends this epoch (the ring-quiescence signal convergence
  /// tracking watches).
  size_t publishes_sent_epoch() const { return publishes_sent_epoch_; }
  /// Publishes applied since the last Take (resets the counter): when
  /// nonzero the runtime owes the index one StabilizeIndex.
  size_t TakeAppliedPublishes() {
    const size_t n = publishes_applied_;
    publishes_applied_ = 0;
    return n;
  }
  /// Engine epoch each node's coordinate was last published at (the
  /// staleness clock placement decisions are stamped against).
  const std::vector<uint32_t>& publish_epoch() const { return publish_epoch_; }

  /// Transfers still awaiting an ack (bounded by max_pending).
  size_t pending_size() const { return pending_.size(); }
  /// Wires the failure detector in: kStabilize deliveries report
  /// heartbeats to it. Null (the default) disables reporting.
  void set_detector(FailureDetector* detector) { detector_ = detector; }

 private:
  /// One tracked reliable transfer awaiting its ack.
  struct PendingTransfer {
    Envelope env;               ///< resend template (route/coord re-read)
    size_t attempts = 0;        ///< retransmissions sent so far
    size_t backoff_epochs = 0;  ///< current wait between retries
    size_t retry_epoch = 0;     ///< bus epoch of the next retry
  };

  /// Starts tracking a reliable send (tid already issued); counts an
  /// overflow instead when the pending map is full.
  void TrackReliable(const Envelope& e);
  /// Retransmits every tracked transfer whose timer expired, with capped
  /// exponential backoff; exhausted or moot transfers are dropped and
  /// counted. Runs even when refresh is disabled so retries always drain.
  void RetryPending();
  /// Acks a delivered reliable envelope back to its sender.
  void SendAck(const Envelope& e);
  /// Routes toward `key` on the stabilized ring; falls back to (self, 0
  /// hops) when the lookup is unavailable.
  dht::ChordRing::LookupResult Route(const dht::U128& key,
                                     const dht::U128& origin, NodeId self);
  /// Bills `hops` forwarding messages to `via` without enqueueing them
  /// (intermediate hops relay; only the final delivery is simulated).
  void BillHops(NodeId via, size_t hops);
  /// First alive overlay node strictly after `n` in node-id order (wraps);
  /// kInvalidNode when none.
  NodeId NextAliveAfter(NodeId n) const;

  MessageBus* bus_;
  overlay::Sbon* sbon_;
  RingAgentParams params_;
  ReliabilityParams reliability_;
  DedupWindow dedup_;
  FailureDetector* detector_ = nullptr;  ///< owned by the Runtime
  /// Tracked reliable transfers by tid. std::map for deterministic
  /// retry iteration order.
  std::map<uint64_t, PendingTransfer> pending_;
  std::vector<uint32_t> publish_epoch_;  ///< by node id
  size_t publishes_sent_epoch_ = 0;
  size_t publishes_applied_ = 0;
  std::vector<NodeId> displaced_;  ///< scratch for the displacement scan
};

/// The message-mode execution runtime the engine drives: owns the bus and
/// agents, exposes the per-epoch steps AdvanceEpoch schedules in message
/// mode, and folds placement billing + churn notifications into the
/// TrafficStats the snapshot/bench surface.
class Runtime {
 public:
  Runtime(overlay::Sbon* sbon, const RuntimeParams& params);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Advances the bus clock to this engine epoch (the msg-coords stage).
  void BeginEpoch() { bus_.BeginEpoch(); }
  /// Fans out this epoch's Vivaldi pings.
  void StepVivaldi(size_t samples_per_node) {
    vivaldi_.StepEpoch(samples_per_node);
  }
  /// Records a churn event the engine just applied (convergence clock +
  /// ring join/leave traffic). With the detector enabled, a kCrash event
  /// produces no oracle notification — the leaf-set fanout waits for the
  /// detector's confirmation (NotifyCrashConfirmed).
  void NotifyChurn(const net::ChurnEvent& ev);
  /// The msg-refresh stage: displacement publishes + heartbeats, the epoch
  /// drain, one index stabilization if any publish landed, the Vivaldi ->
  /// cost-space sync, and the convergence bookkeeping. `refresh` mirrors
  /// EpochOptions::refresh_index.
  void FinishEpoch(bool refresh, double epsilon);

  /// Bills the DHT traffic of one placement run (`delta` of the index's
  /// cumulative query cost) as kPlacement messages, attributed to the
  /// deployed circuit's root host, and stamps each placed (non-pinned)
  /// vertex with the staleness of its host's published coordinate.
  void BillPlacement(const dht::IndexQueryCost& delta,
                     const overlay::Circuit* circuit);

  // --- failure-detector interface (engine's deferred-crash repair path) ---

  bool detector_enabled() const { return detector_enabled_; }
  size_t bus_epoch() const { return bus_.epoch(); }
  /// Crashes the detector has confirmed since the last call (cleared).
  std::vector<NodeId> TakeConfirmedCrashes() {
    std::vector<NodeId> out;
    out.swap(confirmed_crashes_);
    return out;
  }
  /// The engine acted on a confirmed crash: records the confirmation and
  /// its detection latency, restarts the convergence clock, and fans out
  /// the leaf-set kLeave notifications that oracle mode sends at the crash.
  void NotifyCrashConfirmed(NodeId n, size_t latency_epochs);
  /// The engine rejected a confirmation (the node is actually alive — e.g.
  /// heartbeat-starved by a partition): counted as a false suspicion, and
  /// the detector's state about the node is wiped so suspicion must
  /// rebuild from fresh silence.
  void NoteSpuriousConfirm(NodeId n);

  MessageBus& bus() { return bus_; }
  TrafficStats& stats() { return bus_.stats(); }
  const TrafficStats& stats() const { return bus_.stats(); }
  TrafficSummary Summary() const {
    TrafficSummary s = Summarize(bus_.stats(), sbon_->topology().NumNodes());
    s.retry_pending = ring_.pending_size();
    return s;
  }

 private:
  overlay::Sbon* sbon_;
  MessageBus bus_;
  VivaldiAgent vivaldi_;
  RingAgent ring_;
  PlacementAgentParams placement_;
  FailureDetector detector_;
  bool detector_enabled_ = false;
  std::vector<NodeId> confirmed_crashes_;  ///< verdicts awaiting the engine
  std::vector<NodeId> members_scratch_;    ///< detector sweep scratch
};

}  // namespace sbon::msg

#endif  // SBON_MSG_AGENTS_H_

#include "msg/fault.h"

#include <algorithm>

namespace sbon::msg {

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {}

void FaultInjector::ScheduleLossBurstAt(size_t epoch, size_t duration_epochs,
                                        double loss) {
  LossBurst burst;
  burst.start_epoch = epoch;
  burst.duration_epochs = duration_epochs;
  burst.loss = loss;
  plan_.bursts.push_back(burst);
}

double FaultInjector::BurstLoss(size_t epoch) const {
  double loss = 0.0;
  for (const LossBurst& b : plan_.bursts) {
    if (epoch >= b.start_epoch && epoch < b.start_epoch + b.duration_epochs) {
      loss = std::max(loss, b.loss);
    }
  }
  return loss;
}

FaultInjector::Decision FaultInjector::Decide(Protocol proto, size_t epoch) {
  Decision d;
  const FaultRates& r = plan_.protocol[static_cast<size_t>(proto)];
  // Burst windows combine with the base rate by max (a 100% burst over a
  // 10% baseline loses everything; a 5% burst over 10% changes nothing).
  const double loss =
      plan_.bursts.empty() ? r.loss : std::max(r.loss, BurstLoss(epoch));
  // Fixed draw order, each gated on its own rate: a zero-rate knob never
  // advances the Rng, so turning one fault on cannot perturb another's
  // stream and the all-zero plan is provably inert.
  if (loss > 0.0 && rng_.Bernoulli(loss)) {
    d.drop = true;
    return d;  // a lost message has no duplicate and no delay to draw
  }
  if (r.duplicate > 0.0 && rng_.Bernoulli(r.duplicate)) d.duplicate = true;
  if (r.delay_jitter_ms > 0.0) {
    d.extra_delay_ms = rng_.Exponential(1.0 / r.delay_jitter_ms);
    if (d.duplicate) {
      d.dup_extra_delay_ms = rng_.Exponential(1.0 / r.delay_jitter_ms);
    }
  }
  return d;
}

}  // namespace sbon::msg

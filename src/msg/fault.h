#ifndef SBON_MSG_FAULT_H_
#define SBON_MSG_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "msg/message.h"

namespace sbon::msg {

/// Per-protocol fault rates of a chaos plan. All-zero rates are the inert
/// plan: the injector draws nothing and delivery is bit-identical to a bus
/// without an injector at all.
struct FaultRates {
  /// Probability an otherwise-deliverable message is silently lost.
  double loss = 0.0;
  /// Probability the network delivers a second copy (same transfer id,
  /// fresh send sequence, its own extra-delay draw).
  double duplicate = 0.0;
  /// Mean of the exponential extra delivery delay, in ms (0 = none).
  /// Independent per-message draws make reordering emerge: a delayed
  /// message can land after ones sent later.
  double delay_jitter_ms = 0.0;
};

/// A scripted loss window: every message sent while the bus epoch is in
/// [start_epoch, start_epoch + duration_epochs) is lost with probability
/// `loss` (combined with the per-protocol base rate by max, not sum).
struct LossBurst {
  size_t start_epoch = 0;
  size_t duration_epochs = 0;
  double loss = 1.0;
};

/// Everything the injector needs, pinned at bus construction. The fault Rng
/// is dedicated (seeded from `seed`), so enabling faults never perturbs the
/// bus's peer-sampling stream and a faulty run replays bit-identically from
/// its plan at any thread count.
struct FaultPlan {
  FaultRates protocol[kNumProtocols];
  std::vector<LossBurst> bursts;
  uint64_t seed = 0xfa017;

  bool any_rate() const {
    for (const FaultRates& r : protocol) {
      if (r.loss > 0.0 || r.duplicate > 0.0 || r.delay_jitter_ms > 0.0) {
        return true;
      }
    }
    return !bursts.empty();
  }
};

/// Seeded chaos layer inside MessageBus::Send: decides, per otherwise-
/// deliverable message, whether it is lost, duplicated, or delayed.
///
/// Determinism contract: a draw happens only when the governing rate is
/// nonzero (zero-rate plans are provably inert — the Rng is never
/// advanced), and the draw order per message is fixed (loss, then
/// duplication, then delays), so a fixed plan replays bit-identically
/// across runs and thread counts (the bus is serial by contract).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// Adds a scripted loss window starting at bus epoch `epoch` (epochs are
  /// the bus's drained-epoch counter, i.e. the engine epoch index).
  void ScheduleLossBurstAt(size_t epoch, size_t duration_epochs,
                           double loss = 1.0);

  /// What the network does to one message sent at bus epoch `epoch`.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    double extra_delay_ms = 0.0;      ///< added to the original's latency
    double dup_extra_delay_ms = 0.0;  ///< added to the duplicate's latency
  };
  Decision Decide(Protocol proto, size_t epoch);

  const FaultPlan& plan() const { return plan_; }

 private:
  /// Strongest scripted loss probability whose window covers `epoch`.
  double BurstLoss(size_t epoch) const;

  FaultPlan plan_;
  Rng rng_;
};

}  // namespace sbon::msg

#endif  // SBON_MSG_FAULT_H_

#ifndef SBON_MSG_MESSAGE_H_
#define SBON_MSG_MESSAGE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/vec.h"

namespace sbon::msg {

/// Control-plane protocol a message belongs to (the traffic-accounting
/// dimension: the paper claims decentralized placement is cheap, so the
/// bytes each protocol costs per node per epoch is the headline number).
enum class Protocol : uint8_t {
  kVivaldi = 0,    ///< ping/pong coordinate sampling
  kRing = 1,       ///< join/leave/stabilize/publish ring maintenance
  kPlacement = 2,  ///< k-nearest / placement probes
};
inline constexpr size_t kNumProtocols = 3;

inline const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kVivaldi:
      return "vivaldi";
    case Protocol::kRing:
      return "ring";
    case Protocol::kPlacement:
      return "placement";
  }
  return "?";
}

/// Message type within a protocol.
enum class MsgKind : uint8_t {
  kPing,       ///< Vivaldi RTT probe (carries the sender's send time)
  kPong,       ///< Vivaldi reply (peer coordinate + error + echoed time)
  kPublish,    ///< routed coordinate (re)publish toward the key's owner
  kStabilize,  ///< ring successor heartbeat
  kJoin,       ///< routed ring join of a rejoining node
  kLeave,      ///< leaf-set notification that a member died
  kAck,        ///< reliability ack of a kPublish/kJoin (carries its tid)
};

/// One typed message on the bus. Envelopes are plain values: the payload
/// fields double up across kinds (documented per field) instead of a
/// variant, so the priority queue stays flat and copy-cheap.
struct Envelope {
  Protocol proto = Protocol::kVivaldi;
  MsgKind kind = MsgKind::kPing;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  /// Accounted wire size. Set by the sending agent from its size model.
  size_t bytes = 0;
  /// Stamped by MessageBus::Send / delivery scheduling.
  double send_ms = 0.0;
  double deliver_ms = 0.0;
  uint64_t seq = 0;  ///< send order; the deterministic delivery tiebreak
  /// Transfer id: stable across retransmissions and network duplication
  /// (the dedup/ack key), unlike `seq` which is fresh per wire copy. The
  /// bus stamps an unset (0) tid at Send; reliable senders pre-assign via
  /// MessageBus::IssueTid so they can match acks to pending transfers.
  uint64_t tid = 0;

  /// kPong: the coordinate's owner == from. kPublish/kJoin: the node whose
  /// coordinate is being (re)published (usually == from; the routed hop
  /// count is billed separately). kLeave: the dead member.
  NodeId subject = kInvalidNode;
  Vec coord;         ///< kPong / kPublish: the carried coordinate
  double aux0 = 0.0; ///< kPing/kPong: originating send time (rtt echo)
  double aux1 = 0.0; ///< kPong: the peer's local error estimate
};

/// Per-protocol send/delivery counters. Conservation holds exactly:
/// sent == delivered + dropped_dead + dropped_partition + dropped_fault
/// + (messages still queued on the bus) — duplicates count as sent wire
/// copies, so both sides of the equation see them.
struct TrafficCounters {
  size_t sent = 0;               ///< wire copies handed to the network
  size_t delivered = 0;          ///< messages that reached their handler
  size_t dropped_dead = 0;       ///< sender or receiver endpoint was down
  size_t dropped_partition = 0;  ///< crossed an active partition cut
  size_t dropped_fault = 0;      ///< lost by the fault injector
  size_t duplicated = 0;         ///< extra copies the injector enqueued
  size_t bytes = 0;              ///< bytes sent (drops still paid for)
};

/// Protocol-hardening counters (ack/retry/backoff + dedup windows), bumped
/// by the agents; all stay zero while reliability is disabled.
struct ReliabilityCounters {
  size_t acks = 0;                ///< kAck messages sent
  size_t retries = 0;             ///< retransmissions sent after timeout
  size_t retry_bytes = 0;         ///< bytes of those retransmissions
  size_t dup_suppressed = 0;      ///< deliveries discarded by dedup windows
  size_t retry_exhausted = 0;     ///< transfers abandoned (max retries, or
                                  ///< the subject died while pending)
  size_t retransmit_overflow = 0; ///< transfers never tracked: queue full
};

/// Failure-detector counters; all stay zero while the detector is disabled.
struct DetectorCounters {
  size_t suspicions = 0;          ///< nodes that entered the suspect state
  size_t false_suspicions = 0;    ///< suspicions cleared by a heartbeat (or
                                  ///< a confirm the engine rejected)
  size_t crash_confirmations = 0; ///< verdicts the engine acted on
  /// Epochs from physical crash to confirmed verdict, one per confirmation.
  std::vector<uint32_t> detection_latency_samples;
};

/// Everything the message-mode epoch loop accounts: per-protocol traffic,
/// per-node volume, churn convergence, and placement staleness. Owned by
/// the MessageBus (counters) and msg::Runtime (convergence/staleness).
struct TrafficStats {
  TrafficCounters protocol[kNumProtocols];
  ReliabilityCounters reliability;
  DetectorCounters detector;
  /// Messages/bytes *sent by* each node (drops included — the sender paid
  /// for the transmission whether or not it arrived).
  std::vector<uint64_t> node_msgs;
  std::vector<uint64_t> node_bytes;
  /// Engine epochs the bus has drained.
  size_t epochs = 0;

  /// Convergence tracking: epoch of the most recent churn event, whether
  /// the ring has re-quiesced since (zero publish sends in an epoch), and
  /// the churn->quiet gap last measured.
  size_t last_churn_epoch = 0;
  bool churn_pending = false;
  size_t convergence_epochs = 0;

  /// Placement staleness: for every placement decision, the age (epochs
  /// since last ring publish) of each chosen host's coordinate view.
  std::vector<uint32_t> staleness_samples;

  size_t TotalSent() const {
    size_t s = 0;
    for (const TrafficCounters& c : protocol) s += c.sent;
    return s;
  }
  size_t TotalDelivered() const {
    size_t s = 0;
    for (const TrafficCounters& c : protocol) s += c.delivered;
    return s;
  }
  size_t TotalDropped() const {
    size_t s = 0;
    for (const TrafficCounters& c : protocol) {
      s += c.dropped_dead + c.dropped_partition + c.dropped_fault;
    }
    return s;
  }
  size_t TotalBytes() const {
    size_t s = 0;
    for (const TrafficCounters& c : protocol) s += c.bytes;
    return s;
  }
};

/// Flat summary of a TrafficStats for snapshots and bench JSON (no vectors;
/// percentiles precomputed).
struct TrafficSummary {
  size_t epochs = 0;
  size_t msgs_sent = 0;
  size_t msgs_delivered = 0;
  size_t msgs_dropped_dead = 0;
  size_t msgs_dropped_partition = 0;
  size_t msgs_dropped_fault = 0;
  size_t msgs_duplicated = 0;
  size_t bytes_total = 0;
  double bytes_per_node_per_epoch = 0.0;
  size_t protocol_msgs[kNumProtocols] = {0, 0, 0};
  size_t protocol_bytes[kNumProtocols] = {0, 0, 0};
  /// Epochs from the last churn event to ring quiescence (0 = no churn
  /// observed yet); `converged` is false while churn is still settling.
  size_t convergence_epochs = 0;
  bool converged = true;
  double staleness_p50 = 0.0;
  double staleness_p95 = 0.0;
  size_t staleness_samples = 0;
  /// Reliability layer (all zero while it is disabled).
  size_t retries = 0;
  size_t retry_bytes = 0;
  size_t acks = 0;
  size_t dup_suppressed = 0;
  size_t retry_exhausted = 0;
  size_t retransmit_overflow = 0;
  /// Transfers still awaiting an ack at summary time (folded in by
  /// msg::Runtime, which can see the agents; Summarize leaves it 0).
  size_t retry_pending = 0;
  /// Failure detector (all zero while it is disabled).
  size_t suspicions = 0;
  size_t false_suspicions = 0;
  size_t crash_confirmations = 0;
  double detection_p50 = 0.0;
  double detection_p95 = 0.0;
  size_t detection_samples = 0;
};

/// Percentile (nearest-rank) over an unsorted copy of `samples`.
inline double StalenessPercentile(const std::vector<uint32_t>& samples,
                                  double p) {
  if (samples.empty()) return 0.0;
  std::vector<uint32_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(rank, sorted.size() - 1)]);
}

inline TrafficSummary Summarize(const TrafficStats& stats, size_t num_nodes) {
  TrafficSummary s;
  s.epochs = stats.epochs;
  s.msgs_sent = stats.TotalSent();
  s.msgs_delivered = stats.TotalDelivered();
  s.bytes_total = stats.TotalBytes();
  for (size_t p = 0; p < kNumProtocols; ++p) {
    s.protocol_msgs[p] = stats.protocol[p].sent;
    s.protocol_bytes[p] = stats.protocol[p].bytes;
    s.msgs_dropped_dead += stats.protocol[p].dropped_dead;
    s.msgs_dropped_partition += stats.protocol[p].dropped_partition;
    s.msgs_dropped_fault += stats.protocol[p].dropped_fault;
    s.msgs_duplicated += stats.protocol[p].duplicated;
  }
  if (num_nodes > 0 && stats.epochs > 0) {
    s.bytes_per_node_per_epoch =
        static_cast<double>(s.bytes_total) /
        (static_cast<double>(num_nodes) * static_cast<double>(stats.epochs));
  }
  s.convergence_epochs = stats.convergence_epochs;
  s.converged = !stats.churn_pending;
  s.staleness_p50 = StalenessPercentile(stats.staleness_samples, 0.50);
  s.staleness_p95 = StalenessPercentile(stats.staleness_samples, 0.95);
  s.staleness_samples = stats.staleness_samples.size();
  s.retries = stats.reliability.retries;
  s.retry_bytes = stats.reliability.retry_bytes;
  s.acks = stats.reliability.acks;
  s.dup_suppressed = stats.reliability.dup_suppressed;
  s.retry_exhausted = stats.reliability.retry_exhausted;
  s.retransmit_overflow = stats.reliability.retransmit_overflow;
  s.suspicions = stats.detector.suspicions;
  s.false_suspicions = stats.detector.false_suspicions;
  s.crash_confirmations = stats.detector.crash_confirmations;
  s.detection_p50 =
      StalenessPercentile(stats.detector.detection_latency_samples, 0.50);
  s.detection_p95 =
      StalenessPercentile(stats.detector.detection_latency_samples, 0.95);
  s.detection_samples = stats.detector.detection_latency_samples.size();
  return s;
}

}  // namespace sbon::msg

#endif  // SBON_MSG_MESSAGE_H_

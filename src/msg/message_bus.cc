#include "msg/message_bus.h"

#include <cmath>
#include <utility>

namespace sbon::msg {

MessageBus::MessageBus(const net::FabricBackend* fabric,
                       const Options& options)
    : fabric_(fabric),
      options_(options),
      rng_(options.seed),
      faults_(options.faults) {
  stats_.node_msgs.assign(fabric_->NumNodes(), 0);
  stats_.node_bytes.assign(fabric_->NumNodes(), 0);
}

void MessageBus::SetHandler(Protocol proto, Handler handler) {
  handlers_[static_cast<size_t>(proto)] = std::move(handler);
}

Status MessageBus::Send(Envelope e) {
  if (e.bytes == 0) {
    return Status::InvalidArgument("Send: envelope has bytes == 0");
  }
  const size_t pi = static_cast<size_t>(e.proto);
  if (!handlers_[pi]) {
    return Status::FailedPrecondition(
        std::string("Send: no handler registered for protocol ") +
        ProtocolName(e.proto));
  }
  TrafficCounters& c = stats_.protocol[pi];
  ++c.sent;
  c.bytes += e.bytes;
  stats_.node_msgs[e.from] += 1;
  stats_.node_bytes[e.from] += e.bytes;
  e.send_ms = now_ms_;
  e.seq = next_seq_++;
  if (e.tid == 0) e.tid = next_tid_++;
  if (fabric_->EndpointDown(e.from) || fabric_->EndpointDown(e.to)) {
    ++c.dropped_dead;
    return Status::OK();
  }
  if (options_.drop_across_partition &&
      fabric_->CrossesPartition(e.from, e.to)) {
    ++c.dropped_partition;
    return Status::OK();
  }
  const double latency = fabric_->live().Latency(e.from, e.to);
  if (std::isinf(latency)) {
    // Unreachable by the fabric's own account (dead-endpoint sentinel or a
    // disconnected topology component): the datagram is lost, not parked
    // on the queue forever.
    ++c.dropped_dead;
    return Status::OK();
  }
  // Chaos layer: only messages the polite network would have delivered are
  // eligible for injected loss / duplication / delay (drops above already
  // have their own counters; double-counting would break conservation).
  const FaultInjector::Decision fault = faults_.Decide(e.proto, stats_.epochs);
  if (fault.drop) {
    ++c.dropped_fault;
    return Status::OK();
  }
  e.deliver_ms = now_ms_ + latency + fault.extra_delay_ms;
  if (fault.duplicate) {
    // The duplicate is a real wire copy: same transfer id (dedup windows
    // key on it), fresh seq (the delivery total order needs uniqueness),
    // its own delay draw, and it is billed as sent bytes — but not against
    // the sender's node counters, which measure what the node transmitted.
    Envelope dup = e;
    dup.seq = next_seq_++;
    dup.deliver_ms = now_ms_ + latency + fault.dup_extra_delay_ms;
    ++c.sent;
    ++c.duplicated;
    c.bytes += dup.bytes;
    queue_.push(std::move(dup));
  }
  queue_.push(std::move(e));
  return Status::OK();
}

void MessageBus::BeginEpoch() {
  now_ms_ = static_cast<double>(stats_.epochs) * options_.epoch_ms;
}

void MessageBus::EndEpoch() {
  const double horizon =
      static_cast<double>(stats_.epochs + 1) * options_.epoch_ms;
  while (!queue_.empty() && queue_.top().deliver_ms <= horizon) {
    Envelope e = queue_.top();
    queue_.pop();
    now_ms_ = e.deliver_ms;
    // Endpoints can die between send and delivery (the churn stage runs
    // mid-epoch): a message addressed to a now-dead node is lost.
    if (fabric_->EndpointDown(e.to)) {
      ++stats_.protocol[static_cast<size_t>(e.proto)].dropped_dead;
      continue;
    }
    TrafficCounters& c = stats_.protocol[static_cast<size_t>(e.proto)];
    ++c.delivered;
    const Handler& h = handlers_[static_cast<size_t>(e.proto)];
    if (h) h(e);
  }
  now_ms_ = horizon;
  ++stats_.epochs;
}

}  // namespace sbon::msg

#ifndef SBON_MSG_MESSAGE_BUS_H_
#define SBON_MSG_MESSAGE_BUS_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/fabric.h"
#include "msg/fault.h"
#include "msg/message.h"

namespace sbon::msg {

/// Deterministic discrete-event message loop over the live network fabric.
///
/// The bus is the delivery substrate of message-mode execution: agents Send
/// typed envelopes, the bus schedules each at `now + live one-way latency`
/// between the endpoints (read from net::FabricBackend — jitter and
/// partition penalties delay messages exactly as they delay everything
/// else), and EndEpoch drains deliveries due within the epoch's simulated
/// duration in (deliver time, send sequence) order. Messages slower than an
/// epoch carry over and deliver in a later epoch — convergence lag under
/// partition emerges from the latency model instead of being scripted.
///
/// Drop semantics (counted per protocol, never delivered):
///  - either endpoint is down (`FabricBackend::EndpointDown`), or the live
///    latency reads +inf (the fabric's dead-endpoint sentinel);
///  - the pair crosses an active partition cut and the bus was built with
///    `drop_across_partition` (the default): a soft partition inflates
///    latency for the oracle, but control-plane datagrams across the cut
///    are treated as lost, which is what makes staleness measurable.
///
/// Determinism: single-threaded by contract (like every substrate here);
/// delivery order is a total order (deliver_ms, then send seq); the bus
/// owns a private seeded Rng that agents draw peer samples from, so
/// message-mode never perturbs the overlay's oracle RNG stream.
class MessageBus {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Simulated wall-clock duration of one engine epoch, in ms. Messages
    /// whose one-way latency exceeds the remaining epoch budget deliver in
    /// a later epoch.
    double epoch_ms = 100.0;
    bool drop_across_partition = true;
    /// Chaos plan for the fault injector. The default (all-zero rates, no
    /// bursts) is provably inert: no fault Rng draw ever happens and the
    /// bus is bit-identical to one without an injector.
    FaultPlan faults;
  };

  using Handler = std::function<void(const Envelope&)>;

  MessageBus(const net::FabricBackend* fabric, const Options& options);

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Registers the delivery handler for one protocol (replacing any
  /// previous one). Handlers may Send — replies scheduled within the
  /// current epoch's horizon deliver in the same drain.
  void SetHandler(Protocol proto, Handler handler);

  /// Queues `e` for delivery (stamping send_ms/deliver_ms/seq/bytes
  /// accounting) or drops it per the class-comment semantics, then runs
  /// the fault injector (loss / duplication / extra delay) on anything
  /// still deliverable. `e.bytes` must be set by the caller; a zero-byte
  /// envelope or a protocol with no registered handler is a programming
  /// error and fails loudly instead of vanishing into the drop counters.
  Status Send(Envelope e);

  /// Hands out the next transfer id. Reliable senders pre-assign tids so
  /// acks can be matched to pending transfers; the bus stamps unset (0)
  /// tids itself at Send from the same counter.
  uint64_t IssueTid() { return next_tid_++; }

  /// The chaos layer (exposed so tests and the bench can script loss
  /// bursts after construction).
  FaultInjector& fault_injector() { return faults_; }

  /// Advances the clock to the start of the next engine epoch.
  void BeginEpoch();
  /// Drains every message due by the end of the current epoch, advancing
  /// `now_ms` to each delivery time, then to the epoch boundary.
  void EndEpoch();

  double now_ms() const { return now_ms_; }
  /// Engine epochs fully drained so far.
  size_t epoch() const { return stats_.epochs; }
  size_t pending() const { return queue_.size(); }
  Rng& rng() { return rng_; }
  const net::FabricBackend& fabric() const { return *fabric_; }
  size_t NumNodes() const { return fabric_->NumNodes(); }

  TrafficStats& stats() { return stats_; }
  const TrafficStats& stats() const { return stats_; }

 private:
  struct Later {
    bool operator()(const Envelope& a, const Envelope& b) const {
      if (a.deliver_ms != b.deliver_ms) return a.deliver_ms > b.deliver_ms;
      return a.seq > b.seq;
    }
  };

  const net::FabricBackend* fabric_;
  Options options_;
  Rng rng_;
  FaultInjector faults_;
  double now_ms_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_tid_ = 1;  ///< 0 means "unset" on an Envelope
  std::priority_queue<Envelope, std::vector<Envelope>, Later> queue_;
  Handler handlers_[kNumProtocols];
  TrafficStats stats_;
};

}  // namespace sbon::msg

#endif  // SBON_MSG_MESSAGE_BUS_H_

#include "net/churn.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace sbon::net {

ChurnModel::ChurnModel(std::vector<NodeId> eligible, const Params& params)
    : params_(params), eligible_(std::move(eligible)), rng_(params.seed),
      rejoin_epoch_(eligible_.size(), kUpMark) {}

void ChurnModel::ScheduleAt(size_t epoch, ChurnEvent event) {
  scripted_.emplace(epoch, std::move(event));
}

bool ChurnModel::IsDown(NodeId node) const {
  const size_t idx = EligibleIndex(node);
  return idx < eligible_.size() && rejoin_epoch_[idx] != kUpMark;
}

size_t ChurnModel::MaxDown() const {
  if (eligible_.empty()) return 0;
  const double frac = std::clamp(params_.max_down_frac, 0.0, 1.0);
  const size_t cap =
      static_cast<size_t>(frac * static_cast<double>(eligible_.size()));
  // Never all nodes at once: something must stay up to host services.
  return std::min(cap, eligible_.size() - 1);
}

size_t ChurnModel::SamplePoisson(double mean) {
  if (mean <= 0.0) return 0;
  // Knuth's product method; fine for the per-epoch rates churn uses.
  const double limit = std::exp(-mean);
  size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng_.NextDouble();
  } while (p > limit);
  return k - 1;
}

size_t ChurnModel::SampleDowntime() {
  const double mean = std::max(1.0, params_.mean_downtime_epochs);
  // 1 + floor(Exponential(mean - 1)) keeps whole-epoch downtimes >= 1 with
  // mean approximately `mean` (exact for mean -> 1; the floor shaves ~0.5
  // off large means, close enough for a churn knob).
  return 1 + static_cast<size_t>(rng_.Exponential(1.0 / std::max(
                                     1e-9, mean - 1.0 + 1e-9)));
}

size_t ChurnModel::EligibleIndex(NodeId node) const {
  for (size_t i = 0; i < eligible_.size(); ++i) {
    if (eligible_[i] == node) return i;
  }
  return eligible_.size();
}

void ChurnModel::MarkDown(size_t idx, size_t rejoin_epoch) {
  rejoin_epoch_[idx] = rejoin_epoch;
  ++down_count_;
}

void ChurnModel::MarkUp(size_t idx) {
  rejoin_epoch_[idx] = kUpMark;
  --down_count_;
}

std::vector<ChurnEvent> ChurnModel::Step() {
  std::vector<ChurnEvent> events;

  // 1) Scripted events, in scheduling order. Events that contradict the
  //    tracked state (crashing a down node, rejoining an up one, starting a
  //    partition over an active one) are dropped rather than emitted, so
  //    consumers never see an invalid sequence.
  auto range = scripted_.equal_range(epoch_);
  for (auto it = range.first; it != range.second; ++it) {
    const ChurnEvent& ev = it->second;
    switch (ev.type) {
      case ChurnEventType::kCrash: {
        const size_t idx = EligibleIndex(ev.node);
        if (idx >= eligible_.size() || rejoin_epoch_[idx] != kUpMark) break;
        if (down_count_ >= MaxDown()) break;
        MarkDown(idx, SIZE_MAX);  // down until a scripted rejoin
        events.push_back(ev);
        break;
      }
      case ChurnEventType::kRejoin: {
        const size_t idx = EligibleIndex(ev.node);
        if (idx >= eligible_.size() || rejoin_epoch_[idx] == kUpMark) break;
        MarkUp(idx);
        events.push_back(ev);
        break;
      }
      case ChurnEventType::kPartitionStart: {
        if (partition_active_ || ev.group.empty()) break;
        partition_active_ = true;
        partition_heal_epoch_ = SIZE_MAX;  // heals only via scripted heal
        events.push_back(ev);
        break;
      }
      case ChurnEventType::kPartitionHeal: {
        if (!partition_active_) break;
        partition_active_ = false;
        events.push_back(ev);
        break;
      }
    }
  }
  scripted_.erase(range.first, range.second);

  // 2) Automatic rejoins due this epoch (ascending node order: the rejoin
  //    schedule is a deterministic function of past crash draws).
  for (size_t i = 0; i < eligible_.size(); ++i) {
    if (rejoin_epoch_[i] != kUpMark && rejoin_epoch_[i] <= epoch_) {
      MarkUp(i);
      ChurnEvent ev;
      ev.type = ChurnEventType::kRejoin;
      ev.node = eligible_[i];
      events.push_back(ev);
    }
  }

  // 3) Poisson crash arrivals.
  const size_t arrivals = SamplePoisson(params_.crash_rate);
  for (size_t a = 0; a < arrivals && down_count_ < MaxDown(); ++a) {
    // Rejection-sample an up node; terminates because down_count_ < MaxDown
    // guarantees at least one up node, and stays deterministic per seed.
    size_t idx;
    do {
      idx = static_cast<size_t>(rng_.UniformInt(eligible_.size()));
    } while (rejoin_epoch_[idx] != kUpMark);
    MarkDown(idx, epoch_ + SampleDowntime());
    ChurnEvent ev;
    ev.type = ChurnEventType::kCrash;
    ev.node = eligible_[idx];
    events.push_back(ev);
  }

  // 4) Partition dynamics: heal first (a heal and a new start may share an
  //    epoch), then possibly start a new cut.
  if (partition_active_ && partition_heal_epoch_ <= epoch_) {
    partition_active_ = false;
    ChurnEvent ev;
    ev.type = ChurnEventType::kPartitionHeal;
    events.push_back(ev);
  }
  if (!partition_active_ && params_.partition_rate > 0.0 &&
      eligible_.size() >= 2 &&
      rng_.Bernoulli(std::min(1.0, params_.partition_rate))) {
    const size_t group_size = std::clamp<size_t>(
        static_cast<size_t>(std::llround(params_.partition_frac *
                                         static_cast<double>(
                                             eligible_.size()))),
        1, eligible_.size() - 1);
    ChurnEvent ev;
    ev.type = ChurnEventType::kPartitionStart;
    ev.severity = params_.partition_factor;
    ev.group.reserve(group_size);
    for (size_t i : rng_.SampleWithoutReplacement(eligible_.size(),
                                                  group_size)) {
      ev.group.push_back(eligible_[i]);
    }
    std::sort(ev.group.begin(), ev.group.end());
    partition_active_ = true;
    partition_heal_epoch_ =
        epoch_ + std::max<size_t>(1, params_.partition_duration_epochs);
    events.push_back(std::move(ev));
  }

  ++epoch_;
  return events;
}

}  // namespace sbon::net

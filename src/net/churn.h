#ifndef SBON_NET_CHURN_H_
#define SBON_NET_CHURN_H_

#include <cstddef>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace sbon::net {

/// What one churn event does to the network.
enum class ChurnEventType {
  kCrash,           ///< node fails (services evicted, leaves the ring)
  kRejoin,          ///< previously crashed node comes back
  kPartitionStart,  ///< a node group is cut off: cross-group latency inflates
  kPartitionHeal,   ///< the active partition heals
};

/// One membership/connectivity event emitted by a ChurnModel step.
struct ChurnEvent {
  ChurnEventType type = ChurnEventType::kCrash;
  /// Crash/rejoin target (unused for partition events).
  NodeId node = kInvalidNode;
  /// Partition start: the nodes on the minority side of the cut.
  std::vector<NodeId> group;
  /// Partition start: multiplicative latency penalty on cross-cut pairs.
  double severity = 1.0;
};

/// Membership churn and connectivity faults, alongside LoadModel (ambient
/// load drift) and LatencyJitter (transient congestion): seeded schedules of
/// node crashes, rejoins, and link partitions. The paper's adaptive
/// re-optimization story (Sec. 1, Fig. 2) assumes "the network and node
/// characteristics change" — this is the hard half of that change.
///
/// Two modes, freely mixed:
///  - Poisson: per-epoch crash/partition arrivals with sampled downtimes,
///    drawn from the model's *own* Rng (seeded by `Params::seed`), so churn
///    never perturbs the overlay's RNG stream — a zero-rate model attached
///    to an engine is bit-identical to no model at all.
///  - Scripted: `ScheduleAt(epoch, event)` fires exact events at exact
///    epochs (deterministic fault-injection for tests).
///
/// The model tracks which nodes it has taken down and never crashes a node
/// twice, never rejoins an up node, and keeps at least one eligible node up
/// (plus the `max_down_frac` cap). Consumers (engine::StreamEngine) apply
/// the returned events to the overlay.
class ChurnModel {
 public:
  struct Params {
    /// Expected node crashes per epoch (Poisson arrivals; 0 = none).
    double crash_rate = 0.0;
    /// Mean downtime in epochs before a crashed node rejoins (>= 1;
    /// sampled as 1 + Exponential truncated to whole epochs).
    double mean_downtime_epochs = 4.0;
    /// Ceiling on the fraction of eligible nodes simultaneously down.
    double max_down_frac = 0.5;
    /// Probability per epoch that a partition starts when none is active.
    double partition_rate = 0.0;
    /// Epochs until an automatic partition heals.
    size_t partition_duration_epochs = 3;
    /// Fraction of eligible nodes on the cut-off side of a partition.
    double partition_frac = 0.25;
    /// Multiplicative latency penalty across the cut while partitioned.
    double partition_factor = 8.0;
    /// Seed of the model's private Rng.
    uint64_t seed = 1;
  };

  /// `eligible` is the node population churn may act on (typically the
  /// overlay nodes alive at construction).
  ChurnModel(std::vector<NodeId> eligible, const Params& params);

  /// Scripted mode: fire `event` during the `epoch`-th Step call (0-based).
  /// Multiple events at one epoch fire in scheduling order, before any
  /// Poisson-generated events of that epoch.
  void ScheduleAt(size_t epoch, ChurnEvent event);

  /// Advances one epoch and returns its events: scripted first, then due
  /// rejoins, then Poisson crashes, then partition dynamics. Draws from the
  /// caller-visible Rng only when the corresponding rate is positive.
  std::vector<ChurnEvent> Step();

  size_t epoch() const { return epoch_; }
  size_t NumDown() const { return down_count_; }
  bool IsDown(NodeId node) const;
  bool PartitionActive() const { return partition_active_; }
  const Params& params() const { return params_; }
  const std::vector<NodeId>& eligible() const { return eligible_; }

 private:
  /// Max nodes that may be down at once (>= 0, <= eligible-1).
  size_t MaxDown() const;
  /// Poisson sample via Knuth's product method (no draws when mean <= 0).
  size_t SamplePoisson(double mean);
  /// Whole-epoch downtime >= 1 with approximately the configured mean.
  size_t SampleDowntime();
  /// Index into eligible_ of `node`, or eligible_.size() if not eligible.
  size_t EligibleIndex(NodeId node) const;
  void MarkDown(size_t idx, size_t rejoin_epoch);
  void MarkUp(size_t idx);

  Params params_;
  std::vector<NodeId> eligible_;
  Rng rng_;
  size_t epoch_ = 0;
  /// Parallel to eligible_: epoch at which the node rejoins automatically;
  /// kUpMark = node is up, SIZE_MAX = down until a scripted rejoin.
  std::vector<size_t> rejoin_epoch_;
  size_t down_count_ = 0;
  bool partition_active_ = false;
  size_t partition_heal_epoch_ = 0;
  std::multimap<size_t, ChurnEvent> scripted_;

  static constexpr size_t kUpMark = 0;  // sentinel: epoch 0 rejoin = "up"
};

}  // namespace sbon::net

#endif  // SBON_NET_CHURN_H_

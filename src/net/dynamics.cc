#include "net/dynamics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sbon::net {

LoadModel::LoadModel(size_t n, const Params& params, Rng* rng)
    : params_(params), load_(n, 0.0), hotspot_(n, false) {
  for (size_t i = 0; i < n; ++i) {
    hotspot_[i] = rng->Bernoulli(params_.hotspot_frac);
    const double mean = hotspot_[i] ? params_.hotspot_mean : params_.mean;
    load_[i] = std::clamp(rng->Normal(mean, params_.sigma * 0.5), 0.0, 1.0);
  }
}

void LoadModel::Step(double dt, Rng* rng) {
  const double sqdt = std::sqrt(std::max(dt, 0.0));
  for (size_t i = 0; i < load_.size(); ++i) {
    const double mean = hotspot_[i] ? params_.hotspot_mean : params_.mean;
    const double drift = params_.theta * (mean - load_[i]) * dt;
    const double shock = params_.sigma * sqdt * rng->Normal();
    load_[i] = std::clamp(load_[i] + drift + shock, 0.0, 1.0);
  }
}

void LoadModel::SetLoad(NodeId n, double load) {
  assert(n < load_.size());
  load_[n] = std::clamp(load, 0.0, 1.0);
}

LatencyJitter::LatencyJitter(size_t n, double sigma, Rng* rng)
    : n_(n), sigma_(sigma) {
  factors_.resize(n * (n + 1) / 2, 1.0);
  Resample(rng);
}

void LatencyJitter::Resample(Rng* rng, ThreadPool* pool) {
  // One caller draw per epoch: keeps epochs independent and the caller's
  // stream cheap to reason about; the O(n^2) factors expand from it below.
  epoch_seed_ = rng->Next();
  if (sigma_ <= 0.0) {
    std::fill(factors_.begin(), factors_.end(), 1.0);
    return;
  }
  ParallelSlices(pool, factors_.size(),
                 [this](size_t begin, size_t end) {
                   GenerateFactors(begin, end);
                 });
}

void LatencyJitter::GenerateFactors(size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    factors_[i] = JitterFactorAt(epoch_seed_, sigma_, i);
  }
}

size_t LatencyJitter::Index(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  // Row-major upper triangle including the diagonal.
  return JitterPairIndex(a, b, n_);
}

double LatencyJitter::Factor(NodeId a, NodeId b) const {
  return factors_[Index(a, b)];
}

double LatencyJitter::Apply(NodeId a, NodeId b, double base_latency) const {
  return base_latency * Factor(a, b);
}

void LatencyJitter::ApplyAll(const LatencyMatrix& base, LatencyMatrix* live,
                             ThreadPool* pool) const {
  assert(base.NumNodes() == n_ && live->NumNodes() == n_);
  const double* in = base.data();
  double* out = live->MutableData();
  if (pool == nullptr || pool->threads() <= 1) {
    for (NodeId a = 0; a < n_; ++a) {
      // factors_[Index(a, a) + (b - a)] == Factor(a, b) for b >= a: walk the
      // upper-triangle row contiguously instead of re-deriving the index.
      const double* row_f = factors_.data() + Index(a, a);
      out[a * n_ + a] = in[a * n_ + a];
      for (NodeId b = a + 1; b < n_; ++b) {
        const double v = in[a * n_ + b] * row_f[b - a];
        out[a * n_ + b] = v;
        out[b * n_ + a] = v;
      }
    }
    return;
  }
  // Parallel form: each slice owns whole output rows, so writes never cross
  // threads. Every entry — mirror side included — is the product of the
  // *upper-triangle* base entry and the symmetric factor, exactly what the
  // serial triangle walk stores on both sides, so the result is bitwise
  // identical (and bitwise symmetric) regardless of slicing.
  ParallelSlices(pool, n_, [&](size_t row_begin, size_t row_end) {
    for (size_t a = row_begin; a < row_end; ++a) {
      double* row_out = out + a * n_;
      for (size_t b = 0; b < n_; ++b) {
        if (b == a) {
          row_out[b] = in[a * n_ + a];
        } else {
          const size_t lo = a < b ? a : b;
          const size_t hi = a < b ? b : a;
          row_out[b] = in[lo * n_ + hi] * factors_[Index(
                           static_cast<NodeId>(lo), static_cast<NodeId>(hi))];
        }
      }
    }
  });
}

}  // namespace sbon::net

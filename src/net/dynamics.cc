#include "net/dynamics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sbon::net {

LoadModel::LoadModel(size_t n, const Params& params, Rng* rng)
    : params_(params), load_(n, 0.0), hotspot_(n, false) {
  for (size_t i = 0; i < n; ++i) {
    hotspot_[i] = rng->Bernoulli(params_.hotspot_frac);
    const double mean = hotspot_[i] ? params_.hotspot_mean : params_.mean;
    load_[i] = std::clamp(rng->Normal(mean, params_.sigma * 0.5), 0.0, 1.0);
  }
}

void LoadModel::Step(double dt, Rng* rng) {
  const double sqdt = std::sqrt(std::max(dt, 0.0));
  for (size_t i = 0; i < load_.size(); ++i) {
    const double mean = hotspot_[i] ? params_.hotspot_mean : params_.mean;
    const double drift = params_.theta * (mean - load_[i]) * dt;
    const double shock = params_.sigma * sqdt * rng->Normal();
    load_[i] = std::clamp(load_[i] + drift + shock, 0.0, 1.0);
  }
}

void LoadModel::SetLoad(NodeId n, double load) {
  assert(n < load_.size());
  load_[n] = std::clamp(load, 0.0, 1.0);
}

namespace {

// The i-th output of a SplitMix64 stream seeded with `seed` (0-based). The
// stream's state is affine in the call index (state_i = seed + (i+1)*gamma),
// so any slice of an epoch's factors can be generated independently — the
// hook the parallel Resample shards on — while matching the sequential walk
// bit for bit.
uint64_t SplitMix64At(uint64_t seed, size_t i) {
  uint64_t z = seed + (static_cast<uint64_t>(i) + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// e^s for the jitter exponent range (|s| <= ~1.8 at the sigmas the library
// uses): degree-6 Taylor core on s/4, squared twice. Relative error < 1e-5
// over that range — far below the statistical noise of the jitter itself —
// at a handful of multiplies instead of a libm call. Exponents outside the
// envelope (exotic sigma configurations) fall back to libm so the factor
// distribution stays accurate instead of silently drifting in the tails.
double FastExp(double s) {
  if (s < -2.0 || s > 2.0) return std::exp(s);
  const double r = s * 0.25;
  double p =
      1.0 +
      r * (1.0 +
           r * (1.0 / 2 +
                r * (1.0 / 6 +
                     r * (1.0 / 24 + r * (1.0 / 120 + r * (1.0 / 720))))));
  p *= p;
  p *= p;
  return p;
}

}  // namespace

LatencyJitter::LatencyJitter(size_t n, double sigma, Rng* rng)
    : n_(n), sigma_(sigma) {
  factors_.resize(n * (n + 1) / 2, 1.0);
  Resample(rng);
}

void LatencyJitter::Resample(Rng* rng, ThreadPool* pool) {
  // One caller draw per epoch: keeps epochs independent and the caller's
  // stream cheap to reason about; the O(n^2) factors expand from it below.
  epoch_seed_ = rng->Next();
  if (sigma_ <= 0.0) {
    std::fill(factors_.begin(), factors_.end(), 1.0);
    return;
  }
  ParallelSlices(pool, factors_.size(),
                 [this](size_t begin, size_t end) {
                   GenerateFactors(begin, end);
                 });
}

void LatencyJitter::GenerateFactors(size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    // CLT normal from the four 16-bit lanes of one SplitMix64 output:
    // mean 2, variance 1/3 before standardization; support bounded at
    // +/- 2*sqrt(3) sigma, which keeps factors within the multiplicative
    // bounds downstream consumers assume.
    const uint64_t z = SplitMix64At(epoch_seed_, i);
    const double sum = static_cast<double>(z & 0xffff) +
                       static_cast<double>((z >> 16) & 0xffff) +
                       static_cast<double>((z >> 32) & 0xffff) +
                       static_cast<double>(z >> 48);
    const double zn =
        (sum * (1.0 / 65536.0) - 2.0) * 1.7320508075688772;  // * sqrt(3)
    factors_[i] = FastExp(sigma_ * zn);
  }
}

size_t LatencyJitter::Index(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  // Row-major upper triangle including the diagonal.
  return static_cast<size_t>(a) * n_ - static_cast<size_t>(a) * (a + 1) / 2 +
         b;
}

double LatencyJitter::Factor(NodeId a, NodeId b) const {
  return factors_[Index(a, b)];
}

double LatencyJitter::Apply(NodeId a, NodeId b, double base_latency) const {
  return base_latency * Factor(a, b);
}

void LatencyJitter::ApplyAll(const LatencyMatrix& base, LatencyMatrix* live,
                             ThreadPool* pool) const {
  assert(base.NumNodes() == n_ && live->NumNodes() == n_);
  const double* in = base.data();
  double* out = live->MutableData();
  if (pool == nullptr || pool->threads() <= 1) {
    for (NodeId a = 0; a < n_; ++a) {
      // factors_[Index(a, a) + (b - a)] == Factor(a, b) for b >= a: walk the
      // upper-triangle row contiguously instead of re-deriving the index.
      const double* row_f = factors_.data() + Index(a, a);
      out[a * n_ + a] = in[a * n_ + a];
      for (NodeId b = a + 1; b < n_; ++b) {
        const double v = in[a * n_ + b] * row_f[b - a];
        out[a * n_ + b] = v;
        out[b * n_ + a] = v;
      }
    }
    return;
  }
  // Parallel form: each slice owns whole output rows, so writes never cross
  // threads. Every entry — mirror side included — is the product of the
  // *upper-triangle* base entry and the symmetric factor, exactly what the
  // serial triangle walk stores on both sides, so the result is bitwise
  // identical (and bitwise symmetric) regardless of slicing.
  ParallelSlices(pool, n_, [&](size_t row_begin, size_t row_end) {
    for (size_t a = row_begin; a < row_end; ++a) {
      double* row_out = out + a * n_;
      for (size_t b = 0; b < n_; ++b) {
        if (b == a) {
          row_out[b] = in[a * n_ + a];
        } else {
          const size_t lo = a < b ? a : b;
          const size_t hi = a < b ? b : a;
          row_out[b] = in[lo * n_ + hi] * factors_[Index(
                           static_cast<NodeId>(lo), static_cast<NodeId>(hi))];
        }
      }
    }
  });
}

}  // namespace sbon::net

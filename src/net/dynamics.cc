#include "net/dynamics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sbon::net {

LoadModel::LoadModel(size_t n, const Params& params, Rng* rng)
    : params_(params), load_(n, 0.0), hotspot_(n, false) {
  for (size_t i = 0; i < n; ++i) {
    hotspot_[i] = rng->Bernoulli(params_.hotspot_frac);
    const double mean = hotspot_[i] ? params_.hotspot_mean : params_.mean;
    load_[i] = std::clamp(rng->Normal(mean, params_.sigma * 0.5), 0.0, 1.0);
  }
}

void LoadModel::Step(double dt, Rng* rng) {
  const double sqdt = std::sqrt(std::max(dt, 0.0));
  for (size_t i = 0; i < load_.size(); ++i) {
    const double mean = hotspot_[i] ? params_.hotspot_mean : params_.mean;
    const double drift = params_.theta * (mean - load_[i]) * dt;
    const double shock = params_.sigma * sqdt * rng->Normal();
    load_[i] = std::clamp(load_[i] + drift + shock, 0.0, 1.0);
  }
}

void LoadModel::SetLoad(NodeId n, double load) {
  assert(n < load_.size());
  load_[n] = std::clamp(load, 0.0, 1.0);
}

LatencyJitter::LatencyJitter(size_t n, double sigma, Rng* rng)
    : n_(n), sigma_(sigma) {
  factors_.resize(n * (n + 1) / 2, 1.0);
  Resample(rng);
}

void LatencyJitter::Resample(Rng* rng) {
  if (sigma_ <= 0.0) {
    std::fill(factors_.begin(), factors_.end(), 1.0);
    return;
  }
  for (double& f : factors_) f = std::exp(rng->Normal(0.0, sigma_));
}

size_t LatencyJitter::Index(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  // Row-major upper triangle including the diagonal.
  return static_cast<size_t>(a) * n_ - static_cast<size_t>(a) * (a + 1) / 2 +
         b;
}

double LatencyJitter::Factor(NodeId a, NodeId b) const {
  return factors_[Index(a, b)];
}

double LatencyJitter::Apply(NodeId a, NodeId b, double base_latency) const {
  return base_latency * Factor(a, b);
}

}  // namespace sbon::net

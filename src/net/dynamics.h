#ifndef SBON_NET_DYNAMICS_H_
#define SBON_NET_DYNAMICS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "net/shortest_path.h"

namespace sbon::net {

// --- counter-based jitter primitives ---------------------------------------
// Shared by the dense LatencyJitter (which materializes a factor triangle per
// epoch) and the sparse fabric backend (which evaluates factors on demand).
// Both paths MUST go through these exact functions: dense-vs-sparse bit
// equality of live latencies hinges on the factor math being byte-for-byte
// the same expression in both.

/// The i-th output of a SplitMix64 stream seeded with `seed` (0-based). The
/// stream's state is affine in the call index (state_i = seed + (i+1)*gamma),
/// so any factor of an epoch is addressable directly from (seed, i) — the
/// hook both the parallel dense Resample and the sparse on-demand reads
/// shard on — while matching a sequential walk bit for bit.
inline uint64_t SplitMix64At(uint64_t seed, size_t i) {
  uint64_t z = seed + (static_cast<uint64_t>(i) + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// e^s for the jitter exponent range (|s| <= ~1.8 at the sigmas the library
/// uses): degree-6 Taylor core on s/4, squared twice. Relative error < 1e-5
/// over that range — far below the statistical noise of the jitter itself —
/// at a handful of multiplies instead of a libm call. Exponents outside the
/// envelope (exotic sigma configurations) fall back to libm so the factor
/// distribution stays accurate instead of silently drifting in the tails.
inline double JitterFastExp(double s) {
  if (s < -2.0 || s > 2.0) return std::exp(s);
  const double r = s * 0.25;
  double p =
      1.0 +
      r * (1.0 +
           r * (1.0 / 2 +
                r * (1.0 / 6 +
                     r * (1.0 / 24 + r * (1.0 / 120 + r * (1.0 / 720))))));
  p *= p;
  p *= p;
  return p;
}

/// Upper-triangle (diagonal included) pair index of (a, b) in an n-node
/// overlay: the factor address scheme of the dense triangle, reused verbatim
/// by the sparse backend so both evaluate the same SplitMix64 counter for a
/// given pair. Requires a <= b.
inline size_t JitterPairIndex(NodeId a, NodeId b, size_t n) {
  return static_cast<size_t>(a) * n -
         static_cast<size_t>(a) * (a + 1) / 2 + b;
}

/// Factor `i` of the congestion epoch seeded by `epoch_seed`: a CLT
/// approximation of LogNormal(0, sigma) expanded from one SplitMix64 output
/// (mean 2, variance 1/3 before standardization; support bounded at
/// +/- 2*sqrt(3) sigma, which keeps factors within the multiplicative bounds
/// downstream consumers assume).
inline double JitterFactorAt(uint64_t epoch_seed, double sigma, size_t i) {
  const uint64_t z = SplitMix64At(epoch_seed, i);
  const double sum = static_cast<double>(z & 0xffff) +
                     static_cast<double>((z >> 16) & 0xffff) +
                     static_cast<double>((z >> 32) & 0xffff) +
                     static_cast<double>(z >> 48);
  const double zn =
      (sum * (1.0 / 65536.0) - 2.0) * 1.7320508075688772;  // * sqrt(3)
  return JitterFastExp(sigma * zn);
}

/// Per-node CPU load as a mean-reverting stochastic process clamped to
/// [0, 1]. Stands in for "node characteristics (such as load) are dynamic"
/// (paper Sec. 1): dL = theta*(mean - L)*dt + sigma*sqrt(dt)*N(0,1).
class LoadModel {
 public:
  struct Params {
    double mean = 0.3;        ///< Long-run mean load.
    double theta = 0.5;       ///< Mean-reversion strength per time unit.
    double sigma = 0.25;      ///< Volatility.
    double hotspot_frac = 0;  ///< Fraction of nodes pinned to high load.
    double hotspot_mean = 0.9;
  };

  /// Initializes `n` nodes with loads drawn around the mean; `hotspot_frac`
  /// of them revert to `hotspot_mean` instead (the paper's "overloaded node
  /// a" exemplars in Figure 2).
  LoadModel(size_t n, const Params& params, Rng* rng);

  /// Advances every node by `dt` time units.
  void Step(double dt, Rng* rng);

  double load(NodeId n) const { return load_[n]; }
  const std::vector<double>& loads() const { return load_; }
  /// Directly sets a node's load (tests / scripted scenarios).
  void SetLoad(NodeId n, double load);
  bool is_hotspot(NodeId n) const { return hotspot_[n]; }

  size_t NumNodes() const { return load_.size(); }

 private:
  Params params_;
  std::vector<double> load_;
  std::vector<bool> hotspot_;
};

/// Multiplicative latency jitter: every pairwise latency is scaled by a
/// per-epoch factor approximately distributed LogNormal(0, sigma). Models
/// transient congestion without rebuilding the topology.
///
/// Factors are generated counter-style: each Resample draws a single epoch
/// seed from the caller's Rng and expands it through a SplitMix64 stream
/// into a CLT-approximated normal and a polynomial exp. An epoch resample
/// touches every node pair (O(n^2)), so the per-factor cost — not the
/// matrix write — dominates TickNetwork; this scheme is several times
/// cheaper than exact Box-Muller + libm exp while staying deterministic
/// per seed, symmetric, and mean-preserving (E[factor] = e^{sigma^2/2}).
///
/// Because the SplitMix64 state is affine in the call index, factor i is
/// addressable directly from (epoch seed, i) — which is what lets Resample
/// and ApplyAll shard across a ThreadPool with bit-identical results at any
/// thread count (each slice computes exactly the values the serial walk
/// would).
class LatencyJitter {
 public:
  LatencyJitter(size_t n, double sigma, Rng* rng);

  /// Resamples all factors (a new congestion epoch). Consumes exactly one
  /// draw from `rng` regardless of n. `pool` (optional) shards the O(n^2)
  /// factor generation.
  void Resample(Rng* rng, ThreadPool* pool = nullptr);

  /// Jittered latency for base latency between a and b. The factor is
  /// symmetric: Factor(a,b) == Factor(b,a).
  double Apply(NodeId a, NodeId b, double base_latency) const;

  /// Rewrites every pairwise latency of `live` as `base * factor` in one
  /// pass over the flat row-major buffers (the whole-matrix equivalent of
  /// per-pair Apply+Set, without the per-pair triangle indexing). Diagonal
  /// entries are copied through unjittered. `base` and `live` must both
  /// span the jitter's node count. `pool` (optional) shards the write by
  /// matrix row; every entry is the same product either way, so the live
  /// matrix comes out bit-identical at any thread count.
  void ApplyAll(const LatencyMatrix& base, LatencyMatrix* live,
                ThreadPool* pool = nullptr) const;

  double Factor(NodeId a, NodeId b) const;

 private:
  size_t n_;
  double sigma_;
  uint64_t epoch_seed_ = 0;  ///< seed of the current factor epoch
  // One factor per node pair (upper triangle), stored densely.
  std::vector<double> factors_;

  size_t Index(NodeId a, NodeId b) const;
  /// Fills factors_[begin, end) from epoch_seed_ (slice of one epoch).
  void GenerateFactors(size_t begin, size_t end);
};

}  // namespace sbon::net

#endif  // SBON_NET_DYNAMICS_H_

#ifndef SBON_NET_DYNAMICS_H_
#define SBON_NET_DYNAMICS_H_

#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "net/shortest_path.h"

namespace sbon::net {

/// Per-node CPU load as a mean-reverting stochastic process clamped to
/// [0, 1]. Stands in for "node characteristics (such as load) are dynamic"
/// (paper Sec. 1): dL = theta*(mean - L)*dt + sigma*sqrt(dt)*N(0,1).
class LoadModel {
 public:
  struct Params {
    double mean = 0.3;        ///< Long-run mean load.
    double theta = 0.5;       ///< Mean-reversion strength per time unit.
    double sigma = 0.25;      ///< Volatility.
    double hotspot_frac = 0;  ///< Fraction of nodes pinned to high load.
    double hotspot_mean = 0.9;
  };

  /// Initializes `n` nodes with loads drawn around the mean; `hotspot_frac`
  /// of them revert to `hotspot_mean` instead (the paper's "overloaded node
  /// a" exemplars in Figure 2).
  LoadModel(size_t n, const Params& params, Rng* rng);

  /// Advances every node by `dt` time units.
  void Step(double dt, Rng* rng);

  double load(NodeId n) const { return load_[n]; }
  const std::vector<double>& loads() const { return load_; }
  /// Directly sets a node's load (tests / scripted scenarios).
  void SetLoad(NodeId n, double load);
  bool is_hotspot(NodeId n) const { return hotspot_[n]; }

  size_t NumNodes() const { return load_.size(); }

 private:
  Params params_;
  std::vector<double> load_;
  std::vector<bool> hotspot_;
};

/// Multiplicative latency jitter: every pairwise latency is scaled by a
/// per-epoch factor approximately distributed LogNormal(0, sigma). Models
/// transient congestion without rebuilding the topology.
///
/// Factors are generated counter-style: each Resample draws a single epoch
/// seed from the caller's Rng and expands it through a SplitMix64 stream
/// into a CLT-approximated normal and a polynomial exp. An epoch resample
/// touches every node pair (O(n^2)), so the per-factor cost — not the
/// matrix write — dominates TickNetwork; this scheme is several times
/// cheaper than exact Box-Muller + libm exp while staying deterministic
/// per seed, symmetric, and mean-preserving (E[factor] = e^{sigma^2/2}).
///
/// Because the SplitMix64 state is affine in the call index, factor i is
/// addressable directly from (epoch seed, i) — which is what lets Resample
/// and ApplyAll shard across a ThreadPool with bit-identical results at any
/// thread count (each slice computes exactly the values the serial walk
/// would).
class LatencyJitter {
 public:
  LatencyJitter(size_t n, double sigma, Rng* rng);

  /// Resamples all factors (a new congestion epoch). Consumes exactly one
  /// draw from `rng` regardless of n. `pool` (optional) shards the O(n^2)
  /// factor generation.
  void Resample(Rng* rng, ThreadPool* pool = nullptr);

  /// Jittered latency for base latency between a and b. The factor is
  /// symmetric: Factor(a,b) == Factor(b,a).
  double Apply(NodeId a, NodeId b, double base_latency) const;

  /// Rewrites every pairwise latency of `live` as `base * factor` in one
  /// pass over the flat row-major buffers (the whole-matrix equivalent of
  /// per-pair Apply+Set, without the per-pair triangle indexing). Diagonal
  /// entries are copied through unjittered. `base` and `live` must both
  /// span the jitter's node count. `pool` (optional) shards the write by
  /// matrix row; every entry is the same product either way, so the live
  /// matrix comes out bit-identical at any thread count.
  void ApplyAll(const LatencyMatrix& base, LatencyMatrix* live,
                ThreadPool* pool = nullptr) const;

  double Factor(NodeId a, NodeId b) const;

 private:
  size_t n_;
  double sigma_;
  uint64_t epoch_seed_ = 0;  ///< seed of the current factor epoch
  // One factor per node pair (upper triangle), stored densely.
  std::vector<double> factors_;

  size_t Index(NodeId a, NodeId b) const;
  /// Fills factors_[begin, end) from epoch_seed_ (slice of one epoch).
  void GenerateFactors(size_t begin, size_t end);
};

}  // namespace sbon::net

#endif  // SBON_NET_DYNAMICS_H_

#include "net/fabric.h"

#include <utility>

namespace sbon::net {

NetworkFabric::NetworkFabric(const Topology& topo, double jitter_sigma,
                             Rng* rng)
    : n_(topo.NumNodes()) {
  base_ = std::make_unique<LatencyMatrix>(topo);
  live_ = std::make_unique<LatencyMatrix>(*base_);
  if (jitter_sigma > 0.0) {
    jitter_ = std::make_unique<LatencyJitter>(n_, jitter_sigma, rng);
  }
}

void NetworkFabric::TickNetwork(Rng* rng, ThreadPool* pool) {
  if (jitter_ == nullptr) return;
  jitter_->Resample(rng, pool);
  jitter_->ApplyAll(*base_, live_.get(), pool);
  // ApplyAll rebuilt the live matrix from the pristine base, so an active
  // partition's penalty must be re-applied on top of the fresh jitter.
  if (partition_active_) ApplyPartitionToLive(pool);
}

Status NetworkFabric::BeginPartition(const std::vector<NodeId>& group,
                                     double factor) {
  if (partition_active_) {
    return Status::FailedPrecondition("a partition is already active");
  }
  if (group.empty()) return Status::InvalidArgument("empty partition group");
  if (factor < 1.0) {
    return Status::InvalidArgument("partition factor must be >= 1");
  }
  partitioned_.assign(n_, false);
  for (NodeId n : group) {
    if (n >= n_) {
      return Status::OutOfRange("partition member out of range");
    }
    partitioned_[n] = true;
  }
  partition_active_ = true;
  partition_factor_ = factor;
  ApplyPartitionToLive(nullptr);
  return Status::OK();
}

Status NetworkFabric::EndPartition(ThreadPool* pool) {
  if (!partition_active_) {
    return Status::FailedPrecondition("no active partition");
  }
  partition_active_ = false;
  // Restore the live matrix: current jitter factors over the pristine base
  // (EndPartition is not a new congestion epoch, so no resample), or the
  // base itself on a jitter-free overlay.
  if (jitter_ != nullptr) {
    jitter_->ApplyAll(*base_, live_.get(), pool);
  } else {
    *live_ = *base_;
  }
  return Status::OK();
}

void NetworkFabric::ApplyPartitionToLive(ThreadPool* pool) {
  double* m = live_->MutableData();
  // Each cross-cut entry is multiplied by the factor exactly once whether
  // the walk is the serial triangle (both mirror entries per pair) or the
  // row-sharded full sweep, so the result is identical either way.
  ParallelSlices(pool, n_, [&](size_t row_begin, size_t row_end) {
    for (size_t a = row_begin; a < row_end; ++a) {
      const bool side = partitioned_[a];
      double* row = m + a * n_;
      for (size_t b = 0; b < n_; ++b) {
        if (side != static_cast<bool>(partitioned_[b])) {
          row[b] *= partition_factor_;
        }
      }
    }
  });
}

}  // namespace sbon::net

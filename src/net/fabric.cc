#include "net/fabric.h"

#include <limits>
#include <utility>

namespace sbon::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

NetworkFabric::NetworkFabric(const Topology& topo, double jitter_sigma,
                             Rng* rng)
    : n_(topo.NumNodes()) {
  base_ = std::make_unique<LatencyMatrix>(topo);
  live_ = std::make_unique<LatencyMatrix>(*base_);
  down_.assign(n_, 0);
  if (jitter_sigma > 0.0) {
    jitter_ = std::make_unique<LatencyJitter>(n_, jitter_sigma, rng);
  }
}

void NetworkFabric::TickNetwork(Rng* rng, ThreadPool* pool) {
  if (jitter_ == nullptr) return;
  jitter_->Resample(rng, pool);
  jitter_->ApplyAll(*base_, live_.get(), pool);
  jitter_applied_ = true;
  // ApplyAll rebuilt the live matrix from the pristine base, so an active
  // partition's penalty — and the +inf rows of down endpoints — must be
  // re-applied on top of the fresh jitter.
  if (partition_active_) ApplyPartitionToLive(pool);
  if (down_count_ > 0) ApplyDownToLive();
}

Status NetworkFabric::BeginPartition(const std::vector<NodeId>& group,
                                     double factor) {
  if (partition_active_) {
    return Status::FailedPrecondition("a partition is already active");
  }
  if (group.empty()) return Status::InvalidArgument("empty partition group");
  if (factor < 1.0) {
    return Status::InvalidArgument("partition factor must be >= 1");
  }
  partitioned_.assign(n_, false);
  for (NodeId n : group) {
    if (n >= n_) {
      return Status::OutOfRange("partition member out of range");
    }
    partitioned_[n] = true;
  }
  partition_active_ = true;
  partition_factor_ = factor;
  ApplyPartitionToLive(nullptr);
  return Status::OK();
}

Status NetworkFabric::EndPartition(ThreadPool* pool) {
  if (!partition_active_) {
    return Status::FailedPrecondition("no active partition");
  }
  partition_active_ = false;
  // Restore the live matrix: current jitter factors over the pristine base
  // (EndPartition is not a new congestion epoch, so no resample), or the
  // base itself on a jitter-free overlay.
  if (jitter_ != nullptr) {
    jitter_->ApplyAll(*base_, live_.get(), pool);
    jitter_applied_ = true;
  } else {
    *live_ = *base_;
  }
  if (down_count_ > 0) ApplyDownToLive();
  return Status::OK();
}

void NetworkFabric::SetEndpointDown(NodeId n, bool down) {
  if (static_cast<bool>(down_[n]) == down) return;
  down_[n] = down ? 1 : 0;
  if (down) {
    ++down_count_;
    double* m = live_->MutableData();
    for (size_t b = 0; b < n_; ++b) {
      m[static_cast<size_t>(n) * n_ + b] = kInf;
      m[b * n_ + n] = kInf;
    }
  } else {
    --down_count_;
    RestoreRow(n);
  }
}

void NetworkFabric::ApplyDownToLive() {
  double* m = live_->MutableData();
  for (NodeId n = 0; n < n_; ++n) {
    if (!down_[n]) continue;
    for (size_t b = 0; b < n_; ++b) {
      m[static_cast<size_t>(n) * n_ + b] = kInf;
      m[b * n_ + n] = kInf;
    }
  }
}

void NetworkFabric::RestoreRow(NodeId n) {
  double* m = live_->MutableData();
  for (size_t b = 0; b < n_; ++b) {
    if (down_[b]) {
      m[static_cast<size_t>(n) * n_ + b] = kInf;
      m[b * n_ + n] = kInf;
      continue;
    }
    if (b == n) {
      // Diagonal entries are copied through unjittered (see ApplyAll).
      m[static_cast<size_t>(n) * n_ + n] = base_->Latency(n, n);
      continue;
    }
    const NodeId nb = static_cast<NodeId>(b);
    const bool crosses = CrossesPartition(n, nb);
    if (jitter_ != nullptr && jitter_applied_) {
      // ApplyAll writes both mirrors of a pair from the *upper-triangle*
      // base entry times the symmetric factor; replay exactly that product
      // so a revived row is bit-identical to never having crashed. The base
      // mirrors themselves can differ in the last ulp (per-source Dijkstra
      // accumulates the path sum in opposite orders), so resolving through
      // base(n, b) here would leave a permanent one-ulp scar.
      const NodeId lo = n < nb ? n : nb;
      const NodeId hi = n < nb ? nb : n;
      double v = jitter_->Apply(lo, hi, base_->Latency(lo, hi));
      if (crosses) v *= partition_factor_;
      m[static_cast<size_t>(n) * n_ + b] = v;
      m[b * n_ + n] = v;
    } else {
      // A jitter-free live matrix is a plain copy of the base, whose mirror
      // entries are independent; restore each side from its own base entry.
      double va = base_->Latency(n, nb);
      double vb = base_->Latency(nb, n);
      if (crosses) {
        va *= partition_factor_;
        vb *= partition_factor_;
      }
      m[static_cast<size_t>(n) * n_ + b] = va;
      m[b * n_ + n] = vb;
    }
  }
}

void NetworkFabric::ApplyPartitionToLive(ThreadPool* pool) {
  double* m = live_->MutableData();
  // Each cross-cut entry is multiplied by the factor exactly once whether
  // the walk is the serial triangle (both mirror entries per pair) or the
  // row-sharded full sweep, so the result is identical either way.
  ParallelSlices(pool, n_, [&](size_t row_begin, size_t row_end) {
    for (size_t a = row_begin; a < row_end; ++a) {
      const bool side = partitioned_[a];
      double* row = m + a * n_;
      for (size_t b = 0; b < n_; ++b) {
        if (side != static_cast<bool>(partitioned_[b])) {
          row[b] *= partition_factor_;
        }
      }
    }
  });
}

}  // namespace sbon::net

#ifndef SBON_NET_FABRIC_H_
#define SBON_NET_FABRIC_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/dynamics.h"
#include "net/shortest_path.h"
#include "net/topology.h"

namespace sbon::net {

/// The physical-network substrate of the overlay: the pristine all-pairs
/// latency matrix, the live (jittered) view every cost measurement reads,
/// the per-epoch congestion jitter, and the soft-partition overlay that
/// inflates cross-cut latency during connectivity faults.
///
/// One of the three substrates `overlay::Sbon` composes (alongside
/// coords::CoordinateManager and overlay::ServiceLedger). It owns latency
/// state only — node liveness, load, and coordinates live elsewhere.
///
/// The jitter path (TickNetwork) shards across an optional ThreadPool by
/// matrix row; results are bit-identical at any thread count (see
/// LatencyJitter).
class NetworkFabric {
 public:
  /// Builds the base matrix from `topo` (all-pairs shortest paths) and the
  /// live view as a copy. `jitter_sigma > 0` attaches a LatencyJitter whose
  /// construction consumes exactly one draw from `rng` — the same draw
  /// order the monolithic Sbon::Initialize always had.
  NetworkFabric(const Topology& topo, double jitter_sigma, Rng* rng);

  NetworkFabric(const NetworkFabric&) = delete;
  NetworkFabric& operator=(const NetworkFabric&) = delete;

  /// The live latency view: jitter times base, partition penalty on top.
  const LatencyMatrix& live() const { return *live_; }
  /// The pristine matrix (before jitter/partition), for drift measurement.
  const LatencyMatrix& base() const { return *base_; }
  bool has_jitter() const { return jitter_ != nullptr; }
  size_t NumNodes() const { return n_; }

  /// Starts a new latency epoch: resamples pairwise jitter factors (one
  /// draw from `rng`), rewrites the live matrix, and re-applies the active
  /// partition's penalty on top of the fresh jitter. No-op without jitter.
  void TickNetwork(Rng* rng, ThreadPool* pool = nullptr);

  /// Soft link partition: multiplies the live latency of every pair that
  /// crosses the cut (`group` vs. the rest) by `factor` until EndPartition.
  /// One partition may be active at a time.
  Status BeginPartition(const std::vector<NodeId>& group, double factor);
  /// Heals the active partition, restoring jittered (or base) latencies.
  Status EndPartition(ThreadPool* pool = nullptr);
  bool partition_active() const { return partition_active_; }

 private:
  /// Multiplies cross-cut pairs of the live matrix by the partition factor.
  /// Row-sharded when `pool` is given; each entry sees one multiply either
  /// way, so the result is bit-identical at any thread count.
  void ApplyPartitionToLive(ThreadPool* pool);

  size_t n_;
  std::unique_ptr<LatencyMatrix> base_;  // pristine
  std::unique_ptr<LatencyMatrix> live_;  // jittered + partitioned view
  std::unique_ptr<LatencyJitter> jitter_;
  bool partition_active_ = false;
  double partition_factor_ = 1.0;
  std::vector<bool> partitioned_;  ///< by node id; one side of the cut
};

}  // namespace sbon::net

#endif  // SBON_NET_FABRIC_H_

#ifndef SBON_NET_FABRIC_H_
#define SBON_NET_FABRIC_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/dynamics.h"
#include "net/shortest_path.h"
#include "net/topology.h"

namespace sbon::net {

/// The latency-substrate seam: everything the overlay needs from "the
/// network" — a pristine and a live pairwise-latency view, the per-epoch
/// congestion tick, and the soft-partition overlay — behind one interface so
/// the representation can be swapped by scale:
///
///  - NetworkFabric (dense): materialized O(n^2) base + live matrices.
///    Exact, O(1) reads, the right choice up to a few thousand nodes.
///  - SparseFabric (generative, net/sparse_fabric.h): computes base latency
///    on demand from the topology, derives jitter index-addressably from the
///    epoch seed, and applies the partition penalty as a predicate over the
///    cut. O(n) memory — the only backend that reaches 100k+ nodes.
///
/// Contract shared by all backends: `TickNetwork` consumes exactly one Rng
/// draw per call when the backend was built with jitter (none otherwise);
/// construction consumes exactly one draw iff jitter_sigma > 0; and at sizes
/// where both backends exist, fixed-seed live latencies are bit-identical
/// across backends.
class FabricBackend {
 public:
  virtual ~FabricBackend() = default;

  /// Marks an endpoint down (crashed) or back up. While a node is down,
  /// every `live()` latency read involving it — the self-pair included —
  /// returns +infinity: the pinned cross-backend semantic for dead
  /// endpoints. A crashed node is unreachable, never "as fast as it was
  /// before the crash" (the stale value the live view used to return) and
  /// never NaN (the penalty composes multiplicatively with jitter and
  /// partition factors, which are finite and positive). `base()` is
  /// unaffected: it answers "what would the healed network look like",
  /// which is what drift measurement and rejoin placement need.
  virtual void SetEndpointDown(NodeId n, bool down) = 0;
  /// True while SetEndpointDown(n, true) is in effect.
  virtual bool EndpointDown(NodeId n) const = 0;
  /// True when an active partition separates `a` and `b` (the pair crosses
  /// the cut); always false without an active partition. This is the drop
  /// predicate message delivery tests before paying cross-cut latency.
  virtual bool CrossesPartition(NodeId a, NodeId b) const = 0;

  /// The live latency view: jitter times base, partition penalty on top.
  virtual const LatencyView& live() const = 0;
  /// The pristine latencies (before jitter/partition), for drift measurement.
  virtual const LatencyView& base() const = 0;
  virtual bool has_jitter() const = 0;
  virtual size_t NumNodes() const = 0;
  /// Backend name for logs/bench JSON ("dense" / "sparse").
  virtual const char* name() const = 0;
  /// True when TickNetwork does O(n^2) work worth sharding across a pool
  /// (dense rewrite); false when it is O(1) (sparse seed bump) and the
  /// epoch pipeline should not bother scheduling it on workers.
  virtual bool sharded_tick() const = 0;

  /// Starts a new latency epoch. One draw from `rng` iff built with jitter.
  virtual void TickNetwork(Rng* rng, ThreadPool* pool = nullptr) = 0;

  /// Soft link partition: the live latency of every pair that crosses the
  /// cut (`group` vs. the rest) is scaled by `factor` until EndPartition.
  /// One partition may be active at a time.
  virtual Status BeginPartition(const std::vector<NodeId>& group,
                                double factor) = 0;
  /// Heals the active partition, restoring jittered (or base) latencies.
  virtual Status EndPartition(ThreadPool* pool = nullptr) = 0;
  virtual bool partition_active() const = 0;
};

/// The dense physical-network substrate of the overlay: the pristine
/// all-pairs latency matrix, the live (jittered) view every cost measurement
/// reads, the per-epoch congestion jitter, and the soft-partition overlay
/// that inflates cross-cut latency during connectivity faults.
///
/// One of the three substrates `overlay::Sbon` composes (alongside
/// coords::CoordinateManager and overlay::ServiceLedger). It owns latency
/// state only — node liveness, load, and coordinates live elsewhere.
///
/// The jitter path (TickNetwork) shards across an optional ThreadPool by
/// matrix row; results are bit-identical at any thread count (see
/// LatencyJitter).
class NetworkFabric final : public FabricBackend {
 public:
  /// Builds the base matrix from `topo` (all-pairs shortest paths) and the
  /// live view as a copy. `jitter_sigma > 0` attaches a LatencyJitter whose
  /// construction consumes exactly one draw from `rng` — the same draw
  /// order the monolithic Sbon::Initialize always had.
  NetworkFabric(const Topology& topo, double jitter_sigma, Rng* rng);

  NetworkFabric(const NetworkFabric&) = delete;
  NetworkFabric& operator=(const NetworkFabric&) = delete;

  /// The live latency matrix: jitter times base, partition penalty on top
  /// (covariant — callers holding the concrete type keep raw-buffer access).
  const LatencyMatrix& live() const override { return *live_; }
  /// The pristine matrix (before jitter/partition), for drift measurement.
  const LatencyMatrix& base() const override { return *base_; }
  bool has_jitter() const override { return jitter_ != nullptr; }
  size_t NumNodes() const override { return n_; }
  const char* name() const override { return "dense"; }
  bool sharded_tick() const override { return true; }

  /// Starts a new latency epoch: resamples pairwise jitter factors (one
  /// draw from `rng`), rewrites the live matrix, and re-applies the active
  /// partition's penalty on top of the fresh jitter. No-op without jitter.
  void TickNetwork(Rng* rng, ThreadPool* pool = nullptr) override;

  /// Soft link partition: multiplies the live latency of every pair that
  /// crosses the cut (`group` vs. the rest) by `factor` until EndPartition.
  /// One partition may be active at a time.
  Status BeginPartition(const std::vector<NodeId>& group,
                        double factor) override;
  /// Heals the active partition, restoring jittered (or base) latencies.
  Status EndPartition(ThreadPool* pool = nullptr) override;
  bool partition_active() const override { return partition_active_; }

  /// Infs row/column `n` of the live matrix while down; restores it from
  /// base x current jitter factors (plus partition penalty) on revival.
  void SetEndpointDown(NodeId n, bool down) override;
  bool EndpointDown(NodeId n) const override {
    return static_cast<bool>(down_[n]);
  }
  bool CrossesPartition(NodeId a, NodeId b) const override {
    return partition_active_ && static_cast<bool>(partitioned_[a]) !=
                                    static_cast<bool>(partitioned_[b]);
  }

 private:
  /// Multiplies cross-cut pairs of the live matrix by the partition factor.
  /// Row-sharded when `pool` is given; each entry sees one multiply either
  /// way, so the result is bit-identical at any thread count.
  void ApplyPartitionToLive(ThreadPool* pool);
  /// Re-infs the rows/columns of every down endpoint. Must run after any
  /// full live-matrix rebuild (TickNetwork's ApplyAll, EndPartition's
  /// restore), which writes finite values over the +inf sentinels.
  void ApplyDownToLive();
  /// Recomputes live row/column `n` exactly as a full rebuild would —
  /// base x current jitter factor (once factors have been stamped),
  /// partition penalty on cross-cut pairs, +inf against endpoints that are
  /// still down — so a revived node's latencies are bit-identical to never
  /// having crashed.
  void RestoreRow(NodeId n);

  size_t n_;
  std::unique_ptr<LatencyMatrix> base_;  // pristine
  std::unique_ptr<LatencyMatrix> live_;  // jittered + partitioned view
  std::unique_ptr<LatencyJitter> jitter_;
  /// True once jitter factors have been stamped onto the live matrix (first
  /// TickNetwork or a jittered EndPartition) — mirrors the sparse backend's
  /// flag; RestoreRow must not apply factors the matrix never saw.
  bool jitter_applied_ = false;
  bool partition_active_ = false;
  double partition_factor_ = 1.0;
  std::vector<bool> partitioned_;  ///< by node id; one side of the cut
  std::vector<uint8_t> down_;      ///< by node id; endpoint marked down
  size_t down_count_ = 0;
};

}  // namespace sbon::net

#endif  // SBON_NET_FABRIC_H_

#include "net/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sbon::net {
namespace {

// Connects `members` into a ring plus random chords, giving every generated
// domain 2-edge redundancy like GT-ITM's default connectivity.
void ConnectDomain(Topology* topo, const std::vector<NodeId>& members,
                   double lat_min, double lat_max, double extra_edge_prob,
                   Rng* rng) {
  const size_t n = members.size();
  if (n <= 1) return;
  if (n == 2) {
    topo->AddLink(members[0], members[1], rng->Uniform(lat_min, lat_max));
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    topo->AddLink(members[i], members[(i + 1) % n],
                  rng->Uniform(lat_min, lat_max));
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 2; j < n; ++j) {
      if (i == 0 && j == n - 1) continue;  // already a ring edge
      if (rng->Bernoulli(extra_edge_prob / static_cast<double>(n))) {
        topo->AddLink(members[i], members[j], rng->Uniform(lat_min, lat_max));
      }
    }
  }
}

}  // namespace

StatusOr<Topology> GenerateTransitStub(const TransitStubParams& p, Rng* rng) {
  if (p.transit_domains == 0 || p.transit_nodes_per_domain == 0) {
    return Status::InvalidArgument("transit-stub: empty transit level");
  }
  if (p.nodes_per_stub_domain == 0) {
    return Status::InvalidArgument("transit-stub: empty stub domains");
  }
  Topology topo;
  int next_domain = 0;

  // Transit domains.
  std::vector<std::vector<NodeId>> transit_domains;
  for (size_t d = 0; d < p.transit_domains; ++d) {
    const int dom = next_domain++;
    std::vector<NodeId> members;
    for (size_t i = 0; i < p.transit_nodes_per_domain; ++i) {
      members.push_back(topo.AddNode(NodeKind::kTransit, dom,
                                     /*overlay_eligible=*/
                                     !p.overlay_on_stub_only));
    }
    ConnectDomain(&topo, members, p.intra_transit_latency_min,
                  p.intra_transit_latency_max, p.extra_transit_edge_prob, rng);
    transit_domains.push_back(std::move(members));
  }

  // Inter-transit-domain links: ring over domains plus one random chord per
  // domain, connecting random representatives.
  const size_t td = transit_domains.size();
  if (td > 1) {
    for (size_t d = 0; d < td; ++d) {
      const auto& from = transit_domains[d];
      const auto& to = transit_domains[(d + 1) % td];
      const NodeId a = from[rng->UniformInt(from.size())];
      const NodeId b = to[rng->UniformInt(to.size())];
      topo.AddLink(a, b, rng->Uniform(p.inter_transit_latency_min,
                                      p.inter_transit_latency_max));
      if (td > 2 && rng->Bernoulli(0.5)) {
        const size_t other = (d + 2 + rng->UniformInt(td - 2)) % td;
        if (other != d) {
          const auto& t2 = transit_domains[other];
          topo.AddLink(from[rng->UniformInt(from.size())],
                       t2[rng->UniformInt(t2.size())],
                       rng->Uniform(p.inter_transit_latency_min,
                                    p.inter_transit_latency_max));
        }
      }
    }
  }

  // Stub domains hanging off each transit node.
  for (const auto& domain : transit_domains) {
    for (NodeId tnode : domain) {
      for (size_t s = 0; s < p.stub_domains_per_transit_node; ++s) {
        const int dom = next_domain++;
        std::vector<NodeId> members;
        for (size_t i = 0; i < p.nodes_per_stub_domain; ++i) {
          members.push_back(topo.AddNode(NodeKind::kStub, dom,
                                         /*overlay_eligible=*/true));
        }
        ConnectDomain(&topo, members, p.intra_stub_latency_min,
                      p.intra_stub_latency_max, p.extra_stub_edge_prob, rng);
        // Gateway link from a random stub node to its transit node.
        const NodeId gw = members[rng->UniformInt(members.size())];
        topo.AddLink(tnode, gw, rng->Uniform(p.transit_stub_latency_min,
                                             p.transit_stub_latency_max));
      }
    }
  }

  if (!topo.IsConnected()) {
    return Status::Internal("transit-stub generator produced disconnected graph");
  }
  return topo;
}

StatusOr<Topology> GenerateWaxman(const WaxmanParams& p, Rng* rng) {
  if (p.nodes == 0) return Status::InvalidArgument("waxman: zero nodes");
  Topology topo;
  std::vector<double> x(p.nodes), y(p.nodes);
  for (size_t i = 0; i < p.nodes; ++i) {
    topo.AddNode(NodeKind::kHost, /*domain=*/-1, /*overlay_eligible=*/true);
    x[i] = rng->NextDouble();
    y[i] = rng->NextDouble();
  }
  const double kMaxDist = std::sqrt(2.0);
  auto dist = [&](size_t i, size_t j) {
    const double dx = x[i] - x[j], dy = y[i] - y[j];
    return std::sqrt(dx * dx + dy * dy);
  };
  for (size_t i = 0; i < p.nodes; ++i) {
    for (size_t j = i + 1; j < p.nodes; ++j) {
      const double d = dist(i, j);
      const double prob = p.alpha * std::exp(-d / (p.beta * kMaxDist));
      if (rng->Bernoulli(prob)) {
        topo.AddLink(static_cast<NodeId>(i), static_cast<NodeId>(j),
                     std::max(0.1, d * p.latency_per_unit));
      }
    }
  }
  // Guarantee connectivity: link each non-reachable component to a random
  // already-reachable node via a geometric-latency edge.
  std::vector<bool> seen(p.nodes, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  auto bfs_from = [&](std::vector<NodeId> frontier) {
    while (!frontier.empty()) {
      const NodeId n = frontier.back();
      frontier.pop_back();
      for (uint32_t li : topo.IncidentLinks(n)) {
        const Link& l = topo.links()[li];
        const NodeId other = (l.a == n) ? l.b : l.a;
        if (!seen[other]) {
          seen[other] = true;
          frontier.push_back(other);
        }
      }
    }
  };
  bfs_from({0});
  for (size_t i = 1; i < p.nodes; ++i) {
    if (!seen[i]) {
      NodeId anchor;
      do {
        anchor = static_cast<NodeId>(rng->UniformInt(p.nodes));
      } while (!seen[anchor]);
      topo.AddLink(static_cast<NodeId>(i), anchor,
                   std::max(0.1, dist(i, anchor) * p.latency_per_unit));
      seen[i] = true;
      bfs_from({static_cast<NodeId>(i)});
    }
  }
  return topo;
}

StatusOr<Topology> GenerateGrid(size_t side, double link_latency_ms) {
  if (side == 0) return Status::InvalidArgument("grid: zero side");
  Topology topo;
  for (size_t i = 0; i < side * side; ++i) {
    topo.AddNode(NodeKind::kHost);
  }
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      const NodeId n = static_cast<NodeId>(r * side + c);
      if (c + 1 < side) topo.AddLink(n, n + 1, link_latency_ms);
      if (r + 1 < side) {
        topo.AddLink(n, static_cast<NodeId>(n + side), link_latency_ms);
      }
    }
  }
  return topo;
}

StatusOr<Topology> GenerateStar(size_t leaves, double link_latency_ms) {
  Topology topo;
  const NodeId hub = topo.AddNode(NodeKind::kHost);
  for (size_t i = 0; i < leaves; ++i) {
    const NodeId leaf = topo.AddNode(NodeKind::kHost);
    topo.AddLink(hub, leaf, link_latency_ms);
  }
  return topo;
}

StatusOr<Topology> GenerateLine(size_t n, double link_latency_ms) {
  if (n == 0) return Status::InvalidArgument("line: zero nodes");
  Topology topo;
  for (size_t i = 0; i < n; ++i) topo.AddNode(NodeKind::kHost);
  for (size_t i = 0; i + 1 < n; ++i) {
    topo.AddLink(static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                 link_latency_ms);
  }
  return topo;
}

}  // namespace sbon::net

#ifndef SBON_NET_GENERATORS_H_
#define SBON_NET_GENERATORS_H_

#include <cstddef>

#include "common/rng.h"
#include "common/status.h"
#include "net/topology.h"

namespace sbon::net {

/// Parameters of the GT-ITM-style transit-stub generator. Defaults produce
/// the paper's ~600-node topology (Figure 2): 4 transit domains x 4 transit
/// nodes, 3 stub domains per transit node, ~12 nodes per stub domain:
/// 16 transit + 48*12 = 592 routers, plus stub hosts if configured.
struct TransitStubParams {
  size_t transit_domains = 4;
  size_t transit_nodes_per_domain = 4;
  size_t stub_domains_per_transit_node = 3;
  size_t nodes_per_stub_domain = 12;

  /// Latency ranges (ms) per link class; actual latencies drawn uniformly.
  double intra_transit_latency_min = 10.0;
  double intra_transit_latency_max = 30.0;
  double inter_transit_latency_min = 30.0;
  double inter_transit_latency_max = 80.0;
  double transit_stub_latency_min = 5.0;
  double transit_stub_latency_max = 15.0;
  double intra_stub_latency_min = 1.0;
  double intra_stub_latency_max = 5.0;

  /// Probability of an extra intra-domain edge beyond the connecting ring
  /// (adds redundancy, mirrors GT-ITM edge probability).
  double extra_transit_edge_prob = 0.5;
  double extra_stub_edge_prob = 0.25;

  /// If true, only stub-domain nodes can host overlay services (transit
  /// routers are plain forwarders, matching the SBON deployment model).
  bool overlay_on_stub_only = true;
};

/// Generates a connected transit-stub topology. Never fails for positive
/// sizes; returns InvalidArgument for degenerate parameters.
StatusOr<Topology> GenerateTransitStub(const TransitStubParams& params,
                                       Rng* rng);

/// Parameters of a Waxman random graph on the unit square.
struct WaxmanParams {
  size_t nodes = 100;
  double alpha = 0.25;           ///< Edge probability scale.
  double beta = 0.35;            ///< Edge length sensitivity.
  double latency_per_unit = 50;  ///< ms per unit Euclidean distance.
};

/// Generates a connected Waxman graph (extra edges are added from a random
/// spanning tree if the probabilistic phase leaves the graph disconnected).
StatusOr<Topology> GenerateWaxman(const WaxmanParams& params, Rng* rng);

/// Generates a `side` x `side` grid with uniform `link_latency_ms` links.
/// Useful for tests where shortest-path distances are known analytically.
StatusOr<Topology> GenerateGrid(size_t side, double link_latency_ms);

/// Generates a star: node 0 is the hub, nodes 1..n-1 are leaves.
StatusOr<Topology> GenerateStar(size_t leaves, double link_latency_ms);

/// Generates a line of `n` nodes with uniform links.
StatusOr<Topology> GenerateLine(size_t n, double link_latency_ms);

}  // namespace sbon::net

#endif  // SBON_NET_GENERATORS_H_

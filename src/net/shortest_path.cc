#include "net/shortest_path.h"

#include <limits>
#include <queue>
#include <utility>

namespace sbon::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void DijkstraWithPredecessors(const Topology& topo, NodeId src,
                              std::vector<double>* dist,
                              std::vector<NodeId>* pred) {
  const size_t n = topo.NumNodes();
  dist->assign(n, kInf);
  if (pred != nullptr) pred->assign(n, kInvalidNode);
  (*dist)[src] = 0.0;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > (*dist)[u]) continue;
    for (uint32_t li : topo.IncidentLinks(u)) {
      const Link& l = topo.links()[li];
      const NodeId v = (l.a == u) ? l.b : l.a;
      const double nd = d + l.latency_ms;
      if (nd < (*dist)[v]) {
        (*dist)[v] = nd;
        if (pred != nullptr) (*pred)[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
}

std::vector<double> DijkstraLatencies(const Topology& topo, NodeId src) {
  std::vector<double> dist;
  DijkstraWithPredecessors(topo, src, &dist, nullptr);
  return dist;
}

double LatencyView::MeanLatency() const {
  const size_t n = NumNodes();
  if (n < 2) return 0.0;
  double sum = 0.0;
  size_t count = 0;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const double v =
          Latency(static_cast<NodeId>(a), static_cast<NodeId>(b));
      if (v < kInf) {
        sum += v;
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double LatencyView::MaxLatency() const {
  const size_t n = NumNodes();
  double mx = 0.0;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      const double v =
          Latency(static_cast<NodeId>(a), static_cast<NodeId>(b));
      if (v < kInf && v > mx) mx = v;
    }
  }
  return mx;
}

LatencyMatrix::LatencyMatrix(const Topology& topo) : n_(topo.NumNodes()) {
  m_.resize(n_ * n_);
  for (NodeId s = 0; s < n_; ++s) {
    const std::vector<double> d = DijkstraLatencies(topo, s);
    for (NodeId t = 0; t < n_; ++t) m_[s * n_ + t] = d[t];
  }
}

double LatencyMatrix::MeanLatency() const {
  if (n_ < 2) return 0.0;
  double sum = 0.0;
  size_t count = 0;
  for (size_t a = 0; a < n_; ++a) {
    for (size_t b = 0; b < n_; ++b) {
      if (a == b) continue;
      const double v = m_[a * n_ + b];
      if (v < kInf) {
        sum += v;
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double LatencyMatrix::MaxLatency() const {
  double mx = 0.0;
  for (size_t a = 0; a < n_; ++a) {
    for (size_t b = 0; b < n_; ++b) {
      const double v = m_[a * n_ + b];
      if (v < kInf && v > mx) mx = v;
    }
  }
  return mx;
}

}  // namespace sbon::net

#ifndef SBON_NET_SHORTEST_PATH_H_
#define SBON_NET_SHORTEST_PATH_H_

#include <vector>

#include "common/ids.h"
#include "net/topology.h"

namespace sbon::net {

/// Single-source shortest-path latencies (ms) from `src` over the topology's
/// link latencies (Dijkstra). Unreachable nodes get +inf.
std::vector<double> DijkstraLatencies(const Topology& topo, NodeId src);

/// Same as `DijkstraLatencies` but also returns the predecessor of each node
/// on its shortest path (kInvalidNode for src/unreachable).
void DijkstraWithPredecessors(const Topology& topo, NodeId src,
                              std::vector<double>* dist,
                              std::vector<NodeId>* pred);

/// Read-only pairwise-latency oracle: the interface every latency consumer
/// (Vivaldi sampling, circuit cost accounting, embedding evaluation) reads
/// through. Implemented densely by LatencyMatrix and generatively by the
/// sparse fabric backend's on-demand views — consumers cannot tell the two
/// apart because fixed-seed values are bit-identical where both exist.
class LatencyView {
 public:
  virtual ~LatencyView() = default;

  virtual size_t NumNodes() const = 0;

  /// Shortest-path latency in ms between a and b. Generative
  /// implementations compute this on demand; treat a read as "cheap but not
  /// free" (an O(1)-to-O(landmarks) lookup, never an O(n) scan).
  virtual double Latency(NodeId a, NodeId b) const = 0;

  /// Mean of all off-diagonal pairwise latencies (used for normalization).
  /// O(n^2) reads — the default walks every pair in the same order the
  /// dense matrix does, so dense and generative views agree bitwise.
  virtual double MeanLatency() const;
  /// Maximum finite pairwise latency (network diameter in ms). O(n^2) reads.
  virtual double MaxLatency() const;
};

/// Dense all-pairs latency matrix. Built once per topology; queries are O(1).
/// This is the "network oracle" that stands in for real RTT measurements:
/// Vivaldi samples it with noise, and circuit cost accounting uses it exactly.
class LatencyMatrix final : public LatencyView {
 public:
  /// Runs Dijkstra from every node. O(n * m log n).
  explicit LatencyMatrix(const Topology& topo);

  size_t NumNodes() const override { return n_; }

  /// Shortest-path latency in ms between a and b.
  double Latency(NodeId a, NodeId b) const override { return m_[a * n_ + b]; }

  /// Overrides one symmetric pairwise latency (dynamic-latency models
  /// apply jitter factors on top of a pristine base matrix).
  void Set(NodeId a, NodeId b, double latency_ms) {
    m_[a * n_ + b] = latency_ms;
    m_[b * n_ + a] = latency_ms;
  }

  /// Raw row-major n*n buffer, for bulk rewrites (epoch jitter application
  /// touches every pair; going through Set would pay two indexed stores per
  /// pair plus call overhead). Row `a` starts at `data() + a * NumNodes()`.
  const double* data() const { return m_.data(); }
  double* MutableData() { return m_.data(); }

  /// Direct-buffer overrides of the LatencyView pair sweeps (same walk
  /// order, so results match the generic implementations bitwise).
  double MeanLatency() const override;
  double MaxLatency() const override;

 private:
  size_t n_;
  std::vector<double> m_;
};

}  // namespace sbon::net

#endif  // SBON_NET_SHORTEST_PATH_H_

#include "net/sparse_fabric.h"

#include <limits>

#include "net/dynamics.h"

namespace sbon::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SparseFabric::SparseFabric(const Topology& topo, double jitter_sigma, Rng* rng,
                           Options options)
    : topo_(topo),
      n_(topo.NumNodes()),
      sigma_(jitter_sigma),
      options_(options),
      exact_(options.base_mode == Options::BaseMode::kExact ||
             (options.base_mode == Options::BaseMode::kAuto &&
              n_ <= options.exact_threshold)),
      live_view_(this, /*live=*/true),
      base_view_(this, /*live=*/false) {
  down_.assign(n_, 0);
  if (!exact_) PlaceLandmarks();
  if (options_.neighbor_cache_slots > 0) {
    neighbor_cache_.resize(n_ * options_.neighbor_cache_slots);
  }
  if (exact_) {
    const size_t rows =
        options_.row_cache_rows < 1
            ? 1
            : (options_.row_cache_rows < n_ ? options_.row_cache_rows : n_);
    row_cache_.resize(rows < 1 ? 1 : rows);
  }
  // Same construction draw order as the dense backend (whose LatencyJitter
  // ctor resamples once): exactly one draw iff jitter is attached, so
  // fixed-seed overlays agree on every subsequent draw across backends.
  if (sigma_ > 0.0) epoch_seed_ = rng->Next();
}

void SparseFabric::TickNetwork(Rng* rng, ThreadPool* pool) {
  (void)pool;  // the tick is O(1); nothing to shard
  if (sigma_ <= 0.0) return;
  epoch_seed_ = rng->Next();
  jitter_applied_ = true;
}

Status SparseFabric::BeginPartition(const std::vector<NodeId>& group,
                                    double factor) {
  if (partition_active_) {
    return Status::FailedPrecondition("a partition is already active");
  }
  if (group.empty()) return Status::InvalidArgument("empty partition group");
  if (factor < 1.0) {
    return Status::InvalidArgument("partition factor must be >= 1");
  }
  partitioned_.assign(n_, false);
  for (NodeId n : group) {
    if (n >= n_) {
      return Status::OutOfRange("partition member out of range");
    }
    partitioned_[n] = true;
  }
  partition_active_ = true;
  partition_factor_ = factor;
  // Nothing to rewrite: the live view tests the cut predicate at read time.
  return Status::OK();
}

Status SparseFabric::EndPartition(ThreadPool* pool) {
  (void)pool;
  if (!partition_active_) {
    return Status::FailedPrecondition("no active partition");
  }
  partition_active_ = false;
  // Mirror the dense state machine: NetworkFabric::EndPartition re-applies
  // the *current* jitter factors over the base (no resample), which on an
  // overlay whose network was never ticked stamps the construction-epoch
  // factors onto the live matrix for the first time. Flag the same
  // transition here so the read-time composition agrees bit for bit.
  if (sigma_ > 0.0) jitter_applied_ = true;
  return Status::OK();
}

double SparseFabric::BaseLatency(NodeId a, NodeId b) const {
  if (a == b) return 0.0;
  // Exact mode resolves through row `a`: the dense base matrix stores
  // Dijkstra(a)[b] at entry (a, b), and Dijkstra(a)[b] can differ from
  // Dijkstra(b)[a] in the last ulp (reversed fp accumulation order along the
  // path), so the resolving source must match the dense layout, not be
  // normalized to min(a, b).
  return CachedBase(a, b);
}

double SparseFabric::LiveLatency(NodeId a, NodeId b) const {
  // Dead endpoints read as unreachable — the self-pair included, matching
  // the dense backend, which infs the whole row/column while a node is down.
  if (down_[a] || down_[b]) return kInf;
  if (a == b) return 0.0;
  double v;
  if (jitter_applied_) {
    // The dense ApplyAll writes both mirror entries of a pair from the
    // upper-triangle base entry times the symmetric factor, so a jittered
    // live read resolves through row min(a, b) regardless of argument order.
    const NodeId lo = a < b ? a : b;
    const NodeId hi = a < b ? b : a;
    v = CachedBase(lo, hi) *
        JitterFactorAt(epoch_seed_, sigma_, JitterPairIndex(lo, hi, n_));
  } else {
    // Pre-first-tick the dense live matrix is a plain copy of base: row `a`.
    v = CachedBase(a, b);
  }
  if (partition_active_ &&
      static_cast<bool>(partitioned_[a]) != static_cast<bool>(partitioned_[b])) {
    v *= partition_factor_;
  }
  return v;
}

double SparseFabric::CachedBase(NodeId row, NodeId col) const {
  ++stats_.base_reads;
  const size_t slots = options_.neighbor_cache_slots;
  if (slots == 0) {
    return exact_ ? RowFor(row)[col] : SketchBase(row, col);
  }
  NeighborSlot& slot =
      neighbor_cache_[static_cast<size_t>(row) * slots + col % slots];
  if (slot.peer == col) {
    ++stats_.neighbor_hits;
    return slot.value;
  }
  const double v = exact_ ? RowFor(row)[col] : SketchBase(row, col);
  slot.peer = col;
  slot.value = v;
  return v;
}

double SparseFabric::SketchBase(NodeId a, NodeId b) const {
  // Upper bound by triangle inequality, exact when a shortest path crosses a
  // landmark. Symmetric in (a, b): addition is commutative and the landmark
  // walk order is fixed, so both argument orders see identical fp ops.
  double best = kInf;
  for (const std::vector<double>& row : landmark_rows_) {
    const double via = row[a] + row[b];
    if (via < best) best = via;
  }
  return best;
}

const std::vector<double>& SparseFabric::RowFor(NodeId row) const {
  CachedRow* victim = &row_cache_[0];
  for (CachedRow& c : row_cache_) {
    if (c.row == row) {
      ++stats_.row_hits;
      c.stamp = ++row_stamp_;
      return c.dist;
    }
    if (c.stamp < victim->stamp) victim = &c;
  }
  ++stats_.row_builds;
  victim->dist = DijkstraLatencies(topo_, row);
  victim->row = row;
  victim->stamp = ++row_stamp_;
  return victim->dist;
}

void SparseFabric::PlaceLandmarks() {
  // Deterministic farthest-point traversal from node 0: each new landmark is
  // the node farthest (first-index tie-break) from the landmark set so far.
  // No Rng involved — landmark placement must not perturb the caller's draw
  // sequence, which is pinned by the cross-backend construction contract.
  const size_t want =
      options_.num_landmarks < 1
          ? 1
          : (options_.num_landmarks < n_ ? options_.num_landmarks : n_);
  landmarks_.reserve(want);
  landmark_rows_.reserve(want);
  std::vector<double> min_dist(n_, kInf);
  NodeId next = 0;
  for (size_t k = 0; k < want; ++k) {
    landmarks_.push_back(next);
    landmark_rows_.push_back(DijkstraLatencies(topo_, next));
    const std::vector<double>& row = landmark_rows_.back();
    NodeId farthest = kInvalidNode;
    double far_d = -1.0;
    for (NodeId i = 0; i < n_; ++i) {
      if (row[i] < min_dist[i]) min_dist[i] = row[i];
      // Unreachable nodes (inf) are the farthest of all: the next landmark
      // lands in their component and covers it.
      if (min_dist[i] > far_d && min_dist[i] > 0.0) {
        far_d = min_dist[i];
        farthest = i;
      }
    }
    if (farthest == kInvalidNode || far_d == 0.0) break;  // n small: covered
    next = farthest;
  }
}

}  // namespace sbon::net

#ifndef SBON_NET_SPARSE_FABRIC_H_
#define SBON_NET_SPARSE_FABRIC_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/fabric.h"
#include "net/shortest_path.h"
#include "net/topology.h"

namespace sbon::net {

/// Generative latency substrate: no O(n^2) state, ever. Base latency is
/// computed on demand from the topology, congestion jitter is derived
/// index-addressably from the epoch seed (the SplitMix64 counter scheme the
/// dense LatencyJitter already uses — no per-epoch matrix rewrite), and the
/// partition penalty is a predicate over the cut instead of a matrix pass.
/// Memory is O((landmarks + cached_rows + cache_slots) * n + links): flat in
/// the pair count, which is what lets the overlay reach 100k+ nodes.
///
/// Base-latency resolution has two modes:
///
///  - exact (n <= Options::exact_threshold, or forced): reads come from
///    on-demand single-source Dijkstra rows — the same DijkstraLatencies the
///    dense matrix is built from, resolved through the same source row the
///    dense representation stores for that entry. Fixed-seed live latencies
///    are therefore BIT-IDENTICAL to NetworkFabric's (the dense-vs-sparse
///    equivalence suite pins this), which is how all existing goldens and
///    determinism pins survive behind the backend switch.
///  - sketch (above the threshold, or forced): a cached landmark sketch.
///    `num_landmarks` landmarks are chosen by deterministic farthest-point
///    traversal, each contributing one exact Dijkstra row; a pair's base
///    latency is min over landmarks of d(l,a) + d(l,b). Symmetric, exact for
///    pairs whose shortest path crosses a landmark, an upper bound (triangle
///    inequality) otherwise. At this scale a dense comparison no longer
///    exists, so there is nothing to bit-match against.
///
/// Two caches accelerate the hot pairs the placers actually probe; both are
/// pure memoization — every read is a pure function of (topology, epoch
/// state, pair), so cache contents can never change a returned value:
///
///  - a bounded per-node neighbor cache (`neighbor_cache_slots` slots per
///    node, direct-mapped by peer id — the fixed-size-bucket idiom of
///    up4w's DhtSpace) holding resolved base latencies, and
///  - an LRU of whole Dijkstra rows (`row_cache_rows` rows, exact mode
///    only), which turns the per-self consecutive sample reads of the
///    online Vivaldi stage into one row build per node per epoch.
///
/// Jitter is applied at read time (base values are epoch-invariant, so
/// neither cache ever needs invalidation on TickNetwork).
///
/// Reads mutate the caches; like every substrate here, concurrent reads of
/// the same view require external ordering. The epoch pipeline only reads
/// live latencies from serial stages, so no locking is needed or taken.
class SparseFabric final : public FabricBackend {
 public:
  struct Options {
    enum class BaseMode {
      kAuto,    ///< exact at n <= exact_threshold, sketch above
      kExact,   ///< force on-demand Dijkstra rows (tests, equivalence pins)
      kSketch,  ///< force the landmark sketch (tests at small n)
    };
    BaseMode base_mode = BaseMode::kAuto;
    /// Largest n the exact on-demand mode auto-selects at.
    size_t exact_threshold = 2048;
    /// Landmarks of the sketch mode (each costs one n-vector of doubles).
    size_t num_landmarks = 32;
    /// Per-node direct-mapped base-latency cache slots (0 disables).
    size_t neighbor_cache_slots = 16;
    /// Exact-mode LRU capacity in whole Dijkstra rows (min 1).
    size_t row_cache_rows = 32;
  };

  /// Cumulative read/cache counters (bench + test observability).
  struct CacheStats {
    size_t base_reads = 0;      ///< base resolutions (cache hits included)
    size_t neighbor_hits = 0;   ///< served from the per-node slot cache
    size_t row_hits = 0;        ///< served from an already-built row
    size_t row_builds = 0;      ///< on-demand Dijkstra row computations
  };

  /// Builds the generative substrate over `topo` (copied: the backend must
  /// answer reads for its whole lifetime). Consumes exactly one draw from
  /// `rng` iff `jitter_sigma > 0` — the same construction draw order as the
  /// dense NetworkFabric, so fixed-seed overlays agree across backends.
  SparseFabric(const Topology& topo, double jitter_sigma, Rng* rng,
               Options options);
  SparseFabric(const Topology& topo, double jitter_sigma, Rng* rng)
      : SparseFabric(topo, jitter_sigma, rng, Options()) {}

  SparseFabric(const SparseFabric&) = delete;
  SparseFabric& operator=(const SparseFabric&) = delete;

  const LatencyView& live() const override { return live_view_; }
  const LatencyView& base() const override { return base_view_; }
  bool has_jitter() const override { return sigma_ > 0.0; }
  size_t NumNodes() const override { return n_; }
  const char* name() const override { return "sparse"; }
  /// TickNetwork is an O(1) seed bump — nothing to shard.
  bool sharded_tick() const override { return false; }

  /// Starts a new congestion epoch: one draw from `rng` becomes the epoch
  /// seed every jitter factor is derived from on demand. No matrix exists,
  /// so nothing is rewritten; `pool` is accepted for interface parity and
  /// ignored. No-op (and no draw) without jitter.
  void TickNetwork(Rng* rng, ThreadPool* pool = nullptr) override;

  Status BeginPartition(const std::vector<NodeId>& group,
                        double factor) override;
  Status EndPartition(ThreadPool* pool = nullptr) override;
  bool partition_active() const override { return partition_active_; }

  /// O(1) flag flip: the live view tests the down predicate at read time
  /// (before any base resolution), exactly like the partition penalty.
  void SetEndpointDown(NodeId n, bool down) override { down_[n] = down; }
  bool EndpointDown(NodeId n) const override {
    return static_cast<bool>(down_[n]);
  }
  bool CrossesPartition(NodeId a, NodeId b) const override {
    return partition_active_ && static_cast<bool>(partitioned_[a]) !=
                                    static_cast<bool>(partitioned_[b]);
  }

  /// True when base reads resolve through exact on-demand Dijkstra rows.
  bool exact_base() const { return exact_; }
  /// Landmarks actually placed (0 in exact mode).
  size_t num_landmarks() const { return landmarks_.size(); }
  const CacheStats& cache_stats() const { return stats_; }

 private:
  /// On-demand view over the parent fabric; `live` selects jitter +
  /// partition composition, otherwise pristine base resolution.
  class View final : public LatencyView {
   public:
    View(const SparseFabric* fabric, bool live)
        : fabric_(fabric), live_(live) {}
    size_t NumNodes() const override { return fabric_->n_; }
    double Latency(NodeId a, NodeId b) const override {
      return live_ ? fabric_->LiveLatency(a, b) : fabric_->BaseLatency(a, b);
    }

   private:
    const SparseFabric* fabric_;
    bool live_;
  };

  double BaseLatency(NodeId a, NodeId b) const;
  double LiveLatency(NodeId a, NodeId b) const;
  /// Base resolution through the neighbor cache; `row` is the resolving
  /// source (exact mode reads Dijkstra(row)[col], matching which source row
  /// the dense matrix stores for the entry — bit-identity depends on it).
  double CachedBase(NodeId row, NodeId col) const;
  double SketchBase(NodeId a, NodeId b) const;
  /// Exact Dijkstra row of `row`, LRU-cached.
  const std::vector<double>& RowFor(NodeId row) const;
  void PlaceLandmarks();

  Topology topo_;
  size_t n_;
  double sigma_;
  Options options_;
  bool exact_;

  // Congestion epoch: the dense path's state machine, minus the matrices.
  // `jitter_applied_` mirrors "ApplyAll has run at least once" — false until
  // the first TickNetwork (or a jittered EndPartition), during which the
  // live view equals base exactly as the dense live matrix does.
  uint64_t epoch_seed_ = 0;
  bool jitter_applied_ = false;

  bool partition_active_ = false;
  double partition_factor_ = 1.0;
  std::vector<bool> partitioned_;  ///< by node id; one side of the cut
  std::vector<uint8_t> down_;      ///< by node id; endpoint marked down

  std::vector<NodeId> landmarks_;
  std::vector<std::vector<double>> landmark_rows_;  ///< per landmark: n dists

  struct NeighborSlot {
    NodeId peer = kInvalidNode;
    double value = 0.0;
  };
  mutable std::vector<NeighborSlot> neighbor_cache_;  ///< n * slots
  struct CachedRow {
    NodeId row = kInvalidNode;
    uint64_t stamp = 0;
    std::vector<double> dist;
  };
  mutable std::vector<CachedRow> row_cache_;
  mutable uint64_t row_stamp_ = 0;
  mutable CacheStats stats_;

  View live_view_;
  View base_view_;
};

}  // namespace sbon::net

#endif  // SBON_NET_SPARSE_FABRIC_H_

#include "net/topology.h"

#include <cstdio>
#include <deque>

namespace sbon::net {

NodeId Topology::AddNode(NodeKind kind, int domain, bool overlay_eligible) {
  const NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(kind);
  domains_.push_back(domain);
  overlay_eligible_.push_back(overlay_eligible);
  incident_.emplace_back();
  return id;
}

Status Topology::AddLink(NodeId a, NodeId b, double latency_ms,
                         double bandwidth_mbps) {
  if (a >= NumNodes() || b >= NumNodes()) {
    return Status::InvalidArgument("link endpoint out of range");
  }
  if (a == b) return Status::InvalidArgument("self link");
  if (latency_ms < 0.0) return Status::InvalidArgument("negative latency");
  const uint32_t idx = static_cast<uint32_t>(links_.size());
  links_.push_back(Link{a, b, latency_ms, bandwidth_mbps});
  incident_[a].push_back(idx);
  incident_[b].push_back(idx);
  return Status::OK();
}

std::vector<NodeId> Topology::OverlayNodes() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < NumNodes(); ++n) {
    if (overlay_eligible_[n]) out.push_back(n);
  }
  return out;
}

bool Topology::IsConnected() const {
  if (NumNodes() == 0) return true;
  std::vector<bool> seen(NumNodes(), false);
  std::deque<NodeId> frontier{0};
  seen[0] = true;
  size_t count = 1;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop_front();
    for (uint32_t li : incident_[n]) {
      const Link& l = links_[li];
      const NodeId other = (l.a == n) ? l.b : l.a;
      if (!seen[other]) {
        seen[other] = true;
        ++count;
        frontier.push_back(other);
      }
    }
  }
  return count == NumNodes();
}

std::string Topology::Summary() const {
  size_t transit = 0, stub = 0, host = 0;
  for (NodeKind k : kinds_) {
    switch (k) {
      case NodeKind::kTransit: ++transit; break;
      case NodeKind::kStub: ++stub; break;
      case NodeKind::kHost: ++host; break;
    }
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%zu nodes (%zu transit, %zu stub, %zu host), %zu links",
                NumNodes(), transit, stub, host, NumLinks());
  return buf;
}

}  // namespace sbon::net

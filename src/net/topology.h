#ifndef SBON_NET_TOPOLOGY_H_
#define SBON_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace sbon::net {

/// Role of a node in a transit-stub topology. Generators other than the
/// transit-stub one mark everything `kHost`.
enum class NodeKind : uint8_t {
  kTransit,  ///< Backbone router in a transit domain.
  kStub,     ///< Router in a stub (edge) domain.
  kHost,     ///< End host / overlay-capable node.
};

/// An undirected weighted edge of the physical network.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double latency_ms = 0.0;        ///< Propagation latency of this hop.
  double bandwidth_mbps = 1000.;  ///< Capacity (used by congestion models).
};

/// Static description of the physical network: a connected undirected graph
/// with per-link latencies. Overlay nodes are a subset of graph nodes
/// (`overlay_eligible`). Pairwise latency between nodes is the weighted
/// shortest path (see `LatencyMatrix`).
class Topology {
 public:
  Topology() = default;

  /// Adds a node and returns its id. `domain` groups nodes of the same
  /// transit or stub domain (generator-specific, -1 if not applicable).
  NodeId AddNode(NodeKind kind, int domain = -1, bool overlay_eligible = true);

  /// Adds an undirected link. Invalid or self links are rejected.
  Status AddLink(NodeId a, NodeId b, double latency_ms,
                 double bandwidth_mbps = 1000.0);

  size_t NumNodes() const { return kinds_.size(); }
  size_t NumLinks() const { return links_.size(); }

  NodeKind kind(NodeId n) const { return kinds_[n]; }
  int domain(NodeId n) const { return domains_[n]; }
  bool overlay_eligible(NodeId n) const { return overlay_eligible_[n]; }

  const std::vector<Link>& links() const { return links_; }

  /// Neighbors of `n` as (link index) list.
  const std::vector<uint32_t>& IncidentLinks(NodeId n) const {
    return incident_[n];
  }

  /// Ids of all overlay-eligible nodes.
  std::vector<NodeId> OverlayNodes() const;

  /// True if the graph is connected (BFS from node 0).
  bool IsConnected() const;

  /// Multi-line human-readable summary ("n nodes, m links, kinds=...").
  std::string Summary() const;

 private:
  std::vector<NodeKind> kinds_;
  std::vector<int> domains_;
  std::vector<bool> overlay_eligible_;
  std::vector<Link> links_;
  std::vector<std::vector<uint32_t>> incident_;
};

}  // namespace sbon::net

#endif  // SBON_NET_TOPOLOGY_H_

#include "overlay/circuit.h"

namespace sbon::overlay {

StatusOr<Circuit> Circuit::FromPlan(const query::LogicalPlan& plan,
                                    const query::Catalog& catalog) {
  Status valid = plan.Validate();
  if (!valid.ok()) return valid;
  Circuit c;
  c.plan_ = plan;
  c.vertices_.resize(plan.NumOps());
  for (int i = 0; i < static_cast<int>(plan.NumOps()); ++i) {
    const query::PlanOp& op = plan.op(i);
    CircuitVertex& v = c.vertices_[i];
    v.plan_op = i;
    switch (op.kind) {
      case query::OpKind::kProducer: {
        if (!catalog.Has(op.stream)) {
          return Status::NotFound("circuit references unknown stream");
        }
        v.pinned = true;
        v.host = catalog.stream(op.stream).producer;
        break;
      }
      case query::OpKind::kConsumer:
        v.pinned = true;
        v.host = plan.consumer();
        break;
      default:
        v.pinned = false;
        break;
    }
    for (int child : op.children) {
      c.edges_.push_back(
          CircuitEdge{child, i, plan.op(child).out_bytes_per_s});
    }
  }
  return c;
}

std::vector<int> Circuit::UnpinnedVertices() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(vertices_.size()); ++i) {
    if (!vertices_[i].pinned) out.push_back(i);
  }
  return out;
}

std::vector<int> Circuit::PlaceableVertices() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(vertices_.size()); ++i) {
    if (!vertices_[i].pinned && !vertices_[i].reused) out.push_back(i);
  }
  return out;
}

bool Circuit::FullyPlaced() const {
  for (const CircuitVertex& v : vertices_) {
    if (v.host == kInvalidNode) return false;
  }
  return true;
}

std::vector<std::pair<int, int>> Circuit::IncidentEdges(int v) const {
  std::vector<std::pair<int, int>> out;
  for (int e = 0; e < static_cast<int>(edges_.size()); ++e) {
    if (edges_[e].from == v) out.emplace_back(e, edges_[e].to);
    if (edges_[e].to == v) out.emplace_back(e, edges_[e].from);
  }
  return out;
}

double Circuit::TotalEdgeRate() const {
  double s = 0.0;
  for (const CircuitEdge& e : edges_) {
    if (e.physical) s += e.rate_bytes_per_s;
  }
  return s;
}

void Circuit::BindReusedSubtree(int vertex, ServiceInstanceId instance,
                                NodeId instance_host,
                                double upstream_latency_ms) {
  CircuitVertex& v = vertices_[vertex];
  v.reused = true;
  v.service = instance;
  v.host = instance_host;
  v.reused_upstream_latency_ms = upstream_latency_ms;
  // Everything below the reused vertex is served by the existing instance:
  // mark descendants reused (no deployment) and their edges non-physical.
  std::vector<int> stack = plan_.op(vertex).children;
  std::vector<bool> in_subtree(vertices_.size(), false);
  in_subtree[vertex] = true;
  while (!stack.empty()) {
    const int i = stack.back();
    stack.pop_back();
    in_subtree[i] = true;
    CircuitVertex& d = vertices_[i];
    if (!d.pinned) {
      d.reused = true;
      d.service = kInvalidService;
      d.host = instance_host;
    }
    for (int c : plan_.op(i).children) stack.push_back(c);
  }
  for (CircuitEdge& e : edges_) {
    if (in_subtree[e.to] && in_subtree[e.from]) e.physical = false;
  }
}

}  // namespace sbon::overlay

#ifndef SBON_OVERLAY_CIRCUIT_H_
#define SBON_OVERLAY_CIRCUIT_H_

#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/vec.h"
#include "query/catalog.h"
#include "query/plan.h"

namespace sbon::overlay {

/// One vertex of a circuit: a plan operator bound (eventually) to a physical
/// node. Producers and the consumer are pinned; interior services are
/// unpinned until placement runs.
struct CircuitVertex {
  int plan_op = -1;                 ///< index into the circuit's plan
  NodeId host = kInvalidNode;       ///< physical node (kInvalidNode = unplaced)
  bool pinned = false;
  Vec virtual_coord;                ///< last virtual-placement coordinate
  ServiceInstanceId service = kInvalidService;  ///< deployed instance
  /// True if this vertex is served by a pre-existing instance from another
  /// circuit (multi-query reuse). Reused vertices deploy nothing; their
  /// subtree edges carry no new traffic.
  bool reused = false;
  /// For reused vertices: the source circuit's producer-to-instance
  /// critical-path latency, so end-to-end latency accounting stays correct.
  double reused_upstream_latency_ms = 0.0;
};

/// One stream edge of a circuit, carrying `rate_bytes_per_s` from vertex
/// `from` to vertex `to`.
struct CircuitEdge {
  int from = -1;
  int to = -1;
  double rate_bytes_per_s = 0.0;
  /// False for edges inside a reused subtree: the data already flows on the
  /// source circuit's edges, so this circuit adds no traffic there.
  bool physical = true;
};

/// The instantiation of a query in the SBON (paper Sec. 3): a tree of
/// services with pinned endpoints, unpinned interior, and data rates on
/// every edge. Cost accounting and placement both operate on this.
class Circuit {
 public:
  Circuit() = default;

  /// Builds an unplaced circuit from an annotated logical plan: producer
  /// vertices pinned at their catalog nodes, consumer pinned at
  /// `plan.consumer()`, interior vertices unpinned.
  static StatusOr<Circuit> FromPlan(const query::LogicalPlan& plan,
                                    const query::Catalog& catalog);

  CircuitId id() const { return id_; }
  void set_id(CircuitId id) { id_ = id; }

  const query::LogicalPlan& plan() const { return plan_; }
  size_t NumVertices() const { return vertices_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  const CircuitVertex& vertex(int i) const { return vertices_[i]; }
  CircuitVertex& mutable_vertex(int i) { return vertices_[i]; }
  const std::vector<CircuitVertex>& vertices() const { return vertices_; }
  const std::vector<CircuitEdge>& edges() const { return edges_; }

  /// Vertex indices that are unpinned (interior services).
  std::vector<int> UnpinnedVertices() const;
  /// Unpinned vertices that still need placement/deployment (not reused).
  std::vector<int> PlaceableVertices() const;
  /// True once every vertex has a host.
  bool FullyPlaced() const;

  /// Edges incident to vertex `v` as (edge index, other-vertex index).
  std::vector<std::pair<int, int>> IncidentEdges(int v) const;

  /// Total data rate (bytes/s) summed over physical edges.
  double TotalEdgeRate() const;

  /// Binds `vertex` to a pre-existing service instance hosted at
  /// `instance_host` (multi-query reuse): marks the vertex and its whole
  /// subtree reused, pins their hosts to the instance host, and turns the
  /// subtree's edges non-physical. `upstream_latency_ms` is the source
  /// circuit's latency up to the instance (for end-to-end accounting).
  void BindReusedSubtree(int vertex, ServiceInstanceId instance,
                         NodeId instance_host, double upstream_latency_ms);

 private:
  CircuitId id_ = kInvalidCircuit;
  query::LogicalPlan plan_;
  std::vector<CircuitVertex> vertices_;
  std::vector<CircuitEdge> edges_;
};

}  // namespace sbon::overlay

#endif  // SBON_OVERLAY_CIRCUIT_H_

#include "overlay/event_sim.h"

#include <cassert>
#include <memory>

namespace sbon::overlay {

void EventSim::ScheduleAt(double t, Callback cb) {
  assert(t >= now_);
  queue_.push(Event{t, seq_++, std::move(cb)});
}

void EventSim::ScheduleIn(double delay, Callback cb) {
  ScheduleAt(now_ + delay, std::move(cb));
}

void EventSim::SchedulePeriodic(double period, Callback cb, double until) {
  assert(period > 0.0);
  // Self-rescheduling wrapper.
  auto tick = std::make_shared<Callback>();
  auto shared_cb = std::make_shared<Callback>(std::move(cb));
  auto self = this;
  *tick = [self, period, until, shared_cb, tick]() {
    (*shared_cb)();
    const double next = self->now() + period;
    if (until < 0.0 || next <= until) {
      self->ScheduleAt(next, *tick);
    }
  };
  ScheduleAt(now_ + period, *tick);
}

void EventSim::RunUntil(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    e.cb();
  }
  if (t_end > now_) now_ = t_end;
}

void EventSim::RunAll() {
  while (!queue_.empty()) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    e.cb();
  }
}

}  // namespace sbon::overlay

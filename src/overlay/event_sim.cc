#include "overlay/event_sim.h"

#include <cassert>
#include <memory>

namespace sbon::overlay {

void EventSim::ScheduleAt(double t, Callback cb) {
  assert(t >= now_);
  queue_.push(Event{t, seq_++, std::move(cb)});
}

void EventSim::ScheduleIn(double delay, Callback cb) {
  ScheduleAt(now_ + delay, std::move(cb));
}

void EventSim::SchedulePeriodic(double period, Callback cb, double until) {
  assert(period > 0.0);
  // Self-rescheduling wrapper. The wrapper must not own itself (a shared_ptr
  // captured in its own closure would be a reference cycle and leak); only
  // the queued events hold strong references, so the chain is freed as soon
  // as no further tick is scheduled.
  auto tick = std::make_shared<Callback>();
  auto shared_cb = std::make_shared<Callback>(std::move(cb));
  std::weak_ptr<Callback> weak_tick = tick;
  auto self = this;
  *tick = [self, period, until, shared_cb, weak_tick]() {
    (*shared_cb)();
    const double next = self->now() + period;
    if (until < 0.0 || next <= until) {
      if (auto t = weak_tick.lock()) {
        self->ScheduleAt(next, [t]() { (*t)(); });
      }
    }
  };
  if (until < 0.0 || now_ + period <= until) {
    ScheduleAt(now_ + period, [tick]() { (*tick)(); });
  }
}

void EventSim::RunUntil(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    e.cb();
  }
  if (t_end > now_) now_ = t_end;
}

void EventSim::RunAll() {
  while (!queue_.empty()) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    e.cb();
  }
}

}  // namespace sbon::overlay

#ifndef SBON_OVERLAY_EVENT_SIM_H_
#define SBON_OVERLAY_EVENT_SIM_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sbon::overlay {

/// A minimal discrete-event simulator driving dynamics/re-optimization
/// experiments. Events fire in (time, insertion-order) order; callbacks may
/// schedule further events.
class EventSim {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now).
  void ScheduleAt(double t, Callback cb);
  /// Schedules `cb` `delay` time units from now.
  void ScheduleIn(double delay, Callback cb);
  /// Schedules `cb` every `period`, starting at now + period, until
  /// `RunUntil` passes `until` (or forever if until < 0).
  void SchedulePeriodic(double period, Callback cb, double until = -1.0);

  /// Runs events with time <= t_end; advances now() to t_end.
  void RunUntil(double t_end);
  /// Runs until the queue drains.
  void RunAll();

  size_t NumPending() const { return queue_.size(); }

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  uint64_t seq_ = 0;
};

}  // namespace sbon::overlay

#endif  // SBON_OVERLAY_EVENT_SIM_H_

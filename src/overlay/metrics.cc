#include "overlay/metrics.h"

#include <algorithm>
#include <set>
#include <vector>

namespace sbon::overlay {
namespace {

// Longest root-ward latency path from any producer leaf to the consumer.
// Circuits are trees, so a bottom-up DP over plan ops suffices. A reused
// vertex acts as a leaf whose path already accumulated the source circuit's
// upstream latency.
double CriticalPathLatency(const Circuit& c, const net::LatencyView& lat) {
  const query::LogicalPlan& plan = c.plan();
  std::vector<double> longest(plan.NumOps(), 0.0);
  double best = 0.0;
  for (int i = 0; i < static_cast<int>(plan.NumOps()); ++i) {
    const query::PlanOp& op = plan.op(i);
    const CircuitVertex& v = c.vertex(i);
    double l = 0.0;
    if (v.reused && v.service != kInvalidService) {
      l = v.reused_upstream_latency_ms;
    } else if (!v.reused) {
      for (int child : op.children) {
        const double hop =
            lat.Latency(c.vertex(child).host, c.vertex(i).host);
        l = std::max(l, longest[child] + hop);
      }
    }
    longest[i] = l;
    if (i == plan.root()) best = l;
  }
  return best;
}

// Load penalty of newly deployed services: weighted scalar penalty of each
// service's host times the data rate the service processes.
double LoadPenalty(const Circuit& circuit, const coords::CostSpace& space) {
  std::vector<double> input_rate(circuit.NumVertices(), 0.0);
  for (const CircuitEdge& e : circuit.edges()) {
    if (e.physical) input_rate[e.to] += e.rate_bytes_per_s;
  }
  double penalty = 0.0;
  for (int i = 0; i < static_cast<int>(circuit.NumVertices()); ++i) {
    const CircuitVertex& v = circuit.vertex(i);
    if (v.pinned || v.reused) continue;
    penalty += space.ScalarPenalty(v.host) * input_rate[i];
  }
  return penalty;
}

}  // namespace

StatusOr<CircuitCost> ComputeCircuitCost(const Circuit& circuit,
                                         const net::LatencyView& lat,
                                         const coords::CostSpace* space) {
  if (!circuit.FullyPlaced()) {
    return Status::FailedPrecondition("circuit not fully placed");
  }
  CircuitCost cost;
  for (const CircuitEdge& e : circuit.edges()) {
    if (!e.physical) continue;
    const NodeId a = circuit.vertex(e.from).host;
    const NodeId b = circuit.vertex(e.to).host;
    cost.network_usage += e.rate_bytes_per_s * lat.Latency(a, b);
  }
  cost.critical_path_latency_ms = CriticalPathLatency(circuit, lat);
  if (space != nullptr) cost.node_penalty = LoadPenalty(circuit, *space);
  return cost;
}

StatusOr<CircuitCost> EstimateCircuitCostInSpace(
    const Circuit& circuit, const coords::CostSpace& space) {
  if (!circuit.FullyPlaced()) {
    return Status::FailedPrecondition("circuit not fully placed");
  }
  CircuitCost cost;
  for (const CircuitEdge& e : circuit.edges()) {
    if (!e.physical) continue;
    const NodeId a = circuit.vertex(e.from).host;
    const NodeId b = circuit.vertex(e.to).host;
    cost.network_usage += e.rate_bytes_per_s * space.VectorDistance(a, b);
  }
  // Critical path in coordinate space.
  const query::LogicalPlan& plan = circuit.plan();
  std::vector<double> longest(plan.NumOps(), 0.0);
  for (int i = 0; i < static_cast<int>(plan.NumOps()); ++i) {
    double l = 0.0;
    for (int child : plan.op(i).children) {
      const double hop = space.VectorDistance(circuit.vertex(child).host,
                                              circuit.vertex(i).host);
      l = std::max(l, longest[child] + hop);
    }
    longest[i] = l;
    if (i == plan.root()) cost.critical_path_latency_ms = l;
  }
  cost.node_penalty = LoadPenalty(circuit, space);
  return cost;
}

StatusOr<double> UpstreamLatencyToService(const Circuit& circuit,
                                          ServiceInstanceId service,
                                          const net::LatencyView& lat) {
  const query::LogicalPlan& plan = circuit.plan();
  std::vector<double> longest(plan.NumOps(), 0.0);
  for (int i = 0; i < static_cast<int>(plan.NumOps()); ++i) {
    const CircuitVertex& v = circuit.vertex(i);
    double l = 0.0;
    if (v.reused && v.service != kInvalidService &&
        v.service != service) {
      l = v.reused_upstream_latency_ms;
    } else if (!v.reused || v.service == service) {
      for (int child : plan.op(i).children) {
        const double hop =
            lat.Latency(circuit.vertex(child).host, circuit.vertex(i).host);
        l = std::max(l, longest[child] + hop);
      }
    }
    longest[i] = l;
    if (v.service == service) return l;
  }
  return Status::NotFound("service not part of circuit");
}

}  // namespace sbon::overlay

#ifndef SBON_OVERLAY_METRICS_H_
#define SBON_OVERLAY_METRICS_H_

#include "coords/cost_space.h"
#include "net/shortest_path.h"
#include "overlay/circuit.h"

namespace sbon::overlay {

/// Cost breakdown of a placed circuit.
struct CircuitCost {
  /// Sum over edges of rate x latency — the paper's objective: "the amount
  /// of data in transit in the network" (bytes * ms / s, reported in
  /// KB*ms/s by the benches).
  double network_usage = 0.0;
  /// Longest producer-to-consumer latency along the circuit tree (ms) —
  /// the "total data latency" of Figure 1's caption.
  double critical_path_latency_ms = 0.0;
  /// Load penalty: for every newly deployed service, the host's weighted
  /// scalar penalty (an "extra milliseconds" figure — e.g. squared load x
  /// 100 ms) multiplied by the data rate the service processes. This makes
  /// the penalty dimensionally identical to network usage, so lambda = 1
  /// reads as "a saturated host is as bad as shipping the service's input
  /// an extra <scale> ms". 0 when no cost space is supplied.
  double node_penalty = 0.0;

  /// network_usage + lambda * node_penalty.
  double Total(double lambda) const {
    return network_usage + lambda * node_penalty;
  }
};

/// Computes the cost of a fully placed circuit against true network
/// latencies. `space` may be null (latency-only accounting). A shared
/// service instance contributes its node penalty once per circuit that uses
/// it (each circuit is charged for the load it depends on).
StatusOr<CircuitCost> ComputeCircuitCost(const Circuit& circuit,
                                         const net::LatencyView& lat,
                                         const coords::CostSpace* space);

/// Estimates the same cost from cost-space coordinates instead of true
/// latencies (what a decentralized optimizer can actually compute). Vertices
/// use their hosts' vector coordinates.
StatusOr<CircuitCost> EstimateCircuitCostInSpace(
    const Circuit& circuit, const coords::CostSpace& space);

/// Producer-to-vertex critical-path latency up to the vertex bound to
/// `service` within `circuit` (ms). Used when another circuit reuses that
/// service instance and needs the upstream latency it inherits.
StatusOr<double> UpstreamLatencyToService(const Circuit& circuit,
                                          ServiceInstanceId service,
                                          const net::LatencyView& lat);

}  // namespace sbon::overlay

#endif  // SBON_OVERLAY_METRICS_H_

#include "overlay/sbon.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>
#include <set>
#include <utility>

namespace sbon::overlay {

Sbon::Sbon(net::Topology topo, Options options)
    : topo_(std::move(topo)), options_(std::move(options)),
      rng_(options_.seed) {}

StatusOr<std::unique_ptr<Sbon>> Sbon::Create(net::Topology topo,
                                             Options options) {
  if (topo.NumNodes() == 0) {
    return Status::InvalidArgument("empty topology");
  }
  if (!topo.IsConnected()) {
    return Status::InvalidArgument("topology must be connected");
  }
  std::unique_ptr<Sbon> s(new Sbon(std::move(topo), std::move(options)));
  Status st = s->Initialize();
  if (!st.ok()) return st;
  return s;
}

Status Sbon::Initialize() {
  const size_t n = topo_.NumNodes();
  overlay_nodes_ = topo_.OverlayNodes();
  if (overlay_nodes_.empty()) {
    return Status::InvalidArgument("no overlay-eligible nodes");
  }
  alive_.assign(n, true);
  base_lat_ = std::make_unique<net::LatencyMatrix>(topo_);
  lat_ = std::make_unique<net::LatencyMatrix>(*base_lat_);
  if (options_.latency_jitter_sigma > 0.0) {
    jitter_ = std::make_unique<net::LatencyJitter>(
        n, options_.latency_jitter_sigma, &rng_);
  }

  // Vector coordinates.
  std::vector<Vec> coords;
  switch (options_.coord_mode) {
    case CoordMode::kVivaldi: {
      coords::VivaldiSystem::Params vp = options_.vivaldi_params;
      vp.dims = options_.space_spec.vector_dims();
      vivaldi_ = std::make_unique<coords::VivaldiSystem>(
          coords::RunVivaldi(*lat_, vp, options_.vivaldi_run, &rng_));
      coords.reserve(n);
      for (NodeId i = 0; i < n; ++i) coords.push_back(vivaldi_->Coord(i));
      break;
    }
    case CoordMode::kMds:
    case CoordMode::kTrue: {
      coords = coords::ClassicalMds(*lat_, options_.space_spec.vector_dims(),
                                    &rng_);
      break;
    }
  }

  space_ = std::make_unique<coords::CostSpace>(options_.space_spec, n);
  for (NodeId i = 0; i < n; ++i) {
    Status st = space_->SetVectorCoord(i, coords[i]);
    if (!st.ok()) return st;
  }

  load_model_ = std::make_unique<net::LoadModel>(n, options_.load_params,
                                                 &rng_);
  service_load_.assign(n, 0.0);
  UpdateScalarMetrics();

  // Coordinate index over *overlay* nodes' full coordinates.
  std::vector<Vec> full_coords;
  full_coords.reserve(overlay_nodes_.size());
  for (NodeId i : overlay_nodes_) full_coords.push_back(space_->FullCoord(i));
  // The quantizer box spans the vector part of all nodes plus the maximum
  // scalar penalty range observed at full load, so republished coordinates
  // under any load stay inside the box.
  std::vector<Vec> box_points = full_coords;
  {
    // Add synthetic corner points with worst-case scalar penalty.
    Vec worst = full_coords[0];
    for (size_t d = options_.space_spec.vector_dims(); d < worst.dims();
         ++d) {
      const size_t scalar_i = d - options_.space_spec.vector_dims();
      worst[d] =
          options_.space_spec.scalar_dim(scalar_i).weighting->Apply(1.0);
    }
    box_points.push_back(worst);
  }
  index_ = std::make_unique<dht::CoordinateIndex>(
      dht::HilbertQuantizer::FitTo(box_points, options_.hilbert_bits));
  last_published_.assign(n, Vec());
  for (size_t k = 0; k < overlay_nodes_.size(); ++k) {
    index_->Publish(overlay_nodes_[k], full_coords[k]);
    last_published_[overlay_nodes_[k]] = std::move(full_coords[k]);
  }
  index_->Stabilize();
  return Status::OK();
}

double Sbon::TotalLoad(NodeId n) const {
  return std::clamp(load_model_->load(n) + service_load_[n], 0.0, 1.0);
}

void Sbon::SetBaseLoad(NodeId n, double load) {
  load_model_->SetLoad(n, load);
  UpdateScalarMetrics();
}

void Sbon::UpdateScalarMetrics() {
  const size_t scalar_dims = options_.space_spec.num_scalar_dims();
  if (scalar_dims == 0) return;
  for (NodeId n = 0; n < topo_.NumNodes(); ++n) {
    // Dimension 0 is CPU load by convention of LatencyAndLoad; additional
    // scalar dims (if any) default to the same metric.
    for (size_t i = 0; i < scalar_dims; ++i) {
      space_->SetScalarMetric(n, i, TotalLoad(n));
    }
  }
}

void Sbon::ApplyServiceLoadDelta(NodeId host, double input_bytes_per_s,
                                 double sign) {
  service_load_[host] = std::max(
      0.0, service_load_[host] +
               sign * input_bytes_per_s * options_.load_per_byte_per_s);
}

StatusOr<CircuitId> Sbon::InstallCircuit(Circuit circuit) {
  if (!circuit.FullyPlaced()) {
    return Status::FailedPrecondition("cannot install unplaced circuit");
  }
  for (const CircuitVertex& v : circuit.vertices()) {
    if (!alive_[v.host]) {
      return Status::FailedPrecondition("circuit references a dead host");
    }
  }
  // Reserve the id but commit the counter only on success, so a failed
  // install leaves no gap in the id sequence (deterministic replays).
  const CircuitId id = next_circuit_id_;
  circuit.set_id(id);

  // Per-vertex physical input rates (physical edges into the vertex).
  std::vector<double> input_rate(circuit.NumVertices(), 0.0);
  for (const CircuitEdge& e : circuit.edges()) {
    if (e.physical) input_rate[e.to] += e.rate_bytes_per_s;
  }

  // Rollback on mid-install failure: instances created here carry only this
  // circuit id, and pre-existing instances gained at most a reference to it,
  // so detaching the id releases exactly the partial state. Service loads of
  // touched hosts are restored from snapshots rather than by re-subtracting
  // deltas, because (x + d) - d is not exact in floating point and the
  // overlay must be left bit-identical to its pre-call state.
  const ServiceInstanceId first_new_service = next_service_id_;
  std::vector<std::pair<NodeId, double>> prior_loads;
  auto fail = [&](Status st) -> StatusOr<CircuitId> {
    DetachCircuitFromServices(id);
    for (auto it = prior_loads.rbegin(); it != prior_loads.rend(); ++it) {
      service_load_[it->first] = it->second;
    }
    next_service_id_ = first_new_service;
    UpdateScalarMetrics();
    return st;
  };

  for (int i = 0; i < static_cast<int>(circuit.NumVertices()); ++i) {
    CircuitVertex& v = circuit.mutable_vertex(i);
    if (v.pinned) continue;
    if (v.reused) {
      if (v.service != kInvalidService) {
        if (services_.find(v.service) == services_.end()) {
          return fail(
              Status::NotFound("reused service instance does not exist"));
        }
        // Attach this circuit to the instance *and* to every instance in
        // its feeding subtree, so tearing down the source circuit cannot
        // orphan the data path this circuit now depends on.
        Status st = AttachDependencyChain(id, v.service);
        if (!st.ok()) return fail(st);
      }
      continue;  // nothing deployed for reused subtrees
    }
    ServiceInstance inst;
    inst.id = next_service_id_++;
    inst.signature = circuit.plan().OpSignature(i);
    inst.kind = circuit.plan().op(i).kind;
    inst.host = v.host;
    inst.input_bytes_per_s = input_rate[i];
    inst.output_bytes_per_s = circuit.plan().op(i).out_bytes_per_s;
    inst.circuits.push_back(id);
    v.service = inst.id;
    prior_loads.emplace_back(v.host, service_load_[v.host]);
    ApplyServiceLoadDelta(v.host, inst.input_bytes_per_s, +1.0);
    services_by_signature_.emplace(inst.signature, inst.id);
    services_.emplace(inst.id, std::move(inst));
  }
  UpdateScalarMetrics();
  next_circuit_id_ = id + 1;
  circuits_.emplace(id, std::move(circuit));
  return id;
}

Status Sbon::AttachDependencyChain(CircuitId circuit_id,
                                   ServiceInstanceId root) {
  std::vector<ServiceInstanceId> stack{root};
  std::set<ServiceInstanceId> visited;
  while (!stack.empty()) {
    const ServiceInstanceId sid = stack.back();
    stack.pop_back();
    if (!visited.insert(sid).second) continue;
    auto it = services_.find(sid);
    if (it == services_.end()) {
      return Status::NotFound("dependency instance missing");
    }
    ServiceInstance& inst = it->second;
    if (std::find(inst.circuits.begin(), inst.circuits.end(), circuit_id) ==
        inst.circuits.end()) {
      inst.circuits.push_back(circuit_id);
    }
    // Find the instance's feeding services through any circuit that
    // deploys it: the services bound to the descendants of its vertex.
    for (CircuitId cid : inst.circuits) {
      if (cid == circuit_id) continue;
      auto cit = circuits_.find(cid);
      if (cit == circuits_.end()) continue;
      const Circuit& src = cit->second;
      for (int vi = 0; vi < static_cast<int>(src.NumVertices()); ++vi) {
        if (src.vertex(vi).service != sid) continue;
        // Walk descendants of vi collecting bound services.
        std::vector<int> vstack = src.plan().op(vi).children;
        while (!vstack.empty()) {
          const int d = vstack.back();
          vstack.pop_back();
          const CircuitVertex& dv = src.vertex(d);
          if (dv.service != kInvalidService) stack.push_back(dv.service);
          for (int ch : src.plan().op(d).children) vstack.push_back(ch);
        }
        break;
      }
    }
  }
  return Status::OK();
}

std::map<ServiceInstanceId, ServiceInstance>::iterator Sbon::EraseService(
    std::map<ServiceInstanceId, ServiceInstance>::iterator it) {
  const ServiceInstance& inst = it->second;
  ApplyServiceLoadDelta(inst.host, inst.input_bytes_per_s, -1.0);
  auto range = services_by_signature_.equal_range(inst.signature);
  for (auto r = range.first; r != range.second; ++r) {
    if (r->second == inst.id) {
      services_by_signature_.erase(r);
      break;
    }
  }
  return services_.erase(it);
}

void Sbon::DetachCircuitFromServices(CircuitId circuit_id) {
  for (auto sit = services_.begin(); sit != services_.end();) {
    ServiceInstance& inst = sit->second;
    inst.circuits.erase(
        std::remove(inst.circuits.begin(), inst.circuits.end(), circuit_id),
        inst.circuits.end());
    sit = inst.circuits.empty() ? EraseService(sit) : std::next(sit);
  }
}

Status Sbon::RemoveCircuit(CircuitId id) {
  auto it = circuits_.find(id);
  if (it == circuits_.end()) return Status::NotFound("no such circuit");
  // Detach this circuit from every instance referencing it (vertex bindings
  // plus reuse dependency chains), releasing instances left without users.
  DetachCircuitFromServices(id);
  circuits_.erase(it);
  UpdateScalarMetrics();
  return Status::OK();
}

const Circuit* Sbon::FindCircuit(CircuitId id) const {
  auto it = circuits_.find(id);
  return it == circuits_.end() ? nullptr : &it->second;
}

const ServiceInstance* Sbon::FindService(ServiceInstanceId id) const {
  auto it = services_.find(id);
  return it == services_.end() ? nullptr : &it->second;
}

std::vector<const ServiceInstance*> Sbon::ServicesWithSignature(
    uint64_t signature) const {
  std::vector<const ServiceInstance*> out;
  auto range = services_by_signature_.equal_range(signature);
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(&services_.at(it->second));
  }
  return out;
}

Status Sbon::MigrateService(ServiceInstanceId id, NodeId new_host) {
  auto it = services_.find(id);
  if (it == services_.end()) return Status::NotFound("no such service");
  if (new_host >= topo_.NumNodes()) {
    return Status::OutOfRange("migration target out of range");
  }
  if (!alive_[new_host]) {
    return Status::FailedPrecondition("migration target is down");
  }
  ServiceInstance& inst = it->second;
  if (inst.host == new_host) return Status::OK();
  ApplyServiceLoadDelta(inst.host, inst.input_bytes_per_s, -1.0);
  ApplyServiceLoadDelta(new_host, inst.input_bytes_per_s, +1.0);
  inst.host = new_host;
  for (CircuitId cid : inst.circuits) {
    auto cit = circuits_.find(cid);
    if (cit == circuits_.end()) continue;
    for (int i = 0; i < static_cast<int>(cit->second.NumVertices()); ++i) {
      CircuitVertex& v = cit->second.mutable_vertex(i);
      if (v.service == id && !v.pinned) v.host = new_host;
    }
  }
  UpdateScalarMetrics();
  return Status::OK();
}

StatusOr<FailureReport> Sbon::FailNode(NodeId n) {
  if (n >= topo_.NumNodes()) {
    return Status::OutOfRange("failed node out of range");
  }
  if (!topo_.overlay_eligible(n)) {
    return Status::InvalidArgument("only overlay nodes participate in churn");
  }
  if (!alive_[n]) return Status::FailedPrecondition("node already down");
  if (overlay_nodes_.size() <= 1) {
    return Status::FailedPrecondition("cannot fail the last alive node");
  }
  alive_[n] = false;
  overlay_nodes_.erase(
      std::find(overlay_nodes_.begin(), overlay_nodes_.end(), n));

  FailureReport report;
  std::set<CircuitId> orphans;
  // Evict every instance the dead node hosted, reversing the load delta it
  // added (the same ApplyServiceLoadDelta bookkeeping installation used).
  // Every circuit attached to an evicted instance — vertex bindings and
  // reuse dependency chains alike — is orphaned.
  for (auto it = services_.begin(); it != services_.end();) {
    ServiceInstance& inst = it->second;
    if (inst.host != n) {
      ++it;
      continue;
    }
    orphans.insert(inst.circuits.begin(), inst.circuits.end());
    ++report.services_evicted;
    it = EraseService(it);
  }
  // A node with no services left carries no service load; zeroing (instead
  // of trusting delta reversal) keeps the books exact for the rejoin.
  service_load_[n] = 0.0;
  // Circuits whose pinned endpoints (producer/consumer) sat on the dead
  // node are orphaned too, even though nothing was deployed there.
  for (const auto& [cid, circuit] : circuits_) {
    for (const CircuitVertex& v : circuit.vertices()) {
      if (v.host == n) {
        orphans.insert(cid);
        break;
      }
    }
  }
  report.orphaned.assign(orphans.begin(), orphans.end());

  // Ring Leave: the index must stop returning the dead node immediately so
  // repair placement cannot land replacements on it.
  index_->Withdraw(n);
  index_->Stabilize();
  last_published_[n] = Vec();
  UpdateScalarMetrics();
  return report;
}

Status Sbon::RejoinNode(NodeId n) {
  if (n >= topo_.NumNodes()) {
    return Status::OutOfRange("rejoining node out of range");
  }
  if (!topo_.overlay_eligible(n)) {
    return Status::InvalidArgument("only overlay nodes participate in churn");
  }
  if (alive_[n]) return Status::FailedPrecondition("node already alive");
  alive_[n] = true;
  overlay_nodes_.insert(
      std::upper_bound(overlay_nodes_.begin(), overlay_nodes_.end(), n), n);
  service_load_[n] = 0.0;
  UpdateScalarMetrics();
  // Ring Join: republish the full coordinate (stale vector part + fresh
  // load scalar) so placement sees the node again.
  Vec full = space_->FullCoord(n);
  index_->Publish(n, full);
  last_published_[n] = std::move(full);
  index_->Stabilize();
  return Status::OK();
}

Status Sbon::BeginPartition(const std::vector<NodeId>& group, double factor) {
  if (partition_active_) {
    return Status::FailedPrecondition("a partition is already active");
  }
  if (group.empty()) return Status::InvalidArgument("empty partition group");
  if (factor < 1.0) {
    return Status::InvalidArgument("partition factor must be >= 1");
  }
  partitioned_.assign(topo_.NumNodes(), false);
  for (NodeId n : group) {
    if (n >= topo_.NumNodes()) {
      return Status::OutOfRange("partition member out of range");
    }
    partitioned_[n] = true;
  }
  partition_active_ = true;
  partition_factor_ = factor;
  ApplyPartitionToLive();
  return Status::OK();
}

Status Sbon::EndPartition() {
  if (!partition_active_) {
    return Status::FailedPrecondition("no active partition");
  }
  partition_active_ = false;
  // Restore the live matrix: current jitter factors over the pristine base
  // (EndPartition is not a new congestion epoch, so no resample), or the
  // base itself on a jitter-free overlay.
  if (jitter_ != nullptr) {
    jitter_->ApplyAll(*base_lat_, lat_.get());
  } else {
    *lat_ = *base_lat_;
  }
  return Status::OK();
}

void Sbon::ApplyPartitionToLive() {
  const size_t n = topo_.NumNodes();
  double* m = lat_->MutableData();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (partitioned_[a] != partitioned_[b]) {
        m[a * n + b] *= partition_factor_;
        m[b * n + a] *= partition_factor_;
      }
    }
  }
}

void Sbon::Tick(double dt) {
  load_model_->Step(dt, &rng_);
  UpdateScalarMetrics();
}

void Sbon::TickNetwork() {
  if (jitter_ == nullptr) return;
  jitter_->Resample(&rng_);
  jitter_->ApplyAll(*base_lat_, lat_.get());
  // ApplyAll rebuilt the live matrix from the pristine base, so an active
  // partition's penalty must be re-applied on top of the fresh jitter.
  if (partition_active_) ApplyPartitionToLive();
}

void Sbon::UpdateCoordinatesOnline(size_t samples_per_node) {
  if (vivaldi_ == nullptr) return;
  const size_t n = topo_.NumNodes();
  if (n < 2) return;
  // Fewer than two alive nodes means no measurable pair (and the peer
  // rejection loop below would never terminate).
  if (static_cast<size_t>(std::count(alive_.begin(), alive_.end(), true)) <
      2) {
    return;
  }
  for (NodeId self = 0; self < n; ++self) {
    // Crashed nodes neither measure nor answer probes. With every node
    // alive the rejection loop below draws exactly as before, so the
    // churn-free RNG stream (and every golden) is untouched.
    if (!alive_[self]) continue;
    for (size_t s = 0; s < samples_per_node; ++s) {
      NodeId peer;
      do {
        peer = static_cast<NodeId>(rng_.UniformInt(n));
      } while (peer == self || !alive_[peer]);
      double rtt = lat_->Latency(self, peer);
      if (options_.vivaldi_run.rtt_noise_sigma > 0.0) {
        rtt *= std::exp(rng_.Normal(0.0, options_.vivaldi_run.rtt_noise_sigma));
      }
      vivaldi_->Update(self, peer, rtt);
    }
  }
  for (NodeId i = 0; i < n; ++i) {
    space_->SetVectorCoord(i, vivaldi_->Coord(i));
  }
}

void Sbon::RefreshIndex(double epsilon) {
  refresh_stats_.refreshes += 1;
  const double eps2 = epsilon * epsilon;
  size_t republished = 0;
  for (NodeId n : overlay_nodes_) {
    Vec full = space_->FullCoord(n);
    // Strictly-greater: epsilon 0 republishes any changed coordinate and
    // skips bit-identical ones (the ring state is the same either way).
    if (full.DistanceSquaredTo(last_published_[n]) > eps2) {
      index_->Publish(n, full);
      last_published_[n] = std::move(full);
      ++republished;
    } else {
      refresh_stats_.skipped += 1;
    }
  }
  refresh_stats_.republished += republished;
  if (republished > 0) {
    index_->Stabilize();
  } else {
    refresh_stats_.quiet_refreshes += 1;
  }
}

StatusOr<CircuitCost> Sbon::CircuitCostOf(CircuitId id) const {
  const Circuit* c = FindCircuit(id);
  if (c == nullptr) return Status::NotFound("no such circuit");
  return ComputeCircuitCost(*c, *lat_, space_.get());
}

double Sbon::TotalNetworkUsage() const {
  double total = 0.0;
  for (const auto& [id, c] : circuits_) {
    auto cost = ComputeCircuitCost(c, *lat_, nullptr);
    if (cost.ok()) total += cost->network_usage;
  }
  return total;
}

double Sbon::MaxLoad() const {
  double mx = 0.0;
  for (NodeId n : overlay_nodes_) mx = std::max(mx, TotalLoad(n));
  return mx;
}

}  // namespace sbon::overlay

#include "overlay/sbon.h"

#include <algorithm>
#include <utility>

namespace sbon::overlay {

namespace {
// Shared by Create (validation) and Initialize (construction) so the two
// can never disagree on which backend an Options/topology pair resolves to.
bool ResolvesToSparseFabric(const Sbon::Options& options, size_t num_nodes) {
  return options.fabric_mode == Sbon::FabricMode::kSparse ||
         (options.fabric_mode == Sbon::FabricMode::kAuto &&
          num_nodes > options.sparse_auto_threshold);
}
}  // namespace

Sbon::Sbon(net::Topology topo, Options options)
    : topo_(std::move(topo)), options_(std::move(options)),
      rng_(options_.seed) {}

StatusOr<std::unique_ptr<Sbon>> Sbon::Create(net::Topology topo,
                                             Options options) {
  if (topo.NumNodes() == 0) {
    return Status::InvalidArgument("empty topology");
  }
  if (!topo.IsConnected()) {
    return Status::InvalidArgument("topology must be connected");
  }
  if (options.latency_jitter_sigma < 0.0) {
    return Status::InvalidArgument("latency_jitter_sigma must be >= 0");
  }
  if (options.hilbert_bits < 1 || options.hilbert_bits > 16) {
    return Status::InvalidArgument("hilbert_bits must be in [1, 16]");
  }
  if (options.load_per_byte_per_s <= 0.0) {
    return Status::InvalidArgument("load_per_byte_per_s must be > 0");
  }
  if (ResolvesToSparseFabric(options, topo.NumNodes()) &&
      options.coord_mode != CoordMode::kVivaldi) {
    // MDS / true coordinates are centralized O(n^2) ablation solves; running
    // them against a generative substrate would just rebuild the dense
    // matrix pair read by read.
    return Status::InvalidArgument(
        "sparse fabric requires Vivaldi coordinates");
  }
  std::unique_ptr<Sbon> s(new Sbon(std::move(topo), std::move(options)));
  Status st = s->Initialize();
  if (!st.ok()) return st;
  return s;
}

Status Sbon::Initialize() {
  const size_t n = topo_.NumNodes();
  overlay_nodes_ = topo_.OverlayNodes();
  if (overlay_nodes_.empty()) {
    return Status::InvalidArgument("no overlay-eligible nodes");
  }
  alive_.assign(n, true);

  // Substrate bring-up order is load-bearing: each step consumes the shared
  // Rng in the exact sequence the monolithic Initialize always did (jitter
  // seed, Vivaldi gossip, ambient load), so fixed-seed overlays are
  // bit-identical across the decomposition — and across fabric backends,
  // whose constructors share the same one-draw-iff-jitter contract.
  if (ResolvesToSparseFabric(options_, n)) {
    fabric_ = std::make_unique<net::SparseFabric>(
        topo_, options_.latency_jitter_sigma, &rng_, options_.sparse_options);
  } else {
    fabric_ = std::make_unique<net::NetworkFabric>(
        topo_, options_.latency_jitter_sigma, &rng_);
  }

  coords::CoordinateManager::Params cp;
  cp.spec = options_.space_spec;
  cp.mode = options_.coord_mode;
  cp.vivaldi = options_.vivaldi_params;
  cp.vivaldi_run = options_.vivaldi_run;
  cp.hilbert_bits = options_.hilbert_bits;
  auto coords = coords::CoordinateManager::Build(cp, fabric_->live(), &rng_);
  if (!coords.ok()) return coords.status();
  coords_ = std::move(coords.value());

  load_model_ = std::make_unique<net::LoadModel>(n, options_.load_params,
                                                 &rng_);
  ledger_ = std::make_unique<ServiceLedger>(n, options_.load_per_byte_per_s);
  total_load_scratch_.assign(n, 0.0);
  UpdateScalarMetrics();

  // Coordinate index over *overlay* nodes' full coordinates.
  coords_->BuildIndex(overlay_nodes_);
  return Status::OK();
}

double Sbon::TotalLoad(NodeId n) const {
  return std::clamp(load_model_->load(n) + ledger_->service_load(n), 0.0,
                    1.0);
}

void Sbon::SetBaseLoad(NodeId n, double load) {
  load_model_->SetLoad(n, load);
  UpdateScalarMetrics();
}

void Sbon::UpdateScalarMetrics() {
  // Vector-only cost spaces have nothing to bridge; skip the O(n) sweep.
  if (options_.space_spec.num_scalar_dims() == 0) return;
  for (NodeId n = 0; n < topo_.NumNodes(); ++n) {
    total_load_scratch_[n] = TotalLoad(n);
  }
  coords_->SetScalarMetrics(total_load_scratch_);
}

StatusOr<CircuitId> Sbon::InstallCircuit(Circuit circuit) {
  auto id = ledger_->InstallCircuit(std::move(circuit), alive_);
  // The load book changed on success *and* on a rolled-back failure (the
  // rollback restores snapshots); re-derive scalar metrics either way so
  // the cost space never goes stale.
  UpdateScalarMetrics();
  return id;
}

Status Sbon::RemoveCircuit(CircuitId id) {
  Status st = ledger_->RemoveCircuit(id);
  if (!st.ok()) return st;
  UpdateScalarMetrics();
  return Status::OK();
}

Status Sbon::MigrateService(ServiceInstanceId id, NodeId new_host) {
  Status st = ledger_->MigrateService(id, new_host, alive_);
  if (!st.ok()) return st;
  UpdateScalarMetrics();
  return Status::OK();
}

StatusOr<FailureReport> Sbon::FailNode(NodeId n) {
  if (n >= topo_.NumNodes()) {
    return Status::OutOfRange("failed node out of range");
  }
  if (!topo_.overlay_eligible(n)) {
    return Status::InvalidArgument("only overlay nodes participate in churn");
  }
  if (!alive_[n]) return Status::FailedPrecondition("node already down");
  if (overlay_nodes_.size() <= 1) {
    return Status::FailedPrecondition("cannot fail the last alive node");
  }
  alive_[n] = false;
  overlay_nodes_.erase(
      std::find(overlay_nodes_.begin(), overlay_nodes_.end(), n));

  FailureReport report = ledger_->EvictHost(n);
  // Ring Leave: the index must stop returning the dead node immediately so
  // repair placement cannot land replacements on it.
  coords_->Withdraw(n);
  // Live latencies involving the dead node read +inf until it rejoins (the
  // fabric's pinned dead-endpoint semantic) instead of stale pre-crash
  // values; message delivery and cost reads both see it as unreachable.
  fabric_->SetEndpointDown(n, true);
  UpdateScalarMetrics();
  return report;
}

Status Sbon::RejoinNode(NodeId n) {
  if (n >= topo_.NumNodes()) {
    return Status::OutOfRange("rejoining node out of range");
  }
  if (!topo_.overlay_eligible(n)) {
    return Status::InvalidArgument("only overlay nodes participate in churn");
  }
  if (alive_[n]) return Status::FailedPrecondition("node already alive");
  alive_[n] = true;
  overlay_nodes_.insert(
      std::upper_bound(overlay_nodes_.begin(), overlay_nodes_.end(), n), n);
  fabric_->SetEndpointDown(n, false);
  UpdateScalarMetrics();
  // Ring Join: republish the full coordinate (stale vector part + fresh
  // load scalar) so placement sees the node again.
  coords_->Publish(n);
  return Status::OK();
}

Status Sbon::CrashEndpoint(NodeId n) {
  if (n >= topo_.NumNodes()) {
    return Status::OutOfRange("crashed endpoint out of range");
  }
  if (!topo_.overlay_eligible(n)) {
    return Status::InvalidArgument("only overlay nodes participate in churn");
  }
  if (!alive_[n]) return Status::FailedPrecondition("node already down");
  if (fabric_->EndpointDown(n)) {
    return Status::FailedPrecondition("endpoint already dark");
  }
  // No overlay/ring/ledger transition and no scalar-metric refresh: the
  // failure is invisible until a detector (or FailNode) acts on it.
  fabric_->SetEndpointDown(n, true);
  return Status::OK();
}

Status Sbon::RestoreEndpoint(NodeId n) {
  if (n >= topo_.NumNodes()) {
    return Status::OutOfRange("restored endpoint out of range");
  }
  if (!topo_.overlay_eligible(n)) {
    return Status::InvalidArgument("only overlay nodes participate in churn");
  }
  if (!alive_[n]) {
    return Status::FailedPrecondition(
        "node fully failed; use RejoinNode instead");
  }
  if (!fabric_->EndpointDown(n)) {
    return Status::FailedPrecondition("endpoint is not dark");
  }
  fabric_->SetEndpointDown(n, false);
  return Status::OK();
}

Status Sbon::BeginPartition(const std::vector<NodeId>& group, double factor) {
  return fabric_->BeginPartition(group, factor);
}

Status Sbon::EndPartition() { return fabric_->EndPartition(); }

void Sbon::Tick(double dt) {
  load_model_->Step(dt, &rng_);
  UpdateScalarMetrics();
}

void Sbon::TickNetwork(ThreadPool* pool) { fabric_->TickNetwork(&rng_, pool); }

void Sbon::UpdateCoordinatesOnline(size_t samples_per_node, ThreadPool* pool) {
  coords_->UpdateCoordinatesOnline(fabric_->live(), samples_per_node, alive_,
                                   options_.vivaldi_run.rtt_noise_sigma,
                                   &rng_, pool);
}

void Sbon::RefreshIndex(double epsilon, ThreadPool* pool) {
  coords_->RefreshIndex(overlay_nodes_, epsilon, pool);
}

StatusOr<CircuitCost> Sbon::CircuitCostOf(CircuitId id) const {
  const Circuit* c = FindCircuit(id);
  if (c == nullptr) return Status::NotFound("no such circuit");
  return ComputeCircuitCost(*c, fabric_->live(), &coords_->space());
}

double Sbon::TotalNetworkUsage() const {
  double total = 0.0;
  for (const auto& [id, c] : ledger_->circuits()) {
    auto cost = ComputeCircuitCost(c, fabric_->live(), nullptr);
    if (cost.ok()) total += cost->network_usage;
  }
  return total;
}

double Sbon::MaxLoad() const {
  double mx = 0.0;
  for (NodeId n : overlay_nodes_) mx = std::max(mx, TotalLoad(n));
  return mx;
}

double Sbon::SaturatedFraction(double load_threshold) const {
  if (overlay_nodes_.empty()) return 0.0;
  size_t saturated = 0;
  for (NodeId n : overlay_nodes_) {
    if (TotalLoad(n) >= load_threshold) ++saturated;
  }
  return static_cast<double>(saturated) /
         static_cast<double>(overlay_nodes_.size());
}

}  // namespace sbon::overlay

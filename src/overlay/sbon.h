#ifndef SBON_OVERLAY_SBON_H_
#define SBON_OVERLAY_SBON_H_

#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "coords/cost_space.h"
#include "coords/mds.h"
#include "coords/vivaldi.h"
#include "dht/coord_index.h"
#include "net/dynamics.h"
#include "net/shortest_path.h"
#include "net/topology.h"
#include "overlay/circuit.h"
#include "overlay/metrics.h"
#include "overlay/service.h"

namespace sbon::overlay {

/// What one node failure changed: the circuits left broken (they lost a
/// hosted service instance or a pinned endpoint) and the instances evicted.
struct FailureReport {
  /// Circuits needing repair, ascending id, deduplicated. A circuit appears
  /// here if the dead node hosted one of its service instances (including
  /// instances it reused from another circuit) or one of its pinned
  /// endpoints (producer/consumer).
  std::vector<CircuitId> orphaned;
  size_t services_evicted = 0;
};

/// Cumulative counters of the dirty-driven index refresh (ring traffic a
/// real deployment would pay to keep the coordinate catalog fresh).
struct IndexRefreshStats {
  size_t refreshes = 0;        ///< RefreshIndex calls
  size_t republished = 0;      ///< ring re-publishes actually issued
  size_t skipped = 0;          ///< node refreshes elided (moved <= epsilon)
  size_t quiet_refreshes = 0;  ///< refreshes with zero re-publishes (no
                               ///< ring Leave/Join and no restabilization)
};

/// The stream-based overlay network: the runtime that optimizers operate
/// against. Owns the physical topology and its latency oracle, the cost
/// space (network coordinates + load metrics), the decentralized coordinate
/// index, node load state, and all deployed circuits / service instances.
class Sbon {
 public:
  /// How vector coordinates are obtained.
  enum class CoordMode {
    kVivaldi,  ///< decentralized Vivaldi embedding (deployable; default)
    kMds,      ///< centralized classical-MDS oracle (ablation)
    kTrue,     ///< no embedding: mapping/cost-space queries use MDS coords,
               ///< but this mode is reserved for ablation harnesses
  };

  struct Options {
    coords::CostSpaceSpec space_spec = coords::CostSpaceSpec::LatencyAndLoad();
    CoordMode coord_mode = CoordMode::kVivaldi;
    coords::VivaldiSystem::Params vivaldi_params;
    coords::VivaldiRunOptions vivaldi_run;
    unsigned hilbert_bits = 10;
    net::LoadModel::Params load_params;
    /// Load a service adds to its host per (byte/s) of input it processes.
    double load_per_byte_per_s = 2e-6;
    /// Sigma of the multiplicative (approximately LogNormal; see
    /// net::LatencyJitter) latency jitter applied per pair on every
    /// `TickNetwork` epoch (0 = static latencies).
    double latency_jitter_sigma = 0.0;
    uint64_t seed = 1;
  };

  /// Builds the overlay: latency matrix, coordinates, cost space, index.
  static StatusOr<std::unique_ptr<Sbon>> Create(net::Topology topo,
                                                Options options);

  Sbon(const Sbon&) = delete;
  Sbon& operator=(const Sbon&) = delete;

  // --- substrate accessors ---
  const net::Topology& topology() const { return topo_; }
  const net::LatencyMatrix& latency() const { return *lat_; }
  const coords::CostSpace& cost_space() const { return *space_; }
  const dht::CoordinateIndex& index() const { return *index_; }
  dht::IndexQueryCost& index_cost() { return index_cost_; }
  Rng& rng() { return rng_; }
  /// Overlay-eligible nodes currently *alive* (failed nodes drop out until
  /// they rejoin). Sorted ascending.
  const std::vector<NodeId>& overlay_nodes() const { return overlay_nodes_; }
  const Options& options() const { return options_; }

  // --- membership churn (crash / rejoin / partition) ---
  /// False while the node is crashed. Non-overlay nodes are always alive.
  bool IsAlive(NodeId n) const { return alive_[n]; }
  /// Crashes an overlay node: evicts every service instance it hosts
  /// (reversing their load deltas), withdraws it from the coordinate index
  /// (ring Leave + restabilization), and reports the circuits the failure
  /// orphaned. The circuits themselves stay registered — callers (the
  /// engine's repair plan) decide whether to re-place or drop them.
  /// Refuses to crash the last alive overlay node.
  StatusOr<FailureReport> FailNode(NodeId n);
  /// Brings a crashed node back: re-publishes its full coordinate into the
  /// index (ring Join + restabilization) with zero service load. The node
  /// keeps its last known vector coordinate until online Vivaldi samples
  /// refresh it — exactly how a real rejoin would start from stale state.
  Status RejoinNode(NodeId n);
  /// Soft link partition: multiplies the live latency of every pair that
  /// crosses the cut (`group` vs. the rest) by `factor` until EndPartition.
  /// One partition may be active at a time; the penalty re-applies on every
  /// TickNetwork on top of fresh jitter.
  Status BeginPartition(const std::vector<NodeId>& group, double factor);
  /// Heals the active partition, restoring jittered (or base) latencies.
  Status EndPartition();
  bool partition_active() const { return partition_active_; }

  // --- load state ---
  double BaseLoad(NodeId n) const { return load_model_->load(n); }
  double ServiceLoad(NodeId n) const { return service_load_[n]; }
  /// Total CPU load in [0, 1]: ambient + service-induced.
  double TotalLoad(NodeId n) const;
  /// Scripted load override for tests/scenarios (sets the ambient part).
  void SetBaseLoad(NodeId n, double load);

  // --- circuits & services ---
  /// Deploys a fully placed circuit: creates (or attaches to) service
  /// instances, adds load, and registers the circuit. Returns its id.
  /// Failure-atomic: if any mid-install step fails (missing reused
  /// instance, broken dependency chain), every service instance and load
  /// delta created so far is released and the overlay is left exactly as
  /// it was before the call.
  StatusOr<CircuitId> InstallCircuit(Circuit circuit);
  /// Tears a circuit down, releasing service instances with no users left.
  Status RemoveCircuit(CircuitId id);

  const Circuit* FindCircuit(CircuitId id) const;
  const std::map<CircuitId, Circuit>& circuits() const { return circuits_; }
  const ServiceInstance* FindService(ServiceInstanceId id) const;
  const std::map<ServiceInstanceId, ServiceInstance>& services() const {
    return services_;
  }
  /// Deployed instances whose reuse signature matches.
  std::vector<const ServiceInstance*> ServicesWithSignature(
      uint64_t signature) const;
  size_t NumServices() const { return services_.size(); }

  /// Moves a service instance to a new host, updating load accounting and
  /// the vertices of every circuit bound to it.
  Status MigrateService(ServiceInstanceId id, NodeId new_host);

  // --- dynamics ---
  /// Advances ambient load by `dt` and refreshes cost-space scalar metrics.
  void Tick(double dt);
  /// Starts a new latency epoch: resamples pairwise jitter factors (when
  /// `latency_jitter_sigma > 0`) and rewrites the live latency matrix.
  /// Everything downstream — circuit costs, reopt, Vivaldi samples — sees
  /// the new latencies immediately.
  void TickNetwork();
  /// Online coordinate maintenance: every node takes `samples_per_node`
  /// RTT measurements against the *current* (jittered) latencies and runs
  /// Vivaldi updates, then the cost space is refreshed. No-op when the
  /// overlay was built with MDS coordinates.
  void UpdateCoordinatesOnline(size_t samples_per_node);
  /// The pristine latency matrix (before jitter), for measuring how far
  /// the current epoch has drifted.
  const net::LatencyMatrix& base_latency() const { return *base_lat_; }
  /// Dirty-driven index refresh: republishes the full coordinate of every
  /// overlay node that moved more than `epsilon` (cost-space units) since
  /// its last publish, then restabilizes the ring — unless nothing moved,
  /// in which case the ring is left entirely untouched (no Leave/Join, no
  /// Stabilize). `epsilon = 0` republishes any node whose coordinate
  /// changed at all, which is query-for-query identical to republishing
  /// everything. Call after load changes when index queries should see
  /// fresh scalars.
  void RefreshIndex(double epsilon = 0.0);
  /// Ring traffic the refreshes performed/avoided so far.
  const IndexRefreshStats& index_refresh_stats() const {
    return refresh_stats_;
  }

  // --- metrics ---
  /// Cost of one deployed circuit against true latencies (marginal: only
  /// physically flowing edges and newly deployed hosts are charged).
  StatusOr<CircuitCost> CircuitCostOf(CircuitId id) const;
  /// Sum of network usage over all deployed circuits (physical edges only —
  /// shared subtrees counted once).
  double TotalNetworkUsage() const;
  /// Maximum total load over overlay nodes.
  double MaxLoad() const;

 private:
  Sbon(net::Topology topo, Options options);

  Status Initialize();
  Status AttachDependencyChain(CircuitId circuit_id, ServiceInstanceId root);
  /// Removes `circuit_id` from every instance's user list, releasing
  /// instances left without users (their load deltas included). Shared by
  /// RemoveCircuit and the InstallCircuit failure rollback.
  void DetachCircuitFromServices(CircuitId circuit_id);
  /// Releases one instance: reverses its load delta, drops its signature
  /// entry, erases it. Returns the iterator past the erased instance. The
  /// single release path shared by detach and crash eviction.
  std::map<ServiceInstanceId, ServiceInstance>::iterator EraseService(
      std::map<ServiceInstanceId, ServiceInstance>::iterator it);
  void ApplyServiceLoadDelta(NodeId host, double input_bytes_per_s,
                             double sign);
  void UpdateScalarMetrics();
  /// Multiplies cross-cut pairs of the live matrix by the partition factor.
  void ApplyPartitionToLive();

  net::Topology topo_;
  Options options_;
  Rng rng_;
  std::unique_ptr<net::LatencyMatrix> lat_;       // live (jittered) view
  std::unique_ptr<net::LatencyMatrix> base_lat_;  // pristine
  std::unique_ptr<net::LatencyJitter> jitter_;
  std::unique_ptr<coords::VivaldiSystem> vivaldi_;
  std::unique_ptr<coords::CostSpace> space_;
  std::unique_ptr<dht::CoordinateIndex> index_;
  std::unique_ptr<net::LoadModel> load_model_;
  std::vector<NodeId> overlay_nodes_;
  /// Per-node liveness (by node id); failed overlay nodes also leave
  /// overlay_nodes_ until they rejoin.
  std::vector<bool> alive_;
  bool partition_active_ = false;
  double partition_factor_ = 1.0;
  std::vector<bool> partitioned_;  ///< by node id; one side of the cut
  std::vector<double> service_load_;
  dht::IndexQueryCost index_cost_;
  /// Full coordinate each node last published into the index (by node id);
  /// RefreshIndex republishes only nodes displaced beyond its epsilon.
  std::vector<Vec> last_published_;
  IndexRefreshStats refresh_stats_;

  std::map<CircuitId, Circuit> circuits_;
  std::map<ServiceInstanceId, ServiceInstance> services_;
  std::multimap<uint64_t, ServiceInstanceId> services_by_signature_;
  CircuitId next_circuit_id_ = 1;
  ServiceInstanceId next_service_id_ = 1;
};

}  // namespace sbon::overlay

#endif  // SBON_OVERLAY_SBON_H_

#ifndef SBON_OVERLAY_SBON_H_
#define SBON_OVERLAY_SBON_H_

#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "coords/cost_space.h"
#include "coords/manager.h"
#include "dht/coord_index.h"
#include "net/dynamics.h"
#include "net/fabric.h"
#include "net/shortest_path.h"
#include "net/sparse_fabric.h"
#include "net/topology.h"
#include "overlay/circuit.h"
#include "overlay/metrics.h"
#include "overlay/service.h"
#include "overlay/service_ledger.h"

namespace sbon::overlay {

/// Cumulative counters of the dirty-driven index refresh (owned by
/// coords::CoordinateManager; aliased here for the overlay-facing API).
using IndexRefreshStats = coords::IndexRefreshStats;

/// The stream-based overlay network: the runtime that optimizers operate
/// against. A thin composition root wiring three independently ownable
/// substrates behind one facade:
///
///  - a net::FabricBackend — pristine + live latency views, per-epoch
///    congestion jitter, soft-partition overlay (the TickNetwork path).
///    Dense (materialized matrices) by default; the sparse generative
///    backend takes over above Options::sparse_auto_threshold nodes;
///  - coords::CoordinateManager — Vivaldi/MDS embedding, cost space,
///    coordinate index, dirty-coordinate tracking, epsilon-gated refresh;
///  - overlay::ServiceLedger — circuits, service instances, reuse catalog,
///    and the per-node service load book (with the FailNode eviction path).
///
/// The Sbon itself keeps only what genuinely spans substrates: the
/// topology, the shared Rng, node liveness, the ambient LoadModel, and the
/// scalar-metric bridge (total load -> cost space) that must run after
/// every load-changing operation.
///
/// Methods that take a ThreadPool shard their embarrassingly parallel work
/// across it; fixed-seed results are bit-identical at any thread count
/// (see each substrate's contract).
class Sbon {
 public:
  /// How vector coordinates are obtained (owned by the coords substrate;
  /// aliased for source compatibility with `Sbon::CoordMode::...`).
  using CoordMode = coords::CoordMode;

  /// Which latency-substrate representation backs the overlay.
  enum class FabricMode {
    kAuto,    ///< dense up to sparse_auto_threshold nodes, sparse above
    kDense,   ///< force materialized O(n^2) matrices (net::NetworkFabric)
    kSparse,  ///< force the generative O(n) backend (net::SparseFabric)
  };

  struct Options {
    coords::CostSpaceSpec space_spec = coords::CostSpaceSpec::LatencyAndLoad();
    CoordMode coord_mode = CoordMode::kVivaldi;
    coords::VivaldiSystem::Params vivaldi_params;
    coords::VivaldiRunOptions vivaldi_run;
    /// Hilbert-curve resolution of the coordinate index, in [1, 16] bits
    /// per dimension (validated at Create).
    unsigned hilbert_bits = 10;
    net::LoadModel::Params load_params;
    /// Load a service adds to its host per (byte/s) of input it processes.
    /// Must be > 0 (validated at Create).
    double load_per_byte_per_s = 2e-6;
    /// Sigma of the multiplicative (approximately LogNormal; see
    /// net::LatencyJitter) latency jitter applied per pair on every
    /// `TickNetwork` epoch (0 = static latencies). Must be >= 0 (validated
    /// at Create).
    double latency_jitter_sigma = 0.0;
    /// Latency-substrate backend selection. kAuto keeps the dense matrices
    /// (exact, O(1) reads) up to `sparse_auto_threshold` nodes and switches
    /// to the sparse generative backend above it — the size where two
    /// N x N double matrices start crowding out everything else. The sparse
    /// backend requires Vivaldi coordinates (validated at Create): the MDS /
    /// true-coordinate ablations are centralized O(n^2) solves that need a
    /// dense matrix anyway.
    FabricMode fabric_mode = FabricMode::kAuto;
    size_t sparse_auto_threshold = 4096;
    /// Tuning of the sparse backend when it is selected (exact-vs-sketch
    /// threshold, landmark count, cache geometry). Ignored by the dense one.
    net::SparseFabric::Options sparse_options;
    uint64_t seed = 1;
  };

  /// Builds the overlay: latency matrix, coordinates, cost space, index.
  /// Rejects malformed topologies and out-of-range Options with
  /// InvalidArgument instead of silently misbehaving.
  static StatusOr<std::unique_ptr<Sbon>> Create(net::Topology topo,
                                                Options options);

  Sbon(const Sbon&) = delete;
  Sbon& operator=(const Sbon&) = delete;

  // --- substrate accessors ---
  const net::Topology& topology() const { return topo_; }
  const net::FabricBackend& fabric() const { return *fabric_; }
  const coords::CoordinateManager& coords() const { return *coords_; }
  /// Mutable coordinate substrate, for the message-mode runtime
  /// (msg::Runtime) whose agents drive Vivaldi updates and ring publishes
  /// through explicit traffic instead of the oracle sweeps.
  coords::CoordinateManager& mutable_coords() { return *coords_; }
  const ServiceLedger& ledger() const { return *ledger_; }
  const net::LatencyView& latency() const { return fabric_->live(); }
  const coords::CostSpace& cost_space() const { return coords_->space(); }
  const dht::CoordinateIndex& index() const { return coords_->index(); }
  dht::IndexQueryCost& index_cost() { return coords_->index_cost(); }
  Rng& rng() { return rng_; }
  /// Overlay-eligible nodes currently *alive* (failed nodes drop out until
  /// they rejoin). Sorted ascending.
  const std::vector<NodeId>& overlay_nodes() const { return overlay_nodes_; }
  const Options& options() const { return options_; }

  // --- membership churn (crash / rejoin / partition) ---
  /// False while the node is crashed. Non-overlay nodes are always alive.
  bool IsAlive(NodeId n) const { return alive_[n]; }
  /// Crashes an overlay node: evicts every service instance it hosts
  /// (reversing their load deltas), withdraws it from the coordinate index
  /// (ring Leave + restabilization), and reports the circuits the failure
  /// orphaned. The circuits themselves stay registered — callers (the
  /// engine's repair plan) decide whether to re-place or drop them.
  /// Refuses to crash the last alive overlay node.
  StatusOr<FailureReport> FailNode(NodeId n);
  /// Brings a crashed node back: re-publishes its full coordinate into the
  /// index (ring Join + restabilization) with zero service load. The node
  /// keeps its last known vector coordinate until online Vivaldi samples
  /// refresh it — exactly how a real rejoin would start from stale state.
  Status RejoinNode(NodeId n);
  /// Physical crash without the membership transition: the node's fabric
  /// endpoint goes dark (its traffic drops, its latencies read +inf) but
  /// it stays alive in the overlay and the ring. Message mode's failure
  /// detector uses this — the overlay only learns of the crash when the
  /// detector confirms it and FailNode runs. Safe to follow with FailNode
  /// (SetEndpointDown is idempotent).
  Status CrashEndpoint(NodeId n);
  /// Undoes CrashEndpoint before detection confirmed (the node came back
  /// while nobody had noticed it was gone — no rejoin needed).
  Status RestoreEndpoint(NodeId n);
  /// Soft link partition: multiplies the live latency of every pair that
  /// crosses the cut (`group` vs. the rest) by `factor` until EndPartition.
  /// One partition may be active at a time; the penalty re-applies on every
  /// TickNetwork on top of fresh jitter.
  Status BeginPartition(const std::vector<NodeId>& group, double factor);
  /// Heals the active partition, restoring jittered (or base) latencies.
  Status EndPartition();
  bool partition_active() const { return fabric_->partition_active(); }

  // --- load state ---
  double BaseLoad(NodeId n) const { return load_model_->load(n); }
  double ServiceLoad(NodeId n) const { return ledger_->service_load(n); }
  /// Total CPU load in [0, 1]: ambient + service-induced.
  double TotalLoad(NodeId n) const;
  /// Scripted load override for tests/scenarios (sets the ambient part).
  void SetBaseLoad(NodeId n, double load);

  // --- circuits & services ---
  /// Deploys a fully placed circuit: creates (or attaches to) service
  /// instances, adds load, and registers the circuit. Returns its id.
  /// Failure-atomic: if any mid-install step fails (missing reused
  /// instance, broken dependency chain), every service instance and load
  /// delta created so far is released and the overlay is left exactly as
  /// it was before the call.
  StatusOr<CircuitId> InstallCircuit(Circuit circuit);
  /// Tears a circuit down, releasing service instances with no users left.
  Status RemoveCircuit(CircuitId id);

  const Circuit* FindCircuit(CircuitId id) const {
    return ledger_->FindCircuit(id);
  }
  const std::map<CircuitId, Circuit>& circuits() const {
    return ledger_->circuits();
  }
  const ServiceInstance* FindService(ServiceInstanceId id) const {
    return ledger_->FindService(id);
  }
  const std::map<ServiceInstanceId, ServiceInstance>& services() const {
    return ledger_->services();
  }
  /// Deployed instances whose reuse signature matches.
  std::vector<const ServiceInstance*> ServicesWithSignature(
      uint64_t signature) const {
    return ledger_->ServicesWithSignature(signature);
  }
  size_t NumServices() const { return ledger_->NumServices(); }

  /// Moves a service instance to a new host, updating load accounting and
  /// the vertices of every circuit bound to it.
  Status MigrateService(ServiceInstanceId id, NodeId new_host);

  // --- dynamics (the engine's epoch-pipeline stages) ---
  /// Advances ambient load by `dt` and refreshes cost-space scalar metrics.
  void Tick(double dt);
  /// Starts a new latency epoch: resamples pairwise jitter factors (when
  /// `latency_jitter_sigma > 0`) and rewrites the live latency matrix.
  /// Everything downstream — circuit costs, reopt, Vivaldi samples — sees
  /// the new latencies immediately. `pool` shards the O(n^2) factor
  /// generation and matrix rewrite by row.
  void TickNetwork(ThreadPool* pool = nullptr);
  /// Online coordinate maintenance: every node takes `samples_per_node`
  /// RTT measurements against the *current* (jittered) latencies and runs
  /// Vivaldi updates, then the cost space is refreshed. No-op when the
  /// overlay was built with MDS coordinates. `pool` runs the updates as a
  /// deterministic dependency wavefront.
  void UpdateCoordinatesOnline(size_t samples_per_node,
                               ThreadPool* pool = nullptr);
  /// The pristine latency view (before jitter), for measuring how far
  /// the current epoch has drifted.
  const net::LatencyView& base_latency() const { return fabric_->base(); }
  /// Dirty-driven index refresh: republishes the full coordinate of every
  /// overlay node that moved more than `epsilon` (cost-space units) since
  /// its last publish, then restabilizes the ring — unless nothing moved,
  /// in which case the ring is left entirely untouched (no Leave/Join, no
  /// Stabilize). `epsilon = 0` republishes any node whose coordinate
  /// changed at all, which is query-for-query identical to republishing
  /// everything. Call after load changes when index queries should see
  /// fresh scalars. `pool` shards the displacement scan.
  void RefreshIndex(double epsilon = 0.0, ThreadPool* pool = nullptr);
  /// Ring traffic the refreshes performed/avoided so far.
  const IndexRefreshStats& index_refresh_stats() const {
    return coords_->refresh_stats();
  }

  // --- metrics ---
  /// Cost of one deployed circuit against true latencies (marginal: only
  /// physically flowing edges and newly deployed hosts are charged).
  StatusOr<CircuitCost> CircuitCostOf(CircuitId id) const;
  /// Sum of network usage over all deployed circuits (physical edges only —
  /// shared subtrees counted once).
  double TotalNetworkUsage() const;
  /// Maximum total load over overlay nodes.
  double MaxLoad() const;
  /// Fraction of alive overlay nodes whose total load is at or above
  /// `load_threshold` (in [0, 1]). One O(alive) sweep over cached load
  /// scalars — cheap enough to evaluate every epoch, which is exactly what
  /// admission control (engine::WorkloadEngine load shedding) does with it.
  double SaturatedFraction(double load_threshold) const;

 private:
  Sbon(net::Topology topo, Options options);

  Status Initialize();
  /// Re-derives the cost space's scalar metrics from total (ambient +
  /// service) load. Must run after anything that changes either part.
  void UpdateScalarMetrics();

  net::Topology topo_;
  Options options_;
  Rng rng_;
  std::unique_ptr<net::FabricBackend> fabric_;
  std::unique_ptr<coords::CoordinateManager> coords_;
  std::unique_ptr<ServiceLedger> ledger_;
  std::unique_ptr<net::LoadModel> load_model_;
  std::vector<NodeId> overlay_nodes_;
  /// Per-node liveness (by node id); failed overlay nodes also leave
  /// overlay_nodes_ until they rejoin.
  std::vector<bool> alive_;
  /// Scratch for the scalar-metric bridge (per-node total load).
  std::vector<double> total_load_scratch_;
};

}  // namespace sbon::overlay

#endif  // SBON_OVERLAY_SBON_H_

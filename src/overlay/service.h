#ifndef SBON_OVERLAY_SERVICE_H_
#define SBON_OVERLAY_SERVICE_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "query/plan.h"

namespace sbon::overlay {

/// A service instance deployed on a physical node. Multiple circuits may
/// share one instance when their logical ops have the same reuse signature
/// (same kind, parameters, and input stream set — paper Sec. 2.2: "merge
/// identical services (serving different queries) into one physical service
/// instance").
struct ServiceInstance {
  ServiceInstanceId id = kInvalidService;
  uint64_t signature = 0;          ///< reuse signature (LogicalPlan::OpSignature)
  query::OpKind kind = query::OpKind::kJoin;
  NodeId host = kInvalidNode;
  double input_bytes_per_s = 0.0;  ///< total rate entering this instance
  double output_bytes_per_s = 0.0; ///< rate leaving it (per subscriber)
  std::vector<CircuitId> circuits; ///< circuits using this instance

  bool Shared() const { return circuits.size() > 1; }
};

}  // namespace sbon::overlay

#endif  // SBON_OVERLAY_SERVICE_H_

#include "overlay/service_ledger.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <utility>

namespace sbon::overlay {

ServiceLedger::ServiceLedger(size_t num_nodes, double load_per_byte_per_s)
    : load_per_byte_per_s_(load_per_byte_per_s),
      service_load_(num_nodes, 0.0) {}

void ServiceLedger::ApplyServiceLoadDelta(NodeId host,
                                          double input_bytes_per_s,
                                          double sign) {
  service_load_[host] =
      std::max(0.0, service_load_[host] +
                        sign * input_bytes_per_s * load_per_byte_per_s_);
}

double ServiceLedger::TotalServiceLoad() const {
  double total = 0.0;
  for (double l : service_load_) total += l;
  return total;
}

StatusOr<CircuitId> ServiceLedger::InstallCircuit(
    Circuit circuit, const std::vector<bool>& alive) {
  if (!circuit.FullyPlaced()) {
    return Status::FailedPrecondition("cannot install unplaced circuit");
  }
  for (const CircuitVertex& v : circuit.vertices()) {
    if (!alive[v.host]) {
      return Status::FailedPrecondition("circuit references a dead host");
    }
  }
  // Reserve the id but commit the counter only on success, so a failed
  // install leaves no gap in the id sequence (deterministic replays).
  const CircuitId id = next_circuit_id_;
  circuit.set_id(id);

  // Per-vertex physical input rates (physical edges into the vertex).
  std::vector<double> input_rate(circuit.NumVertices(), 0.0);
  for (const CircuitEdge& e : circuit.edges()) {
    if (e.physical) input_rate[e.to] += e.rate_bytes_per_s;
  }

  // Rollback on mid-install failure: instances created here carry only this
  // circuit id, and pre-existing instances gained at most a reference to it,
  // so detaching the id releases exactly the partial state. Service loads of
  // touched hosts are restored from snapshots rather than by re-subtracting
  // deltas, because (x + d) - d is not exact in floating point and the
  // ledger must be left bit-identical to its pre-call state.
  const ServiceInstanceId first_new_service = next_service_id_;
  std::vector<std::pair<NodeId, double>> prior_loads;
  auto fail = [&](Status st) -> StatusOr<CircuitId> {
    DetachCircuitFromServices(id);
    for (auto it = prior_loads.rbegin(); it != prior_loads.rend(); ++it) {
      service_load_[it->first] = it->second;
    }
    next_service_id_ = first_new_service;
    return st;
  };

  for (int i = 0; i < static_cast<int>(circuit.NumVertices()); ++i) {
    CircuitVertex& v = circuit.mutable_vertex(i);
    if (v.pinned) continue;
    if (v.reused) {
      if (v.service != kInvalidService) {
        if (services_.find(v.service) == services_.end()) {
          return fail(
              Status::NotFound("reused service instance does not exist"));
        }
        // Attach this circuit to the instance *and* to every instance in
        // its feeding subtree, so tearing down the source circuit cannot
        // orphan the data path this circuit now depends on.
        Status st = AttachDependencyChain(id, v.service);
        if (!st.ok()) return fail(st);
      }
      continue;  // nothing deployed for reused subtrees
    }
    ServiceInstance inst;
    inst.id = next_service_id_++;
    inst.signature = circuit.plan().OpSignature(i);
    inst.kind = circuit.plan().op(i).kind;
    inst.host = v.host;
    inst.input_bytes_per_s = input_rate[i];
    inst.output_bytes_per_s = circuit.plan().op(i).out_bytes_per_s;
    inst.circuits.push_back(id);
    v.service = inst.id;
    prior_loads.emplace_back(v.host, service_load_[v.host]);
    ApplyServiceLoadDelta(v.host, inst.input_bytes_per_s, +1.0);
    services_by_signature_.emplace(inst.signature, inst.id);
    services_.emplace(inst.id, std::move(inst));
  }
  next_circuit_id_ = id + 1;
  circuits_.emplace(id, std::move(circuit));
  return id;
}

Status ServiceLedger::AttachDependencyChain(CircuitId circuit_id,
                                            ServiceInstanceId root) {
  std::vector<ServiceInstanceId> stack{root};
  std::set<ServiceInstanceId> visited;
  while (!stack.empty()) {
    const ServiceInstanceId sid = stack.back();
    stack.pop_back();
    if (!visited.insert(sid).second) continue;
    auto it = services_.find(sid);
    if (it == services_.end()) {
      return Status::NotFound("dependency instance missing");
    }
    ServiceInstance& inst = it->second;
    if (std::find(inst.circuits.begin(), inst.circuits.end(), circuit_id) ==
        inst.circuits.end()) {
      inst.circuits.push_back(circuit_id);
    }
    // Find the instance's feeding services through any circuit that
    // deploys it: the services bound to the descendants of its vertex.
    for (CircuitId cid : inst.circuits) {
      if (cid == circuit_id) continue;
      auto cit = circuits_.find(cid);
      if (cit == circuits_.end()) continue;
      const Circuit& src = cit->second;
      for (int vi = 0; vi < static_cast<int>(src.NumVertices()); ++vi) {
        if (src.vertex(vi).service != sid) continue;
        // Walk descendants of vi collecting bound services.
        std::vector<int> vstack = src.plan().op(vi).children;
        while (!vstack.empty()) {
          const int d = vstack.back();
          vstack.pop_back();
          const CircuitVertex& dv = src.vertex(d);
          if (dv.service != kInvalidService) stack.push_back(dv.service);
          for (int ch : src.plan().op(d).children) vstack.push_back(ch);
        }
        break;
      }
    }
  }
  return Status::OK();
}

std::map<ServiceInstanceId, ServiceInstance>::iterator
ServiceLedger::EraseService(
    std::map<ServiceInstanceId, ServiceInstance>::iterator it) {
  const ServiceInstance& inst = it->second;
  ApplyServiceLoadDelta(inst.host, inst.input_bytes_per_s, -1.0);
  auto range = services_by_signature_.equal_range(inst.signature);
  for (auto r = range.first; r != range.second; ++r) {
    if (r->second == inst.id) {
      services_by_signature_.erase(r);
      break;
    }
  }
  return services_.erase(it);
}

void ServiceLedger::DetachCircuitFromServices(CircuitId circuit_id) {
  for (auto sit = services_.begin(); sit != services_.end();) {
    ServiceInstance& inst = sit->second;
    inst.circuits.erase(
        std::remove(inst.circuits.begin(), inst.circuits.end(), circuit_id),
        inst.circuits.end());
    sit = inst.circuits.empty() ? EraseService(sit) : std::next(sit);
  }
}

Status ServiceLedger::RemoveCircuit(CircuitId id) {
  auto it = circuits_.find(id);
  if (it == circuits_.end()) return Status::NotFound("no such circuit");
  // Detach this circuit from every instance referencing it (vertex bindings
  // plus reuse dependency chains), releasing instances left without users.
  DetachCircuitFromServices(id);
  circuits_.erase(it);
  return Status::OK();
}

const Circuit* ServiceLedger::FindCircuit(CircuitId id) const {
  auto it = circuits_.find(id);
  return it == circuits_.end() ? nullptr : &it->second;
}

const ServiceInstance* ServiceLedger::FindService(ServiceInstanceId id) const {
  auto it = services_.find(id);
  return it == services_.end() ? nullptr : &it->second;
}

std::vector<const ServiceInstance*> ServiceLedger::ServicesWithSignature(
    uint64_t signature) const {
  std::vector<const ServiceInstance*> out;
  auto range = services_by_signature_.equal_range(signature);
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(&services_.at(it->second));
  }
  return out;
}

Status ServiceLedger::MigrateService(ServiceInstanceId id, NodeId new_host,
                                     const std::vector<bool>& alive) {
  auto it = services_.find(id);
  if (it == services_.end()) return Status::NotFound("no such service");
  if (new_host >= service_load_.size()) {
    return Status::OutOfRange("migration target out of range");
  }
  if (!alive[new_host]) {
    return Status::FailedPrecondition("migration target is down");
  }
  ServiceInstance& inst = it->second;
  if (inst.host == new_host) return Status::OK();
  ApplyServiceLoadDelta(inst.host, inst.input_bytes_per_s, -1.0);
  ApplyServiceLoadDelta(new_host, inst.input_bytes_per_s, +1.0);
  inst.host = new_host;
  for (CircuitId cid : inst.circuits) {
    auto cit = circuits_.find(cid);
    if (cit == circuits_.end()) continue;
    for (int i = 0; i < static_cast<int>(cit->second.NumVertices()); ++i) {
      CircuitVertex& v = cit->second.mutable_vertex(i);
      if (v.service == id && !v.pinned) v.host = new_host;
    }
  }
  return Status::OK();
}

FailureReport ServiceLedger::EvictHost(NodeId n) {
  FailureReport report;
  std::set<CircuitId> orphans;
  // Evict every instance the dead node hosted, reversing the load delta it
  // added (the same ApplyServiceLoadDelta bookkeeping installation used).
  // Every circuit attached to an evicted instance — vertex bindings and
  // reuse dependency chains alike — is orphaned.
  for (auto it = services_.begin(); it != services_.end();) {
    ServiceInstance& inst = it->second;
    if (inst.host != n) {
      ++it;
      continue;
    }
    orphans.insert(inst.circuits.begin(), inst.circuits.end());
    ++report.services_evicted;
    it = EraseService(it);
  }
  // A node with no services left carries no service load; zeroing (instead
  // of trusting delta reversal) keeps the books exact for the rejoin.
  service_load_[n] = 0.0;
  // Circuits whose pinned endpoints (producer/consumer) sat on the dead
  // node are orphaned too, even though nothing was deployed there.
  for (const auto& [cid, circuit] : circuits_) {
    for (const CircuitVertex& v : circuit.vertices()) {
      if (v.host == n) {
        orphans.insert(cid);
        break;
      }
    }
  }
  report.orphaned.assign(orphans.begin(), orphans.end());
  return report;
}

}  // namespace sbon::overlay

#ifndef SBON_OVERLAY_SERVICE_LEDGER_H_
#define SBON_OVERLAY_SERVICE_LEDGER_H_

#include <map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "overlay/circuit.h"
#include "overlay/service.h"

namespace sbon::overlay {

/// What one node failure changed: the circuits left broken (they lost a
/// hosted service instance or a pinned endpoint) and the instances evicted.
struct FailureReport {
  /// Circuits needing repair, ascending id, deduplicated. A circuit appears
  /// here if the dead node hosted one of its service instances (including
  /// instances it reused from another circuit) or one of its pinned
  /// endpoints (producer/consumer).
  std::vector<CircuitId> orphaned;
  size_t services_evicted = 0;
};

/// The deployment substrate of the overlay: every registered circuit, every
/// deployed service instance (with its reuse-signature catalog), and the
/// load book — the per-node service-induced CPU load that installation
/// adds, removal reverses, migration moves, and crash eviction zeroes.
///
/// One of the three substrates `overlay::Sbon` composes (alongside
/// net::NetworkFabric and coords::CoordinateManager). The ledger is pure
/// bookkeeping: it knows nothing of latencies, coordinates, or the index —
/// the composition root re-derives cost-space scalar metrics after every
/// mutating call.
///
/// Load-book invariant (what the unit tests pin): the book equals the sum
/// of `input_bytes_per_s * load_per_byte_per_s` over hosted instances at
/// all times, and returns to exactly zero once every circuit is gone.
class ServiceLedger {
 public:
  /// `num_nodes` sizes the load book; `load_per_byte_per_s` converts an
  /// instance's input rate into host CPU load.
  ServiceLedger(size_t num_nodes, double load_per_byte_per_s);

  ServiceLedger(const ServiceLedger&) = delete;
  ServiceLedger& operator=(const ServiceLedger&) = delete;

  /// Deploys a fully placed circuit: creates (or attaches to) service
  /// instances, adds load, and registers the circuit. Returns its id.
  /// `alive` (indexed by node id) rejects circuits referencing dead hosts.
  /// Failure-atomic: if any mid-install step fails (missing reused
  /// instance, broken dependency chain), every service instance and load
  /// delta created so far is released and the ledger is left exactly as it
  /// was before the call.
  StatusOr<CircuitId> InstallCircuit(Circuit circuit,
                                     const std::vector<bool>& alive);
  /// Tears a circuit down, releasing service instances with no users left.
  Status RemoveCircuit(CircuitId id);

  /// Moves a service instance to a new host, updating load accounting and
  /// the vertices of every circuit bound to it.
  Status MigrateService(ServiceInstanceId id, NodeId new_host,
                        const std::vector<bool>& alive);

  /// The FailNode eviction path: releases every instance hosted on `n`
  /// (reversing its load delta), zeroes the node's load-book entry (a node
  /// with no services carries no service load — exact books for a later
  /// rejoin), and reports the circuits the failure orphaned: users of
  /// evicted instances plus circuits with a pinned endpoint on `n`. The
  /// circuits themselves stay registered — callers (the engine's repair
  /// plan) decide whether to re-place or drop them.
  FailureReport EvictHost(NodeId n);

  const Circuit* FindCircuit(CircuitId id) const;
  const std::map<CircuitId, Circuit>& circuits() const { return circuits_; }
  const ServiceInstance* FindService(ServiceInstanceId id) const;
  const std::map<ServiceInstanceId, ServiceInstance>& services() const {
    return services_;
  }
  /// Deployed instances whose reuse signature matches.
  std::vector<const ServiceInstance*> ServicesWithSignature(
      uint64_t signature) const;
  size_t NumServices() const { return services_.size(); }

  /// Service-induced CPU load currently booked against node `n`.
  double service_load(NodeId n) const { return service_load_[n]; }
  const std::vector<double>& service_loads() const { return service_load_; }
  /// Sum of the whole load book (the tests' sum-to-zero audit hook).
  double TotalServiceLoad() const;

 private:
  Status AttachDependencyChain(CircuitId circuit_id, ServiceInstanceId root);
  /// Removes `circuit_id` from every instance's user list, releasing
  /// instances left without users (their load deltas included). Shared by
  /// RemoveCircuit and the InstallCircuit failure rollback.
  void DetachCircuitFromServices(CircuitId circuit_id);
  /// Releases one instance: reverses its load delta, drops its signature
  /// entry, erases it. Returns the iterator past the erased instance. The
  /// single release path shared by detach and crash eviction.
  std::map<ServiceInstanceId, ServiceInstance>::iterator EraseService(
      std::map<ServiceInstanceId, ServiceInstance>::iterator it);
  void ApplyServiceLoadDelta(NodeId host, double input_bytes_per_s,
                             double sign);

  double load_per_byte_per_s_;
  std::vector<double> service_load_;
  std::map<CircuitId, Circuit> circuits_;
  std::map<ServiceInstanceId, ServiceInstance> services_;
  std::multimap<uint64_t, ServiceInstanceId> services_by_signature_;
  CircuitId next_circuit_id_ = 1;
  ServiceInstanceId next_service_id_ = 1;
};

}  // namespace sbon::overlay

#endif  // SBON_OVERLAY_SERVICE_LEDGER_H_

#include "placement/baselines.h"

#include <algorithm>
#include <cmath>

#include "overlay/metrics.h"

namespace sbon::placement {

Status ConsumerPlacer::Place(overlay::Circuit* circuit,
                             const overlay::Sbon& sbon) {
  (void)sbon;
  const NodeId consumer = circuit->plan().consumer();
  for (int v : circuit->PlaceableVertices()) {
    circuit->mutable_vertex(v).host = consumer;
  }
  return Status::OK();
}

Status ProducerPlacer::Place(overlay::Circuit* circuit,
                             const overlay::Sbon& sbon) {
  (void)sbon;
  // Process ops bottom-up (children precede parents in the arena): each
  // service lands on the host of its highest-rate child.
  for (int v = 0; v < static_cast<int>(circuit->NumVertices()); ++v) {
    overlay::CircuitVertex& cv = circuit->mutable_vertex(v);
    if (cv.pinned || cv.reused) continue;
    NodeId best = kInvalidNode;
    double best_rate = -1.0;
    for (int child : circuit->plan().op(v).children) {
      const double rate = circuit->plan().op(child).out_bytes_per_s;
      if (rate > best_rate &&
          circuit->vertex(child).host != kInvalidNode) {
        best_rate = rate;
        best = circuit->vertex(child).host;
      }
    }
    if (best == kInvalidNode) best = circuit->plan().consumer();
    cv.host = best;
  }
  return Status::OK();
}

Status RandomPlacer::Place(overlay::Circuit* circuit,
                           const overlay::Sbon& sbon) {
  const std::vector<NodeId>& nodes = sbon.overlay_nodes();
  if (nodes.empty()) return Status::FailedPrecondition("no overlay nodes");
  for (int v : circuit->PlaceableVertices()) {
    circuit->mutable_vertex(v).host = nodes[rng_.UniformInt(nodes.size())];
  }
  return Status::OK();
}

Status ExhaustiveOraclePlacer::Place(overlay::Circuit* circuit,
                                     const overlay::Sbon& sbon) {
  const std::vector<int> placeable = circuit->PlaceableVertices();
  if (placeable.empty()) return Status::OK();
  if (placeable.size() > params_.max_services) {
    return Status::InvalidArgument(
        "oracle placement limited to max_services placeable vertices");
  }
  std::vector<NodeId> nodes = sbon.overlay_nodes();
  if (params_.node_sample > 0 && params_.node_sample < nodes.size()) {
    Rng rng(params_.seed);
    std::vector<NodeId> sampled;
    for (size_t idx :
         rng.SampleWithoutReplacement(nodes.size(), params_.node_sample)) {
      sampled.push_back(nodes[idx]);
    }
    nodes = std::move(sampled);
  }

  const size_t k = placeable.size();
  std::vector<size_t> choice(k, 0);
  double best_cost = 1e300;
  std::vector<NodeId> best_hosts(k, nodes[0]);

  for (;;) {
    for (size_t i = 0; i < k; ++i) {
      circuit->mutable_vertex(placeable[i]).host = nodes[choice[i]];
    }
    auto cost = overlay::ComputeCircuitCost(*circuit, sbon.latency(),
                                            &sbon.cost_space());
    if (cost.ok()) {
      const double total = cost->Total(params_.lambda);
      if (total < best_cost) {
        best_cost = total;
        for (size_t i = 0; i < k; ++i) best_hosts[i] = nodes[choice[i]];
      }
    }
    // Odometer increment.
    size_t d = 0;
    while (d < k && ++choice[d] == nodes.size()) {
      choice[d] = 0;
      ++d;
    }
    if (d == k) break;
  }
  for (size_t i = 0; i < k; ++i) {
    circuit->mutable_vertex(placeable[i]).host = best_hosts[i];
  }
  return Status::OK();
}

}  // namespace sbon::placement

#ifndef SBON_PLACEMENT_BASELINES_H_
#define SBON_PLACEMENT_BASELINES_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "overlay/sbon.h"

namespace sbon::placement {

/// Placers that assign physical hosts directly (no cost space, no DHT) —
/// the pre-SBON strategies circuits would get without placement logic.
/// They fill `host` on every placeable vertex.
class PhysicalPlacer {
 public:
  virtual ~PhysicalPlacer() = default;
  virtual Status Place(overlay::Circuit* circuit,
                       const overlay::Sbon& sbon) = 0;
  virtual std::string Name() const = 0;
};

/// Every service at the consumer node ("ship everything to the client").
class ConsumerPlacer : public PhysicalPlacer {
 public:
  Status Place(overlay::Circuit* circuit, const overlay::Sbon& sbon) override;
  std::string Name() const override { return "consumer"; }
};

/// Each service at the producer-side child with the highest input rate
/// ("push processing to the heaviest source").
class ProducerPlacer : public PhysicalPlacer {
 public:
  Status Place(overlay::Circuit* circuit, const overlay::Sbon& sbon) override;
  std::string Name() const override { return "producer"; }
};

/// Uniformly random overlay nodes.
class RandomPlacer : public PhysicalPlacer {
 public:
  explicit RandomPlacer(uint64_t seed) : rng_(seed) {}
  Status Place(overlay::Circuit* circuit, const overlay::Sbon& sbon) override;
  std::string Name() const override { return "random"; }

 private:
  Rng rng_;
};

/// Exhaustive oracle: tries every assignment of overlay nodes to placeable
/// vertices and keeps the one minimizing true-latency circuit cost
/// (network usage + lambda * node penalty). Exponential — refuses circuits
/// with more than `max_services` placeable vertices.
class ExhaustiveOraclePlacer : public PhysicalPlacer {
 public:
  struct Params {
    size_t max_services = 3;
    double lambda = 0.0;  ///< node-penalty weight in the optimized cost
    /// Optional subsample of overlay nodes per service (0 = all). Keeps
    /// n^k tractable on 600-node topologies when k = 3.
    size_t node_sample = 0;
    uint64_t seed = 17;
  };

  ExhaustiveOraclePlacer() : ExhaustiveOraclePlacer(Params()) {}
  explicit ExhaustiveOraclePlacer(Params params) : params_(params) {}
  Status Place(overlay::Circuit* circuit, const overlay::Sbon& sbon) override;
  std::string Name() const override { return "oracle"; }

 private:
  Params params_;
};

}  // namespace sbon::placement

#endif  // SBON_PLACEMENT_BASELINES_H_

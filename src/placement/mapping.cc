#include "placement/mapping.h"

#include <algorithm>
#include <cmath>

namespace sbon::placement {
namespace {

// Extends a vector-space point with zero scalar coordinates (the "ideal"
// target of physical mapping).
Vec IdealFullTarget(const Vec& vector_point, size_t scalar_dims) {
  Vec out = vector_point;
  for (size_t i = 0; i < scalar_dims; ++i) out.Append(0.0);
  return out;
}

double VectorPartDistance(const Vec& full_coord, const Vec& vector_point) {
  double s = 0.0;
  for (size_t d = 0; d < vector_point.dims(); ++d) {
    const double diff = full_coord[d] - vector_point[d];
    s += diff * diff;
  }
  return std::sqrt(s);
}

Status MapOneVertex(overlay::Circuit* circuit, int v,
                    const std::vector<dht::IndexMatch>& candidates,
                    const MappingOptions& options, MappingReport* report) {
  if (candidates.empty()) {
    return Status::NotFound("no mapping candidates for service");
  }
  const Vec& target = circuit->vertex(v).virtual_coord;
  // Candidates arrive sorted by full cost-space distance. The vector-nearest
  // candidate is what a load-blind mapper would take.
  size_t vector_nearest = 0;
  double best_vec = 1e300;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double dv = VectorPartDistance(candidates[i].coord, target);
    if (dv < best_vec) {
      best_vec = dv;
      vector_nearest = i;
    }
  }
  const size_t chosen = options.load_aware ? 0 : vector_nearest;
  circuit->mutable_vertex(v).host = candidates[chosen].node;
  if (report != nullptr) {
    report->services_mapped += 1;
    report->total_mapping_error +=
        VectorPartDistance(candidates[chosen].coord, target);
    if (options.load_aware && chosen != vector_nearest &&
        candidates[chosen].node != candidates[vector_nearest].node) {
      report->load_overrides += 1;
    }
  }
  return Status::OK();
}

}  // namespace

Status MapCircuit(overlay::Circuit* circuit, const overlay::Sbon& sbon,
                  const MappingOptions& options, MappingReport* report) {
  const size_t scalar_dims = sbon.cost_space().spec().num_scalar_dims();
  // One candidate buffer for the whole circuit: the index query reuses its
  // capacity across vertices, keeping the per-vertex loop heap-free.
  std::vector<dht::IndexMatch> matches;
  for (int v : circuit->PlaceableVertices()) {
    const Vec target =
        IdealFullTarget(circuit->vertex(v).virtual_coord, scalar_dims);
    dht::IndexQueryCost qcost;
    Status st = sbon.index().KNearestInto(target, options.k_candidates,
                                          options.probe_width, &qcost, {},
                                          &matches);
    if (!st.ok()) return st;
    if (report != nullptr) {
      report->dht_cost.lookups += qcost.lookups;
      report->dht_cost.routing_hops += qcost.routing_hops;
      report->dht_cost.ring_probes += qcost.ring_probes;
    }
    st = MapOneVertex(circuit, v, matches, options, report);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status MapCircuitExact(overlay::Circuit* circuit, const overlay::Sbon& sbon,
                       const MappingOptions& options, MappingReport* report) {
  const size_t scalar_dims = sbon.cost_space().spec().num_scalar_dims();
  std::vector<dht::IndexMatch> matches;
  for (int v : circuit->PlaceableVertices()) {
    const Vec target =
        IdealFullTarget(circuit->vertex(v).virtual_coord, scalar_dims);
    sbon.index().KNearestExactInto(target, options.k_candidates, &matches);
    Status st = MapOneVertex(circuit, v, matches, options, report);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace sbon::placement

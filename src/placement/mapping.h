#ifndef SBON_PLACEMENT_MAPPING_H_
#define SBON_PLACEMENT_MAPPING_H_

#include <string>

#include "common/status.h"
#include "dht/coord_index.h"
#include "overlay/sbon.h"

namespace sbon::placement {

/// Physical mapping (paper Sec. 3.2): turns each placeable vertex's virtual
/// coordinate into a physical node by querying the decentralized coordinate
/// index for nodes near the ideal point (virtual coordinate in the vector
/// dims, zero in all scalar dims).
///
/// With `load_aware = true` (default) candidates are ranked by full
/// cost-space distance — a lightly loaded node slightly farther in latency
/// beats a nearby overloaded one (the paper's N1-vs-N2 example, Figure 3).
/// With `load_aware = false` candidates are re-ranked by vector distance
/// only, reproducing the naive latency-greedy mapper.
struct MappingOptions {
  size_t k_candidates = 8;   ///< candidates fetched per service
  size_t probe_width = 16;   ///< Hilbert-ring walk width per direction
  bool load_aware = true;
};

/// Accumulated per-mapping measurements.
struct MappingReport {
  dht::IndexQueryCost dht_cost;
  size_t services_mapped = 0;
  /// Sum over services of vector-space distance virtual -> chosen node (the
  /// paper's "mapping error").
  double total_mapping_error = 0.0;
  /// Times the load-aware ranking overrode the vector-nearest candidate.
  size_t load_overrides = 0;

  double MeanMappingError() const {
    return services_mapped == 0 ? 0.0
                                : total_mapping_error /
                                      static_cast<double>(services_mapped);
  }
};

/// Maps every placeable vertex of `circuit` to a host using the overlay's
/// coordinate index. Fails if the index is empty. `report` is optional.
Status MapCircuit(overlay::Circuit* circuit, const overlay::Sbon& sbon,
                  const MappingOptions& options, MappingReport* report);

/// Oracle variant: scans all overlay nodes instead of probing the DHT
/// (exact nearest by the same metric). Used to isolate Hilbert-probe error.
Status MapCircuitExact(overlay::Circuit* circuit, const overlay::Sbon& sbon,
                       const MappingOptions& options, MappingReport* report);

}  // namespace sbon::placement

#endif  // SBON_PLACEMENT_MAPPING_H_

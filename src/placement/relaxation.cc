#include "placement/relaxation.h"

#include <algorithm>
#include <cmath>

namespace sbon::placement {

using internal::AnchorCoord;
using internal::SeedAtPinnedCentroid;

Status RelaxationPlacer::Place(overlay::Circuit* circuit,
                               const coords::CostSpace& space) const {
  const std::vector<int> placeable = circuit->PlaceableVertices();
  if (placeable.empty()) return Status::OK();
  SeedAtPinnedCentroid(circuit, space);

  for (size_t sweep = 0; sweep < params_.max_sweeps; ++sweep) {
    double max_move = 0.0;
    for (int v : placeable) {
      Vec num(space.spec().vector_dims());
      double den = 0.0;
      for (const auto& [edge_idx, other] : circuit->IncidentEdges(v)) {
        const double rate = circuit->edges()[edge_idx].rate_bytes_per_s;
        if (rate <= 0.0) continue;
        num.AddScaled(AnchorCoord(*circuit, other, space), rate);
        den += rate;
      }
      if (den <= 0.0) continue;
      const Vec target = num / den;
      overlay::CircuitVertex& cv = circuit->mutable_vertex(v);
      max_move = std::max(max_move, cv.virtual_coord.DistanceTo(target));
      cv.virtual_coord = target;
    }
    if (max_move < params_.tolerance) break;
  }
  return Status::OK();
}

Status CentroidPlacer::Place(overlay::Circuit* circuit,
                             const coords::CostSpace& space) const {
  SeedAtPinnedCentroid(circuit, space);
  return Status::OK();
}

Status GradientPlacer::Place(overlay::Circuit* circuit,
                             const coords::CostSpace& space) const {
  const std::vector<int> placeable = circuit->PlaceableVertices();
  if (placeable.empty()) return Status::OK();
  // Seed from the spring equilibrium: Weiszfeld sweeps are monotone
  // non-increasing in the linear objective (each per-vertex step minimizes
  // an MM majorizer), so starting there guarantees the result is at least
  // as good as relaxation on sum(rate * dist) — and avoids the coordinate-
  // descent stalls the centroid seed can hit at non-smooth points.
  Status seed = RelaxationPlacer().Place(circuit, space);
  if (!seed.ok()) return seed;

  for (size_t sweep = 0; sweep < params_.max_sweeps; ++sweep) {
    double max_move = 0.0;
    for (int v : placeable) {
      // Weiszfeld step for the rate-weighted geometric median of the
      // neighbor anchors.
      Vec num(space.spec().vector_dims());
      double den = 0.0;
      const Vec cur = circuit->vertex(v).virtual_coord;
      for (const auto& [edge_idx, other] : circuit->IncidentEdges(v)) {
        const double rate = circuit->edges()[edge_idx].rate_bytes_per_s;
        if (rate <= 0.0) continue;
        const Vec a = AnchorCoord(*circuit, other, space);
        const double d = std::max(cur.DistanceTo(a), params_.epsilon);
        num.AddScaled(a, rate / d);
        den += rate / d;
      }
      if (den <= 0.0) continue;
      const Vec target = num / den;
      overlay::CircuitVertex& cv = circuit->mutable_vertex(v);
      max_move = std::max(max_move, cv.virtual_coord.DistanceTo(target));
      cv.virtual_coord = target;
    }
    if (max_move < params_.tolerance) break;
  }
  return Status::OK();
}

namespace {

Vec EndpointCoord(const overlay::Circuit& c, int i,
                  const coords::CostSpace& space) {
  return AnchorCoord(c, i, space);
}

}  // namespace

double VirtualLinearCost(const overlay::Circuit& circuit,
                         const coords::CostSpace& space) {
  double total = 0.0;
  for (const overlay::CircuitEdge& e : circuit.edges()) {
    if (!e.physical) continue;
    total += e.rate_bytes_per_s *
             EndpointCoord(circuit, e.from, space)
                 .DistanceTo(EndpointCoord(circuit, e.to, space));
  }
  return total;
}

double VirtualQuadraticCost(const overlay::Circuit& circuit,
                            const coords::CostSpace& space) {
  double total = 0.0;
  for (const overlay::CircuitEdge& e : circuit.edges()) {
    if (!e.physical) continue;
    const double d = EndpointCoord(circuit, e.from, space)
                         .DistanceTo(EndpointCoord(circuit, e.to, space));
    total += e.rate_bytes_per_s * d * d;
  }
  return total;
}

}  // namespace sbon::placement

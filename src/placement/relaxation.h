#ifndef SBON_PLACEMENT_RELAXATION_H_
#define SBON_PLACEMENT_RELAXATION_H_

#include "placement/virtual_placement.h"

namespace sbon::placement {

/// Relaxation placement (paper Sec. 3.2, after TR-26-04 [7]): models the
/// circuit as a spring system — every data edge is a spring whose constant
/// is the edge's data rate and whose extension is the coordinate distance;
/// pinned services are fixed bodies, unpinned services are massless bodies
/// that settle where forces balance.
///
/// The equilibrium of that system minimizes the spring energy
/// sum(rate * dist^2); we reach it by Gauss-Seidel sweeps (each unpinned
/// vertex moves to the rate-weighted average of its neighbors), which is
/// the same fixed point the force integration in [7] converges to, reached
/// deterministically.
class RelaxationPlacer : public VirtualPlacer {
 public:
  struct Params {
    size_t max_sweeps = 200;
    /// Stop when no vertex moved farther than this (cost-space units).
    double tolerance = 1e-4;
  };

  RelaxationPlacer() : RelaxationPlacer(Params()) {}
  explicit RelaxationPlacer(Params params) : params_(params) {}

  Status Place(overlay::Circuit* circuit,
               const coords::CostSpace& space) const override;
  std::string Name() const override { return "relaxation"; }

 private:
  Params params_;
};

/// One-shot baseline: every unpinned service at the rate-weighted centroid
/// of the circuit's pinned endpoints. Ignores circuit structure.
class CentroidPlacer : public VirtualPlacer {
 public:
  Status Place(overlay::Circuit* circuit,
               const coords::CostSpace& space) const override;
  std::string Name() const override { return "centroid"; }
};

/// Iteratively minimizes the *linear* network-usage objective
/// sum(rate * dist) by per-vertex Weiszfeld updates (the true "amount of
/// data in transit" objective, vs. the spring system's quadratic proxy).
class GradientPlacer : public VirtualPlacer {
 public:
  struct Params {
    size_t max_sweeps = 300;
    double tolerance = 1e-4;
    double epsilon = 1e-6;  ///< distance guard for Weiszfeld weights
  };

  GradientPlacer() : GradientPlacer(Params()) {}
  explicit GradientPlacer(Params params) : params_(params) {}

  Status Place(overlay::Circuit* circuit,
               const coords::CostSpace& space) const override;
  std::string Name() const override { return "gradient"; }

 private:
  Params params_;
};

/// Objective helpers over virtual coordinates (used by tests/benches).
/// sum over edges of rate * distance(anchor(from), anchor(to)).
double VirtualLinearCost(const overlay::Circuit& circuit,
                         const coords::CostSpace& space);
/// sum over edges of rate * distance^2.
double VirtualQuadraticCost(const overlay::Circuit& circuit,
                            const coords::CostSpace& space);

}  // namespace sbon::placement

#endif  // SBON_PLACEMENT_RELAXATION_H_

#include "placement/virtual_placement.h"

namespace sbon::placement::internal {

Vec AnchorCoord(const overlay::Circuit& c, int i,
                const coords::CostSpace& space) {
  const overlay::CircuitVertex& v = c.vertex(i);
  if (v.pinned || v.reused) return space.VectorCoord(v.host);
  return v.virtual_coord;
}

Vec SeedAtPinnedCentroid(overlay::Circuit* circuit,
                         const coords::CostSpace& space) {
  const size_t dims = space.spec().vector_dims();
  Vec centroid(dims);
  double weight = 0.0;
  for (const overlay::CircuitEdge& e : circuit->edges()) {
    for (int end : {e.from, e.to}) {
      const overlay::CircuitVertex& v = circuit->vertex(end);
      if (v.pinned || v.reused) {
        centroid.AddScaled(space.VectorCoord(v.host), e.rate_bytes_per_s);
        weight += e.rate_bytes_per_s;
      }
    }
  }
  if (weight > 0.0) {
    centroid /= weight;
  }
  for (int i : circuit->PlaceableVertices()) {
    circuit->mutable_vertex(i).virtual_coord = centroid;
  }
  return centroid;
}

}  // namespace sbon::placement::internal

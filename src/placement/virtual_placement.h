#ifndef SBON_PLACEMENT_VIRTUAL_PLACEMENT_H_
#define SBON_PLACEMENT_VIRTUAL_PLACEMENT_H_

#include <string>

#include "common/status.h"
#include "coords/cost_space.h"
#include "overlay/circuit.h"

namespace sbon::placement {

/// Computes ideal cost-space coordinates for a circuit's placeable services
/// (paper Sec. 3.2, "Virtual Placement"). Operates only over the vector
/// dimensions; scalar dimensions enter later, during physical mapping.
///
/// Implementations read the coordinates of pinned vertices (producers,
/// consumer) and of already-bound reused vertices from `space` via their
/// hosts, and write `virtual_coord` on every placeable vertex.
class VirtualPlacer {
 public:
  virtual ~VirtualPlacer() = default;

  /// Fills `virtual_coord` (vector dims) for all placeable vertices.
  /// Virtual placement is computationally cheap and instantiates nothing.
  virtual Status Place(overlay::Circuit* circuit,
                       const coords::CostSpace& space) const = 0;

  /// Identifier used in bench output.
  virtual std::string Name() const = 0;
};

namespace internal {

/// Anchor coordinate of vertex `i`: pinned and reused vertices anchor at
/// their host's vector coordinate; placeable vertices use their current
/// `virtual_coord`. Shared by the iterative placers.
Vec AnchorCoord(const overlay::Circuit& c, int i,
                const coords::CostSpace& space);

/// Initializes every placeable vertex's virtual_coord to the rate-weighted
/// centroid of the circuit's pinned endpoints (a sane, deterministic start
/// for the iterative refiners). Returns that centroid.
Vec SeedAtPinnedCentroid(overlay::Circuit* circuit,
                         const coords::CostSpace& space);

}  // namespace internal

}  // namespace sbon::placement

#endif  // SBON_PLACEMENT_VIRTUAL_PLACEMENT_H_

#include "query/catalog.h"

namespace sbon::query {

StreamId Catalog::AddStream(std::string name, double tuple_rate_per_s,
                            double tuple_size_bytes, NodeId producer) {
  const StreamId id = static_cast<StreamId>(streams_.size());
  streams_.push_back(StreamDef{id, std::move(name), tuple_rate_per_s,
                               tuple_size_bytes, producer});
  return id;
}

}  // namespace sbon::query

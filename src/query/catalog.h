#ifndef SBON_QUERY_CATALOG_H_
#define SBON_QUERY_CATALOG_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace sbon::query {

/// A data stream available in the SBON. Streams are *pinned*: they originate
/// at a fixed producer node ("one cannot move mountains", paper Sec. 2 — the
/// SBON setting has no data placement problem).
struct StreamDef {
  StreamId id = 0;
  std::string name;
  double tuple_rate_per_s = 1.0;   ///< Tuples emitted per second.
  double tuple_size_bytes = 64.0;  ///< Serialized tuple size.
  NodeId producer = kInvalidNode;  ///< Pinned origin node.

  double BytesPerSecond() const { return tuple_rate_per_s * tuple_size_bytes; }
};

/// "s<i>" — the canonical name for generated streams (synthetic workloads,
/// benches, tests). Built by append rather than `const char* +
/// std::string&&`, which gcc 12 misdiagnoses at -O3 under -Werror=restrict
/// (GCC bug 105329); keep every generated-name call site on this helper so
/// the workaround lives in one place.
inline std::string IndexedStreamName(size_t i) {
  std::string name("s");
  name += std::to_string(i);
  return name;
}

/// Registry of the streams that queries may reference.
class Catalog {
 public:
  /// Registers a stream; the id is assigned and returned.
  StreamId AddStream(std::string name, double tuple_rate_per_s,
                     double tuple_size_bytes, NodeId producer);

  size_t NumStreams() const { return streams_.size(); }
  const StreamDef& stream(StreamId id) const { return streams_[id]; }
  bool Has(StreamId id) const { return id < streams_.size(); }

 private:
  std::vector<StreamDef> streams_;
};

}  // namespace sbon::query

#endif  // SBON_QUERY_CATALOG_H_

#include "query/enumerate.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "query/stats.h"

namespace sbon::query {
namespace {

// Join-tree arena node over stream *positions* of the spec.
struct TreeNode {
  int left = -1;
  int right = -1;
  size_t leaf_pos = 0;  // valid when left < 0
};

// A partial DP result over one stream subset.
struct Partial {
  double tuple_rate = 0.0;
  double tuple_size = 0.0;
  double cost = 0.0;  // bytes/s shipped on edges internal to the subtree
  int tree = -1;
  uint64_t shape_hash = 0;  // order-insensitive structural hash for dedupe
};

uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x7f4a7c15ULL;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return x;
}

std::vector<size_t> MaskPositions(uint32_t mask) {
  std::vector<size_t> out;
  for (size_t i = 0; mask != 0; ++i, mask >>= 1) {
    if (mask & 1u) out.push_back(i);
  }
  return out;
}

// Builds a LogicalPlan from a join tree over spec positions.
int EmitTree(const std::vector<TreeNode>& arena, int node,
             const QuerySpec& spec,
             const std::vector<std::vector<double>>& pair_sel,
             LogicalPlan* plan, std::vector<size_t>* positions_out) {
  const TreeNode& t = arena[node];
  if (t.left < 0) {
    const size_t pos = t.leaf_pos;
    int op = plan->AddProducer(spec.streams[pos]);
    const double fsel = spec.filter_sel.empty() ? 1.0 : spec.filter_sel[pos];
    if (fsel < 1.0) op = plan->AddSelect(op, fsel);
    positions_out->assign(1, pos);
    return op;
  }
  std::vector<size_t> left_pos, right_pos;
  const int l = EmitTree(arena, t.left, spec, pair_sel, plan, &left_pos);
  const int r = EmitTree(arena, t.right, spec, pair_sel, plan, &right_pos);
  const double sel = CrossSelectivity(left_pos, right_pos, pair_sel);
  const int op = plan->AddJoin(l, r, sel);
  positions_out->assign(left_pos.begin(), left_pos.end());
  positions_out->insert(positions_out->end(), right_pos.begin(),
                        right_pos.end());
  return op;
}

StatusOr<LogicalPlan> FinishPlan(const std::vector<TreeNode>& arena, int root,
                                 const QuerySpec& spec,
                                 const std::vector<std::vector<double>>& psel,
                                 const Catalog& catalog) {
  LogicalPlan plan;
  std::vector<size_t> positions;
  int op = EmitTree(arena, root, spec, psel, &plan, &positions);
  if (spec.aggregate_factor < 1.0) {
    op = plan.AddAggregate(op, spec.aggregate_factor);
  }
  plan.SetConsumer(op, spec.consumer);
  Status s = plan.AnnotateRates(catalog, spec.join_window_s);
  if (!s.ok()) return s;
  return plan;
}

// Effective pairwise-selectivity matrix (all 1.0 when the spec omits it).
std::vector<std::vector<double>> EffectivePairSel(const QuerySpec& spec) {
  if (!spec.join_sel.empty()) return spec.join_sel;
  return std::vector<std::vector<double>>(
      spec.NumStreams(), std::vector<double>(spec.NumStreams(), 1.0));
}

}  // namespace

StatusOr<std::vector<LogicalPlan>> EnumeratePlans(
    const QuerySpec& spec, const Catalog& catalog,
    const EnumerationOptions& options) {
  Status valid = spec.Validate(catalog);
  if (!valid.ok()) return valid;
  const size_t n = spec.NumStreams();
  if (n > options.max_streams || n > 31) {
    return Status::InvalidArgument("too many streams for subset DP");
  }
  if (options.top_k == 0) {
    return Status::InvalidArgument("top_k must be >= 1");
  }
  const std::vector<std::vector<double>> psel = EffectivePairSel(spec);

  std::vector<TreeNode> arena;
  // dp[mask] = up to top_k best partials, sorted by cost.
  std::vector<std::vector<Partial>> dp(1u << n);

  for (size_t i = 0; i < n; ++i) {
    const StreamDef& sd = catalog.stream(spec.streams[i]);
    const double fsel = spec.filter_sel.empty() ? 1.0 : spec.filter_sel[i];
    Partial p;
    p.tuple_rate = SelectOutputRate(sd.tuple_rate_per_s, fsel);
    p.tuple_size = sd.tuple_size_bytes;
    // A pushed-down filter receives the raw stream over a local edge.
    p.cost = fsel < 1.0 ? sd.BytesPerSecond() : 0.0;
    arena.push_back(TreeNode{-1, -1, i});
    p.tree = static_cast<int>(arena.size()) - 1;
    p.shape_hash = MixHash(0x51ea5ULL, i);
    dp[1u << i].push_back(p);
  }

  const uint32_t full = (n >= 31) ? 0x7fffffffu : ((1u << n) - 1u);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singletons already seeded
    const uint32_t lowest = mask & (~mask + 1u);
    std::vector<Partial>& bucket = dp[mask];
    // Iterate proper submasks containing the lowest bit (canonical split).
    for (uint32_t sub = (mask - 1u) & mask; sub != 0;
         sub = (sub - 1u) & mask) {
      if ((sub & lowest) == 0) continue;
      const uint32_t rest = mask ^ sub;
      if (options.left_deep_only) {
        const bool sub_single = (sub & (sub - 1)) == 0;
        const bool rest_single = (rest & (rest - 1)) == 0;
        if (!sub_single && !rest_single) continue;
      }
      const auto left_pos = MaskPositions(sub);
      const auto right_pos = MaskPositions(rest);
      const double sel = CrossSelectivity(left_pos, right_pos, psel);
      for (const Partial& a : dp[sub]) {
        for (const Partial& b : dp[rest]) {
          Partial p;
          p.tuple_rate = JoinOutputRate(a.tuple_rate, b.tuple_rate, sel,
                                        spec.join_window_s);
          p.tuple_size = JoinOutputTupleSize(a.tuple_size, b.tuple_size);
          p.cost = a.cost + b.cost + a.tuple_rate * a.tuple_size +
                   b.tuple_rate * b.tuple_size;
          const uint64_t ha = a.shape_hash, hb = b.shape_hash;
          p.shape_hash = MixHash(std::min(ha, hb), std::max(ha, hb));
          arena.push_back(TreeNode{a.tree, b.tree, 0});
          p.tree = static_cast<int>(arena.size()) - 1;
          bucket.push_back(p);
        }
      }
    }
    // Keep the top_k cheapest distinct shapes.
    std::sort(bucket.begin(), bucket.end(),
              [](const Partial& a, const Partial& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                return a.shape_hash < b.shape_hash;
              });
    std::vector<Partial> kept;
    for (const Partial& p : bucket) {
      const bool dup = std::any_of(kept.begin(), kept.end(),
                                   [&](const Partial& q) {
                                     return q.shape_hash == p.shape_hash;
                                   });
      if (!dup) kept.push_back(p);
      if (kept.size() >= options.top_k) break;
    }
    bucket = std::move(kept);
  }

  std::vector<LogicalPlan> plans;
  for (const Partial& p : dp[full]) {
    auto plan = FinishPlan(arena, p.tree, spec, psel, catalog);
    if (!plan.ok()) return plan.status();
    plans.push_back(std::move(plan.value()));
  }
  if (plans.empty()) return Status::Internal("enumeration produced no plans");
  return plans;
}

namespace {

// Recursively enumerates every distinct join tree over `mask`.
void AllTrees(uint32_t mask, std::vector<TreeNode>* arena,
              std::map<uint32_t, std::vector<int>>* memo) {
  if (memo->count(mask) != 0) return;
  std::vector<int>& out = (*memo)[mask];
  if ((mask & (mask - 1)) == 0) {
    size_t pos = 0;
    while (((mask >> pos) & 1u) == 0) ++pos;
    arena->push_back(TreeNode{-1, -1, pos});
    out.push_back(static_cast<int>(arena->size()) - 1);
    return;
  }
  const uint32_t lowest = mask & (~mask + 1u);
  for (uint32_t sub = (mask - 1u) & mask; sub != 0; sub = (sub - 1u) & mask) {
    if ((sub & lowest) == 0) continue;
    const uint32_t rest = mask ^ sub;
    AllTrees(sub, arena, memo);
    AllTrees(rest, arena, memo);
    // Copy index lists: recursion may invalidate references into the map.
    const std::vector<int> lefts = (*memo)[sub];
    const std::vector<int> rights = (*memo)[rest];
    for (int l : lefts) {
      for (int r : rights) {
        arena->push_back(TreeNode{l, r, 0});
        (*memo)[mask].push_back(static_cast<int>(arena->size()) - 1);
      }
    }
  }
}

}  // namespace

StatusOr<std::vector<LogicalPlan>> EnumerateAllPlansExhaustive(
    const QuerySpec& spec, const Catalog& catalog) {
  Status valid = spec.Validate(catalog);
  if (!valid.ok()) return valid;
  const size_t n = spec.NumStreams();
  if (n > 7) {
    return Status::InvalidArgument("exhaustive enumeration limited to n<=7");
  }
  const std::vector<std::vector<double>> psel = EffectivePairSel(spec);
  std::vector<TreeNode> arena;
  std::map<uint32_t, std::vector<int>> memo;
  const uint32_t full = (1u << n) - 1u;
  AllTrees(full, &arena, &memo);
  std::vector<LogicalPlan> plans;
  for (int root : memo[full]) {
    auto plan = FinishPlan(arena, root, spec, psel, catalog);
    if (!plan.ok()) return plan.status();
    plans.push_back(std::move(plan.value()));
  }
  std::sort(plans.begin(), plans.end(),
            [](const LogicalPlan& a, const LogicalPlan& b) {
              return a.IntermediateDataRate() < b.IntermediateDataRate();
            });
  return plans;
}

}  // namespace sbon::query

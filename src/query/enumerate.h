#ifndef SBON_QUERY_ENUMERATE_H_
#define SBON_QUERY_ENUMERATE_H_

#include <vector>

#include "common/status.h"
#include "query/catalog.h"
#include "query/plan.h"
#include "query/query_spec.h"

namespace sbon::query {

/// Plan-enumeration options.
struct EnumerationOptions {
  /// Candidate plans to return (ranked by network-blind intermediate data
  /// rate). The integrated optimizer virtually places *all* of them; the
  /// two-step baseline only ever looks at the first. K partial plans are
  /// also retained per DP subset, so K=1 is exactly the classical DP.
  size_t top_k = 8;
  /// Restrict to left-deep join trees (classical System-R style); false
  /// explores bushy trees too.
  bool left_deep_only = false;
  /// Maximum streams the subset DP accepts (2^n * K state blowup guard).
  size_t max_streams = 14;
};

/// Enumerates candidate logical plans for `spec` using dynamic programming
/// over stream subsets with top-K pruning (paper Sec. 2.1: "dynamic
/// programming with pruning or some other enumeration algorithm").
///
/// Returned plans are distinct join shapes, annotated with rates, best
/// (lowest data volume) first. Per-stream filters are pushed to the leaves;
/// an aggregate (if any) sits directly under the consumer.
StatusOr<std::vector<LogicalPlan>> EnumeratePlans(
    const QuerySpec& spec, const Catalog& catalog,
    const EnumerationOptions& options);

/// Exhaustively enumerates *every* distinct join tree (bushy, all leaf
/// partitions) — the oracle used to test DP optimality. Practical for
/// NumStreams() <= 6 (105 trees at n=5, 945 at n=6).
StatusOr<std::vector<LogicalPlan>> EnumerateAllPlansExhaustive(
    const QuerySpec& spec, const Catalog& catalog);

}  // namespace sbon::query

#endif  // SBON_QUERY_ENUMERATE_H_

#include "query/plan.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "query/stats.h"

namespace sbon::query {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kProducer: return "Producer";
    case OpKind::kSelect: return "Select";
    case OpKind::kJoin: return "Join";
    case OpKind::kAggregate: return "Aggregate";
    case OpKind::kConsumer: return "Consumer";
  }
  return "?";
}

int LogicalPlan::AddProducer(StreamId stream) {
  PlanOp op;
  op.kind = OpKind::kProducer;
  op.stream = stream;
  ops_.push_back(std::move(op));
  return static_cast<int>(ops_.size()) - 1;
}

int LogicalPlan::AddSelect(int child, double selectivity) {
  assert(child >= 0 && child < static_cast<int>(ops_.size()));
  PlanOp op;
  op.kind = OpKind::kSelect;
  op.selectivity = selectivity;
  op.children = {child};
  ops_.push_back(std::move(op));
  return static_cast<int>(ops_.size()) - 1;
}

int LogicalPlan::AddJoin(int left, int right, double selectivity) {
  assert(left >= 0 && left < static_cast<int>(ops_.size()));
  assert(right >= 0 && right < static_cast<int>(ops_.size()));
  PlanOp op;
  op.kind = OpKind::kJoin;
  op.selectivity = selectivity;
  op.children = {left, right};
  ops_.push_back(std::move(op));
  return static_cast<int>(ops_.size()) - 1;
}

int LogicalPlan::AddAggregate(int child, double rate_factor) {
  assert(child >= 0 && child < static_cast<int>(ops_.size()));
  PlanOp op;
  op.kind = OpKind::kAggregate;
  op.rate_factor = rate_factor;
  op.children = {child};
  ops_.push_back(std::move(op));
  return static_cast<int>(ops_.size()) - 1;
}

int LogicalPlan::SetConsumer(int child, NodeId consumer) {
  assert(child >= 0 && child < static_cast<int>(ops_.size()));
  PlanOp op;
  op.kind = OpKind::kConsumer;
  op.children = {child};
  ops_.push_back(std::move(op));
  root_ = static_cast<int>(ops_.size()) - 1;
  consumer_ = consumer;
  return root_;
}

std::vector<int> LogicalPlan::UnpinnedOps() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(ops_.size()); ++i) {
    if (ops_[i].kind != OpKind::kProducer &&
        ops_[i].kind != OpKind::kConsumer) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<int> LogicalPlan::ProducerOps() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(ops_.size()); ++i) {
    if (ops_[i].kind == OpKind::kProducer) out.push_back(i);
  }
  return out;
}

Status LogicalPlan::Validate() const {
  if (root_ < 0) return Status::FailedPrecondition("no consumer root");
  if (ops_[root_].kind != OpKind::kConsumer) {
    return Status::Internal("root is not a consumer");
  }
  if (consumer_ == kInvalidNode) {
    return Status::FailedPrecondition("consumer node not set");
  }
  std::vector<int> indegree(ops_.size(), 0);
  for (size_t i = 0; i < ops_.size(); ++i) {
    const PlanOp& op = ops_[i];
    const size_t expected_children =
        op.kind == OpKind::kProducer ? 0 : op.kind == OpKind::kJoin ? 2 : 1;
    if (op.children.size() != expected_children) {
      return Status::Internal("op has wrong child count");
    }
    for (int c : op.children) {
      if (c < 0 || c >= static_cast<int>(i)) {
        return Status::Internal("child index out of order");
      }
      indegree[c]++;
    }
  }
  for (size_t i = 0; i < ops_.size(); ++i) {
    const int expected = (static_cast<int>(i) == root_) ? 0 : 1;
    if (indegree[i] != expected) {
      return Status::Internal("plan is not a tree");
    }
  }
  return Status::OK();
}

Status LogicalPlan::AnnotateRates(const Catalog& catalog,
                                  double join_window_s) {
  Status valid = Validate();
  if (!valid.ok()) return valid;
  for (PlanOp& op : ops_) {
    switch (op.kind) {
      case OpKind::kProducer: {
        if (!catalog.Has(op.stream)) {
          return Status::NotFound("stream not in catalog");
        }
        const StreamDef& s = catalog.stream(op.stream);
        op.out_tuple_rate = s.tuple_rate_per_s;
        op.out_tuple_size = s.tuple_size_bytes;
        op.stream_set = {op.stream};
        break;
      }
      case OpKind::kSelect: {
        const PlanOp& c = ops_[op.children[0]];
        op.out_tuple_rate = SelectOutputRate(c.out_tuple_rate,
                                             op.selectivity);
        op.out_tuple_size = c.out_tuple_size;
        op.stream_set = c.stream_set;
        break;
      }
      case OpKind::kJoin: {
        const PlanOp& l = ops_[op.children[0]];
        const PlanOp& r = ops_[op.children[1]];
        op.out_tuple_rate =
            JoinOutputRate(l.out_tuple_rate, r.out_tuple_rate,
                           op.selectivity, join_window_s);
        op.out_tuple_size = JoinOutputTupleSize(l.out_tuple_size,
                                                r.out_tuple_size);
        op.stream_set = l.stream_set;
        op.stream_set.insert(op.stream_set.end(), r.stream_set.begin(),
                             r.stream_set.end());
        std::sort(op.stream_set.begin(), op.stream_set.end());
        break;
      }
      case OpKind::kAggregate: {
        const PlanOp& c = ops_[op.children[0]];
        op.out_tuple_rate = c.out_tuple_rate * op.rate_factor;
        op.out_tuple_size = c.out_tuple_size;
        op.stream_set = c.stream_set;
        break;
      }
      case OpKind::kConsumer: {
        const PlanOp& c = ops_[op.children[0]];
        op.out_tuple_rate = c.out_tuple_rate;
        op.out_tuple_size = c.out_tuple_size;
        op.stream_set = c.stream_set;
        break;
      }
    }
    op.out_bytes_per_s = op.out_tuple_rate * op.out_tuple_size;
  }
  return Status::OK();
}

double LogicalPlan::IntermediateDataRate() const {
  // Every op except the root ships its output over one plan edge.
  double total = 0.0;
  for (int i = 0; i < static_cast<int>(ops_.size()); ++i) {
    if (i == root_) continue;
    total += ops_[i].out_bytes_per_s;
  }
  return total;
}

std::string LogicalPlan::CanonicalRec(int i) const {
  const PlanOp& op = ops_[i];
  char buf[48];
  switch (op.kind) {
    case OpKind::kProducer:
      std::snprintf(buf, sizeof(buf), "P%u", op.stream);
      return buf;
    case OpKind::kSelect:
      std::snprintf(buf, sizeof(buf), "S[%.3g](", op.selectivity);
      return buf + CanonicalRec(op.children[0]) + ")";
    case OpKind::kJoin: {
      std::snprintf(buf, sizeof(buf), "J[%.3g](", op.selectivity);
      // Children rendered in stream-set order for a canonical form.
      std::string l = CanonicalRec(op.children[0]);
      std::string r = CanonicalRec(op.children[1]);
      if (r < l) std::swap(l, r);
      return buf + l + "," + r + ")";
    }
    case OpKind::kAggregate:
      std::snprintf(buf, sizeof(buf), "A[%.3g](", op.rate_factor);
      return buf + CanonicalRec(op.children[0]) + ")";
    case OpKind::kConsumer:
      return "C(" + CanonicalRec(op.children[0]) + ")";
  }
  return "?";
}

std::string LogicalPlan::Canonical() const {
  if (root_ < 0) return "<incomplete>";
  return CanonicalRec(root_);
}

uint64_t LogicalPlan::OpSignature(int i) const {
  const PlanOp& op = ops_[i];
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;  // FNV prime
  };
  mix(static_cast<uint64_t>(op.kind));
  // Quantize params so float noise does not break signature equality.
  mix(static_cast<uint64_t>(op.selectivity * 1e9));
  mix(static_cast<uint64_t>(op.rate_factor * 1e9));
  for (StreamId s : op.stream_set) mix(s + 1);
  return h;
}

}  // namespace sbon::query

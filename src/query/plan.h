#ifndef SBON_QUERY_PLAN_H_
#define SBON_QUERY_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "query/catalog.h"

namespace sbon::query {

/// Kinds of logical operators ("services" once instantiated in the SBON —
/// the paper uses the broader term because in-network code need not be a
/// classical database operator).
enum class OpKind : uint8_t {
  kProducer,   ///< Leaf: a pinned stream source.
  kSelect,     ///< Stateless filter with a selectivity.
  kJoin,       ///< Binary windowed stream join.
  kAggregate,  ///< Windowed aggregation shrinking the rate by a factor.
  kConsumer,   ///< Root: the pinned query sink.
};

const char* OpKindName(OpKind k);

/// One operator of a logical plan. Plans are DAG-free trees stored in an
/// index-addressed arena (children refer to earlier indices).
struct PlanOp {
  OpKind kind = OpKind::kProducer;
  StreamId stream = 0;        ///< kProducer only.
  double selectivity = 1.0;   ///< kSelect / kJoin.
  double rate_factor = 1.0;   ///< kAggregate: out rate = in rate * factor.
  std::vector<int> children;  ///< Indices of child ops.

  // Annotations filled in by LogicalPlan::AnnotateRates():
  double out_tuple_rate = 0.0;  ///< tuples/s leaving this op.
  double out_tuple_size = 0.0;  ///< bytes per output tuple.
  double out_bytes_per_s = 0.0; ///< product of the two.

  /// Sorted stream ids contributing to this op's output — the op's *reuse
  /// signature* together with kind and parameters (two circuits computing a
  /// join over the same streams with the same predicates can share one
  /// service instance, paper Sec. 2.2/3.4).
  std::vector<StreamId> stream_set;
};

/// A logical query plan: the identity and order of services that answer a
/// query (paper Sec. 2.1). Producer leaves and the consumer root are pinned;
/// interior services are unpinned (placeable).
class LogicalPlan {
 public:
  LogicalPlan() = default;

  /// Builders; children must already exist. Return the op index.
  int AddProducer(StreamId stream);
  int AddSelect(int child, double selectivity);
  int AddJoin(int left, int right, double selectivity);
  int AddAggregate(int child, double rate_factor);
  /// Sets the consumer root over `child` at the pinned `consumer` node.
  int SetConsumer(int child, NodeId consumer);

  size_t NumOps() const { return ops_.size(); }
  const PlanOp& op(int i) const { return ops_[i]; }
  int root() const { return root_; }
  NodeId consumer() const { return consumer_; }

  /// Indices of all interior (placeable) ops: everything that is neither a
  /// producer nor the consumer.
  std::vector<int> UnpinnedOps() const;
  /// Indices of producer leaves.
  std::vector<int> ProducerOps() const;

  /// Structural checks: tree-shaped, consumer root present, children valid.
  Status Validate() const;

  /// Propagates tuple rates / sizes / stream sets bottom-up using the
  /// windowed-join rate model (see stats.h). Must be called before costing.
  Status AnnotateRates(const Catalog& catalog, double join_window_s = 1.0);

  /// Sum over interior edges of the data rate flowing on them (bytes/s) —
  /// the network-blind "data volume" objective classical plan generation
  /// minimizes. Requires AnnotateRates.
  double IntermediateDataRate() const;

  /// Deterministic structural rendering, e.g.
  /// "C(J[0.01](J[0.1](P0,P1),P2))". Equal strings imply equal plans.
  std::string Canonical() const;

  /// 64-bit signature of the op's (kind, params, stream set) — the key used
  /// to find reusable service instances across queries.
  uint64_t OpSignature(int i) const;

 private:
  std::vector<PlanOp> ops_;
  int root_ = -1;
  NodeId consumer_ = kInvalidNode;

  std::string CanonicalRec(int i) const;
};

}  // namespace sbon::query

#endif  // SBON_QUERY_PLAN_H_

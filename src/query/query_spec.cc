#include "query/query_spec.h"

namespace sbon::query {

Status QuerySpec::Validate(const Catalog& catalog) const {
  if (streams.empty()) return Status::InvalidArgument("query has no streams");
  if (consumer == kInvalidNode) {
    return Status::InvalidArgument("query has no consumer");
  }
  for (StreamId s : streams) {
    if (!catalog.Has(s)) return Status::NotFound("unknown stream in query");
  }
  if (!filter_sel.empty() && filter_sel.size() != streams.size()) {
    return Status::InvalidArgument("filter_sel size mismatch");
  }
  if (!join_sel.empty()) {
    if (join_sel.size() != streams.size()) {
      return Status::InvalidArgument("join_sel size mismatch");
    }
    for (size_t i = 0; i < join_sel.size(); ++i) {
      if (join_sel[i].size() != streams.size()) {
        return Status::InvalidArgument("join_sel row size mismatch");
      }
      for (size_t j = 0; j < join_sel.size(); ++j) {
        if (join_sel[i][j] != join_sel[j][i]) {
          return Status::InvalidArgument("join_sel not symmetric");
        }
      }
    }
  }
  if (aggregate_factor < 0.0 || aggregate_factor > 1.0) {
    return Status::InvalidArgument("aggregate_factor out of [0,1]");
  }
  if (join_window_s <= 0.0) {
    return Status::InvalidArgument("join_window_s must be positive");
  }
  return Status::OK();
}

QuerySpec QuerySpec::SimpleJoin(std::vector<StreamId> streams, NodeId consumer,
                                double sel, double window_s) {
  QuerySpec q;
  q.consumer = consumer;
  q.streams = std::move(streams);
  const size_t n = q.streams.size();
  q.filter_sel.assign(n, 1.0);
  q.join_sel.assign(n, std::vector<double>(n, sel));
  for (size_t i = 0; i < n; ++i) q.join_sel[i][i] = 1.0;
  q.join_window_s = window_s;
  return q;
}

}  // namespace sbon::query

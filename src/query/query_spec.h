#ifndef SBON_QUERY_QUERY_SPEC_H_
#define SBON_QUERY_QUERY_SPEC_H_

#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "query/catalog.h"

namespace sbon::query {

/// A declarative continuous query: join a set of streams (with optional
/// per-stream filters and a pairwise join-predicate selectivity matrix),
/// optionally aggregate, and deliver to a pinned consumer node. Plan
/// generation chooses the join order; placement chooses the hosts.
struct QuerySpec {
  NodeId consumer = kInvalidNode;
  std::vector<StreamId> streams;  ///< >= 1 streams, joined k-way.

  /// Per-position filter selectivity (1.0 = no filter). Size = streams.
  std::vector<double> filter_sel;

  /// Symmetric pairwise join-predicate selectivity matrix; entry 1.0 means
  /// no predicate between that pair. Size = streams x streams.
  std::vector<std::vector<double>> join_sel;

  /// Rate factor of a final aggregation (1.0 = no aggregate op).
  double aggregate_factor = 1.0;

  /// Join window in seconds for the rate model.
  double join_window_s = 1.0;

  size_t NumStreams() const { return streams.size(); }

  /// Structural validation against a catalog.
  Status Validate(const Catalog& catalog) const;

  /// A spec with no filters and uniform pairwise selectivity `sel`.
  static QuerySpec SimpleJoin(std::vector<StreamId> streams, NodeId consumer,
                              double sel, double window_s = 1.0);
};

}  // namespace sbon::query

#endif  // SBON_QUERY_QUERY_SPEC_H_

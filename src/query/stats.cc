#include "query/stats.h"

#include <algorithm>

namespace sbon::query {

double SelectOutputRate(double r, double selectivity) {
  return r * std::clamp(selectivity, 0.0, 1.0);
}

double JoinOutputRate(double r_left, double r_right, double selectivity,
                      double window_s) {
  return 2.0 * std::clamp(selectivity, 0.0, 1.0) * r_left * r_right *
         window_s;
}

double JoinOutputTupleSize(double size_left, double size_right) {
  return size_left + size_right;
}

double CrossSelectivity(const std::vector<size_t>& left_set,
                        const std::vector<size_t>& right_set,
                        const std::vector<std::vector<double>>& pair_sel) {
  double s = 1.0;
  for (size_t i : left_set) {
    for (size_t j : right_set) {
      s *= pair_sel[i][j];
    }
  }
  return s;
}

}  // namespace sbon::query

#ifndef SBON_QUERY_STATS_H_
#define SBON_QUERY_STATS_H_

#include <cstddef>
#include <vector>

namespace sbon::query {

/// Rate model for stream operators.
///
/// The cost the paper optimizes is *data in transit* (rate x latency), so
/// the only statistics the optimizer needs are per-edge data rates. We use
/// the standard windowed symmetric-join model: each arrival on one input
/// probes the tuples that arrived on the other input within the window.
///
///   out_rate = selectivity * (rA * (rB * W) + rB * (rA * W))
///            = 2 * selectivity * rA * rB * W
///
/// Selections thin rates multiplicatively; aggregates scale by a factor.

/// Output tuple rate of a select with `selectivity` over input rate `r`.
double SelectOutputRate(double r, double selectivity);

/// Output tuple rate of a windowed join (tuples/s).
double JoinOutputRate(double r_left, double r_right, double selectivity,
                      double window_s);

/// Output tuple size of a join (concatenated payloads).
double JoinOutputTupleSize(double size_left, double size_right);

/// Combined join selectivity between two stream sets, given the pairwise
/// selectivity matrix of the join graph: the product of the pairwise
/// selectivities across the cut (1.0 entries mean "no predicate" /
/// cross-product-free join graphs keep those at 1).
double CrossSelectivity(const std::vector<size_t>& left_set,
                        const std::vector<size_t>& right_set,
                        const std::vector<std::vector<double>>& pair_sel);

}  // namespace sbon::query

#endif  // SBON_QUERY_STATS_H_

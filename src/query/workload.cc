#include "query/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sbon::query {

Catalog RandomCatalog(const WorkloadParams& params,
                      const std::vector<NodeId>& producer_sites, Rng* rng) {
  assert(!producer_sites.empty());
  Catalog catalog;
  for (size_t i = 0; i < params.num_streams; ++i) {
    const double rate = std::min(
        rng->Pareto(params.rate_pareto_xm, params.rate_pareto_alpha),
        params.rate_cap);
    const double size =
        rng->Uniform(params.tuple_size_min, params.tuple_size_max);
    const NodeId producer =
        producer_sites[rng->UniformInt(producer_sites.size())];
    catalog.AddStream(IndexedStreamName(i), rate, size, producer);
  }
  return catalog;
}

QuerySpec RandomQuery(const WorkloadParams& params, const Catalog& catalog,
                      const std::vector<NodeId>& consumer_sites, Rng* rng) {
  assert(!consumer_sites.empty());
  assert(catalog.NumStreams() >= params.min_streams_per_query);
  const size_t hi =
      std::min(params.max_streams_per_query, catalog.NumStreams());
  const size_t lo = std::min(params.min_streams_per_query, hi);
  const size_t k = static_cast<size_t>(
      rng->UniformInt(static_cast<int64_t>(lo), static_cast<int64_t>(hi)));

  QuerySpec q;
  q.consumer = consumer_sites[rng->UniformInt(consumer_sites.size())];
  for (size_t idx : rng->SampleWithoutReplacement(catalog.NumStreams(), k)) {
    q.streams.push_back(static_cast<StreamId>(idx));
  }
  q.join_window_s = params.join_window_s;

  q.filter_sel.assign(k, 1.0);
  for (size_t i = 0; i < k; ++i) {
    if (rng->Bernoulli(params.filter_prob)) {
      q.filter_sel[i] =
          rng->Uniform(params.filter_sel_min, params.filter_sel_max);
    }
  }

  JoinGraphShape shape = JoinGraphShape::kChain;
  if (!rng->Bernoulli(params.chain_prob)) {
    shape = rng->Bernoulli(0.5) ? JoinGraphShape::kStar
                                : JoinGraphShape::kClique;
  }
  auto draw_sel = [&]() {
    const double log10s =
        rng->Uniform(params.join_sel_log10_min, params.join_sel_log10_max);
    return std::pow(10.0, log10s);
  };
  q.join_sel.assign(k, std::vector<double>(k, 1.0));
  auto set_pair = [&](size_t i, size_t j) {
    const double s = draw_sel();
    q.join_sel[i][j] = s;
    q.join_sel[j][i] = s;
  };
  switch (shape) {
    case JoinGraphShape::kChain:
      for (size_t i = 0; i + 1 < k; ++i) set_pair(i, i + 1);
      break;
    case JoinGraphShape::kStar:
      for (size_t i = 1; i < k; ++i) set_pair(0, i);
      break;
    case JoinGraphShape::kClique:
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = i + 1; j < k; ++j) set_pair(i, j);
      }
      break;
  }

  if (rng->Bernoulli(params.aggregate_prob)) {
    q.aggregate_factor = rng->Uniform(params.aggregate_factor_min,
                                      params.aggregate_factor_max);
  }
  return q;
}

}  // namespace sbon::query

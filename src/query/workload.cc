#include "query/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace sbon::query {

namespace {

bool IsProb(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

Status ValidateWorkloadParams(const WorkloadParams& p) {
  if (p.num_streams == 0) {
    return Status::InvalidArgument("num_streams must be >= 1");
  }
  if (!(p.rate_pareto_xm > 0.0)) {
    return Status::InvalidArgument("rate_pareto_xm must be > 0");
  }
  if (!(p.rate_pareto_alpha > 0.0)) {
    return Status::InvalidArgument("rate_pareto_alpha must be > 0");
  }
  if (!(p.rate_cap >= p.rate_pareto_xm)) {
    return Status::InvalidArgument("rate_cap must be >= rate_pareto_xm");
  }
  if (!(p.tuple_size_min > 0.0) || p.tuple_size_min > p.tuple_size_max) {
    return Status::InvalidArgument(
        "tuple size bounds need 0 < min <= max");
  }
  if (p.min_streams_per_query == 0 ||
      p.min_streams_per_query > p.max_streams_per_query) {
    return Status::InvalidArgument(
        "streams per query need 1 <= min <= max");
  }
  if (p.join_sel_log10_min > p.join_sel_log10_max ||
      p.join_sel_log10_max > 0.0) {
    // log10(selectivity) <= 0 keeps every drawn selectivity in (0, 1].
    return Status::InvalidArgument(
        "join selectivity exponents need min <= max <= 0");
  }
  if (!IsProb(p.chain_prob) || !IsProb(p.filter_prob) ||
      !IsProb(p.aggregate_prob)) {
    return Status::InvalidArgument(
        "chain/filter/aggregate probabilities must be in [0, 1]");
  }
  if (!(p.filter_sel_min > 0.0) || p.filter_sel_min > p.filter_sel_max ||
      p.filter_sel_max > 1.0) {
    return Status::InvalidArgument(
        "filter selectivity bounds need 0 < min <= max <= 1");
  }
  if (!(p.aggregate_factor_min > 0.0) ||
      p.aggregate_factor_min > p.aggregate_factor_max ||
      p.aggregate_factor_max > 1.0) {
    return Status::InvalidArgument(
        "aggregate factor bounds need 0 < min <= max <= 1");
  }
  if (!(p.join_window_s > 0.0)) {
    return Status::InvalidArgument("join_window_s must be > 0");
  }
  return Status::OK();
}

StatusOr<Catalog> MakeRandomCatalog(const WorkloadParams& params,
                                    const std::vector<NodeId>& producer_sites,
                                    Rng* rng) {
  Status st = ValidateWorkloadParams(params);
  if (!st.ok()) return st;
  if (producer_sites.empty()) {
    return Status::FailedPrecondition("no producer sites to pin streams to");
  }
  Catalog catalog;
  for (size_t i = 0; i < params.num_streams; ++i) {
    const double rate = std::min(
        rng->Pareto(params.rate_pareto_xm, params.rate_pareto_alpha),
        params.rate_cap);
    const double size =
        rng->Uniform(params.tuple_size_min, params.tuple_size_max);
    const NodeId producer =
        producer_sites[rng->UniformInt(producer_sites.size())];
    catalog.AddStream(IndexedStreamName(i), rate, size, producer);
  }
  return catalog;
}

StatusOr<QuerySpec> MakeRandomQuery(const WorkloadParams& params,
                                    const Catalog& catalog,
                                    const std::vector<NodeId>& consumer_sites,
                                    Rng* rng) {
  Status st = ValidateWorkloadParams(params);
  if (!st.ok()) return st;
  if (consumer_sites.empty()) {
    return Status::FailedPrecondition("no consumer sites to deliver to");
  }
  if (catalog.NumStreams() < params.min_streams_per_query) {
    return Status::FailedPrecondition(
        "catalog has fewer streams than min_streams_per_query");
  }
  const size_t hi =
      std::min(params.max_streams_per_query, catalog.NumStreams());
  const size_t lo = std::min(params.min_streams_per_query, hi);
  const size_t k = static_cast<size_t>(
      rng->UniformInt(static_cast<int64_t>(lo), static_cast<int64_t>(hi)));

  QuerySpec q;
  q.consumer = consumer_sites[rng->UniformInt(consumer_sites.size())];
  for (size_t idx : rng->SampleWithoutReplacement(catalog.NumStreams(), k)) {
    q.streams.push_back(static_cast<StreamId>(idx));
  }
  q.join_window_s = params.join_window_s;

  q.filter_sel.assign(k, 1.0);
  for (size_t i = 0; i < k; ++i) {
    if (rng->Bernoulli(params.filter_prob)) {
      q.filter_sel[i] =
          rng->Uniform(params.filter_sel_min, params.filter_sel_max);
    }
  }

  JoinGraphShape shape = JoinGraphShape::kChain;
  if (!rng->Bernoulli(params.chain_prob)) {
    shape = rng->Bernoulli(0.5) ? JoinGraphShape::kStar
                                : JoinGraphShape::kClique;
  }
  auto draw_sel = [&]() {
    const double log10s =
        rng->Uniform(params.join_sel_log10_min, params.join_sel_log10_max);
    return std::pow(10.0, log10s);
  };
  q.join_sel.assign(k, std::vector<double>(k, 1.0));
  auto set_pair = [&](size_t i, size_t j) {
    const double s = draw_sel();
    q.join_sel[i][j] = s;
    q.join_sel[j][i] = s;
  };
  switch (shape) {
    case JoinGraphShape::kChain:
      for (size_t i = 0; i + 1 < k; ++i) set_pair(i, i + 1);
      break;
    case JoinGraphShape::kStar:
      for (size_t i = 1; i < k; ++i) set_pair(0, i);
      break;
    case JoinGraphShape::kClique:
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = i + 1; j < k; ++j) set_pair(i, j);
      }
      break;
  }

  if (rng->Bernoulli(params.aggregate_prob)) {
    q.aggregate_factor = rng->Uniform(params.aggregate_factor_min,
                                      params.aggregate_factor_max);
  }
  return q;
}

Catalog RandomCatalog(const WorkloadParams& params,
                      const std::vector<NodeId>& producer_sites, Rng* rng) {
  auto catalog = MakeRandomCatalog(params, producer_sites, rng);
  if (!catalog.ok()) {
    std::fprintf(stderr, "RandomCatalog: %s\n",
                 catalog.status().message().c_str());
    std::abort();
  }
  return std::move(catalog.value());
}

QuerySpec RandomQuery(const WorkloadParams& params, const Catalog& catalog,
                      const std::vector<NodeId>& consumer_sites, Rng* rng) {
  auto spec = MakeRandomQuery(params, catalog, consumer_sites, rng);
  if (!spec.ok()) {
    std::fprintf(stderr, "RandomQuery: %s\n",
                 spec.status().message().c_str());
    std::abort();
  }
  return std::move(spec.value());
}

}  // namespace sbon::query

#ifndef SBON_QUERY_WORKLOAD_H_
#define SBON_QUERY_WORKLOAD_H_

#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "query/catalog.h"
#include "query/query_spec.h"

namespace sbon::query {

/// Shape of a random query's join graph.
enum class JoinGraphShape {
  kChain,  ///< s0 - s1 - s2 - ... (predicates between neighbors only)
  kStar,   ///< s0 joined with every other stream
  kClique, ///< predicates between every pair
};

/// Parameters of the synthetic workload generator. Defaults model a sensor
/// network / continuous query mix: heavy-tailed stream rates, selective join
/// predicates, occasional filters and aggregates.
struct WorkloadParams {
  // --- catalog ---
  size_t num_streams = 40;
  double rate_pareto_xm = 10.0;     ///< tuples/s scale
  double rate_pareto_alpha = 1.6;   ///< tail index (heavy tail)
  double rate_cap = 2000.0;         ///< clamp for stability
  double tuple_size_min = 32.0;
  double tuple_size_max = 512.0;

  // --- queries ---
  size_t min_streams_per_query = 2;
  size_t max_streams_per_query = 5;
  double join_sel_log10_min = -5.0;  ///< selectivity in [1e-5, 1e-2]
  double join_sel_log10_max = -2.0;
  double chain_prob = 0.5;           ///< else star/clique split evenly
  double filter_prob = 0.4;          ///< chance a stream gets a filter
  double filter_sel_min = 0.05;
  double filter_sel_max = 0.8;
  double aggregate_prob = 0.3;
  double aggregate_factor_min = 0.01;
  double aggregate_factor_max = 0.2;
  double join_window_s = 1.0;
};

/// Rejects parameter combinations the generator would silently mangle:
/// probabilities outside [0, 1], inverted min/max pairs, non-positive
/// Pareto scale/tail or join window, selectivities outside (0, 1].
Status ValidateWorkloadParams(const WorkloadParams& params);

/// Populates a catalog with random streams pinned to random nodes drawn
/// from `producer_sites` (typically the overlay-eligible nodes of the
/// topology). Fails (without drawing from `rng`) on invalid params or an
/// empty site list.
StatusOr<Catalog> MakeRandomCatalog(const WorkloadParams& params,
                                    const std::vector<NodeId>& producer_sites,
                                    Rng* rng);

/// Draws one random query over distinct catalog streams, delivered to a
/// consumer drawn from `consumer_sites`. Fails (without drawing from `rng`)
/// on invalid params, an empty site list, or a catalog smaller than
/// `min_streams_per_query`.
StatusOr<QuerySpec> MakeRandomQuery(const WorkloadParams& params,
                                    const Catalog& catalog,
                                    const std::vector<NodeId>& consumer_sites,
                                    Rng* rng);

/// Abort-on-error conveniences over the Make* factories, for generators in
/// tests/benches where the inputs are constants and a Status would be
/// unwrapped on the next line anyway. Unlike the old assert-only guards,
/// these stay loud in Release builds (no silent garbage indexing).
Catalog RandomCatalog(const WorkloadParams& params,
                      const std::vector<NodeId>& producer_sites, Rng* rng);
QuerySpec RandomQuery(const WorkloadParams& params, const Catalog& catalog,
                      const std::vector<NodeId>& consumer_sites, Rng* rng);

}  // namespace sbon::query

#endif  // SBON_QUERY_WORKLOAD_H_

#include "query/workload_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string_view>
#include <utility>

namespace sbon::query {

namespace {

constexpr double kPi = 3.14159265358979323846;

double NsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

Status ValidateOptions(const WorkloadEngineOptions& o) {
  Status st = ValidateWorkloadParams(o.workload);
  if (!st.ok()) return st;
  const ArrivalProcess& a = o.arrivals;
  if (!(a.base_rate_per_epoch >= 0.0)) {
    return Status::InvalidArgument("base_rate_per_epoch must be >= 0");
  }
  if (a.diurnal_amplitude < 0.0 || a.diurnal_amplitude >= 1.0) {
    // Amplitude 1 would zero the rate at the trough; beyond it the "rate"
    // goes negative. Keep the modulated curve strictly positive.
    return Status::InvalidArgument("diurnal_amplitude must be in [0, 1)");
  }
  if (!(a.mean_lifetime_epochs > 0.0)) {
    return Status::InvalidArgument("mean_lifetime_epochs must be > 0");
  }
  for (const FlashCrowd& w : a.flash_crowds) {
    if (!(w.rate_multiplier >= 0.0)) {
      return Status::InvalidArgument("flash rate_multiplier must be >= 0");
    }
    if (!(w.hotspot_site_frac > 0.0) || w.hotspot_site_frac > 1.0) {
      return Status::InvalidArgument(
          "flash hotspot_site_frac must be in (0, 1]");
    }
  }
  const AdmissionControl& c = o.admission;
  if (!(c.node_saturation_load > 0.0) || c.node_saturation_load > 1.0) {
    return Status::InvalidArgument(
        "node_saturation_load must be in (0, 1]");
  }
  if (c.saturated_node_watermark < 0.0 || c.saturated_node_watermark > 1.0) {
    return Status::InvalidArgument(
        "saturated_node_watermark must be in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

WorkloadEngine::WorkloadEngine(engine::StreamEngine* engine,
                               WorkloadEngineOptions options)
    : engine_(engine), options_(std::move(options)), rng_(options_.seed) {
  totals_.name = "total";
  phases_.push_back(WorkloadPhaseStats{});
  phases_.back().name = "steady";
}

StatusOr<std::unique_ptr<WorkloadEngine>> WorkloadEngine::Create(
    engine::StreamEngine* engine, WorkloadEngineOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  Status st = ValidateOptions(options);
  if (!st.ok()) return st;
  if (engine->sbon().overlay_nodes().empty()) {
    return Status::FailedPrecondition("overlay has no alive nodes");
  }
  std::unique_ptr<WorkloadEngine> wl(
      new WorkloadEngine(engine, std::move(options)));
  wl->consumer_sites_ = engine->sbon().overlay_nodes();
  // Catalog and hotspot ordering come from the same private Rng that later
  // drives arrivals — draw order is part of the replay contract.
  auto catalog = MakeRandomCatalog(wl->options_.workload, wl->consumer_sites_,
                                   &wl->rng_);
  if (!catalog.ok()) return catalog.status();
  engine->SetCatalog(std::move(catalog.value()));
  wl->shuffled_sites_ = wl->consumer_sites_;
  wl->rng_.Shuffle(&wl->shuffled_sites_);
  return wl;
}

void WorkloadEngine::BeginPhase(std::string name) {
  WorkloadPhaseStats& cur = current_phase();
  if (cur.epochs == 0 && cur.arrivals == 0) {
    // Nothing billed yet: rename in place instead of leaving an empty row.
    cur.name = std::move(name);
    return;
  }
  phases_.push_back(WorkloadPhaseStats{});
  phases_.back().name = std::move(name);
}

double WorkloadEngine::ArrivalRateAt(size_t epoch) const {
  const ArrivalProcess& a = options_.arrivals;
  double rate = a.base_rate_per_epoch;
  if (a.diurnal_amplitude > 0.0 && a.diurnal_period_epochs > 0) {
    const double t = static_cast<double>(epoch) /
                     static_cast<double>(a.diurnal_period_epochs);
    rate *= 1.0 + a.diurnal_amplitude * std::sin(2.0 * kPi * t);
  }
  for (const FlashCrowd& w : a.flash_crowds) {
    if (epoch >= w.start_epoch && epoch < w.start_epoch + w.duration_epochs) {
      rate *= w.rate_multiplier;
    }
  }
  return std::max(rate, 0.0);
}

bool WorkloadEngine::InFlashCrowd(size_t epoch) const {
  for (const FlashCrowd& w : options_.arrivals.flash_crowds) {
    if (epoch >= w.start_epoch && epoch < w.start_epoch + w.duration_epochs) {
      return true;
    }
  }
  return false;
}

size_t WorkloadEngine::SamplePoisson(double mean) {
  if (mean <= 0.0) return 0;
  size_t n = 0;
  // Poisson(a + b) = Poisson(a) + Poisson(b): split big means so the
  // exp(-mean) comparison floor below never underflows to 0 (which would
  // spin the product loop forever around mean ~708).
  while (mean > 500.0) {
    n += SamplePoisson(500.0);
    mean -= 500.0;
  }
  const double floor = std::exp(-mean);
  double product = 1.0;
  size_t k = 0;
  do {
    ++k;
    product *= rng_.NextDouble();
  } while (product > floor);
  return n + (k - 1);
}

void WorkloadEngine::Bill(
    const std::function<void(WorkloadPhaseStats&)>& fn) {
  fn(current_phase());
  fn(totals_);
}

void WorkloadEngine::ProcessDepartures() {
  if (departures_.empty() || departures_.top().epoch > epoch_index_) return;
  // One deferred refresh for the whole burst: a departure wave on a
  // refresh_index_on_install engine republishes the index once, not once
  // per removed query.
  engine::StreamEngine::DeferRefresh defer(engine_);
  size_t removed = 0;
  while (!departures_.empty() && departures_.top().epoch <= epoch_index_) {
    const Departure due = departures_.top();
    departures_.pop();
    // NotFound = churn already dropped the query; its exit was billed as a
    // drop (repair_stats), not a departure.
    if (engine_->Remove(due.handle).ok()) ++removed;
  }
  Bill([&](WorkloadPhaseStats& s) { s.departures += removed; });
}

Status WorkloadEngine::Step() {
  const size_t t = epoch_index_;

  // Stage 1: the engine epoch (network/load/coords/churn/refresh). Repair
  // latency is billed per repaired query from the pipeline's own stage
  // clock, so it composes with any exec mode.
  const engine::RepairStats repairs_before = engine_->repair_stats();
  Status st = engine_->AdvanceEpoch(options_.epoch);
  if (!st.ok()) return st;
  const size_t repaired =
      engine_->repair_stats().queries_repaired - repairs_before.queries_repaired;
  if (repaired > 0) {
    for (const engine::EpochStageTrace& stage : engine_->last_epoch_trace()) {
      if (stage.ran && std::string_view(stage.name) == "churn+repair") {
        Bill([&](WorkloadPhaseStats& s) {
          s.repair_ns.AddRepeated(stage.ns / static_cast<double>(repaired),
                                  repaired);
        });
        break;
      }
    }
  }

  // Stage 2: lifetime-expired queries leave.
  ProcessDepartures();

  // Stage 3: open-loop arrivals. The offered count never depends on system
  // state (that is what makes overload reachable); what gets *admitted*
  // does, via the load-book watermark and the running-query cap.
  const size_t offered = SamplePoisson(ArrivalRateAt(t));
  Bill([&](WorkloadPhaseStats& s) {
    ++s.epochs;
    s.arrivals += offered;
  });
  if (offered > 0) {
    const AdmissionControl& adm = options_.admission;
    const bool saturated =
        engine_->sbon().SaturatedFraction(adm.node_saturation_load) >=
        adm.saturated_node_watermark;
    size_t capacity = offered;
    if (saturated) {
      capacity = 0;
    } else if (adm.max_running_queries > 0) {
      const size_t running_now = running();
      capacity = adm.max_running_queries > running_now
                     ? std::min(offered,
                                adm.max_running_queries - running_now)
                     : 0;
    }
    const size_t shed = offered - capacity;

    // Flash-crowd arrivals converge on the window's hotspot prefix.
    const std::vector<NodeId>* sites = &consumer_sites_;
    std::vector<NodeId> hotspot;
    for (const FlashCrowd& w : options_.arrivals.flash_crowds) {
      if (t >= w.start_epoch && t < w.start_epoch + w.duration_epochs) {
        const size_t k = std::max<size_t>(
            1, static_cast<size_t>(std::ceil(
                   w.hotspot_site_frac *
                   static_cast<double>(shuffled_sites_.size()))));
        hotspot.assign(shuffled_sites_.begin(),
                       shuffled_sites_.begin() +
                           std::min(k, shuffled_sites_.size()));
        sites = &hotspot;
        break;
      }
    }

    // Generate the admitted batch; each spec's lifetime is drawn right
    // after the spec itself, keeping the Rng stream a pure function of the
    // admitted count.
    std::vector<QuerySpec> batch;
    std::vector<size_t> depart_epochs;
    batch.reserve(capacity);
    depart_epochs.reserve(capacity);
    size_t generation_failures = 0;
    for (size_t i = 0; i < capacity; ++i) {
      auto spec =
          MakeRandomQuery(options_.workload, engine_->catalog(), *sites, &rng_);
      const double lifetime =
          rng_.Exponential(1.0 / options_.arrivals.mean_lifetime_epochs);
      if (!spec.ok()) {
        // Unreachable after Create's validation, but never silent.
        ++generation_failures;
        continue;
      }
      batch.push_back(std::move(spec.value()));
      depart_epochs.push_back(t + 1 + static_cast<size_t>(lifetime));
    }

    size_t submitted = 0, reuse_hits = 0, services_reused = 0;
    double batch_ns = 0.0;
    if (!batch.empty()) {
      const auto start = std::chrono::steady_clock::now();
      const std::vector<StatusOr<engine::QueryHandle>> handles =
          engine_->SubmitAll(batch, options_.strategy);
      batch_ns = NsSince(start);
      for (size_t i = 0; i < handles.size(); ++i) {
        if (!handles[i].ok()) continue;
        ++submitted;
        departures_.push(
            Departure{depart_epochs[i], next_seq_++, handles[i].value()});
        const core::OptimizeResult* result =
            engine_->ResultOf(handles[i].value());
        if (result != nullptr && result->services_reused > 0) {
          ++reuse_hits;
          services_reused += result->services_reused;
        }
      }
    }
    const size_t failures =
        generation_failures + (batch.size() - submitted);
    Bill([&](WorkloadPhaseStats& s) {
      s.shed += shed;
      s.admitted += capacity;
      s.submitted += submitted;
      s.submit_failures += failures;
      s.reuse_hits += reuse_hits;
      s.services_reused += services_reused;
      if (!batch.empty()) {
        s.placement_ns.AddRepeated(
            batch_ns / static_cast<double>(batch.size()), batch.size());
      }
    });
  }

  ++epoch_index_;
  return Status::OK();
}

Status WorkloadEngine::Run(size_t n) {
  for (size_t i = 0; i < n; ++i) {
    Status st = Step();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace sbon::query

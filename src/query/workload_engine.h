#ifndef SBON_QUERY_WORKLOAD_ENGINE_H_
#define SBON_QUERY_WORKLOAD_ENGINE_H_

#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/quantile.h"
#include "common/rng.h"
#include "common/status.h"
#include "engine/stream_engine.h"
#include "query/workload.h"

namespace sbon::query {

/// One scripted overload window: while active, the arrival rate is
/// multiplied and new arrivals are delivered to a small "hotspot" subset of
/// the consumer sites (a crowd converging on one corner of the overlay),
/// instead of spreading uniformly.
struct FlashCrowd {
  size_t start_epoch = 0;
  size_t duration_epochs = 0;
  /// Multiplies the (diurnally modulated) base rate while the window is
  /// active. > 1 for a crowd; exactly 1.0 is a no-op window.
  double rate_multiplier = 4.0;
  /// Fraction of the consumer sites the crowd converges on (ceil'd to at
  /// least one site), drawn as a seeded fixed subset at Create.
  double hotspot_site_frac = 0.05;
};

/// The open-loop arrival side of the workload: queries arrive whether or
/// not the system keeps up (that is the point — a closed loop can never
/// overload itself), live for an exponential number of epochs, then leave.
struct ArrivalProcess {
  /// Poisson mean arrivals per epoch before modulation.
  double base_rate_per_epoch = 8.0;
  /// Diurnal modulation: rate(t) = base * (1 + amplitude * sin(2*pi*t/T)).
  /// amplitude in [0, 1); 0 (or period 0) disables the cycle.
  double diurnal_amplitude = 0.0;
  size_t diurnal_period_epochs = 0;
  /// Mean exponential query lifetime in epochs (> 0); a query admitted at
  /// epoch t departs at t + 1 + floor(Exp(1/mean)).
  double mean_lifetime_epochs = 16.0;
  std::vector<FlashCrowd> flash_crowds;
};

/// Load shedding policy: arrivals beyond what the overlay can absorb are
/// counted and dropped *before* any optimizer work, instead of thrashing
/// the placement machinery into pathological deployments.
struct AdmissionControl {
  /// Hard cap on concurrently running engine queries (0 = unbounded).
  size_t max_running_queries = 0;
  /// A node is "saturated" when its total load reaches this value.
  double node_saturation_load = 0.95;
  /// Shed all arrivals of an epoch while the saturated fraction of alive
  /// overlay nodes is at or above this watermark (1.0 effectively disables
  /// the load-book gate; the query cap still applies).
  double saturated_node_watermark = 0.25;
};

struct WorkloadEngineOptions {
  /// Generator shape for the catalog built at Create and every arrival.
  WorkloadParams workload;
  ArrivalProcess arrivals;
  AdmissionControl admission;
  /// Template for the AdvanceEpoch each Step runs first. `epoch.churn` may
  /// point at a ChurnModel to compose failures with the arrival process.
  engine::EpochOptions epoch;
  /// Strategy forwarded to every Submit (empty = engine defaults).
  engine::StrategySpec strategy;
  /// Seeds the engine-independent private Rng: all arrival-count, spec,
  /// and lifetime draws come from it in a fixed order, so a fixed seed
  /// replays bit-identically at any epoch thread count.
  uint64_t seed = 1;
};

/// Counters and latency digests for one measurement phase (the bench cuts
/// the soak into steady / flash-crowd / recovery) and for the whole run.
struct WorkloadPhaseStats {
  std::string name;
  size_t epochs = 0;
  size_t arrivals = 0;    ///< open-loop offered queries
  size_t shed = 0;        ///< dropped by admission control (counted!)
  size_t admitted = 0;    ///< arrivals - shed (reached the optimizer)
  size_t submitted = 0;   ///< deployments that succeeded
  size_t submit_failures = 0;
  size_t departures = 0;  ///< lifetime-expired queries removed
  size_t reuse_hits = 0;  ///< submitted queries that reused >= 1 instance
  size_t services_reused = 0;
  /// Amortized per-query submit latency (batch wall time / batch size) —
  /// what a client waits for its handle.
  LatencyDigest placement_ns;
  /// Per-repaired-query churn+repair stage latency (churn epochs only).
  LatencyDigest repair_ns;

  double shed_rate() const {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(shed) /
                               static_cast<double>(arrivals);
  }
  double reuse_hit_rate() const {
    return submitted == 0 ? 0.0
                          : static_cast<double>(reuse_hits) /
                                static_cast<double>(submitted);
  }
};

/// Open-loop workload driver over a StreamEngine (the ROADMAP's "heavy
/// traffic from millions of users" made measurable): each Step advances one
/// engine epoch, retires lifetime-expired queries under a single deferred
/// index refresh, draws this epoch's Poisson arrival count from the
/// composed rate curve (base x diurnal x flash-crowd), sheds what admission
/// control refuses, and batch-submits the rest — accumulating SLO
/// percentiles in O(1) memory however long the soak runs.
///
/// Deterministic replay: every random draw comes from the engine's seeded
/// substrate Rngs or this driver's private Rng, in stage order, so a fixed
/// (seed, options) pair yields bit-identical overlay state and counters at
/// any `epoch.threads` — the property the 5-seed replay test pins.
class WorkloadEngine {
 public:
  /// Validates options, seeds the generator, builds a fresh catalog over
  /// the currently alive overlay nodes, and installs it on `engine` (which
  /// must outlive the WorkloadEngine and have no prior catalog dependents).
  static StatusOr<std::unique_ptr<WorkloadEngine>> Create(
      engine::StreamEngine* engine, WorkloadEngineOptions options);

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  /// Runs one epoch: AdvanceEpoch -> departures -> arrivals (admission,
  /// generation, batched submit). Fails only if AdvanceEpoch does.
  Status Step();
  /// Convenience soak: `n` Steps, stopping at the first failure.
  Status Run(size_t n);

  /// Starts a new named accounting phase; subsequent Steps bill into it.
  /// Phases are contiguous spans — the previous phase is closed for good.
  void BeginPhase(std::string name);

  size_t epoch() const { return epoch_index_; }
  /// Queries alive right now (arrivals minus departures/churn drops).
  size_t running() const { return engine_->NumQueries(); }
  /// The deterministic composed rate curve (before admission), exposed so
  /// tests and benches can introspect the schedule without re-deriving it.
  double ArrivalRateAt(size_t epoch) const;
  /// True while `epoch` falls inside any flash-crowd window.
  bool InFlashCrowd(size_t epoch) const;

  /// Whole-run accounting (name "total").
  const WorkloadPhaseStats& totals() const { return totals_; }
  /// Per-phase accounting in BeginPhase order (one implicit "steady" phase
  /// when BeginPhase was never called).
  const std::vector<WorkloadPhaseStats>& phases() const { return phases_; }

  const engine::StreamEngine& engine() const { return *engine_; }

 private:
  WorkloadEngine(engine::StreamEngine* engine, WorkloadEngineOptions options);

  /// A query's scheduled exit: min-heap keyed on (epoch, submission seq) so
  /// departure order is deterministic and FIFO within an epoch.
  struct Departure {
    size_t epoch = 0;
    uint64_t seq = 0;
    engine::QueryHandle handle;
    bool operator>(const Departure& o) const {
      return epoch != o.epoch ? epoch > o.epoch : seq > o.seq;
    }
  };

  /// Retires every departure due at `epoch_index_` under one DeferRefresh
  /// scope (a burst of removals republishes the index once).
  void ProcessDepartures();
  /// Poisson(mean) via Knuth's product method, split so the exp(-mean)
  /// floor never underflows at flash-crowd rates.
  size_t SamplePoisson(double mean);
  /// Both accounting rows a Step updates (current phase + totals).
  void Bill(const std::function<void(WorkloadPhaseStats&)>& fn);
  WorkloadPhaseStats& current_phase() { return phases_.back(); }

  engine::StreamEngine* engine_;
  WorkloadEngineOptions options_;
  Rng rng_;
  size_t epoch_index_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<NodeId> consumer_sites_;  ///< alive overlay nodes at Create
  /// Seeded shuffled copy of consumer_sites_; a flash window's hotspot is
  /// the ceil(hotspot_site_frac * size) prefix of this ordering.
  std::vector<NodeId> shuffled_sites_;
  std::priority_queue<Departure, std::vector<Departure>,
                      std::greater<Departure>>
      departures_;
  WorkloadPhaseStats totals_;
  std::vector<WorkloadPhaseStats> phases_;
};

}  // namespace sbon::query

#endif  // SBON_QUERY_WORKLOAD_ENGINE_H_

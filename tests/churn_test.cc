// Churn & failure-injection subsystem: net::ChurnModel schedules, overlay
// FailNode/RejoinNode/partition semantics (eviction, load-delta reversal,
// ring Leave/Join, orphan reporting), and the engine's handle-stable repair
// plan. Ends with a quick ScenarioMatrix subset — the default-suite slice of
// the stress sweep (full sweep: stress_matrix_test.cc, label `stress`).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "engine/stream_engine.h"
#include "harness/fixtures.h"
#include "harness/scenario_matrix.h"
#include "net/churn.h"
#include "query/enumerate.h"

namespace sbon::test {
namespace {

using net::ChurnEvent;
using net::ChurnEventType;
using net::ChurnModel;

std::vector<NodeId> Nodes(size_t n) {
  std::vector<NodeId> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<NodeId>(i);
  return out;
}

ChurnEvent Crash(NodeId n) {
  ChurnEvent ev;
  ev.type = ChurnEventType::kCrash;
  ev.node = n;
  return ev;
}

ChurnEvent Rejoin(NodeId n) {
  ChurnEvent ev;
  ev.type = ChurnEventType::kRejoin;
  ev.node = n;
  return ev;
}

// --- ChurnModel -----------------------------------------------------------

TEST(ChurnModelTest, ZeroRatesEmitNothingAndDrawNothing) {
  ChurnModel model(Nodes(16), ChurnModel::Params{});
  for (int e = 0; e < 10; ++e) {
    EXPECT_TRUE(model.Step().empty());
  }
  EXPECT_EQ(model.NumDown(), 0u);
  EXPECT_EQ(model.epoch(), 10u);
}

TEST(ChurnModelTest, ScriptedEventsFireAtExactEpochsInOrder) {
  ChurnModel model(Nodes(8), ChurnModel::Params{});
  model.ScheduleAt(1, Crash(3));
  model.ScheduleAt(1, Crash(5));
  model.ScheduleAt(4, Rejoin(3));

  EXPECT_TRUE(model.Step().empty());  // epoch 0
  auto events = model.Step();         // epoch 1
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, ChurnEventType::kCrash);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_EQ(events[1].node, 5u);
  EXPECT_TRUE(model.IsDown(3));
  EXPECT_TRUE(model.IsDown(5));
  EXPECT_EQ(model.NumDown(), 2u);

  EXPECT_TRUE(model.Step().empty());  // epoch 2
  EXPECT_TRUE(model.Step().empty());  // epoch 3
  events = model.Step();              // epoch 4
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, ChurnEventType::kRejoin);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_FALSE(model.IsDown(3));
  EXPECT_TRUE(model.IsDown(5));  // scripted crash: down until scripted rejoin
}

TEST(ChurnModelTest, InvalidScriptedEventsAreDropped) {
  ChurnModel model(Nodes(4), ChurnModel::Params{});
  model.ScheduleAt(0, Crash(2));
  model.ScheduleAt(0, Crash(2));    // duplicate crash
  model.ScheduleAt(0, Rejoin(1));   // rejoin of an up node
  model.ScheduleAt(0, Crash(99));   // not eligible
  const auto events = model.Step();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 2u);
}

TEST(ChurnModelTest, PoissonScheduleIsDeterministicPerSeed) {
  ChurnModel::Params params;
  params.crash_rate = 0.8;
  params.mean_downtime_epochs = 3.0;
  params.seed = 77;
  ChurnModel a(Nodes(32), params), b(Nodes(32), params);
  for (int e = 0; e < 50; ++e) {
    const auto ea = a.Step();
    const auto eb = b.Step();
    ASSERT_EQ(ea.size(), eb.size()) << "epoch " << e;
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].type, eb[i].type);
      EXPECT_EQ(ea[i].node, eb[i].node);
    }
  }
  // A different seed must diverge somewhere over 50 epochs at this rate.
  params.seed = 78;
  ChurnModel c(Nodes(32), params);
  bool diverged = false;
  ChurnModel d(Nodes(32), {.crash_rate = 0.8, .mean_downtime_epochs = 3.0,
                           .seed = 77});
  for (int e = 0; e < 50 && !diverged; ++e) {
    const auto ec = c.Step();
    const auto ed = d.Step();
    diverged = ec.size() != ed.size();
    for (size_t i = 0; !diverged && i < ec.size(); ++i) {
      diverged = ec[i].node != ed[i].node || ec[i].type != ed[i].type;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(ChurnModelTest, CrashedNodesRejoinAndDownCapHolds) {
  ChurnModel::Params params;
  params.crash_rate = 4.0;  // aggressive
  params.mean_downtime_epochs = 2.0;
  params.max_down_frac = 0.5;
  params.seed = 5;
  ChurnModel model(Nodes(10), params);
  size_t crashes = 0, rejoins = 0;
  for (int e = 0; e < 200; ++e) {
    for (const ChurnEvent& ev : model.Step()) {
      if (ev.type == ChurnEventType::kCrash) ++crashes;
      if (ev.type == ChurnEventType::kRejoin) ++rejoins;
    }
    EXPECT_LE(model.NumDown(), 5u);  // floor(0.5 * 10)
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(rejoins, 0u);
  // Every automatic crash eventually rejoins; after enough quiet epochs the
  // population converges back toward fully up.
  EXPECT_LE(crashes - rejoins, 5u);
}

TEST(ChurnModelTest, PartitionsStartAndHealAutomatically) {
  ChurnModel::Params params;
  params.partition_rate = 1.0;  // start immediately when none active
  params.partition_duration_epochs = 2;
  params.partition_frac = 0.25;
  params.partition_factor = 8.0;
  params.seed = 9;
  ChurnModel model(Nodes(16), params);
  auto events = model.Step();  // epoch 0: start
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, ChurnEventType::kPartitionStart);
  EXPECT_EQ(events[0].group.size(), 4u);
  EXPECT_DOUBLE_EQ(events[0].severity, 8.0);
  EXPECT_TRUE(model.PartitionActive());
  EXPECT_TRUE(model.Step().empty());  // epoch 1: still cut
  events = model.Step();              // epoch 2: heal (+ maybe new start)
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].type, ChurnEventType::kPartitionHeal);
}

// --- Sbon fail/rejoin/partition -------------------------------------------

class SbonChurnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sbon_ = MakeTransitStubSbon(TopologySize::kTiny, 42);
  }

  // Installs a minimal hand-placed circuit: producer a -> service s -> the
  // consumer b, with the service on `host`.
  CircuitId InstallOneServiceCircuit(NodeId host) {
    query::Catalog catalog = TwoStreamCatalog(*sbon_);
    auto spec = query::QuerySpec::SimpleJoin({0, 1},
                                             sbon_->overlay_nodes()[2], 0.01);
    auto plans = query::EnumeratePlans(spec, catalog, {});
    auto circuit = overlay::Circuit::FromPlan(plans.value()[0], catalog);
    for (int v : circuit.value().UnpinnedVertices()) {
      circuit.value().mutable_vertex(v).host = host;
    }
    auto id = sbon_->InstallCircuit(std::move(circuit.value()));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.ok() ? *id : kInvalidCircuit;
  }

  std::unique_ptr<overlay::Sbon> sbon_;
};

TEST_F(SbonChurnTest, FailNodeEvictsServicesAndReportsOrphans) {
  const NodeId host = sbon_->overlay_nodes()[3];
  const CircuitId cid = InstallOneServiceCircuit(host);
  ASSERT_NE(cid, kInvalidCircuit);
  const size_t services_before = sbon_->NumServices();
  ASSERT_GT(services_before, 0u);
  ASSERT_GT(sbon_->ServiceLoad(host), 0.0);

  auto report = sbon_->FailNode(host);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->services_evicted, services_before);
  ASSERT_EQ(report->orphaned.size(), 1u);
  EXPECT_EQ(report->orphaned[0], cid);
  EXPECT_FALSE(sbon_->IsAlive(host));
  // Load deltas reversed: the dead node's book returns exactly to zero.
  EXPECT_EQ(sbon_->ServiceLoad(host), 0.0);
  EXPECT_EQ(sbon_->NumServices(), 0u);
  // Gone from the alive overlay set and from the index.
  const auto& alive = sbon_->overlay_nodes();
  EXPECT_TRUE(std::find(alive.begin(), alive.end(), host) == alive.end());
  EXPECT_EQ(sbon_->index().NumPublished(), alive.size());
  // The circuit remnant is still registered (the engine decides its fate).
  EXPECT_NE(sbon_->FindCircuit(cid), nullptr);
  ASSERT_TRUE(sbon_->RemoveCircuit(cid).ok());
}

TEST_F(SbonChurnTest, FailedPinnedEndpointOrphansWithoutEviction) {
  const NodeId producer = sbon_->overlay_nodes()[0];
  const NodeId service_host = sbon_->overlay_nodes()[4];
  const CircuitId cid = InstallOneServiceCircuit(service_host);
  auto report = sbon_->FailNode(producer);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->services_evicted, 0u);  // nothing hosted on the producer
  ASSERT_EQ(report->orphaned.size(), 1u);
  EXPECT_EQ(report->orphaned[0], cid);
}

TEST_F(SbonChurnTest, FailNodeValidatesItsTarget) {
  EXPECT_EQ(sbon_->FailNode(sbon_->topology().NumNodes()).status().code(),
            StatusCode::kOutOfRange);
  const NodeId host = sbon_->overlay_nodes()[1];
  ASSERT_TRUE(sbon_->FailNode(host).ok());
  EXPECT_EQ(sbon_->FailNode(host).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sbon_->RejoinNode(sbon_->overlay_nodes()[0]).code(),
            StatusCode::kFailedPrecondition);  // already alive
}

TEST_F(SbonChurnTest, RejoinRestoresMembershipAndIndex) {
  const NodeId host = sbon_->overlay_nodes()[2];
  const size_t alive_before = sbon_->overlay_nodes().size();
  ASSERT_TRUE(sbon_->FailNode(host).ok());
  EXPECT_EQ(sbon_->overlay_nodes().size(), alive_before - 1);

  ASSERT_TRUE(sbon_->RejoinNode(host).ok());
  EXPECT_TRUE(sbon_->IsAlive(host));
  const auto& alive = sbon_->overlay_nodes();
  EXPECT_EQ(alive.size(), alive_before);
  EXPECT_TRUE(std::is_sorted(alive.begin(), alive.end()));
  EXPECT_EQ(sbon_->index().NumPublished(), alive.size());
  EXPECT_EQ(sbon_->ServiceLoad(host), 0.0);
  // The rejoined node is findable by coordinate queries again.
  auto nearest = sbon_->index().KNearest(
      sbon_->cost_space().FullCoord(host), 1);
  ASSERT_TRUE(nearest.ok());
  ASSERT_EQ(nearest->size(), 1u);
  EXPECT_EQ((*nearest)[0].node, host);
}

TEST_F(SbonChurnTest, DeadNodesNeverComeBackFromIndexQueries) {
  const NodeId host = sbon_->overlay_nodes()[5];
  ASSERT_TRUE(sbon_->FailNode(host).ok());
  // Probe around the dead node's own coordinate with a wide beam: it must
  // never be returned while down.
  auto matches = sbon_->index().KNearest(sbon_->cost_space().FullCoord(host),
                                         8, 32);
  ASSERT_TRUE(matches.ok());
  for (const auto& m : *matches) EXPECT_NE(m.node, host);
}

TEST_F(SbonChurnTest, InstallAndMigrateRefuseDeadHosts) {
  const NodeId dead = sbon_->overlay_nodes()[3];
  const NodeId live = sbon_->overlay_nodes()[4];
  const CircuitId cid = InstallOneServiceCircuit(live);
  ASSERT_NE(cid, kInvalidCircuit);
  ASSERT_TRUE(sbon_->FailNode(dead).ok());
  // Installing onto the dead node fails without side effects.
  const size_t services_before = sbon_->NumServices();
  auto install = sbon_->InstallCircuit([&] {
    query::Catalog catalog = TwoStreamCatalog(*sbon_);
    auto spec = query::QuerySpec::SimpleJoin({0, 1},
                                             sbon_->overlay_nodes()[2], 0.01);
    auto plans = query::EnumeratePlans(spec, catalog, {});
    auto c = overlay::Circuit::FromPlan(plans.value()[0], catalog);
    for (int v : c.value().UnpinnedVertices()) {
      c.value().mutable_vertex(v).host = dead;
    }
    return std::move(c.value());
  }());
  EXPECT_EQ(install.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sbon_->NumServices(), services_before);
  // Migrating an instance onto the dead node fails too.
  const ServiceInstanceId sid = sbon_->services().begin()->first;
  EXPECT_EQ(sbon_->MigrateService(sid, dead).code(),
            StatusCode::kFailedPrecondition);
}

// Regression pin for MigrateService load-delta accounting: migrating an
// instance around the overlay and then removing its circuit must leave
// every node's service-load book at its base value (zero).
TEST_F(SbonChurnTest, MigrateThenRemoveLeavesLoadBooksAtBase) {
  const NodeId h0 = sbon_->overlay_nodes()[3];
  const CircuitId cid = InstallOneServiceCircuit(h0);
  ASSERT_NE(cid, kInvalidCircuit);

  std::vector<ServiceInstanceId> instances;
  for (const auto& [sid, inst] : sbon_->services()) instances.push_back(sid);
  ASSERT_FALSE(instances.empty());

  // Walk every instance across several hosts, ending somewhere new.
  const auto& nodes = sbon_->overlay_nodes();
  for (size_t step = 0; step < 6; ++step) {
    for (size_t i = 0; i < instances.size(); ++i) {
      const NodeId target = nodes[(3 + step * 5 + i) % nodes.size()];
      ASSERT_TRUE(sbon_->MigrateService(instances[i], target).ok());
    }
  }
  ASSERT_TRUE(sbon_->RemoveCircuit(cid).ok());
  EXPECT_EQ(sbon_->NumServices(), 0u);
  for (NodeId n = 0; n < sbon_->topology().NumNodes(); ++n) {
    EXPECT_NEAR(sbon_->ServiceLoad(n), 0.0, 1e-12)
        << "node " << n << " load book off base after migrate+remove";
  }
}

TEST_F(SbonChurnTest, PartitionInflatesCrossCutLatencyAndHeals) {
  const auto& nodes = sbon_->overlay_nodes();
  std::vector<NodeId> group(nodes.begin(), nodes.begin() + 4);
  const NodeId in = group[0];
  const NodeId out = nodes[10];
  const double before = sbon_->latency().Latency(in, out);
  const double inside_before = sbon_->latency().Latency(group[1], group[2]);

  ASSERT_TRUE(sbon_->BeginPartition(group, 8.0).ok());
  EXPECT_DOUBLE_EQ(sbon_->latency().Latency(in, out), before * 8.0);
  EXPECT_DOUBLE_EQ(sbon_->latency().Latency(group[1], group[2]),
                   inside_before);  // intra-group untouched
  EXPECT_EQ(sbon_->BeginPartition(group, 2.0).code(),
            StatusCode::kFailedPrecondition);  // one cut at a time

  ASSERT_TRUE(sbon_->EndPartition().ok());
  EXPECT_DOUBLE_EQ(sbon_->latency().Latency(in, out), before);
  EXPECT_EQ(sbon_->EndPartition().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SbonChurnTest, PartitionPenaltySurvivesTickNetwork) {
  overlay::Sbon::Options opts;
  opts.latency_jitter_sigma = 0.1;
  auto sbon = MakeTransitStubSbon(TopologySize::kTiny, 7, opts);
  const auto& nodes = sbon->overlay_nodes();
  std::vector<NodeId> group(nodes.begin(), nodes.begin() + 3);
  const NodeId in = group[0];
  const NodeId out = nodes[8];
  ASSERT_TRUE(sbon->BeginPartition(group, 10.0).ok());
  for (int e = 0; e < 3; ++e) {
    sbon->TickNetwork();  // resample jitter; penalty must be re-applied
    const double base = sbon->base_latency().Latency(in, out);
    // Jitter factors stay within a few x; a 10x cross-cut pair must remain
    // far above its pristine base.
    EXPECT_GT(sbon->latency().Latency(in, out), base * 2.0);
  }
  ASSERT_TRUE(sbon->EndPartition().ok());
}

// Regression: a crash + rejoin *during* an active partition must not leak
// into latency state — EndPartition has to restore the exact (bitwise)
// pre-partition live latencies, on both fabric backends. Node liveness and
// the latency substrate are independent books; a rejoin that nudged jitter
// or partition state would show up here as a single differing ulp.
TEST_F(SbonChurnTest, CrashRejoinDuringPartitionRestoresExactLatencies) {
  for (const auto mode : {overlay::Sbon::FabricMode::kDense,
                          overlay::Sbon::FabricMode::kSparse}) {
    overlay::Sbon::Options opts;
    opts.latency_jitter_sigma = 0.1;
    opts.fabric_mode = mode;
    auto sbon = MakeTransitStubSbon(TopologySize::kTiny, 7, opts);
    const size_t n = sbon->topology().NumNodes();
    sbon->TickNetwork();  // a real congestion epoch, not pristine base

    std::vector<double> before(n * n);
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        before[a * n + b] = sbon->latency().Latency(a, b);
      }
    }

    const auto& nodes = sbon->overlay_nodes();
    std::vector<NodeId> group(nodes.begin(), nodes.begin() + 3);
    ASSERT_TRUE(sbon->BeginPartition(group, 10.0).ok());
    const NodeId victim = group[1];
    ASSERT_TRUE(sbon->FailNode(victim).ok());
    ASSERT_TRUE(sbon->RejoinNode(victim).ok());
    ASSERT_TRUE(sbon->partition_active());
    ASSERT_TRUE(sbon->EndPartition().ok());

    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        EXPECT_EQ(sbon->latency().Latency(a, b), before[a * n + b])
            << "pair (" << a << "," << b << ") drifted after "
            << "crash+rejoin under partition on "
            << sbon->fabric().name();
      }
    }
  }
}

// --- engine repair --------------------------------------------------------

engine::EngineOptions ChurnEngineOptions(uint64_t seed) {
  engine::EngineOptions eo;
  eo.topology = MakeTransitStubTopology(TopologySize::kTiny, seed);
  eo.sbon.seed = seed;
  eo.config = TestOptimizerConfig();
  return eo;
}

TEST(EngineChurnTest, CrashTriggersHandleStableRepair) {
  auto eng = engine::StreamEngine::Create(ChurnEngineOptions(11)).value();
  eng->SetCatalog(MakeCatalog(eng->sbon(), TestWorkloadParams(), 3));
  const auto specs = MakeQueries(eng->sbon(), eng->catalog(),
                                 TestWorkloadParams(), 4, 5);
  std::vector<engine::QueryHandle> handles;
  for (const auto& spec : specs) handles.push_back(eng->Submit(spec).value());

  // Find a node hosting at least one deployed (non-pinned) service.
  NodeId victim = kInvalidNode;
  for (const auto& [sid, inst] : eng->sbon().services()) {
    victim = inst.host;
    break;
  }
  ASSERT_NE(victim, kInvalidNode);

  net::ChurnModel churn(eng->sbon().overlay_nodes(), {});
  churn.ScheduleAt(0, Crash(victim));
  engine::EpochOptions epoch;
  epoch.churn = &churn;
  eng->AdvanceEpoch(epoch);

  const auto& stats = eng->repair_stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_GT(stats.services_evicted, 0u);
  EXPECT_GT(stats.circuits_orphaned, 0u);
  EXPECT_EQ(stats.queries_repaired + stats.queries_dropped,
            stats.circuits_orphaned);

  // Handles survive repairs; every live circuit avoids the dead node.
  EXPECT_EQ(eng->NumQueries() + stats.queries_dropped, handles.size());
  for (engine::QueryHandle h : handles) {
    const CircuitId cid = eng->CircuitOf(h);
    if (cid == kInvalidCircuit) continue;  // dropped
    const overlay::Circuit* c = eng->sbon().FindCircuit(cid);
    ASSERT_NE(c, nullptr);
    for (const auto& v : c->vertices()) {
      EXPECT_NE(v.host, victim);
      EXPECT_TRUE(eng->sbon().IsAlive(v.host));
    }
  }
  ScenarioMatrix::CheckLiveInvariants(*eng);
}

TEST(EngineChurnTest, DeadPinnedEndpointDropsTheQuery) {
  auto eng = engine::StreamEngine::Create(ChurnEngineOptions(13)).value();
  eng->SetCatalog(MakeCatalog(eng->sbon(), TestWorkloadParams(), 3));
  const auto specs = MakeQueries(eng->sbon(), eng->catalog(),
                                 TestWorkloadParams(), 2, 5);
  auto h = eng->Submit(specs[0]).value();

  // Crash the consumer (pinned): the query is unrepairable.
  const query::QuerySpec* spec = eng->SpecOf(h);
  ASSERT_NE(spec, nullptr);
  const NodeId consumer = spec->consumer;
  net::ChurnModel churn(eng->sbon().overlay_nodes(), {});
  churn.ScheduleAt(0, Crash(consumer));
  engine::EpochOptions epoch;
  epoch.churn = &churn;
  eng->AdvanceEpoch(epoch);

  EXPECT_EQ(eng->repair_stats().queries_dropped, 1u);
  EXPECT_EQ(eng->CircuitOf(h), kInvalidCircuit);
  EXPECT_EQ(eng->Remove(h).code(), StatusCode::kNotFound);  // released
  ScenarioMatrix::CheckLiveInvariants(*eng);
}

TEST(EngineChurnTest, ReoptPolicyHostDiedTriggerRepairsUnconditionally) {
  auto eng = engine::StreamEngine::Create(ChurnEngineOptions(17)).value();
  eng->SetCatalog(MakeCatalog(eng->sbon(), TestWorkloadParams(), 3));
  const auto specs = MakeQueries(eng->sbon(), eng->catalog(),
                                 TestWorkloadParams(), 1, 9);
  const auto h = eng->Submit(specs[0]).value();
  const CircuitId before = eng->CircuitOf(h);

  // Kill the circuit's first deployed host directly on the overlay, then
  // use the public trigger instead of the churn pipeline.
  const overlay::Circuit* c = eng->sbon().FindCircuit(before);
  ASSERT_NE(c, nullptr);
  std::set<NodeId> pinned_hosts;
  for (const auto& v : c->vertices()) {
    if (v.pinned) pinned_hosts.insert(v.host);
  }
  NodeId victim = kInvalidNode;
  for (const auto& v : c->vertices()) {
    if (!v.pinned && !v.reused && pinned_hosts.count(v.host) == 0) {
      victim = v.host;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode)
      << "fixture placed every service on a pinned endpoint";
  ASSERT_TRUE(eng->sbon().FailNode(victim).ok());

  engine::ReoptPolicy policy;
  policy.trigger = engine::ReoptPolicy::Trigger::kHostDied;
  auto outcome = eng->Reoptimize(h, policy);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->full.redeployed);
  EXPECT_EQ(outcome->full.new_circuit, eng->CircuitOf(h));
  EXPECT_NE(eng->CircuitOf(h), before);
  const overlay::Circuit* repaired = eng->sbon().FindCircuit(eng->CircuitOf(h));
  ASSERT_NE(repaired, nullptr);
  for (const auto& v : repaired->vertices()) EXPECT_NE(v.host, victim);
  ScenarioMatrix::CheckLiveInvariants(*eng);
}

TEST(EngineChurnTest, SharedInstanceCrashOrphansEveryDependentQuery) {
  auto eng = engine::StreamEngine::Create([] {
    auto eo = ChurnEngineOptions(23);
    eo.optimizer = "multi-query";  // enables instance reuse across queries
    return eo;
  }()).value();
  eng->SetCatalog(MakeCatalog(eng->sbon(), TestWorkloadParams(4), 3));
  // Identical specs maximize reuse.
  const auto specs = MakeQueries(eng->sbon(), eng->catalog(),
                                 TestWorkloadParams(4), 1, 5);
  const auto h1 = eng->Submit(specs[0]).value();
  const auto h2 = eng->Submit(specs[0]).value();

  // Find an instance shared by both circuits, if any (reuse is workload
  // dependent; fall back to any instance).
  NodeId victim = kInvalidNode;
  for (const auto& [sid, inst] : eng->sbon().services()) {
    victim = inst.host;
    if (inst.Shared()) break;
  }
  ASSERT_NE(victim, kInvalidNode);

  net::ChurnModel churn(eng->sbon().overlay_nodes(), {});
  churn.ScheduleAt(0, Crash(victim));
  engine::EpochOptions epoch;
  epoch.churn = &churn;
  eng->AdvanceEpoch(epoch);

  // Whatever was orphaned got repaired or dropped; invariants hold and the
  // surviving queries still answer to h1/h2.
  ScenarioMatrix::CheckLiveInvariants(*eng);
  for (engine::QueryHandle h : {h1, h2}) {
    if (eng->CircuitOf(h) != kInvalidCircuit) {
      EXPECT_NE(eng->sbon().FindCircuit(eng->CircuitOf(h)), nullptr);
    }
  }
}

// --- quick ScenarioMatrix subset (default suite) --------------------------

TEST(ScenarioMatrixQuickTest, TinyCrossProductHoldsInvariants) {
  MatrixOptions options;
  options.size = TopologySize::kTiny;
  options.queries = 4;
  options.epochs = 5;
  options.churn.mean_downtime_epochs = 2.0;
  ScenarioMatrix matrix(options);
  const auto cells = ScenarioMatrix::CrossProduct(
      /*churn_rates=*/{0.5}, /*jitter_sigmas=*/{0.0, 0.1},
      /*hotspot_fracs=*/{0.2}, /*optimizers=*/{OptimizerKind::kIntegrated},
      /*seeds=*/{1, 2});
  ASSERT_EQ(cells.size(), 4u);
  const auto outcomes = matrix.Run(cells);
  size_t crashes = 0;
  for (const auto& o : outcomes) crashes += o.repair.crashes;
  EXPECT_GT(crashes, 0u) << "churn never fired; the sweep tested nothing";
}

TEST(ScenarioMatrixQuickTest, PartitionCellsHoldInvariants) {
  MatrixOptions options;
  options.size = TopologySize::kTiny;
  options.queries = 3;
  options.epochs = 6;
  options.churn.partition_rate = 0.5;
  options.churn.partition_duration_epochs = 2;
  ScenarioMatrix matrix(options);
  const auto outcomes = matrix.Run(ScenarioMatrix::CrossProduct(
      {0.25}, {0.1}, {0.0}, {OptimizerKind::kTwoStep}, {3}));
  ASSERT_EQ(outcomes.size(), 1u);
}

}  // namespace
}  // namespace sbon::test

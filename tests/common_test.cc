#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/summary.h"
#include "common/table.h"
#include "common/vec.h"

namespace sbon {
namespace {

// --------------------------- Status ---------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad radius");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad radius");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad radius");
}

TEST(StatusTest, AllFactoryCodesDistinct) {
  std::set<StatusCode> codes{
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::FailedPrecondition("").code(), Status::OutOfRange("").code(),
      Status::AlreadyExists("").code(), Status::ResourceExhausted("").code(),
      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

// --------------------------- Rng ---------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntRange) {
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t x = rng.UniformInt(uint64_t{10});
    EXPECT_LT(x, 10u);
  }
}

TEST(RngTest, UniformIntInclusiveEnds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t x = rng.UniformInt(int64_t{-3}, int64_t{3});
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) counts[rng.UniformInt(uint64_t{8})]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, ParetoAboveScale) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(5.0, 1.5), 5.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> w = v;
  rng.Shuffle(&w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (int rep = 0; rep < 50; ++rep) {
    auto s = rng.SampleWithoutReplacement(20, 10);
    std::set<size_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 10u);
    for (size_t x : s) EXPECT_LT(x, 20u);
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(43);
  auto s = rng.SampleWithoutReplacement(8, 8);
  std::set<size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 8u);
}

// --------------------------- Vec ---------------------------

TEST(VecTest, Arithmetic) {
  Vec a{1.0, 2.0}, b{3.0, -1.0};
  Vec c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  Vec d = a - b;
  EXPECT_DOUBLE_EQ(d[0], -2.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  Vec e = a * 2.0;
  EXPECT_DOUBLE_EQ(e[0], 2.0);
  EXPECT_DOUBLE_EQ(e[1], 4.0);
  Vec f = b / 2.0;
  EXPECT_DOUBLE_EQ(f[0], 1.5);
}

TEST(VecTest, NormAndDistance) {
  Vec a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.NormSquared(), 25.0);
  Vec b{0.0, 0.0};
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 5.0);
  EXPECT_DOUBLE_EQ(b.DistanceTo(a), 5.0);
}

TEST(VecTest, Dot) {
  Vec a{1.0, 2.0, 3.0}, b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 32.0);
}

TEST(VecTest, UnitOfNonZero) {
  Vec a{0.0, 10.0};
  Vec u = a.Unit();
  EXPECT_NEAR(u.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(u[1], 1.0, 1e-12);
}

TEST(VecTest, UnitOfZeroIsDeterministicUnit) {
  Vec z(3);
  Vec u1 = z.Unit(5), u2 = z.Unit(5), u3 = z.Unit(6);
  EXPECT_NEAR(u1.Norm(), 1.0, 1e-9);
  EXPECT_EQ(u1, u2);
  EXPECT_NE(u1, u3);
}

TEST(VecTest, DistanceTriangleInequality) {
  Rng rng(47);
  for (int rep = 0; rep < 200; ++rep) {
    Vec a(3), b(3), c(3);
    for (int d = 0; d < 3; ++d) {
      a[d] = rng.Uniform(-10, 10);
      b[d] = rng.Uniform(-10, 10);
      c[d] = rng.Uniform(-10, 10);
    }
    EXPECT_LE(a.DistanceTo(c), a.DistanceTo(b) + b.DistanceTo(c) + 1e-9);
  }
}

TEST(VecTest, ToStringFormat) {
  Vec a{1.0, 2.5};
  EXPECT_EQ(a.ToString(), "(1, 2.5)");
}

// --------------------------- Summary ---------------------------

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(SummaryTest, BasicStats) {
  Summary s;
  s.AddAll({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_NEAR(s.Stddev(), 1.5811, 1e-3);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s;
  s.AddAll({0, 10});
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 2.5);
}

TEST(SummaryTest, AddAfterPercentileStillCorrect) {
  Summary s;
  s.AddAll({5, 1});
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  s.Add(100);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_DOUBLE_EQ(s.Median(), 5.0);
}

// --------------------------- TableWriter ---------------------------

TEST(TableWriterTest, RendersAlignedColumns) {
  TableWriter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

// --------------------------- ThreadPool ---------------------------

TEST(ThreadPoolTest, RunsEveryShardExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    constexpr size_t kShards = 64;
    std::vector<std::atomic<int>> hits(kShards);
    pool.Run(kShards, [&](size_t shard) { hits[shard].fetch_add(1); });
    for (size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 20; ++job) {
    pool.Run(7, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 7u * 20u);
}

TEST(ThreadPoolTest, ParallelSlicesCoverRangeDisjointly) {
  ThreadPool pool(4);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{17},
                   size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    ParallelSlices(&pool, n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " index " << i;
    }
  }
  // Null pool = one serial slice over the whole range.
  size_t calls = 0, covered = 0;
  ParallelSlices(nullptr, 42, [&](size_t begin, size_t end) {
    ++calls;
    covered += end - begin;
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(covered, 42u);
}

TEST(TableWriterTest, NumFormats) {
  EXPECT_EQ(TableWriter::Num(1234.5678), "1235");
  EXPECT_EQ(TableWriter::Fixed(1.23456, 2), "1.23");
}

}  // namespace
}  // namespace sbon

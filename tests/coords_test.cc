#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "coords/cost_space.h"
#include "coords/mds.h"
#include "coords/vivaldi.h"
#include "coords/weighting.h"
#include "net/generators.h"
#include "net/shortest_path.h"

namespace sbon::coords {
namespace {

// --------------------------- Weighting ---------------------------

TEST(WeightingTest, IdentityIsLinear) {
  IdentityWeighting w(2.0);
  EXPECT_DOUBLE_EQ(w.Apply(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.Apply(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.Apply(1.0), 2.0);
}

TEST(WeightingTest, SquaredPenalizesSuperLinearly) {
  SquaredWeighting w(1.0);
  EXPECT_DOUBLE_EQ(w.Apply(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.Apply(0.5), 0.25);
  EXPECT_DOUBLE_EQ(w.Apply(1.0), 1.0);
  // Ratio of penalties grows with load (the Figure 2 property).
  EXPECT_GT(w.Apply(0.9) / w.Apply(0.3), 0.9 / 0.3);
}

TEST(WeightingTest, ExponentialZeroAtIdeal) {
  ExponentialWeighting w(4.0, 1.0);
  EXPECT_DOUBLE_EQ(w.Apply(0.0), 0.0);
  EXPECT_GT(w.Apply(1.0), w.Apply(0.5) * 2.0);
}

TEST(WeightingTest, ThresholdFlatBelowKnee) {
  ThresholdWeighting w(0.7, 10.0);
  EXPECT_DOUBLE_EQ(w.Apply(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.Apply(0.69), 0.0);
  EXPECT_NEAR(w.Apply(0.8), 1.0, 1e-9);
}

TEST(WeightingTest, NegativeInputsClampToZero) {
  EXPECT_DOUBLE_EQ(IdentityWeighting().Apply(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(SquaredWeighting().Apply(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ExponentialWeighting().Apply(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ThresholdWeighting().Apply(-1.0), 0.0);
}

TEST(WeightingTest, AllNonNegativeAndMonotone) {
  // The paper requires weighting functions to be non-negative with zero at
  // the ideal value; check monotonicity over a sweep.
  for (const char* name :
       {"identity", "squared", "exponential", "threshold"}) {
    auto w = MakeWeighting(name);
    ASSERT_NE(w, nullptr) << name;
    double prev = -1.0;
    for (double x = 0.0; x <= 1.0; x += 0.05) {
      const double y = w->Apply(x);
      EXPECT_GE(y, 0.0) << name;
      EXPECT_GE(y, prev - 1e-12) << name << " not monotone at " << x;
      prev = y;
    }
    EXPECT_DOUBLE_EQ(w->Apply(0.0), 0.0) << name;
  }
}

TEST(WeightingTest, FactoryRejectsUnknown) {
  EXPECT_EQ(MakeWeighting("nope"), nullptr);
}

// --------------------------- CostSpace ---------------------------

TEST(CostSpaceTest, LatencyOnlyHasNoScalars) {
  const CostSpaceSpec spec = CostSpaceSpec::LatencyOnly(3);
  EXPECT_EQ(spec.vector_dims(), 3u);
  EXPECT_EQ(spec.num_scalar_dims(), 0u);
  EXPECT_EQ(spec.total_dims(), 3u);
}

TEST(CostSpaceTest, LatencyAndLoadShape) {
  const CostSpaceSpec spec = CostSpaceSpec::LatencyAndLoad(2, 100.0);
  EXPECT_EQ(spec.vector_dims(), 2u);
  EXPECT_EQ(spec.num_scalar_dims(), 1u);
  EXPECT_EQ(spec.scalar_dim(0).name, "cpu_load");
  EXPECT_EQ(spec.scalar_dim(0).weighting->Name(), "squared");
}

TEST(CostSpaceTest, SetAndGetCoords) {
  CostSpace cs(CostSpaceSpec::LatencyAndLoad(2, 100.0), 3);
  ASSERT_TRUE(cs.SetVectorCoord(0, Vec{1.0, 2.0}).ok());
  ASSERT_TRUE(cs.SetScalarMetric(0, 0, 0.5).ok());
  EXPECT_EQ(cs.VectorCoord(0), (Vec{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(cs.RawScalar(0, 0), 0.5);
  // squared weighting with scale 100: 100 * 0.25.
  EXPECT_DOUBLE_EQ(cs.WeightedScalar(0, 0), 25.0);
  EXPECT_DOUBLE_EQ(cs.ScalarPenalty(0), 25.0);
}

TEST(CostSpaceTest, FullCoordAppendsWeightedScalars) {
  CostSpace cs(CostSpaceSpec::LatencyAndLoad(2, 100.0), 1);
  ASSERT_TRUE(cs.SetVectorCoord(0, Vec{3.0, 4.0}).ok());
  ASSERT_TRUE(cs.SetScalarMetric(0, 0, 1.0).ok());
  const Vec full = cs.FullCoord(0);
  ASSERT_EQ(full.dims(), 3u);
  EXPECT_DOUBLE_EQ(full[0], 3.0);
  EXPECT_DOUBLE_EQ(full[1], 4.0);
  EXPECT_DOUBLE_EQ(full[2], 100.0);
}

TEST(CostSpaceTest, RejectsBadIndices) {
  CostSpace cs(CostSpaceSpec::LatencyOnly(2), 2);
  EXPECT_FALSE(cs.SetVectorCoord(5, Vec{0, 0}).ok());
  EXPECT_FALSE(cs.SetVectorCoord(0, Vec{0, 0, 0}).ok());
  EXPECT_FALSE(cs.SetScalarMetric(0, 0, 1.0).ok());  // no scalar dims
}

TEST(CostSpaceTest, FullDistanceToIdealIncludesLoad) {
  // Paper Figure 3: N1 latency-closer but overloaded; N2 wins in full space.
  CostSpace cs(CostSpaceSpec::LatencyAndLoad(2, 100.0), 2);
  ASSERT_TRUE(cs.SetVectorCoord(0, Vec{1.0, 0.0}).ok());   // N1, close
  ASSERT_TRUE(cs.SetScalarMetric(0, 0, 0.9).ok());         // overloaded
  ASSERT_TRUE(cs.SetVectorCoord(1, Vec{10.0, 0.0}).ok());  // N2, farther
  ASSERT_TRUE(cs.SetScalarMetric(1, 0, 0.1).ok());         // idle
  const Vec target{0.0, 0.0};
  EXPECT_LT(cs.VectorDistanceTo(0, target), cs.VectorDistanceTo(1, target));
  EXPECT_GT(cs.FullDistanceToIdeal(0, target),
            cs.FullDistanceToIdeal(1, target));
}

TEST(CostSpaceTest, VectorDistanceSymmetric) {
  CostSpace cs(CostSpaceSpec::LatencyOnly(2), 2);
  ASSERT_TRUE(cs.SetVectorCoord(0, Vec{0.0, 0.0}).ok());
  ASSERT_TRUE(cs.SetVectorCoord(1, Vec{3.0, 4.0}).ok());
  EXPECT_DOUBLE_EQ(cs.VectorDistance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(cs.VectorDistance(1, 0), 5.0);
}

// --------------------------- Vivaldi ---------------------------

TEST(VivaldiTest, PredictionErrorSmallOnLine) {
  auto topo = net::GenerateLine(10, 5.0);
  ASSERT_TRUE(topo.ok());
  const net::LatencyMatrix lat(*topo);
  Rng rng(1);
  VivaldiSystem::Params params;
  params.dims = 2;
  VivaldiRunOptions run;
  run.rounds = 120;
  run.rtt_noise_sigma = 0.0;
  const VivaldiSystem sys = RunVivaldi(lat, params, run, &rng);
  // A line embeds perfectly in 2-D; demand small relative error.
  double total_rel = 0.0;
  int pairs = 0;
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = a + 1; b < 10; ++b) {
      total_rel += std::abs(sys.Predict(a, b) - lat.Latency(a, b)) /
                   lat.Latency(a, b);
      ++pairs;
    }
  }
  EXPECT_LT(total_rel / pairs, 0.15);
}

TEST(VivaldiTest, ErrorDecreasesWithRounds) {
  Rng trng(3);
  auto topo = net::GenerateTransitStub(net::TransitStubParams{}, &trng);
  ASSERT_TRUE(topo.ok());
  const net::LatencyMatrix lat(*topo);
  VivaldiSystem::Params params;
  params.dims = 2;

  auto median_err = [&](size_t rounds, uint64_t seed) {
    Rng rng(seed);
    VivaldiRunOptions run;
    run.rounds = rounds;
    const VivaldiSystem sys = RunVivaldi(lat, params, run, &rng);
    std::vector<Vec> coords;
    for (NodeId i = 0; i < lat.NumNodes(); ++i) coords.push_back(sys.Coord(i));
    return EvaluateEmbedding(lat, coords, 20000).median_relative_error;
  };
  const double early = median_err(2, 7);
  const double late = median_err(60, 7);
  EXPECT_LT(late, early);
  // Invariant 7 of DESIGN.md: small median error on transit-stub.
  EXPECT_LT(late, 0.35);
}

TEST(VivaldiTest, UpdateMovesTowardRtt) {
  Rng rng(5);
  VivaldiSystem sys(2, VivaldiSystem::Params{}, &rng);
  // Repeated samples of a 50ms RTT should drive predicted toward 50.
  for (int i = 0; i < 500; ++i) {
    sys.Update(0, 1, 50.0);
    sys.Update(1, 0, 50.0);
  }
  EXPECT_NEAR(sys.Predict(0, 1), 50.0, 5.0);
}

TEST(VivaldiTest, LocalErrorBounded) {
  Rng trng(9);
  auto topo = net::GenerateLine(20, 4.0);
  ASSERT_TRUE(topo.ok());
  const net::LatencyMatrix lat(*topo);
  Rng rng(11);
  const VivaldiSystem sys =
      RunVivaldi(lat, VivaldiSystem::Params{}, VivaldiRunOptions{}, &rng);
  for (NodeId n = 0; n < 20; ++n) {
    EXPECT_GE(sys.LocalError(n), 0.0);
    EXPECT_LE(sys.LocalError(n), 10.0);
  }
}

// --------------------------- MDS ---------------------------

TEST(MdsTest, RecoversPlantedConfiguration) {
  // Plant points in the plane; latency = Euclidean distance; MDS must
  // reconstruct pairwise distances near-exactly.
  const std::vector<Vec> pts = {{0, 0},  {10, 0}, {0, 10}, {10, 10},
                                {5, 5},  {2, 8},  {7, 3},  {9, 1}};
  net::Topology topo;
  for (size_t i = 0; i < pts.size(); ++i) topo.AddNode(net::NodeKind::kHost);
  // Complete graph with exact Euclidean latencies.
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = i + 1; j < pts.size(); ++j) {
      ASSERT_TRUE(topo.AddLink(static_cast<NodeId>(i),
                               static_cast<NodeId>(j),
                               pts[i].DistanceTo(pts[j]))
                      .ok());
    }
  }
  const net::LatencyMatrix lat(topo);
  Rng rng(13);
  const std::vector<Vec> coords = ClassicalMds(lat, 2, &rng);
  const EmbeddingError err = EvaluateEmbedding(lat, coords);
  EXPECT_LT(err.median_relative_error, 0.02);
  EXPECT_LT(err.stress, 0.05);
}

TEST(MdsTest, BeatsOrMatchesVivaldiOnTransitStub) {
  Rng trng(17);
  net::TransitStubParams p;
  p.transit_domains = 2;
  p.stub_domains_per_transit_node = 2;
  p.nodes_per_stub_domain = 6;
  auto topo = net::GenerateTransitStub(p, &trng);
  ASSERT_TRUE(topo.ok());
  const net::LatencyMatrix lat(*topo);
  Rng rng(19);
  const std::vector<Vec> mds = ClassicalMds(lat, 2, &rng);
  const VivaldiSystem viv =
      RunVivaldi(lat, VivaldiSystem::Params{}, VivaldiRunOptions{}, &rng);
  std::vector<Vec> vcoords;
  for (NodeId i = 0; i < lat.NumNodes(); ++i) vcoords.push_back(viv.Coord(i));
  const EmbeddingError mds_err = EvaluateEmbedding(lat, mds);
  const EmbeddingError viv_err = EvaluateEmbedding(lat, vcoords);
  // Internet-like latencies are non-Euclidean, so neither method dominates
  // the other on every metric; both must simply yield usable cost spaces
  // (small-but-nonzero error, per Ng & Zhang [16]).
  EXPECT_LT(mds_err.median_relative_error, 0.35);
  EXPECT_LT(viv_err.median_relative_error, 0.35);
  EXPECT_LT(mds_err.stress, 0.5);
  EXPECT_LT(viv_err.stress, 0.5);
}

TEST(EvaluateEmbeddingTest, PerfectEmbeddingZeroError) {
  auto topo = net::GenerateLine(5, 2.0);
  ASSERT_TRUE(topo.ok());
  const net::LatencyMatrix lat(*topo);
  // Exact 1-D embedding padded to 2-D.
  std::vector<Vec> coords;
  for (int i = 0; i < 5; ++i) coords.push_back(Vec{2.0 * i, 0.0});
  const EmbeddingError err = EvaluateEmbedding(lat, coords);
  EXPECT_NEAR(err.median_relative_error, 0.0, 1e-12);
  EXPECT_NEAR(err.stress, 0.0, 1e-12);
}

TEST(EvaluateEmbeddingTest, HandlesTinyInputs) {
  net::Topology topo;
  topo.AddNode(net::NodeKind::kHost);
  const net::LatencyMatrix lat(topo);
  const EmbeddingError err = EvaluateEmbedding(lat, {Vec{0.0}});
  EXPECT_DOUBLE_EQ(err.median_relative_error, 0.0);
}

}  // namespace
}  // namespace sbon::coords

#include <gtest/gtest.h>

#include <memory>

#include "core/integrated.h"
#include "core/multi_query.h"
#include "core/reopt.h"
#include "core/two_step.h"
#include "harness/fixtures.h"
#include "net/generators.h"
#include "overlay/metrics.h"
#include "query/enumerate.h"
#include "query/workload.h"

namespace sbon::core {
namespace {

using overlay::Sbon;

std::unique_ptr<Sbon> MakeSbon(uint64_t seed) {
  Sbon::Options opts;
  opts.load_params.sigma = 0.0;
  opts.load_params.mean = 0.2;
  return test::MakeTransitStubSbon(test::TopologySize::kTiny, seed, opts);
}

std::shared_ptr<const placement::VirtualPlacer> Relaxation() {
  return test::DefaultPlacer();
}

query::WorkloadParams TestWorkload() {
  query::WorkloadParams wp;
  wp.num_streams = 20;
  wp.min_streams_per_query = 3;
  wp.max_streams_per_query = 5;
  return wp;
}

// --------------------------- TwoStep ---------------------------

TEST(TwoStepTest, ProducesInstallableCircuit) {
  auto s = MakeSbon(1);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat = query::RandomCatalog(wp, s->overlay_nodes(),
                                            &s->rng());
  query::QuerySpec q =
      query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
  TwoStepOptimizer opt(OptimizerConfig{}, Relaxation());
  auto r = opt.Optimize(q, cat, s.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->circuit.FullyPlaced());
  EXPECT_EQ(r->plans_considered, 1u);
  EXPECT_EQ(r->placements_evaluated, 1u);
  EXPECT_GT(r->estimated_cost, 0.0);
  auto id = s->InstallCircuit(std::move(r->circuit));
  ASSERT_TRUE(id.ok());
  EXPECT_GT(s->NumServices(), 0u);
}

TEST(TwoStepTest, ChoosesMinDataVolumePlan) {
  auto s = MakeSbon(2);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  query::QuerySpec q =
      query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
  TwoStepOptimizer opt(OptimizerConfig{}, Relaxation());
  auto r = opt.Optimize(q, cat, s.get());
  ASSERT_TRUE(r.ok());
  auto all = query::EnumerateAllPlansExhaustive(q, cat);
  ASSERT_TRUE(all.ok());
  EXPECT_NEAR(r->circuit.plan().IntermediateDataRate(),
              (*all)[0].IntermediateDataRate(),
              1e-6 * (*all)[0].IntermediateDataRate());
}

// --------------------------- Integrated ---------------------------

TEST(IntegratedTest, ConsidersMultiplePlans) {
  auto s = MakeSbon(3);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  query::QuerySpec q = query::QuerySpec::SimpleJoin(
      {0, 1, 2, 3}, s->overlay_nodes()[0], 0.001);
  OptimizerConfig cfg;
  cfg.enumeration.top_k = 8;
  IntegratedOptimizer opt(cfg, Relaxation());
  auto r = opt.Optimize(q, cat, s.get());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->plans_considered, 1u);
  EXPECT_EQ(r->placements_evaluated, r->plans_considered);
  EXPECT_TRUE(r->circuit.FullyPlaced());
}

// Invariant 5: integrated never estimates worse than two-step when the
// two-step plan is in its candidate set (same placer, same mapper).
class IntegratedDominanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntegratedDominanceTest, IntegratedLeqTwoStepOnEstimate) {
  auto s = MakeSbon(GetParam());
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  cfg.enumeration.top_k = 8;
  TwoStepOptimizer two(cfg, Relaxation());
  IntegratedOptimizer integrated(cfg, Relaxation());
  for (int rep = 0; rep < 5; ++rep) {
    query::QuerySpec q =
        query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
    auto rt = two.Optimize(q, cat, s.get());
    auto ri = integrated.Optimize(q, cat, s.get());
    ASSERT_TRUE(rt.ok() && ri.ok());
    // The integrated candidate set contains the two-step plan (it is the
    // DP optimum, always rank 1 of the top-k), so integrated can never
    // estimate worse.
    EXPECT_LE(ri->estimated_cost, rt->estimated_cost * (1.0 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegratedDominanceTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(IntegratedTest, SingleCandidateEqualsTwoStep) {
  auto s = MakeSbon(4);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  query::QuerySpec q =
      query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  cfg.enumeration.top_k = 1;
  TwoStepOptimizer two(cfg, Relaxation());
  IntegratedOptimizer one(cfg, Relaxation());
  auto rt = two.Optimize(q, cat, s.get());
  auto ri = one.Optimize(q, cat, s.get());
  ASSERT_TRUE(rt.ok() && ri.ok());
  EXPECT_DOUBLE_EQ(ri->estimated_cost, rt->estimated_cost);
  EXPECT_EQ(ri->circuit.plan().Canonical(), rt->circuit.plan().Canonical());
}

// --------------------------- MultiQuery ---------------------------

MultiQueryOptimizer::Params RadiusParams(double r) {
  MultiQueryOptimizer::Params p;
  p.reuse_radius = r;
  return p;
}

TEST(MultiQueryTest, RadiusZeroMatchesIntegrated) {
  auto s = MakeSbon(5);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  IntegratedOptimizer integrated(cfg, Relaxation());
  MultiQueryOptimizer mq(cfg, Relaxation(), RadiusParams(0.0));
  // Pre-install some circuits so reuse would be possible.
  for (int i = 0; i < 3; ++i) {
    query::QuerySpec q =
        query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
    auto r = integrated.Optimize(q, cat, s.get());
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(s->InstallCircuit(std::move(r->circuit)).ok());
  }
  query::QuerySpec q =
      query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
  auto ri = integrated.Optimize(q, cat, s.get());
  auto rm = mq.Optimize(q, cat, s.get());
  ASSERT_TRUE(ri.ok() && rm.ok());
  EXPECT_DOUBLE_EQ(rm->estimated_cost, ri->estimated_cost);
  EXPECT_EQ(rm->services_reused, 0u);
}

TEST(MultiQueryTest, IdenticalQueryReusesWholeSubtree) {
  auto s = MakeSbon(6);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  MultiQueryOptimizer mq(cfg, Relaxation(), RadiusParams(-1.0));
  const query::QuerySpec q = query::QuerySpec::SimpleJoin(
      {0, 1, 2}, s->overlay_nodes()[5], 0.001);
  auto first = mq.Optimize(q, cat, s.get());
  ASSERT_TRUE(first.ok());
  const double standalone_cost = first->estimated_cost;
  ASSERT_TRUE(s->InstallCircuit(std::move(first->circuit)).ok());

  // Same query, different consumer: the root join should be reused and the
  // marginal cost must be far below standalone.
  query::QuerySpec q2 = q;
  q2.consumer = s->overlay_nodes()[40];
  auto second = mq.Optimize(q2, cat, s.get());
  ASSERT_TRUE(second.ok());
  EXPECT_GE(second->services_reused, 1u);
  EXPECT_LT(second->estimated_cost, standalone_cost * 0.8);
  // And it installs cleanly against the live instances.
  auto id = s->InstallCircuit(std::move(second->circuit));
  ASSERT_TRUE(id.ok());
}

TEST(MultiQueryTest, UnboundedRadiusNeverWorseThanNoReuse) {
  auto s = MakeSbon(7);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  MultiQueryOptimizer none(cfg, Relaxation(), RadiusParams(0.0));
  MultiQueryOptimizer all(cfg, Relaxation(), RadiusParams(-1.0));
  // Install a base of circuits.
  for (int i = 0; i < 5; ++i) {
    query::QuerySpec q =
        query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
    auto r = all.Optimize(q, cat, s.get());
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(s->InstallCircuit(std::move(r->circuit)).ok());
  }
  for (int rep = 0; rep < 5; ++rep) {
    query::QuerySpec q =
        query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
    auto rn = none.Optimize(q, cat, s.get());
    auto ra = all.Optimize(q, cat, s.get());
    ASSERT_TRUE(rn.ok() && ra.ok());
    // Invariant 6: unbounded reuse search cannot produce a costlier pick.
    EXPECT_LE(ra->estimated_cost, rn->estimated_cost * (1.0 + 1e-9));
  }
}

TEST(MultiQueryTest, RadiusMonotoneInOptimizerWork) {
  auto s = MakeSbon(8);
  query::WorkloadParams wp = TestWorkload();
  wp.num_streams = 10;  // denser sharing
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  MultiQueryOptimizer mq(cfg, Relaxation(), RadiusParams(-1.0));
  for (int i = 0; i < 8; ++i) {
    query::QuerySpec q =
        query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
    auto r = mq.Optimize(q, cat, s.get());
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(s->InstallCircuit(std::move(r->circuit)).ok());
  }
  // Optimizer work (reuse candidates examined) grows with radius.
  const double diameter =
      2.0 * s->latency().MaxLatency();  // generous cost-space bound
  size_t small_work = 0, large_work = 0;
  for (int rep = 0; rep < 4; ++rep) {
    query::QuerySpec q =
        query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
    MultiQueryOptimizer small(cfg, Relaxation(), RadiusParams(1.0));
    MultiQueryOptimizer large(cfg, Relaxation(),
                              RadiusParams(diameter));
    auto rs = small.Optimize(q, cat, s.get());
    auto rl = large.Optimize(q, cat, s.get());
    ASSERT_TRUE(rs.ok() && rl.ok());
    small_work += rs->reuse_candidates_considered;
    large_work += rl->reuse_candidates_considered;
  }
  EXPECT_LE(small_work, large_work);
}

// --------------------------- Reopt ---------------------------

TEST(ReoptTest, LocalReoptMigratesAwayFromLoadedHost) {
  auto s = MakeSbon(9);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  IntegratedOptimizer opt(cfg, Relaxation());
  query::QuerySpec q =
      query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
  auto r = opt.Optimize(q, cat, s.get());
  ASSERT_TRUE(r.ok());
  auto id = s->InstallCircuit(std::move(r->circuit));
  ASSERT_TRUE(id.ok());

  // Saturate every host the circuit's services run on.
  const overlay::Circuit* live = s->FindCircuit(*id);
  ASSERT_NE(live, nullptr);
  for (int v : live->PlaceableVertices()) {
    s->SetBaseLoad(live->vertex(v).host, 1.0);
  }
  s->RefreshIndex();

  placement::RelaxationPlacer placer;
  ReoptConfig rc;
  rc.migration_hysteresis = 0.02;
  auto report = LocalReoptimize(s.get(), *id, placer, rc);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->migrations, 0u);
  EXPECT_LT(report->estimated_cost_after, report->estimated_cost_before);
}

TEST(ReoptTest, LocalReoptNoOpWhenAlreadyGood) {
  auto s = MakeSbon(10);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  IntegratedOptimizer opt(cfg, Relaxation());
  query::QuerySpec q =
      query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
  auto r = opt.Optimize(q, cat, s.get());
  ASSERT_TRUE(r.ok());
  auto id = s->InstallCircuit(std::move(r->circuit));
  ASSERT_TRUE(id.ok());
  placement::RelaxationPlacer placer;
  auto report = LocalReoptimize(s.get(), *id, placer, ReoptConfig{});
  ASSERT_TRUE(report.ok());
  // Nothing changed since installation: no migrations expected.
  EXPECT_EQ(report->migrations, 0u);
}

TEST(ReoptTest, FullReoptRedeploysUnderDrift) {
  auto s = MakeSbon(11);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  IntegratedOptimizer opt(cfg, Relaxation());
  query::QuerySpec q =
      query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
  auto r = opt.Optimize(q, cat, s.get());
  ASSERT_TRUE(r.ok());
  auto id = s->InstallCircuit(std::move(r->circuit));
  ASSERT_TRUE(id.ok());

  // Overload all current hosts so a fresh optimization finds a much better
  // circuit elsewhere.
  const overlay::Circuit* live = s->FindCircuit(*id);
  for (int v : live->PlaceableVertices()) {
    s->SetBaseLoad(live->vertex(v).host, 1.0);
  }
  s->RefreshIndex();

  ReoptConfig rc;
  rc.replan_threshold = 0.05;
  auto report = FullReoptimize(s.get(), *id, q, cat, &opt, rc);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  if (report->redeployed) {
    EXPECT_EQ(s->FindCircuit(*id), nullptr);
    ASSERT_NE(s->FindCircuit(report->new_circuit), nullptr);
    EXPECT_LT(report->estimated_cost_candidate,
              report->estimated_cost_before);
  }
  // Either way the SBON stays consistent: exactly one circuit.
  EXPECT_EQ(s->circuits().size(), 1u);
}

TEST(ReoptTest, FullReoptKeepsCircuitWhenNoGain) {
  auto s = MakeSbon(12);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  IntegratedOptimizer opt(cfg, Relaxation());
  query::QuerySpec q =
      query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
  auto r = opt.Optimize(q, cat, s.get());
  ASSERT_TRUE(r.ok());
  auto id = s->InstallCircuit(std::move(r->circuit));
  ASSERT_TRUE(id.ok());
  ReoptConfig rc;
  rc.replan_threshold = 0.15;
  auto report = FullReoptimize(s.get(), *id, q, cat, &opt, rc);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->redeployed);
  EXPECT_NE(s->FindCircuit(*id), nullptr);
}

TEST(ReoptTest, MissingCircuitRejected) {
  auto s = MakeSbon(13);
  placement::RelaxationPlacer placer;
  EXPECT_FALSE(LocalReoptimize(s.get(), 999, placer, ReoptConfig{}).ok());
}

// --------------------------- End-to-end ---------------------------

TEST(EndToEndTest, ManyQueriesLifecycle) {
  auto s = MakeSbon(14);
  query::WorkloadParams wp = TestWorkload();
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  OptimizerConfig cfg;
  MultiQueryOptimizer mq(cfg, Relaxation(), RadiusParams(80.0));
  std::vector<CircuitId> ids;
  for (int i = 0; i < 12; ++i) {
    query::QuerySpec q =
        query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
    auto r = mq.Optimize(q, cat, s.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto id = s->InstallCircuit(std::move(r->circuit));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
    s->Tick(0.5);
    s->RefreshIndex();
  }
  EXPECT_EQ(s->circuits().size(), 12u);
  EXPECT_GT(s->TotalNetworkUsage(), 0.0);
  // Tear down every other circuit; the rest must stay consistent.
  for (size_t i = 0; i < ids.size(); i += 2) {
    ASSERT_TRUE(s->RemoveCircuit(ids[i]).ok());
  }
  EXPECT_EQ(s->circuits().size(), 6u);
  for (size_t i = 1; i < ids.size(); i += 2) {
    auto cost = s->CircuitCostOf(ids[i]);
    ASSERT_TRUE(cost.ok());
    EXPECT_GE(cost->network_usage, 0.0);
  }
  // Remove the rest: SBON drains to empty.
  for (size_t i = 1; i < ids.size(); i += 2) {
    ASSERT_TRUE(s->RemoveCircuit(ids[i]).ok());
  }
  EXPECT_EQ(s->NumServices(), 0u);
  EXPECT_DOUBLE_EQ(s->TotalNetworkUsage(), 0.0);
}

}  // namespace
}  // namespace sbon::core

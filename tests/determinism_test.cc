// Determinism pins: the same RNG seed must produce bit-identical topology,
// Vivaldi coordinates, workload, and placement decisions across independent
// runs. Reproducibility is what makes every other regression suite (and the
// golden fingerprints) trustworthy.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "coords/vivaldi.h"
#include "harness/fixtures.h"
#include "harness/golden.h"
#include "harness/scenario.h"
#include "net/generators.h"

namespace sbon::test {
namespace {

constexpr uint64_t kSeed = 9001;

TEST(DeterminismTest, RngStreamIsReproducible) {
  Rng a(kSeed), b(kSeed);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  // A different seed must diverge (catches seeds being silently ignored).
  Rng c(kSeed + 1);
  Rng d(kSeed);
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) diverged = c.Next() != d.Next();
  EXPECT_TRUE(diverged);
}

TEST(DeterminismTest, TopologyGenerationIsReproducible) {
  Rng ra(kSeed), rb(kSeed);
  auto p = TransitStubParamsFor(TopologySize::kSmall);
  auto ta = net::GenerateTransitStub(p, &ra);
  auto tb = net::GenerateTransitStub(p, &rb);
  ASSERT_TRUE(ta.ok() && tb.ok());
  ASSERT_EQ(ta->NumNodes(), tb->NumNodes());
  const net::LatencyMatrix la(*ta), lb(*tb);
  for (NodeId i = 0; i < ta->NumNodes(); ++i) {
    for (NodeId j = 0; j < ta->NumNodes(); ++j) {
      ASSERT_EQ(la.Latency(i, j), lb.Latency(i, j))
          << "latency (" << i << "," << j << ") differs between runs";
    }
  }
}

TEST(DeterminismTest, VivaldiCoordinatesAreBitIdentical) {
  auto sa = MakeTransitStubSbon(TopologySize::kTiny, kSeed);
  auto sb = MakeTransitStubSbon(TopologySize::kTiny, kSeed);
  const auto& ca = sa->cost_space();
  const auto& cb = sb->cost_space();
  ASSERT_EQ(ca.NumNodes(), cb.NumNodes());
  for (NodeId n = 0; n < ca.NumNodes(); ++n) {
    const Vec& va = ca.VectorCoord(n);
    const Vec& vb = cb.VectorCoord(n);
    ASSERT_EQ(va.dims(), vb.dims());
    for (size_t d = 0; d < va.dims(); ++d) {
      // Bit-identical, not approximately equal.
      ASSERT_EQ(va[d], vb[d]) << "coord of node " << n << " dim " << d;
    }
  }
}

TEST(DeterminismTest, OnlineCoordinateUpdatesStayInLockstep) {
  auto sa = MakeTransitStubSbon(TopologySize::kTiny, kSeed);
  auto sb = MakeTransitStubSbon(TopologySize::kTiny, kSeed);
  for (int epoch = 0; epoch < 3; ++epoch) {
    sa->TickNetwork();
    sb->TickNetwork();
    sa->UpdateCoordinatesOnline(4);
    sb->UpdateCoordinatesOnline(4);
  }
  for (NodeId n = 0; n < sa->cost_space().NumNodes(); ++n) {
    const Vec& va = sa->cost_space().VectorCoord(n);
    const Vec& vb = sb->cost_space().VectorCoord(n);
    for (size_t d = 0; d < va.dims(); ++d) {
      ASSERT_EQ(va[d], vb[d]) << "post-churn coord of node " << n;
    }
  }
}

TEST(DeterminismTest, GridSbonIsReproducibleAndExact) {
  // Grid fixtures have analytically known shortest paths: on a 3x3 grid
  // with 5 ms links, corner-to-corner is 4 hops = 20 ms.
  auto sa = MakeGridSbon(3, kSeed, 5.0);
  auto sb = MakeGridSbon(3, kSeed, 5.0);
  EXPECT_DOUBLE_EQ(sa->latency().Latency(0, 8), 20.0);
  EXPECT_DOUBLE_EQ(sa->latency().Latency(0, 4), 10.0);
  for (NodeId n = 0; n < sa->cost_space().NumNodes(); ++n) {
    const Vec& va = sa->cost_space().VectorCoord(n);
    const Vec& vb = sb->cost_space().VectorCoord(n);
    for (size_t d = 0; d < va.dims(); ++d) {
      ASSERT_EQ(va[d], vb[d]) << "grid coord of node " << n;
    }
  }
}

TEST(DeterminismTest, WorkloadGenerationIsReproducible) {
  auto s = MakeTransitStubSbon(TopologySize::kTiny, kSeed);
  const auto wp = TestWorkloadParams();
  auto ca = MakeCatalog(*s, wp, 5);
  auto cb = MakeCatalog(*s, wp, 5);
  ASSERT_EQ(ca.NumStreams(), cb.NumStreams());
  for (StreamId i = 0; i < ca.NumStreams(); ++i) {
    EXPECT_EQ(ca.stream(i).producer, cb.stream(i).producer);
    EXPECT_EQ(ca.stream(i).tuple_rate_per_s, cb.stream(i).tuple_rate_per_s);
    EXPECT_EQ(ca.stream(i).tuple_size_bytes, cb.stream(i).tuple_size_bytes);
  }
  auto qa = MakeQueries(*s, ca, wp, 4, 7);
  auto qb = MakeQueries(*s, cb, wp, 4, 7);
  ASSERT_EQ(qa.size(), qb.size());
  for (size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa[i].consumer, qb[i].consumer);
    EXPECT_EQ(qa[i].streams, qb[i].streams);
    EXPECT_EQ(qa[i].filter_sel, qb[i].filter_sel);
    EXPECT_EQ(qa[i].join_sel, qb[i].join_sel);
    EXPECT_EQ(qa[i].aggregate_factor, qb[i].aggregate_factor);
  }
}

// The churn subsystem must be provably zero-cost when disabled: an engine
// run with no churn attached and one with a zero-rate ChurnModel attached
// must stay bit-identical to each other across epochs — the model draws
// from its own Rng (and not at all when every rate is zero), so the
// pre-churn goldens and every fixed-seed regression remain valid.
TEST(DeterminismTest, ChurnFreeAdvanceEpochIsBitIdenticalWithModelAttached) {
  std::vector<std::string> fingerprints;
  for (int variant = 0; variant < 2; ++variant) {
    ScenarioOptions o;
    o.size = TopologySize::kTiny;
    o.seed = kSeed;
    o.sbon.latency_jitter_sigma = 0.1;
    ScenarioRunner run(o);
    run.UseRandomCatalog(TestWorkloadParams(), 3);
    const auto queries =
        MakeQueries(run.sbon(), run.catalog(), TestWorkloadParams(), 3, 11);
    for (const auto& q : queries) {
      run.PlaceAndInstall(OptimizerKind::kIntegrated, q);
    }
    net::ChurnModel churn(run.sbon().overlay_nodes(),
                          net::ChurnModel::Params{});  // all rates zero
    engine::EpochOptions epoch;
    epoch.dt = 1.0;
    epoch.vivaldi_samples = 2;
    epoch.churn = variant == 1 ? &churn : nullptr;
    for (int e = 0; e < 4; ++e) run.engine().AdvanceEpoch(epoch);
    EXPECT_EQ(run.engine().repair_stats().crashes, 0u);
    fingerprints.push_back(OverlayFingerprint(run.sbon()));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

// The epoch pipeline must be thread-count invariant: the parallelizable
// stages (jitter rows, wavefront Vivaldi updates, the refresh dirty scan)
// shard deterministically, so a fixed seed yields bit-identical coordinates
// and placements whether epochs run serially or across a pool. This is the
// contract that lets the TSan CI lane run every suite with
// SBON_EPOCH_THREADS=4 against unchanged expectations.
TEST(DeterminismTest, EpochPipelineIsThreadCountInvariant) {
  for (uint64_t seed : {3u, 7u, 23u, 101u, 9001u}) {
    std::vector<std::string> fingerprints;
    std::vector<std::vector<double>> coord_dumps;
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ScenarioOptions o;
      o.size = TopologySize::kTiny;
      o.seed = seed;
      o.sbon.latency_jitter_sigma = 0.15;
      ScenarioRunner run(o);
      run.UseRandomCatalog(TestWorkloadParams(), 3);
      const auto queries =
          MakeQueries(run.sbon(), run.catalog(), TestWorkloadParams(), 3, 11);
      for (const auto& q : queries) {
        run.PlaceAndInstall(OptimizerKind::kIntegrated, q);
      }
      engine::EpochOptions epoch;
      epoch.dt = 1.0;
      epoch.vivaldi_samples = 3;
      epoch.refresh_epsilon = 0.5;
      epoch.threads = threads;
      for (int e = 0; e < 4; ++e) run.engine().AdvanceEpoch(epoch);
      fingerprints.push_back(OverlayFingerprint(run.sbon()));
      std::vector<double> coords;
      const auto& space = run.sbon().cost_space();
      for (NodeId n = 0; n < space.NumNodes(); ++n) {
        const Vec& v = space.VectorCoord(n);
        for (size_t d = 0; d < v.dims(); ++d) coords.push_back(v[d]);
        coords.push_back(space.ScalarPenalty(n));
      }
      coord_dumps.push_back(std::move(coords));
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]) << "seed " << seed;
    ASSERT_EQ(coord_dumps[0].size(), coord_dumps[1].size());
    for (size_t i = 0; i < coord_dumps[0].size(); ++i) {
      // Bit-identical, not approximately equal: the pool must change only
      // scheduling, never a single floating-point operation.
      ASSERT_EQ(coord_dumps[0][i], coord_dumps[1][i])
          << "seed " << seed << " coord component " << i;
    }
  }
}

// Same seed => the full end-to-end pipeline (embedding + enumeration +
// placement + mapping + installation) lands every service on the same host
// and produces an identical overlay fingerprint.
TEST(DeterminismTest, EndToEndPlacementIsBitIdentical) {
  std::vector<std::string> fingerprints;
  for (int replica = 0; replica < 2; ++replica) {
    ScenarioOptions o;
    o.size = TopologySize::kTiny;
    o.seed = kSeed;
    ScenarioRunner run(o);
    run.UseRandomCatalog(TestWorkloadParams(), 3);
    const auto queries =
        MakeQueries(run.sbon(), run.catalog(), TestWorkloadParams(), 3, 11);
    for (const auto& q : queries) {
      auto rec = run.PlaceAndInstall(OptimizerKind::kIntegrated, q);
      ASSERT_NE(rec.circuit_id, kInvalidCircuit);
    }
    fingerprints.push_back(OverlayFingerprint(run.sbon()));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

}  // namespace
}  // namespace sbon::test

// Edge cases for the DHT numeric substrate: U128 wrap-around (ring)
// arithmetic at the 64/128-bit boundaries, and Hilbert-curve behavior at
// domain boundaries — quadrant seams, extreme corners, and the maximal
// 128-bit index domain (dims * bits = 128).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "dht/hilbert.h"
#include "dht/u128.h"

namespace sbon::dht {
namespace {

// ------------------------------ U128 wrap-around ------------------------------

TEST(U128EdgeTest, MaxPlusOneWrapsToZero) {
  EXPECT_EQ(U128::Max() + U128::FromU64(1), U128());
  EXPECT_EQ(U128() - U128::FromU64(1), U128::Max());
}

TEST(U128EdgeTest, CarryPropagatesAcrossTheU64Boundary) {
  const U128 lo_max(0, ~0ULL);
  EXPECT_EQ(lo_max + U128::FromU64(1), U128(1, 0));
  EXPECT_EQ(U128(1, 0) - U128::FromU64(1), lo_max);
  // Carry out of a large low-word sum.
  const U128 a(0, 0x8000000000000000ULL);
  EXPECT_EQ(a + a, U128(1, 0));
}

TEST(U128EdgeTest, MaxPlusMaxIsMaxMinusOne) {
  // (2^128 - 1) + (2^128 - 1) = 2^129 - 2 ≡ 2^128 - 2 (mod 2^128).
  EXPECT_EQ(U128::Max() + U128::Max(), U128::Max() - U128::FromU64(1));
}

TEST(U128EdgeTest, ClockwiseRingDistanceWraps) {
  // a - b is the clockwise distance from b to a; when a < b it must wrap
  // through zero rather than go negative.
  const U128 a = U128::FromU64(3);
  const U128 b = U128::Max() - U128::FromU64(1);  // 2^128 - 2
  EXPECT_EQ(a - b, U128::FromU64(5));  // b + 5 ≡ a (mod 2^128)
  EXPECT_EQ(b + U128::FromU64(5), a);
}

TEST(U128EdgeTest, ShiftBoundaries) {
  const U128 x(0x0123456789abcdefULL, 0xfedcba9876543210ULL);
  EXPECT_EQ(x << 0, x);
  EXPECT_EQ(x >> 0, x);
  EXPECT_EQ(x << 64, U128(0xfedcba9876543210ULL, 0));
  EXPECT_EQ(x >> 64, U128(0, 0x0123456789abcdefULL));
  EXPECT_EQ(U128::FromU64(1) << 127, U128(0x8000000000000000ULL, 0));
  EXPECT_EQ(U128(0x8000000000000000ULL, 0) >> 127, U128::FromU64(1));
  EXPECT_EQ(x << 128, U128());
  EXPECT_EQ(x >> 128, U128());
  EXPECT_EQ(x << 200, U128());
  EXPECT_EQ(x >> 200, U128());
}

TEST(U128EdgeTest, BitAccessAtWordBoundaries) {
  U128 x;
  for (unsigned i : {0u, 63u, 64u, 127u}) {
    EXPECT_FALSE(x.Bit(i));
    x.SetBit(i);
    EXPECT_TRUE(x.Bit(i));
  }
  EXPECT_EQ(x.hi, (1ULL << 63) | 1ULL);
  EXPECT_EQ(x.lo, (1ULL << 63) | 1ULL);
  EXPECT_EQ(PowerOfTwo(127), U128(0x8000000000000000ULL, 0));
  EXPECT_EQ(PowerOfTwo(64), U128(1, 0));
  EXPECT_EQ(PowerOfTwo(0), U128::FromU64(1));
}

TEST(U128EdgeTest, OrderingStraddlesTheWordBoundary) {
  // Any value with a nonzero hi word beats any 64-bit value.
  EXPECT_LT(U128(0, ~0ULL), U128(1, 0));
  EXPECT_GT(U128(1, 0), U128(0, ~0ULL));
  EXPECT_LE(U128::Max(), U128::Max());
  EXPECT_GE(U128::Max(), U128(~0ULL, 0));
}

// --------------------- Hilbert locality at domain boundaries ---------------------

// Steps across every quadrant seam of the top recursion level must still be
// unit grid steps: the curve's defining locality property is exactly that
// crossing a domain boundary never teleports.
TEST(HilbertEdgeTest, QuadrantSeamCrossingsAreUnitSteps) {
  const unsigned dims = 2;
  for (unsigned bits : {2u, 4u, 8u}) {
    const uint64_t cells_per_quadrant = 1ULL << (dims * (bits - 1));
    const uint64_t total = 1ULL << (dims * bits);
    // Indices k*cells_per_quadrant straddle top-level quadrant boundaries.
    for (uint64_t k = 1; k * cells_per_quadrant < total; ++k) {
      const U128 after = U128::FromU64(k * cells_per_quadrant);
      const U128 before = after - U128::FromU64(1);
      const auto a = HilbertDecode(before, dims, bits);
      const auto b = HilbertDecode(after, dims, bits);
      unsigned moved_axes = 0;
      unsigned step = 0;
      for (unsigned d = 0; d < dims; ++d) {
        if (a[d] != b[d]) {
          ++moved_axes;
          step = a[d] > b[d] ? a[d] - b[d] : b[d] - a[d];
        }
      }
      EXPECT_EQ(moved_axes, 1u) << "seam " << k << " bits " << bits;
      EXPECT_EQ(step, 1u) << "seam " << k << " bits " << bits;
    }
  }
}

TEST(HilbertEdgeTest, CurveEndpointsAreDomainCorners) {
  const unsigned dims = 2, bits = 6;
  // Index 0 is the origin corner.
  const auto first = HilbertDecode(U128(), dims, bits);
  EXPECT_EQ(first, (std::vector<uint32_t>{0, 0}));
  // The last index is again on the domain boundary (a corner-adjacent cell
  // on the y axis for the standard orientation): verify via round trip and
  // boundary membership instead of hard-coding the orientation.
  const uint64_t last = (1ULL << (dims * bits)) - 1;
  const auto end = HilbertDecode(U128::FromU64(last), dims, bits);
  EXPECT_EQ(HilbertEncode(end, bits), U128::FromU64(last));
  const uint32_t max_axis = (1u << bits) - 1;
  bool on_boundary = false;
  for (unsigned d = 0; d < dims; ++d) {
    if (end[d] == 0 || end[d] == max_axis) on_boundary = true;
  }
  EXPECT_TRUE(on_boundary);
}

TEST(HilbertEdgeTest, MaximalDomainRoundTrips) {
  // dims * bits = 128: the full U128 key space. Extreme corners and a few
  // scattered cells must round-trip exactly.
  const unsigned dims = 4, bits = 32;
  const uint32_t max_axis = ~0u;
  const std::vector<std::vector<uint32_t>> corners = {
      {0, 0, 0, 0},
      {max_axis, max_axis, max_axis, max_axis},
      {max_axis, 0, 0, 0},
      {0, max_axis, 0, max_axis},
      {1u << 31, 1u << 31, 0, max_axis},
  };
  for (const auto& c : corners) {
    const U128 key = HilbertEncode(c, bits);
    EXPECT_EQ(HilbertDecode(key, dims, bits), c);
  }
  // The two curve endpoints of the maximal domain are distinct extremes.
  EXPECT_EQ(HilbertDecode(U128(), dims, bits),
            (std::vector<uint32_t>{0, 0, 0, 0}));
  EXPECT_NE(HilbertEncode(corners[1], bits), U128());
}

TEST(HilbertEdgeTest, SingleBitDomainIsTheFourCellLoop) {
  // bits = 1, dims = 2: the curve is exactly the 2x2 U-shape; enumerate it.
  const unsigned dims = 2, bits = 1;
  std::vector<std::vector<uint32_t>> walk;
  for (uint64_t i = 0; i < 4; ++i) {
    walk.push_back(HilbertDecode(U128::FromU64(i), dims, bits));
  }
  for (size_t i = 0; i + 1 < walk.size(); ++i) {
    unsigned manhattan = 0;
    for (unsigned d = 0; d < dims; ++d) {
      manhattan += std::abs(static_cast<int>(walk[i][d]) -
                            static_cast<int>(walk[i + 1][d]));
    }
    EXPECT_EQ(manhattan, 1u);
  }
  // All four cells visited exactly once.
  std::vector<bool> seen(4, false);
  for (const auto& c : walk) seen[c[0] * 2 + c[1]] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(HilbertQuantizerEdgeTest, BoxBoundaryValuesQuantizeIntoRange) {
  const unsigned bits = 8;
  HilbertQuantizer q({-10.0, -10.0}, {10.0, 10.0}, bits);
  const uint32_t max_cell = (1u << bits) - 1;

  Vec lo{-10.0, -10.0};
  Vec hi{10.0, 10.0};
  Vec below{-1e9, -1e9};
  Vec above{1e9, 1e9};

  EXPECT_EQ(q.Quantize(lo), (std::vector<uint32_t>{0, 0}));
  for (uint32_t c : q.Quantize(hi)) EXPECT_EQ(c, max_cell);
  EXPECT_EQ(q.Quantize(below), q.Quantize(lo));
  EXPECT_EQ(q.Quantize(above), q.Quantize(hi));
  // Clamped keys are valid curve points.
  EXPECT_EQ(q.Key(below), q.Key(lo));
  EXPECT_EQ(q.Key(above), q.Key(hi));
}

TEST(HilbertQuantizerEdgeTest, NeighboringBoundaryCellsAreCloseOnCurve) {
  // Cost-space locality across the box: points just either side of a cell
  // boundary map to cells whose curve distance is small for most seams.
  // This is statistical (Hilbert has a few long jumps), so check the median.
  const unsigned bits = 6;
  HilbertQuantizer q({0.0, 0.0}, {1.0, 1.0}, bits);
  const uint32_t cells = 1u << bits;
  std::vector<uint64_t> jumps;
  for (uint32_t c = 1; c < cells; ++c) {
    const double seam = static_cast<double>(c) / cells;
    Vec left{seam - 1e-9, 0.5};
    Vec right{seam + 1e-9, 0.5};
    const U128 ka = q.Key(left);
    const U128 kb = q.Key(right);
    const U128 d = ka < kb ? kb - ka : ka - kb;
    ASSERT_EQ(d.hi, 0u);
    jumps.push_back(d.lo);
  }
  std::sort(jumps.begin(), jumps.end());
  EXPECT_LE(jumps[jumps.size() / 2], 8u)
      << "median curve jump across adjacent cells should be small";
}

}  // namespace
}  // namespace sbon::dht

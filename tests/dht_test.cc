#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "dht/chord.h"
#include "dht/coord_index.h"
#include "dht/hilbert.h"
#include "dht/u128.h"

namespace sbon::dht {
namespace {

// --------------------------- U128 ---------------------------

TEST(U128Test, ComparisonOrdering) {
  EXPECT_LT(U128(0, 1), U128(0, 2));
  EXPECT_LT(U128(0, ~0ULL), U128(1, 0));
  EXPECT_LT(U128(1, 5), U128(2, 0));
  EXPECT_EQ(U128(3, 4), U128(3, 4));
  EXPECT_NE(U128(3, 4), U128(3, 5));
}

TEST(U128Test, AdditionCarries) {
  const U128 a(0, ~0ULL);
  const U128 b = a + U128::FromU64(1);
  EXPECT_EQ(b, U128(1, 0));
}

TEST(U128Test, SubtractionBorrowsAndWraps) {
  EXPECT_EQ(U128(1, 0) - U128::FromU64(1), U128(0, ~0ULL));
  // Ring wrap: 0 - 1 == max.
  EXPECT_EQ(U128() - U128::FromU64(1), U128::Max());
}

TEST(U128Test, AddSubRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const U128 a(rng.Next(), rng.Next());
    const U128 b(rng.Next(), rng.Next());
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST(U128Test, Shifts) {
  const U128 one = U128::FromU64(1);
  EXPECT_EQ(one << 64, U128(1, 0));
  EXPECT_EQ(one << 127, U128(1ULL << 63, 0));
  EXPECT_EQ((one << 64) >> 64, one);
  EXPECT_EQ(one << 128, U128());
  EXPECT_EQ((U128(1, 0) >> 1), U128(0, 1ULL << 63));
}

TEST(U128Test, BitSetAndGet) {
  U128 x;
  x.SetBit(5);
  x.SetBit(70);
  EXPECT_TRUE(x.Bit(5));
  EXPECT_TRUE(x.Bit(70));
  EXPECT_FALSE(x.Bit(6));
  EXPECT_FALSE(x.Bit(69));
}

TEST(U128Test, PowerOfTwo) {
  EXPECT_EQ(PowerOfTwo(0), U128::FromU64(1));
  EXPECT_EQ(PowerOfTwo(63), U128::FromU64(1ULL << 63));
  EXPECT_EQ(PowerOfTwo(64), U128(1, 0));
}

TEST(U128Test, HashDispersion) {
  std::set<uint64_t> his;
  for (uint64_t i = 0; i < 1000; ++i) his.insert(HashU64(i).hi);
  EXPECT_EQ(his.size(), 1000u);  // no collisions in hi word over 1k inputs
}

// --------------------------- Hilbert ---------------------------

class HilbertRoundTripTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(HilbertRoundTripTest, EncodeDecodeBijective) {
  const auto [dims, bits] = GetParam();
  Rng rng(dims * 100 + bits);
  for (int rep = 0; rep < 500; ++rep) {
    std::vector<uint32_t> axes(dims);
    for (auto& a : axes) {
      a = static_cast<uint32_t>(rng.UniformInt(uint64_t{1} << bits));
    }
    const U128 idx = HilbertEncode(axes, bits);
    EXPECT_EQ(HilbertDecode(idx, dims, bits), axes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsBits, HilbertRoundTripTest,
    ::testing::Values(std::make_pair(1u, 8u), std::make_pair(2u, 4u),
                      std::make_pair(2u, 10u), std::make_pair(3u, 7u),
                      std::make_pair(3u, 16u), std::make_pair(4u, 10u),
                      std::make_pair(5u, 12u), std::make_pair(6u, 10u),
                      std::make_pair(8u, 14u)));

TEST(HilbertTest, CurveVisitsEveryCellExactlyOnce) {
  // 2-D, 3 bits: 64 cells; walking indices 0..63 must enumerate all cells.
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (uint64_t i = 0; i < 64; ++i) {
    const auto axes = HilbertDecode(U128::FromU64(i), 2, 3);
    seen.insert({axes[0], axes[1]});
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining locality property: successive curve positions differ by
  // exactly one step in exactly one dimension.
  for (unsigned dims : {2u, 3u}) {
    const unsigned bits = (dims == 2) ? 5u : 3u;
    const uint64_t total = 1ULL << (dims * bits);
    auto prev = HilbertDecode(U128::FromU64(0), dims, bits);
    for (uint64_t i = 1; i < total; ++i) {
      const auto cur = HilbertDecode(U128::FromU64(i), dims, bits);
      unsigned changed = 0;
      unsigned delta = 0;
      for (unsigned d = 0; d < dims; ++d) {
        if (cur[d] != prev[d]) {
          ++changed;
          delta = std::max(delta,
                           static_cast<unsigned>(std::abs(
                               static_cast<int64_t>(cur[d]) -
                               static_cast<int64_t>(prev[d]))));
        }
      }
      ASSERT_EQ(changed, 1u) << "at index " << i;
      ASSERT_EQ(delta, 1u) << "at index " << i;
      prev = cur;
    }
  }
}

TEST(HilbertTest, NearbyIndicesNearbyInSpaceOnAverage) {
  // Weaker locality in the useful direction: small index deltas should map
  // to small average grid distances compared to random pairs.
  Rng rng(7);
  const unsigned dims = 2, bits = 8;
  const uint64_t total = 1ULL << (dims * bits);
  double near_dist = 0.0, rand_dist = 0.0;
  const int reps = 2000;
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t i = rng.UniformInt(total - 16);
    const auto a = HilbertDecode(U128::FromU64(i), dims, bits);
    const auto b = HilbertDecode(U128::FromU64(i + 1 + rng.UniformInt(15)),
                                 dims, bits);
    const auto c = HilbertDecode(U128::FromU64(rng.UniformInt(total)), dims,
                                 bits);
    auto dist = [](const std::vector<uint32_t>& x,
                   const std::vector<uint32_t>& y) {
      double s = 0;
      for (size_t d = 0; d < x.size(); ++d) {
        const double diff =
            static_cast<double>(x[d]) - static_cast<double>(y[d]);
        s += diff * diff;
      }
      return std::sqrt(s);
    };
    near_dist += dist(a, b);
    rand_dist += dist(a, c);
  }
  EXPECT_LT(near_dist, rand_dist * 0.1);
}

TEST(HilbertQuantizerTest, QuantizeDequantizeWithinCell) {
  HilbertQuantizer q({0.0, 0.0}, {100.0, 100.0}, 8);
  Rng rng(9);
  const double cell = 100.0 / 256.0;
  for (int rep = 0; rep < 300; ++rep) {
    Vec p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const Vec back = q.Dequantize(q.Quantize(p));
    EXPECT_NEAR(back[0], p[0], cell);
    EXPECT_NEAR(back[1], p[1], cell);
  }
}

TEST(HilbertQuantizerTest, ClampsOutOfBox) {
  HilbertQuantizer q({0.0}, {10.0}, 4);
  EXPECT_EQ(q.Quantize(Vec{-5.0})[0], 0u);
  EXPECT_EQ(q.Quantize(Vec{50.0})[0], 15u);
}

TEST(HilbertQuantizerTest, FitToCoversPointsWithMargin) {
  std::vector<Vec> pts = {{0.0, 5.0}, {10.0, -5.0}, {5.0, 0.0}};
  const HilbertQuantizer q = HilbertQuantizer::FitTo(pts, 8, 0.1);
  for (const Vec& p : pts) {
    const auto cell = q.Quantize(p);
    EXPECT_GT(cell[0], 0u);
    EXPECT_LT(cell[0], 255u);
    EXPECT_GT(cell[1], 0u);
    EXPECT_LT(cell[1], 255u);
  }
}

TEST(HilbertQuantizerTest, DegenerateDimensionHandled) {
  // All points share one coordinate; quantizer must not divide by zero.
  std::vector<Vec> pts = {{1.0, 7.0}, {2.0, 7.0}};
  const HilbertQuantizer q = HilbertQuantizer::FitTo(pts, 6);
  (void)q.Key(Vec{1.5, 7.0});  // must not crash
}

// --------------------------- Chord ---------------------------

TEST(ChordTest, LookupReturnsSuccessor) {
  ChordRing ring;
  for (uint64_t k : {10, 20, 30, 40, 50}) {
    ring.Join(U128::FromU64(k), static_cast<NodeId>(k));
  }
  ring.Stabilize();
  auto r = ring.Lookup(U128::FromU64(25));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->node, 30u);
  // Exact key hits its owner.
  r = ring.Lookup(U128::FromU64(30));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->node, 30u);
  // Wraps past the top.
  r = ring.Lookup(U128::FromU64(55));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->node, 10u);
}

TEST(ChordTest, EmptyRingFails) {
  ChordRing ring;
  EXPECT_FALSE(ring.Lookup(U128::FromU64(1)).ok());
}

TEST(ChordTest, UnstabilizedRingFails) {
  ChordRing ring;
  ring.Join(U128::FromU64(1), 1);
  EXPECT_FALSE(ring.Lookup(U128::FromU64(1)).ok());
}

TEST(ChordTest, LeaveRemovesNode) {
  ChordRing ring;
  ring.Join(U128::FromU64(10), 1);
  ring.Join(U128::FromU64(20), 2);
  ring.Leave(1);
  ring.Stabilize();
  auto r = ring.Lookup(U128::FromU64(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->node, 2u);
}

TEST(ChordTest, DuplicateKeysPerturbed) {
  ChordRing ring;
  ring.Join(U128::FromU64(10), 1);
  ring.Join(U128::FromU64(10), 2);
  EXPECT_EQ(ring.NumMembers(), 2u);
  EXPECT_NE(ring.members()[0].key, ring.members()[1].key);
}

// The bulk window is a pure performance mode: any Join/Leave sequence —
// including duplicate-key perturbation chains and leave-then-rejoin — must
// land on a membership bitwise identical to the sequential vector path.
TEST(ChordTest, BulkWindowMatchesSequentialMembership) {
  Rng rng(42);
  // Random churn script over a small id space so duplicate keys are common.
  struct Op {
    bool join;
    uint64_t key;
    NodeId node;
  };
  std::vector<Op> script;
  for (int i = 0; i < 400; ++i) {
    script.push_back(Op{rng.UniformInt(4) != 0,
                        static_cast<uint64_t>(rng.UniformInt(32)),
                        static_cast<NodeId>(rng.UniformInt(64))});
  }
  ChordRing seq, bulk;
  bulk.BeginBulk();
  for (const Op& op : script) {
    // A node holds at most one entry (the CoordinateIndex invariant the
    // bulk path relies on): leave before every join.
    if (op.join) {
      seq.Leave(op.node);
      seq.Join(U128::FromU64(op.key), op.node);
      bulk.Leave(op.node);
      bulk.Join(U128::FromU64(op.key), op.node);
    } else {
      seq.Leave(op.node);
      bulk.Leave(op.node);
    }
  }
  bulk.EndBulk();
  ASSERT_EQ(seq.NumMembers(), bulk.NumMembers());
  for (size_t i = 0; i < seq.NumMembers(); ++i) {
    EXPECT_EQ(seq.members()[i].key, bulk.members()[i].key) << "entry " << i;
    EXPECT_EQ(seq.members()[i].node, bulk.members()[i].node) << "entry " << i;
  }
  // Idempotent re-entry and empty windows are no-ops.
  bulk.BeginBulk();
  bulk.BeginBulk();
  bulk.EndBulk();
  bulk.EndBulk();
  EXPECT_EQ(seq.NumMembers(), bulk.NumMembers());
}

class ChordPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChordPropertyTest, LookupMatchesSortedMapOracle) {
  const size_t n = GetParam();
  Rng rng(n);
  ChordRing ring;
  std::map<U128, NodeId> oracle;
  for (size_t i = 0; i < n; ++i) {
    const U128 key = HashU64(rng.Next());
    ring.Join(key, static_cast<NodeId>(i));
    oracle[key] = static_cast<NodeId>(i);
  }
  ring.Stabilize();
  for (int rep = 0; rep < 300; ++rep) {
    const U128 q = HashU64(rng.Next());
    auto it = oracle.lower_bound(q);
    const NodeId expected =
        (it == oracle.end()) ? oracle.begin()->second : it->second;
    // Route from a random origin to exercise finger tables.
    const U128 origin = HashU64(rng.Next());
    auto r = ring.Lookup(q, origin);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->node, expected);
  }
}

TEST_P(ChordPropertyTest, HopCountLogarithmic) {
  const size_t n = GetParam();
  Rng rng(n + 777);
  ChordRing ring;
  for (size_t i = 0; i < n; ++i) {
    ring.Join(HashU64(rng.Next()), static_cast<NodeId>(i));
  }
  ring.Stabilize();
  const double log2n = std::log2(static_cast<double>(n));
  size_t worst = 0;
  double total = 0.0;
  const int reps = 400;
  for (int rep = 0; rep < reps; ++rep) {
    auto r = ring.Lookup(HashU64(rng.Next()), HashU64(rng.Next()));
    ASSERT_TRUE(r.ok());
    worst = std::max(worst, r->hops);
    total += static_cast<double>(r->hops);
  }
  EXPECT_LE(worst, static_cast<size_t>(2.0 * log2n + 4.0));
  EXPECT_LE(total / reps, log2n + 2.0);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, ChordPropertyTest,
                         ::testing::Values(2, 5, 16, 64, 200, 500));

TEST(ChordTest, SuccessorPredecessorWalk) {
  ChordRing ring;
  for (uint64_t k : {10, 20, 30}) {
    ring.Join(U128::FromU64(k), static_cast<NodeId>(k));
  }
  ring.Stabilize();
  auto r = ring.Lookup(U128::FromU64(15));
  ASSERT_TRUE(r.ok());  // member 20 at index 1
  EXPECT_EQ(ring.SuccessorAt(r->member_index, 0).node, 20u);
  EXPECT_EQ(ring.SuccessorAt(r->member_index, 1).node, 30u);
  EXPECT_EQ(ring.SuccessorAt(r->member_index, 2).node, 10u);  // wrap
  EXPECT_EQ(ring.PredecessorAt(r->member_index, 1).node, 10u);
  EXPECT_EQ(ring.PredecessorAt(r->member_index, 2).node, 30u);  // wrap
}

// --------------------------- CoordinateIndex ---------------------------

CoordinateIndex MakeIndex(const std::vector<Vec>& coords, unsigned bits = 8) {
  CoordinateIndex idx(HilbertQuantizer::FitTo(coords, bits));
  for (size_t i = 0; i < coords.size(); ++i) {
    idx.Publish(static_cast<NodeId>(i), coords[i]);
  }
  idx.Stabilize();
  return idx;
}

TEST(CoordinateIndexTest, NearestFindsObviousNeighbor) {
  std::vector<Vec> coords = {{0, 0}, {100, 100}, {50, 50}, {10, 2}};
  auto idx = MakeIndex(coords);
  auto m = idx.Nearest(Vec{9, 1});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->node, 3u);
}

TEST(CoordinateIndexTest, EmptyIndexFails) {
  CoordinateIndex idx(HilbertQuantizer({0.0}, {1.0}, 4));
  EXPECT_FALSE(idx.Nearest(Vec{0.5}).ok());
}

TEST(CoordinateIndexTest, WithdrawRemoves) {
  std::vector<Vec> coords = {{0, 0}, {1, 1}};
  auto idx = MakeIndex(coords);
  idx.Withdraw(0);
  idx.Stabilize();
  auto m = idx.Nearest(Vec{0, 0});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->node, 1u);
}

TEST(CoordinateIndexTest, RepublishMovesNode) {
  std::vector<Vec> coords = {{0, 0}, {100, 100}};
  auto idx = MakeIndex(coords);
  idx.Publish(0, Vec{90, 90});
  idx.Stabilize();
  auto m = idx.Nearest(Vec{80, 80});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->node, 0u);
  EXPECT_EQ(idx.NumPublished(), 2u);
}

TEST(CoordinateIndexTest, ExcludeSkipsNodes) {
  std::vector<Vec> coords = {{0, 0}, {1, 0}, {2, 0}};
  auto idx = MakeIndex(coords);
  auto ms = idx.KNearest(Vec{0, 0}, 1, 16, nullptr, {0});
  ASSERT_TRUE(ms.ok());
  ASSERT_EQ(ms->size(), 1u);
  EXPECT_EQ((*ms)[0].node, 1u);
}

TEST(CoordinateIndexTest, KNearestSortedByDistance) {
  Rng rng(3);
  std::vector<Vec> coords;
  for (int i = 0; i < 60; ++i) {
    coords.push_back(Vec{rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  auto idx = MakeIndex(coords);
  auto ms = idx.KNearest(Vec{50, 50}, 10, 30);
  ASSERT_TRUE(ms.ok());
  for (size_t i = 1; i < ms->size(); ++i) {
    EXPECT_LE((*ms)[i - 1].distance, (*ms)[i].distance);
  }
}

class IndexAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexAccuracyTest, WideProbeMatchesExactOracle) {
  Rng rng(GetParam());
  std::vector<Vec> coords;
  const size_t n = 120;
  for (size_t i = 0; i < n; ++i) {
    coords.push_back(Vec{rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  auto idx = MakeIndex(coords, 10);
  for (int rep = 0; rep < 30; ++rep) {
    const Vec target{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    // Probe width covering the whole ring: must equal the oracle.
    auto got = idx.KNearest(target, 5, n);
    ASSERT_TRUE(got.ok());
    const auto want = idx.KNearestExact(target, 5);
    ASSERT_EQ(got->size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*got)[i].node, want[i].node);
    }
  }
}

TEST_P(IndexAccuracyTest, NarrowProbeNearOptimal) {
  Rng rng(GetParam() + 50);
  std::vector<Vec> coords;
  const size_t n = 200;
  for (size_t i = 0; i < n; ++i) {
    coords.push_back(Vec{rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  auto idx = MakeIndex(coords, 10);
  double got_total = 0.0, want_total = 0.0;
  for (int rep = 0; rep < 60; ++rep) {
    const Vec target{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    auto got = idx.Nearest(target, /*probe_width=*/16);
    ASSERT_TRUE(got.ok());
    const auto want = idx.KNearestExact(target, 1);
    got_total += got->distance;
    want_total += want[0].distance;
  }
  // Hilbert probing is approximate; on average it must stay within 2x of
  // the exact nearest distance (typically much closer).
  EXPECT_LE(got_total, want_total * 2.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexAccuracyTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(CoordinateIndexTest, WithinRadiusFindsAllNearby) {
  std::vector<Vec> coords = {{0, 0}, {3, 0}, {0, 4}, {30, 40}, {100, 100}};
  auto idx = MakeIndex(coords);
  auto ms = idx.WithinRadius(Vec{0, 0}, 5.5);
  ASSERT_TRUE(ms.ok());
  std::set<NodeId> nodes;
  for (const auto& m : *ms) nodes.insert(m.node);
  EXPECT_TRUE(nodes.count(0));
  EXPECT_TRUE(nodes.count(1));
  EXPECT_TRUE(nodes.count(2));
  EXPECT_FALSE(nodes.count(4));
}

TEST(CoordinateIndexTest, WithinRadiusZeroMatchesOnlyCoincident) {
  std::vector<Vec> coords = {{5, 5}, {6, 6}};
  auto idx = MakeIndex(coords);
  auto ms = idx.WithinRadius(Vec{5, 5}, 0.0);
  ASSERT_TRUE(ms.ok());
  ASSERT_EQ(ms->size(), 1u);
  EXPECT_EQ((*ms)[0].node, 0u);
}

TEST(CoordinateIndexTest, QueryCostAccounted) {
  Rng rng(5);
  std::vector<Vec> coords;
  for (int i = 0; i < 100; ++i) {
    coords.push_back(Vec{rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  auto idx = MakeIndex(coords);
  IndexQueryCost cost;
  auto ms = idx.KNearest(Vec{50, 50}, 4, 8, &cost);
  ASSERT_TRUE(ms.ok());
  EXPECT_EQ(cost.lookups, 1u);
  EXPECT_GT(cost.ring_probes, 0u);
}

// Straightforward reference for KNearest, kept deliberately naive: rebuild
// the sorted ring from the published coordinates, walk the curve
// neighborhood with an explicit seen-set (the pre-optimization algorithm),
// re-rank by true distance, truncate to k. The production fast path must
// return bit-identical results.
std::vector<IndexMatch> ReferenceKNearest(const CoordinateIndex& idx,
                                          const std::vector<Vec>& coords,
                                          const Vec& target, size_t k,
                                          size_t probe_width,
                                          const std::set<NodeId>& exclude) {
  struct RingEntry {
    U128 key;
    NodeId node;
  };
  std::vector<RingEntry> ring;
  for (NodeId n = 0; n < coords.size(); ++n) {
    ring.push_back(RingEntry{idx.quantizer().Key(coords[n]), n});
  }
  std::sort(ring.begin(), ring.end(),
            [](const RingEntry& a, const RingEntry& b) {
              return a.key < b.key;
            });
  const size_t n = ring.size();
  const U128 key = idx.quantizer().Key(target);
  size_t start = 0;
  while (start < n && ring[start].key < key) ++start;
  start %= n;  // successor(key), wrapping

  std::set<NodeId> seen;
  std::vector<IndexMatch> cand;
  auto consider = [&](size_t mi) {
    const NodeId node = ring[mi].node;
    if (!seen.insert(node).second) return;
    if (exclude.count(node) != 0) return;
    cand.push_back(
        IndexMatch{node, coords[node].DistanceTo(target), coords[node]});
  };
  const size_t width = std::min(probe_width, n);
  consider(start);
  for (size_t i = 1; i <= width; ++i) {
    consider((start + i) % n);
    consider((start + n - (i % n)) % n);
  }
  std::sort(cand.begin(), cand.end(),
            [](const IndexMatch& a, const IndexMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.node < b.node;
            });
  if (cand.size() > k) cand.resize(k);
  return cand;
}

// Generates a point set whose Hilbert keys are pairwise distinct, so the
// reference ring above (which does not model duplicate-key perturbation)
// agrees with the production ring.
std::vector<Vec> DistinctKeyCoords(size_t n, Rng* rng, unsigned bits) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::vector<Vec> coords;
    for (size_t i = 0; i < n; ++i) {
      coords.push_back(Vec{rng->Uniform(0, 100), rng->Uniform(0, 100)});
    }
    HilbertQuantizer q = HilbertQuantizer::FitTo(coords, bits);
    std::set<U128> keys;
    for (const Vec& c : coords) keys.insert(q.Key(c));
    if (keys.size() == n) return coords;
  }
  ADD_FAILURE() << "could not generate distinct-key coords";
  return {};
}

class IndexEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexEquivalenceTest, KNearestMatchesReferenceBitIdentically) {
  Rng rng(GetParam());
  const size_t n = 90;
  const auto coords = DistinctKeyCoords(n, &rng, 10);
  ASSERT_EQ(coords.size(), n);
  auto idx = MakeIndex(coords, 10);
  for (int rep = 0; rep < 40; ++rep) {
    const Vec target{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const size_t k = 1 + rng.UniformInt(8);
    const size_t width = 1 + rng.UniformInt(2 * n);  // includes wrap cases
    std::vector<NodeId> exclude;
    const size_t num_excl = rng.UniformInt(4);
    for (size_t e = 0; e < num_excl; ++e) {
      exclude.push_back(static_cast<NodeId>(rng.UniformInt(n)));
    }
    auto got = idx.KNearest(target, k, width, nullptr, exclude);
    ASSERT_TRUE(got.ok());
    const auto want = ReferenceKNearest(
        idx, coords, target, k, width,
        std::set<NodeId>(exclude.begin(), exclude.end()));
    ASSERT_EQ(got->size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*got)[i].node, want[i].node);
      EXPECT_EQ((*got)[i].distance, want[i].distance);  // bit-identical
      EXPECT_EQ((*got)[i].coord, want[i].coord);
    }
  }
}

TEST_P(IndexEquivalenceTest, KNearestExactMatchesFullSortReference) {
  Rng rng(GetParam() + 1000);
  const size_t n = 150;
  std::vector<Vec> coords;
  for (size_t i = 0; i < n; ++i) {
    coords.push_back(Vec{rng.Uniform(0, 50), rng.Uniform(0, 50)});
  }
  auto idx = MakeIndex(coords, 9);
  for (int rep = 0; rep < 40; ++rep) {
    const Vec target{rng.Uniform(0, 50), rng.Uniform(0, 50)};
    const size_t k = 1 + rng.UniformInt(n + 10);  // includes k > population
    // Reference: sort everything, take the prefix.
    std::vector<IndexMatch> want;
    for (NodeId node = 0; node < n; ++node) {
      want.push_back(
          IndexMatch{node, coords[node].DistanceTo(target), coords[node]});
    }
    std::sort(want.begin(), want.end(),
              [](const IndexMatch& a, const IndexMatch& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.node < b.node;
              });
    if (want.size() > k) want.resize(k);
    const auto got = idx.KNearestExact(target, k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].node, want[i].node);
      EXPECT_EQ(got[i].distance, want[i].distance);  // bit-identical
      EXPECT_EQ(got[i].coord, want[i].coord);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalenceTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(CoordinateIndexTest, RingProbesBilledOncePerDistinctMember) {
  Rng rng(9);
  const size_t n = 12;
  const auto coords = DistinctKeyCoords(n, &rng, 10);
  ASSERT_EQ(coords.size(), n);
  auto idx = MakeIndex(coords, 10);
  const Vec target{50, 50};
  for (size_t width : {size_t{1}, size_t{3}, size_t{5}, size_t{16}}) {
    IndexQueryCost cost;
    auto ms = idx.KNearest(target, 4, width, &cost);
    ASSERT_TRUE(ms.ok());
    // One probe per distinct ring member in the walk window — wrapping past
    // the far side of the ring must not bill the same member twice.
    EXPECT_EQ(cost.ring_probes, std::min(2 * width + 1, n)) << width;
    EXPECT_EQ(cost.lookups, 1u);
  }
  // Excluded members are examined (and billed) exactly once as well.
  IndexQueryCost cost;
  auto ms = idx.KNearest(target, 4, 3, &cost, {0, 1, 2});
  ASSERT_TRUE(ms.ok());
  EXPECT_EQ(cost.ring_probes, 7u);
}

TEST(CoordinateIndexTest, HigherDimensionalIndexWorks) {
  Rng rng(7);
  std::vector<Vec> coords;
  for (int i = 0; i < 80; ++i) {
    Vec v(4);
    for (int d = 0; d < 4; ++d) v[d] = rng.Uniform(0, 10);
    coords.push_back(v);
  }
  auto idx = MakeIndex(coords, 8);
  Vec target(4);
  for (int d = 0; d < 4; ++d) target[d] = 5.0;
  auto got = idx.KNearest(target, 3, 80);
  ASSERT_TRUE(got.ok());
  const auto want = idx.KNearestExact(target, 3);
  EXPECT_EQ((*got)[0].node, want[0].node);
}

}  // namespace
}  // namespace sbon::dht

// Integration tests for the dynamic-network path: latency jitter epochs,
// online Vivaldi maintenance, and re-optimization reacting to drift.

#include <gtest/gtest.h>

#include <memory>

#include "coords/mds.h"
#include "core/integrated.h"
#include "core/reopt.h"
#include "net/generators.h"
#include "overlay/sbon.h"
#include "query/workload.h"

namespace sbon::overlay {
namespace {

std::unique_ptr<Sbon> JitterySbon(uint64_t seed, double sigma) {
  Rng rng(seed);
  net::TransitStubParams p;
  p.transit_domains = 2;
  p.transit_nodes_per_domain = 2;
  p.stub_domains_per_transit_node = 2;
  p.nodes_per_stub_domain = 6;
  auto topo = net::GenerateTransitStub(p, &rng);
  EXPECT_TRUE(topo.ok());
  Sbon::Options opts;
  opts.seed = seed;
  opts.latency_jitter_sigma = sigma;
  opts.load_params.sigma = 0.0;
  auto s = Sbon::Create(std::move(topo.value()), opts);
  EXPECT_TRUE(s.ok());
  return std::move(s.value());
}

TEST(DynamicsTest, NoJitterMeansStaticLatencies) {
  auto s = JitterySbon(1, 0.0);
  const double before = s->latency().Latency(3, 40);
  s->TickNetwork();
  EXPECT_DOUBLE_EQ(s->latency().Latency(3, 40), before);
}

TEST(DynamicsTest, JitterEpochChangesLatencies) {
  auto s = JitterySbon(2, 0.3);
  const double base = s->base_latency().Latency(3, 40);
  s->TickNetwork();
  const double jittered = s->latency().Latency(3, 40);
  EXPECT_NE(jittered, base);
  EXPECT_GT(jittered, 0.0);
  // Base matrix stays pristine.
  EXPECT_DOUBLE_EQ(s->base_latency().Latency(3, 40), base);
  // Symmetry is preserved.
  EXPECT_DOUBLE_EQ(s->latency().Latency(3, 40), s->latency().Latency(40, 3));
}

TEST(DynamicsTest, EpochsAreIndependent) {
  auto s = JitterySbon(3, 0.3);
  s->TickNetwork();
  const double first = s->latency().Latency(5, 50);
  s->TickNetwork();
  EXPECT_NE(s->latency().Latency(5, 50), first);
}

TEST(DynamicsTest, JitterIsMultiplicativeAndBounded) {
  auto s = JitterySbon(4, 0.2);
  s->TickNetwork();
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = a + 1; b < 20; ++b) {
      const double base = s->base_latency().Latency(a, b);
      const double jit = s->latency().Latency(a, b);
      // LogNormal(0, 0.2): factors essentially never exceed e^{±5 sigma}.
      EXPECT_GT(jit, base * 0.3);
      EXPECT_LT(jit, base * 3.5);
    }
  }
}

TEST(DynamicsTest, OnlineVivaldiTracksCoherentDrift) {
  // Independent per-pair jitter is non-metric noise that no embedding can
  // fit; online tracking is about *coherent* drift. Double every latency
  // and check that incremental updates re-converge the coordinates.
  Rng trng(5);
  net::TransitStubParams p;
  p.transit_domains = 2;
  p.transit_nodes_per_domain = 2;
  p.stub_domains_per_transit_node = 2;
  p.nodes_per_stub_domain = 6;
  auto topo = net::GenerateTransitStub(p, &trng);
  ASSERT_TRUE(topo.ok());
  net::LatencyMatrix lat(*topo);
  Rng rng(55);
  coords::VivaldiSystem sys = coords::RunVivaldi(
      lat, coords::VivaldiSystem::Params{}, coords::VivaldiRunOptions{},
      &rng);
  // Coherent drift: the whole network slows down 2x.
  const size_t n = lat.NumNodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      lat.Set(a, b, lat.Latency(a, b) * 2.0);
    }
  }
  auto median_err = [&]() {
    std::vector<Vec> coords;
    for (NodeId i = 0; i < n; ++i) coords.push_back(sys.Coord(i));
    return coords::EvaluateEmbedding(lat, coords).median_relative_error;
  };
  const double stale = median_err();
  for (int round = 0; round < 60; ++round) {
    for (NodeId self = 0; self < n; ++self) {
      for (int k = 0; k < 4; ++k) {
        NodeId peer;
        do {
          peer = static_cast<NodeId>(rng.UniformInt(n));
        } while (peer == self);
        sys.Update(self, peer, lat.Latency(self, peer));
      }
    }
  }
  const double refreshed = median_err();
  EXPECT_LT(refreshed, stale * 0.5);
  EXPECT_LT(refreshed, 0.35);
}

TEST(DynamicsTest, OnlineUpdateKeepsEmbeddingBoundedUnderJitter) {
  // Under iid pair jitter the embedding cannot improve much, but online
  // maintenance must not blow it up either.
  auto s = JitterySbon(5, 0.35);
  auto median_err = [&]() {
    std::vector<Vec> coords;
    for (NodeId n = 0; n < s->topology().NumNodes(); ++n) {
      coords.push_back(s->cost_space().VectorCoord(n));
    }
    return coords::EvaluateEmbedding(s->latency(), coords)
        .median_relative_error;
  };
  s->TickNetwork();
  const double stale = median_err();
  for (int round = 0; round < 20; ++round) {
    s->UpdateCoordinatesOnline(8);
  }
  const double refreshed = median_err();
  EXPECT_LT(refreshed, stale * 1.25);
  EXPECT_LT(refreshed, 0.6);
}

TEST(DynamicsTest, OnlineUpdateNoOpForMds) {
  Rng rng(6);
  auto topo = net::GenerateLine(8, 10.0);
  ASSERT_TRUE(topo.ok());
  Sbon::Options opts;
  opts.coord_mode = Sbon::CoordMode::kMds;
  auto s = Sbon::Create(std::move(topo.value()), opts);
  ASSERT_TRUE(s.ok());
  const Vec before = (*s)->cost_space().VectorCoord(3);
  (*s)->UpdateCoordinatesOnline(4);  // must not crash or move coords
  EXPECT_EQ((*s)->cost_space().VectorCoord(3), before);
}

TEST(DynamicsTest, CircuitCostTracksLatencyEpoch) {
  auto s = JitterySbon(7, 0.5);
  query::WorkloadParams wp;
  wp.num_streams = 8;
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  core::IntegratedOptimizer opt(
      core::OptimizerConfig{},
      std::make_shared<placement::RelaxationPlacer>());
  query::QuerySpec q =
      query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
  auto r = opt.Optimize(q, cat, s.get());
  ASSERT_TRUE(r.ok());
  auto id = s->InstallCircuit(std::move(r->circuit));
  ASSERT_TRUE(id.ok());
  auto before = s->CircuitCostOf(*id);
  ASSERT_TRUE(before.ok());
  s->TickNetwork();
  auto after = s->CircuitCostOf(*id);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->network_usage, before->network_usage);
}

TEST(DynamicsTest, FullReoptRespondsToLatencyDrift) {
  // Under repeated adverse epochs, a full re-optimization should (at least
  // sometimes) find and deploy a cheaper parallel circuit. We assert the
  // mechanics stay consistent and that redeployment is possible.
  auto s = JitterySbon(8, 0.6);
  query::WorkloadParams wp;
  wp.num_streams = 8;
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  core::IntegratedOptimizer opt(
      core::OptimizerConfig{},
      std::make_shared<placement::RelaxationPlacer>());
  query::QuerySpec q =
      query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
  auto r = opt.Optimize(q, cat, s.get());
  ASSERT_TRUE(r.ok());
  auto id = s->InstallCircuit(std::move(r->circuit));
  ASSERT_TRUE(id.ok());

  core::ReoptConfig rc;
  rc.replan_threshold = 0.10;
  CircuitId current = *id;
  size_t redeploys = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    s->TickNetwork();
    for (int i = 0; i < 5; ++i) s->UpdateCoordinatesOnline(4);
    s->RefreshIndex();
    auto rep = core::FullReoptimize(s.get(), current, q, cat, &opt, rc);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    if (rep->redeployed) {
      ++redeploys;
      current = rep->new_circuit;
    }
    EXPECT_EQ(s->circuits().size(), 1u);
  }
  EXPECT_GT(redeploys, 0u);
  EXPECT_NE(s->FindCircuit(current), nullptr);
}

TEST(DynamicsTest, LocalReoptUnderCombinedDynamics) {
  auto s = JitterySbon(9, 0.4);
  query::WorkloadParams wp;
  wp.num_streams = 8;
  query::Catalog cat =
      query::RandomCatalog(wp, s->overlay_nodes(), &s->rng());
  core::IntegratedOptimizer opt(
      core::OptimizerConfig{},
      std::make_shared<placement::RelaxationPlacer>());
  std::vector<CircuitId> ids;
  for (int i = 0; i < 4; ++i) {
    query::QuerySpec q =
        query::RandomQuery(wp, cat, s->overlay_nodes(), &s->rng());
    auto r = opt.Optimize(q, cat, s.get());
    ASSERT_TRUE(r.ok());
    auto id = s->InstallCircuit(std::move(r->circuit));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  placement::RelaxationPlacer placer;
  for (int epoch = 0; epoch < 6; ++epoch) {
    s->TickNetwork();
    s->Tick(1.0);
    s->UpdateCoordinatesOnline(4);
    s->RefreshIndex();
    for (CircuitId id : ids) {
      auto rep = core::LocalReoptimize(s.get(), id, placer,
                                       core::ReoptConfig{});
      ASSERT_TRUE(rep.ok());
      // Migration must never make the estimate worse than doing nothing.
      EXPECT_LE(rep->estimated_cost_after,
                rep->estimated_cost_before * 1.0001);
    }
  }
  for (CircuitId id : ids) {
    ASSERT_TRUE(s->RemoveCircuit(id).ok());
  }
  EXPECT_EQ(s->NumServices(), 0u);
}

}  // namespace
}  // namespace sbon::overlay

// End-to-end placement regression suite: drives overlay::Sbon through the
// full pipeline (topology -> coordinate embedding -> plan enumeration ->
// virtual placement -> physical mapping -> installation) via the shared
// scenario harness, covering the two-step baseline, the integrated
// optimizer, multi-query reuse, and re-optimization under churn.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "harness/fixtures.h"
#include "harness/golden.h"
#include "harness/scenario.h"

namespace sbon::test {
namespace {

ScenarioOptions SmallScenario(uint64_t seed) {
  ScenarioOptions o;
  o.size = TopologySize::kSmall;
  o.seed = seed;
  o.sbon.load_params.sigma = 0.0;  // deterministic ambient load
  o.sbon.load_params.mean = 0.2;
  return o;
}

// --------------------- two-step vs integrated ---------------------

TEST(E2ETwoStepVsIntegrated, IntegratedEstimateNeverWorse) {
  ScenarioRunner run(SmallScenario(101));
  run.UseRandomCatalog(TestWorkloadParams(), 7);
  const auto queries =
      MakeQueries(run.sbon(), run.catalog(), TestWorkloadParams(), 6, 11);
  for (const auto& q : queries) {
    auto two = run.OptimizeOnly(OptimizerKind::kTwoStep, q);
    auto integrated = run.OptimizeOnly(OptimizerKind::kIntegrated, q);
    ASSERT_TRUE(two.ok()) << two.status().ToString();
    ASSERT_TRUE(integrated.ok()) << integrated.status().ToString();
    // The integrated optimizer places every top-K plan — including the
    // min-volume plan two-step commits to — so its estimate can't be worse.
    EXPECT_LE(integrated->estimated_cost, two->estimated_cost + 1e-9);
    EXPECT_EQ(two->plans_considered, 1u);
    EXPECT_GT(integrated->plans_considered, 0u);
  }
}

TEST(E2ETwoStepVsIntegrated, BothInstallWithValidTrueCost) {
  ScenarioRunner run(SmallScenario(102));
  run.UseRandomCatalog(TestWorkloadParams(), 3);
  const auto queries =
      MakeQueries(run.sbon(), run.catalog(), TestWorkloadParams(), 2, 5);

  auto two = run.PlaceAndInstall(OptimizerKind::kTwoStep, queries[0]);
  auto integrated = run.PlaceAndInstall(OptimizerKind::kIntegrated, queries[1]);
  EXPECT_NE(two.circuit_id, kInvalidCircuit);
  EXPECT_NE(integrated.circuit_id, kInvalidCircuit);
  EXPECT_GT(two.true_cost.network_usage, 0.0);
  EXPECT_GT(integrated.true_cost.network_usage, 0.0);
  run.VerifyAllInstalled();
  EXPECT_EQ(run.sbon().circuits().size(), 2u);
}

// ------------------------- multi-query -------------------------

TEST(E2EMultiQuery, ReusePrunedByRadiusStillInstallable) {
  ScenarioOptions opts = SmallScenario(103);
  opts.multi_query.reuse_radius = -1.0;  // unbounded reuse
  ScenarioRunner run(opts);
  run.UseCatalog(TwoStreamCatalog(run.sbon()));

  const auto& nodes = run.sbon().overlay_nodes();
  query::QuerySpec q =
      query::QuerySpec::SimpleJoin({0, 1}, nodes[4], 0.01);
  auto first = run.PlaceAndInstall(OptimizerKind::kMultiQuery, q);
  ASSERT_NE(first.circuit_id, kInvalidCircuit);
  EXPECT_EQ(first.services_reused, 0u);  // nothing deployed yet

  // Same join, distant consumer: the join service should be shared, and
  // the reuse-based estimate can't be worse than placing q2 standalone.
  query::QuerySpec q2 = q;
  q2.consumer = nodes[nodes.size() - 1];
  auto standalone = run.OptimizeOnly(OptimizerKind::kIntegrated, q2);
  ASSERT_TRUE(standalone.ok()) << standalone.status().ToString();
  auto second = run.PlaceAndInstall(OptimizerKind::kMultiQuery, q2);
  ASSERT_NE(second.circuit_id, kInvalidCircuit);
  EXPECT_GE(second.services_reused, 1u);
  EXPECT_LE(second.estimated_cost, standalone->estimated_cost + 1e-9);
  run.VerifyAllInstalled();
}

TEST(E2EMultiQuery, SequentialWorkloadReuseReducesServices) {
  // The multi-tenant dashboard pattern: the same continuous queries are
  // subscribed to by several consumers. Install that workload twice — once
  // with reuse disabled, once with unbounded reuse — and require reuse to
  // deploy strictly fewer service instances.
  size_t services_no_reuse = 0;
  size_t services_reuse = 0;
  size_t reused_bindings = 0;
  for (double radius : {0.0, -1.0}) {
    ScenarioOptions opts = SmallScenario(104);
    opts.multi_query.reuse_radius = radius;
    ScenarioRunner run(opts);
    run.UseRandomCatalog(TestWorkloadParams(6), 21);
    const auto& nodes = run.sbon().overlay_nodes();
    const std::vector<query::QuerySpec> base = {
        query::QuerySpec::SimpleJoin({0, 1, 2}, nodes[0], 0.001),
        query::QuerySpec::SimpleJoin({3, 4}, nodes[0], 0.01),
    };
    for (const auto& spec : base) {
      for (size_t c : {size_t{2}, nodes.size() / 2, nodes.size() - 1}) {
        query::QuerySpec q = spec;
        q.consumer = nodes[c];
        auto rec = run.PlaceAndInstall(OptimizerKind::kMultiQuery, q);
        ASSERT_NE(rec.circuit_id, kInvalidCircuit);
        if (radius < 0) reused_bindings += rec.services_reused;
      }
    }
    run.VerifyAllInstalled();
    (radius == 0.0 ? services_no_reuse : services_reuse) =
        run.sbon().NumServices();
  }
  EXPECT_GT(reused_bindings, 0u);
  EXPECT_LT(services_reuse, services_no_reuse);
}

// --------------------- re-optimization under churn ---------------------

TEST(E2EChurnReopt, LocalReoptNeverRaisesEstimatedCost) {
  ScenarioOptions opts = SmallScenario(105);
  opts.sbon.latency_jitter_sigma = 0.3;
  opts.sbon.load_params.sigma = 0.2;
  ScenarioRunner run(opts);
  run.UseRandomCatalog(TestWorkloadParams(), 13);
  const auto queries =
      MakeQueries(run.sbon(), run.catalog(), TestWorkloadParams(), 3, 17);
  std::vector<CircuitId> ids;
  for (const auto& q : queries) {
    auto rec = run.PlaceAndInstall(OptimizerKind::kIntegrated, q);
    ASSERT_NE(rec.circuit_id, kInvalidCircuit);
    ids.push_back(rec.circuit_id);
  }

  core::ReoptConfig cfg;
  for (int epoch = 0; epoch < 3; ++epoch) {
    run.Churn(/*dt=*/1.0, /*vivaldi_samples=*/4);
    for (CircuitId id : ids) {
      auto report = run.LocalReopt(id, cfg);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_LE(report->estimated_cost_after,
                report->estimated_cost_before + 1e-9);
      if (report->migrations == 0) {
        EXPECT_DOUBLE_EQ(report->estimated_cost_after,
                         report->estimated_cost_before);
      }
    }
    run.VerifyAllInstalled();
  }
}

TEST(E2EChurnReopt, FullReoptRedeploysConsistently) {
  ScenarioOptions opts = SmallScenario(106);
  opts.sbon.latency_jitter_sigma = 0.5;
  opts.sbon.load_params.sigma = 0.3;
  ScenarioRunner run(opts);
  run.UseRandomCatalog(TestWorkloadParams(), 19);
  const auto queries =
      MakeQueries(run.sbon(), run.catalog(), TestWorkloadParams(), 2, 23);
  auto rec = run.PlaceAndInstall(OptimizerKind::kIntegrated, queries[0]);
  ASSERT_NE(rec.circuit_id, kInvalidCircuit);

  core::ReoptConfig cfg;
  cfg.replan_threshold = 0.0;  // redeploy on any improvement
  bool redeployed = false;
  CircuitId live = rec.circuit_id;
  for (int epoch = 0; epoch < 5 && !redeployed; ++epoch) {
    run.Churn(/*dt=*/2.0, /*vivaldi_samples=*/4);
    auto report = run.FullReopt(live, OptimizerKind::kIntegrated, cfg);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (report->redeployed) {
      redeployed = true;
      EXPECT_NE(report->new_circuit, kInvalidCircuit);
      EXPECT_EQ(run.sbon().FindCircuit(live), nullptr)
          << "original circuit must be cancelled after redeployment";
      ASSERT_NE(run.sbon().FindCircuit(report->new_circuit), nullptr);
      live = report->new_circuit;
    } else {
      EXPECT_EQ(run.sbon().FindCircuit(live) != nullptr, true);
    }
    EXPECT_EQ(run.sbon().circuits().size(), 1u);
  }
  run.VerifyAllInstalled();
  // Under this much churn a zero-threshold replan fires essentially always;
  // if this starts failing, FullReoptimize stopped finding improvements.
  EXPECT_TRUE(redeployed);
}

// --------------------------- golden pin ---------------------------

// Pins the exact end-to-end placement (hosts, edges, aggregate costs) of a
// fixed-seed scenario. A diff here means placement behavior changed — if
// intentional, regenerate with SBON_UPDATE_GOLDEN=1 and commit.
TEST(E2EGolden, FixedSeedPlacementFingerprint) {
#ifndef SBON_GOLDEN_REFERENCE_TOOLCHAIN
  GTEST_SKIP() << "golden comparison runs only on the reference toolchain "
                  "(gcc, unsanitized); invariants still covered below";
#endif
  ScenarioRunner run(SmallScenario(42));
  run.UseRandomCatalog(TestWorkloadParams(8), 5);
  const auto queries =
      MakeQueries(run.sbon(), run.catalog(), TestWorkloadParams(8), 3, 9);
  run.PlaceAndInstall(OptimizerKind::kTwoStep, queries[0]);
  run.PlaceAndInstall(OptimizerKind::kIntegrated, queries[1]);
  run.PlaceAndInstall(OptimizerKind::kMultiQuery, queries[2]);
  run.VerifyAllInstalled();
  EXPECT_EQ("", CheckGolden("e2e_fixed_seed_placement",
                            OverlayFingerprint(run.sbon())));
}

}  // namespace
}  // namespace sbon::test

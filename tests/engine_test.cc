// Tests of the sbon::engine layer: strategy registries, the StreamEngine
// query lifecycle (Submit / SubmitAll / Remove / Reoptimize / AdvanceEpoch /
// Snapshot), shared-instance accounting across queries, and the
// failure-atomicity of installation (engine Submit and Sbon::InstallCircuit).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "engine/registry.h"
#include "engine/stream_engine.h"
#include "harness/fixtures.h"
#include "harness/golden.h"
#include "query/plan.h"

namespace sbon::test {
namespace {

engine::EngineOptions SmallEngineOptions(uint64_t seed) {
  engine::EngineOptions eo;
  eo.topology = MakeTransitStubTopology(TopologySize::kSmall, seed);
  eo.sbon.seed = seed;
  eo.sbon.load_params.sigma = 0.0;  // deterministic ambient load
  eo.sbon.load_params.mean = 0.2;
  eo.config = TestOptimizerConfig();
  return eo;
}

std::unique_ptr<engine::StreamEngine> MakeEngine(engine::EngineOptions eo) {
  auto created = engine::StreamEngine::Create(std::move(eo));
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created.value());
}

std::vector<double> ServiceLoads(const overlay::Sbon& sbon) {
  std::vector<double> loads;
  for (NodeId n = 0; n < sbon.topology().NumNodes(); ++n) {
    loads.push_back(sbon.ServiceLoad(n));
  }
  return loads;
}

// ----------------------------- registries -----------------------------

TEST(Registry, BuiltinStrategiesSelfRegister) {
  auto& optimizers = engine::OptimizerRegistry::Global();
  for (const char* name : {"two-step", "integrated", "multi-query"}) {
    EXPECT_TRUE(optimizers.Has(name)) << name;
  }
  auto& placers = engine::PlacerRegistry::Global();
  for (const char* name : {"relaxation", "centroid", "gradient"}) {
    EXPECT_TRUE(placers.Has(name)) << name;
  }
}

TEST(Registry, UnknownNamesAreNotFound) {
  engine::OptimizerSpec spec;
  spec.placer = DefaultPlacer();
  auto opt = engine::OptimizerRegistry::Global().Create("nope", spec);
  EXPECT_FALSE(opt.ok());
  EXPECT_EQ(opt.status().code(), StatusCode::kNotFound);
  auto placer = engine::PlacerRegistry::Global().Create("nope");
  EXPECT_FALSE(placer.ok());
  EXPECT_EQ(placer.status().code(), StatusCode::kNotFound);
}

TEST(Registry, CreatedOptimizersReportTheirNames) {
  engine::OptimizerSpec spec;
  spec.placer = DefaultPlacer();
  for (const char* name : {"two-step", "integrated", "multi-query"}) {
    auto opt = engine::OptimizerRegistry::Global().Create(name, spec);
    ASSERT_TRUE(opt.ok()) << opt.status().ToString();
    EXPECT_EQ((*opt)->Name(), name);
  }
  for (const char* name : {"relaxation", "centroid", "gradient"}) {
    auto placer = engine::PlacerRegistry::Global().Create(name);
    ASSERT_TRUE(placer.ok()) << placer.status().ToString();
    EXPECT_EQ((*placer)->Name(), name);
  }
}

TEST(Registry, EngineCreationRejectsUnknownStrategies) {
  engine::EngineOptions eo = SmallEngineOptions(11);
  eo.optimizer = "definitely-not-registered";
  auto created = engine::StreamEngine::Create(std::move(eo));
  EXPECT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kNotFound);
}

// --------------------------- query lifecycle ---------------------------

TEST(StreamEngine, SubmitDeploysAndRemoveReleasesEverything) {
  auto engine = MakeEngine(SmallEngineOptions(21));
  engine->SetCatalog(TwoStreamCatalog(engine->sbon()));
  const auto& nodes = engine->sbon().overlay_nodes();

  auto handle = engine->Submit(
      query::QuerySpec::SimpleJoin({0, 1}, nodes[4], 0.01));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_TRUE(*handle);
  EXPECT_EQ(engine->NumQueries(), 1u);
  EXPECT_GT(engine->sbon().NumServices(), 0u);

  auto stats = engine->StatsOf(*handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->optimizer, "integrated");
  EXPECT_GT(stats->estimated_cost, 0.0);
  EXPECT_GT(stats->true_cost.network_usage, 0.0);
  EXPECT_NE(engine->sbon().FindCircuit(stats->circuit), nullptr);
  ASSERT_NE(engine->SpecOf(*handle), nullptr);
  EXPECT_EQ(engine->SpecOf(*handle)->consumer, nodes[4]);
  EXPECT_EQ(engine->HandleOf(stats->circuit), *handle);

  auto estimate = engine->CurrentEstimatedCost(*handle);
  ASSERT_TRUE(estimate.ok());
  EXPECT_TRUE(std::isfinite(*estimate));

  ASSERT_TRUE(engine->Remove(*handle).ok());
  EXPECT_EQ(engine->NumQueries(), 0u);
  EXPECT_EQ(engine->sbon().NumServices(), 0u);
  for (double load : ServiceLoads(engine->sbon())) EXPECT_EQ(load, 0.0);
  EXPECT_FALSE(engine->Remove(*handle).ok()) << "double remove must fail";
}

TEST(StreamEngine, SharedInstanceSurvivesPartialRemoval) {
  // Two queries sharing a service instance: removing one must keep the
  // instance alive (with its load) for the other; removing both must
  // release the instance and every load delta.
  engine::EngineOptions eo = SmallEngineOptions(23);
  eo.optimizer = "multi-query";
  eo.multi_query.reuse_radius = -1.0;  // unbounded reuse
  auto engine = MakeEngine(std::move(eo));
  engine->SetCatalog(TwoStreamCatalog(engine->sbon()));
  const auto& nodes = engine->sbon().overlay_nodes();

  query::QuerySpec q1 = query::QuerySpec::SimpleJoin({0, 1}, nodes[4], 0.01);
  query::QuerySpec q2 = q1;
  q2.consumer = nodes[nodes.size() - 1];

  auto h1 = engine->Submit(q1);
  ASSERT_TRUE(h1.ok()) << h1.status().ToString();
  const size_t services_single = engine->sbon().NumServices();
  ASSERT_GT(services_single, 0u);

  auto h2 = engine->Submit(q2);
  ASSERT_TRUE(h2.ok()) << h2.status().ToString();
  auto stats2 = engine->StatsOf(*h2);
  ASSERT_TRUE(stats2.ok());
  ASSERT_GE(stats2->services_reused, 1u) << "q2 should reuse q1's service";
  EXPECT_EQ(engine->sbon().NumServices(), services_single)
      << "full reuse deploys no new instances";

  // The shared instance is referenced by both circuits and charged once.
  ServiceInstanceId shared = kInvalidService;
  NodeId shared_host = kInvalidNode;
  for (const auto& [id, inst] : engine->sbon().services()) {
    if (inst.Shared()) {
      shared = id;
      shared_host = inst.host;
    }
  }
  ASSERT_NE(shared, kInvalidService);
  const double shared_load = engine->sbon().ServiceLoad(shared_host);
  EXPECT_GT(shared_load, 0.0);

  ASSERT_TRUE(engine->Remove(*h1).ok());
  const overlay::ServiceInstance* inst = engine->sbon().FindService(shared);
  ASSERT_NE(inst, nullptr) << "shared instance must survive partial removal";
  EXPECT_EQ(inst->circuits.size(), 1u);
  EXPECT_EQ(engine->sbon().ServiceLoad(shared_host), shared_load)
      << "shared load is charged once, so removal of one user changes "
         "nothing";
  EXPECT_EQ(engine->sbon().NumServices(), services_single);

  ASSERT_TRUE(engine->Remove(*h2).ok());
  EXPECT_EQ(engine->sbon().NumServices(), 0u);
  for (double load : ServiceLoads(engine->sbon())) EXPECT_EQ(load, 0.0);
}

TEST(StreamEngine, SubmitAllReportsPerQueryOutcomes) {
  auto engine = MakeEngine(SmallEngineOptions(29));
  engine->SetCatalog(TwoStreamCatalog(engine->sbon()));
  const auto& nodes = engine->sbon().overlay_nodes();

  query::QuerySpec good = query::QuerySpec::SimpleJoin({0, 1}, nodes[2], 0.01);
  query::QuerySpec bad = good;
  bad.streams = {0, 99};  // unknown stream id: optimization must fail

  auto handles = engine->SubmitAll({good, bad, good});
  ASSERT_EQ(handles.size(), 3u);
  EXPECT_TRUE(handles[0].ok());
  EXPECT_FALSE(handles[1].ok());
  EXPECT_TRUE(handles[2].ok());
  EXPECT_EQ(engine->NumQueries(), 2u);
  EXPECT_NE(handles[0].value(), handles[2].value());
}

TEST(StreamEngine, SnapshotAggregatesPerQueryAndEngineState) {
  auto engine = MakeEngine(SmallEngineOptions(31));
  engine->SetCatalog(TwoStreamCatalog(engine->sbon()));
  const auto& nodes = engine->sbon().overlay_nodes();
  auto h1 = engine->Submit(
      query::QuerySpec::SimpleJoin({0, 1}, nodes[3], 0.01));
  auto h2 = engine->Submit(
      query::QuerySpec::SimpleJoin({0, 1}, nodes[7], 0.02));
  ASSERT_TRUE(h1.ok() && h2.ok());

  const engine::EngineSnapshot snap = engine->Snapshot();
  EXPECT_EQ(snap.num_queries, 2u);
  EXPECT_EQ(snap.num_services, engine->sbon().NumServices());
  EXPECT_GT(snap.total_network_usage, 0.0);
  EXPECT_GT(snap.max_load, 0.0);
  ASSERT_EQ(snap.queries.size(), 2u);
  EXPECT_EQ(snap.queries[0].handle, *h1);  // submission order
  EXPECT_EQ(snap.queries[1].handle, *h2);
  for (const engine::QueryStats& q : snap.queries) {
    EXPECT_GT(q.estimated_cost, 0.0);
    EXPECT_GT(q.true_cost.network_usage, 0.0);
  }
}

TEST(StreamEngine, AdvanceEpochEpsilonGatesRingRepublishes) {
  auto engine = MakeEngine(SmallEngineOptions(41));
  const overlay::IndexRefreshStats& stats =
      engine->sbon().index_refresh_stats();

  // Static ambient load (sigma 0, load at its mean) and no jitter: the
  // epoch moves nothing, so the refresh must be quiet — zero ring
  // re-publishes, no restabilization.
  engine::EpochOptions epoch;
  epoch.dt = 1.0;
  engine->AdvanceEpoch(epoch);
  EXPECT_EQ(stats.refreshes, 1u);
  EXPECT_EQ(stats.republished, 0u);
  EXPECT_EQ(stats.quiet_refreshes, 1u);

  // A real coordinate movement gated by a huge epsilon stays quiet...
  const NodeId moved = engine->sbon().overlay_nodes().front();
  engine->sbon().SetBaseLoad(moved, 0.95);
  engine::EpochOptions gated = epoch;
  gated.refresh_epsilon = 1e9;
  engine->AdvanceEpoch(gated);
  EXPECT_EQ(stats.republished, 0u);
  EXPECT_EQ(stats.quiet_refreshes, 2u);

  // ...and the default epsilon (0) republishes exactly the moved node.
  engine->AdvanceEpoch(epoch);
  EXPECT_EQ(stats.republished, 1u);
  EXPECT_EQ(stats.quiet_refreshes, 2u);
}

TEST(StreamEngine, AdvanceEpochRecordsTheStagedPipeline) {
  engine::EngineOptions eo = SmallEngineOptions(43);
  eo.sbon.latency_jitter_sigma = 0.2;
  auto engine = MakeEngine(std::move(eo));
  EXPECT_TRUE(engine->last_epoch_trace().empty());

  // Serial epoch (threads pinned to 1 so the SBON_EPOCH_THREADS CI override
  // cannot change what this test asserts): every stage appears in pipeline
  // order; the disabled ones record ran=false and nothing shards.
  engine::EpochOptions epoch;
  epoch.dt = 1.0;
  epoch.vivaldi_samples = 2;
  epoch.threads = 1;
  engine->AdvanceEpoch(epoch);
  const auto& trace = engine->last_epoch_trace();
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_STREQ(trace[0].name, "jitter");
  EXPECT_STREQ(trace[1].name, "load");
  EXPECT_STREQ(trace[2].name, "coords");
  EXPECT_STREQ(trace[3].name, "churn+repair");
  EXPECT_STREQ(trace[4].name, "refresh");
  EXPECT_TRUE(trace[0].ran);
  EXPECT_TRUE(trace[1].ran);
  EXPECT_TRUE(trace[2].ran);
  EXPECT_FALSE(trace[3].ran);  // no churn model attached
  EXPECT_TRUE(trace[4].ran);
  for (const auto& stage : trace) EXPECT_FALSE(stage.sharded);

  // Multi-threaded epoch: exactly the parallelizable stages shard; the
  // serial-only stages (load, churn+repair) never see the pool.
  epoch.threads = 4;
  engine->AdvanceEpoch(epoch);
  const auto& sharded = engine->last_epoch_trace();
  ASSERT_EQ(sharded.size(), 5u);
  EXPECT_TRUE(sharded[0].sharded);   // jitter
  EXPECT_FALSE(sharded[1].sharded);  // load
  EXPECT_TRUE(sharded[2].sharded);   // coords
  EXPECT_FALSE(sharded[3].sharded);  // churn+repair (disabled anyway)
  EXPECT_TRUE(sharded[4].sharded);   // refresh
}

TEST(StreamEngine, AdvanceEpochAndReoptimizeKeepHandlesValid) {
  engine::EngineOptions eo = SmallEngineOptions(37);
  eo.sbon.latency_jitter_sigma = 0.5;
  eo.sbon.load_params.sigma = 0.3;
  auto engine = MakeEngine(std::move(eo));
  engine->SetCatalog(MakeCatalog(engine->sbon(), TestWorkloadParams(), 19));
  const auto queries = MakeQueries(engine->sbon(), engine->catalog(),
                                   TestWorkloadParams(), 1, 23);
  auto handle = engine->Submit(queries[0]);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  engine::EpochOptions churn;
  churn.dt = 2.0;
  churn.vivaldi_samples = 4;

  // Local re-optimization (service migration) never raises the estimate.
  engine->AdvanceEpoch(churn);
  engine::ReoptPolicy local;  // defaults to Mode::kLocal
  auto lo = engine->Reoptimize(*handle, local);
  ASSERT_TRUE(lo.ok()) << lo.status().ToString();
  EXPECT_LE(lo->local.estimated_cost_after,
            lo->local.estimated_cost_before + 1e-9);

  engine::ReoptPolicy full;
  full.mode = engine::ReoptPolicy::Mode::kFull;
  full.config.replan_threshold = 0.0;  // redeploy on any improvement

  bool redeployed = false;
  for (int epoch = 0; epoch < 8 && !redeployed; ++epoch) {
    engine->AdvanceEpoch(churn);
    const CircuitId before = engine->CircuitOf(*handle);
    auto fo = engine->Reoptimize(*handle, full);
    ASSERT_TRUE(fo.ok()) << fo.status().ToString();
    if (fo->full.redeployed) {
      redeployed = true;
      EXPECT_EQ(engine->CircuitOf(*handle), fo->full.new_circuit)
          << "handle must track the replacement circuit";
      EXPECT_EQ(engine->sbon().FindCircuit(before), nullptr)
          << "original circuit must be cancelled after redeployment";
    } else {
      EXPECT_EQ(engine->CircuitOf(*handle), before);
    }
    EXPECT_EQ(engine->sbon().circuits().size(), 1u);
  }
  // Under this much churn a zero-threshold replan fires essentially always.
  EXPECT_TRUE(redeployed);
  ASSERT_TRUE(engine->Remove(*handle).ok());
  EXPECT_EQ(engine->sbon().NumServices(), 0u);
}

TEST(StreamEngine, DeterministicAcrossIdenticalEngines) {
  auto run = [] {
    auto engine = MakeEngine(SmallEngineOptions(41));
    engine->SetCatalog(MakeCatalog(engine->sbon(), TestWorkloadParams(), 5));
    const auto queries = MakeQueries(engine->sbon(), engine->catalog(),
                                     TestWorkloadParams(), 3, 9);
    for (const auto& q : queries) EXPECT_TRUE(engine->Submit(q).ok());
    return OverlayFingerprint(engine->sbon());
  };
  EXPECT_EQ(run(), run());
}

// ------------------------- failure atomicity -------------------------

TEST(StreamEngine, FailedSubmitLeavesOverlayUntouched) {
  auto engine = MakeEngine(SmallEngineOptions(43));
  engine->SetCatalog(TwoStreamCatalog(engine->sbon()));
  const auto& nodes = engine->sbon().overlay_nodes();
  ASSERT_TRUE(
      engine->Submit(query::QuerySpec::SimpleJoin({0, 1}, nodes[2], 0.01))
          .ok());
  const size_t services = engine->sbon().NumServices();
  const std::vector<double> loads = ServiceLoads(engine->sbon());

  query::QuerySpec bad;
  bad.consumer = nodes[3];
  bad.streams = {0, 99};  // unknown stream id
  auto handle = engine->Submit(bad);
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(engine->NumQueries(), 1u);
  EXPECT_EQ(engine->sbon().NumServices(), services);
  EXPECT_EQ(ServiceLoads(engine->sbon()), loads);
}

// Forces the mid-install failure path of Sbon::InstallCircuit: a bushy
// 4-way join whose second sub-join claims to reuse a nonexistent service
// instance. Installation creates the first sub-join's instance (with its
// load delta), then hits the missing instance — and must roll everything
// back, leaving NumServices() and TotalLoad unchanged.
TEST(InstallAtomicity, MidInstallFailureRollsBackPartialState) {
  auto sbon = MakeTransitStubSbon(TopologySize::kSmall, 47);
  const auto& nodes = sbon->overlay_nodes();
  query::Catalog catalog;
  for (int i = 0; i < 4; ++i) {
    catalog.AddStream(query::IndexedStreamName(i), 100.0, 64.0, nodes[i]);
  }

  query::LogicalPlan plan;
  const int p0 = plan.AddProducer(0), p1 = plan.AddProducer(1);
  const int p2 = plan.AddProducer(2), p3 = plan.AddProducer(3);
  const int join_a = plan.AddJoin(p0, p1, 0.01);   // installed first
  const int join_b = plan.AddJoin(p2, p3, 0.01);   // fails (bogus reuse)
  const int root = plan.AddJoin(join_a, join_b, 0.01);
  plan.SetConsumer(root, nodes[8]);
  ASSERT_TRUE(plan.AnnotateRates(catalog).ok());

  auto circuit = overlay::Circuit::FromPlan(plan, catalog);
  ASSERT_TRUE(circuit.ok()) << circuit.status().ToString();
  circuit->mutable_vertex(join_a).host = nodes[5];
  circuit->mutable_vertex(root).host = nodes[6];
  const ServiceInstanceId bogus = 9999;
  circuit->BindReusedSubtree(join_b, bogus, nodes[7],
                             /*upstream_latency_ms=*/0.0);
  ASSERT_TRUE(circuit->FullyPlaced());
  ASSERT_LT(join_a, join_b) << "creation must precede the failure point";

  const size_t services_before = sbon->NumServices();
  std::vector<double> total_before;
  for (NodeId n = 0; n < sbon->topology().NumNodes(); ++n) {
    total_before.push_back(sbon->TotalLoad(n));
  }
  const size_t circuits_before = sbon->circuits().size();

  auto failed = sbon->InstallCircuit(*circuit);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kNotFound);

  EXPECT_EQ(sbon->NumServices(), services_before);
  EXPECT_EQ(sbon->circuits().size(), circuits_before);
  for (NodeId n = 0; n < sbon->topology().NumNodes(); ++n) {
    EXPECT_EQ(sbon->TotalLoad(n), total_before[n]) << "node " << n;
  }
  for (double load : ServiceLoads(*sbon)) EXPECT_EQ(load, 0.0);

  // The overlay must still accept a clean install of the same plan, with
  // ids unaffected by the rolled-back attempt.
  auto clean = overlay::Circuit::FromPlan(plan, catalog);
  ASSERT_TRUE(clean.ok());
  clean->mutable_vertex(join_a).host = nodes[5];
  clean->mutable_vertex(join_b).host = nodes[7];
  clean->mutable_vertex(root).host = nodes[6];
  auto id = sbon->InstallCircuit(std::move(clean.value()));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 1u) << "failed install must not burn circuit ids";
  EXPECT_EQ(sbon->NumServices(), 3u);
  const overlay::Circuit* installed = sbon->FindCircuit(*id);
  ASSERT_NE(installed, nullptr);
  EXPECT_EQ(installed->vertex(join_a).service, 1u)
      << "failed install must not burn service ids";

  // A second failing attempt now hits hosts that already carry service
  // load (the clean circuit's join_a also sits on nodes[5]); rollback must
  // restore those loads bit-exactly, not just approximately — a rollback
  // that re-subtracts deltas would leave 1-ulp drift here.
  const std::vector<double> loads_with_circuit = ServiceLoads(*sbon);
  auto failed_again = sbon->InstallCircuit(*circuit);
  ASSERT_FALSE(failed_again.ok());
  EXPECT_EQ(ServiceLoads(*sbon), loads_with_circuit);
  EXPECT_EQ(sbon->NumServices(), 3u);
}

TEST(StreamEngine, RemoveToleratesOutOfBandCircuitTeardown) {
  auto engine = MakeEngine(SmallEngineOptions(53));
  engine->SetCatalog(TwoStreamCatalog(engine->sbon()));
  const auto& nodes = engine->sbon().overlay_nodes();
  auto handle = engine->Submit(
      query::QuerySpec::SimpleJoin({0, 1}, nodes[4], 0.01));
  ASSERT_TRUE(handle.ok());

  // Tear the circuit down directly on the overlay (bypassing the engine):
  // the query record must still be releasable, not wedged forever.
  ASSERT_TRUE(engine->sbon().RemoveCircuit(engine->CircuitOf(*handle)).ok());
  EXPECT_TRUE(engine->Remove(*handle).ok());
  EXPECT_EQ(engine->NumQueries(), 0u);
}

}  // namespace
}  // namespace sbon::test

// Dense-vs-sparse fabric equivalence at overlay scale: for 5 seeds at
// N in {64, 512}, a full engine bring-up plus maintenance epochs must end
// BIT-IDENTICAL across backends — live latencies, Vivaldi coordinates,
// scalar penalties, and every placed circuit vertex. This is the contract
// that lets the sparse backend slide in behind the FabricBackend seam
// without invalidating a single golden or determinism pin.
//
// The binary also audits the sparse backend's memory claim through a
// counting operator new: while the sparse overlay is built and driven, no
// single heap allocation may come anywhere near an N x N latency matrix
// (or the N(N+1)/2 dense jitter triangle).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "engine/stream_engine.h"
#include "harness/fixtures.h"
#include "net/generators.h"
#include "net/sparse_fabric.h"

namespace {
size_t g_max_alloc_size = 0;
}  // namespace

void* operator new(std::size_t size) {
  if (size > g_max_alloc_size) g_max_alloc_size = size;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sbon::test {
namespace {

// Transit-stub topology of ~target nodes (the fixture presets only cover a
// few sizes; the suite pins N = 64 and 512 exactly as the issue specifies).
net::Topology TopoOfSize(size_t target, uint64_t seed) {
  net::TransitStubParams p;
  p.transit_domains = 2;
  p.transit_nodes_per_domain = 2;
  p.stub_domains_per_transit_node = 3;
  const size_t transit = p.transit_domains * p.transit_nodes_per_domain;
  p.nodes_per_stub_domain = std::max<size_t>(
      2, (target - transit) / (transit * p.stub_domains_per_transit_node));
  Rng rng(seed);
  auto topo = net::GenerateTransitStub(p, &rng);
  EXPECT_TRUE(topo.ok());
  return std::move(topo.value());
}

struct BackendRun {
  std::unique_ptr<engine::StreamEngine> eng;
  std::vector<engine::QueryHandle> handles;
};

BackendRun BuildRun(size_t target, uint64_t seed,
                    overlay::Sbon::FabricMode mode) {
  engine::EngineOptions eo;
  eo.topology = TopoOfSize(target, seed);
  eo.sbon.seed = seed;
  eo.sbon.latency_jitter_sigma = 0.1;
  eo.sbon.fabric_mode = mode;
  eo.config = TestOptimizerConfig();
  BackendRun run;
  run.eng = engine::StreamEngine::Create(std::move(eo)).value();
  const overlay::Sbon& sbon = run.eng->sbon();
  const query::WorkloadParams wp = TestWorkloadParams();
  run.eng->SetCatalog(MakeCatalog(sbon, wp, seed * 3 + 1));
  const auto specs =
      MakeQueries(sbon, run.eng->catalog(), wp, 6, seed * 5 + 2);
  for (const auto& spec : specs) {
    auto h = run.eng->Submit(spec);
    if (h.ok()) run.handles.push_back(*h);
  }
  return run;
}

// Every upper-triangle live pair plus a strided sample of mirror reads
// (the full mirror sweep would thrash the sparse row cache for no extra
// coverage: mirrors resolve through the same source row by construction).
void ExpectLiveLatenciesEqual(const overlay::Sbon& dense,
                              const overlay::Sbon& sparse,
                              const char* where) {
  const size_t n = dense.topology().NumNodes();
  ASSERT_EQ(n, sparse.topology().NumNodes());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a; b < n; ++b) {
      ASSERT_EQ(dense.latency().Latency(a, b), sparse.latency().Latency(a, b))
          << where << ": live (" << a << "," << b << ")";
    }
    const NodeId mirror_b = static_cast<NodeId>((a * 31 + 7) % n);
    ASSERT_EQ(dense.latency().Latency(a, mirror_b),
              sparse.latency().Latency(a, mirror_b))
        << where << ": mirror (" << a << "," << mirror_b << ")";
  }
}

void ExpectCoordsEqual(const overlay::Sbon& dense,
                       const overlay::Sbon& sparse, const char* where) {
  const auto& ds = dense.cost_space();
  const auto& ss = sparse.cost_space();
  ASSERT_EQ(ds.NumNodes(), ss.NumNodes());
  for (NodeId n = 0; n < ds.NumNodes(); ++n) {
    const Vec& dv = ds.VectorCoord(n);
    const Vec& sv = ss.VectorCoord(n);
    ASSERT_EQ(dv.dims(), sv.dims());
    for (size_t d = 0; d < dv.dims(); ++d) {
      ASSERT_EQ(dv[d], sv[d]) << where << ": coord " << n << " dim " << d;
    }
    ASSERT_EQ(ds.ScalarPenalty(n), ss.ScalarPenalty(n))
        << where << ": scalar " << n;
  }
}

void ExpectPlacementsEqual(const overlay::Sbon& dense,
                           const overlay::Sbon& sparse, const char* where) {
  const auto& dc = dense.circuits();
  const auto& sc = sparse.circuits();
  ASSERT_EQ(dc.size(), sc.size()) << where;
  auto it_d = dc.begin();
  auto it_s = sc.begin();
  for (; it_d != dc.end(); ++it_d, ++it_s) {
    ASSERT_EQ(it_d->first, it_s->first) << where << ": circuit ids";
    const auto& cd = it_d->second;
    const auto& cs = it_s->second;
    ASSERT_EQ(cd.NumVertices(), cs.NumVertices());
    for (size_t v = 0; v < cd.NumVertices(); ++v) {
      ASSERT_EQ(cd.vertex(static_cast<int>(v)).host,
                cs.vertex(static_cast<int>(v)).host)
          << where << ": circuit " << it_d->first << " vertex " << v;
    }
  }
}

TEST(FabricEquivalenceTest, BitIdenticalAcrossBackendsSeedsAndSizes) {
  for (const size_t target : {size_t{64}, size_t{512}}) {
    for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      // Sparse first, under the allocation watermark: bring-up, catalog,
      // and placement of the sparse overlay must never touch an O(N^2)
      // buffer.
      g_max_alloc_size = 0;
      BackendRun sparse =
          BuildRun(target, seed, overlay::Sbon::FabricMode::kSparse);
      const size_t sparse_build_max = g_max_alloc_size;
      BackendRun dense =
          BuildRun(target, seed, overlay::Sbon::FabricMode::kDense);
      const overlay::Sbon& ds = dense.eng->sbon();
      const overlay::Sbon& ss = sparse.eng->sbon();
      ASSERT_STREQ(ds.fabric().name(), "dense");
      ASSERT_STREQ(ss.fabric().name(), "sparse");
      ASSERT_EQ(dense.handles.size(), sparse.handles.size());

      ExpectLiveLatenciesEqual(ds, ss, "post-bring-up");
      ExpectCoordsEqual(ds, ss, "post-bring-up");
      ExpectPlacementsEqual(ds, ss, "post-bring-up");

      engine::EpochOptions epoch;
      epoch.dt = 1.0;
      epoch.tick_network = true;
      epoch.vivaldi_samples = 1;
      epoch.refresh_index = true;
      epoch.refresh_epsilon = 1.0;
      epoch.threads = 1;
      g_max_alloc_size = 0;
      for (int e = 0; e < 3; ++e) {
        dense.eng->AdvanceEpoch(epoch);
        sparse.eng->AdvanceEpoch(epoch);
        ExpectLiveLatenciesEqual(ds, ss, "epoch");
        ExpectCoordsEqual(ds, ss, "epoch");
      }
      ExpectPlacementsEqual(ds, ss, "post-epochs");
      const size_t epochs_max = g_max_alloc_size;

      // The flat-memory claim, asserted where quadratic buffers are
      // unambiguously larger than any legitimate O(N) array.
      const size_t n = ss.topology().NumNodes();
      if (n >= 256) {
        const size_t triangle_bytes = n * (n + 1) / 2 * sizeof(double);
        EXPECT_LT(sparse_build_max, triangle_bytes)
            << "sparse bring-up allocated a dense-sized buffer at N=" << n;
        EXPECT_LT(epochs_max, triangle_bytes)
            << "epoch loop allocated a dense-sized buffer at N=" << n;
      }
    }
  }
}

// The pinned dead-endpoint semantic, identical across backends: while an
// endpoint is down, every live() read involving it (self-pair included) is
// +infinity — never stale-finite, never NaN — base() stays pristine, the
// sentinel survives jitter ticks and partitions, and a revived node's row
// is bit-identical to never having crashed.
TEST(FabricEquivalenceTest, DeadEndpointLatencyIsInfiniteAcrossBackends) {
  for (const auto mode : {overlay::Sbon::FabricMode::kDense,
                          overlay::Sbon::FabricMode::kSparse}) {
    overlay::Sbon::Options opts;
    opts.fabric_mode = mode;
    opts.latency_jitter_sigma = 0.1;
    auto sbon = MakeTransitStubSbon(TopologySize::kTiny, 11, opts);
    const char* where = sbon->fabric().name();
    const size_t n = sbon->topology().NumNodes();
    const NodeId victim = sbon->overlay_nodes()[2];

    // Reference row captured from an untouched twin driven through the
    // same epoch schedule: crash + rejoin must be invisible afterwards.
    auto twin = MakeTransitStubSbon(TopologySize::kTiny, 11, opts);

    ASSERT_TRUE(sbon->FailNode(victim).ok());
    EXPECT_TRUE(sbon->fabric().EndpointDown(victim));
    for (NodeId b = 0; b < n; ++b) {
      EXPECT_TRUE(std::isinf(sbon->latency().Latency(victim, b)))
          << where << ": live (" << victim << "," << b << ") not +inf";
      EXPECT_TRUE(std::isinf(sbon->latency().Latency(b, victim)))
          << where << ": live (" << b << "," << victim << ") not +inf";
      EXPECT_FALSE(std::isnan(sbon->latency().Latency(victim, b)));
      // The pristine view answers "what would the healed network look
      // like" and must stay finite.
      EXPECT_TRUE(std::isfinite(sbon->base_latency().Latency(victim, b)))
          << where << ": base (" << victim << "," << b << ") poisoned";
    }

    // The sentinel must survive a jitter tick (which rewrites the live
    // view) and an active partition on top.
    sbon->TickNetwork();
    twin->TickNetwork();
    EXPECT_TRUE(std::isinf(sbon->latency().Latency(victim, 0)))
        << where << ": tick restored a dead endpoint's latency";
    std::vector<NodeId> group(sbon->overlay_nodes().begin(),
                              sbon->overlay_nodes().begin() + 4);
    ASSERT_TRUE(sbon->BeginPartition(group, 8.0).ok());
    ASSERT_TRUE(twin->BeginPartition(group, 8.0).ok());
    EXPECT_TRUE(std::isinf(sbon->latency().Latency(victim, 0)));
    ASSERT_TRUE(sbon->EndPartition().ok());
    ASSERT_TRUE(twin->EndPartition().ok());
    EXPECT_TRUE(std::isinf(sbon->latency().Latency(victim, 0)));

    // Revival restores the row bit-identically to the never-crashed twin.
    ASSERT_TRUE(sbon->RejoinNode(victim).ok());
    EXPECT_FALSE(sbon->fabric().EndpointDown(victim));
    for (NodeId b = 0; b < n; ++b) {
      ASSERT_EQ(sbon->latency().Latency(victim, b),
                twin->latency().Latency(victim, b))
          << where << ": revived row differs from never-crashed at b=" << b;
      ASSERT_EQ(sbon->latency().Latency(b, victim),
                twin->latency().Latency(b, victim))
          << where << ": revived column differs at b=" << b;
    }
  }
}

// The auto threshold picks the backend by size, and the sparse backend
// refuses the centralized MDS ablation (it would rebuild the dense matrix
// read by read).
TEST(FabricEquivalenceTest, AutoSelectionAndModeGuards) {
  overlay::Sbon::Options opts;
  opts.sparse_auto_threshold = 40;  // below kTiny's ~50 nodes
  auto sparse_auto = MakeTransitStubSbon(TopologySize::kTiny, 3, opts);
  EXPECT_STREQ(sparse_auto->fabric().name(), "sparse");

  opts.sparse_auto_threshold = 4096;
  auto dense_auto = MakeTransitStubSbon(TopologySize::kTiny, 3, opts);
  EXPECT_STREQ(dense_auto->fabric().name(), "dense");

  overlay::Sbon::Options bad;
  bad.fabric_mode = overlay::Sbon::FabricMode::kSparse;
  bad.coord_mode = overlay::Sbon::CoordMode::kMds;
  auto status = overlay::Sbon::Create(
      MakeTransitStubTopology(TopologySize::kTiny, 3), bad);
  EXPECT_EQ(status.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sbon::test

#include "harness/fixtures.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "placement/relaxation.h"

namespace sbon::test {
namespace {

// Fixture failures must be loud in every build type (assert() vanishes
// under NDEBUG, which the default RelWithDebInfo build defines).
void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "fixture %s failed: %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

}  // namespace

net::TransitStubParams TransitStubParamsFor(TopologySize size) {
  net::TransitStubParams p;
  switch (size) {
    case TopologySize::kTiny:
      p.transit_domains = 2;
      p.transit_nodes_per_domain = 2;
      p.stub_domains_per_transit_node = 2;
      p.nodes_per_stub_domain = 6;
      break;
    case TopologySize::kSmall:
      p.transit_domains = 2;
      p.transit_nodes_per_domain = 2;
      p.stub_domains_per_transit_node = 3;
      p.nodes_per_stub_domain = 8;
      break;
    case TopologySize::kMedium:
      // 4 transit + 4*3*21 = exactly 256 nodes (252 overlay hosts): the
      // N=256 churn/stress sweep size.
      p.transit_domains = 2;
      p.transit_nodes_per_domain = 2;
      p.stub_domains_per_transit_node = 3;
      p.nodes_per_stub_domain = 21;
      break;
    case TopologySize::kPaper:
      // Defaults already model the paper's ~600-node Figure 2 network.
      break;
  }
  return p;
}

net::Topology MakeTransitStubTopology(TopologySize size, uint64_t seed) {
  Rng rng(seed);
  auto topo = net::GenerateTransitStub(TransitStubParamsFor(size), &rng);
  CheckOk(topo.status(), "GenerateTransitStub");
  return std::move(topo.value());
}

std::unique_ptr<overlay::Sbon> MakeTransitStubSbon(
    TopologySize size, uint64_t seed, overlay::Sbon::Options opts) {
  opts.seed = seed;
  auto s = overlay::Sbon::Create(MakeTransitStubTopology(size, seed), opts);
  CheckOk(s.status(), "Sbon::Create");
  return std::move(s.value());
}

std::unique_ptr<overlay::Sbon> MakeGridSbon(size_t side, uint64_t seed,
                                            double link_latency_ms,
                                            overlay::Sbon::Options opts) {
  auto topo = net::GenerateGrid(side, link_latency_ms);
  CheckOk(topo.status(), "GenerateGrid");
  opts.seed = seed;
  auto s = overlay::Sbon::Create(std::move(topo.value()), opts);
  CheckOk(s.status(), "Sbon::Create");
  return std::move(s.value());
}

query::WorkloadParams TestWorkloadParams(size_t num_streams) {
  query::WorkloadParams wp;
  wp.num_streams = num_streams;
  wp.min_streams_per_query = 2;
  wp.max_streams_per_query = 4;
  wp.rate_cap = 500.0;
  return wp;
}

query::Catalog MakeCatalog(const overlay::Sbon& sbon,
                           const query::WorkloadParams& params,
                           uint64_t seed) {
  Rng rng(seed);
  return query::RandomCatalog(params, sbon.overlay_nodes(), &rng);
}

std::vector<query::QuerySpec> MakeQueries(const overlay::Sbon& sbon,
                                          const query::Catalog& catalog,
                                          const query::WorkloadParams& params,
                                          size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<query::QuerySpec> qs;
  qs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    qs.push_back(
        query::RandomQuery(params, catalog, sbon.overlay_nodes(), &rng));
  }
  return qs;
}

query::Catalog TwoStreamCatalog(const overlay::Sbon& sbon) {
  const auto& nodes = sbon.overlay_nodes();
  if (nodes.size() < 2) {
    std::fprintf(stderr, "TwoStreamCatalog needs >= 2 overlay nodes\n");
    std::abort();
  }
  query::Catalog c;
  c.AddStream("a", 100.0, 64.0, nodes[0]);  // 6400 B/s
  c.AddStream("b", 10.0, 128.0, nodes[1]);  // 1280 B/s
  return c;
}

core::OptimizerConfig TestOptimizerConfig(size_t top_k) {
  core::OptimizerConfig cfg;
  cfg.enumeration.top_k = top_k;
  cfg.lambda = 1.0;
  return cfg;
}

std::shared_ptr<const placement::VirtualPlacer> DefaultPlacer() {
  return std::make_shared<placement::RelaxationPlacer>();
}

}  // namespace sbon::test

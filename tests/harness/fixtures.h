#ifndef SBON_TESTS_HARNESS_FIXTURES_H_
#define SBON_TESTS_HARNESS_FIXTURES_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/optimizer.h"
#include "net/generators.h"
#include "overlay/sbon.h"
#include "placement/virtual_placement.h"
#include "query/catalog.h"
#include "query/query_spec.h"
#include "query/workload.h"

namespace sbon::test {

/// Sizing presets for the seeded topology builders. Tests should default to
/// kTiny/kSmall; kPaper approximates the paper's ~600-node transit-stub
/// network and is reserved for slower end-to-end suites.
enum class TopologySize {
  kTiny,    ///< 2x2 transit, ~50 nodes — fast unit-style fixtures
  kSmall,   ///< 2x2 transit, ~100 nodes — e2e regression default
  kMedium,  ///< 2x2 transit, 256 nodes — stress/churn scenario sweeps
  kPaper,   ///< 4x4 transit, ~600 nodes — paper-scale scenarios
};

/// Transit-stub parameters for a preset (deterministic, no RNG involved).
net::TransitStubParams TransitStubParamsFor(TopologySize size);

/// Generates the seeded transit-stub topology a preset describes — the same
/// wiring MakeTransitStubSbon embeds, for callers (e.g. engine::EngineOptions)
/// that need the raw topology.
net::Topology MakeTransitStubTopology(TopologySize size, uint64_t seed);

/// Builds a seeded transit-stub SBON. Everything downstream of `seed` —
/// topology wiring, link latencies, ambient load, Vivaldi embedding — is
/// deterministic, so two calls with equal arguments yield bit-identical
/// overlays. `opts.seed` is overwritten with `seed`.
std::unique_ptr<overlay::Sbon> MakeTransitStubSbon(
    TopologySize size, uint64_t seed,
    overlay::Sbon::Options opts = overlay::Sbon::Options());

/// Builds a seeded SBON over a `side` x `side` grid with uniform link
/// latency; shortest-path distances are known analytically, which makes
/// placement assertions exact.
std::unique_ptr<overlay::Sbon> MakeGridSbon(
    size_t side, uint64_t seed, double link_latency_ms = 5.0,
    overlay::Sbon::Options opts = overlay::Sbon::Options());

/// Workload parameters scaled down for tests: few streams, small queries,
/// moderately selective joins. Deterministic.
query::WorkloadParams TestWorkloadParams(size_t num_streams = 16);

/// A seeded random catalog over the overlay's eligible nodes. Uses a
/// dedicated Rng (not the overlay's) so catalog generation does not perturb
/// the overlay's RNG stream.
query::Catalog MakeCatalog(const overlay::Sbon& sbon,
                           const query::WorkloadParams& params, uint64_t seed);

/// A batch of seeded random queries over `catalog`, consumers drawn from the
/// overlay's eligible nodes.
std::vector<query::QuerySpec> MakeQueries(const overlay::Sbon& sbon,
                                          const query::Catalog& catalog,
                                          const query::WorkloadParams& params,
                                          size_t count, uint64_t seed);

/// A small fixed two-stream catalog (producers = first two overlay nodes)
/// for tests that need hand-checkable rates: stream "a" at 6400 B/s,
/// stream "b" at 1280 B/s.
query::Catalog TwoStreamCatalog(const overlay::Sbon& sbon);

/// Default optimizer configuration for tests: top-8 plan enumeration,
/// lambda = 1.
core::OptimizerConfig TestOptimizerConfig(size_t top_k = 8);

/// The default placer used across the regression suites.
std::shared_ptr<const placement::VirtualPlacer> DefaultPlacer();

}  // namespace sbon::test

#endif  // SBON_TESTS_HARNESS_FIXTURES_H_

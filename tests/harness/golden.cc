#include "harness/golden.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#ifndef SBON_TEST_GOLDEN_DIR
#error "SBON_TEST_GOLDEN_DIR must be defined by the build system"
#endif

namespace sbon::test {
namespace {

std::string Num(double x, const char* fmt = "%.6g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, x);
  return buf;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace

std::string CircuitFingerprint(const overlay::Circuit& circuit) {
  std::ostringstream out;
  for (size_t i = 0; i < circuit.NumVertices(); ++i) {
    const auto& v = circuit.vertex(static_cast<int>(i));
    out << "v" << i << " op=" << v.plan_op << " host=" << v.host;
    if (v.pinned) out << " pinned";
    if (v.reused) out << " reused";
    out << "\n";
  }
  for (const auto& e : circuit.edges()) {
    out << "e " << e.from << "->" << e.to
        << " rate=" << Num(e.rate_bytes_per_s);
    if (!e.physical) out << " virtual";
    out << "\n";
  }
  return out.str();
}

std::string OverlayFingerprint(const overlay::Sbon& sbon) {
  std::ostringstream out;
  out << "nodes=" << sbon.topology().NumNodes()
      << " overlay=" << sbon.overlay_nodes().size()
      << " circuits=" << sbon.circuits().size()
      << " services=" << sbon.NumServices() << "\n";
  // Aggregates use coarse rounding (3 significant digits): they pin gross
  // behavior without flaking on last-ulp differences between toolchains.
  out << "total_usage=" << Num(sbon.TotalNetworkUsage(), "%.3g")
      << " max_load=" << Num(sbon.MaxLoad(), "%.3g") << "\n";
  for (const auto& [id, circuit] : sbon.circuits()) {
    out << "circuit " << id << "\n" << CircuitFingerprint(circuit);
  }
  return out.str();
}

std::string GoldenPath(const std::string& name) {
  return std::string(SBON_TEST_GOLDEN_DIR) + "/" + name + ".golden";
}

std::string CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  const char* update = std::getenv("SBON_UPDATE_GOLDEN");
  if (update != nullptr && update[0] != '\0' && update[0] != '0') {
    std::ofstream out(path);
    if (!out) return "cannot write golden file: " + path;
    out << actual;
    out.flush();
    if (!out.good()) return "short write to golden file: " + path;
    return "";
  }

  std::ifstream in(path);
  if (!in) {
    return "missing golden file " + path +
           " (run with SBON_UPDATE_GOLDEN=1 to create it)";
  }
  std::ostringstream want;
  want << in.rdbuf();

  if (want.str() == actual) return "";

  const auto want_lines = SplitLines(want.str());
  const auto got_lines = SplitLines(actual);
  const size_t n = std::max(want_lines.size(), got_lines.size());
  for (size_t i = 0; i < n; ++i) {
    const std::string w = i < want_lines.size() ? want_lines[i] : "<eof>";
    const std::string g = i < got_lines.size() ? got_lines[i] : "<eof>";
    if (w != g) {
      return "golden mismatch vs " + path + " at line " +
             std::to_string(i + 1) + ":\n  want: " + w + "\n  got:  " + g +
             "\n(set SBON_UPDATE_GOLDEN=1 to accept the new output)";
    }
  }
  return "golden mismatch vs " + path +
         " (content differs only in trailing whitespace or line endings; " +
         "set SBON_UPDATE_GOLDEN=1 to normalize)";
}

}  // namespace sbon::test

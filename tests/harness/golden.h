#ifndef SBON_TESTS_HARNESS_GOLDEN_H_
#define SBON_TESTS_HARNESS_GOLDEN_H_

#include <string>

#include "overlay/circuit.h"
#include "overlay/sbon.h"

namespace sbon::test {

/// Canonical, line-oriented rendering of a placed circuit: one line per
/// vertex (`v<i> op=<plan_op> host=<n> pinned/reused flags`) and one per
/// edge (`e <from>-><to> rate=<bytes/s> [virtual]`). Floating-point values
/// are rounded to 6 significant digits so the fingerprint is stable across
/// compilers while still pinning real behavior.
std::string CircuitFingerprint(const overlay::Circuit& circuit);

/// Canonical rendering of overlay-wide placement state: node/circuit/service
/// counts, total network usage, max load, followed by every circuit's
/// fingerprint in id order.
std::string OverlayFingerprint(const overlay::Sbon& sbon);

/// Compares `actual` against the committed golden file
/// `tests/golden/<name>.golden`. On mismatch returns a unified description
/// of the first differing line; on match returns an empty string.
///
/// Set the environment variable `SBON_UPDATE_GOLDEN=1` to (re)write the
/// golden file instead of comparing — then commit the result.
///
/// Typical use:
///   EXPECT_EQ("", test::CheckGolden("e2e_two_step", fingerprint));
std::string CheckGolden(const std::string& name, const std::string& actual);

/// Absolute path of the golden file for `name` (under the source tree).
std::string GoldenPath(const std::string& name);

}  // namespace sbon::test

#endif  // SBON_TESTS_HARNESS_GOLDEN_H_

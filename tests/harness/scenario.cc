#include "harness/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

namespace sbon::test {

const char* OptimizerKindName(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kTwoStep:
      return "two-step";
    case OptimizerKind::kIntegrated:
      return "integrated";
    case OptimizerKind::kMultiQuery:
      return "multi-query";
  }
  return "unknown";
}

ScenarioRunner::ScenarioRunner(ScenarioOptions options)
    : options_(std::move(options)),
      sbon_(MakeTransitStubSbon(options_.size, options_.seed, options_.sbon)) {}

const query::Catalog& ScenarioRunner::UseRandomCatalog(
    const query::WorkloadParams& params, uint64_t seed) {
  catalog_ = MakeCatalog(*sbon_, params, seed);
  return catalog_;
}

const query::Catalog& ScenarioRunner::UseCatalog(query::Catalog catalog) {
  catalog_ = std::move(catalog);
  return catalog_;
}

std::unique_ptr<core::Optimizer> ScenarioRunner::MakeOptimizer(
    OptimizerKind kind) const {
  auto placer = DefaultPlacer();
  switch (kind) {
    case OptimizerKind::kTwoStep:
      return std::make_unique<core::TwoStepOptimizer>(options_.config, placer);
    case OptimizerKind::kIntegrated:
      return std::make_unique<core::IntegratedOptimizer>(options_.config,
                                                         placer);
    case OptimizerKind::kMultiQuery:
      return std::make_unique<core::MultiQueryOptimizer>(
          options_.config, placer, options_.multi_query);
  }
  return nullptr;
}

void ScenarioRunner::VerifyPlacedCircuit(const overlay::Circuit& circuit,
                                         const overlay::Sbon& sbon) {
  EXPECT_TRUE(circuit.FullyPlaced());
  const size_t num_nodes = sbon.topology().NumNodes();
  const auto& overlay_nodes = sbon.overlay_nodes();
  for (size_t i = 0; i < circuit.NumVertices(); ++i) {
    const auto& v = circuit.vertex(static_cast<int>(i));
    ASSERT_NE(v.host, kInvalidNode) << "vertex " << i << " unplaced";
    EXPECT_LT(v.host, num_nodes) << "vertex " << i << " host out of range";
    if (!v.pinned && !v.reused) {
      EXPECT_TRUE(std::find(overlay_nodes.begin(), overlay_nodes.end(),
                            v.host) != overlay_nodes.end())
          << "service vertex " << i << " placed on non-overlay node "
          << v.host;
    }
  }
  for (const auto& e : circuit.edges()) {
    EXPECT_GE(e.rate_bytes_per_s, 0.0);
    EXPECT_GE(e.from, 0);
    EXPECT_GE(e.to, 0);
    EXPECT_LT(static_cast<size_t>(e.from), circuit.NumVertices());
    EXPECT_LT(static_cast<size_t>(e.to), circuit.NumVertices());
  }
}

StatusOr<core::OptimizeResult> ScenarioRunner::OptimizeOnly(
    OptimizerKind kind, const query::QuerySpec& spec) {
  auto opt = MakeOptimizer(kind);
  return opt->Optimize(spec, catalog_, sbon_.get());
}

PlacementRecord ScenarioRunner::PlaceAndInstall(OptimizerKind kind,
                                                const query::QuerySpec& spec) {
  PlacementRecord rec;
  rec.kind = kind;

  auto opt = MakeOptimizer(kind);
  auto result = opt->Optimize(spec, catalog_, sbon_.get());
  EXPECT_TRUE(result.ok()) << OptimizerKindName(kind)
                           << " optimize failed: " << result.status().ToString();
  if (!result.ok()) return rec;

  rec.estimated_cost = result->estimated_cost;
  rec.plans_considered = result->plans_considered;
  rec.placements_evaluated = result->placements_evaluated;
  rec.services_reused = result->services_reused;

  EXPECT_TRUE(std::isfinite(rec.estimated_cost));
  EXPECT_GT(rec.estimated_cost, 0.0);
  VerifyPlacedCircuit(result->circuit, *sbon_);

  auto id = sbon_->InstallCircuit(std::move(result->circuit));
  EXPECT_TRUE(id.ok()) << "install failed: " << id.status().ToString();
  if (!id.ok()) return rec;

  rec.circuit_id = id.value();
  specs_.emplace(rec.circuit_id, spec);

  auto cost = sbon_->CircuitCostOf(rec.circuit_id);
  EXPECT_TRUE(cost.ok()) << cost.status().ToString();
  if (cost.ok()) {
    rec.true_cost = cost.value();
    VerifyInstalledCircuit(rec.circuit_id);
  }
  return rec;
}

void ScenarioRunner::VerifyInstalledCircuit(CircuitId id) const {
  const overlay::Circuit* circuit = sbon_->FindCircuit(id);
  ASSERT_NE(circuit, nullptr);
  auto cost = sbon_->CircuitCostOf(id);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_GE(cost->network_usage, 0.0);
  EXPECT_GE(cost->node_penalty, 0.0);
  EXPECT_TRUE(std::isfinite(cost->critical_path_latency_ms));

  // Triangle-inequality lower bound: on a jitter-free overlay (latencies are
  // all-pairs shortest paths, hence metric) a circuit routed through
  // services can never deliver a producer's data faster than the direct
  // path. Reused subtrees inherit foreign upstream latency, so skip those.
  const bool jitter_free = options_.sbon.latency_jitter_sigma == 0.0;
  const bool any_reused =
      std::any_of(circuit->vertices().begin(), circuit->vertices().end(),
                  [](const overlay::CircuitVertex& v) { return v.reused; });
  if (jitter_free && !any_reused) {
    const auto& plan = circuit->plan();
    NodeId consumer = kInvalidNode;
    double direct_bound = 0.0;
    for (size_t i = 0; i < circuit->NumVertices(); ++i) {
      const auto& v = circuit->vertex(static_cast<int>(i));
      if (v.pinned && plan.op(v.plan_op).kind == query::OpKind::kConsumer) {
        consumer = v.host;
      }
    }
    if (consumer != kInvalidNode) {
      for (size_t i = 0; i < circuit->NumVertices(); ++i) {
        const auto& v = circuit->vertex(static_cast<int>(i));
        if (v.pinned && plan.op(v.plan_op).kind == query::OpKind::kProducer) {
          direct_bound = std::max(direct_bound,
                                  sbon_->latency().Latency(v.host, consumer));
        }
      }
      EXPECT_GE(cost->critical_path_latency_ms + 1e-9, direct_bound)
          << "circuit " << id << " beats the direct-path latency bound";
    }
  }
}

void ScenarioRunner::VerifyAllInstalled() const {
  for (const auto& [id, circuit] : sbon_->circuits()) {
    (void)circuit;
    VerifyInstalledCircuit(id);
  }
  EXPECT_GE(sbon_->TotalNetworkUsage(), 0.0);
}

const query::QuerySpec& ScenarioRunner::SpecOf(CircuitId id) const {
  auto it = specs_.find(id);
  if (it == specs_.end()) {
    ADD_FAILURE() << "no spec recorded for circuit " << id;
    static const query::QuerySpec kEmpty;
    return kEmpty;
  }
  return it->second;
}

void ScenarioRunner::Churn(double dt, size_t vivaldi_samples) {
  sbon_->TickNetwork();
  sbon_->Tick(dt);
  if (vivaldi_samples > 0) sbon_->UpdateCoordinatesOnline(vivaldi_samples);
  sbon_->RefreshIndex();
}

StatusOr<core::LocalReoptReport> ScenarioRunner::LocalReopt(
    CircuitId id, const core::ReoptConfig& config) {
  return core::LocalReoptimize(sbon_.get(), id, *DefaultPlacer(), config);
}

StatusOr<core::FullReoptReport> ScenarioRunner::FullReopt(
    CircuitId id, OptimizerKind kind, const core::ReoptConfig& config) {
  auto opt = MakeOptimizer(kind);
  const query::QuerySpec spec = SpecOf(id);
  auto report = core::FullReoptimize(sbon_.get(), id, spec, catalog_,
                                     opt.get(), config);
  // A redeploy replaces the circuit under a new id; carry the spec over so
  // the new circuit can be re-optimized in later epochs.
  if (report.ok() && report->redeployed) {
    specs_.erase(id);
    specs_.emplace(report->new_circuit, spec);
  }
  return report;
}

}  // namespace sbon::test

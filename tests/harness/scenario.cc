#include "harness/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

namespace sbon::test {
namespace {

engine::EngineOptions EngineOptionsFor(const ScenarioOptions& options) {
  engine::EngineOptions eo;
  eo.topology = MakeTransitStubTopology(options.size, options.seed);
  eo.sbon = options.sbon;
  eo.sbon.seed = options.seed;
  eo.config = options.config;
  eo.multi_query = options.multi_query;
  return eo;
}

std::unique_ptr<engine::StreamEngine> MakeEngineOrDie(
    const ScenarioOptions& options) {
  auto engine = engine::StreamEngine::Create(EngineOptionsFor(options));
  if (!engine.ok()) {
    ADD_FAILURE() << "engine creation failed: "
                  << engine.status().ToString();
    std::abort();
  }
  return std::move(engine.value());
}

}  // namespace

const char* OptimizerKindName(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kTwoStep:
      return "two-step";
    case OptimizerKind::kIntegrated:
      return "integrated";
    case OptimizerKind::kMultiQuery:
      return "multi-query";
  }
  return "unknown";
}

ScenarioRunner::ScenarioRunner(ScenarioOptions options)
    : options_(std::move(options)), engine_(MakeEngineOrDie(options_)) {}

const query::Catalog& ScenarioRunner::UseRandomCatalog(
    const query::WorkloadParams& params, uint64_t seed) {
  engine_->SetCatalog(MakeCatalog(engine_->sbon(), params, seed));
  return engine_->catalog();
}

const query::Catalog& ScenarioRunner::UseCatalog(query::Catalog catalog) {
  engine_->SetCatalog(std::move(catalog));
  return engine_->catalog();
}

void ScenarioRunner::VerifyPlacedCircuit(const overlay::Circuit& circuit,
                                         const overlay::Sbon& sbon) {
  EXPECT_TRUE(circuit.FullyPlaced());
  const size_t num_nodes = sbon.topology().NumNodes();
  const auto& overlay_nodes = sbon.overlay_nodes();
  for (size_t i = 0; i < circuit.NumVertices(); ++i) {
    const auto& v = circuit.vertex(static_cast<int>(i));
    ASSERT_NE(v.host, kInvalidNode) << "vertex " << i << " unplaced";
    EXPECT_LT(v.host, num_nodes) << "vertex " << i << " host out of range";
    if (!v.pinned && !v.reused) {
      EXPECT_TRUE(std::find(overlay_nodes.begin(), overlay_nodes.end(),
                            v.host) != overlay_nodes.end())
          << "service vertex " << i << " placed on non-overlay node "
          << v.host;
    }
  }
  for (const auto& e : circuit.edges()) {
    EXPECT_GE(e.rate_bytes_per_s, 0.0);
    EXPECT_GE(e.from, 0);
    EXPECT_GE(e.to, 0);
    EXPECT_LT(static_cast<size_t>(e.from), circuit.NumVertices());
    EXPECT_LT(static_cast<size_t>(e.to), circuit.NumVertices());
  }
}

StatusOr<core::OptimizeResult> ScenarioRunner::OptimizeOnly(
    OptimizerKind kind, const query::QuerySpec& spec) {
  engine::StrategySpec strategy;
  strategy.optimizer = OptimizerKindName(kind);
  return engine_->Optimize(spec, strategy);
}

PlacementRecord ScenarioRunner::PlaceAndInstall(OptimizerKind kind,
                                                const query::QuerySpec& spec) {
  PlacementRecord rec;
  rec.kind = kind;

  engine::StrategySpec strategy;
  strategy.optimizer = OptimizerKindName(kind);
  auto handle = engine_->Submit(spec, strategy);
  EXPECT_TRUE(handle.ok()) << OptimizerKindName(kind)
                           << " submit failed: " << handle.status().ToString();
  if (!handle.ok()) return rec;

  auto stats = engine_->StatsOf(*handle);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  if (!stats.ok()) return rec;

  rec.estimated_cost = stats->estimated_cost;
  rec.plans_considered = stats->plans_considered;
  rec.placements_evaluated = stats->placements_evaluated;
  rec.services_reused = stats->services_reused;

  EXPECT_TRUE(std::isfinite(rec.estimated_cost));
  EXPECT_GT(rec.estimated_cost, 0.0);

  rec.circuit_id = stats->circuit;
  const overlay::Circuit* circuit = sbon().FindCircuit(rec.circuit_id);
  EXPECT_NE(circuit, nullptr);
  if (circuit == nullptr) return rec;
  VerifyPlacedCircuit(*circuit, sbon());

  // StatsOf already measured the true cost; VerifyInstalledCircuit fails
  // loudly if the cost was not computable.
  rec.true_cost = stats->true_cost;
  VerifyInstalledCircuit(rec.circuit_id);
  return rec;
}

void ScenarioRunner::VerifyInstalledCircuit(CircuitId id) const {
  const overlay::Sbon& sbon = engine_->sbon();
  const overlay::Circuit* circuit = sbon.FindCircuit(id);
  ASSERT_NE(circuit, nullptr);
  auto cost = sbon.CircuitCostOf(id);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_GE(cost->network_usage, 0.0);
  EXPECT_GE(cost->node_penalty, 0.0);
  EXPECT_TRUE(std::isfinite(cost->critical_path_latency_ms));

  // Triangle-inequality lower bound: on a jitter-free overlay (latencies are
  // all-pairs shortest paths, hence metric) a circuit routed through
  // services can never deliver a producer's data faster than the direct
  // path. Reused subtrees inherit foreign upstream latency, so skip those.
  const bool jitter_free = options_.sbon.latency_jitter_sigma == 0.0;
  const bool any_reused =
      std::any_of(circuit->vertices().begin(), circuit->vertices().end(),
                  [](const overlay::CircuitVertex& v) { return v.reused; });
  if (jitter_free && !any_reused) {
    const auto& plan = circuit->plan();
    NodeId consumer = kInvalidNode;
    double direct_bound = 0.0;
    for (size_t i = 0; i < circuit->NumVertices(); ++i) {
      const auto& v = circuit->vertex(static_cast<int>(i));
      if (v.pinned && plan.op(v.plan_op).kind == query::OpKind::kConsumer) {
        consumer = v.host;
      }
    }
    if (consumer != kInvalidNode) {
      for (size_t i = 0; i < circuit->NumVertices(); ++i) {
        const auto& v = circuit->vertex(static_cast<int>(i));
        if (v.pinned && plan.op(v.plan_op).kind == query::OpKind::kProducer) {
          direct_bound = std::max(direct_bound,
                                  sbon.latency().Latency(v.host, consumer));
        }
      }
      EXPECT_GE(cost->critical_path_latency_ms + 1e-9, direct_bound)
          << "circuit " << id << " beats the direct-path latency bound";
    }
  }
}

void ScenarioRunner::VerifyAllInstalled() const {
  for (const auto& [id, circuit] : engine_->sbon().circuits()) {
    (void)circuit;
    VerifyInstalledCircuit(id);
  }
  EXPECT_GE(engine_->sbon().TotalNetworkUsage(), 0.0);
}

const query::QuerySpec& ScenarioRunner::SpecOf(CircuitId id) const {
  const query::QuerySpec* spec = engine_->SpecOf(engine_->HandleOf(id));
  if (spec == nullptr) {
    ADD_FAILURE() << "no spec recorded for circuit " << id;
    static const query::QuerySpec kEmpty;
    return kEmpty;
  }
  return *spec;
}

void ScenarioRunner::Churn(double dt, size_t vivaldi_samples) {
  engine::EpochOptions epoch;
  epoch.dt = dt;
  epoch.tick_network = true;
  epoch.vivaldi_samples = vivaldi_samples;
  epoch.refresh_index = true;
  engine_->AdvanceEpoch(epoch);
}

StatusOr<core::LocalReoptReport> ScenarioRunner::LocalReopt(
    CircuitId id, const core::ReoptConfig& config) {
  engine::ReoptPolicy policy;
  policy.mode = engine::ReoptPolicy::Mode::kLocal;
  policy.config = config;
  auto outcome = engine_->Reoptimize(engine_->HandleOf(id), policy);
  if (!outcome.ok()) return outcome.status();
  return outcome->local;
}

StatusOr<core::FullReoptReport> ScenarioRunner::FullReopt(
    CircuitId id, OptimizerKind kind, const core::ReoptConfig& config) {
  engine::ReoptPolicy policy;
  policy.mode = engine::ReoptPolicy::Mode::kFull;
  policy.config = config;
  policy.optimizer = OptimizerKindName(kind);
  auto outcome = engine_->Reoptimize(engine_->HandleOf(id), policy);
  if (!outcome.ok()) return outcome.status();
  return outcome->full;
}

}  // namespace sbon::test

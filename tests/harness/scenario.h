#ifndef SBON_TESTS_HARNESS_SCENARIO_H_
#define SBON_TESTS_HARNESS_SCENARIO_H_

#include <memory>
#include <vector>

#include "core/multi_query.h"
#include "core/reopt.h"
#include "engine/stream_engine.h"
#include "harness/fixtures.h"
#include "overlay/metrics.h"
#include "overlay/sbon.h"

namespace sbon::test {

/// Which optimizer a scenario step runs (mapped onto the engine's
/// OptimizerRegistry names by OptimizerKindName).
enum class OptimizerKind { kTwoStep, kIntegrated, kMultiQuery };

const char* OptimizerKindName(OptimizerKind kind);

/// Configuration of an end-to-end scenario.
struct ScenarioOptions {
  TopologySize size = TopologySize::kSmall;
  uint64_t seed = 42;
  /// Overlay options (`sbon.seed` is overwritten with `seed`).
  overlay::Sbon::Options sbon;
  core::OptimizerConfig config = TestOptimizerConfig();
  core::MultiQueryOptimizer::Params multi_query;
};

/// What one placement step produced, with both the optimizer's cost-space
/// estimate and the true-latency cost measured after installation.
struct PlacementRecord {
  CircuitId circuit_id = kInvalidCircuit;
  OptimizerKind kind = OptimizerKind::kIntegrated;
  double estimated_cost = 0.0;
  size_t plans_considered = 0;
  size_t placements_evaluated = 0;
  size_t services_reused = 0;
  overlay::CircuitCost true_cost;
};

/// Thin invariant-checking wrapper around `engine::StreamEngine`: the
/// engine drives the full pipeline — build topology, embed coordinates,
/// place queries, install circuits — while the runner asserts structural
/// and cost invariants at every step (via gtest non-fatal failures, so a
/// broken invariant pinpoints the step that violated it).
///
/// Invariants checked on every placed circuit:
///  - the circuit is fully placed and every host is a valid topology node;
///  - unpinned (service) hosts are overlay-eligible nodes;
///  - the optimizer's estimated cost is finite and strictly positive;
///  - after installation, the true-latency cost is computable, its network
///    usage is non-negative, and — on a jitter-free overlay with no reuse —
///    the critical-path latency is at least the direct shortest-path latency
///    from each producer to the consumer (placement can never beat the
///    triangle inequality).
class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioOptions options);

  engine::StreamEngine& engine() { return *engine_; }
  overlay::Sbon& sbon() { return engine_->sbon(); }
  const ScenarioOptions& options() const { return options_; }

  /// Installs a seeded random catalog (see MakeCatalog) and returns it.
  const query::Catalog& UseRandomCatalog(const query::WorkloadParams& params,
                                         uint64_t seed);
  /// Installs a caller-built catalog.
  const query::Catalog& UseCatalog(query::Catalog catalog);
  const query::Catalog& catalog() const { return engine_->catalog(); }

  /// Submits `spec` under `kind` through the engine, verifies placement
  /// invariants, measures the true cost, and returns the record (structured
  /// failure via gtest on invariant violations; optimizer/install errors
  /// surface as ASSERT-style failures with the record left at defaults).
  PlacementRecord PlaceAndInstall(OptimizerKind kind,
                                  const query::QuerySpec& spec);

  /// Optimizes without installing (for compare-only steps).
  StatusOr<core::OptimizeResult> OptimizeOnly(OptimizerKind kind,
                                              const query::QuerySpec& spec);

  /// One churn epoch: advance ambient load by `dt`, resample latency jitter,
  /// run `vivaldi_samples` online coordinate measurements per node, and
  /// refresh the coordinate index.
  void Churn(double dt, size_t vivaldi_samples);

  /// Local re-optimization (service migration) for a previously installed
  /// circuit.
  StatusOr<core::LocalReoptReport> LocalReopt(CircuitId id,
                                              const core::ReoptConfig& config);
  /// Full re-optimization (parallel circuit deployment) using `kind`.
  StatusOr<core::FullReoptReport> FullReopt(CircuitId id, OptimizerKind kind,
                                            const core::ReoptConfig& config);

  /// Re-verifies cost invariants over every installed circuit (e.g. after
  /// churn or migration).
  void VerifyAllInstalled() const;

  /// Spec recorded for an installed circuit (dies if unknown).
  const query::QuerySpec& SpecOf(CircuitId id) const;

  /// Invariant check on a placed circuit.
  static void VerifyPlacedCircuit(const overlay::Circuit& circuit,
                                  const overlay::Sbon& sbon);

 private:
  void VerifyInstalledCircuit(CircuitId id) const;

  ScenarioOptions options_;
  std::unique_ptr<engine::StreamEngine> engine_;
};

}  // namespace sbon::test

#endif  // SBON_TESTS_HARNESS_SCENARIO_H_
